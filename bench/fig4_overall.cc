// Reproduces Figure 4 of the paper: "Overall evaluation of GDR compared
// with other techniques."
//
// Protocol (Section 5.2): the user affords at most E verified updates
// (E = initially identified dirty tuples); feedback is reported as a
// percentage of E. Strategies: GDR (VOI + active learning), GDR-S-Learning
// (VOI + passive learning), GDR-NoLearning (VOI only), Active-Learning
// (no grouping), and the Automatic-Heuristic constant line (BatchRepair).
//
// Flags: --workload=name:key=val,... (repeatable; default dataset1 and
//         dataset2, parameterized by the legacy flags below)
//         --records=N (default 4000; pass --records=20000 for the paper's
//         scale — the interactive loop re-ranks the whole candidate pool
//         after every n_s labels, so full scale takes tens of minutes)
//         --seed=S (default 42)
//         --threads=T (VOI ranking workers; 1 serial, 0 = hardware)
//        --budget_pct=P (default 100, user budget as % of E)
#include <cstdio>

#include "bench/bench_util.h"
#include "cfd/violation_index.h"
#include "sim/experiment.h"
#include "util/stopwatch.h"

namespace gdr {
namespace {

std::size_t InitialDirtyCount(const Dataset& dataset) {
  Table dirty = dataset.dirty;
  ViolationIndex index(&dirty, &dataset.rules);
  return index.DirtyRows().size();
}

void RunFigure4(const Dataset& dataset, const char* figure,
                std::uint64_t seed, double budget_pct,
                std::size_t threads) {
  const std::size_t initial_dirty = InitialDirtyCount(dataset);
  const std::size_t budget = static_cast<std::size_t>(
      static_cast<double>(initial_dirty) * budget_pct / 100.0);
  std::printf("== Figure 4%s: %s (E=%zu, budget=%zu) ==\n", figure,
              dataset.name.c_str(), initial_dirty, budget);
  std::printf("%-16s %10s %12s\n", "strategy", "feedback%", "improvement%");

  for (Strategy strategy :
       {Strategy::kGdr, Strategy::kGdrSLearning, Strategy::kGdrNoLearning,
        Strategy::kActiveLearning}) {
    Stopwatch watch;
    ExperimentConfig config;
    config.strategy = strategy;
    config.feedback_budget = budget;
    config.seed = seed;
    config.num_threads = threads;
    config.sample_every = 50;
    auto result = RunStrategyExperiment(dataset, config);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    for (int pct = 0; pct <= 100; pct += 10) {
      const double target =
          static_cast<double>(initial_dirty) * pct / 100.0;
      const CurvePoint* best = &result->curve.front();
      for (const CurvePoint& point : result->curve) {
        if (static_cast<double>(point.feedback) <= target) best = &point;
      }
      std::printf("%-16s %10d %12.1f\n", result->strategy_name.c_str(), pct,
                  best->improvement_pct);
    }
    std::printf(
        "# %s: feedback=%zu learner_decisions=%zu final=%.1f%% "
        "precision=%.3f recall=%.3f wall=%.1fs\n",
        result->strategy_name.c_str(), result->stats.user_feedback,
        result->stats.learner_decisions, result->final_improvement_pct,
        result->accuracy.Precision(), result->accuracy.Recall(),
        watch.ElapsedSeconds());
  }

  // The no-feedback constant line.
  Stopwatch watch;
  auto heuristic = RunHeuristicExperiment(dataset);
  if (heuristic.ok()) {
    std::printf("%-16s %10s %12.1f\n", "Heuristic", "any",
                heuristic->final_improvement_pct);
    std::printf("# Heuristic: final=%.1f%% precision=%.3f recall=%.3f "
                "wall=%.1fs\n",
                heuristic->final_improvement_pct,
                heuristic->accuracy.Precision(),
                heuristic->accuracy.Recall(), watch.ElapsedSeconds());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace gdr

int main(int argc, char** argv) {
  const gdr::bench::Flags flags(argc, argv);
  const std::string records = flags.GetString("records", "4000");
  const std::string seed = flags.GetString("seed", "42");
  const std::uint64_t experiment_seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::size_t threads =
      static_cast<std::size_t>(flags.GetInt("threads", 1));
  const double budget_pct = flags.GetDouble("budget_pct", 100.0);

  const auto specs = gdr::bench::WorkloadSpecsOrDefaults(
      flags, {"dataset1:records=" + records + ",seed=" + seed,
              "dataset2:records=" + records + ",seed=" + seed});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto dataset = gdr::bench::ResolveWorkloadCachedOrReport(specs[i]);
    if (!dataset.ok()) return 1;
    const std::string figure = "(" + std::string(1, char('a' + i % 26)) + ")";
    gdr::RunFigure4(**dataset, figure.c_str(), experiment_seed, budget_pct,
                    threads);
  }
  return 0;
}
