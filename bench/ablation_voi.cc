// Ablation study (not a paper artifact; see DESIGN.md §5): how much of the
// VOI ranking's value comes from each ingredient?
//   full      — Eq. 6 with p̃ = update score (evidence-weighted Eq. 7)
//   flat-p    — Eq. 6 with p̃ ≡ 1 (no repair-certainty prior)
//   score-only— rank groups by Σ scores alone (no violation deltas)
//   size      — rank by group size (the paper's Greedy)
// All run the GDR-NoLearning protocol (user verifies everything) with a
// fixed budget, so differences are attributable to the ranking alone.
//
// Flags: --workload=name:key=val,... (repeatable; default dataset1,
//         parameterized by the legacy flags below)
//        --records=N (default 10000) --seed=S --budget_pct=P (default 40)
#include <cstdio>
#include <numeric>

#include "bench/bench_util.h"
#include "core/gdr.h"
#include "core/quality.h"
#include "sim/oracle.h"
#include "util/stopwatch.h"

namespace gdr {
namespace {

// A miniature engine loop that verifies whole groups in a caller-supplied
// order until the budget is spent; isolates the ranking policy.
template <typename RankFn>
double RunWithRanking(const Dataset& dataset, std::size_t budget,
                      const RankFn& pick_group) {
  Table working = dataset.dirty;
  ViolationIndex index(&working, &dataset.rules);
  RepairState state;
  UpdatePool pool;
  UpdateGenerator generator(&index, &working, &state);
  ConsistencyManager manager(&index, &pool, &state, &generator);
  manager.Initialize();
  const std::vector<double> weights = ContextRuleWeights(index);
  QualityEvaluator evaluator(dataset.clean, &dataset.rules, weights);
  const double initial_loss = evaluator.Loss(index);
  UserOracle oracle(&dataset.clean);

  std::size_t used = 0;
  while (used < budget && manager.HasDirtyRows() && !pool.empty()) {
    std::vector<UpdateGroup> groups = GroupUpdates(pool);
    if (groups.empty()) break;
    const std::size_t picked = pick_group(index, weights, groups);
    std::size_t consumed = 0;
    for (const Update& update : groups[picked].updates) {
      if (used >= budget) break;
      const auto pooled = pool.Get(update.cell());
      if (!pooled || !(*pooled == update)) continue;
      manager.ApplyFeedback(update,
                            oracle.GetFeedback(working, update));
      ++used;
      ++consumed;
    }
    if (consumed == 0) break;
  }
  return evaluator.ImprovementPct(index, initial_loss);
}

}  // namespace
}  // namespace gdr

int main(int argc, char** argv) {
  using namespace gdr;
  const bench::Flags flags(argc, argv);
  const auto specs = bench::WorkloadSpecsOrDefaults(
      flags, {"dataset1:records=" + flags.GetString("records", "10000") +
              ",seed=" + flags.GetString("seed", "42")});

  struct Variant {
    const char* name;
    std::size_t (*pick)(ViolationIndex&, const std::vector<double>&,
                        const std::vector<UpdateGroup>&);
  };
  const Variant variants[] = {
      {"full-voi",
       [](ViolationIndex& index, const std::vector<double>& weights,
          const std::vector<UpdateGroup>& groups) {
         VoiRanker ranker(&index, &weights);
         return ranker
             .Rank(groups, [](const Update& u) { return u.score; })
             .order.front();
       }},
      {"flat-p",
       [](ViolationIndex& index, const std::vector<double>& weights,
          const std::vector<UpdateGroup>& groups) {
         VoiRanker ranker(&index, &weights);
         return ranker.Rank(groups, [](const Update&) { return 1.0; })
             .order.front();
       }},
      {"score-only",
       [](ViolationIndex&, const std::vector<double>&,
          const std::vector<UpdateGroup>& groups) {
         std::size_t best = 0;
         double best_score = -1.0;
         for (std::size_t i = 0; i < groups.size(); ++i) {
           double sum = 0.0;
           for (const Update& u : groups[i].updates) sum += u.score;
           if (sum > best_score) {
             best_score = sum;
             best = i;
           }
         }
         return best;
       }},
      {"size",
       [](ViolationIndex&, const std::vector<double>&,
          const std::vector<UpdateGroup>& groups) {
         std::size_t best = 0;
         for (std::size_t i = 1; i < groups.size(); ++i) {
           if (groups[i].size() > groups[best].size()) best = i;
         }
         return best;
       }},
  };

  for (const std::string& spec : specs) {
    const auto resolved = bench::ResolveWorkloadCachedOrReport(spec);
    if (!resolved.ok()) return 1;
    const Dataset& dataset = **resolved;
    Table dirty = dataset.dirty;
    ViolationIndex probe(&dirty, &dataset.rules);
    const std::size_t budget = static_cast<std::size_t>(
        static_cast<double>(probe.DirtyRows().size()) *
        flags.GetDouble("budget_pct", 40.0) / 100.0);
    std::printf("== VOI ablation: %s, budget=%zu ==\n", dataset.name.c_str(),
                budget);

    std::printf("%-12s %14s %8s\n", "ranking", "improvement%", "wall");
    for (const Variant& variant : variants) {
      Stopwatch watch;
      const double improvement =
          RunWithRanking(dataset, budget,
                         [&variant](ViolationIndex& index,
                                    const std::vector<double>& weights,
                                    const std::vector<UpdateGroup>& groups) {
                           return variant.pick(index, weights, groups);
                         });
      std::printf("%-12s %14.1f %7.1fs\n", variant.name, improvement,
                  watch.ElapsedSeconds());
    }
  }
  return 0;
}
