// Server load driver: N concurrent repair sessions multiplexed through one
// SessionManager under a resident-memory budget small enough to force
// eviction, driven to completion by parallel client threads issuing
// randomized pull / feedback / forced-evict traffic.
//
// Numbers that matter: sessions/sec end-to-end (open -> done across the
// fleet), NextBatch latency p50/p99 (the interactive-path metric), and the
// eviction/rehydration counts (proof the budget actually engaged).
//
// Self-check (the CI gate): a sample of the evicted-and-rehydrated
// sessions is re-driven — identical config, identical feedback policy —
// in an unconstrained control manager that never evicts, and the final
// table cells must be bit-identical. Any divergence exits 2.
//
// Emits BENCH_server.json. Absolute throughput is hardware-dependent; the
// portable signals are finals_match and evictions/rehydrations > 0.
//
// Flags: --sessions=N (default 120) --threads=N client threads (default 4)
//        --workers=N shared ranking pool size (default 1)
//        --budget-bytes=N (default 262144; 0 disables eviction)
//        --feedback-budget=N per session (default 25) --seed=S (default 5)
//        --spill-dir=DIR (default gdr_bench_spill)
//        --out=PATH (default BENCH_server.json)
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/session_manager.h"
#include "util/stopwatch.h"

namespace gdr::server {
namespace {

struct DriveResult {
  std::vector<double> next_ms;  // one sample per NextBatch round-trip
  std::size_t feedbacks = 0;
  std::size_t forced_evicts = 0;
  bool ok = true;
  std::string error;
};

OpenConfig ConfigFor(std::uint64_t base_seed, std::size_t index,
                     std::size_t feedback_budget) {
  OpenConfig config;
  config.workload_spec = "figure1";
  config.seed = base_seed + index;  // distinct ranking RNG per session
  config.feedback_budget = feedback_budget;
  return config;
}

// Deterministic pure function of (session index, update id) — the control
// re-drive must replay the exact same answers without sharing any state
// with the load threads.
struct Policy {
  Feedback feedback;
  std::optional<std::string> value;
};

Policy PolicyFor(std::size_t index, std::uint64_t update_id) {
  const std::uint64_t h = (index * 2654435761ull) ^ (update_id * 40503ull);
  const std::uint64_t roll = h % 100;
  if (roll < 55) return {Feedback::kConfirm, std::nullopt};
  if (roll < 80) return {Feedback::kRetain, std::nullopt};
  return {Feedback::kReject, "vol-" + std::to_string(h % 7)};
}

// Drives one session to kDone. `evict_chance_pct` injects forced
// evictions before pulls (the randomized part of the traffic); the
// feedback policy itself is deterministic so a control can replay it.
bool DriveSession(SessionManager* manager, const SessionKey& key,
                  std::size_t index, int evict_chance_pct,
                  DriveResult* result) {
  std::mt19937_64 evict_rng(9000 + index);
  for (int guard = 0; guard < 500; ++guard) {
    if (evict_chance_pct > 0 &&
        evict_rng() % 100 < static_cast<std::uint64_t>(evict_chance_pct)) {
      const auto evicted = manager->Evict(key);
      if (!evicted.ok()) {
        result->error = "evict: " + evicted.status().ToString();
        return result->ok = false;
      }
      ++result->forced_evicts;
    }
    const Stopwatch watch;
    const auto batch = manager->Next(key);
    result->next_ms.push_back(watch.ElapsedSeconds() * 1e3);
    if (!batch.ok()) {
      result->error = "next: " + batch.status().ToString();
      return result->ok = false;
    }
    if (batch->suggestions.empty()) {
      if (batch->state != "done") {
        result->error = "empty batch in state " + batch->state;
        return result->ok = false;
      }
      return true;
    }
    for (const WireSuggestion& s : batch->suggestions) {
      const Policy policy = PolicyFor(index, s.update_id);
      const auto outcome = manager->Feedback(key, s.update_id,
                                             policy.feedback, policy.value);
      if (!outcome.ok()) {
        result->error = "feedback: " + outcome.status().ToString();
        return result->ok = false;
      }
      ++result->feedbacks;
    }
  }
  result->error = "session did not terminate within the step guard";
  return result->ok = false;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t num_sessions =
      static_cast<std::size_t>(flags.GetUint("sessions", 120));
  const std::size_t num_threads =
      std::max<std::size_t>(1, flags.GetUint("threads", 4));
  const std::size_t workers =
      static_cast<std::size_t>(flags.GetUint("workers", 1));
  const std::size_t budget_bytes =
      static_cast<std::size_t>(flags.GetUint("budget-bytes", 262144));
  const std::size_t feedback_budget =
      static_cast<std::size_t>(flags.GetUint("feedback-budget", 25));
  const std::uint64_t seed = flags.GetUint("seed", 5);
  const std::string spill_dir =
      flags.GetString("spill-dir", "gdr_bench_spill");
  const std::string out_path = flags.GetString("out", "BENCH_server.json");

  std::filesystem::remove_all(spill_dir);
  SessionManagerOptions options;
  options.spill_dir = spill_dir;
  options.memory_budget_bytes = budget_bytes;
  options.max_sessions = num_sessions + 8;
  options.num_threads = workers;
  SessionManager manager(options);

  const auto key_for = [](std::size_t i) {
    return SessionKey{"tenant" + std::to_string(i % 7),
                      "s" + std::to_string(i)};
  };

  // Phase 1: the load — every session opened and driven to completion by
  // its owning client thread, with randomized forced evictions layered on
  // top of whatever the byte budget evicts on its own.
  std::vector<DriveResult> results(num_sessions);
  std::atomic<std::size_t> next_session{0};
  const Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&] {
      while (true) {
        const std::size_t i = next_session.fetch_add(1);
        if (i >= num_sessions) return;
        DriveResult& result = results[i];
        const SessionKey key = key_for(i);
        const auto opened =
            manager.Open(key, ConfigFor(seed, i, feedback_budget));
        if (!opened.ok()) {
          result.ok = false;
          result.error = "open: " + opened.status().ToString();
          continue;
        }
        DriveSession(&manager, key, i, /*evict_chance_pct=*/20, &result);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_seconds = wall.ElapsedSeconds();

  std::size_t failures = 0;
  std::vector<double> next_ms;
  std::size_t feedbacks = 0, forced_evicts = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok) {
      ++failures;
      std::fprintf(stderr, "session %zu failed: %s\n", i,
                   results[i].error.c_str());
      continue;
    }
    next_ms.insert(next_ms.end(), results[i].next_ms.begin(),
                   results[i].next_ms.end());
    feedbacks += results[i].feedbacks;
    forced_evicts += results[i].forced_evicts;
  }
  const WireServerStats stats = manager.Stats();

  // Phase 2: the differential self-check. Re-drive a sample of sessions
  // in an eviction-free control manager and demand bit-identical finals.
  const std::size_t probes = std::min<std::size_t>(8, num_sessions);
  SessionManagerOptions control_options;
  control_options.spill_dir = spill_dir + "_control";
  control_options.max_sessions = probes + 1;
  SessionManager control(control_options);
  std::size_t finals_compared = 0, finals_matched = 0;
  for (std::size_t i = 0; i < probes; ++i) {
    if (!results[i].ok) continue;
    const SessionKey key = key_for(i);
    const auto opened = control.Open(key, ConfigFor(seed, i, feedback_budget));
    if (!opened.ok()) continue;
    DriveResult control_result;
    if (!DriveSession(&control, key, i, /*evict_chance_pct=*/0,
                      &control_result)) {
      std::fprintf(stderr, "control session %zu failed: %s\n", i,
                   control_result.error.c_str());
      continue;
    }
    const auto loaded = manager.Dump(key);
    const auto expected = control.Dump(key);
    if (!loaded.ok() || !expected.ok()) continue;
    ++finals_compared;
    if (*loaded == *expected) {
      ++finals_matched;
    } else {
      std::fprintf(stderr,
                   "FAIL: session %zu finals diverged after eviction/"
                   "rehydration\n", i);
    }
  }
  const bool finals_match = finals_compared > 0 &&
                            finals_matched == finals_compared;

  std::size_t closed = 0;
  for (std::size_t i = 0; i < num_sessions; ++i) {
    if (manager.Close(key_for(i)).ok()) ++closed;
  }

  std::sort(next_ms.begin(), next_ms.end());
  const double p50 = Percentile(next_ms, 0.50);
  const double p99 = Percentile(next_ms, 0.99);
  const double sessions_per_sec =
      wall_seconds > 0.0
          ? static_cast<double>(num_sessions - failures) / wall_seconds
          : 0.0;

  std::printf("bench_server: %zu sessions, %zu client threads, budget %zu "
              "bytes\n", num_sessions, num_threads, budget_bytes);
  std::printf("  wall     %.3fs  (%.1f sessions/sec to completion)\n",
              wall_seconds, sessions_per_sec);
  std::printf("  next     %zu calls, p50 %.3fms, p99 %.3fms\n",
              next_ms.size(), p50, p99);
  std::printf("  traffic  %zu feedbacks, %zu forced evicts\n", feedbacks,
              forced_evicts);
  std::printf("  manager  %zu evictions, %zu rehydrations, %zu opens\n",
              stats.evictions, stats.rehydrations, stats.opens);
  std::printf("  check    %zu/%zu probe finals bit-identical to "
              "never-evicted controls; %zu failures; %zu closed\n",
              finals_matched, finals_compared, failures, closed);

  if (FILE* out = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"server\",\n");
    std::fprintf(out, "  \"sessions\": %zu,\n", num_sessions);
    std::fprintf(out, "  \"client_threads\": %zu,\n", num_threads);
    std::fprintf(out, "  \"ranking_workers\": %zu,\n", workers);
    std::fprintf(out, "  \"memory_budget_bytes\": %zu,\n", budget_bytes);
    std::fprintf(out, "  \"feedback_budget\": %zu,\n", feedback_budget);
    std::fprintf(out, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(out, "  \"wall_seconds\": %.6f,\n", wall_seconds);
    std::fprintf(out, "  \"sessions_per_sec\": %.2f,\n", sessions_per_sec);
    std::fprintf(out, "  \"next_calls\": %zu,\n", next_ms.size());
    std::fprintf(out, "  \"next_p50_ms\": %.4f,\n", p50);
    std::fprintf(out, "  \"next_p99_ms\": %.4f,\n", p99);
    std::fprintf(out, "  \"feedbacks\": %zu,\n", feedbacks);
    std::fprintf(out, "  \"forced_evicts\": %zu,\n", forced_evicts);
    std::fprintf(out, "  \"evictions\": %zu,\n", stats.evictions);
    std::fprintf(out, "  \"rehydrations\": %zu,\n", stats.rehydrations);
    std::fprintf(out, "  \"session_failures\": %zu,\n", failures);
    std::fprintf(out, "  \"finals_compared\": %zu,\n", finals_compared);
    std::fprintf(out, "  \"finals_match\": %s\n",
                 finals_match ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::filesystem::remove_all(spill_dir);
  std::filesystem::remove_all(spill_dir + "_control");

  if (failures > 0) return 1;
  if (!finals_match) {
    std::fprintf(stderr, "FAIL: evicted sessions diverged from resident "
                 "controls\n");
    return 2;
  }
  if (budget_bytes > 0 && (stats.evictions == 0 || stats.rehydrations == 0)) {
    std::fprintf(stderr, "FAIL: the memory budget never forced an "
                 "eviction/rehydration cycle\n");
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace gdr::server

int main(int argc, char** argv) { return gdr::server::Run(argc, argv); }
