// Experiment sweep over the sharded repair data plane: a strategy ×
// workload × shard-count × thread-count grid, every cell one sharded
// repair run, all resolved through the content-keyed workload cache.
//
// Three portable signals come out (absolute timings are hardware-bound):
//   determinism   every cell's merged fingerprint is identical across
//                 thread counts and shard execution orders — exit 2 when
//                 any merge_deterministic/fingerprint_consistent flag is
//                 false.
//   cache         a grid that revisits a workload must record cache hits —
//                 exit 3 when hits were expected but none happened.
//   scaling       per-cell wall time vs shard/thread count, plus pool
//                 queue-depth/completed-task counters.
//
// Emits BENCH_sweep.json (see README for the reading guide).
//
// Flags: --workload=SPEC (repeatable; default two small built-ins)
//        --strategies=CSV of GDR|GDR-S-Learning|GDR-Learning|Random
//        --shards=CSV (default 1,2,4) --threads=CSV (default 1,2)
//        --seed=S (default 42) --ns=N (default 5)
//        --sample-every=N (default 50) --budget=N (default unlimited)
//        --cache-dir=PATH (default in-memory only)
//        --no-order-probe (skip the reverse-execution replicas)
//        --out=PATH (default BENCH_sweep.json)
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "plane/sweep.h"
#include "util/strings.h"

namespace gdr {
namespace {

// Parses "1,2,4" into sizes; exits with usage code 2 on garbage, matching
// the checked numeric flags in bench::Flags.
std::vector<std::size_t> ParseSizeList(const std::string& text,
                                       const char* flag) {
  std::vector<std::size_t> out;
  for (const std::string& token : SplitString(text, ',')) {
    const Result<std::uint64_t> parsed = ParseUint64(TrimWhitespace(token), flag);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      std::exit(2);
    }
    out.push_back(static_cast<std::size_t>(*parsed));
  }
  return out;
}

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);

  plane::SweepConfig config;
  config.workloads = bench::WorkloadSpecsOrDefaults(
      flags, {"dataset1:records=2000,seed=42", "dataset2:records=2000,seed=42"});
  for (const std::string& name :
       SplitString(flags.GetString("strategies", "GDR,GDR-S-Learning"), ',')) {
    const Result<Strategy> strategy = StrategyFromName(TrimWhitespace(name));
    if (!strategy.ok()) {
      std::fprintf(stderr, "--strategies: %s\n",
                   strategy.status().ToString().c_str());
      return 2;
    }
    config.strategies.push_back(*strategy);
  }
  config.shard_counts = ParseSizeList(flags.GetString("shards", "1,2,4"),
                                      "--shards");
  config.thread_counts = ParseSizeList(flags.GetString("threads", "1,2"),
                                       "--threads");
  config.seed = flags.GetUint("seed", 42);
  config.ns = static_cast<int>(flags.GetInt("ns", 5));
  config.sample_every =
      static_cast<std::size_t>(flags.GetInt("sample-every", 50));
  config.feedback_budget = static_cast<std::size_t>(
      flags.GetInt("budget",
                   static_cast<std::int64_t>(GdrOptions::kUnlimitedBudget)));
  config.verify_execution_order =
      flags.GetString("no-order-probe", "").empty();
  config.cache.cache_dir = flags.GetString("cache-dir", "");
  const std::string out_path = flags.GetString("out", "BENCH_sweep.json");

  auto report_or = plane::RunSweep(config);
  if (!report_or.ok()) {
    std::fprintf(stderr, "sweep: %s\n",
                 report_or.status().ToString().c_str());
    return 1;
  }
  const plane::SweepReport report = *std::move(report_or);

  std::printf("bench_sweep: %zu cells (%zu workloads x %zu strategies x %zu "
              "shard counts x %zu thread counts), hw=%u\n",
              report.cells.size(), config.workloads.size(),
              config.strategies.size(), config.shard_counts.size(),
              config.thread_counts.size(), report.hardware_concurrency);
  std::printf("%-28s %-16s %3s %3s %8s %8s %5s %5s %6s %5s\n", "workload",
              "strategy", "sh", "th", "resolve", "wall", "skew", "imp%",
              "fb", "flags");
  for (const plane::SweepCell& cell : report.cells) {
    std::printf(
        "%-28.28s %-16s %3zu %3zu %7.3fs %7.3fs %5.2f %5.1f %6zu %c%c%c\n",
        cell.workload_name.c_str(), cell.strategy.c_str(), cell.shard_count,
        cell.thread_count, cell.resolve_seconds, cell.wall_seconds,
        cell.shard_skew, cell.final_improvement_pct, cell.user_feedback,
        cell.cache_hit ? 'C' : '-', cell.merge_deterministic ? 'D' : '!',
        cell.fingerprint_consistent ? 'F' : '!');
  }
  std::printf("cache: %zu memory hits, %zu disk hits, %zu misses, %zu "
              "collisions resolved\n",
              report.cache.memory_hits, report.cache.disk_hits,
              report.cache.misses, report.cache.collisions_resolved);
  std::printf("total %.3fs\n", report.total_seconds);

  const std::string json = plane::SweepReportToJson(report);
  if (FILE* out = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (!report.determinism_ok) {
    std::fprintf(stderr,
                 "FAIL: merged results differ across thread counts or shard "
                 "execution orders\n");
    return 2;
  }
  if (report.cache_hits_expected && report.cache.hits() == 0) {
    std::fprintf(stderr,
                 "FAIL: grid revisited workloads but the cache recorded no "
                 "hits\n");
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace gdr

int main(int argc, char** argv) { return gdr::Run(argc, argv); }
