// Reproduces Figure 5 of the paper: "Accuracy vs. user efforts" (Appendix
// B.1). The user affords verifying F updates (x-axis: F as a percentage of
// the initially identified dirty tuples); GDR decides the rest of the
// updates automatically. Reports precision and recall of the applied
// repairs against the ground truth.
//
// Flags: --workload=name:key=val,... (repeatable; default dataset1 and
//         dataset2, parameterized by the legacy flags below)
//         --records=N (default 4000; pass --records=20000 for the paper's
//         scale — the interactive loop re-ranks the whole candidate pool
//         after every n_s labels, so full scale takes tens of minutes)
//         --seed=S (default 42)
//         --threads=T (VOI ranking workers; 1 serial, 0 = hardware)
#include <cstdio>

#include "bench/bench_util.h"
#include "cfd/violation_index.h"
#include "sim/experiment.h"
#include "util/stopwatch.h"

namespace gdr {
namespace {

void RunFigure5(const Dataset& dataset, const char* figure,
                std::uint64_t seed, std::size_t threads) {
  Table dirty = dataset.dirty;
  ViolationIndex index(&dirty, &dataset.rules);
  const std::size_t initial_dirty = index.DirtyRows().size();

  std::printf("== Figure 5%s: %s (E=%zu) ==\n", figure, dataset.name.c_str(),
              initial_dirty);
  std::printf("%10s %10s %10s %14s\n", "feedback%", "precision", "recall",
              "improvement%");
  for (int pct : {10, 20, 40, 60, 80, 100}) {
    Stopwatch watch;
    ExperimentConfig config;
    config.strategy = Strategy::kGdr;
    config.feedback_budget = static_cast<std::size_t>(
        static_cast<double>(initial_dirty) * pct / 100.0);
    config.seed = seed;
    config.num_threads = threads;
    config.sample_every = 1000000;  // only endpoints matter here
    auto result = RunStrategyExperiment(dataset, config);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%10d %10.3f %10.3f %14.1f   # feedback=%zu wall=%.1fs\n",
                pct, result->accuracy.Precision(),
                result->accuracy.Recall(), result->final_improvement_pct,
                result->stats.user_feedback, watch.ElapsedSeconds());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace gdr

int main(int argc, char** argv) {
  const gdr::bench::Flags flags(argc, argv);
  const std::string records = flags.GetString("records", "4000");
  const std::string seed = flags.GetString("seed", "42");
  const std::uint64_t experiment_seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::size_t threads =
      static_cast<std::size_t>(flags.GetInt("threads", 1));

  const auto specs = gdr::bench::WorkloadSpecsOrDefaults(
      flags, {"dataset1:records=" + records + ",seed=" + seed,
              "dataset2:records=" + records + ",seed=" + seed});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto dataset = gdr::bench::ResolveWorkloadCachedOrReport(specs[i]);
    if (!dataset.ok()) return 1;
    const std::string figure = "(" + std::string(1, char('a' + i % 26)) + ")";
    gdr::RunFigure5(**dataset, figure.c_str(), experiment_seed, threads);
  }
  return 0;
}
