// Microbenchmarks (google-benchmark) for the substrates GDR is built on:
// violation-index construction and incremental maintenance, hypothetical
// evaluation, update generation, VOI scoring, and the ML stack. Not a
// paper artifact — engineering instrumentation for this implementation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/gdr.h"
#include "core/grouping.h"
#include "core/quality.h"
#include "core/voi.h"
#include "ml/random_forest.h"
#include "repair/update_generator.h"
#include "sim/oracle.h"
#include "sim/stream_gen.h"
#include "util/flat_table.h"
#include "util/rng.h"
#include "util/string_similarity.h"
#include "workload/registry.h"

namespace gdr {
namespace {

// Overridable via --workload=name:key=val,... (stripped from argv before
// google-benchmark sees it); every fixture shares one resolved dataset.
std::string& WorkloadSpecText() {
  static std::string spec = "dataset1:records=10000,seed=7";
  return spec;
}

const Dataset& SharedDataset() {
  static Dataset* dataset = []() {
    auto resolved =
        WorkloadRegistry::Global().Resolve(WorkloadSpecText());
    if (!resolved.ok()) {
      std::fprintf(stderr, "workload '%s': %s\n", WorkloadSpecText().c_str(),
                   resolved.status().ToString().c_str());
      std::exit(1);
    }
    return new Dataset(*resolved);
  }();
  return *dataset;
}

void BM_ViolationIndexBuild(benchmark::State& state) {
  const Dataset& dataset = SharedDataset();
  for (auto _ : state) {
    Table table = dataset.dirty;
    ViolationIndex index(&table, &dataset.rules);
    benchmark::DoNotOptimize(index.TotalViolations());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dataset.dirty.num_rows()));
}
BENCHMARK(BM_ViolationIndexBuild)->Unit(benchmark::kMillisecond);

// Streaming ingestion head-to-head, per batch size (Arg = rows appended):
// BM_IndexAppendRow grows a ~10k-row base index incrementally by one batch
// of generated rows; BM_IndexRebuild constructs a from-scratch index over
// the equivalent final table. At small batches the incremental path should
// win by orders of magnitude; the crossover batch size is the number to
// watch across commits.
constexpr std::uint64_t kStreamBenchBase = 10'000;

StreamGenOptions StreamBenchOptions() {
  StreamGenOptions options;
  options.records = kStreamBenchBase;
  options.cities = 500;
  options.seed = 29;
  return options;
}

// Base table plus `extra` generated rows past the base, as strings.
std::vector<std::vector<std::string>> StreamBenchRows(std::uint64_t first,
                                                      std::uint64_t count) {
  const StreamGenOptions options = StreamBenchOptions();
  std::vector<std::vector<std::string>> rows(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    StreamGenRow(options, first + i, &rows[i]);
  }
  return rows;
}

void BM_IndexAppendRow(benchmark::State& state) {
  const StreamGenOptions options = StreamBenchOptions();
  auto rules_or = StreamGenRules(options);
  if (!rules_or.ok()) {
    state.SkipWithError("stream rules failed");
    return;
  }
  const RuleSet rules = *std::move(rules_or);
  const std::vector<std::vector<std::string>> base =
      StreamBenchRows(0, kStreamBenchBase);
  const std::vector<std::vector<std::string>> batch = StreamBenchRows(
      kStreamBenchBase, static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();  // rebuild the pre-append state outside the clock
    Table table(rules.schema());
    ViolationIndex index(&table, &rules);
    if (!index.AppendRows(base).ok()) {
      state.SkipWithError("base append failed");
      return;
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(index.AppendRows(batch).ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexAppendRow)->Arg(64)->Arg(512)->Arg(4096);

void BM_IndexRebuild(benchmark::State& state) {
  const StreamGenOptions options = StreamBenchOptions();
  auto rules_or = StreamGenRules(options);
  if (!rules_or.ok()) {
    state.SkipWithError("stream rules failed");
    return;
  }
  const RuleSet rules = *std::move(rules_or);
  Table final_table(rules.schema());
  for (const auto& row : StreamBenchRows(
           0, kStreamBenchBase + static_cast<std::uint64_t>(state.range(0)))) {
    if (!final_table.AppendRow(row).ok()) {
      state.SkipWithError("table append failed");
      return;
    }
  }
  for (auto _ : state) {
    Table table = final_table;
    ViolationIndex index(&table, &rules);
    benchmark::DoNotOptimize(index.TotalViolations());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexRebuild)->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_ApplyCellChange(benchmark::State& state) {
  const Dataset& dataset = SharedDataset();
  Table table = dataset.dirty;
  ViolationIndex index(&table, &dataset.rules);
  AttrId zip = table.schema().FindAttr("Zip");
  if (zip == kInvalidAttrId) zip = 0;  // generic workloads: any attr works
  Rng rng(3);
  for (auto _ : state) {
    const RowId row = static_cast<RowId>(rng.NextBounded(table.num_rows()));
    const ValueId value =
        static_cast<ValueId>(rng.NextBounded(table.DomainSize(zip)));
    const ValueId old = index.ApplyCellChange(row, zip, value);
    index.ApplyCellChange(row, zip, old);  // restore
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ApplyCellChange);

void BM_HypotheticalViolatedRuleCount(benchmark::State& state) {
  const Dataset& dataset = SharedDataset();
  Table table = dataset.dirty;
  ViolationIndex index(&table, &dataset.rules);
  AttrId zip = table.schema().FindAttr("Zip");
  if (zip == kInvalidAttrId) zip = 0;  // generic workloads: any attr works
  Rng rng(5);
  for (auto _ : state) {
    const RowId row = static_cast<RowId>(rng.NextBounded(table.num_rows()));
    const ValueId value =
        static_cast<ValueId>(rng.NextBounded(table.DomainSize(zip)));
    benchmark::DoNotOptimize(
        index.HypotheticalViolatedRuleCount(row, zip, value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HypotheticalViolatedRuleCount);

// First variable rule of the workload's rule set (the flattened group
// paths only exist for variable rules); kInvalidRuleId when none.
RuleId FirstVariableRule(const RuleSet& rules) {
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules.rule(static_cast<RuleId>(i)).IsVariable()) {
      return static_cast<RuleId>(i);
    }
  }
  return kInvalidRuleId;
}

void BM_GroupMembers(benchmark::State& state) {
  const Dataset& dataset = SharedDataset();
  Table table = dataset.dirty;
  ViolationIndex index(&table, &dataset.rules);
  const RuleId rule = FirstVariableRule(dataset.rules);
  if (rule == kInvalidRuleId) {
    state.SkipWithError("workload has no variable rule");
    return;
  }
  Rng rng(17);
  for (auto _ : state) {
    const RowId row = static_cast<RowId>(rng.NextBounded(table.num_rows()));
    benchmark::DoNotOptimize(index.GroupMembers(row, rule));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GroupMembers);

void BM_ViolationPartners(benchmark::State& state) {
  const Dataset& dataset = SharedDataset();
  Table table = dataset.dirty;
  ViolationIndex index(&table, &dataset.rules);
  const RuleId rule = FirstVariableRule(dataset.rules);
  if (rule == kInvalidRuleId) {
    state.SkipWithError("workload has no variable rule");
    return;
  }
  const std::vector<RowId> dirty = index.DirtyRows();
  if (dirty.empty()) {
    state.SkipWithError("workload has no dirty rows");
    return;
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    const RowId row = dirty[cursor++ % dirty.size()];
    benchmark::DoNotOptimize(index.ViolationPartners(row, rule));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ViolationPartners);

void BM_GroupRhsValueCount(benchmark::State& state) {
  const Dataset& dataset = SharedDataset();
  Table table = dataset.dirty;
  ViolationIndex index(&table, &dataset.rules);
  const RuleId rule = FirstVariableRule(dataset.rules);
  if (rule == kInvalidRuleId) {
    state.SkipWithError("workload has no variable rule");
    return;
  }
  const AttrId rhs = dataset.rules.rule(rule).rhs().attr;
  Rng rng(19);
  for (auto _ : state) {
    const RowId row = static_cast<RowId>(rng.NextBounded(table.num_rows()));
    const ValueId value =
        static_cast<ValueId>(rng.NextBounded(table.DomainSize(rhs)));
    benchmark::DoNotOptimize(index.GroupRhsValueCount(row, rule, value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GroupRhsValueCount);

// The scratch-delta contract, measured head-to-head: staging one
// hypothetical write and reading a rule aggregate, constructing a fresh
// ViolationDelta per evaluation (BM_DeltaConstruct) vs reusing one delta
// and Discard()ing between evaluations (BM_DeltaReuse — the VOI ranking
// inner loop). The gap is the per-hypothetical allocation cost the reuse
// contract removes.
void BM_DeltaConstruct(benchmark::State& state) {
  const Dataset& dataset = SharedDataset();
  Table table = dataset.dirty;
  ViolationIndex index(&table, &dataset.rules);
  AttrId zip = table.schema().FindAttr("Zip");
  if (zip == kInvalidAttrId) zip = 0;
  Rng rng(23);
  for (auto _ : state) {
    const RowId row = static_cast<RowId>(rng.NextBounded(table.num_rows()));
    const ValueId value =
        static_cast<ValueId>(rng.NextBounded(table.DomainSize(zip)));
    ViolationDelta delta(&index);
    delta.SetCell(row, zip, value);
    benchmark::DoNotOptimize(delta.TotalViolations());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeltaConstruct);

void BM_DeltaReuse(benchmark::State& state) {
  const Dataset& dataset = SharedDataset();
  Table table = dataset.dirty;
  ViolationIndex index(&table, &dataset.rules);
  AttrId zip = table.schema().FindAttr("Zip");
  if (zip == kInvalidAttrId) zip = 0;
  Rng rng(23);
  ViolationDelta delta(&index);
  for (auto _ : state) {
    const RowId row = static_cast<RowId>(rng.NextBounded(table.num_rows()));
    const ValueId value =
        static_cast<ValueId>(rng.NextBounded(table.DomainSize(zip)));
    delta.SetCell(row, zip, value);
    benchmark::DoNotOptimize(delta.TotalViolations());
    delta.Discard();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeltaReuse);

void BM_UpdateGeneration(benchmark::State& state) {
  const Dataset& dataset = SharedDataset();
  Table table = dataset.dirty;
  ViolationIndex index(&table, &dataset.rules);
  RepairState repair_state;
  UpdateGenerator generator(&index, &table, &repair_state);
  const std::vector<RowId> dirty = index.DirtyRows();
  std::size_t cursor = 0;
  for (auto _ : state) {
    const RowId row = dirty[cursor++ % dirty.size()];
    for (std::size_t a = 0; a < table.num_attrs(); ++a) {
      benchmark::DoNotOptimize(
          generator.UpdateAttributeTuple(row, static_cast<AttrId>(a)));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(table.num_attrs()));
}
BENCHMARK(BM_UpdateGeneration);

// The key → GroupId map substrate, head-to-head: the violation index's
// flat open-addressing table vs the std::unordered_map it replaced, over
// small vector keys with the index's FNV-1a hash. Misses are as common as
// hits on the hypothetical path, so half the probed keys are absent.
using LookupKey = std::vector<ValueId>;

struct LookupKeyHash {
  std::size_t operator()(const LookupKey& key) const {
    std::uint64_t h = 1469598103934665603ULL;
    for (ValueId id : key) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

constexpr std::size_t kLookupTableSize = 4096;

std::vector<LookupKey> LookupBenchKeys() {
  // 2x the table size: the second half never gets inserted (misses).
  Rng rng(31);
  std::vector<LookupKey> keys(2 * kLookupTableSize);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = {static_cast<ValueId>(rng.NextBounded(1 << 16)),
               static_cast<ValueId>(rng.NextBounded(1 << 16)),
               static_cast<ValueId>(i)};  // distinct by construction
  }
  return keys;
}

void BM_FlatTableLookup(benchmark::State& state) {
  const std::vector<LookupKey> keys = LookupBenchKeys();
  FlatTable<LookupKey, std::uint32_t, LookupKeyHash> table;
  for (std::size_t i = 0; i < kLookupTableSize; ++i) {
    table.Insert(keys[i], static_cast<std::uint32_t>(i));
  }
  Rng rng(37);
  for (auto _ : state) {
    const LookupKey& key = keys[rng.NextBounded(keys.size())];
    benchmark::DoNotOptimize(table.Find(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatTableLookup);

void BM_UnorderedMapLookup(benchmark::State& state) {
  const std::vector<LookupKey> keys = LookupBenchKeys();
  std::unordered_map<LookupKey, std::uint32_t, LookupKeyHash> table;
  for (std::size_t i = 0; i < kLookupTableSize; ++i) {
    table.emplace(keys[i], static_cast<std::uint32_t>(i));
  }
  Rng rng(37);
  for (auto _ : state) {
    const LookupKey& key = keys[rng.NextBounded(keys.size())];
    benchmark::DoNotOptimize(table.find(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnorderedMapLookup);

void BM_VoiUpdateBenefit(benchmark::State& state) {
  const Dataset& dataset = SharedDataset();
  Table table = dataset.dirty;
  ViolationIndex index(&table, &dataset.rules);
  RepairState repair_state;
  UpdateGenerator generator(&index, &table, &repair_state);
  const std::vector<double> weights = ContextRuleWeights(index);
  VoiRanker ranker(&index, &weights);
  // Collect a few hundred real updates to score.
  std::vector<Update> updates;
  for (RowId row : index.DirtyRows()) {
    for (std::size_t a = 0; a < table.num_attrs() && updates.size() < 512;
         ++a) {
      if (auto u = generator.UpdateAttributeTuple(row, static_cast<AttrId>(a))) {
        updates.push_back(*u);
      }
    }
    if (updates.size() >= 512) break;
  }
  // Scratch-reusing evaluation — the ranking inner loop's actual shape.
  ViolationDelta scratch(&index);
  std::size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ranker.UpdateBenefit(updates[cursor++ % updates.size()], &scratch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VoiUpdateBenefit);

// One full group-scoring pass over the engine's real round-one candidate
// pool, batched closed-form probes vs the per-update delta oracle — the
// ranking-layer view of the hot path BM_VoiUpdateBenefit measures per
// call. Same groups, same scores (bit-identical by the voi_batched
// suite); the gap is pure inner-loop cost.
struct RankFixture {
  explicit RankFixture(const Dataset& dataset)
      : table(dataset.dirty),
        oracle(&dataset.clean, {}),
        engine(&table, &dataset.rules, &oracle, {}) {}
  Table table;
  UserOracle oracle;
  GdrEngine engine;
  std::vector<UpdateGroup> groups;
  std::int64_t pooled_updates = 0;
};

RankFixture& SharedRankFixture() {
  static RankFixture* fixture = []() {
    auto* f = new RankFixture(SharedDataset());
    if (!f->engine.Initialize().ok()) {
      std::fprintf(stderr, "rank fixture: engine initialize failed\n");
      std::exit(1);
    }
    f->groups = GroupUpdates(f->engine.pool());
    for (const UpdateGroup& group : f->groups) {
      f->pooled_updates += static_cast<std::int64_t>(group.size());
    }
    return f;
  }();
  return *fixture;
}

void TimeRankPass(benchmark::State& state, VoiRanker::ScoringMode mode) {
  RankFixture& fixture = SharedRankFixture();
  const VoiRanker ranker(&fixture.engine.index(),
                         &fixture.engine.rule_weights(), nullptr, mode);
  for (auto _ : state) {
    const VoiRanker::Ranking ranking =
        ranker.Rank(fixture.groups, [](const Update& u) { return u.score; });
    benchmark::DoNotOptimize(ranking.order.data());
  }
  state.SetItemsProcessed(state.iterations() * fixture.pooled_updates);
}

void BM_ScoreGroupBatched(benchmark::State& state) {
  TimeRankPass(state, VoiRanker::ScoringMode::kBatched);
}
BENCHMARK(BM_ScoreGroupBatched)->Unit(benchmark::kMillisecond);

void BM_ScoreGroupPerUpdate(benchmark::State& state) {
  TimeRankPass(state, VoiRanker::ScoringMode::kPerUpdateOracle);
}
BENCHMARK(BM_ScoreGroupPerUpdate)->Unit(benchmark::kMillisecond);

void BM_EditDistance(benchmark::State& state) {
  const std::string a = "Michigan City";
  const std::string b = "Michigann Cty";
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EditDistance);

void BM_RandomForestTrain(benchmark::State& state) {
  FeatureSchema schema({{"a", FeatureType::kCategorical},
                        {"b", FeatureType::kCategorical},
                        {"c", FeatureType::kNumeric},
                        {"d", FeatureType::kNumeric}});
  TrainingSet set(schema, 3);
  Rng rng(11);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    const double a = static_cast<double>(rng.NextBounded(20));
    const double c = rng.NextDouble();
    (void)set.Add({{a, static_cast<double>(rng.NextBounded(5)), c,
                    rng.NextDouble()},
                   c > 0.6 ? 0 : (a > 10 ? 1 : 2)});
  }
  for (auto _ : state) {
    RandomForest forest;
    benchmark::DoNotOptimize(forest.Train(set).ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RandomForestTrain)->Arg(100)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_RandomForestPredict(benchmark::State& state) {
  FeatureSchema schema({{"a", FeatureType::kCategorical},
                        {"c", FeatureType::kNumeric}});
  TrainingSet set(schema, 3);
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double a = static_cast<double>(rng.NextBounded(20));
    const double c = rng.NextDouble();
    (void)set.Add({{a, c}, c > 0.6 ? 0 : (a > 10 ? 1 : 2)});
  }
  RandomForest forest;
  (void)forest.Train(set).ok();
  std::vector<double> x = {3.0, 0.4};
  for (auto _ : state) {
    x[1] = x[1] < 0.99 ? x[1] + 0.001 : 0.0;
    benchmark::DoNotOptimize(forest.Uncertainty(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomForestPredict);

// Flattened-forest inference head-to-head (Arg = rows per group): one
// VoteFractionsInto call per row (the per-update learner path) vs a single
// row-major VoteFractionsBatch over the whole group (the batched
// ConfirmProbabilities path). Both walk the same flattened SoA trees and
// produce bit-identical fractions; the gap is per-call overhead plus the
// tree-at-a-time locality the batch buys.
constexpr std::size_t kForestBenchFeatures = 6;

const RandomForest& ForestBenchForest() {
  static RandomForest* forest = []() {
    FeatureSchema schema({{"a", FeatureType::kCategorical},
                          {"b", FeatureType::kCategorical},
                          {"c", FeatureType::kNumeric},
                          {"d", FeatureType::kNumeric},
                          {"e", FeatureType::kNumeric},
                          {"f", FeatureType::kNumeric}});
    TrainingSet set(schema, 3);
    Rng rng(43);
    for (int i = 0; i < 1500; ++i) {
      const double a = static_cast<double>(rng.NextBounded(20));
      const double c = rng.NextDouble();
      (void)set.Add({{a, static_cast<double>(rng.NextBounded(5)), c,
                      rng.NextDouble(), rng.NextDouble(), rng.NextDouble()},
                     c > 0.6 ? 0 : (a > 10 ? 1 : 2)});
    }
    auto* f = new RandomForest();
    if (!f->Train(set).ok()) {
      std::fprintf(stderr, "forest bench: train failed\n");
      std::exit(1);
    }
    return f;
  }();
  return *forest;
}

// Row-major rows x kForestBenchFeatures probe matrix, deterministic.
std::vector<double> ForestBenchMatrix(std::size_t rows) {
  Rng rng(47);
  std::vector<double> matrix(rows * kForestBenchFeatures);
  for (std::size_t r = 0; r < rows; ++r) {
    matrix[r * kForestBenchFeatures + 0] =
        static_cast<double>(rng.NextBounded(20));
    matrix[r * kForestBenchFeatures + 1] =
        static_cast<double>(rng.NextBounded(5));
    for (std::size_t f = 2; f < kForestBenchFeatures; ++f) {
      matrix[r * kForestBenchFeatures + f] = rng.NextDouble();
    }
  }
  return matrix;
}

void BM_ForestPredictPerUpdate(benchmark::State& state) {
  const RandomForest& forest = ForestBenchForest();
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  const std::vector<double> matrix = ForestBenchMatrix(rows);
  std::vector<double> row(kForestBenchFeatures);
  std::vector<double> fractions;
  for (auto _ : state) {
    for (std::size_t r = 0; r < rows; ++r) {
      row.assign(matrix.begin() + static_cast<std::ptrdiff_t>(
                                      r * kForestBenchFeatures),
                 matrix.begin() + static_cast<std::ptrdiff_t>(
                                      (r + 1) * kForestBenchFeatures));
      forest.VoteFractionsInto(row, &fractions);
      benchmark::DoNotOptimize(fractions.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForestPredictPerUpdate)->Arg(4)->Arg(64)->Arg(1024);

void BM_ForestPredictBatch(benchmark::State& state) {
  const RandomForest& forest = ForestBenchForest();
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  const std::vector<double> matrix = ForestBenchMatrix(rows);
  std::vector<double> fractions;
  for (auto _ : state) {
    forest.VoteFractionsBatch(matrix.data(), rows, kForestBenchFeatures,
                              &fractions);
    benchmark::DoNotOptimize(fractions.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForestPredictBatch)->Arg(4)->Arg(64)->Arg(1024);

// The GroupCounts::CountOf scan in isolation (Arg = distinct RHS values in
// the group, i.e. the length of the (value, count) arrays the branchless
// mask-and loop walks). GroupCounts is private to the index, so the probe
// goes through GroupRhsValueCount over a synthetic one-group instance: all
// rows share the LHS key and every row holds a distinct RHS value, making
// the group's counts vector exactly Arg entries long.
void BM_CountOfScan(benchmark::State& state) {
  const std::size_t distinct = static_cast<std::size_t>(state.range(0));
  const Schema schema = *Schema::Make({"L", "R"});
  RuleSet rules(schema);
  if (!rules.AddRuleFromString("v1", "L -> R").ok()) {
    state.SkipWithError("rule parse failed");
    return;
  }
  Table table(schema);
  for (std::size_t i = 0; i < distinct; ++i) {
    if (!table.AppendRow({"k", "v" + std::to_string(i)}).ok()) {
      state.SkipWithError("append failed");
      return;
    }
  }
  ViolationIndex index(&table, &rules);
  const AttrId rhs = 1;
  Rng rng(53);
  for (auto _ : state) {
    const ValueId value =
        static_cast<ValueId>(rng.NextBounded(table.DomainSize(rhs)));
    benchmark::DoNotOptimize(index.GroupRhsValueCount(0, 0, value));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(distinct));
}
BENCHMARK(BM_CountOfScan)->Arg(4)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace gdr

// BENCHMARK_MAIN() with a --workload= pre-pass: the flag is consumed here
// (google-benchmark would reject it) and every fixture resolves through
// the workload registry.
int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workload=", 0) == 0) {
      gdr::WorkloadSpecText() = arg.substr(std::string("--workload=").size());
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
