// Streaming ingestion at million-row scale: chunked RowStream ->
// ViolationIndex::AppendRows, measured against a from-scratch index build
// over the identical final table.
//
// Two numbers matter: ingest rows/sec (the incremental path, end to end:
// generate + append + index maintenance per chunk) and rebuild seconds
// (one ViolationIndex construction over the finished table). The rebuild
// runs over a *copy* of the incrementally-built table, so both indexes
// share value dictionaries and every aggregate — violation counts, dirty
// set, rule weights, sampled VOI benefits — must be bit-identical. Any
// mismatch exits non-zero, which is the CI gate for the incremental
// index.
//
// Emits BENCH_stream.json. Absolute throughput is hardware-dependent
// (CI runs on small shared cores); the ratio incremental/rebuild and the
// match flags are the portable signals.
//
// Flags: --rows=N (default 1000000) --chunk=N (default 4096)
//        --cities=N (default 5000) --dirty_fraction=F (default 0.02)
//        --seed=S (default 11) --out=PATH (default BENCH_stream.json)
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cfd/violation_index.h"
#include "core/quality.h"
#include "core/voi.h"
#include "sim/stream_gen.h"
#include "util/stopwatch.h"
#include "workload/row_stream.h"

namespace gdr {
namespace {

struct Comparison {
  bool counts_match = true;
  bool dirty_match = true;
  bool weights_match = true;
  bool scores_match = true;
  std::size_t sampled_updates = 0;

  bool AllMatch() const {
    return counts_match && dirty_match && weights_match && scores_match;
  }
};

Comparison Compare(const ViolationIndex& streamed,
                   const ViolationIndex& rebuilt, const RuleSet& rules) {
  Comparison cmp;
  cmp.counts_match = streamed.TotalViolations() == rebuilt.TotalViolations();
  for (std::size_t r = 0; r < rules.size(); ++r) {
    const RuleId rid = static_cast<RuleId>(r);
    cmp.counts_match = cmp.counts_match &&
                       streamed.RuleViolations(rid) ==
                           rebuilt.RuleViolations(rid) &&
                       streamed.ViolatingCount(rid) ==
                           rebuilt.ViolatingCount(rid) &&
                       streamed.ContextCount(rid) == rebuilt.ContextCount(rid);
  }
  const std::vector<RowId> dirty = streamed.DirtyRows();
  cmp.dirty_match = dirty == rebuilt.DirtyRows();
  // Bit-equality on doubles is deliberate: the incremental path must not
  // merely approximate the rebuild, it must be the same computation.
  const std::vector<double> streamed_weights = ContextRuleWeights(streamed);
  cmp.weights_match = streamed_weights == ContextRuleWeights(rebuilt);

  VoiRanker streamed_ranker(&streamed, &streamed_weights);
  VoiRanker rebuilt_ranker(&rebuilt, &streamed_weights);
  const std::size_t num_rows = streamed.table().num_rows();
  const std::size_t sample = dirty.size() < 512 ? dirty.size() : 512;
  for (std::size_t i = 0; i < sample; ++i) {
    const RowId row = dirty[i];
    for (AttrId attr : {AttrId{1}, AttrId{2}}) {  // City, Zip
      Update update;
      update.row = row;
      update.attr = attr;
      // A value interned in both tables (they share dictionaries): the
      // same cell one row over.
      update.value = streamed.table().id_at(
          static_cast<RowId>((static_cast<std::size_t>(row) + 1) % num_rows),
          attr);
      cmp.scores_match =
          cmp.scores_match && streamed_ranker.UpdateBenefit(update) ==
                                  rebuilt_ranker.UpdateBenefit(update);
      ++cmp.sampled_updates;
    }
  }
  return cmp;
}

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  StreamGenOptions options;
  options.records =
      static_cast<std::uint64_t>(flags.GetInt("rows", 1'000'000));
  options.cities = static_cast<std::uint64_t>(flags.GetInt("cities", 5'000));
  options.dirty_fraction = flags.GetDouble("dirty_fraction", 0.02);
  options.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 11));
  const std::size_t chunk =
      static_cast<std::size_t>(flags.GetInt("chunk", 4096));
  const std::string out_path =
      flags.GetString("out", "BENCH_stream.json");

  auto rules_or = StreamGenRules(options);
  if (!rules_or.ok()) {
    std::fprintf(stderr, "rules: %s\n", rules_or.status().message().c_str());
    return 1;
  }
  const RuleSet rules = *std::move(rules_or);
  auto stream_or = MakeStreamGenStream(options);
  if (!stream_or.ok()) {
    std::fprintf(stderr, "stream: %s\n",
                 stream_or.status().message().c_str());
    return 1;
  }
  const std::unique_ptr<RowStream> stream = std::move(*stream_or);

  // Incremental: empty table, then chunked AppendRows through the index.
  Table table(rules.schema());
  ViolationIndex streamed(&table, &rules);
  std::vector<std::vector<std::string>> rows;
  const Stopwatch ingest_watch;
  std::size_t ingested = 0;
  while (true) {
    rows.clear();
    auto pulled = stream->NextChunk(chunk, &rows);
    if (!pulled.ok()) {
      std::fprintf(stderr, "stream: %s\n", pulled.status().message().c_str());
      return 1;
    }
    if (*pulled == 0) break;
    if (const auto appended = streamed.AppendRows(rows); !appended.ok()) {
      std::fprintf(stderr, "append: %s\n",
                   appended.status().message().c_str());
      return 1;
    }
    ingested += *pulled;
  }
  const double ingest_seconds = ingest_watch.ElapsedSeconds();

  // Rebuild: one index construction over a copy of the identical table.
  Table final_copy = table;
  const Stopwatch rebuild_watch;
  ViolationIndex rebuilt(&final_copy, &rules);
  const double rebuild_seconds = rebuild_watch.ElapsedSeconds();

  const Comparison cmp = Compare(streamed, rebuilt, rules);
  const double rows_per_sec =
      ingest_seconds > 0.0 ? static_cast<double>(ingested) / ingest_seconds
                           : 0.0;

  std::printf("bench_stream: %zu rows, chunk %zu\n", ingested, chunk);
  std::printf("  ingest   %.3fs  (%.0f rows/sec, incremental index)\n",
              ingest_seconds, rows_per_sec);
  std::printf("  rebuild  %.3fs  (from-scratch index over final table)\n",
              rebuild_seconds);
  std::printf("  dirty rows %zu, total violations %lld\n",
              streamed.DirtyRows().size(),
              static_cast<long long>(streamed.TotalViolations()));
  std::printf("  match: counts=%d dirty=%d weights=%d scores=%d (%zu "
              "sampled updates)\n",
              cmp.counts_match, cmp.dirty_match, cmp.weights_match,
              cmp.scores_match, cmp.sampled_updates);

  if (FILE* out = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"stream\",\n");
    std::fprintf(out, "  \"rows\": %zu,\n", ingested);
    std::fprintf(out, "  \"chunk\": %zu,\n", chunk);
    std::fprintf(out, "  \"cities\": %llu,\n",
                 static_cast<unsigned long long>(options.cities));
    std::fprintf(out, "  \"dirty_fraction\": %.6f,\n",
                 options.dirty_fraction);
    std::fprintf(out, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(options.seed));
    std::fprintf(out, "  \"ingest_seconds\": %.6f,\n", ingest_seconds);
    std::fprintf(out, "  \"ingest_rows_per_sec\": %.1f,\n", rows_per_sec);
    std::fprintf(out, "  \"rebuild_seconds\": %.6f,\n", rebuild_seconds);
    std::fprintf(out, "  \"incremental_vs_rebuild\": %.4f,\n",
                 rebuild_seconds > 0.0 ? ingest_seconds / rebuild_seconds
                                       : 0.0);
    std::fprintf(out, "  \"dirty_rows\": %zu,\n",
                 streamed.DirtyRows().size());
    std::fprintf(out, "  \"total_violations\": %lld,\n",
                 static_cast<long long>(streamed.TotalViolations()));
    std::fprintf(out, "  \"sampled_updates\": %zu,\n", cmp.sampled_updates);
    std::fprintf(out, "  \"counts_match\": %s,\n",
                 cmp.counts_match ? "true" : "false");
    std::fprintf(out, "  \"dirty_match\": %s,\n",
                 cmp.dirty_match ? "true" : "false");
    std::fprintf(out, "  \"weights_match\": %s,\n",
                 cmp.weights_match ? "true" : "false");
    std::fprintf(out, "  \"scores_match\": %s\n",
                 cmp.scores_match ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (!cmp.AllMatch()) {
    std::fprintf(stderr,
                 "FAIL: incremental index diverged from rebuild\n");
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace gdr

int main(int argc, char** argv) { return gdr::Run(argc, argv); }
