// Ablation study (DESIGN.md §5): GDR end-to-end quality as a function of
// the committee size k of the random-forest learner (the paper fixes
// k = 10, WEKA's default). Also sweeps the delegation accuracy bar.
//
// Flags: --workload=name:key=val,... (repeatable; default dataset1,
//         parameterized by the legacy flags below)
//        --records=N (default 10000) --seed=S --budget_pct=P (default 30)
#include <cstdio>

#include "bench/bench_util.h"
#include "cfd/violation_index.h"
#include "sim/experiment.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace gdr;
  const bench::Flags flags(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const auto specs = bench::WorkloadSpecsOrDefaults(
      flags, {"dataset1:records=" + flags.GetString("records", "10000") +
              ",seed=" + flags.GetString("seed", "42")});

  for (const std::string& spec : specs) {
    const auto resolved = bench::ResolveWorkloadCachedOrReport(spec);
    if (!resolved.ok()) return 1;
    const Dataset& dataset = **resolved;
    Table dirty = dataset.dirty;
    ViolationIndex probe(&dirty, &dataset.rules);
    const std::size_t budget = static_cast<std::size_t>(
        static_cast<double>(probe.DirtyRows().size()) *
        flags.GetDouble("budget_pct", 30.0) / 100.0);

    std::printf("== Forest-size ablation: %s, budget=%zu ==\n",
                dataset.name.c_str(), budget);
    std::printf("%6s %14s %10s %8s %8s\n", "k", "improvement%", "precision",
                "recall", "wall");
    for (int k : {1, 5, 10, 20}) {
      Stopwatch watch;
      // Route the committee size through the engine's learner options.
      Table working = dataset.dirty;
      UserOracle oracle(&dataset.clean);
      GdrOptions engine_options;
      engine_options.strategy = Strategy::kGdr;
      engine_options.feedback_budget = budget;
      engine_options.seed = seed;
      engine_options.learner.forest.num_trees = k;
      GdrEngine engine(&working, &dataset.rules, &oracle, engine_options);
      if (!engine.Initialize().ok() || !engine.Run().ok()) continue;
      QualityEvaluator evaluator(dataset.clean, &dataset.rules,
                                 engine.rule_weights());
      Table initial = dataset.dirty;
      ViolationIndex initial_index(&initial, &dataset.rules);
      const double initial_loss = evaluator.Loss(initial_index);
      auto accuracy =
          ComputeRepairAccuracy(dataset.dirty, working, dataset.clean);
      std::printf("%6d %14.1f %10.3f %8.3f %7.1fs\n", k,
                  evaluator.ImprovementPct(engine.index(), initial_loss),
                  accuracy->Precision(), accuracy->Recall(),
                  watch.ElapsedSeconds());
    }
  }
  return 0;
}
