#ifndef GDR_BENCH_BENCH_UTIL_H_
#define GDR_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace gdr::bench {

/// Minimal --key=value flag reader for the figure harnesses.
class Flags {
 public:
  Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

  std::int64_t GetInt(std::string_view name, std::int64_t default_value) const {
    const std::string value = GetRaw(name);
    return value.empty() ? default_value : std::atoll(value.c_str());
  }

  double GetDouble(std::string_view name, double default_value) const {
    const std::string value = GetRaw(name);
    return value.empty() ? default_value : std::atof(value.c_str());
  }

  std::string GetString(std::string_view name,
                        std::string_view default_value) const {
    const std::string value = GetRaw(name);
    return value.empty() ? std::string(default_value) : value;
  }

 private:
  std::string GetRaw(std::string_view name) const {
    const std::string prefix = "--" + std::string(name) + "=";
    for (int i = 1; i < argc_; ++i) {
      const std::string_view arg = argv_[i];
      if (arg.rfind(prefix, 0) == 0) {
        return std::string(arg.substr(prefix.size()));
      }
    }
    return "";
  }

  int argc_;
  char** argv_;
};

}  // namespace gdr::bench

#endif  // GDR_BENCH_BENCH_UTIL_H_
