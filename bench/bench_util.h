#ifndef GDR_BENCH_BENCH_UTIL_H_
#define GDR_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/dataset.h"
#include "util/result.h"
#include "util/strings.h"
#include "workload/registry.h"
#include "workload/workload_cache.h"

namespace gdr::bench {

/// Minimal --key=value flag reader for the figure harnesses.
class Flags {
 public:
  Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

  /// Numeric flags are parsed checked (util/strings.h): "--rows=12x" or an
  /// out-of-range magnitude aborts the run with usage exit code 2 instead
  /// of silently benchmarking a truncated atoll/atof value.
  std::int64_t GetInt(std::string_view name, std::int64_t default_value) const {
    const std::string value = GetRaw(name);
    if (value.empty()) return default_value;
    const Result<std::int64_t> parsed =
        ParseInt64(value, "--" + std::string(name));
    if (!parsed.ok()) FailUsage(parsed.status());
    return *parsed;
  }

  std::uint64_t GetUint(std::string_view name,
                        std::uint64_t default_value) const {
    const std::string value = GetRaw(name);
    if (value.empty()) return default_value;
    const Result<std::uint64_t> parsed =
        ParseUint64(value, "--" + std::string(name));
    if (!parsed.ok()) FailUsage(parsed.status());
    return *parsed;
  }

  double GetDouble(std::string_view name, double default_value) const {
    const std::string value = GetRaw(name);
    if (value.empty()) return default_value;
    const Result<double> parsed =
        ParseDouble(value, "--" + std::string(name));
    if (!parsed.ok()) FailUsage(parsed.status());
    return *parsed;
  }

  std::string GetString(std::string_view name,
                        std::string_view default_value) const {
    const std::string value = GetRaw(name);
    return value.empty() ? std::string(default_value) : value;
  }

  /// Every occurrence of --name=value, in command-line order (a flag may
  /// repeat, e.g. --workload= once per scenario).
  std::vector<std::string> GetStrings(std::string_view name) const {
    const std::string prefix = "--" + std::string(name) + "=";
    std::vector<std::string> values;
    for (int i = 1; i < argc_; ++i) {
      const std::string_view arg = argv_[i];
      if (arg.rfind(prefix, 0) == 0) {
        values.emplace_back(arg.substr(prefix.size()));
      }
    }
    return values;
  }

 private:
  [[noreturn]] static void FailUsage(const Status& status) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    std::exit(2);
  }

  std::string GetRaw(std::string_view name) const {
    const std::string prefix = "--" + std::string(name) + "=";
    for (int i = 1; i < argc_; ++i) {
      const std::string_view arg = argv_[i];
      if (arg.rfind(prefix, 0) == 0) {
        return std::string(arg.substr(prefix.size()));
      }
    }
    return "";
  }

  int argc_;
  char** argv_;
};

/// The shared --workload handling of every figure harness: the list of
/// --workload=name:key=val,... occurrences, or `defaults` (textual specs
/// too) when the flag is absent. Resolve each spec with
/// ResolveWorkloadCachedOrReport *inside* the per-workload loop so only one
/// freshly generated Dataset is materialized at a time (cached ones are
/// shared).
inline std::vector<std::string> WorkloadSpecsOrDefaults(
    const Flags& flags, const std::vector<std::string>& defaults) {
  std::vector<std::string> specs = flags.GetStrings("workload");
  return specs.empty() ? defaults : specs;
}

/// The process-wide workload cache behind every bench driver: a spec that
/// repeats — across --workload= occurrences, figure panels, or strategy
/// loops — resolves through generation + rule discovery once and is shared
/// read-only after that. Keyed by WorkloadSpec::Canonical(), so reordered
/// parameters still hit. Set GDR_WORKLOAD_CACHE_DIR to add the on-disk
/// layer (resolutions then persist across bench processes).
inline WorkloadCache& ProcessWorkloadCache() {
  static WorkloadCache* cache = [] {
    WorkloadCacheOptions options;
    if (const char* dir = std::getenv("GDR_WORKLOAD_CACHE_DIR")) {
      options.cache_dir = dir;
    }
    return new WorkloadCache(options);
  }();
  return *cache;
}

/// Cache-backed ResolveWorkloadOrReport: same error reporting (stderr note
/// plus the registered-workload listing), but repeated specs are cache
/// hits instead of re-runs.
inline Result<std::shared_ptr<const Dataset>> ResolveWorkloadCachedOrReport(
    const std::string& spec_text) {
  auto dataset = ProcessWorkloadCache().Resolve(spec_text);
  if (!dataset.ok()) {
    std::fprintf(stderr, "workload '%s': %s\nregistered workloads:\n%s",
                 spec_text.c_str(), dataset.status().ToString().c_str(),
                 FormatWorkloadListing(WorkloadRegistry::Global()).c_str());
  }
  return dataset;
}

}  // namespace gdr::bench

#endif  // GDR_BENCH_BENCH_UTIL_H_
