// Serial-vs-parallel VOI ranking on the Dataset 1 workload.
//
// Measures one full VoiRanker::Rank() pass (the Step-4 inner loop of
// Procedure 1) over the engine's real candidate pool, ranking the same
// groups with 1 worker (serial path) and with pools of 2/4/8 workers, and
// verifies the parallel scores are bit-identical to the serial ones —
// parallelism must only buy wall-clock, never change the chosen group.
//
// Emits a machine-readable BENCH_voi.json next to the human-readable
// table so the repo's bench trajectory is trackable across commits.
// Speedups are hardware-dependent; `hardware_concurrency` is recorded in
// the JSON so a 1-core CI result is not mistaken for a regression.
//
// Also emits BENCH_hotpath.json: the single-thread hot-path numbers
// (index-build seconds, UpdateBenefit ns/update for the reusable scratch
// delta, a fresh delta per update, and the group-batched closed-form
// probes, full serial Rank() seconds) so the perf trajectory tracks
// single-thread constant factors, not just parallel speedup — on 1-core
// bench hardware the constant factors are the whole story. The three
// benefit passes run interleaved within every repeat so old and new see
// the same thermal/cache conditions; per-group-size buckets and a
// group-size histogram localize where batching pays. `scores_match`
// asserts all evaluation paths (and both Rank modes) score
// bit-identically. Exit 2 = score mismatch; exit 3 = batched slower than
// the scratch delta it replaced.
//
// Flags: --workload=name:key=val,... (default dataset1, parameterized by
//        the legacy flags below; the first workload is measured)
//        --records=N (default 20000) --seed=S (default 42)
//        --repeats=R (default 5, best-of) --threads-max=T (default 8)
//        --out=PATH (default BENCH_voi.json)
//        --hotpath-out=PATH (default BENCH_hotpath.json)
#include <array>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/gdr.h"
#include "core/grouping.h"
#include "core/voi.h"
#include "sim/oracle.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gdr {
namespace {

struct Measurement {
  std::size_t threads = 1;
  double seconds = 0.0;   // best-of-repeats for one full Rank() pass
  double speedup = 1.0;   // serial seconds / this
  bool scores_match = true;
};

// Power-of-two-ish group-size buckets for the per-bucket hot-path numbers:
// batching amortizes staging over group size, so the win should grow with
// the bucket and the size-1 bucket bounds the staging overhead.
struct Bucket {
  const char* label;
  std::size_t max;  // inclusive upper bound on group size
};

constexpr std::size_t kNumBuckets = 6;

std::array<Bucket, kNumBuckets> BucketBounds() {
  return {{{"1", 1},
           {"2-3", 3},
           {"4-7", 7},
           {"8-15", 15},
           {"16-31", 31},
           {"32+", static_cast<std::size_t>(-1)}}};
}

std::size_t BucketOf(std::size_t size) {
  if (size <= 1) return 0;
  if (size <= 3) return 1;
  if (size <= 7) return 2;
  if (size <= 15) return 3;
  if (size <= 31) return 4;
  return 5;
}

double TimeRank(const VoiRanker& ranker, const std::vector<UpdateGroup>& groups,
                int repeats, VoiRanker::Ranking* out) {
  double best = -1.0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    *out = ranker.Rank(groups, [](const Update& u) { return u.score; });
    const double seconds = watch.ElapsedSeconds();
    if (best < 0.0 || seconds < best) best = seconds;
  }
  return best;
}

int RunBench(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t records =
      static_cast<std::size_t>(flags.GetInt("records", 20000));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  const std::size_t threads_max =
      static_cast<std::size_t>(flags.GetInt("threads-max", 8));

  // This bench measures exactly one workload: resolve only the first
  // --workload occurrence rather than materializing all of them.
  std::vector<std::string> specs = flags.GetStrings("workload");
  if (specs.empty()) {
    specs = {"dataset1:records=" + std::to_string(records) +
             ",seed=" + std::to_string(seed)};
  } else if (specs.size() > 1) {
    std::printf("note: measuring only the first workload (%s)\n",
                specs.front().c_str());
    specs.resize(1);
  }
  const auto resolved = bench::ResolveWorkloadCachedOrReport(specs.front());
  if (!resolved.ok()) return 1;
  const Dataset& dataset = **resolved;
  // Report the resolved instance, not the flag defaults: with --workload
  // the --records/--seed flags play no part in what was measured.
  const std::size_t resolved_rows = dataset.dirty.num_rows();

  // Real engine state: Initialize() detects violations and seeds the pool
  // exactly as the interactive loop would see it on round one.
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean, {});
  GdrEngine engine(&working, &dataset.rules, &oracle, {});
  if (Status status = engine.Initialize(); !status.ok()) {
    std::printf("initialize: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::vector<UpdateGroup> groups = GroupUpdates(engine.pool());
  std::size_t updates = 0;
  for (const UpdateGroup& group : groups) updates += group.size();
  std::printf("== bench_parallel_voi: %s ==\n", dataset.name.c_str());
  std::printf(
      "workload=%s records=%zu groups=%zu updates=%zu repeats=%d "
      "hw_threads=%u\n",
      specs.front().c_str(), resolved_rows, groups.size(), updates, repeats,
      std::thread::hardware_concurrency());

  // Serial reference (scratch-reusing hot path — what Rank always does).
  VoiRanker serial(&engine.index(), &engine.rule_weights());
  VoiRanker::Ranking reference;
  const double serial_seconds = TimeRank(serial, groups, repeats, &reference);

  // ---- Single-thread hot-path section (BENCH_hotpath.json) ------------
  // Index build: full scan over the dirty instance.
  double build_seconds = -1.0;
  for (int r = 0; r < repeats; ++r) {
    Table rebuild_table = dataset.dirty;
    Stopwatch watch;
    ViolationIndex rebuilt(&rebuild_table, &dataset.rules);
    const double seconds = watch.ElapsedSeconds();
    if (rebuilt.TotalViolations() != engine.index().TotalViolations()) {
      std::printf("index rebuild mismatch\n");
      return 1;
    }
    if (build_seconds < 0.0 || seconds < build_seconds) {
      build_seconds = seconds;
    }
  }

  // UpdateBenefit over every pooled update, three ways: the reused scratch
  // delta (the pre-batching ranking inner loop), a fresh delta per update
  // (the pre-scratch contract), and the group-batched closed-form probes
  // (the current inner loop). The three passes are interleaved within each
  // repeat — back-to-back over the same groups — so frequency scaling or
  // cache warm-up hits old and new equally, and all benefits must be
  // bit-identical.
  std::vector<Update> flat;
  flat.reserve(updates);
  for (const UpdateGroup& group : groups) {
    flat.insert(flat.end(), group.updates.begin(), group.updates.end());
  }
  const std::array<Bucket, kNumBuckets> bucket_bounds = BucketBounds();
  std::array<std::size_t, kNumBuckets> bucket_groups{};
  std::array<std::size_t, kNumBuckets> bucket_updates{};
  std::map<std::size_t, std::size_t> size_histogram;
  for (const UpdateGroup& group : groups) {
    const std::size_t b = BucketOf(group.size());
    ++bucket_groups[b];
    bucket_updates[b] += group.size();
    ++size_histogram[group.size()];
  }

  std::vector<double> scratch_benefits(flat.size(), 0.0);
  std::vector<double> fresh_benefits(flat.size(), 0.0);
  std::vector<double> batched_benefits(flat.size(), 0.0);
  double scratch_seconds = -1.0;
  double fresh_seconds = -1.0;
  double batched_seconds = -1.0;
  std::array<double, kNumBuckets> scratch_bucket_seconds{};
  std::array<double, kNumBuckets> batched_bucket_seconds{};
  for (int r = 0; r < repeats; ++r) {
    {  // old: one reused ViolationDelta, per-update staging
      ViolationDelta scratch(&engine.index());
      std::array<double, kNumBuckets> buckets{};
      double total = 0.0;
      std::size_t i = 0;
      for (const UpdateGroup& group : groups) {
        Stopwatch watch;
        for (const Update& update : group.updates) {
          scratch_benefits[i++] = serial.UpdateBenefit(update, &scratch);
        }
        const double seconds = watch.ElapsedSeconds();
        buckets[BucketOf(group.size())] += seconds;
        total += seconds;
      }
      if (scratch_seconds < 0.0 || total < scratch_seconds) {
        scratch_seconds = total;
        scratch_bucket_seconds = buckets;
      }
    }
    {  // older still: a fresh delta constructed per update
      Stopwatch watch;
      for (std::size_t i = 0; i < flat.size(); ++i) {
        fresh_benefits[i] = serial.UpdateBenefit(flat[i]);
      }
      const double seconds = watch.ElapsedSeconds();
      if (fresh_seconds < 0.0 || seconds < fresh_seconds) {
        fresh_seconds = seconds;
      }
    }
    {  // new: one HypotheticalBatch staged per group, closed-form probes
      HypotheticalBatch batch(&engine.index());
      std::array<double, kNumBuckets> buckets{};
      double total = 0.0;
      std::size_t i = 0;
      for (const UpdateGroup& group : groups) {
        Stopwatch watch;
        for (const Update& update : group.updates) {
          batched_benefits[i++] = serial.UpdateBenefit(update, &batch);
        }
        const double seconds = watch.ElapsedSeconds();
        buckets[BucketOf(group.size())] += seconds;
        total += seconds;
      }
      if (batched_seconds < 0.0 || total < batched_seconds) {
        batched_seconds = total;
        batched_bucket_seconds = buckets;
      }
    }
  }
  const bool benefits_match = scratch_benefits == fresh_benefits &&
                              scratch_benefits == batched_benefits;
  const double ns_per_update_reuse =
      flat.empty() ? 0.0 : scratch_seconds / flat.size() * 1e9;
  const double ns_per_update_construct =
      flat.empty() ? 0.0 : fresh_seconds / flat.size() * 1e9;
  const double ns_per_update_batched =
      flat.empty() ? 0.0 : batched_seconds / flat.size() * 1e9;
  const double batched_speedup =
      batched_seconds > 0.0 ? scratch_seconds / batched_seconds : 0.0;
  std::printf(
      "hotpath: build=%.4fs benefit-scratch=%.0fns benefit-fresh=%.0fns "
      "benefit-batched=%.0fns (%.2fx vs scratch) serial-rank=%.4fs "
      "benefits-match=%s\n",
      build_seconds, ns_per_update_reuse, ns_per_update_construct,
      ns_per_update_batched, batched_speedup, serial_seconds,
      benefits_match ? "yes" : "NO");
  std::printf("%10s %7s %8s %11s %11s %8s\n", "group-size", "groups",
              "updates", "scratch-ns", "batched-ns", "speedup");
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (bucket_groups[b] == 0) continue;
    const double n = static_cast<double>(bucket_updates[b]);
    const double scratch_ns = scratch_bucket_seconds[b] / n * 1e9;
    const double batched_ns = batched_bucket_seconds[b] / n * 1e9;
    std::printf("%10s %7zu %8zu %11.0f %11.0f %7.2fx\n",
                bucket_bounds[b].label, bucket_groups[b], bucket_updates[b],
                scratch_ns, batched_ns,
                batched_ns > 0.0 ? scratch_ns / batched_ns : 0.0);
  }

  // Batched Rank must also agree with the per-update-oracle mode end to
  // end — same scores, same chosen order.
  VoiRanker oracle_ranker(&engine.index(), &engine.rule_weights(), nullptr,
                          VoiRanker::ScoringMode::kPerUpdateOracle);
  VoiRanker::Ranking oracle_ranking;
  const double oracle_rank_seconds =
      TimeRank(oracle_ranker, groups, repeats, &oracle_ranking);
  const bool rank_modes_match =
      oracle_ranking.scores == reference.scores &&
      oracle_ranking.order == reference.order;
  std::printf("rank: batched=%.4fs oracle=%.4fs modes-match=%s\n",
              serial_seconds, oracle_rank_seconds,
              rank_modes_match ? "yes" : "NO");

  std::vector<Measurement> results;
  results.push_back({1, serial_seconds, 1.0, true});
  for (std::size_t threads = 2; threads <= threads_max; threads *= 2) {
    ThreadPool pool(threads);
    VoiRanker ranker(&engine.index(), &engine.rule_weights(), &pool);
    VoiRanker::Ranking ranking;
    Measurement m;
    m.threads = threads;
    m.seconds = TimeRank(ranker, groups, repeats, &ranking);
    m.speedup = m.seconds > 0.0 ? serial_seconds / m.seconds : 0.0;
    m.scores_match = ranking.scores == reference.scores &&
                     ranking.order == reference.order;
    results.push_back(m);
  }

  std::printf("%8s %14s %10s %14s\n", "threads", "rank-seconds", "speedup",
              "scores-match");
  bool all_match = true;
  for (const Measurement& m : results) {
    std::printf("%8zu %14.4f %9.2fx %14s\n", m.threads, m.seconds, m.speedup,
                m.scores_match ? "yes" : "NO");
    all_match = all_match && m.scores_match;
  }

  const std::string out_path = flags.GetString("out", "BENCH_voi.json");
  if (FILE* out = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"parallel_voi\",\n"
                 "  \"dataset\": \"%s\",\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"records\": %zu,\n"
                 "  \"groups\": %zu,\n"
                 "  \"updates\": %zu,\n"
                 "  \"repeats\": %d,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"results\": [\n",
                 dataset.name.c_str(), specs.front().c_str(), resolved_rows,
                 groups.size(), updates, repeats,
                 std::thread::hardware_concurrency());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Measurement& m = results[i];
      std::fprintf(out,
                   "    {\"threads\": %zu, \"rank_seconds\": %.6f, "
                   "\"speedup\": %.3f, \"scores_match\": %s}%s\n",
                   m.threads, m.seconds, m.speedup,
                   m.scores_match ? "true" : "false",
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::printf("could not write %s\n", out_path.c_str());
  }

  const std::string hotpath_path =
      flags.GetString("hotpath-out", "BENCH_hotpath.json");
  if (FILE* out = std::fopen(hotpath_path.c_str(), "w")) {
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"hotpath\",\n"
        "  \"dataset\": \"%s\",\n"
        "  \"workload\": \"%s\",\n"
        "  \"records\": %zu,\n"
        "  \"groups\": %zu,\n"
        "  \"updates\": %zu,\n"
        "  \"repeats\": %d,\n"
        "  \"hardware_concurrency\": %u,\n"
        "  \"index_build_seconds\": %.6f,\n"
        "  \"update_benefit_ns_scratch_reuse\": %.1f,\n"
        "  \"update_benefit_ns_fresh_delta\": %.1f,\n"
        "  \"update_benefit_ns_batched\": %.1f,\n"
        "  \"batched_speedup_vs_scratch\": %.3f,\n"
        "  \"serial_rank_seconds\": %.6f,\n"
        "  \"oracle_rank_seconds\": %.6f,\n"
        "  \"scores_match\": %s,\n",
        dataset.name.c_str(), specs.front().c_str(), resolved_rows,
        groups.size(), updates, repeats, std::thread::hardware_concurrency(),
        build_seconds, ns_per_update_reuse, ns_per_update_construct,
        ns_per_update_batched, batched_speedup, serial_seconds,
        oracle_rank_seconds,
        benefits_match && all_match && rank_modes_match ? "true" : "false");
    std::fprintf(out, "  \"group_size_buckets\": [\n");
    bool first_bucket = true;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      if (bucket_groups[b] == 0) continue;
      const double n = static_cast<double>(bucket_updates[b]);
      std::fprintf(out,
                   "%s    {\"sizes\": \"%s\", \"groups\": %zu, "
                   "\"updates\": %zu, \"scratch_ns\": %.1f, "
                   "\"batched_ns\": %.1f}",
                   first_bucket ? "" : ",\n", bucket_bounds[b].label,
                   bucket_groups[b], bucket_updates[b],
                   scratch_bucket_seconds[b] / n * 1e9,
                   batched_bucket_seconds[b] / n * 1e9);
      first_bucket = false;
    }
    std::fprintf(out, "\n  ],\n  \"group_size_histogram\": [");
    bool first_size = true;
    for (const auto& [size, count] : size_histogram) {
      std::fprintf(out, "%s{\"size\": %zu, \"groups\": %zu}",
                   first_size ? "" : ", ", size, count);
      first_size = false;
    }
    std::fprintf(out, "]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", hotpath_path.c_str());
  } else {
    std::printf("could not write %s\n", hotpath_path.c_str());
  }
  if (!(all_match && benefits_match && rank_modes_match)) return 2;
  // The perf gate: the batched inner loop must not lose to the scratch
  // delta it replaced at this workload's scale.
  if (batched_seconds > scratch_seconds) {
    std::fprintf(stderr,
                 "FAIL: batched scoring slower than scratch-delta "
                 "(%.0fns vs %.0fns per update)\n",
                 ns_per_update_batched, ns_per_update_reuse);
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace gdr

int main(int argc, char** argv) { return gdr::RunBench(argc, argv); }
