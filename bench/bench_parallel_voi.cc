// Serial-vs-parallel VOI ranking on the Dataset 1 workload.
//
// Measures one full VoiRanker::Rank() pass (the Step-4 inner loop of
// Procedure 1) over the engine's real candidate pool, ranking the same
// groups with 1 worker (serial path) and with pools of 2/4/8 workers, and
// verifies the parallel scores are bit-identical to the serial ones —
// parallelism must only buy wall-clock, never change the chosen group.
//
// Emits a machine-readable BENCH_voi.json next to the human-readable
// table so the repo's bench trajectory is trackable across commits.
// Speedups are hardware-dependent; `hardware_concurrency` is recorded in
// the JSON so a 1-core CI result is not mistaken for a regression.
//
// Also emits BENCH_hotpath.json: the single-thread hot-path numbers
// (index-build seconds, UpdateBenefit ns/update for the reusable scratch
// delta, a fresh delta per update, and the group-batched closed-form
// probes, full serial Rank() seconds) so the perf trajectory tracks
// single-thread constant factors, not just parallel speedup — on 1-core
// bench hardware the constant factors are the whole story. The three
// benefit passes run interleaved within every repeat so old and new see
// the same thermal/cache conditions; per-group-size buckets and a
// group-size histogram localize where batching pays. `scores_match`
// asserts all evaluation paths (and both Rank modes) score
// bit-identically. Exit 2 = score mismatch; exit 3 = batched slower than
// the scratch delta it replaced.
//
// The `learner` section measures p~ with real trained committees: the
// bank learns from ground-truth oracle feedback over the whole pool, then
// ConfirmProbability per update and ConfirmProbabilities per group run
// interleaved within each repeat (same flattened forests, same thermal
// state), plus end-to-end Rank in both inference modes at 1..T threads
// with scores_match/order_match flags. The bank's phase counters
// (feature-encode / tree-walk seconds) land in the JSON so the learner's
// share of ranking time is trackable. Exit 2 also covers any batched-vs-
// scalar probability or ranking divergence; exit 3 also fires when the
// batched learner path loses to the per-update path it replaces.
//
// Flags: --workload=name:key=val,... (default dataset1, parameterized by
//        the legacy flags below; the first workload is measured)
//        --records=N (default 20000) --seed=S (default 42)
//        --repeats=R (default 5, best-of) --threads-max=T (default 8)
//        --out=PATH (default BENCH_voi.json)
//        --hotpath-out=PATH (default BENCH_hotpath.json)
#include <array>
#include <cstdio>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/gdr.h"
#include "core/grouping.h"
#include "core/learner_bank.h"
#include "core/voi.h"
#include "sim/oracle.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gdr {
namespace {

struct Measurement {
  std::size_t threads = 1;
  double seconds = 0.0;   // best-of-repeats for one full Rank() pass
  double speedup = 1.0;   // serial seconds / this
  bool scores_match = true;
};

// Power-of-two-ish group-size buckets for the per-bucket hot-path numbers:
// batching amortizes staging over group size, so the win should grow with
// the bucket and the size-1 bucket bounds the staging overhead.
struct Bucket {
  const char* label;
  std::size_t max;  // inclusive upper bound on group size
};

constexpr std::size_t kNumBuckets = 6;

std::array<Bucket, kNumBuckets> BucketBounds() {
  return {{{"1", 1},
           {"2-3", 3},
           {"4-7", 7},
           {"8-15", 15},
           {"16-31", 31},
           {"32+", static_cast<std::size_t>(-1)}}};
}

std::size_t BucketOf(std::size_t size) {
  if (size <= 1) return 0;
  if (size <= 3) return 1;
  if (size <= 7) return 2;
  if (size <= 15) return 3;
  if (size <= 31) return 4;
  return 5;
}

double TimeRank(const VoiRanker& ranker, const std::vector<UpdateGroup>& groups,
                int repeats, VoiRanker::Ranking* out) {
  double best = -1.0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    *out = ranker.Rank(groups, [](const Update& u) { return u.score; });
    const double seconds = watch.ElapsedSeconds();
    if (best < 0.0 || seconds < best) best = seconds;
  }
  return best;
}

int RunBench(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t records =
      static_cast<std::size_t>(flags.GetInt("records", 20000));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  const std::size_t threads_max =
      static_cast<std::size_t>(flags.GetInt("threads-max", 8));

  // This bench measures exactly one workload: resolve only the first
  // --workload occurrence rather than materializing all of them.
  std::vector<std::string> specs = flags.GetStrings("workload");
  if (specs.empty()) {
    specs = {"dataset1:records=" + std::to_string(records) +
             ",seed=" + std::to_string(seed)};
  } else if (specs.size() > 1) {
    std::printf("note: measuring only the first workload (%s)\n",
                specs.front().c_str());
    specs.resize(1);
  }
  const auto resolved = bench::ResolveWorkloadCachedOrReport(specs.front());
  if (!resolved.ok()) return 1;
  const Dataset& dataset = **resolved;
  // Report the resolved instance, not the flag defaults: with --workload
  // the --records/--seed flags play no part in what was measured.
  const std::size_t resolved_rows = dataset.dirty.num_rows();

  // Real engine state: Initialize() detects violations and seeds the pool
  // exactly as the interactive loop would see it on round one.
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean, {});
  GdrEngine engine(&working, &dataset.rules, &oracle, {});
  if (Status status = engine.Initialize(); !status.ok()) {
    std::printf("initialize: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::vector<UpdateGroup> groups = GroupUpdates(engine.pool());
  std::size_t updates = 0;
  for (const UpdateGroup& group : groups) updates += group.size();
  std::printf("== bench_parallel_voi: %s ==\n", dataset.name.c_str());
  std::printf(
      "workload=%s records=%zu groups=%zu updates=%zu repeats=%d "
      "hw_threads=%u\n",
      specs.front().c_str(), resolved_rows, groups.size(), updates, repeats,
      std::thread::hardware_concurrency());

  // Serial reference (scratch-reusing hot path — what Rank always does).
  VoiRanker serial(&engine.index(), &engine.rule_weights());
  VoiRanker::Ranking reference;
  const double serial_seconds = TimeRank(serial, groups, repeats, &reference);

  // ---- Single-thread hot-path section (BENCH_hotpath.json) ------------
  // Index build: full scan over the dirty instance.
  double build_seconds = -1.0;
  for (int r = 0; r < repeats; ++r) {
    Table rebuild_table = dataset.dirty;
    Stopwatch watch;
    ViolationIndex rebuilt(&rebuild_table, &dataset.rules);
    const double seconds = watch.ElapsedSeconds();
    if (rebuilt.TotalViolations() != engine.index().TotalViolations()) {
      std::printf("index rebuild mismatch\n");
      return 1;
    }
    if (build_seconds < 0.0 || seconds < build_seconds) {
      build_seconds = seconds;
    }
  }

  // UpdateBenefit over every pooled update, three ways: the reused scratch
  // delta (the pre-batching ranking inner loop), a fresh delta per update
  // (the pre-scratch contract), and the group-batched closed-form probes
  // (the current inner loop). The three passes are interleaved within each
  // repeat — back-to-back over the same groups — so frequency scaling or
  // cache warm-up hits old and new equally, and all benefits must be
  // bit-identical.
  std::vector<Update> flat;
  flat.reserve(updates);
  for (const UpdateGroup& group : groups) {
    flat.insert(flat.end(), group.updates.begin(), group.updates.end());
  }
  const std::array<Bucket, kNumBuckets> bucket_bounds = BucketBounds();
  std::array<std::size_t, kNumBuckets> bucket_groups{};
  std::array<std::size_t, kNumBuckets> bucket_updates{};
  std::map<std::size_t, std::size_t> size_histogram;
  for (const UpdateGroup& group : groups) {
    const std::size_t b = BucketOf(group.size());
    ++bucket_groups[b];
    bucket_updates[b] += group.size();
    ++size_histogram[group.size()];
  }

  std::vector<double> scratch_benefits(flat.size(), 0.0);
  std::vector<double> fresh_benefits(flat.size(), 0.0);
  std::vector<double> batched_benefits(flat.size(), 0.0);
  double scratch_seconds = -1.0;
  double fresh_seconds = -1.0;
  double batched_seconds = -1.0;
  std::array<double, kNumBuckets> scratch_bucket_seconds{};
  std::array<double, kNumBuckets> batched_bucket_seconds{};
  for (int r = 0; r < repeats; ++r) {
    {  // old: one reused ViolationDelta, per-update staging
      ViolationDelta scratch(&engine.index());
      std::array<double, kNumBuckets> buckets{};
      double total = 0.0;
      std::size_t i = 0;
      for (const UpdateGroup& group : groups) {
        Stopwatch watch;
        for (const Update& update : group.updates) {
          scratch_benefits[i++] = serial.UpdateBenefit(update, &scratch);
        }
        const double seconds = watch.ElapsedSeconds();
        buckets[BucketOf(group.size())] += seconds;
        total += seconds;
      }
      if (scratch_seconds < 0.0 || total < scratch_seconds) {
        scratch_seconds = total;
        scratch_bucket_seconds = buckets;
      }
    }
    {  // older still: a fresh delta constructed per update
      Stopwatch watch;
      for (std::size_t i = 0; i < flat.size(); ++i) {
        fresh_benefits[i] = serial.UpdateBenefit(flat[i]);
      }
      const double seconds = watch.ElapsedSeconds();
      if (fresh_seconds < 0.0 || seconds < fresh_seconds) {
        fresh_seconds = seconds;
      }
    }
    {  // new: one HypotheticalBatch staged per group, closed-form probes
      HypotheticalBatch batch(&engine.index());
      std::array<double, kNumBuckets> buckets{};
      double total = 0.0;
      std::size_t i = 0;
      for (const UpdateGroup& group : groups) {
        Stopwatch watch;
        for (const Update& update : group.updates) {
          batched_benefits[i++] = serial.UpdateBenefit(update, &batch);
        }
        const double seconds = watch.ElapsedSeconds();
        buckets[BucketOf(group.size())] += seconds;
        total += seconds;
      }
      if (batched_seconds < 0.0 || total < batched_seconds) {
        batched_seconds = total;
        batched_bucket_seconds = buckets;
      }
    }
  }
  const bool benefits_match = scratch_benefits == fresh_benefits &&
                              scratch_benefits == batched_benefits;
  const double ns_per_update_reuse =
      flat.empty() ? 0.0 : scratch_seconds / flat.size() * 1e9;
  const double ns_per_update_construct =
      flat.empty() ? 0.0 : fresh_seconds / flat.size() * 1e9;
  const double ns_per_update_batched =
      flat.empty() ? 0.0 : batched_seconds / flat.size() * 1e9;
  const double batched_speedup =
      batched_seconds > 0.0 ? scratch_seconds / batched_seconds : 0.0;
  std::printf(
      "hotpath: build=%.4fs benefit-scratch=%.0fns benefit-fresh=%.0fns "
      "benefit-batched=%.0fns (%.2fx vs scratch) serial-rank=%.4fs "
      "benefits-match=%s\n",
      build_seconds, ns_per_update_reuse, ns_per_update_construct,
      ns_per_update_batched, batched_speedup, serial_seconds,
      benefits_match ? "yes" : "NO");
  std::printf("%10s %7s %8s %11s %11s %8s\n", "group-size", "groups",
              "updates", "scratch-ns", "batched-ns", "speedup");
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (bucket_groups[b] == 0) continue;
    const double n = static_cast<double>(bucket_updates[b]);
    const double scratch_ns = scratch_bucket_seconds[b] / n * 1e9;
    const double batched_ns = batched_bucket_seconds[b] / n * 1e9;
    std::printf("%10s %7zu %8zu %11.0f %11.0f %7.2fx\n",
                bucket_bounds[b].label, bucket_groups[b], bucket_updates[b],
                scratch_ns, batched_ns,
                batched_ns > 0.0 ? scratch_ns / batched_ns : 0.0);
  }

  // Batched Rank must also agree with the per-update-oracle mode end to
  // end — same scores, same chosen order.
  VoiRanker oracle_ranker(&engine.index(), &engine.rule_weights(), nullptr,
                          VoiRanker::ScoringMode::kPerUpdateOracle);
  VoiRanker::Ranking oracle_ranking;
  const double oracle_rank_seconds =
      TimeRank(oracle_ranker, groups, repeats, &oracle_ranking);
  const bool rank_modes_match =
      oracle_ranking.scores == reference.scores &&
      oracle_ranking.order == reference.order;
  std::printf("rank: batched=%.4fs oracle=%.4fs modes-match=%s\n",
              serial_seconds, oracle_rank_seconds,
              rank_modes_match ? "yes" : "NO");

  // ---- Learner-inference section (BENCH_hotpath.json "learner") -------
  // Train the bank the way a real session would: the simulated user
  // answers every pooled update from ground truth, the bank retrains once
  // per attribute. Attributes below min_training_examples stay on the
  // score fallback — `trained_attrs` records how many actually predict.
  LearnerBank bank(&working, &engine.index(), {});
  for (const UpdateGroup& group : groups) {
    for (const Update& update : group.updates) {
      const Feedback feedback = oracle.GetFeedback(working, update);
      if (Status status = bank.AddFeedback(update, feedback); !status.ok()) {
        std::printf("learner feedback: %s\n", status.ToString().c_str());
        return 1;
      }
    }
  }
  std::size_t trained_attrs = 0;
  for (std::size_t a = 0; a < working.num_attrs(); ++a) {
    const AttrId attr = static_cast<AttrId>(a);
    if (Status status = bank.Retrain(attr); !status.ok()) {
      std::printf("learner retrain: %s\n", status.ToString().c_str());
      return 1;
    }
    if (bank.IsTrained(attr)) ++trained_attrs;
  }

  // p~ over the whole pool, both ways, interleaved within each repeat:
  // one scalar ConfirmProbability call per update (the per-update oracle
  // path) vs one ConfirmProbabilities matrix call per group (the batched
  // path). Identical committees, so the probabilities must be
  // bit-identical.
  std::vector<double> per_update_probs(flat.size(), 0.0);
  std::vector<double> batched_probs(flat.size(), 0.0);
  double per_update_prob_seconds = -1.0;
  double batched_prob_seconds = -1.0;
  std::vector<double> prob_out;
  for (int r = 0; r < repeats; ++r) {
    {
      Stopwatch watch;
      std::size_t i = 0;
      for (const UpdateGroup& group : groups) {
        for (const Update& update : group.updates) {
          per_update_probs[i++] = bank.ConfirmProbability(update);
        }
      }
      const double seconds = watch.ElapsedSeconds();
      if (per_update_prob_seconds < 0.0 ||
          seconds < per_update_prob_seconds) {
        per_update_prob_seconds = seconds;
      }
    }
    {
      double total = 0.0;
      std::size_t i = 0;
      for (const UpdateGroup& group : groups) {
        Stopwatch watch;
        bank.ConfirmProbabilities(std::span<const Update>(group.updates),
                                  &prob_out);
        total += watch.ElapsedSeconds();
        for (const double p : prob_out) batched_probs[i++] = p;
      }
      if (batched_prob_seconds < 0.0 || total < batched_prob_seconds) {
        batched_prob_seconds = total;
      }
    }
  }
  const bool learner_scores_match = per_update_probs == batched_probs;
  const double ns_confirm_per_update =
      flat.empty() ? 0.0 : per_update_prob_seconds / flat.size() * 1e9;
  const double ns_confirm_batched =
      flat.empty() ? 0.0 : batched_prob_seconds / flat.size() * 1e9;
  const double learner_batched_speedup =
      batched_prob_seconds > 0.0
          ? per_update_prob_seconds / batched_prob_seconds
          : 0.0;
  std::printf(
      "learner: trained-attrs=%zu confirm-per-update=%.0fns "
      "confirm-batched=%.0fns (%.2fx) probabilities-match=%s\n",
      trained_attrs, ns_confirm_per_update, ns_confirm_batched,
      learner_batched_speedup, learner_scores_match ? "yes" : "NO");

  // End-to-end Rank with the live learner in the loop, both inference
  // modes at every thread count, interleaved within each repeat. Scores
  // AND order must match the 1-thread per-update-oracle reference.
  struct LearnerRank {
    std::size_t threads = 1;
    double batched_seconds = 0.0;
    double per_update_seconds = 0.0;
    bool scores_match = true;
    bool order_match = true;
  };
  const ConfirmProbabilityFn learner_scalar = [&bank](const Update& update) {
    return bank.ConfirmProbability(update);
  };
  std::vector<LearnerRank> learner_ranks;
  VoiRanker::Ranking learner_reference;
  bool learner_rank_match = true;
  for (std::size_t threads = 1; threads <= threads_max; threads *= 2) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    VoiRanker batched_ranker(&engine.index(), &engine.rule_weights(),
                             pool.get());
    batched_ranker.set_batch_probability_fn(
        [&bank](std::span<const Update> updates, std::vector<double>* out) {
          bank.ConfirmProbabilities(updates, out);
        });
    VoiRanker per_update_ranker(&engine.index(), &engine.rule_weights(),
                                pool.get());
    per_update_ranker.set_inference_mode(
        VoiRanker::InferenceMode::kPerUpdateOracle);
    LearnerRank lr;
    lr.threads = threads;
    lr.batched_seconds = -1.0;
    lr.per_update_seconds = -1.0;
    VoiRanker::Ranking batched_ranking;
    VoiRanker::Ranking per_update_ranking;
    for (int r = 0; r < repeats; ++r) {
      {
        Stopwatch watch;
        batched_ranking = batched_ranker.Rank(groups, learner_scalar);
        const double seconds = watch.ElapsedSeconds();
        if (lr.batched_seconds < 0.0 || seconds < lr.batched_seconds) {
          lr.batched_seconds = seconds;
        }
      }
      {
        Stopwatch watch;
        per_update_ranking = per_update_ranker.Rank(groups, learner_scalar);
        const double seconds = watch.ElapsedSeconds();
        if (lr.per_update_seconds < 0.0 ||
            seconds < lr.per_update_seconds) {
          lr.per_update_seconds = seconds;
        }
      }
    }
    if (threads == 1) learner_reference = per_update_ranking;
    lr.scores_match = batched_ranking.scores == learner_reference.scores &&
                      per_update_ranking.scores == learner_reference.scores;
    lr.order_match = batched_ranking.order == learner_reference.order &&
                     per_update_ranking.order == learner_reference.order;
    learner_rank_match =
        learner_rank_match && lr.scores_match && lr.order_match;
    learner_ranks.push_back(lr);
  }
  std::printf("%8s %16s %19s %8s %13s %12s\n", "threads", "rank-batched-s",
              "rank-per-update-s", "speedup", "scores-match", "order-match");
  for (const LearnerRank& lr : learner_ranks) {
    std::printf("%8zu %16.4f %19.4f %7.2fx %13s %12s\n", lr.threads,
                lr.batched_seconds, lr.per_update_seconds,
                lr.batched_seconds > 0.0
                    ? lr.per_update_seconds / lr.batched_seconds
                    : 0.0,
                lr.scores_match ? "yes" : "NO",
                lr.order_match ? "yes" : "NO");
  }
  // The bank's phase counters, accumulated over everything above — the
  // same numbers GdrStats::timings and the server `stats` reply surface.
  const PerfCounters& bank_perf = bank.perf_counters();

  std::vector<Measurement> results;
  results.push_back({1, serial_seconds, 1.0, true});
  for (std::size_t threads = 2; threads <= threads_max; threads *= 2) {
    ThreadPool pool(threads);
    VoiRanker ranker(&engine.index(), &engine.rule_weights(), &pool);
    VoiRanker::Ranking ranking;
    Measurement m;
    m.threads = threads;
    m.seconds = TimeRank(ranker, groups, repeats, &ranking);
    m.speedup = m.seconds > 0.0 ? serial_seconds / m.seconds : 0.0;
    m.scores_match = ranking.scores == reference.scores &&
                     ranking.order == reference.order;
    results.push_back(m);
  }

  std::printf("%8s %14s %10s %14s\n", "threads", "rank-seconds", "speedup",
              "scores-match");
  bool all_match = true;
  for (const Measurement& m : results) {
    std::printf("%8zu %14.4f %9.2fx %14s\n", m.threads, m.seconds, m.speedup,
                m.scores_match ? "yes" : "NO");
    all_match = all_match && m.scores_match;
  }

  const std::string out_path = flags.GetString("out", "BENCH_voi.json");
  if (FILE* out = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"parallel_voi\",\n"
                 "  \"dataset\": \"%s\",\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"records\": %zu,\n"
                 "  \"groups\": %zu,\n"
                 "  \"updates\": %zu,\n"
                 "  \"repeats\": %d,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"results\": [\n",
                 dataset.name.c_str(), specs.front().c_str(), resolved_rows,
                 groups.size(), updates, repeats,
                 std::thread::hardware_concurrency());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Measurement& m = results[i];
      std::fprintf(out,
                   "    {\"threads\": %zu, \"rank_seconds\": %.6f, "
                   "\"speedup\": %.3f, \"scores_match\": %s}%s\n",
                   m.threads, m.seconds, m.speedup,
                   m.scores_match ? "true" : "false",
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::printf("could not write %s\n", out_path.c_str());
  }

  const std::string hotpath_path =
      flags.GetString("hotpath-out", "BENCH_hotpath.json");
  if (FILE* out = std::fopen(hotpath_path.c_str(), "w")) {
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"hotpath\",\n"
        "  \"dataset\": \"%s\",\n"
        "  \"workload\": \"%s\",\n"
        "  \"records\": %zu,\n"
        "  \"groups\": %zu,\n"
        "  \"updates\": %zu,\n"
        "  \"repeats\": %d,\n"
        "  \"hardware_concurrency\": %u,\n"
        "  \"index_build_seconds\": %.6f,\n"
        "  \"update_benefit_ns_scratch_reuse\": %.1f,\n"
        "  \"update_benefit_ns_fresh_delta\": %.1f,\n"
        "  \"update_benefit_ns_batched\": %.1f,\n"
        "  \"batched_speedup_vs_scratch\": %.3f,\n"
        "  \"serial_rank_seconds\": %.6f,\n"
        "  \"oracle_rank_seconds\": %.6f,\n"
        "  \"scores_match\": %s,\n",
        dataset.name.c_str(), specs.front().c_str(), resolved_rows,
        groups.size(), updates, repeats, std::thread::hardware_concurrency(),
        build_seconds, ns_per_update_reuse, ns_per_update_construct,
        ns_per_update_batched, batched_speedup, serial_seconds,
        oracle_rank_seconds,
        benefits_match && all_match && rank_modes_match &&
                learner_scores_match && learner_rank_match
            ? "true"
            : "false");
    // The learner section: trained-committee p~ both ways (interleaved
    // same-run numbers), the end-to-end Rank comparison per thread count,
    // and the bank's phase counters.
    std::fprintf(
        out,
        "  \"learner\": {\n"
        "    \"trained_attrs\": %zu,\n"
        "    \"confirm_probability_ns_per_update\": %.1f,\n"
        "    \"confirm_probability_ns_batched\": %.1f,\n"
        "    \"batched_speedup\": %.3f,\n"
        "    \"probabilities_match\": %s,\n"
        "    \"encode_seconds\": %.6f,\n"
        "    \"tree_walk_seconds\": %.6f,\n"
        "    \"inferences\": %llu,\n"
        "    \"rank\": [\n",
        trained_attrs, ns_confirm_per_update, ns_confirm_batched,
        learner_batched_speedup, learner_scores_match ? "true" : "false",
        bank_perf.Seconds(PerfPhase::kLearnerEncode),
        bank_perf.Seconds(PerfPhase::kLearnerTreeWalk),
        static_cast<unsigned long long>(
            bank_perf.Count(PerfPhase::kLearnerTreeWalk)));
    for (std::size_t i = 0; i < learner_ranks.size(); ++i) {
      const LearnerRank& lr = learner_ranks[i];
      std::fprintf(out,
                   "      {\"threads\": %zu, \"batched_seconds\": %.6f, "
                   "\"per_update_seconds\": %.6f, \"scores_match\": %s, "
                   "\"order_match\": %s}%s\n",
                   lr.threads, lr.batched_seconds, lr.per_update_seconds,
                   lr.scores_match ? "true" : "false",
                   lr.order_match ? "true" : "false",
                   i + 1 < learner_ranks.size() ? "," : "");
    }
    std::fprintf(out, "    ]\n  },\n");
    std::fprintf(out, "  \"group_size_buckets\": [\n");
    bool first_bucket = true;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      if (bucket_groups[b] == 0) continue;
      const double n = static_cast<double>(bucket_updates[b]);
      std::fprintf(out,
                   "%s    {\"sizes\": \"%s\", \"groups\": %zu, "
                   "\"updates\": %zu, \"scratch_ns\": %.1f, "
                   "\"batched_ns\": %.1f}",
                   first_bucket ? "" : ",\n", bucket_bounds[b].label,
                   bucket_groups[b], bucket_updates[b],
                   scratch_bucket_seconds[b] / n * 1e9,
                   batched_bucket_seconds[b] / n * 1e9);
      first_bucket = false;
    }
    std::fprintf(out, "\n  ],\n  \"group_size_histogram\": [");
    bool first_size = true;
    for (const auto& [size, count] : size_histogram) {
      std::fprintf(out, "%s{\"size\": %zu, \"groups\": %zu}",
                   first_size ? "" : ", ", size, count);
      first_size = false;
    }
    std::fprintf(out, "]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", hotpath_path.c_str());
  } else {
    std::printf("could not write %s\n", hotpath_path.c_str());
  }
  if (!(all_match && benefits_match && rank_modes_match &&
        learner_scores_match && learner_rank_match)) {
    return 2;
  }
  // The perf gates: neither batched inner loop may lose to the per-item
  // path it replaced at this workload's scale.
  if (batched_seconds > scratch_seconds) {
    std::fprintf(stderr,
                 "FAIL: batched scoring slower than scratch-delta "
                 "(%.0fns vs %.0fns per update)\n",
                 ns_per_update_batched, ns_per_update_reuse);
    return 3;
  }
  if (trained_attrs > 0 && batched_prob_seconds > per_update_prob_seconds) {
    std::fprintf(stderr,
                 "FAIL: batched learner inference slower than per-update "
                 "(%.0fns vs %.0fns per update)\n",
                 ns_confirm_batched, ns_confirm_per_update);
    return 3;
  }
  // End-to-end the learner is one phase of Rank, so allow 2% timer
  // jitter before calling a loss a regression.
  if (!learner_ranks.empty() &&
      learner_ranks.front().batched_seconds >
          learner_ranks.front().per_update_seconds * 1.02) {
    std::fprintf(stderr,
                 "FAIL: batched-inference Rank slower than per-update "
                 "(%.4fs vs %.4fs serial)\n",
                 learner_ranks.front().batched_seconds,
                 learner_ranks.front().per_update_seconds);
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace gdr

int main(int argc, char** argv) { return gdr::RunBench(argc, argv); }
