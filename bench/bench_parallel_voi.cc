// Serial-vs-parallel VOI ranking on the Dataset 1 workload.
//
// Measures one full VoiRanker::Rank() pass (the Step-4 inner loop of
// Procedure 1) over the engine's real candidate pool, ranking the same
// groups with 1 worker (serial path) and with pools of 2/4/8 workers, and
// verifies the parallel scores are bit-identical to the serial ones —
// parallelism must only buy wall-clock, never change the chosen group.
//
// Emits a machine-readable BENCH_voi.json next to the human-readable
// table so the repo's bench trajectory is trackable across commits.
// Speedups are hardware-dependent; `hardware_concurrency` is recorded in
// the JSON so a 1-core CI result is not mistaken for a regression.
//
// Also emits BENCH_hotpath.json: the single-thread hot-path numbers
// (index-build seconds, UpdateBenefit ns/update with the reusable scratch
// delta vs a fresh delta per update, full serial Rank() seconds) so the
// perf trajectory tracks single-thread constant factors, not just
// parallel speedup — on 1-core bench hardware the constant factors are
// the whole story. `scores_match` in that file asserts the scratch-reuse
// path scores bit-identically to fresh-delta evaluation.
//
// Flags: --workload=name:key=val,... (default dataset1, parameterized by
//        the legacy flags below; the first workload is measured)
//        --records=N (default 20000) --seed=S (default 42)
//        --repeats=R (default 5, best-of) --threads-max=T (default 8)
//        --out=PATH (default BENCH_voi.json)
//        --hotpath-out=PATH (default BENCH_hotpath.json)
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/gdr.h"
#include "core/grouping.h"
#include "core/voi.h"
#include "sim/oracle.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gdr {
namespace {

struct Measurement {
  std::size_t threads = 1;
  double seconds = 0.0;   // best-of-repeats for one full Rank() pass
  double speedup = 1.0;   // serial seconds / this
  bool scores_match = true;
};

double TimeRank(const VoiRanker& ranker, const std::vector<UpdateGroup>& groups,
                int repeats, VoiRanker::Ranking* out) {
  double best = -1.0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    *out = ranker.Rank(groups, [](const Update& u) { return u.score; });
    const double seconds = watch.ElapsedSeconds();
    if (best < 0.0 || seconds < best) best = seconds;
  }
  return best;
}

int RunBench(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t records =
      static_cast<std::size_t>(flags.GetInt("records", 20000));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  const std::size_t threads_max =
      static_cast<std::size_t>(flags.GetInt("threads-max", 8));

  // This bench measures exactly one workload: resolve only the first
  // --workload occurrence rather than materializing all of them.
  std::vector<std::string> specs = flags.GetStrings("workload");
  if (specs.empty()) {
    specs = {"dataset1:records=" + std::to_string(records) +
             ",seed=" + std::to_string(seed)};
  } else if (specs.size() > 1) {
    std::printf("note: measuring only the first workload (%s)\n",
                specs.front().c_str());
    specs.resize(1);
  }
  const auto resolved = bench::ResolveWorkloadCachedOrReport(specs.front());
  if (!resolved.ok()) return 1;
  const Dataset& dataset = **resolved;
  // Report the resolved instance, not the flag defaults: with --workload
  // the --records/--seed flags play no part in what was measured.
  const std::size_t resolved_rows = dataset.dirty.num_rows();

  // Real engine state: Initialize() detects violations and seeds the pool
  // exactly as the interactive loop would see it on round one.
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean, {});
  GdrEngine engine(&working, &dataset.rules, &oracle, {});
  if (Status status = engine.Initialize(); !status.ok()) {
    std::printf("initialize: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::vector<UpdateGroup> groups = GroupUpdates(engine.pool());
  std::size_t updates = 0;
  for (const UpdateGroup& group : groups) updates += group.size();
  std::printf("== bench_parallel_voi: %s ==\n", dataset.name.c_str());
  std::printf(
      "workload=%s records=%zu groups=%zu updates=%zu repeats=%d "
      "hw_threads=%u\n",
      specs.front().c_str(), resolved_rows, groups.size(), updates, repeats,
      std::thread::hardware_concurrency());

  // Serial reference (scratch-reusing hot path — what Rank always does).
  VoiRanker serial(&engine.index(), &engine.rule_weights());
  VoiRanker::Ranking reference;
  const double serial_seconds = TimeRank(serial, groups, repeats, &reference);

  // ---- Single-thread hot-path section (BENCH_hotpath.json) ------------
  // Index build: full scan over the dirty instance.
  double build_seconds = -1.0;
  for (int r = 0; r < repeats; ++r) {
    Table rebuild_table = dataset.dirty;
    Stopwatch watch;
    ViolationIndex rebuilt(&rebuild_table, &dataset.rules);
    const double seconds = watch.ElapsedSeconds();
    if (rebuilt.TotalViolations() != engine.index().TotalViolations()) {
      std::printf("index rebuild mismatch\n");
      return 1;
    }
    if (build_seconds < 0.0 || seconds < build_seconds) {
      build_seconds = seconds;
    }
  }

  // UpdateBenefit over every pooled update: once with one reused scratch
  // delta (the ranking inner loop), once constructing a delta per update
  // (the pre-scratch contract), verifying bit-identical benefits.
  std::vector<Update> flat;
  flat.reserve(updates);
  for (const UpdateGroup& group : groups) {
    flat.insert(flat.end(), group.updates.begin(), group.updates.end());
  }
  std::vector<double> reuse_benefits(flat.size(), 0.0);
  double reuse_seconds = -1.0;
  for (int r = 0; r < repeats; ++r) {
    ViolationDelta scratch(&engine.index());
    Stopwatch watch;
    for (std::size_t i = 0; i < flat.size(); ++i) {
      reuse_benefits[i] = serial.UpdateBenefit(flat[i], &scratch);
    }
    const double seconds = watch.ElapsedSeconds();
    if (reuse_seconds < 0.0 || seconds < reuse_seconds) {
      reuse_seconds = seconds;
    }
  }
  std::vector<double> construct_benefits(flat.size(), 0.0);
  double construct_seconds = -1.0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    for (std::size_t i = 0; i < flat.size(); ++i) {
      construct_benefits[i] = serial.UpdateBenefit(flat[i]);
    }
    const double seconds = watch.ElapsedSeconds();
    if (construct_seconds < 0.0 || seconds < construct_seconds) {
      construct_seconds = seconds;
    }
  }
  const bool benefits_match = reuse_benefits == construct_benefits;
  const double ns_per_update_reuse =
      flat.empty() ? 0.0 : reuse_seconds / flat.size() * 1e9;
  const double ns_per_update_construct =
      flat.empty() ? 0.0 : construct_seconds / flat.size() * 1e9;
  std::printf(
      "hotpath: build=%.4fs benefit-reuse=%.0fns benefit-construct=%.0fns "
      "serial-rank=%.4fs benefits-match=%s\n",
      build_seconds, ns_per_update_reuse, ns_per_update_construct,
      serial_seconds, benefits_match ? "yes" : "NO");

  std::vector<Measurement> results;
  results.push_back({1, serial_seconds, 1.0, true});
  for (std::size_t threads = 2; threads <= threads_max; threads *= 2) {
    ThreadPool pool(threads);
    VoiRanker ranker(&engine.index(), &engine.rule_weights(), &pool);
    VoiRanker::Ranking ranking;
    Measurement m;
    m.threads = threads;
    m.seconds = TimeRank(ranker, groups, repeats, &ranking);
    m.speedup = m.seconds > 0.0 ? serial_seconds / m.seconds : 0.0;
    m.scores_match = ranking.scores == reference.scores &&
                     ranking.order == reference.order;
    results.push_back(m);
  }

  std::printf("%8s %14s %10s %14s\n", "threads", "rank-seconds", "speedup",
              "scores-match");
  bool all_match = true;
  for (const Measurement& m : results) {
    std::printf("%8zu %14.4f %9.2fx %14s\n", m.threads, m.seconds, m.speedup,
                m.scores_match ? "yes" : "NO");
    all_match = all_match && m.scores_match;
  }

  const std::string out_path = flags.GetString("out", "BENCH_voi.json");
  if (FILE* out = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"parallel_voi\",\n"
                 "  \"dataset\": \"%s\",\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"records\": %zu,\n"
                 "  \"groups\": %zu,\n"
                 "  \"updates\": %zu,\n"
                 "  \"repeats\": %d,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"results\": [\n",
                 dataset.name.c_str(), specs.front().c_str(), resolved_rows,
                 groups.size(), updates, repeats,
                 std::thread::hardware_concurrency());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Measurement& m = results[i];
      std::fprintf(out,
                   "    {\"threads\": %zu, \"rank_seconds\": %.6f, "
                   "\"speedup\": %.3f, \"scores_match\": %s}%s\n",
                   m.threads, m.seconds, m.speedup,
                   m.scores_match ? "true" : "false",
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::printf("could not write %s\n", out_path.c_str());
  }

  const std::string hotpath_path =
      flags.GetString("hotpath-out", "BENCH_hotpath.json");
  if (FILE* out = std::fopen(hotpath_path.c_str(), "w")) {
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"hotpath\",\n"
        "  \"dataset\": \"%s\",\n"
        "  \"workload\": \"%s\",\n"
        "  \"records\": %zu,\n"
        "  \"groups\": %zu,\n"
        "  \"updates\": %zu,\n"
        "  \"repeats\": %d,\n"
        "  \"hardware_concurrency\": %u,\n"
        "  \"index_build_seconds\": %.6f,\n"
        "  \"update_benefit_ns_scratch_reuse\": %.1f,\n"
        "  \"update_benefit_ns_fresh_delta\": %.1f,\n"
        "  \"serial_rank_seconds\": %.6f,\n"
        "  \"scores_match\": %s\n"
        "}\n",
        dataset.name.c_str(), specs.front().c_str(), resolved_rows,
        groups.size(), updates, repeats, std::thread::hardware_concurrency(),
        build_seconds, ns_per_update_reuse, ns_per_update_construct,
        serial_seconds, benefits_match && all_match ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", hotpath_path.c_str());
  } else {
    std::printf("could not write %s\n", hotpath_path.c_str());
  }
  return all_match && benefits_match ? 0 : 2;
}

}  // namespace
}  // namespace gdr

int main(int argc, char** argv) { return gdr::RunBench(argc, argv); }
