// Reproduces Figure 3 of the paper: "Comparing VOI-based ranking in GDR
// (GDR-NoLearning) to other strategies against the amount of feedback."
//
// Protocol (Section 5.1): no learning component; the user verifies every
// suggested update; strategies differ only in how update groups are
// ranked — VOI (Eq. 6), by group size (Greedy), or uniformly at random.
// Each strategy runs until convergence (clean database or exhausted
// suggestions); feedback on the x-axis is normalized by the strategy's own
// total, as in the paper ("percentage of the maximum number of verified
// updates required by an approach").
//
// Flags: --workload=name:key=val,... (repeatable; default dataset1 and
//        dataset2, parameterized by the legacy flags below)
//        --records=N (default 20000) --seed=S (default 42)
//        --threads=T (VOI ranking workers; 1 serial, 0 = hardware)
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/experiment.h"
#include "util/stopwatch.h"

namespace gdr {
namespace {

void RunFigure3(const Dataset& dataset, const char* figure,
                std::uint64_t seed, std::size_t threads) {
  std::printf("== Figure 3%s: %s ==\n", figure, dataset.name.c_str());
  std::printf("%-16s %10s %12s\n", "strategy", "feedback%", "improvement%");
  for (Strategy strategy : {Strategy::kGdrNoLearning, Strategy::kGreedy,
                            Strategy::kRandomRanking}) {
    Stopwatch watch;
    ExperimentConfig config;
    config.strategy = strategy;
    config.seed = seed;
    config.sample_every = 50;
    config.num_threads = threads;
    auto result = RunStrategyExperiment(dataset, config);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    const double total = static_cast<double>(result->stats.user_feedback);
    // The paper's reading points: every 10% of the strategy's own total.
    for (int pct = 0; pct <= 100; pct += 10) {
      const double target = total * pct / 100.0;
      const CurvePoint* best = &result->curve.front();
      for (const CurvePoint& point : result->curve) {
        if (static_cast<double>(point.feedback) <= target) best = &point;
      }
      std::printf("%-16s %10d %12.1f\n",
                  result->strategy_name.c_str(), pct,
                  best->improvement_pct);
    }
    std::printf(
        "# %s: total_feedback=%zu confirms=%zu rejects=%zu retains=%zu "
        "final=%.1f%% wall=%.1fs\n",
        result->strategy_name.c_str(), result->stats.user_feedback,
        result->stats.user_confirms, result->stats.user_rejects,
        result->stats.user_retains, result->final_improvement_pct,
        watch.ElapsedSeconds());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace gdr

int main(int argc, char** argv) {
  const gdr::bench::Flags flags(argc, argv);
  const std::string records = flags.GetString("records", "20000");
  const std::string seed = flags.GetString("seed", "42");
  const std::size_t threads =
      static_cast<std::size_t>(flags.GetInt("threads", 1));

  const auto specs = gdr::bench::WorkloadSpecsOrDefaults(
      flags, {"dataset1:records=" + records + ",seed=" + seed,
              "dataset2:records=" + records + ",seed=" + seed});
  const std::uint64_t experiment_seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto dataset = gdr::bench::ResolveWorkloadCachedOrReport(specs[i]);
    if (!dataset.ok()) return 1;
    const std::string figure = "(" + std::string(1, char('a' + i % 26)) + ")";
    gdr::RunFigure3(**dataset, figure.c_str(), experiment_seed, threads);
  }
  return 0;
}
