// Quickstart: repair the paper's Figure 1 scenario with a scripted user.
//
// Demonstrates the minimal public API surface:
//   Schema/Table        — load the dirty relation
//   RuleSet             — declare CFDs in the textual syntax
//   FeedbackProvider    — supply user answers
//   GdrEngine           — run the guided-repair loop
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/gdr.h"

using namespace gdr;

namespace {

// A "user" that knows the true values of the Figure 1 tuples and answers
// exactly like the paper's simulated user: confirm when the suggestion
// matches the truth, retain when the cell is already right, else reject.
class ScriptedUser : public FeedbackProvider {
 public:
  explicit ScriptedUser(const Table* truth) : truth_(truth) {}

  Feedback GetFeedback(const Table& table, const Update& update) override {
    const std::string& truth = truth_->at(update.row, update.attr);
    const std::string& suggested =
        table.dict(update.attr).ToString(update.value);
    std::printf("  user asked about %s -> ",
                update.ToString(table).c_str());
    if (suggested == truth) {
      std::printf("confirm\n");
      return Feedback::kConfirm;
    }
    if (table.at(update.row, update.attr) == truth) {
      std::printf("retain\n");
      return Feedback::kRetain;
    }
    std::printf("reject\n");
    return Feedback::kReject;
  }

 private:
  const Table* truth_;
};

}  // namespace

int main() {
  // Customer(Name, SRC, STR, CT, STT, ZIP) — the paper's running example.
  auto schema =
      Schema::Make({"Name", "SRC", "STR", "CT", "STT", "ZIP"});
  if (!schema.ok()) return 1;

  // Ground truth (what the database *should* say).
  Table truth(*schema);
  (void)truth.AppendRow({"Ann", "H1", "Sherden Rd", "Fort Wayne", "IN", "46825"});
  (void)truth.AppendRow({"Bob", "H1", "Sherden Rd", "Fort Wayne", "IN", "46825"});
  (void)truth.AppendRow({"Cal", "H2", "Oak Ave", "Michigan City", "IN", "46360"});
  (void)truth.AppendRow({"Dee", "H2", "Oak Ave", "Michigan City", "IN", "46360"});
  (void)truth.AppendRow({"Eve", "H3", "Main St", "New Haven", "IN", "46774"});
  (void)truth.AppendRow({"Fay", "H4", "Main St", "Westville", "IN", "46391"});

  // The dirty instance: H2's operator mistypes cities, Bob's zip was
  // confused with the neighboring code, Eve's state got spelled out.
  Table dirty = truth;
  dirty.Set(1, 5, "46391");          // Bob: wrong zip
  dirty.Set(2, 3, "Michigan Cty");   // Cal: city typo
  dirty.Set(3, 3, "Michigan Cty");   // Dee: city typo
  dirty.Set(4, 4, "IND");            // Eve: state typo

  // Data-quality rules Σ, in the paper's Figure 1 family.
  RuleSet rules(*schema);
  (void)rules.AddRuleFromString("phi1",
                                "ZIP=46360 -> CT=Michigan City ; STT=IN");
  (void)rules.AddRuleFromString("phi2", "ZIP=46774 -> CT=New Haven ; STT=IN");
  (void)rules.AddRuleFromString("phi3", "ZIP=46825 -> CT=Fort Wayne ; STT=IN");
  (void)rules.AddRuleFromString("phi4", "ZIP=46391 -> CT=Westville ; STT=IN");
  (void)rules.AddRuleFromString("phi5", "STR, CT=Fort Wayne -> ZIP");

  std::printf("Dirty instance:\n");
  for (std::size_t r = 0; r < dirty.num_rows(); ++r) {
    std::printf("  t%zu: %s\n", r, dirty.RowToString(static_cast<RowId>(r)).c_str());
  }

  ScriptedUser user(&truth);
  GdrOptions options;
  options.strategy = Strategy::kGdrNoLearning;  // verify everything
  GdrEngine engine(&dirty, &rules, &user, options);
  if (!engine.Initialize().ok()) return 1;
  std::printf("\nInitially dirty tuples: %zu, suggested updates: %zu\n\n",
              engine.stats().initial_dirty, engine.pool().size());
  if (!engine.Run().ok()) return 1;

  std::printf("\nRepaired instance (%zu user answers, %zu forced repairs):\n",
              engine.stats().user_feedback, engine.stats().forced_repairs);
  for (std::size_t r = 0; r < dirty.num_rows(); ++r) {
    std::printf("  t%zu: %s\n", r, dirty.RowToString(static_cast<RowId>(r)).c_str());
  }
  std::printf("Remaining violations: %lld\n",
              static_cast<long long>(engine.index().TotalViolations()));
  return engine.index().TotalViolations() == 0 ? 0 : 2;
}
