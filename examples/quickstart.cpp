// Quickstart: repair the paper's Figure 1 scenario with a scripted user.
//
// Demonstrates the minimal public API surface:
//   WorkloadRegistry    — resolve a named workload (or CSV files) into a
//                         clean/dirty/rules Dataset
//   FeedbackProvider    — supply user answers
//   GdrEngine           — run the guided-repair loop
//
// Build & run:  ./build/examples/quickstart [--workload=SPEC]
//   default SPEC is "figure1" (the paper's running example); try e.g.
//   --workload=csv:clean=examples/data/toy_clean.csv,dirty=examples/data/toy_dirty.csv,rules=examples/data/toy_rules.txt
#include <cstdio>
#include <string>

#include "core/gdr.h"
#include "workload/registry.h"

using namespace gdr;

namespace {

// A "user" that knows the true values of the workload's clean instance and
// answers exactly like the paper's simulated user: confirm when the
// suggestion matches the truth, retain when the cell is already right,
// else reject.
class ScriptedUser : public FeedbackProvider {
 public:
  explicit ScriptedUser(const Table* truth) : truth_(truth) {}

  Feedback GetFeedback(const Table& table, const Update& update) override {
    const std::string& truth = truth_->at(update.row, update.attr);
    const std::string& suggested =
        table.dict(update.attr).ToString(update.value);
    std::printf("  user asked about %s -> ",
                update.ToString(table).c_str());
    if (suggested == truth) {
      std::printf("confirm\n");
      return Feedback::kConfirm;
    }
    if (table.at(update.row, update.attr) == truth) {
      std::printf("retain\n");
      return Feedback::kRetain;
    }
    std::printf("reject\n");
    return Feedback::kReject;
  }

 private:
  const Table* truth_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string spec = "figure1";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workload=", 0) == 0) {
      spec = arg.substr(std::string("--workload=").size());
    } else {
      std::fprintf(stderr, "usage: %s [--workload=SPEC]\n", argv[0]);
      return 2;
    }
  }

  auto dataset = ResolveWorkloadOrReport(spec);
  if (!dataset.ok()) return 2;

  Table dirty = dataset->dirty;
  std::printf("Dirty instance (%s):\n", dataset->name.c_str());
  for (std::size_t r = 0; r < dirty.num_rows(); ++r) {
    std::printf("  t%zu: %s\n", r,
                dirty.RowToString(static_cast<RowId>(r)).c_str());
  }

  ScriptedUser user(&dataset->clean);
  GdrOptions options;
  options.strategy = Strategy::kGdrNoLearning;  // verify everything
  GdrEngine engine(&dirty, &dataset->rules, &user, options);
  if (!engine.Initialize().ok()) return 1;
  std::printf("\nInitially dirty tuples: %zu, suggested updates: %zu\n\n",
              engine.stats().initial_dirty, engine.pool().size());
  if (!engine.Run().ok()) return 1;

  std::printf("\nRepaired instance (%zu user answers, %zu forced repairs):\n",
              engine.stats().user_feedback, engine.stats().forced_repairs);
  for (std::size_t r = 0; r < dirty.num_rows(); ++r) {
    std::printf("  t%zu: %s\n", r,
                dirty.RowToString(static_cast<RowId>(r)).c_str());
  }
  std::printf("Remaining violations: %lld\n",
              static_cast<long long>(engine.index().TotalViolations()));
  return engine.index().TotalViolations() == 0 ? 0 : 2;
}
