// Census scenario: start from a dirty categorical dataset with *no* rules,
// discover conditional functional dependencies from the data itself (the
// Dataset 2 protocol: 5% support threshold, discovery on the dirty
// instance), inspect them, and then run guided repair against them.
//
// Build & run:  ./build/examples/census_discovery [--records=N]
//               [--workload=SPEC]   (default: dataset2:records=N,seed=7;
//                any registry workload works — discovery runs on whatever
//                dirty instance the workload resolves to)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cfd/violation_index.h"
#include "core/gdr.h"
#include "core/quality.h"
#include "sim/cfd_discovery.h"
#include "sim/oracle.h"
#include "util/strings.h"
#include "workload/registry.h"

using namespace gdr;

int main(int argc, char** argv) {
  std::size_t records = 8000;
  std::string spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--records=", 0) == 0) {
      const auto parsed = ParseUint64(arg.substr(10), "--records");
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 2;
      }
      records = static_cast<std::size_t>(*parsed);
    } else if (arg.rfind("--workload=", 0) == 0) {
      spec = arg.substr(std::string("--workload=").size());
    }
  }
  if (spec.empty()) {
    spec = "dataset2:records=" + std::to_string(records) + ",seed=7";
  }

  auto dataset = ResolveWorkloadOrReport(spec);
  if (!dataset.ok()) return 1;

  // The workload may already ship rules; run discovery here explicitly
  // to show the API and print what was found.
  std::vector<AttrId> attrs;
  for (std::size_t a = 0; a < dataset->dirty.num_attrs(); ++a) {
    attrs.push_back(static_cast<AttrId>(a));
  }
  CfdDiscoveryOptions discovery;
  discovery.min_support = 0.05;   // the paper's threshold
  discovery.min_confidence = 0.85;
  auto rules = DiscoverConstantCfds(dataset->dirty, attrs, discovery);
  if (!rules.ok()) return 1;

  std::printf("Discovered %zu constant CFDs from the dirty instance "
              "(support >= 5%%, confidence >= 85%%). First ten:\n",
              rules->size());
  for (std::size_t i = 0; i < rules->size() && i < 10; ++i) {
    std::printf("  %s\n",
                rules->rule(static_cast<RuleId>(i))
                    .ToString(rules->schema())
                    .c_str());
  }

  // Variable CFDs (approximate FDs) are discoverable too; print them for
  // inspection. The repair below sticks to the constant rules, matching
  // the paper's Dataset 2 protocol.
  auto fds = DiscoverVariableCfds(dataset->dirty, attrs, {});
  if (fds.ok()) {
    std::printf("\nVariable CFDs (g3 confidence >= 90%%):\n");
    for (std::size_t i = 0; i < fds->size() && i < 8; ++i) {
      std::printf("  %s\n",
                  fds->rule(static_cast<RuleId>(i))
                      .ToString(fds->schema())
                      .c_str());
    }
  }

  Table working = dataset->dirty;
  {
    ViolationIndex probe(&working, &*rules);
    std::printf("\nViolations against the discovered rules: %lld "
                "(%zu dirty tuples of %zu)\n",
                static_cast<long long>(probe.TotalViolations()),
                probe.DirtyRows().size(), working.num_rows());
  }

  UserOracle oracle(&dataset->clean);
  GdrOptions engine_options;
  engine_options.strategy = Strategy::kGdr;
  engine_options.feedback_budget =
      std::max<std::size_t>(1, dataset->dirty.num_rows() / 10);
  GdrEngine engine(&working, &*rules, &oracle, engine_options);
  if (!engine.Initialize().ok() || !engine.Run().ok()) return 1;

  QualityEvaluator evaluator(dataset->clean, &*rules, engine.rule_weights());
  Table initial = dataset->dirty;
  ViolationIndex initial_index(&initial, &*rules);
  const double initial_loss = evaluator.Loss(initial_index);

  auto accuracy =
      ComputeRepairAccuracy(dataset->dirty, working, dataset->clean);
  std::printf("\nAfter GDR with %zu user answers:\n",
              engine.stats().user_feedback);
  std::printf("  quality improvement:   %.1f%%\n",
              evaluator.ImprovementPct(engine.index(), initial_loss));
  std::printf("  repair precision:      %.3f\n", accuracy->Precision());
  std::printf("  repair recall:         %.3f\n", accuracy->Recall());
  std::printf("  remaining violations:  %lld\n",
              static_cast<long long>(engine.index().TotalViolations()));
  return 0;
}
