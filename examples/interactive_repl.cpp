// Interactive repair session driving the pull-based GdrSession directly —
// the production shape: the program (not the engine) owns the loop, pulls
// VOI-ranked, uncertainty-ordered batches, and pushes answers as they
// arrive. Quitting snapshots the full loop position to disk; relaunching
// restores it and resumes mid-batch, demonstrating a session surviving a
// process restart.
//
// Answer each suggestion with
//   y — confirm (apply the suggested value)
//   n — reject (never suggest this value again)
//   v — reject and volunteer the correct value
//   k — keep/retain (the current value is correct)
//   s — skip: leave it unanswered; the machine re-ranks and asks again
//       (a group stays on the table until it is answered — quit and
//        relaunch to put a decision off for another sitting)
//   q — quit: snapshot the session and exit (relaunch to resume)
//
// Build & run:  ./build/examples/interactive_repl [--strategy NAME]
//               [--snapshot FILE] [--fresh] [--workload SPEC]
//
// The workload (default: the paper's Figure 1 running example) is resolved
// through the registry, so any scenario — a built-in generator or CSV
// files — can be repaired interactively. Resuming from a snapshot rebuilds
// the workload first, so the spec (and any files it names) must be
// unchanged between sittings.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/session.h"
#include "util/fileio.h"
#include "workload/registry.h"

using namespace gdr;

namespace {

const char kDefaultSnapshotPath[] = "gdr_session.snapshot";

void PrintSuggestion(const Table& table, const SuggestedUpdate& s) {
  std::printf("\ntuple t%d: %s\n", s.update.row,
              table.RowToString(s.update.row).c_str());
  std::printf("suggest %s := '%s' (currently '%s', score %.2f)\n",
              table.schema().attr_name(s.update.attr).c_str(),
              table.dict(s.update.attr).ToString(s.update.value).c_str(),
              table.at(s.update.row, s.update.attr).c_str(), s.update.score);
  std::printf("  group %s:='%s'  voi %.3f  uncertainty %.2f  budget left ",
              table.schema().attr_name(s.group_attr).c_str(),
              table.dict(s.group_attr).ToString(s.group_value).c_str(),
              s.voi_score, s.uncertainty);
  if (s.budget_remaining == GdrOptions::kUnlimitedBudget) {
    std::printf("unlimited\n");
  } else {
    std::printf("%zu\n", s.budget_remaining);
  }
}

// Returns false when the user quit (or stdin closed).
bool AnswerSuggestion(GdrSession* session, const SuggestedUpdate& s) {
  PrintSuggestion(session->table(), s);
  std::printf(
      "[y]confirm / [n]reject / [v]reject+value / [k]retain / [s]kip / "
      "[q]uit > ");
  std::fflush(stdout);
  std::string line;
  if (!std::getline(std::cin, line) || line == "q") {
    return false;
  }
  std::optional<std::string> volunteered;
  Feedback feedback = Feedback::kRetain;
  if (line == "y") {
    feedback = Feedback::kConfirm;
  } else if (line == "n") {
    feedback = Feedback::kReject;
  } else if (line == "v") {
    feedback = Feedback::kReject;
    std::printf("correct value > ");
    std::fflush(stdout);
    std::string value;
    if (std::getline(std::cin, value) && !value.empty()) volunteered = value;
  } else if (line == "s") {
    return true;  // unresolved: re-presented by a later batch
  }
  const auto outcome =
      session->SubmitFeedback(s.update_id, feedback, volunteered);
  if (!outcome.ok()) {
    std::printf("error: %s\n", outcome.status().ToString().c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string strategy_name = "GDR-NoLearning";
  std::string snapshot_path = kDefaultSnapshotPath;
  std::string workload_spec = "figure1";
  bool fresh = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strategy" && i + 1 < argc) {
      strategy_name = argv[++i];
    } else if (arg == "--snapshot" && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (arg == "--workload" && i + 1 < argc) {
      workload_spec = argv[++i];
    } else if (arg == "--fresh") {
      fresh = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--strategy NAME] [--snapshot FILE] [--fresh] "
                   "[--workload SPEC]\n",
                   argv[0]);
      return 2;
    }
  }
  const auto strategy = StrategyFromName(strategy_name);
  if (!strategy.ok()) {
    std::fprintf(stderr, "%s\n", strategy.status().ToString().c_str());
    return 2;
  }

  // Deterministic workloads rebuild identically on every launch — snapshot
  // replay requires the original dirty instance.
  auto dataset = ResolveWorkloadOrReport(workload_spec);
  if (!dataset.ok()) return 2;
  Table& table = dataset->dirty;
  RuleSet& rules = dataset->rules;

  GdrOptions options;
  options.strategy = *strategy;
  options.max_outer_iterations = 64;
  GdrSession session(&table, &rules, options);

  // Resume from a previous run's snapshot when one exists. The file leads
  // with a "workload <spec>" header so answers recorded against one
  // dataset are never replayed onto another.
  std::ifstream snapshot_file(snapshot_path, std::ios::binary);
  if (snapshot_file.good() && !fresh) {
    std::stringstream buffer;
    buffer << snapshot_file.rdbuf();
    std::string contents = buffer.str();
    const std::string header_prefix = "workload ";
    if (contents.rfind(header_prefix, 0) == 0) {
      const std::size_t eol = contents.find('\n');
      const std::string saved_spec =
          contents.substr(header_prefix.size(),
                          eol - header_prefix.size());
      if (saved_spec != workload_spec) {
        std::fprintf(stderr,
                     "%s was snapshotted with --workload '%s', not '%s'; "
                     "relaunch with the original workload or pass --fresh\n",
                     snapshot_path.c_str(), saved_spec.c_str(),
                     workload_spec.c_str());
        return 1;
      }
      contents.erase(0, eol == std::string::npos ? contents.size() : eol + 1);
    }
    const auto snapshot = SessionSnapshot::Deserialize(contents);
    const Status restored =
        snapshot.ok() ? session.Restore(*snapshot) : snapshot.status();
    if (!restored.ok()) {
      std::fprintf(stderr,
                   "could not resume from %s (%s); pass --fresh to discard\n",
                   snapshot_path.c_str(), restored.ToString().c_str());
      return 1;
    }
    std::printf("resumed session from %s: %zu answers so far, %zu pending\n",
                snapshot_path.c_str(), session.stats().user_feedback,
                session.Outstanding().size());
  } else {
    if (!session.Start().ok()) return 1;
    std::printf("GDR interactive session (%s): %zu dirty tuples, %zu "
                "suggestions\n",
                StrategyName(*strategy), session.stats().initial_dirty,
                session.engine().pool().size());
  }

  bool quit = false;
  while (!quit && session.state() != SessionState::kDone) {
    // A restored session may land mid-batch: drain the outstanding
    // suggestions before pulling the next batch.
    std::vector<SuggestedUpdate> batch = session.Outstanding();
    if (batch.empty()) {
      auto pulled = session.NextBatch();
      if (!pulled.ok()) {
        std::fprintf(stderr, "%s\n", pulled.status().ToString().c_str());
        return 1;
      }
      batch = std::move(*pulled);
    }
    const std::size_t pending_before = batch.size();
    for (const SuggestedUpdate& s : batch) {
      if (!session.IsLive(s.update_id)) continue;  // retired by a cascade
      if (!AnswerSuggestion(&session, s)) {
        quit = true;
        break;
      }
    }
    if (!quit && session.state() == SessionState::kAwaitingFeedback &&
        session.Outstanding().size() == pending_before) {
      // Every suggestion was skipped (or had gone stale): abandon the
      // batch so the machine re-ranks and asks again. Skipped cells stay
      // pooled — nothing is ever silently dropped.
      auto refreshed = session.NextBatch();
      if (!refreshed.ok()) {
        std::fprintf(stderr, "%s\n", refreshed.status().ToString().c_str());
        return 1;
      }
    }
  }
  if (quit) {
    // Crash-safe save: a kill mid-write must leave the previous snapshot
    // intact, never a truncated prefix that fails to deserialize.
    const Status written = WriteFileAtomic(
        snapshot_path,
        "workload " + workload_spec + '\n' + session.Snapshot().Serialize());
    if (!written.ok()) {
      std::fprintf(stderr, "\nfailed to write snapshot to %s (%s) — the "
                   "session could not be saved\n", snapshot_path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("\nsession snapshotted to %s — relaunch to resume\n",
                snapshot_path.c_str());
    return 0;
  }

  std::remove(snapshot_path.c_str());  // completed: nothing to resume
  std::printf("\nFinal instance:\n");
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::printf("  t%zu: %s\n", r,
                table.RowToString(static_cast<RowId>(r)).c_str());
  }
  std::printf("Remaining violations: %lld; answers given: %zu\n",
              static_cast<long long>(session.engine().index().TotalViolations()),
              session.stats().user_feedback);
  return 0;
}
