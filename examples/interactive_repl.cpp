// Interactive repair session: the production-shaped interface where a real
// human answers GDR's questions from the terminal. Suggestions arrive in
// VOI-ranked, uncertainty-ordered batches; answer with
//   y  — confirm (apply the suggested value)
//   n  — reject (never suggest this value again)
//   k  — keep/retain (the current value is correct)
//   q  — quit the session
// On EOF (e.g. when run non-interactively) the session ends gracefully.
//
// Build & run:  ./build/examples/interactive_repl
#include <cstdio>
#include <iostream>
#include <string>

#include "core/gdr.h"

using namespace gdr;

namespace {

class TerminalUser : public FeedbackProvider {
 public:
  Feedback GetFeedback(const Table& table, const Update& update) override {
    std::printf("\ntuple t%d: %s\n", update.row,
                table.RowToString(update.row).c_str());
    std::printf("suggest %s := '%s' (currently '%s', score %.2f)\n",
                table.schema().attr_name(update.attr).c_str(),
                table.dict(update.attr).ToString(update.value).c_str(),
                table.at(update.row, update.attr).c_str(), update.score);
    std::printf("[y]confirm / [n]reject / [k]retain / [q]uit > ");
    std::fflush(stdout);
    std::string line;
    if (!std::getline(std::cin, line) || line == "q") {
      quit_ = true;
      return Feedback::kRetain;  // neutral: freezes this cell and stops
    }
    if (line == "y") return Feedback::kConfirm;
    if (line == "n") return Feedback::kReject;
    return Feedback::kRetain;
  }

  bool quit() const { return quit_; }

 private:
  bool quit_ = false;
};

}  // namespace

int main() {
  auto schema = Schema::Make({"STR", "CT", "STT", "ZIP"});
  if (!schema.ok()) return 1;
  Table table(*schema);
  (void)table.AppendRow({"Sherden Rd", "Fort Wayne", "IN", "46825"});
  (void)table.AppendRow({"Sherden Rd", "Fort Wayne", "IN", "46391"});
  (void)table.AppendRow({"Oak Ave", "Michigan Cty", "IN", "46360"});
  (void)table.AppendRow({"Oak Ave", "Michigan City", "IN", "46360"});
  (void)table.AppendRow({"Main St", "New Haven", "IND", "46774"});

  RuleSet rules(*schema);
  (void)rules.AddRuleFromString("phi1",
                                "ZIP=46360 -> CT=Michigan City ; STT=IN");
  (void)rules.AddRuleFromString("phi2", "ZIP=46774 -> CT=New Haven ; STT=IN");
  (void)rules.AddRuleFromString("phi3", "ZIP=46825 -> CT=Fort Wayne ; STT=IN");
  (void)rules.AddRuleFromString("phi5", "STR, CT=Fort Wayne -> ZIP");

  TerminalUser user;
  GdrOptions options;
  options.strategy = Strategy::kGdrNoLearning;
  options.max_outer_iterations = 64;
  GdrEngine engine(&table, &rules, &user, options);
  if (!engine.Initialize().ok()) return 1;
  std::printf("GDR interactive session: %zu dirty tuples, %zu suggestions\n",
              engine.stats().initial_dirty, engine.pool().size());

  // Run in small budget slices so a 'q' can stop between batches.
  while (!user.quit() && engine.index().TotalViolations() > 0) {
    const std::size_t before = engine.stats().user_feedback;
    if (!engine.Run().ok()) break;
    if (engine.stats().user_feedback == before) break;  // nothing left
    break;  // a single Run drains the interaction; loop guards quit
  }

  std::printf("\nFinal instance:\n");
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::printf("  t%zu: %s\n", r,
                table.RowToString(static_cast<RowId>(r)).c_str());
  }
  std::printf("Remaining violations: %lld; answers given: %zu\n",
              static_cast<long long>(engine.index().TotalViolations()),
              engine.stats().user_feedback);
  return 0;
}
