// Repair-as-a-service over stdin/stdout: a SessionManager multiplexing any
// number of concurrent repair sessions (one per <tenant> <session> pair)
// behind the line protocol of src/server/protocol.h. Sessions exceeding
// the memory budget are snapshotted to the spill directory and rehydrated
// transparently on their next command — the client never sees the
// difference (the differential tests pin this).
//
// Build & run:  ./build/examples/gdr_server [--spill-dir DIR]
//               [--budget-bytes N] [--max-sessions N] [--threads N]
//
// Then type commands, e.g.:
//   open acme s1 figure1 seed=7
//   next acme s1
//   feedback acme s1 1 confirm
//   stats
//   close acme s1
//   quit
//
// Pipe a command file in for scripted use:
//   ./build/examples/gdr_server < commands.txt
#include <cstdio>
#include <iostream>
#include <string>

#include "server/protocol.h"
#include "server/session_manager.h"
#include "util/strings.h"

using namespace gdr;
using namespace gdr::server;

int main(int argc, char** argv) {
  SessionManagerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto numeric = [&](const char* what) -> std::size_t {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", what);
        std::exit(2);
      }
      const Result<std::uint64_t> parsed = ParseUint64(argv[++i], what);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        std::exit(2);
      }
      return static_cast<std::size_t>(*parsed);
    };
    if (arg == "--spill-dir" && i + 1 < argc) {
      options.spill_dir = argv[++i];
    } else if (arg == "--budget-bytes") {
      options.memory_budget_bytes = numeric("--budget-bytes");
    } else if (arg == "--max-sessions") {
      options.max_sessions = numeric("--max-sessions");
    } else if (arg == "--threads") {
      options.num_threads = numeric("--threads");
    } else {
      std::fprintf(stderr,
                   "usage: %s [--spill-dir DIR] [--budget-bytes N] "
                   "[--max-sessions N] [--threads N]\n",
                   argv[0]);
      return 2;
    }
  }

  SessionManager manager(options);
  const Backend backend = MakeSessionManagerBackend(&manager);
  const std::size_t commands = ServerLoop(backend, std::cin, std::cout);
  const WireServerStats stats = manager.Stats();
  std::fprintf(stderr,
               "gdr_server: %zu commands, %zu opens, %zu evictions, "
               "%zu rehydrations\n",
               commands, stats.opens, stats.evictions, stats.rehydrations);
  return 0;
}
