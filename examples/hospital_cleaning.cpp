// Hospital scenario: clean the emergency-room feed of Dataset 1 (the
// paper's motivating workload) with the full GDR strategy, and report what
// a data steward would want to know: where the errors came from, how much
// effort the cleaning took, and how accurate the repairs are.
//
// Build & run:  ./build/examples/hospital_cleaning [--records=N]
//               [--workload=SPEC]   (default: dataset1:records=N,seed=2024;
//                any registry workload works, e.g. csv:clean=...,rules=...)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "core/gdr.h"
#include "core/quality.h"
#include "sim/oracle.h"
#include "util/strings.h"
#include "workload/registry.h"

using namespace gdr;

int main(int argc, char** argv) {
  std::size_t records = 8000;
  std::string spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--records=", 0) == 0) {
      const auto parsed = ParseUint64(arg.substr(10), "--records");
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 2;
      }
      records = static_cast<std::size_t>(*parsed);
    } else if (arg.rfind("--workload=", 0) == 0) {
      spec = arg.substr(std::string("--workload=").size());
    }
  }
  if (spec.empty()) {
    spec = "dataset1:records=" + std::to_string(records) + ",seed=2024";
  }

  auto dataset = ResolveWorkloadOrReport(spec);
  if (!dataset.ok()) return 1;
  std::printf("Workload %s: %zu records, %zu corrupted, %zu rules\n",
              dataset->name.c_str(), dataset->dirty.num_rows(),
              dataset->corrupted_tuples, dataset->rules.size());

  Table working = dataset->dirty;
  UserOracle oracle(&dataset->clean);
  GdrOptions engine_options;
  engine_options.strategy = Strategy::kGdr;
  // The steward affords reviewing one suggestion per ~8 records.
  engine_options.feedback_budget =
      std::max<std::size_t>(1, dataset->dirty.num_rows() / 8);
  GdrEngine engine(&working, &dataset->rules, &oracle, engine_options);
  if (!engine.Initialize().ok()) return 1;

  QualityEvaluator evaluator(dataset->clean, &dataset->rules,
                             engine.rule_weights());
  const double initial_loss = evaluator.Loss(engine.index());
  std::printf("Initially dirty tuples: %zu; candidate updates: %zu\n\n",
              engine.stats().initial_dirty, engine.pool().size());

  std::size_t next_report = 0;
  if (!engine
           .Run([&](const GdrEngine& e, std::size_t feedback) {
             if (feedback < next_report) return;
             next_report = feedback + engine_options.feedback_budget / 5;
             std::printf("  after %5zu answers: %5.1f%% of quality loss "
                         "recovered, %zu dirty tuples left\n",
                         feedback,
                         evaluator.ImprovementPct(e.index(), initial_loss),
                         e.consistency().dirty_count());
           })
           .ok()) {
    return 1;
  }

  const GdrStats& stats = engine.stats();
  std::printf("\nSteward effort: %zu answers "
              "(%zu confirm / %zu reject / %zu retain)\n",
              stats.user_feedback, stats.user_confirms, stats.user_rejects,
              stats.user_retains);
  std::printf("Learner decisions applied automatically: %zu "
              "(%zu of them confirms)\n",
              stats.learner_decisions, stats.learner_confirms);
  std::printf("Forced (entailed) repairs: %zu\n", stats.forced_repairs);

  auto accuracy =
      ComputeRepairAccuracy(dataset->dirty, working, dataset->clean);
  if (accuracy.ok()) {
    std::printf("\nRepair accuracy: precision %.3f, recall %.3f "
                "(%zu of %zu wrong cells fixed)\n",
                accuracy->Precision(), accuracy->Recall(),
                accuracy->correctly_updated_cells,
                accuracy->initially_incorrect_cells);
  }
  std::printf("Quality improvement: %.1f%%; remaining violations: %lld\n",
              evaluator.ImprovementPct(engine.index(), initial_loss),
              static_cast<long long>(engine.index().TotalViolations()));

  // Where were the residual problems? Summarize dirty tuples per city
  // (skipped for workloads without a City attribute).
  const AttrId city = working.schema().FindAttr("City");
  if (city != kInvalidAttrId) {
    std::map<std::string, int> dirty_by_city;
    for (RowId row : engine.consistency().DirtyRows()) {
      dirty_by_city[working.at(row, city)]++;
    }
    std::printf("\nResidual dirty tuples by city (top 5):\n");
    int shown = 0;
    for (const auto& [name, count] : dirty_by_city) {
      if (shown++ >= 5) break;
      std::printf("  %-20s %d\n", name.c_str(), count);
    }
  }
  return 0;
}
