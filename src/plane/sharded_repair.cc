#include "plane/sharded_repair.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <sstream>

#include "util/stopwatch.h"
#include "util/strings.h"

namespace gdr::plane {

namespace {

// Doubles travel through the fingerprint by bit pattern: the contract is
// "the same computation", not "approximately the same number".
void AppendDoubleBits(std::ostringstream* out, double value) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(value)));
  *out << buf;
}

}  // namespace

ExperimentResult MergeShardResults(
    const std::vector<ExperimentResult>& shards) {
  if (shards.empty()) return ExperimentResult{};
  if (shards.size() == 1) return shards.front();

  ExperimentResult merged;
  merged.strategy_name = shards.front().strategy_name;
  for (const ExperimentResult& shard : shards) {
    GdrStats& s = merged.stats;
    const GdrStats& in = shard.stats;
    s.initial_dirty += in.initial_dirty;
    s.user_feedback += in.user_feedback;
    s.user_confirms += in.user_confirms;
    s.user_rejects += in.user_rejects;
    s.user_retains += in.user_retains;
    s.user_suggested_values += in.user_suggested_values;
    s.learner_decisions += in.learner_decisions;
    s.learner_confirms += in.learner_confirms;
    s.forced_repairs += in.forced_repairs;
    s.outer_iterations += in.outer_iterations;
    s.appended_rows += in.appended_rows;
    s.admitted_dirty += in.admitted_dirty;
    s.timings.init_seconds += in.timings.init_seconds;
    s.timings.ranking_seconds += in.timings.ranking_seconds;
    s.timings.session_seconds += in.timings.session_seconds;
    s.timings.learner_sweep_seconds += in.timings.learner_sweep_seconds;
    s.timings.total_seconds += in.timings.total_seconds;

    merged.accuracy.updated_cells += shard.accuracy.updated_cells;
    merged.accuracy.correctly_updated_cells +=
        shard.accuracy.correctly_updated_cells;
    merged.accuracy.initially_incorrect_cells +=
        shard.accuracy.initially_incorrect_cells;

    merged.initial_loss += shard.initial_loss;
    merged.final_loss += shard.final_loss;
    merged.remaining_violations += shard.remaining_violations;
    merged.wall_seconds = std::max(merged.wall_seconds, shard.wall_seconds);
  }
  merged.final_improvement_pct =
      merged.initial_loss <= 0.0
          ? 100.0
          : 100.0 * (merged.initial_loss - merged.final_loss) /
                merged.initial_loss;

  // Consolidated curve: replay every shard's sample points in a canonical
  // order — ascending per-shard feedback, ties broken by (shard index,
  // point index) — tracking each shard's latest (feedback, loss) and
  // emitting the global totals after each event. The order is a pure
  // function of the index-ordered inputs, so however the shards actually
  // interleaved in time, the merged curve is the same.
  struct Event {
    std::size_t feedback;
    std::size_t shard;
    std::size_t idx;
  };
  std::vector<Event> events;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const auto& curve = shards[s].curve;
    // Point 0 is the initial state; the merged initial point is built from
    // the summed initial losses below.
    for (std::size_t i = 1; i < curve.size(); ++i) {
      events.push_back(Event{curve[i].feedback, s, i});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.feedback != b.feedback) return a.feedback < b.feedback;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.idx < b.idx;
  });

  std::vector<std::size_t> shard_feedback(shards.size(), 0);
  std::vector<double> shard_loss(shards.size());
  double total_loss = 0.0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shard_loss[s] = shards[s].initial_loss;
    total_loss += shard_loss[s];
  }
  const double initial_total = merged.initial_loss;
  auto improvement = [initial_total](double loss) {
    return initial_total <= 0.0
               ? 100.0
               : 100.0 * (initial_total - loss) / initial_total;
  };
  merged.curve.push_back({0, 0.0, initial_total});
  std::size_t total_feedback = 0;
  for (const Event& event : events) {
    const CurvePoint& point = shards[event.shard].curve[event.idx];
    total_feedback += point.feedback - shard_feedback[event.shard];
    shard_feedback[event.shard] = point.feedback;
    total_loss += point.loss - shard_loss[event.shard];
    shard_loss[event.shard] = point.loss;
    merged.curve.push_back(
        {total_feedback, improvement(total_loss), total_loss});
  }
  return merged;
}

std::string FingerprintExperimentResult(const ExperimentResult& result) {
  std::ostringstream out;
  out << "strategy " << result.strategy_name << '\n';
  const GdrStats& s = result.stats;
  out << "stats " << s.initial_dirty << ' ' << s.user_feedback << ' '
      << s.user_confirms << ' ' << s.user_rejects << ' ' << s.user_retains
      << ' ' << s.user_suggested_values << ' ' << s.learner_decisions << ' '
      << s.learner_confirms << ' ' << s.forced_repairs << ' '
      << s.outer_iterations << ' ' << s.appended_rows << ' '
      << s.admitted_dirty << '\n';
  out << "accuracy " << result.accuracy.updated_cells << ' '
      << result.accuracy.correctly_updated_cells << ' '
      << result.accuracy.initially_incorrect_cells << '\n';
  out << "loss ";
  AppendDoubleBits(&out, result.initial_loss);
  out << ' ';
  AppendDoubleBits(&out, result.final_loss);
  out << ' ';
  AppendDoubleBits(&out, result.final_improvement_pct);
  out << '\n';
  out << "violations " << result.remaining_violations << '\n';
  out << "curve " << result.curve.size() << '\n';
  for (const CurvePoint& point : result.curve) {
    out << point.feedback << ' ';
    AppendDoubleBits(&out, point.improvement_pct);
    out << ' ';
    AppendDoubleBits(&out, point.loss);
    out << '\n';
  }
  return Fnv1a64Hex(out.str());
}

Result<ShardedRepairResult> RunShardedRepair(
    const Dataset& dataset, const ShardedRepairConfig& config) {
  const Stopwatch total_watch;
  GDR_ASSIGN_OR_RETURN(
      const ShardPlan plan,
      ShardPlan::Split(dataset.dirty.num_rows(), config.shard_count));

  // Shard slices are materialized serially: interning order inside each
  // slice is a function of the slice alone, but keeping this phase
  // single-threaded keeps the plan → dataset step trivially reproducible.
  std::vector<Dataset> slices;
  slices.reserve(plan.num_shards());
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    GDR_ASSIGN_OR_RETURN(
        Dataset slice,
        MakeShardDataset(dataset, plan.range(s),
                         dataset.name + "#shard" + std::to_string(s)));
    slices.push_back(std::move(slice));
  }

  const std::size_t n = plan.num_shards();
  ShardedRepairResult result;
  result.shards.resize(n);
  std::vector<Status> statuses(n, Status::OK());

  auto run_shard = [&](std::size_t shard) {
    ExperimentConfig experiment = config.experiment;
    experiment.seed = config.experiment.seed + shard;
    if (n > 1) {
      // Shard-level fan-out owns the parallelism; nested ranking futures
      // on the same pool would deadlock its fixed worker set.
      experiment.num_threads = 1;
      experiment.shared_pool = nullptr;
    } else {
      experiment.shared_pool = config.pool;
    }
    auto outcome = RunStrategyExperiment(slices[shard], experiment);
    if (outcome.ok()) {
      result.shards[shard] = *std::move(outcome);
    } else {
      statuses[shard] = outcome.status();
    }
  };

  auto shard_for_index = [&](std::size_t i) {
    return config.reverse_execution ? n - 1 - i : i;
  };
  if (config.pool != nullptr && n > 1) {
    config.pool->ParallelFor(
        n, [&](std::size_t i) { run_shard(shard_for_index(i)); });
  } else {
    for (std::size_t i = 0; i < n; ++i) run_shard(shard_for_index(i));
  }
  for (const Status& status : statuses) GDR_RETURN_NOT_OK(status);

  result.merged = MergeShardResults(result.shards);
  result.fingerprint = FingerprintExperimentResult(result.merged);
  // Merge self-check: a second pass over a copy must reproduce the digest.
  const std::vector<ExperimentResult> copy = result.shards;
  result.merge_deterministic =
      FingerprintExperimentResult(MergeShardResults(copy)) ==
      result.fingerprint;
  result.wall_seconds = total_watch.ElapsedSeconds();
  return result;
}

}  // namespace gdr::plane
