#include "plane/sweep.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gdr::plane {

namespace {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string GroupKey(const std::string& canonical, const std::string& strategy,
                     std::size_t shard_count) {
  return canonical + '\x1f' + strategy + '\x1f' + std::to_string(shard_count);
}

}  // namespace

Result<SweepReport> RunSweep(const SweepConfig& config) {
  if (config.workloads.empty() || config.strategies.empty() ||
      config.shard_counts.empty() || config.thread_counts.empty()) {
    return Status::InvalidArgument(
        "sweep grid needs at least one workload, strategy, shard count, and "
        "thread count");
  }
  for (const std::size_t shards : config.shard_counts) {
    if (shards == 0) {
      return Status::InvalidArgument("sweep shard counts must be >= 1");
    }
  }

  const Stopwatch total_watch;
  SweepReport report;
  report.config = config;
  report.hardware_concurrency = std::thread::hardware_concurrency();

  WorkloadCache cache(config.cache);

  // One pool per distinct resolved thread count, shared by every cell that
  // runs at that width — the sweep is also a soak test of pool reuse.
  std::map<std::size_t, std::unique_ptr<ThreadPool>> pools;
  auto pool_for = [&pools](std::size_t threads) -> ThreadPool* {
    if (threads <= 1) return nullptr;
    auto& slot = pools[threads];
    if (slot == nullptr) slot = std::make_unique<ThreadPool>(threads);
    return slot.get();
  };

  std::map<std::string, std::string> group_fingerprint;  // group -> baseline
  std::set<std::string> seen_canonicals;
  std::size_t resolutions = 0;

  for (const std::string& workload : config.workloads) {
    GDR_ASSIGN_OR_RETURN(const WorkloadSpec spec,
                         WorkloadSpec::Parse(workload));
    const std::string canonical = spec.Canonical();
    seen_canonicals.insert(canonical);
    for (const Strategy strategy : config.strategies) {
      const std::string strategy_name = StrategyName(strategy);
      for (const std::size_t shard_count : config.shard_counts) {
        const std::string group =
            GroupKey(canonical, strategy_name, shard_count);
        bool group_leader = !group_fingerprint.contains(group);
        for (const std::size_t requested_threads : config.thread_counts) {
          const std::size_t threads =
              ThreadPool::ResolveThreadCount(requested_threads);

          SweepCell cell;
          cell.workload = canonical;
          cell.strategy = strategy_name;
          cell.shard_count = shard_count;
          cell.thread_count = threads;

          // Resolve through the cache — the first cell of a workload pays
          // generation + discovery; every later cell hits.
          const std::size_t hits_before = cache.counters().hits();
          const Stopwatch resolve_watch;
          GDR_ASSIGN_OR_RETURN(
              const std::shared_ptr<const Dataset> dataset,
              cache.Resolve(spec));
          cell.resolve_seconds = resolve_watch.ElapsedSeconds();
          cell.cache_hit = cache.counters().hits() > hits_before;
          ++resolutions;
          cell.workload_name = dataset->name;
          cell.rows = dataset->dirty.num_rows();

          ShardedRepairConfig run;
          run.shard_count = shard_count;
          run.pool = pool_for(threads);
          run.experiment.strategy = strategy;
          run.experiment.seed = config.seed;
          run.experiment.ns = config.ns;
          run.experiment.sample_every = config.sample_every;
          run.experiment.feedback_budget = config.feedback_budget;
          run.experiment.num_threads = 1;

          const std::uint64_t completed_before =
              run.pool != nullptr ? run.pool->tasks_completed() : 0;
          GDR_ASSIGN_OR_RETURN(const ShardedRepairResult outcome,
                               RunShardedRepair(*dataset, run));
          if (run.pool != nullptr) {
            cell.pool_tasks_completed =
                run.pool->tasks_completed() - completed_before;
            cell.pool_queue_depth = run.pool->queue_depth();
          }

          cell.wall_seconds = outcome.wall_seconds;
          for (const ExperimentResult& shard : outcome.shards) {
            cell.max_shard_seconds =
                std::max(cell.max_shard_seconds, shard.wall_seconds);
          }
          cell.shard_skew = cell.wall_seconds > 0.0
                                ? cell.max_shard_seconds / cell.wall_seconds
                                : 0.0;
          cell.user_feedback = outcome.merged.stats.user_feedback;
          cell.final_improvement_pct = outcome.merged.final_improvement_pct;
          cell.precision = outcome.merged.accuracy.Precision();
          cell.recall = outcome.merged.accuracy.Recall();
          cell.remaining_violations = outcome.merged.remaining_violations;
          cell.fingerprint = outcome.fingerprint;
          cell.merge_deterministic = outcome.merge_deterministic;

          if (group_leader) {
            group_fingerprint[group] = outcome.fingerprint;
            // The execution-order probe: rerun the leader with shards
            // submitted in reverse; the slot-collected merge must not
            // notice. Once per group, and only where order exists.
            if (config.verify_execution_order && shard_count > 1) {
              ShardedRepairConfig reversed = run;
              reversed.reverse_execution = true;
              GDR_ASSIGN_OR_RETURN(const ShardedRepairResult probe,
                                   RunShardedRepair(*dataset, reversed));
              cell.merge_deterministic =
                  cell.merge_deterministic &&
                  probe.fingerprint == outcome.fingerprint;
            }
            group_leader = false;
          }
          cell.fingerprint_consistent =
              cell.fingerprint == group_fingerprint[group];

          report.determinism_ok = report.determinism_ok &&
                                  cell.merge_deterministic &&
                                  cell.fingerprint_consistent;
          report.cells.push_back(std::move(cell));
        }
      }
    }
  }

  report.cache = cache.counters();
  report.cache_hits_expected = resolutions > seen_canonicals.size();
  report.total_seconds = total_watch.ElapsedSeconds();
  return report;
}

std::string SweepReportToJson(const SweepReport& report) {
  std::ostringstream out;
  out.precision(17);
  out << "{\n";
  out << "  \"bench\": \"sweep\",\n";
  out << "  \"hardware_concurrency\": " << report.hardware_concurrency
      << ",\n";
  out << "  \"seed\": " << report.config.seed << ",\n";
  out << "  \"ns\": " << report.config.ns << ",\n";
  out << "  \"sample_every\": " << report.config.sample_every << ",\n";

  out << "  \"workloads\": [";
  for (std::size_t i = 0; i < report.config.workloads.size(); ++i) {
    out << (i ? ", " : "") << '"' << JsonEscape(report.config.workloads[i])
        << '"';
  }
  out << "],\n";
  out << "  \"strategies\": [";
  for (std::size_t i = 0; i < report.config.strategies.size(); ++i) {
    out << (i ? ", " : "") << '"'
        << JsonEscape(StrategyName(report.config.strategies[i])) << '"';
  }
  out << "],\n";
  out << "  \"shard_counts\": [";
  for (std::size_t i = 0; i < report.config.shard_counts.size(); ++i) {
    out << (i ? ", " : "") << report.config.shard_counts[i];
  }
  out << "],\n";
  out << "  \"thread_counts\": [";
  for (std::size_t i = 0; i < report.config.thread_counts.size(); ++i) {
    out << (i ? ", " : "") << report.config.thread_counts[i];
  }
  out << "],\n";

  out << "  \"cache\": {\n";
  out << "    \"memory_hits\": " << report.cache.memory_hits << ",\n";
  out << "    \"disk_hits\": " << report.cache.disk_hits << ",\n";
  out << "    \"misses\": " << report.cache.misses << ",\n";
  out << "    \"collisions_resolved\": " << report.cache.collisions_resolved
      << ",\n";
  out << "    \"hits_expected\": "
      << (report.cache_hits_expected ? "true" : "false") << "\n";
  out << "  },\n";
  out << "  \"determinism_ok\": "
      << (report.determinism_ok ? "true" : "false") << ",\n";
  out << "  \"total_seconds\": " << report.total_seconds << ",\n";

  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const SweepCell& cell = report.cells[i];
    out << "    {\n";
    out << "      \"workload\": \"" << JsonEscape(cell.workload) << "\",\n";
    out << "      \"workload_name\": \"" << JsonEscape(cell.workload_name)
        << "\",\n";
    out << "      \"strategy\": \"" << JsonEscape(cell.strategy) << "\",\n";
    out << "      \"shard_count\": " << cell.shard_count << ",\n";
    out << "      \"thread_count\": " << cell.thread_count << ",\n";
    out << "      \"rows\": " << cell.rows << ",\n";
    out << "      \"resolve_seconds\": " << cell.resolve_seconds << ",\n";
    out << "      \"cache_hit\": " << (cell.cache_hit ? "true" : "false")
        << ",\n";
    out << "      \"wall_seconds\": " << cell.wall_seconds << ",\n";
    out << "      \"max_shard_seconds\": " << cell.max_shard_seconds << ",\n";
    out << "      \"shard_skew\": " << cell.shard_skew << ",\n";
    out << "      \"user_feedback\": " << cell.user_feedback << ",\n";
    out << "      \"final_improvement_pct\": " << cell.final_improvement_pct
        << ",\n";
    out << "      \"precision\": " << cell.precision << ",\n";
    out << "      \"recall\": " << cell.recall << ",\n";
    out << "      \"remaining_violations\": " << cell.remaining_violations
        << ",\n";
    out << "      \"fingerprint\": \"" << JsonEscape(cell.fingerprint)
        << "\",\n";
    out << "      \"merge_deterministic\": "
        << (cell.merge_deterministic ? "true" : "false") << ",\n";
    out << "      \"fingerprint_consistent\": "
        << (cell.fingerprint_consistent ? "true" : "false") << ",\n";
    out << "      \"pool_tasks_completed\": " << cell.pool_tasks_completed
        << ",\n";
    out << "      \"pool_queue_depth\": " << cell.pool_queue_depth << "\n";
    out << "    }" << (i + 1 < report.cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

}  // namespace gdr::plane
