#include "plane/shard_plan.h"

#include <string>

namespace gdr::plane {

Result<ShardPlan> ShardPlan::Split(std::size_t num_rows,
                                   std::size_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("shard plan needs at least one shard");
  }
  ShardPlan plan;
  plan.num_rows_ = num_rows;
  plan.ranges_.reserve(num_shards);
  const std::size_t base = num_rows / num_shards;
  const std::size_t extra = num_rows % num_shards;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t size = base + (s < extra ? 1 : 0);
    plan.ranges_.push_back(ShardRange{cursor, cursor + size});
    cursor += size;
  }
  return plan;
}

std::size_t ShardPlan::OwnerOf(std::size_t global_row) const {
  const std::size_t shards = ranges_.size();
  const std::size_t base = num_rows_ / shards;
  const std::size_t extra = num_rows_ % shards;
  const std::size_t fat_rows = (base + 1) * extra;  // rows in base+1 shards
  if (global_row < fat_rows) return global_row / (base + 1);
  return extra + (global_row - fat_rows) / base;
}

std::vector<std::vector<std::vector<std::string>>> ShardPlan::RouteAppends(
    const std::vector<std::vector<std::string>>& rows,
    std::size_t appends_so_far) const {
  std::vector<std::vector<std::vector<std::string>>> routed(ranges_.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    routed[OwnerOfAppend(appends_so_far + i)].push_back(rows[i]);
  }
  return routed;
}

Result<Dataset> MakeShardDataset(const Dataset& full, const ShardRange& range,
                                 std::string_view name) {
  if (full.clean.num_rows() != full.dirty.num_rows()) {
    return Status::InvalidArgument(
        "dataset clean/dirty instances disagree on row count");
  }
  if (range.end > full.dirty.num_rows() || range.begin > range.end) {
    return Status::OutOfRange("shard range [" + std::to_string(range.begin) +
                              ", " + std::to_string(range.end) +
                              ") exceeds the " +
                              std::to_string(full.dirty.num_rows()) +
                              "-row instance");
  }
  Dataset shard(full.clean.schema());
  shard.name = std::string(name);
  shard.rules = full.rules;

  const std::size_t attrs = full.clean.num_attrs();
  shard.clean.Reserve(range.size());
  std::vector<std::string> cells(attrs);
  for (std::size_t r = range.begin; r < range.end; ++r) {
    for (std::size_t a = 0; a < attrs; ++a) {
      cells[a] = full.clean.at(static_cast<RowId>(r), static_cast<AttrId>(a));
    }
    GDR_RETURN_NOT_OK(shard.clean.AppendRow(cells).status());
  }

  // Dirty = copy of clean + row-major cell diffs, sharing dictionaries —
  // exactly how the generators and the csv: loader build theirs.
  shard.dirty = shard.clean;
  std::size_t corrupted = 0;
  for (std::size_t r = range.begin; r < range.end; ++r) {
    const RowId global = static_cast<RowId>(r);
    const RowId local = static_cast<RowId>(r - range.begin);
    bool differs = false;
    for (std::size_t a = 0; a < attrs; ++a) {
      const AttrId attr = static_cast<AttrId>(a);
      if (full.dirty.at(global, attr) != full.clean.at(global, attr)) {
        shard.dirty.Set(local, attr, full.dirty.at(global, attr));
        differs = true;
      }
    }
    if (differs) ++corrupted;
  }
  shard.corrupted_tuples = corrupted;
  return shard;
}

}  // namespace gdr::plane
