#ifndef GDR_PLANE_SHARDED_REPAIR_H_
#define GDR_PLANE_SHARDED_REPAIR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "plane/shard_plan.h"
#include "sim/dataset.h"
#include "sim/experiment.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace gdr::plane {

/// One sharded run: how to split, where to run, what each shard runs.
struct ShardedRepairConfig {
  /// Contiguous row-range shards (ShardPlan::Split); may exceed the row
  /// count, in which case the surplus shards are empty and contribute
  /// nothing to the merge.
  std::size_t shard_count = 1;
  /// Non-owning shard-level executor. When set, per-shard repair sessions
  /// run concurrently on this pool (GdrOptions::shared_pool reused at the
  /// shard granularity) and each shard's own VOI ranking is forced serial:
  /// a shard task blocking on nested ranking futures of the same
  /// exhausted pool would deadlock, and shard-level fan-out already owns
  /// the parallelism budget. nullptr runs shards serially on the caller.
  /// Exception: a single-shard run has no shard-level fan-out, so the pool
  /// is handed to the experiment as its ranking pool instead — that is
  /// what lets a thread-count sweep exercise ranking scaling at
  /// shard_count=1 and shard scaling above it, on one pool.
  ThreadPool* pool = nullptr;
  /// Execute shards in reverse index order (a determinism probe for the
  /// differential tests: results are collected into index-addressed slots,
  /// so execution order must never change the merged output).
  bool reverse_execution = false;
  /// The per-shard experiment. Each shard s runs with seed
  /// `experiment.seed + s` (deterministic in the shard index, never in
  /// execution order) over its own Dataset slice; `num_threads` and
  /// `shared_pool` are overridden per the pool rules above.
  ExperimentConfig experiment;
};

struct ShardedRepairResult {
  /// Per-shard results, by shard index (empty shards included).
  std::vector<ExperimentResult> shards;
  /// The consolidated result (MergeShardResults of `shards`).
  ExperimentResult merged;
  /// FingerprintExperimentResult(merged): the value the differential
  /// suites pin across thread counts and execution orders.
  std::string fingerprint;
  /// Self-check: merging a copy of the per-shard results reproduced the
  /// identical fingerprint (guards against nondeterminism *inside* the
  /// merge; cross-run determinism is pinned by the tests and the sweep).
  bool merge_deterministic = true;
  /// End-to-end wall clock: shard materialization + runs + merge.
  double wall_seconds = 0.0;
};

/// Deterministically consolidates per-shard experiment results into one:
/// counters, accuracy, losses, and remaining violations are summed
/// (loss L(D) = Σ w_i·ql over per-shard indexes is additive across a row
/// partition's sub-instances); the quality curves are k-way merged into
/// one global feedback-vs-improvement curve by replaying every shard's
/// curve points in (feedback, shard index, point index) order and emitting
/// the global totals after each. A pure function of the index-ordered
/// input — shard execution order and thread counts can never reach it.
/// Merging a single shard returns it verbatim. `timings` are summed and
/// `wall_seconds` is the per-shard maximum (shards run concurrently);
/// both are excluded from the fingerprint.
ExperimentResult MergeShardResults(const std::vector<ExperimentResult>& shards);

/// Canonical digest of everything deterministic in a result: strategy,
/// stats counters, accuracy, initial/final loss and curve points (doubles
/// by bit pattern), remaining violations. Timings and wall-clock are
/// excluded. Equal fingerprints across two runs mean bit-identical merged
/// repair outcomes.
std::string FingerprintExperimentResult(const ExperimentResult& result);

/// Splits `dataset` by row range, runs one repair session per shard
/// (concurrently when `config.pool` is set), and merges. The dataset is
/// not mutated; shard slices are materialized per call.
Result<ShardedRepairResult> RunShardedRepair(const Dataset& dataset,
                                             const ShardedRepairConfig& config);

}  // namespace gdr::plane

#endif  // GDR_PLANE_SHARDED_REPAIR_H_
