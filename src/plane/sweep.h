#ifndef GDR_PLANE_SWEEP_H_
#define GDR_PLANE_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/gdr.h"
#include "plane/sharded_repair.h"
#include "util/result.h"
#include "workload/workload_cache.h"

namespace gdr::plane {

/// The experiment grid: strategies × workloads × shard counts × thread
/// counts, every combination one cell. This is the evaluation shape the
/// deployment studies use — a method/dataset/configuration grid, not one
/// hand-picked run.
struct SweepConfig {
  /// Workload spec texts ("dataset1:records=2000,seed=42"). Each cell
  /// resolves its spec through the content-keyed WorkloadCache, so a
  /// workload pays generation + rule discovery once per sweep, not once
  /// per cell.
  std::vector<std::string> workloads;
  std::vector<Strategy> strategies;
  /// Row-range shard counts (ShardPlan::Split); 1 = unsharded.
  std::vector<std::size_t> shard_counts;
  /// Pool sizes (0 = hardware concurrency). At shard_count 1 the pool
  /// parallelizes VOI ranking; above it, whole shards.
  std::vector<std::size_t> thread_counts;
  std::uint64_t seed = 42;
  int ns = 5;
  std::size_t sample_every = 50;
  std::size_t feedback_budget = GdrOptions::kUnlimitedBudget;
  /// For every (workload, strategy, shard_count) group, additionally run
  /// the first thread count with shards executing in reverse order and
  /// require the identical merged fingerprint (the execution-order half of
  /// the determinism gate; the thread-count half falls out of the grid).
  bool verify_execution_order = true;
  WorkloadCacheOptions cache;
};

/// One grid cell's record, everything BENCH_sweep.json needs.
struct SweepCell {
  std::string workload;       // canonical spec (the cache key)
  std::string workload_name;  // resolved display name
  std::string strategy;
  std::size_t shard_count = 1;
  std::size_t thread_count = 1;
  std::size_t rows = 0;

  double resolve_seconds = 0.0;  // workload resolution (cache-visible)
  bool cache_hit = false;        // memory or disk layer answered
  double wall_seconds = 0.0;     // sharded run end-to-end
  double max_shard_seconds = 0.0;  // slowest shard (the makespan floor)
  /// Load-imbalance skew: max_shard_seconds / wall_seconds. Near 1.0 means
  /// one straggler shard dominated the cell's wall clock (perfectly
  /// balanced K-shard runs on K idle cores approach 1/K); 0 when the cell
  /// recorded no wall time.
  double shard_skew = 0.0;

  std::size_t user_feedback = 0;
  double final_improvement_pct = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  std::int64_t remaining_violations = 0;

  std::string fingerprint;
  /// Intra-run merge self-check (ShardedRepairResult::merge_deterministic)
  /// AND, on group-leader cells, the reverse-execution replica agreeing.
  bool merge_deterministic = true;
  /// This cell's fingerprint equals its group's (workload, strategy,
  /// shard_count) baseline — i.e. thread count did not change the merged
  /// result. Trivially true for the baseline cell itself.
  bool fingerprint_consistent = true;

  /// Shared-pool saturation observability: completed-task delta during the
  /// cell and the queue depth sampled right after it (0 = drained).
  std::uint64_t pool_tasks_completed = 0;
  std::size_t pool_queue_depth = 0;
};

struct SweepReport {
  SweepConfig config;
  std::vector<SweepCell> cells;
  WorkloadCache::Counters cache;
  unsigned hardware_concurrency = 0;
  /// Every cell's merge_deterministic and fingerprint_consistent flag.
  bool determinism_ok = true;
  /// True when the grid resolves some workload more than once, i.e. the
  /// cache must record hits (the CI gate reads this together with
  /// cache.hits()).
  bool cache_hits_expected = false;
  double total_seconds = 0.0;
};

/// Runs the grid cell by cell (workload-major, so each workload is
/// resolved while its neighbors are still warm in the cache), reusing one
/// ThreadPool per distinct thread count across all cells.
Result<SweepReport> RunSweep(const SweepConfig& config);

/// Renders the report as the BENCH_sweep.json document (one top-level
/// object; see README for the reading guide).
std::string SweepReportToJson(const SweepReport& report);

}  // namespace gdr::plane

#endif  // GDR_PLANE_SWEEP_H_
