#ifndef GDR_PLANE_SHARD_PLAN_H_
#define GDR_PLANE_SHARD_PLAN_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "sim/dataset.h"
#include "util/result.h"

namespace gdr::plane {

/// Half-open row range [begin, end) of one shard within the full instance.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
  bool operator==(const ShardRange&) const = default;
};

/// The deterministic row partition of the sharded data plane: `num_rows`
/// initial rows split into `num_shards` contiguous ranges whose sizes
/// differ by at most one (the first `num_rows % num_shards` shards carry
/// the extra row). Rules are shared across shards — only rows split — so
/// every shard repairs against the same Σ.
///
/// The plan also owns the routing of *late-arriving* rows (PR 6's
/// streaming appends): a row appended after planning is assigned
/// round-robin by its append index, independent of content and of which
/// shard finishes work first, so routing is reproducible from the event
/// log alone.
class ShardPlan {
 public:
  /// Builds the partition. `num_shards` must be >= 1; when it exceeds
  /// `num_rows` the surplus shards are empty (and a per-shard session over
  /// an empty instance is a valid, immediately-done session).
  static Result<ShardPlan> Split(std::size_t num_rows, std::size_t num_shards);

  std::size_t num_shards() const { return ranges_.size(); }
  std::size_t num_rows() const { return num_rows_; }
  const ShardRange& range(std::size_t shard) const { return ranges_[shard]; }
  const std::vector<ShardRange>& ranges() const { return ranges_; }

  /// The shard owning initial row `global_row` (< num_rows()). O(1).
  std::size_t OwnerOf(std::size_t global_row) const;

  /// The shard owning the `append_index`-th row appended after planning
  /// (0-based): round-robin over the shards, skipping nothing — empty
  /// initial shards receive appends like any other.
  std::size_t OwnerOfAppend(std::size_t append_index) const {
    return append_index % ranges_.size();
  }

  /// Partitions an append batch by OwnerOfAppend, preserving relative row
  /// order within each shard: result[s] holds the rows shard s must
  /// AppendDirtyRows(). Every input row lands in exactly one output slot.
  /// `appends_so_far` is the number of rows routed by previous batches
  /// (the append-index offset).
  std::vector<std::vector<std::vector<std::string>>> RouteAppends(
      const std::vector<std::vector<std::string>>& rows,
      std::size_t appends_so_far = 0) const;

 private:
  std::size_t num_rows_ = 0;
  std::vector<ShardRange> ranges_;
};

/// Materializes one shard's Dataset: the range's rows copied out of
/// `full.clean`, the dirty instance rebuilt as a copy of the shard's clean
/// table with the differing cells applied row-major (the same idiom the
/// generators and the csv: loader use, so value-id interning — and every
/// interning-order tie-break downstream — is reproduced exactly), and a
/// copy of the shared rules. `corrupted_tuples` counts the range's rows
/// with at least one differing cell. `name` is the shard's display name.
Result<Dataset> MakeShardDataset(const Dataset& full, const ShardRange& range,
                                 std::string_view name);

}  // namespace gdr::plane

#endif  // GDR_PLANE_SHARD_PLAN_H_
