#include "server/protocol.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/strings.h"

namespace gdr::server {

namespace {

std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

void AppendError(const Status& status, std::string* reply) {
  reply->append("ERR ");
  reply->append(StatusCodeName(status.code()));
  reply->push_back(' ');
  reply->append(status.message());
  reply->push_back('\n');
}

void AppendErrorArg(std::string message, std::string* reply) {
  AppendError(Status::InvalidArgument(std::move(message)), reply);
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Parses the optional `key=value` tail of `open` into `config`.
Status ParseOpenOption(std::string_view token, OpenConfig* config) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos) {
    return Status::InvalidArgument("expected key=value, got '" +
                                   std::string(token) + "'");
  }
  const std::string_view key = token.substr(0, eq);
  const std::string_view value = token.substr(eq + 1);
  if (key == "strategy") {
    config->strategy = std::string(value);
  } else if (key == "ns") {
    GDR_ASSIGN_OR_RETURN(const std::int64_t ns, ParseInt64(value, "ns"));
    if (ns < 1) return Status::InvalidArgument("ns must be >= 1");
    config->ns = static_cast<int>(ns);
  } else if (key == "budget") {
    GDR_ASSIGN_OR_RETURN(const std::uint64_t budget,
                         ParseUint64(value, "budget"));
    config->feedback_budget = static_cast<std::size_t>(budget);
  } else if (key == "seed") {
    GDR_ASSIGN_OR_RETURN(config->seed, ParseUint64(value, "seed"));
  } else if (key == "max-outer") {
    GDR_ASSIGN_OR_RETURN(const std::int64_t max_outer,
                         ParseInt64(value, "max-outer"));
    if (max_outer < 1) {
      return Status::InvalidArgument("max-outer must be >= 1");
    }
    config->max_outer_iterations = static_cast<int>(max_outer);
  } else {
    return Status::InvalidArgument("unknown open option '" +
                                   std::string(key) + "'");
  }
  return Status::OK();
}

// `append` row payload: ';'-separated rows of ','-separated hex cells.
Status ParseRows(std::string_view payload,
                 std::vector<std::vector<std::string>>* rows) {
  std::size_t row_start = 0;
  while (row_start <= payload.size()) {
    std::size_t row_end = payload.find(';', row_start);
    if (row_end == std::string_view::npos) row_end = payload.size();
    const std::string_view row_text =
        payload.substr(row_start, row_end - row_start);
    std::vector<std::string> row;
    std::size_t cell_start = 0;
    while (cell_start <= row_text.size()) {
      std::size_t cell_end = row_text.find(',', cell_start);
      if (cell_end == std::string_view::npos) cell_end = row_text.size();
      std::string cell;
      if (!DecodeHex(row_text.substr(cell_start, cell_end - cell_start),
                     &cell)) {
        return Status::InvalidArgument("malformed hex cell in append row " +
                                       std::to_string(rows->size()));
      }
      row.push_back(std::move(cell));
      if (cell_end == row_text.size()) break;
      cell_start = cell_end + 1;
    }
    rows->push_back(std::move(row));
    if (row_end == payload.size()) break;
    row_start = row_end + 1;
  }
  return Status::OK();
}

}  // namespace

bool HandleCommand(const Backend& backend, std::string_view line,
                   std::string* reply) {
  // Tolerate CRLF input.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0].front() == '#') return true;
  const std::string_view cmd = tokens[0];

  if (cmd == "quit") {
    reply->append("OK bye\n");
    return false;
  }
  if (cmd == "stats") {
    const WireServerStats stats = backend.ops->stats(backend.self);
    std::ostringstream out;
    out << "OK resident=" << stats.resident_sessions
        << " evicted=" << stats.evicted_sessions
        << " bytes=" << stats.resident_bytes
        << " budget=" << stats.memory_budget_bytes << " opens=" << stats.opens
        << " evictions=" << stats.evictions
        << " rehydrations=" << stats.rehydrations
        << " pool-threads=" << stats.pool_threads
        << " pool-depth=" << stats.pool_queue_depth
        << " pool-completed=" << stats.pool_tasks_completed
        << " learner-encode-s=" << stats.learner_encode_seconds
        << " learner-treewalk-s=" << stats.learner_tree_walk_seconds
        << " voi-probe-s=" << stats.voi_probe_seconds
        << " voi-probes=" << stats.voi_probes << "\n";
    reply->append(out.str());
    return true;
  }

  // Everything else addresses a session.
  if (tokens.size() < 3) {
    AppendErrorArg("usage: " + std::string(cmd) + " <tenant> <session> ...",
                   reply);
    return true;
  }
  const SessionKey key{std::string(tokens[1]), std::string(tokens[2])};

  if (cmd == "open") {
    if (tokens.size() < 4) {
      AppendErrorArg("usage: open <tenant> <session> <workload> [key=value...]",
                     reply);
      return true;
    }
    OpenConfig config;
    config.workload_spec = std::string(tokens[3]);
    for (std::size_t i = 4; i < tokens.size(); ++i) {
      const Status parsed = ParseOpenOption(tokens[i], &config);
      if (!parsed.ok()) {
        AppendError(parsed, reply);
        return true;
      }
    }
    const Result<WireOpenResult> opened =
        backend.ops->open(backend.self, key, config);
    if (!opened.ok()) {
      AppendError(opened.status(), reply);
      return true;
    }
    std::ostringstream out;
    out << "OK state=" << opened->state << " dirty=" << opened->initial_dirty
        << " pool=" << opened->pool_size << "\n";
    reply->append(out.str());
    return true;
  }

  if (cmd == "next") {
    const Result<WireBatch> batch = backend.ops->next(backend.self, key);
    if (!batch.ok()) {
      AppendError(batch.status(), reply);
      return true;
    }
    std::ostringstream out;
    out << "OK state=" << batch->state << " n=" << batch->suggestions.size()
        << "\n";
    for (const WireSuggestion& s : batch->suggestions) {
      out << "S " << s.update_id << " " << s.row << " " << EncodeHex(s.attr)
          << " " << EncodeHex(s.current_value) << " "
          << EncodeHex(s.suggested_value) << " " << FormatDouble(s.voi_score)
          << " " << FormatDouble(s.uncertainty) << " " << s.budget_remaining
          << "\n";
    }
    reply->append(out.str());
    return true;
  }

  if (cmd == "feedback") {
    if (tokens.size() < 5 || tokens.size() > 6) {
      AppendErrorArg(
          "usage: feedback <tenant> <session> <update-id> "
          "confirm|reject|retain [value-hex]",
          reply);
      return true;
    }
    const Result<std::uint64_t> update_id =
        ParseUint64(tokens[3], "update-id");
    if (!update_id.ok()) {
      AppendError(update_id.status(), reply);
      return true;
    }
    Feedback feedback;
    if (tokens[4] == "confirm") {
      feedback = Feedback::kConfirm;
    } else if (tokens[4] == "reject") {
      feedback = Feedback::kReject;
    } else if (tokens[4] == "retain") {
      feedback = Feedback::kRetain;
    } else {
      AppendErrorArg("feedback must be confirm, reject, or retain; got '" +
                         std::string(tokens[4]) + "'",
                     reply);
      return true;
    }
    std::optional<std::string> value;
    if (tokens.size() == 6) {
      std::string decoded;
      if (!DecodeHex(tokens[5], &decoded)) {
        AppendErrorArg("malformed hex value", reply);
        return true;
      }
      value = std::move(decoded);
    }
    const Result<WireFeedbackResult> result =
        backend.ops->feedback(backend.self, key, *update_id, feedback, value);
    if (!result.ok()) {
      AppendError(result.status(), reply);
      return true;
    }
    reply->append("OK outcome=" + result->outcome + " state=" +
                  result->state + "\n");
    return true;
  }

  if (cmd == "append") {
    if (tokens.size() != 4) {
      AppendErrorArg(
          "usage: append <tenant> <session> "
          "<hex,hex,...;hex,hex,...> (rows ';'-separated, cells "
          "','-separated, each cell hex)",
          reply);
      return true;
    }
    std::vector<std::vector<std::string>> rows;
    const Status parsed = ParseRows(tokens[3], &rows);
    if (!parsed.ok()) {
      AppendError(parsed, reply);
      return true;
    }
    const Result<WireAppendResult> result =
        backend.ops->append(backend.self, key, rows);
    if (!result.ok()) {
      AppendError(result.status(), reply);
      return true;
    }
    std::ostringstream out;
    out << "OK appended=" << result->rows_appended
        << " newly-dirty=" << result->newly_dirty
        << " revived=" << (result->revived ? 1 : 0) << "\n";
    reply->append(out.str());
    return true;
  }

  if (cmd == "snapshot" || cmd == "evict") {
    const auto op = cmd == "snapshot" ? backend.ops->snapshot
                                      : backend.ops->evict;
    const Result<std::size_t> bytes = op(backend.self, key);
    if (!bytes.ok()) {
      AppendError(bytes.status(), reply);
      return true;
    }
    reply->append("OK bytes=" + std::to_string(*bytes) + "\n");
    return true;
  }

  if (cmd == "dump") {
    const Result<std::vector<std::string>> cells =
        backend.ops->dump(backend.self, key);
    if (!cells.ok()) {
      AppendError(cells.status(), reply);
      return true;
    }
    reply->append("OK n=" + std::to_string(cells->size()) + "\n");
    for (const std::string& cell : *cells) {
      reply->append("C " + EncodeHex(cell) + "\n");
    }
    return true;
  }

  if (cmd == "close") {
    const Status closed = backend.ops->close(backend.self, key);
    if (!closed.ok()) {
      AppendError(closed, reply);
      return true;
    }
    reply->append("OK closed\n");
    return true;
  }

  AppendErrorArg("unknown command '" + std::string(cmd) + "'", reply);
  return true;
}

std::size_t ServerLoop(const Backend& backend, std::istream& in,
                       std::ostream& out) {
  std::size_t commands = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::string reply;
    const bool keep_going = HandleCommand(backend, line, &reply);
    if (!reply.empty()) {
      ++commands;
      out << reply;
      out.flush();
    }
    if (!keep_going) break;
  }
  return commands;
}

}  // namespace gdr::server
