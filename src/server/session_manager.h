#ifndef GDR_SERVER_SESSION_MANAGER_H_
#define GDR_SERVER_SESSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/session.h"
#include "server/backend.h"
#include "sim/dataset.h"
#include "util/thread_pool.h"

namespace gdr::server {

struct SessionManagerOptions {
  /// Where evicted sessions spill their snapshots
  /// (`<dir>/<tenant>__<session>.snapshot`, the interactive_repl format:
  /// a "workload <spec>" header line + the versioned SessionSnapshot).
  std::string spill_dir = "gdr_spill";
  /// Resident-memory budget across all sessions (estimated); exceeding it
  /// evicts least-recently-touched sessions to disk. 0 = never evict.
  std::size_t memory_budget_bytes = 0;
  /// Admission cap: `open` beyond this many live sessions (resident +
  /// evicted) is rejected.
  std::size_t max_sessions = 4096;
  /// Workers of the shared ranking pool all sessions multiplex onto
  /// (0 = one per hardware thread, 1 = serial/no pool).
  std::size_t num_threads = 1;
};

/// The service layer over GdrSession: owns many concurrent sessions keyed
/// by (tenant, session id), each with its own registry-resolved workload,
/// and keeps them under a memory budget by snapshotting cold sessions to
/// disk and transparently rehydrating them on the next touch.
///
/// Why this works: a GdrSession is event-sourced over a deterministic
/// workload, so its entire state is (workload spec, event log). Eviction
/// writes exactly that — crash-safely, via temp-file + rename — and
/// rehydration re-resolves the spec and replays the log, reconstructing
/// the pool, learner bank, RNG streams, and outstanding batch
/// bit-identically. The differential suites pin evicted-and-rehydrated
/// sessions to never-evicted controls.
///
/// Concurrency: any number of client threads may call any operation. A
/// manager-wide mutex guards only the session map; each session has its
/// own mutex serializing its (stateful, single-threaded) GdrSession, so
/// operations on different sessions run concurrently, and each session's
/// ranking work fans out on the one shared ThreadPool. Eviction scans
/// take the map lock and only try_lock victims, so no lock-order cycle
/// exists and a session mid-operation is never evicted under its caller.
class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions options = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates and starts a session over `config.workload_spec`. Fails on a
  /// duplicate key (AlreadyExists), a full server (FailedPrecondition), an
  /// invalid id, or a workload/strategy that does not resolve.
  Result<WireOpenResult> Open(const SessionKey& key, const OpenConfig& config);

  /// GdrSession::NextBatch through the service boundary. Touching an
  /// evicted session rehydrates it first (counted in `stats()`).
  Result<WireBatch> Next(const SessionKey& key);

  Result<WireFeedbackResult> Feedback(const SessionKey& key,
                                      std::uint64_t update_id,
                                      Feedback feedback,
                                      const std::optional<std::string>& value);

  Result<WireAppendResult> Append(
      const SessionKey& key,
      const std::vector<std::vector<std::string>>& rows);

  /// Durability on demand: persists the session's snapshot to its spill
  /// path (crash-safe); the session stays resident. Returns bytes written.
  Result<std::size_t> Snapshot(const SessionKey& key);

  /// Forced eviction (the policy does this on its own under memory
  /// pressure): snapshot to disk, free the in-memory state. Idempotent —
  /// evicting an evicted session returns 0 bytes. Returns bytes written.
  Result<std::size_t> Evict(const SessionKey& key);

  /// Current table contents, row-major (rehydrates if needed).
  Result<std::vector<std::string>> Dump(const SessionKey& key);

  /// Ends the session: drops in-memory state and the spill file.
  Status Close(const SessionKey& key);

  WireServerStats Stats() const;

  const SessionManagerOptions& options() const { return options_; }

 private:
  struct ManagedSession;

  // Map lookup only (no side effects); NotFound on a missing key.
  Result<std::shared_ptr<ManagedSession>> Find(const SessionKey& key) const;
  // Resolves the workload and builds a started (or restored) GdrSession.
  // Called under the session's mutex. `snapshot_text` null = fresh start.
  Status Materialize(ManagedSession* session,
                     const std::string* snapshot_text);
  // Rehydrates from the spill file when evicted. Under the session mutex.
  Status EnsureResident(ManagedSession* session);
  // Serializes the session (spill-file format) — under the session mutex.
  std::string SerializeSession(ManagedSession* session) const;
  // Writes the spill file crash-safely; returns bytes written.
  Result<std::size_t> Persist(ManagedSession* session);
  // Drops the in-memory state after a successful Persist.
  void ReleaseResident(ManagedSession* session);
  // Evicts least-recently-touched sessions until under budget.
  void EnforceBudget();

  SessionManagerOptions options_;
  std::unique_ptr<ThreadPool> ranking_pool_;  // shared by every session

  mutable std::mutex mutex_;  // guards sessions_ (the map only)
  std::map<SessionKey, std::shared_ptr<ManagedSession>> sessions_;

  std::atomic<std::uint64_t> touch_clock_{0};
  std::atomic<std::size_t> resident_bytes_{0};
  std::atomic<std::size_t> opens_{0};
  std::atomic<std::size_t> evictions_{0};
  std::atomic<std::size_t> rehydrations_{0};
};

/// Binds `manager` behind the vtable boundary. The returned Backend is
/// non-owning; `manager` must outlive every use.
Backend MakeSessionManagerBackend(SessionManager* manager);

}  // namespace gdr::server

#endif  // GDR_SERVER_SESSION_MANAGER_H_
