#ifndef GDR_SERVER_PROTOCOL_H_
#define GDR_SERVER_PROTOCOL_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "server/backend.h"

namespace gdr::server {

/// The line-oriented wire protocol over a Backend. One command per line,
/// whitespace-separated tokens; arbitrary byte strings (cell values,
/// volunteered repairs) travel hex-encoded so they can never break the
/// framing. Replies are status-prefixed: `OK ...` on success, `ERR <code>
/// <message>` on failure. Two commands (`next`, `dump`) reply with a
/// counted header line followed by that many item lines; everything else
/// replies with exactly one line.
///
/// Grammar (see ARCHITECTURE.md for the full reply shapes):
///
///   open <tenant> <session> <workload> [strategy=S] [ns=N] [budget=N]
///        [seed=N] [max-outer=N]         -> OK state=.. dirty=N pool=N
///   next <tenant> <session>             -> OK state=.. n=K
///                                          K x: S <id> <row> <attr-hex>
///                                            <cur-hex> <sug-hex> <voi>
///                                            <uncertainty> <budget>
///   feedback <tenant> <session> <id> confirm|reject|retain [value-hex]
///                                       -> OK outcome=.. state=..
///   append <tenant> <session> <rows>    -> OK appended=N newly-dirty=N
///     (rows: ';'-separated rows of         revived=0|1
///      ','-separated hex cells)
///   snapshot <tenant> <session>         -> OK bytes=N
///   evict <tenant> <session>            -> OK bytes=N
///   dump <tenant> <session>             -> OK n=K ; K x: C <cell-hex>
///   close <tenant> <session>            -> OK closed
///   stats                               -> OK resident=N evicted=N
///                                          bytes=N budget=N opens=N
///                                          evictions=N rehydrations=N
///                                          pool-threads=N pool-depth=N
///                                          pool-completed=N
///   quit                                -> OK bye (and the loop returns)
///
/// Blank lines and lines starting with '#' are ignored without reply.

/// Executes one command line against `backend`, appending the full reply
/// (one or more '\n'-terminated lines) to `reply`. Returns false only for
/// `quit` — the caller should stop reading. Malformed input never aborts:
/// it produces an `ERR InvalidArgument ...` reply like any backend error.
bool HandleCommand(const Backend& backend, std::string_view line,
                   std::string* reply);

/// Reads commands from `in` until EOF or `quit`, writing replies to `out`
/// (flushed per command, so the loop can sit on a pipe). Returns the
/// number of commands executed. This is the whole server: the stdio
/// binary and the in-process tests both run exactly this function.
std::size_t ServerLoop(const Backend& backend, std::istream& in,
                       std::ostream& out);

}  // namespace gdr::server

#endif  // GDR_SERVER_PROTOCOL_H_
