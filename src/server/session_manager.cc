#include "server/session_manager.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "util/fileio.h"
#include "workload/registry.h"

namespace gdr::server {

namespace {

// The spill-file header, shared with examples/interactive_repl.cpp: the
// snapshot is only replayable over the workload it was recorded against.
constexpr char kWorkloadHeader[] = "workload ";

// Resident-footprint estimate for the budget policy. Exactness does not
// matter — eviction order and pressure do — so this is a monotonic proxy:
// a fixed per-session overhead (engine components, learner bank, pool)
// plus the dirty table's cells (interned ids in the table and index, dict
// strings, membership lists).
std::size_t EstimateBytes(const Dataset& dataset) {
  constexpr std::size_t kSessionOverhead = 16 * 1024;
  const std::size_t cells =
      dataset.dirty.num_rows() * dataset.dirty.num_attrs();
  return kSessionOverhead + cells * 24;
}

const char* FeedbackOutcomeName(FeedbackOutcome outcome) {
  switch (outcome) {
    case FeedbackOutcome::kApplied:
      return "applied";
    case FeedbackOutcome::kStale:
      return "stale";
    case FeedbackOutcome::kDuplicate:
      return "duplicate";
    case FeedbackOutcome::kUnknownId:
      return "unknown-id";
  }
  return "unknown";
}

WireSuggestion RenderSuggestion(const GdrSession& session,
                                const SuggestedUpdate& s) {
  const Table& table = session.table();
  WireSuggestion wire;
  wire.update_id = s.update_id;
  wire.row = s.update.row;
  wire.attr = table.schema().attr_name(s.update.attr);
  wire.current_value = table.at(s.update.row, s.update.attr);
  wire.suggested_value = table.dict(s.update.attr).ToString(s.update.value);
  wire.voi_score = s.voi_score;
  wire.uncertainty = s.uncertainty;
  wire.budget_remaining = s.budget_remaining;
  return wire;
}

}  // namespace

Status ValidateId(const std::string& id, const char* what) {
  if (id.empty() || id.size() > 64) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be 1..64 characters");
  }
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          std::string(what) + " '" + id +
          "' contains characters outside [A-Za-z0-9._-]");
    }
  }
  return Status::OK();
}

struct SessionManager::ManagedSession {
  SessionKey key;
  OpenConfig config;
  GdrOptions gdr_options;  // derived once at Open; reused by rehydration
  std::string spill_path;

  // `mutex` serializes everything below plus the GdrSession itself; the
  // atomics are additionally readable without it (eviction scan, stats).
  std::mutex mutex;
  bool defunct = false;  // closed, or its open failed — reject every op
  std::unique_ptr<Dataset> dataset;  // owns the dirty table + rules
  std::unique_ptr<GdrSession> session;

  std::atomic<bool> resident{false};
  std::atomic<std::size_t> bytes{0};
  std::atomic<std::uint64_t> last_touch{0};
};

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(std::move(options)) {
  const std::size_t threads =
      ThreadPool::ResolveThreadCount(options_.num_threads);
  if (threads > 1) ranking_pool_ = std::make_unique<ThreadPool>(threads);
}

SessionManager::~SessionManager() = default;

Result<std::shared_ptr<SessionManager::ManagedSession>> SessionManager::Find(
    const SessionKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(key);
  if (it == sessions_.end()) {
    return Status::NotFound("no session '" + key.session + "' for tenant '" +
                            key.tenant + "'");
  }
  return it->second;
}

std::string SessionManager::SerializeSession(ManagedSession* session) const {
  return kWorkloadHeader + session->config.workload_spec + "\n" +
         session->session->Snapshot().Serialize();
}

Status SessionManager::Materialize(ManagedSession* session,
                                   const std::string* snapshot_text) {
  // Deterministic workloads rebuild identically on every call — the
  // registry-resolved dirty instance *is* the original dirty instance the
  // event log replays over.
  Result<Dataset> dataset =
      WorkloadRegistry::Global().Resolve(session->config.workload_spec);
  if (!dataset.ok()) return dataset.status();
  auto owned = std::make_unique<Dataset>(std::move(*dataset));
  // The ground truth is simulation-harness state; a serving session never
  // reads it. Dropping it halves the resident footprint.
  owned->clean = Table(owned->clean.schema());

  auto gdr_session = std::make_unique<GdrSession>(
      &owned->dirty, &owned->rules, session->gdr_options);
  if (snapshot_text == nullptr) {
    GDR_RETURN_NOT_OK(gdr_session->Start());
  } else {
    std::string_view text = *snapshot_text;
    if (text.rfind(kWorkloadHeader, 0) != 0) {
      return Status::Internal("spill file for session '" +
                              session->key.session +
                              "' is missing its workload header");
    }
    const std::size_t eol = text.find('\n');
    const std::string_view spec =
        text.substr(sizeof(kWorkloadHeader) - 1,
                    eol - (sizeof(kWorkloadHeader) - 1));
    if (spec != session->config.workload_spec) {
      return Status::Internal("spill file for session '" +
                              session->key.session +
                              "' was recorded against workload '" +
                              std::string(spec) + "', expected '" +
                              session->config.workload_spec + "'");
    }
    text.remove_prefix(eol == std::string_view::npos ? text.size() : eol + 1);
    Result<SessionSnapshot> snapshot = SessionSnapshot::Deserialize(text);
    if (!snapshot.ok()) return snapshot.status();
    GDR_RETURN_NOT_OK(gdr_session->Restore(*snapshot));
  }

  const std::size_t bytes = EstimateBytes(*owned);
  session->dataset = std::move(owned);
  session->session = std::move(gdr_session);
  session->bytes.store(bytes, std::memory_order_relaxed);
  session->resident.store(true, std::memory_order_release);
  resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  return Status::OK();
}

Status SessionManager::EnsureResident(ManagedSession* session) {
  if (session->resident.load(std::memory_order_acquire)) return Status::OK();
  Result<std::string> text = ReadFileToString(session->spill_path);
  if (!text.ok()) {
    return Status::Internal("session '" + session->key.session +
                            "' is evicted and its snapshot cannot be read: " +
                            text.status().message());
  }
  GDR_RETURN_NOT_OK(Materialize(session, &*text));
  rehydrations_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<std::size_t> SessionManager::Persist(ManagedSession* session) {
  const std::string text = SerializeSession(session);
  GDR_RETURN_NOT_OK(WriteFileAtomic(session->spill_path, text));
  return text.size();
}

void SessionManager::ReleaseResident(ManagedSession* session) {
  resident_bytes_.fetch_sub(session->bytes.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
  session->bytes.store(0, std::memory_order_relaxed);
  session->session.reset();
  session->dataset.reset();
  session->resident.store(false, std::memory_order_release);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void SessionManager::EnforceBudget() {
  const std::size_t budget = options_.memory_budget_bytes;
  if (budget == 0) return;
  if (resident_bytes_.load(std::memory_order_relaxed) <= budget) return;

  std::vector<std::shared_ptr<ManagedSession>> candidates;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    candidates.reserve(sessions_.size());
    for (const auto& [key, session] : sessions_) candidates.push_back(session);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              return a->last_touch.load(std::memory_order_relaxed) <
                     b->last_touch.load(std::memory_order_relaxed);
            });
  for (const auto& candidate : candidates) {
    if (resident_bytes_.load(std::memory_order_relaxed) <= budget) break;
    // try_lock, never block: a session mid-operation is simply not a
    // victim this round, and no lock-order cycle can form.
    std::unique_lock<std::mutex> lock(candidate->mutex, std::try_to_lock);
    if (!lock.owns_lock()) continue;
    if (candidate->defunct ||
        !candidate->resident.load(std::memory_order_acquire)) {
      continue;
    }
    if (!Persist(candidate.get()).ok()) continue;  // keep resident on IO error
    ReleaseResident(candidate.get());
  }
}

Result<WireOpenResult> SessionManager::Open(const SessionKey& key,
                                            const OpenConfig& config) {
  GDR_RETURN_NOT_OK(ValidateId(key.tenant, "tenant id"));
  GDR_RETURN_NOT_OK(ValidateId(key.session, "session id"));

  auto session = std::make_shared<ManagedSession>();
  session->key = key;
  session->config = config;
  GDR_ASSIGN_OR_RETURN(session->gdr_options.strategy,
                       StrategyFromName(config.strategy));
  session->gdr_options.ns = config.ns;
  session->gdr_options.feedback_budget = config.feedback_budget;
  session->gdr_options.seed = config.seed;
  session->gdr_options.max_outer_iterations = config.max_outer_iterations;
  session->gdr_options.num_threads = 1;  // the shared pool does the fanning
  session->gdr_options.shared_pool = ranking_pool_.get();
  session->spill_path =
      (std::filesystem::path(options_.spill_dir) /
       (key.tenant + "__" + key.session + ".snapshot")).string();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.contains(key)) {
      return Status::AlreadyExists("session '" + key.session +
                                   "' already open for tenant '" +
                                   key.tenant + "'");
    }
    if (sessions_.size() >= options_.max_sessions) {
      return Status::FailedPrecondition(
          "server full: " + std::to_string(sessions_.size()) +
          " sessions open (admission cap " +
          std::to_string(options_.max_sessions) + ")");
    }
    sessions_.emplace(key, session);
  }

  WireOpenResult result;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    session->last_touch.store(touch_clock_.fetch_add(1) + 1,
                              std::memory_order_relaxed);
    const Status materialized = Materialize(session.get(), nullptr);
    if (!materialized.ok()) {
      session->defunct = true;
      std::lock_guard<std::mutex> map_lock(mutex_);
      sessions_.erase(key);
      return materialized;
    }
    result.state = SessionStateName(session->session->state());
    result.initial_dirty = session->session->stats().initial_dirty;
    result.pool_size = session->session->engine().pool().size();
  }
  opens_.fetch_add(1, std::memory_order_relaxed);
  EnforceBudget();
  return result;
}

Result<WireBatch> SessionManager::Next(const SessionKey& key) {
  GDR_ASSIGN_OR_RETURN(std::shared_ptr<ManagedSession> session, Find(key));
  WireBatch batch;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    if (session->defunct) {
      return Status::NotFound("session '" + key.session + "' is closed");
    }
    session->last_touch.store(touch_clock_.fetch_add(1) + 1,
                              std::memory_order_relaxed);
    GDR_RETURN_NOT_OK(EnsureResident(session.get()));
    Result<std::vector<SuggestedUpdate>> pulled =
        session->session->NextBatch();
    if (!pulled.ok()) return pulled.status();
    batch.state = SessionStateName(session->session->state());
    batch.suggestions.reserve(pulled->size());
    for (const SuggestedUpdate& s : *pulled) {
      batch.suggestions.push_back(RenderSuggestion(*session->session, s));
    }
  }
  EnforceBudget();
  return batch;
}

Result<WireFeedbackResult> SessionManager::Feedback(
    const SessionKey& key, std::uint64_t update_id, gdr::Feedback feedback,
    const std::optional<std::string>& value) {
  GDR_ASSIGN_OR_RETURN(std::shared_ptr<ManagedSession> session, Find(key));
  WireFeedbackResult result;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    if (session->defunct) {
      return Status::NotFound("session '" + key.session + "' is closed");
    }
    session->last_touch.store(touch_clock_.fetch_add(1) + 1,
                              std::memory_order_relaxed);
    GDR_RETURN_NOT_OK(EnsureResident(session.get()));
    Result<FeedbackOutcome> outcome =
        session->session->SubmitFeedback(update_id, feedback, value);
    if (!outcome.ok()) return outcome.status();
    result.outcome = FeedbackOutcomeName(*outcome);
    result.state = SessionStateName(session->session->state());
  }
  EnforceBudget();
  return result;
}

Result<WireAppendResult> SessionManager::Append(
    const SessionKey& key,
    const std::vector<std::vector<std::string>>& rows) {
  GDR_ASSIGN_OR_RETURN(std::shared_ptr<ManagedSession> session, Find(key));
  WireAppendResult result;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    if (session->defunct) {
      return Status::NotFound("session '" + key.session + "' is closed");
    }
    session->last_touch.store(touch_clock_.fetch_add(1) + 1,
                              std::memory_order_relaxed);
    GDR_RETURN_NOT_OK(EnsureResident(session.get()));
    Result<SessionAppendOutcome> outcome =
        session->session->AppendDirtyRows(rows);
    if (!outcome.ok()) return outcome.status();
    result.rows_appended = outcome->rows_appended;
    result.newly_dirty = outcome->newly_dirty;
    result.revived = outcome->revived;
    // The instance grew; keep the budget accounting honest.
    const std::size_t bytes = EstimateBytes(*session->dataset);
    resident_bytes_.fetch_add(
        bytes - session->bytes.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    session->bytes.store(bytes, std::memory_order_relaxed);
  }
  EnforceBudget();
  return result;
}

Result<std::size_t> SessionManager::Snapshot(const SessionKey& key) {
  GDR_ASSIGN_OR_RETURN(std::shared_ptr<ManagedSession> session, Find(key));
  std::lock_guard<std::mutex> lock(session->mutex);
  if (session->defunct) {
    return Status::NotFound("session '" + key.session + "' is closed");
  }
  session->last_touch.store(touch_clock_.fetch_add(1) + 1,
                            std::memory_order_relaxed);
  if (!session->resident.load(std::memory_order_acquire)) {
    // Evicted: the spill file already is the current snapshot.
    GDR_ASSIGN_OR_RETURN(const std::string text,
                         ReadFileToString(session->spill_path));
    return text.size();
  }
  return Persist(session.get());
}

Result<std::size_t> SessionManager::Evict(const SessionKey& key) {
  GDR_ASSIGN_OR_RETURN(std::shared_ptr<ManagedSession> session, Find(key));
  std::lock_guard<std::mutex> lock(session->mutex);
  if (session->defunct) {
    return Status::NotFound("session '" + key.session + "' is closed");
  }
  if (!session->resident.load(std::memory_order_acquire)) return 0;
  GDR_ASSIGN_OR_RETURN(const std::size_t bytes, Persist(session.get()));
  ReleaseResident(session.get());
  return bytes;
}

Result<std::vector<std::string>> SessionManager::Dump(const SessionKey& key) {
  GDR_ASSIGN_OR_RETURN(std::shared_ptr<ManagedSession> session, Find(key));
  std::lock_guard<std::mutex> lock(session->mutex);
  if (session->defunct) {
    return Status::NotFound("session '" + key.session + "' is closed");
  }
  session->last_touch.store(touch_clock_.fetch_add(1) + 1,
                            std::memory_order_relaxed);
  GDR_RETURN_NOT_OK(EnsureResident(session.get()));
  const Table& table = session->session->table();
  std::vector<std::string> cells;
  cells.reserve(table.num_rows() * table.num_attrs());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t a = 0; a < table.num_attrs(); ++a) {
      cells.push_back(
          table.at(static_cast<RowId>(r), static_cast<AttrId>(a)));
    }
  }
  return cells;
}

Status SessionManager::Close(const SessionKey& key) {
  GDR_ASSIGN_OR_RETURN(std::shared_ptr<ManagedSession> session, Find(key));
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    if (session->defunct) {
      return Status::NotFound("session '" + key.session + "' is closed");
    }
    session->defunct = true;
    if (session->resident.load(std::memory_order_acquire)) {
      resident_bytes_.fetch_sub(
          session->bytes.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      session->session.reset();
      session->dataset.reset();
      session->resident.store(false, std::memory_order_release);
    }
    GDR_RETURN_NOT_OK(RemoveFileIfExists(session->spill_path));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.erase(key);
  return Status::OK();
}

WireServerStats SessionManager::Stats() const {
  WireServerStats stats;
  std::vector<std::shared_ptr<ManagedSession>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.reserve(sessions_.size());
    for (const auto& [key, session] : sessions_) {
      if (session->resident.load(std::memory_order_acquire)) {
        ++stats.resident_sessions;
      } else {
        ++stats.evicted_sessions;
      }
      snapshot.push_back(session);
    }
  }
  // Aggregate per-session hot-path counters outside the map lock: Open's
  // failure path locks session-then-map, so holding the map lock while
  // taking session locks here would close a lock-order cycle.
  for (const std::shared_ptr<ManagedSession>& session : snapshot) {
    std::lock_guard<std::mutex> session_lock(session->mutex);
    if (session->defunct || session->session == nullptr) continue;
    const GdrTimings& timings = session->session->stats().timings;
    stats.learner_encode_seconds += timings.learner_encode_seconds;
    stats.learner_tree_walk_seconds += timings.learner_tree_walk_seconds;
    stats.voi_probe_seconds += timings.voi_probe_seconds;
    stats.voi_probes += timings.voi_probes;
  }
  stats.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  stats.memory_budget_bytes = options_.memory_budget_bytes;
  stats.opens = opens_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.rehydrations = rehydrations_.load(std::memory_order_relaxed);
  if (ranking_pool_ != nullptr) {
    stats.pool_threads = ranking_pool_->size();
    stats.pool_queue_depth = ranking_pool_->queue_depth();
    stats.pool_tasks_completed = ranking_pool_->tasks_completed();
  }
  return stats;
}

// ---------------------------------------------------------------------------
// The vtable binding: SessionManager behind BackendOps.
// ---------------------------------------------------------------------------

namespace {

SessionManager* Self(void* self) { return static_cast<SessionManager*>(self); }

Result<WireOpenResult> ManagerOpen(void* self, const SessionKey& key,
                                   const OpenConfig& config) {
  return Self(self)->Open(key, config);
}
Result<WireBatch> ManagerNext(void* self, const SessionKey& key) {
  return Self(self)->Next(key);
}
Result<WireFeedbackResult> ManagerFeedback(
    void* self, const SessionKey& key, std::uint64_t update_id,
    Feedback feedback, const std::optional<std::string>& value) {
  return Self(self)->Feedback(key, update_id, feedback, value);
}
Result<WireAppendResult> ManagerAppend(
    void* self, const SessionKey& key,
    const std::vector<std::vector<std::string>>& rows) {
  return Self(self)->Append(key, rows);
}
Result<std::size_t> ManagerSnapshot(void* self, const SessionKey& key) {
  return Self(self)->Snapshot(key);
}
Result<std::size_t> ManagerEvict(void* self, const SessionKey& key) {
  return Self(self)->Evict(key);
}
Result<std::vector<std::string>> ManagerDump(void* self,
                                             const SessionKey& key) {
  return Self(self)->Dump(key);
}
Status ManagerClose(void* self, const SessionKey& key) {
  return Self(self)->Close(key);
}
WireServerStats ManagerStats(void* self) { return Self(self)->Stats(); }

constexpr BackendOps kSessionManagerOps = {
    /*name=*/"session-manager",
    /*open=*/&ManagerOpen,
    /*next=*/&ManagerNext,
    /*feedback=*/&ManagerFeedback,
    /*append=*/&ManagerAppend,
    /*snapshot=*/&ManagerSnapshot,
    /*evict=*/&ManagerEvict,
    /*dump=*/&ManagerDump,
    /*close=*/&ManagerClose,
    /*stats=*/&ManagerStats,
};

}  // namespace

Backend MakeSessionManagerBackend(SessionManager* manager) {
  return Backend{manager, &kSessionManagerOps};
}

}  // namespace gdr::server
