#ifndef GDR_SERVER_BACKEND_H_
#define GDR_SERVER_BACKEND_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/gdr.h"
#include "util/result.h"

namespace gdr::server {

/// A session's address: every wire command names the tenant and the
/// session id. Ids are restricted to [A-Za-z0-9._-], 1..64 chars, so they
/// can double as spill-file path components and wire tokens.
struct SessionKey {
  std::string tenant;
  std::string session;

  bool operator<(const SessionKey& other) const {
    return tenant != other.tenant ? tenant < other.tenant
                                  : session < other.session;
  }
  bool operator==(const SessionKey&) const = default;
};

/// Validates the id grammar above; `what` names the field in the error.
Status ValidateId(const std::string& id, const char* what);

/// What `open` needs to materialize a session: the workload (resolved
/// through the registry, so it is rebuildable on every rehydration) plus
/// the loop knobs that SessionSnapshot carries.
struct OpenConfig {
  std::string workload_spec;
  std::string strategy = "GDR-NoLearning";
  int ns = 5;
  std::size_t feedback_budget = GdrOptions::kUnlimitedBudget;
  std::uint64_t seed = 42;
  int max_outer_iterations = 1000000;
};

/// Transport-ready suggestion: every string resolved against the session's
/// dictionaries, so rendering needs no table access.
struct WireSuggestion {
  std::uint64_t update_id = 0;
  std::int32_t row = 0;
  std::string attr;
  std::string current_value;
  std::string suggested_value;
  double voi_score = 0.0;
  double uncertainty = 1.0;
  std::size_t budget_remaining = GdrOptions::kUnlimitedBudget;
};

struct WireOpenResult {
  std::string state;  // SessionStateName
  std::size_t initial_dirty = 0;
  std::size_t pool_size = 0;
};

struct WireBatch {
  std::string state;
  std::vector<WireSuggestion> suggestions;
};

struct WireFeedbackResult {
  std::string outcome;  // "applied" / "stale" / "duplicate" / "unknown-id"
  std::string state;
};

struct WireAppendResult {
  std::size_t rows_appended = 0;
  std::size_t newly_dirty = 0;
  bool revived = false;
};

/// Aggregate serving counters, the `stats` reply.
struct WireServerStats {
  std::size_t resident_sessions = 0;
  std::size_t evicted_sessions = 0;
  std::size_t resident_bytes = 0;
  std::size_t memory_budget_bytes = 0;
  std::size_t opens = 0;
  std::size_t evictions = 0;
  std::size_t rehydrations = 0;
  /// Shared ranking pool observability: worker count (1 when the backend
  /// runs ranking serially and owns no pool), queued-but-unstarted tasks at
  /// sample time, and tasks completed since the pool was built.
  std::size_t pool_threads = 1;
  std::size_t pool_queue_depth = 0;
  std::uint64_t pool_tasks_completed = 0;
  /// Hot-path phase counters aggregated over the resident sessions
  /// (GdrTimings: learner feature-encode / forest tree-walk seconds,
  /// benefit-probe seconds and probe count). Evicted sessions' time is
  /// not replayed into these — they reset to their snapshot's history on
  /// rehydration like every other timing.
  double learner_encode_seconds = 0.0;
  double learner_tree_walk_seconds = 0.0;
  double voi_probe_seconds = 0.0;
  std::uint64_t voi_probes = 0;
};

/// The pluggable backend boundary: one struct of operations per backend
/// implementation (a function-pointer vtable in the C tradition — the
/// transport layer is compiled against this table only, never against a
/// concrete backend type, so an HTTP front-end or a sharded/remote backend
/// slots in without touching the protocol code). `self` is the backend's
/// opaque state pointer, threaded through every op.
struct BackendOps {
  const char* name;
  Result<WireOpenResult> (*open)(void* self, const SessionKey& key,
                                 const OpenConfig& config);
  Result<WireBatch> (*next)(void* self, const SessionKey& key);
  Result<WireFeedbackResult> (*feedback)(
      void* self, const SessionKey& key, std::uint64_t update_id,
      Feedback feedback, const std::optional<std::string>& value);
  Result<WireAppendResult> (*append)(
      void* self, const SessionKey& key,
      const std::vector<std::vector<std::string>>& rows);
  /// Persists the session's snapshot to its spill file (crash-safe write);
  /// the session stays resident. Returns bytes written.
  Result<std::size_t> (*snapshot)(void* self, const SessionKey& key);
  /// Snapshot + free the in-memory state; the next touch rehydrates.
  /// Returns bytes written.
  Result<std::size_t> (*evict)(void* self, const SessionKey& key);
  /// Current table contents, row-major — the bit-identity probe used by
  /// the differential tests and the bench self-check.
  Result<std::vector<std::string>> (*dump)(void* self, const SessionKey& key);
  Status (*close)(void* self, const SessionKey& key);
  WireServerStats (*stats)(void* self);
};

/// A bound backend: state + operations. Copyable, non-owning.
struct Backend {
  void* self = nullptr;
  const BackendOps* ops = nullptr;
};

}  // namespace gdr::server

#endif  // GDR_SERVER_BACKEND_H_
