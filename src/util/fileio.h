#ifndef GDR_UTIL_FILEIO_H_
#define GDR_UTIL_FILEIO_H_

#include <string>

#include "util/result.h"

namespace gdr {

/// Reads a whole file into a string (binary, no newline translation).
Result<std::string> ReadFileToString(const std::string& path);

/// Crash-safe whole-file replacement: writes `contents` to `path + ".tmp"`,
/// flushes it to stable storage, and renames it over `path`. A crash at any
/// point leaves either the previous file intact or the complete new one —
/// never a truncated prefix, which is what snapshot persistence (the REPL's
/// quit path, the server's eviction path) needs: a half-written session
/// snapshot that fails Deserialize on relaunch would strand the session.
/// Creates missing parent directories. The temp name is deterministic, so
/// concurrent writers of the *same* path must be externally serialized
/// (the session manager holds the per-session lock across eviction).
Status WriteFileAtomic(const std::string& path, const std::string& contents);

/// Deletes `path` if it exists; missing files are not an error.
Status RemoveFileIfExists(const std::string& path);

}  // namespace gdr

#endif  // GDR_UTIL_FILEIO_H_
