#ifndef GDR_UTIL_CSV_H_
#define GDR_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace gdr {

/// Minimal RFC-4180-ish CSV support: comma separator, double-quote quoting,
/// escaped quotes by doubling. Sufficient for the example applications and
/// for persisting generated datasets; not a general-purpose CSV engine.

/// Splits one CSV record into fields (ParseCsv restricted to a single
/// record; more than one record is an error, empty input is one empty
/// field). Fails on an unterminated quoted field.
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

/// Parses a whole CSV document: records are separated by LF or CRLF
/// *outside* quotes, quoted fields may span lines (quoted content is
/// preserved byte-for-byte, CR included), and a final record without a
/// trailing newline is kept. Blank records (empty lines) are skipped.
/// Fails on an unterminated quoted field at end of input.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Incremental document parser: feed the document's bytes in arrival order
/// through Consume() — in chunks of any size, split anywhere, including
/// mid-field, mid-quote, or between the CR and LF of a CRLF — and complete
/// records are appended to `out` as they close. Finish() flushes a final
/// record without a trailing newline and fails on an unterminated quoted
/// field. Record boundaries never depend on where the chunks were cut:
/// for any split of `text`, Consume-ing the pieces then Finish-ing yields
/// exactly ParseCsv(text). ParseCsv itself is implemented on top of this
/// class, so the two cannot drift apart.
class CsvChunkParser {
 public:
  /// Feeds one chunk; completed records are appended to `out` (which is
  /// not cleared). Must not be called after Finish().
  Status Consume(std::string_view bytes,
                 std::vector<std::vector<std::string>>* out);

  /// Signals end of input: flushes the final record (if any) to `out`.
  /// Fails on an unterminated quoted field. Idempotent once it succeeds.
  Status Finish(std::vector<std::vector<std::string>>* out);

  /// Records completed so far (handy for "record N" error messages).
  std::size_t records_emitted() const { return records_emitted_; }

 private:
  void EndRecord(std::vector<std::vector<std::string>>* out);

  std::vector<std::string> fields_;  // completed fields of the open record
  std::string current_;              // the open field
  bool in_quotes_ = false;
  bool record_active_ = false;  // a blank line never becomes a record
  // Cross-chunk lookahead state: a quote seen inside a quoted field may be
  // the closer or the first half of an escaped "" pair; a CR may be the
  // first half of a CRLF. Both decisions are deferred to the next byte.
  bool pending_quote_ = false;
  bool pending_cr_ = false;
  bool finished_ = false;
  std::size_t records_emitted_ = 0;
};

/// Serializes fields into one CSV record (no trailing newline), quoting any
/// field containing a comma, quote, or newline — and a lone empty field,
/// which would otherwise render as a skippable blank line.
std::string FormatCsvLine(const std::vector<std::string>& fields);

/// Streams one CSV record (with trailing '\n') to `out` with the same
/// quoting as FormatCsvLine — the writer half the workload exporter uses.
void WriteCsvLine(std::ostream& out, const std::vector<std::string>& fields);

/// Reads a whole CSV file into rows of fields via ParseCsv (so CRLF files
/// and quoted multi-line fields load correctly). Empty lines are skipped.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Writes rows to `path`, overwriting it.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace gdr

#endif  // GDR_UTIL_CSV_H_
