#ifndef GDR_UTIL_CSV_H_
#define GDR_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace gdr {

/// Minimal RFC-4180-ish CSV support: comma separator, double-quote quoting,
/// escaped quotes by doubling. Sufficient for the example applications and
/// for persisting generated datasets; not a general-purpose CSV engine.

/// Splits one CSV record into fields (ParseCsv restricted to a single
/// record; more than one record is an error, empty input is one empty
/// field). Fails on an unterminated quoted field.
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

/// Parses a whole CSV document: records are separated by LF or CRLF
/// *outside* quotes, quoted fields may span lines (quoted content is
/// preserved byte-for-byte, CR included), and a final record without a
/// trailing newline is kept. Blank records (empty lines) are skipped.
/// Fails on an unterminated quoted field at end of input.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Serializes fields into one CSV record (no trailing newline), quoting any
/// field containing a comma, quote, or newline — and a lone empty field,
/// which would otherwise render as a skippable blank line.
std::string FormatCsvLine(const std::vector<std::string>& fields);

/// Streams one CSV record (with trailing '\n') to `out` with the same
/// quoting as FormatCsvLine — the writer half the workload exporter uses.
void WriteCsvLine(std::ostream& out, const std::vector<std::string>& fields);

/// Reads a whole CSV file into rows of fields via ParseCsv (so CRLF files
/// and quoted multi-line fields load correctly). Empty lines are skipped.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Writes rows to `path`, overwriting it.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace gdr

#endif  // GDR_UTIL_CSV_H_
