#ifndef GDR_UTIL_CSV_H_
#define GDR_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace gdr {

/// Minimal RFC-4180-ish CSV support: comma separator, double-quote quoting,
/// escaped quotes by doubling. Sufficient for the example applications and
/// for persisting generated datasets; not a general-purpose CSV engine.

/// Splits one CSV record into fields. Fails on an unterminated quoted field.
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

/// Serializes fields into one CSV record (no trailing newline), quoting any
/// field containing a comma, quote, or newline.
std::string FormatCsvLine(const std::vector<std::string>& fields);

/// Reads a whole CSV file into rows of fields. Empty lines are skipped.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Writes rows to `path`, overwriting it.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace gdr

#endif  // GDR_UTIL_CSV_H_
