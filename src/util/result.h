#ifndef GDR_UTIL_RESULT_H_
#define GDR_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace gdr {

/// Result<T> holds either a value of type T or a non-OK Status, in the style
/// of arrow::Result. It is the return type of fallible operations that
/// produce a value.
///
/// Usage:
///   Result<Table> t = Table::FromCsv(path);
///   if (!t.ok()) return t.status();
///   Use(t.ValueOrDie());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse (`return value;` / `return Status::NotFound(...);`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the carried status: OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie called on an error Result");
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie called on an error Result");
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie called on an error Result");
    return std::get<T>(std::move(repr_));
  }

  /// Shorthand operators for the common access pattern.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace gdr

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status. Usable in functions returning Status or Result<U>.
#define GDR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueOrDie()

#define GDR_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define GDR_ASSIGN_OR_RETURN_NAME(a, b) GDR_ASSIGN_OR_RETURN_CONCAT(a, b)

#define GDR_ASSIGN_OR_RETURN(lhs, expr) \
  GDR_ASSIGN_OR_RETURN_IMPL(            \
      GDR_ASSIGN_OR_RETURN_NAME(_gdr_result_, __LINE__), lhs, expr)

#endif  // GDR_UTIL_RESULT_H_
