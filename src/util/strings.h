#ifndef GDR_UTIL_STRINGS_H_
#define GDR_UTIL_STRINGS_H_

#include <cctype>
#include <string_view>

namespace gdr {

/// Strips leading/trailing whitespace (std::isspace) from a view — the one
/// trim used by the CFD rule parser and the workload spec/file parsers.
inline std::string_view TrimWhitespace(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace gdr

#endif  // GDR_UTIL_STRINGS_H_
