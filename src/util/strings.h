#ifndef GDR_UTIL_STRINGS_H_
#define GDR_UTIL_STRINGS_H_

#include <cctype>
#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace gdr {

/// Strips leading/trailing whitespace (std::isspace) from a view — the one
/// trim used by the CFD rule parser and the workload spec/file parsers.
inline std::string_view TrimWhitespace(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Checked integer parsing — the one implementation behind every numeric
/// knob (bench/example --flags, workload spec parameters, wire-protocol
/// fields). Rejects what std::atoll silently accepts: empty input, leading/
/// trailing junk ("12x", "1.5"), out-of-range magnitudes (no truncation or
/// wraparound), and, for the unsigned variant, any negative input. `what`
/// names the value in the error message ("--rows", "parameter 'records'").
inline Result<std::int64_t> ParseInt64(std::string_view text,
                                       std::string_view what) {
  std::int64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), parsed);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument(std::string(what) + ": integer '" +
                                   std::string(text) + "' is out of range");
  }
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument(std::string(what) + ": expected an "
                                   "integer, got '" + std::string(text) + "'");
  }
  return parsed;
}

/// As ParseInt64, but for unsigned values: "-1" (and any other negative) is
/// an error, never a wraparound to 18446744073709551615.
inline Result<std::uint64_t> ParseUint64(std::string_view text,
                                         std::string_view what) {
  if (!text.empty() && text.front() == '-') {
    return Status::InvalidArgument(std::string(what) + ": expected a "
                                   "non-negative integer, got '" +
                                   std::string(text) + "'");
  }
  std::uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), parsed);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument(std::string(what) + ": integer '" +
                                   std::string(text) + "' is out of range");
  }
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument(std::string(what) + ": expected a "
                                   "non-negative integer, got '" +
                                   std::string(text) + "'");
  }
  return parsed;
}

/// Checked double parsing: the full strtod grammar, but the whole input
/// must be consumed and it must be non-empty.
Result<double> ParseDouble(std::string_view text, std::string_view what);

/// Lowercase hex encoding of arbitrary bytes — how every wire format
/// (session snapshots, the server line protocol) carries cell values and
/// volunteered strings, so any byte is legal in transit.
std::string EncodeHex(std::string_view bytes);

/// Inverse of EncodeHex. Returns false on odd length or a non-hex digit;
/// `bytes` is clobbered either way.
bool DecodeHex(std::string_view hex, std::string* bytes);

/// Splits on every occurrence of `sep`. Empty pieces are preserved
/// (",a," -> "", "a", "") and an empty input yields one empty piece, so
/// callers see exactly the comma grammar they were given — trim/validate
/// per piece as needed.
inline std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

/// 64-bit FNV-1a over arbitrary bytes. Stable across platforms and runs —
/// used for content-addressed keys (the workload cache, sweep result
/// fingerprints), never for adversarial inputs.
inline std::uint64_t Fnv1a64(std::string_view bytes,
                             std::uint64_t seed = 14695981039346656037ULL) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Fnv1a64 rendered as fixed-width lowercase hex (16 digits) — the textual
/// form used in cache directory names and JSON artifacts.
std::string Fnv1a64Hex(std::string_view bytes);

}  // namespace gdr

#endif  // GDR_UTIL_STRINGS_H_
