#ifndef GDR_UTIL_THREAD_POOL_H_
#define GDR_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gdr {

/// Fixed-size worker pool for embarrassingly parallel phases (VOI group
/// scoring, future sharded scans). Tasks are plain callables; Submit
/// returns a std::future so callers can collect results or propagate
/// exceptions. Workers are started once in the constructor and joined in
/// the destructor — no dynamic resizing, no task priorities.
///
/// Determinism contract: the pool never reorders *results*. Helpers like
/// ParallelFor assign each index a fixed output slot, so which worker runs
/// which chunk cannot affect what the caller observes.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers; pending tasks are drained before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// The library-wide num_threads convention: 0 means "use the hardware",
  /// any other value is taken literally (1 = serial, no pool needed).
  static std::size_t ResolveThreadCount(std::size_t requested);

  /// Tasks currently queued and not yet picked up by a worker (a point-in-
  /// time sample; another thread may dequeue immediately after). Together
  /// with tasks_completed() this makes pool saturation observable — the
  /// server `stats` reply and the sweep bench surface both.
  std::size_t queue_depth() const;

  /// Total submitted tasks that have finished executing on a worker since
  /// construction. Counts Submit()ed callables (including the per-slot
  /// drivers ParallelFor* submits); chunks the *calling* thread drives
  /// in-place are not separate tasks and are not counted. Monotonic.
  std::uint64_t tasks_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  /// Enqueues `task` and returns a future for its result. The future's
  /// get() rethrows any exception the task raised.
  template <typename F>
  auto Submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace_back([packaged] { (*packaged)(); });
    }
    ready_.notify_one();
    return future;
  }

  /// Runs fn(i) for every i in [0, n) and blocks until all calls finished.
  /// Indices are grouped into contiguous chunks handed out dynamically;
  /// the calling thread participates, so a 1-worker pool still makes
  /// progress while the caller helps. fn must be safe to invoke
  /// concurrently from multiple threads for distinct indices. The first
  /// exception thrown by fn is rethrown on the caller.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// As ParallelFor, but fn also receives the executor slot: slots
  /// [0, size()) are the pool workers, slot size() is the calling thread.
  /// Each slot is driven by exactly one thread for the duration of the
  /// call, so per-slot scratch state (e.g. a reusable ViolationDelta)
  /// needs no synchronization. Slot-to-chunk assignment is dynamic; only
  /// the slot's single-threadedness is guaranteed, not which indices land
  /// on which slot.
  void ParallelForWithSlot(
      std::size_t n,
      const std::function<void(std::size_t slot, std::size_t i)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::atomic<std::uint64_t> completed_{0};
  bool stop_ = false;
};

}  // namespace gdr

#endif  // GDR_UTIL_THREAD_POOL_H_
