#ifndef GDR_UTIL_STATUS_H_
#define GDR_UTIL_STATUS_H_

// The library requires C++20 (std::unordered_map::contains, std::erase_if,
// ...). Without this guard a C++17 build fails with ~50 scattered "no member
// named 'contains'" errors; fail once, here, with the fix spelled out.
#if defined(__cplusplus) && __cplusplus < 202002L && \
    !(defined(_MSVC_LANG) && _MSVC_LANG >= 202002L)
#error "gdr requires C++20: compile with -std=c++20 (CMake sets this automatically)"
#endif

#include <string>
#include <string_view>
#include <utility>

namespace gdr {

/// Error categories used across the library. The set is deliberately small:
/// GDR is a library, so the caller usually only needs to distinguish
/// programmer errors (kInvalidArgument), missing entities (kNotFound), and
/// broken internal invariants (kInternal).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIOError = 7,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success/error carrier, modeled after the Status idiom used
/// by Arrow and RocksDB. The library does not use exceptions; every fallible
/// operation returns a Status (or a Result<T>, see result.h).
///
/// The OK state carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace gdr

/// Propagates a non-OK Status to the caller. Usable only in functions that
/// themselves return Status.
#define GDR_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::gdr::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (false)

#endif  // GDR_UTIL_STATUS_H_
