#include "util/string_similarity.h"

#include <algorithm>
#include <cctype>
#include <vector>

namespace gdr {

std::size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // ensure |b| <= |a|
  if (b.empty()) return a.size();

  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;

  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t prev_diag = row[0];  // dp[i-1][0]
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t prev_row = row[j];  // dp[i-1][j]
      const std::size_t subst_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j] + 1,           // delete from a
                         row[j - 1] + 1,       // insert into a
                         prev_diag + subst_cost});
      prev_diag = prev_row;
    }
  }
  return row[b.size()];
}

double NormalizedEditSimilarity(std::string_view a, std::string_view b) {
  const std::size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  const std::size_t dist = EditDistance(a, b);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(max_len);
}

namespace {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;

  const std::size_t match_window =
      std::max<std::size_t>(1, std::max(a.size(), b.size()) / 2) - 1;

  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);

  std::size_t matches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::size_t lo = i > match_window ? i - match_window : 0;
    const std::size_t hi = std::min(b.size(), i + match_window + 1);
    for (std::size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions between the matched subsequences.
  std::size_t transpositions = 0;
  std::size_t j = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }

  const double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() + (m - transpositions / 2.0) / m) / 3.0;
}

}  // namespace

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  const double jaro = JaroSimilarity(a, b);
  // Standard Winkler prefix boost with p = 0.1 and max prefix length 4.
  std::size_t prefix = 0;
  const std::size_t limit = std::min({a.size(), b.size(), std::size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + 0.1 * static_cast<double>(prefix) * (1.0 - jaro);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace gdr
