#include "util/rng.h"

#include <numeric>

namespace gdr {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // Guard against the (astronomically unlikely) all-zero state, which is a
  // fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: discard values in the biased tail.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap to 0 for full range
  if (span == 0) return static_cast<std::int64_t>(Next());
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::size_t Rng::NextWeighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric slack: fall into the last bucket
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector. For the library's use cases
  // (feature subsampling, error injection) n is small enough that the O(n)
  // initialization is irrelevant.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(NextBounded(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace gdr
