#ifndef GDR_UTIL_STOPWATCH_H_
#define GDR_UTIL_STOPWATCH_H_

#include <chrono>

namespace gdr {

/// Wall-clock stopwatch for the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gdr

#endif  // GDR_UTIL_STOPWATCH_H_
