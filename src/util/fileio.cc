#include "util/fileio.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define GDR_HAVE_FSYNC 1
#endif

namespace gdr {

namespace fs = std::filesystem;

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open " + path + " for reading");
  }
  std::string contents;
  char buffer[1 << 16];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, read);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return Status::IOError("read error on " + path);
  return contents;
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const fs::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create directory " +
                             target.parent_path().string() + ": " +
                             ec.message());
    }
  }
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open " + tmp + " for writing");
  }
  const bool wrote = contents.empty() ||
                     std::fwrite(contents.data(), 1, contents.size(), file) ==
                         contents.size();
  bool flushed = std::fflush(file) == 0;
#if GDR_HAVE_FSYNC
  // The rename only guarantees old-or-new if the new bytes are durable
  // before the directory entry flips.
  flushed = flushed && fsync(fileno(file)) == 0;
#endif
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !flushed || !closed) {
    std::remove(tmp.c_str());
    return Status::IOError("write error on " + tmp);
  }
  fs::rename(tmp, target, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) {
    return Status::IOError("cannot remove " + path + ": " + ec.message());
  }
  return Status::OK();
}

}  // namespace gdr
