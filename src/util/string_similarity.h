#ifndef GDR_UTIL_STRING_SIMILARITY_H_
#define GDR_UTIL_STRING_SIMILARITY_H_

#include <cstddef>
#include <string_view>

namespace gdr {

/// Levenshtein edit distance between `a` and `b` (unit costs for insert,
/// delete, substitute). O(|a|*|b|) time, O(min(|a|,|b|)) space.
std::size_t EditDistance(std::string_view a, std::string_view b);

/// The update evaluation function of the paper (Eq. 7):
///   sim(v, v') = 1 - dist(v, v') / max(|v|, |v'|)
/// Returns a value in [0, 1]; two empty strings are maximally similar (1).
double NormalizedEditSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0, 1]. Used as an alternative relationship
/// function R(t[A], v) for ML features; favors strings sharing a prefix,
/// which matches the data-entry-typo error model.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Case-insensitive ASCII equality; CFD matching in this library is
/// case-sensitive, but generators and examples use this for lookups.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

}  // namespace gdr

#endif  // GDR_UTIL_STRING_SIMILARITY_H_
