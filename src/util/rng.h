#ifndef GDR_UTIL_RNG_H_
#define GDR_UTIL_RNG_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace gdr {

/// Deterministic pseudo-random number generator (xoshiro256**). Every
/// stochastic component in the library (dataset generators, error injection,
/// bagging, tie-breaking) draws from an explicitly seeded Rng so that whole
/// experiments are reproducible bit-for-bit from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator via SplitMix64 state expansion.
  void Seed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Returns an index in [0, weights.size()) with probability proportional
  /// to weights[i]. All weights must be >= 0 and sum must be > 0.
  std::size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in arbitrary order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

 private:
  std::uint64_t state_[4];
};

}  // namespace gdr

#endif  // GDR_UTIL_RNG_H_
