#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace gdr {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  // One state machine for the whole module: delegate to the document
  // parser and insist on a single record.
  GDR_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                       ParseCsv(line));
  if (rows.empty()) return std::vector<std::string>{""};
  if (rows.size() > 1) {
    return Status::InvalidArgument(
        "expected a single CSV record, got " + std::to_string(rows.size()));
  }
  return std::move(rows.front());
}

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  // One state machine for the whole module: ParseCsv is the chunk parser
  // fed the entire document as a single chunk.
  std::vector<std::vector<std::string>> rows;
  CsvChunkParser parser;
  GDR_RETURN_NOT_OK(parser.Consume(text, &rows));
  GDR_RETURN_NOT_OK(parser.Finish(&rows));
  return rows;
}

void CsvChunkParser::EndRecord(std::vector<std::vector<std::string>>* out) {
  if (!record_active_) return;
  fields_.push_back(std::move(current_));
  current_.clear();
  out->push_back(std::move(fields_));
  fields_.clear();
  record_active_ = false;
  ++records_emitted_;
}

Status CsvChunkParser::Consume(std::string_view bytes,
                               std::vector<std::vector<std::string>>* out) {
  if (finished_) {
    return Status::FailedPrecondition(
        "CsvChunkParser::Consume called after Finish");
  }
  for (const char c : bytes) {
    if (pending_quote_) {
      // The previous byte was a quote inside a quoted field.
      pending_quote_ = false;
      if (c == '"') {
        current_.push_back('"');  // escaped "" pair
        continue;
      }
      in_quotes_ = false;  // it was the closer; reprocess c below
    }
    if (pending_cr_) {
      pending_cr_ = false;
      if (c == '\n') continue;  // the LF of a CRLF; the CR already ended
                                // the record
    }
    if (in_quotes_) {
      if (c == '"') {
        pending_quote_ = true;
      } else {
        // Quoted content is preserved verbatim (including CR/LF), so any
        // cell value survives a write→read round trip byte-identically.
        current_.push_back(c);
      }
    } else if (c == '\n' || c == '\r') {
      // LF, CRLF, and lone CR all terminate the record.
      pending_cr_ = c == '\r';
      EndRecord(out);
    } else if (c == '"' && current_.empty()) {
      in_quotes_ = true;
      record_active_ = true;
    } else if (c == ',') {
      fields_.push_back(std::move(current_));
      current_.clear();
      record_active_ = true;
    } else {
      current_.push_back(c);
      record_active_ = true;
    }
  }
  return Status::OK();
}

Status CsvChunkParser::Finish(std::vector<std::vector<std::string>>* out) {
  if (finished_) return Status::OK();
  if (pending_quote_) {
    // A quote as the very last byte of a quoted field closes it.
    pending_quote_ = false;
    in_quotes_ = false;
  }
  if (in_quotes_) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  pending_cr_ = false;
  EndRecord(out);  // final record without a trailing newline
  finished_ = true;
  return Status::OK();
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& f = fields[i];
    // A lone empty field must be quoted: an unquoted one would serialize
    // to a blank line, which the reader skips as a non-record.
    const bool needs_quote =
        f.find_first_of(",\"\n\r") != std::string::npos ||
        (fields.size() == 1 && f.empty());
    if (!needs_quote) {
      out += f;
      continue;
    }
    out.push_back('"');
    for (char c : f) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

void WriteCsvLine(std::ostream& out, const std::vector<std::string>& fields) {
  out << FormatCsvLine(fields) << '\n';
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  // Single-copy slurp: size the string once, read straight into it.
  std::string contents;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) return Status::IOError("cannot size " + path);
  contents.resize(static_cast<std::size_t>(size));
  in.seekg(0, std::ios::beg);
  in.read(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (in.bad() ||
      in.gcount() != static_cast<std::streamsize>(contents.size())) {
    return Status::IOError("read failed for " + path);
  }
  GDR_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                       ParseCsv(contents));
  return rows;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].empty()) {
      // A zero-field record would render as a blank line, which the
      // reader skips — refuse instead of silently losing the row.
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " has no fields; cannot round-trip");
    }
    WriteCsvLine(out, rows[i]);
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace gdr
