#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace gdr {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
      } else {
        current.push_back(c);
        ++i;
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
      ++i;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
    } else {
      current.push_back(c);
      ++i;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& f = fields[i];
    const bool needs_quote =
        f.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote) {
      out += f;
      continue;
    }
    out.push_back('"');
    for (char c : f) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    GDR_ASSIGN_OR_RETURN(std::vector<std::string> fields, ParseCsvLine(line));
    rows.push_back(std::move(fields));
  }
  return rows;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const auto& row : rows) {
    out << FormatCsvLine(row) << '\n';
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace gdr
