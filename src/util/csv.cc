#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace gdr {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  // One state machine for the whole module: delegate to the document
  // parser and insist on a single record.
  GDR_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                       ParseCsv(line));
  if (rows.empty()) return std::vector<std::string>{""};
  if (rows.size() > 1) {
    return Status::InvalidArgument(
        "expected a single CSV record, got " + std::to_string(rows.size()));
  }
  return std::move(rows.front());
}

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool record_active = false;  // a blank line never becomes a record
  std::size_t i = 0;
  auto end_record = [&] {
    if (!record_active) return;
    fields.push_back(std::move(current));
    current.clear();
    rows.push_back(std::move(fields));
    fields.clear();
    record_active = false;
  };
  while (i < text.size()) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
      } else {
        // Quoted content is preserved verbatim (including CR/LF), so any
        // cell value survives a write→read round trip byte-identically.
        current.push_back(c);
        ++i;
      }
    } else if (c == '\n' || c == '\r') {
      // LF, CRLF, and lone CR all terminate the record.
      i += (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ? 2 : 1;
      end_record();
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
      record_active = true;
      ++i;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      record_active = true;
      ++i;
    } else {
      current.push_back(c);
      record_active = true;
      ++i;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  end_record();  // final record without a trailing newline
  return rows;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& f = fields[i];
    // A lone empty field must be quoted: an unquoted one would serialize
    // to a blank line, which the reader skips as a non-record.
    const bool needs_quote =
        f.find_first_of(",\"\n\r") != std::string::npos ||
        (fields.size() == 1 && f.empty());
    if (!needs_quote) {
      out += f;
      continue;
    }
    out.push_back('"');
    for (char c : f) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

void WriteCsvLine(std::ostream& out, const std::vector<std::string>& fields) {
  out << FormatCsvLine(fields) << '\n';
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  // Single-copy slurp: size the string once, read straight into it.
  std::string contents;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) return Status::IOError("cannot size " + path);
  contents.resize(static_cast<std::size_t>(size));
  in.seekg(0, std::ios::beg);
  in.read(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (in.bad() ||
      in.gcount() != static_cast<std::streamsize>(contents.size())) {
    return Status::IOError("read failed for " + path);
  }
  GDR_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                       ParseCsv(contents));
  return rows;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].empty()) {
      // A zero-field record would render as a blank line, which the
      // reader skips — refuse instead of silently losing the row.
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " has no fields; cannot round-trip");
    }
    WriteCsvLine(out, rows[i]);
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace gdr
