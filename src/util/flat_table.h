#ifndef GDR_UTIL_FLAT_TABLE_H_
#define GDR_UTIL_FLAT_TABLE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace gdr {

/// Flat open-addressing hash map for hot lookup paths, replacing
/// std::unordered_map where the per-node allocation and pointer chase
/// dominate (the violation index's key → GroupId table: hot on the
/// mutation path and on every hypothetical-key probe of VOI scoring).
///
/// Layout: SoA slot arrays (occupancy bytes, cached hashes, keys, values)
/// with power-of-two capacity and linear probing — one contiguous probe
/// run per lookup instead of a bucket-list walk. Erase uses backward-shift
/// deletion (no tombstones), so heavy insert/erase churn — the GroupId
/// free-list recycling pattern — never degrades probe lengths the way
/// tombstone schemes do.
///
/// Capacity-preserving reuse: assigning a key into a recycled slot reuses
/// that slot's existing key storage (for vector-like keys this means no
/// allocation at steady state), and Clear() keeps every array.
///
/// Semantics are the subset of std::unordered_map the index needs:
/// Find / FindOrInsert / Insert / Erase / Clear / size. Keys must be
/// equality-comparable; Hash must be stateless-default-constructible.
/// Iteration order is unspecified (and changes across rehashes) — a
/// ForEach visitor exists for tests and diagnostics only.
template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<Key>>
class FlatTable {
 public:
  FlatTable() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Current slot count (live + empty); 0 before the first insert.
  std::size_t capacity() const { return occupied_.size(); }

  /// Pointer to the value stored under `key`, or nullptr. Never
  /// invalidated by other Find calls; invalidated by any mutation.
  const Value* Find(const Key& key) const {
    if (size_ == 0) return nullptr;
    const std::size_t slot = FindSlot(key, Hash{}(key));
    return slot != kNoSlot ? &values_[slot] : nullptr;
  }
  Value* Find(const Key& key) {
    return const_cast<Value*>(std::as_const(*this).Find(key));
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  /// Inserts (key, value); if the key is already present, overwrites the
  /// value. Returns true when a new entry was created.
  bool Insert(const Key& key, const Value& value) {
    bool inserted = false;
    Value& slot = FindOrInsert(key, &inserted);
    slot = value;
    return inserted;
  }

  /// The value slot for `key`, inserting a value-initialized entry when
  /// absent. `inserted` (optional) reports whether the entry is new.
  Value& FindOrInsert(const Key& key, bool* inserted = nullptr) {
    const std::size_t hash = Hash{}(key);
    if (!occupied_.empty()) {
      const std::size_t slot = FindSlot(key, hash);
      if (slot != kNoSlot) {
        if (inserted != nullptr) *inserted = false;
        return values_[slot];
      }
    }
    if ((size_ + 1) * kLoadDen > capacity() * kLoadNum) {
      Grow(capacity() == 0 ? kMinCapacity : capacity() * 2);
    }
    const std::size_t slot = InsertFresh(key, hash);
    if (inserted != nullptr) *inserted = true;
    return values_[slot];
  }

  /// Removes the entry for `key`; returns true if one was present.
  /// Backward-shift deletion: trailing probe-run entries whose home slot
  /// precedes the hole are moved back, so no tombstones accumulate.
  bool Erase(const Key& key) {
    if (size_ == 0) return false;
    std::size_t hole = FindSlot(key, Hash{}(key));
    if (hole == kNoSlot) return false;
    const std::size_t mask = capacity() - 1;
    std::size_t probe = (hole + 1) & mask;
    while (occupied_[probe]) {
      const std::size_t home = hashes_[probe] & mask;
      // The entry at `probe` may fill the hole iff the hole lies on its
      // probe path, i.e. it is displaced at least as far from home as the
      // hole is ahead of it.
      if (((probe - home) & mask) >= ((probe - hole) & mask)) {
        hashes_[hole] = hashes_[probe];
        keys_[hole] = std::move(keys_[probe]);
        values_[hole] = std::move(values_[probe]);
        hole = probe;
      }
      probe = (probe + 1) & mask;
    }
    occupied_[hole] = 0;
    --size_;
    return true;
  }

  /// Drops every entry but keeps every allocation (slot arrays and any
  /// key-internal capacity) — the reusable-scratch idiom.
  void Clear() {
    std::fill(occupied_.begin(), occupied_.end(), std::uint8_t{0});
    size_ = 0;
  }

  /// Pre-sizes the slot arrays for `n` entries without rehashing later.
  void Reserve(std::size_t n) {
    std::size_t target = kMinCapacity;
    while (n * kLoadDen > target * kLoadNum) target *= 2;
    if (target > capacity()) Grow(target);
  }

  /// Visits every (key, value) pair in unspecified order. Tests and
  /// diagnostics only — not a hot-path API.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < occupied_.size(); ++i) {
      if (occupied_[i]) fn(keys_[i], values_[i]);
    }
  }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;
  // Max load factor 7/8: linear probing stays short, and the power-of-two
  // growth keeps the amortized insert cost constant.
  static constexpr std::size_t kLoadNum = 7;
  static constexpr std::size_t kLoadDen = 8;

  std::size_t FindSlot(const Key& key, std::size_t hash) const {
    const std::size_t mask = capacity() - 1;
    std::size_t probe = hash & mask;
    while (occupied_[probe]) {
      if (hashes_[probe] == hash && Eq{}(keys_[probe], key)) return probe;
      probe = (probe + 1) & mask;
    }
    return kNoSlot;
  }

  // Places a key known to be absent; returns its slot.
  std::size_t InsertFresh(const Key& key, std::size_t hash) {
    const std::size_t mask = capacity() - 1;
    std::size_t probe = hash & mask;
    while (occupied_[probe]) probe = (probe + 1) & mask;
    occupied_[probe] = 1;
    hashes_[probe] = hash;
    keys_[probe] = key;  // assignment reuses the recycled slot's capacity
    ++size_;
    return probe;
  }

  void Grow(std::size_t new_capacity) {
    assert((new_capacity & (new_capacity - 1)) == 0);
    std::vector<std::uint8_t> old_occupied = std::move(occupied_);
    std::vector<std::size_t> old_hashes = std::move(hashes_);
    std::vector<Key> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);

    occupied_.assign(new_capacity, 0);
    hashes_.assign(new_capacity, 0);
    keys_.assign(new_capacity, Key{});
    values_.assign(new_capacity, Value{});

    const std::size_t mask = new_capacity - 1;
    for (std::size_t i = 0; i < old_occupied.size(); ++i) {
      if (!old_occupied[i]) continue;
      std::size_t probe = old_hashes[i] & mask;
      while (occupied_[probe]) probe = (probe + 1) & mask;
      occupied_[probe] = 1;
      hashes_[probe] = old_hashes[i];
      keys_[probe] = std::move(old_keys[i]);
      values_[probe] = std::move(old_values[i]);
    }
  }

  std::vector<std::uint8_t> occupied_;
  std::vector<std::size_t> hashes_;  // cached full hashes, probe pre-filter
  std::vector<Key> keys_;
  std::vector<Value> values_;
  std::size_t size_ = 0;
};

}  // namespace gdr

#endif  // GDR_UTIL_FLAT_TABLE_H_
