#include "util/strings.h"

#include <cstdlib>

namespace gdr {

Result<double> ParseDouble(std::string_view text, std::string_view what) {
  // strtod rather than from_chars<double>: libstdc++ shipped the latter
  // late, and the bench flags accepted strtod's grammar historically.
  const std::string copy(text);
  char* end = nullptr;
  const double parsed = std::strtod(copy.c_str(), &end);
  if (copy.empty() || end != copy.c_str() + copy.size()) {
    return Status::InvalidArgument(std::string(what) + ": expected a number, "
                                   "got '" + copy + "'");
  }
  return parsed;
}

std::string EncodeHex(std::string_view bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

bool DecodeHex(std::string_view hex, std::string* bytes) {
  if (hex.size() % 2 != 0) return false;
  bytes->clear();
  bytes->reserve(hex.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    bytes->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

std::string Fnv1a64Hex(std::string_view bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::uint64_t hash = Fnv1a64(bytes);
  std::string out(16, '0');
  for (std::size_t i = 16; i-- > 0;) {
    out[i] = kHex[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

}  // namespace gdr
