#ifndef GDR_UTIL_PERF_COUNTERS_H_
#define GDR_UTIL_PERF_COUNTERS_H_

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace gdr {

/// The phases the hot-path perf layer distinguishes. Kept deliberately
/// coarse: one slot per phase that a profile-guided optimization round
/// would want to localize, not a general tracing framework.
enum class PerfPhase : std::size_t {
  /// LearnerBank feature encoding (per-update or matrix layout).
  kLearnerEncode = 0,
  /// Forest evaluation: tree descents + vote accumulation.
  kLearnerTreeWalk,
  /// VOI benefit probes (closed-form batch probes or delta staging).
  kVoiProbe,
};

inline constexpr std::size_t kNumPerfPhases = 3;

/// Alloc-free cumulative phase counters: wall nanoseconds plus an item
/// count per phase (updates encoded, rows walked, updates probed). A
/// PerfCounters is plain data — no locks, no heap — so the per-thread
/// pattern is one instance per worker scratch, merged into an owner's
/// instance after the fan-out barrier. Single-instance use (LearnerBank,
/// which always runs on the calling thread) just accumulates in place.
struct PerfCounters {
  struct Slot {
    std::uint64_t ns = 0;
    std::uint64_t count = 0;
  };
  std::array<Slot, kNumPerfPhases> slots{};

  void Add(PerfPhase phase, std::uint64_t ns, std::uint64_t count) {
    Slot& slot = slots[static_cast<std::size_t>(phase)];
    slot.ns += ns;
    slot.count += count;
  }

  void MergeFrom(const PerfCounters& other) {
    for (std::size_t i = 0; i < kNumPerfPhases; ++i) {
      slots[i].ns += other.slots[i].ns;
      slots[i].count += other.slots[i].count;
    }
  }

  void Reset() { slots = {}; }

  double Seconds(PerfPhase phase) const {
    return static_cast<double>(slots[static_cast<std::size_t>(phase)].ns) *
           1e-9;
  }
  std::uint64_t Count(PerfPhase phase) const {
    return slots[static_cast<std::size_t>(phase)].count;
  }
};

/// Scoped accumulation into one phase slot: two steady_clock reads per
/// scope, no allocation. `count` is the number of items the scope
/// processed (so ns/count is a meaningful per-item cost).
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(PerfCounters* counters, PerfPhase phase,
                   std::uint64_t count)
      : counters_(counters),
        phase_(phase),
        count_(count),
        start_(std::chrono::steady_clock::now()) {}

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

  ~ScopedPhaseTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    counters_->Add(
        phase_,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        count_);
  }

 private:
  PerfCounters* counters_;
  PerfPhase phase_;
  std::uint64_t count_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gdr

#endif  // GDR_UTIL_PERF_COUNTERS_H_
