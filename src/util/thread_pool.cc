#include "util/thread_pool.h"

#include <algorithm>

namespace gdr {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t count = std::max<std::size_t>(1, num_threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::ResolveThreadCount(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  ParallelForWithSlot(n, [&fn](std::size_t, std::size_t i) { fn(i); });
}

void ThreadPool::ParallelForWithSlot(
    std::size_t n,
    const std::function<void(std::size_t slot, std::size_t i)>& fn) {
  if (n == 0) return;
  // More chunks than threads smooths imbalance between groups of very
  // different sizes; each chunk is a fixed contiguous index range, so the
  // work a given index performs is identical however chunks land on
  // threads.
  const std::size_t chunks = std::min(n, (size() + 1) * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  // Each submitted task owns one slot and runs entirely on one worker
  // thread; the caller drives the last slot. That single-threadedness per
  // slot is what lets callers keep unsynchronized per-slot scratch state.
  auto run_chunks = [n, chunk_size, cursor, &fn](std::size_t slot) {
    for (;;) {
      const std::size_t chunk = cursor->fetch_add(1);
      const std::size_t begin = chunk * chunk_size;
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + chunk_size);
      for (std::size_t i = begin; i < end; ++i) fn(slot, i);
    }
  };
  std::vector<std::future<void>> futures;
  futures.reserve(size());
  for (std::size_t t = 0; t < size(); ++t) {
    futures.push_back(Submit([run_chunks, t] { run_chunks(t); }));
  }
  // The caller works too. Whatever happens, every future must be waited on
  // before returning — the submitted tasks reference `fn` and `cursor`.
  std::exception_ptr caller_error;
  try {
    run_chunks(size());  // the calling thread drives the last slot
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::exception_ptr worker_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!worker_error) worker_error = std::current_exception();
    }
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (worker_error) std::rethrow_exception(worker_error);
}

}  // namespace gdr
