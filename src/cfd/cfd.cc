#include "cfd/cfd.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace gdr {

namespace {

constexpr auto Trim = TrimWhitespace;

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

}  // namespace

bool Cfd::LhsContains(AttrId attr) const {
  return std::any_of(lhs_.begin(), lhs_.end(),
                     [attr](const PatternCell& c) { return c.attr == attr; });
}

std::string Cfd::ToString(const Schema& schema) const {
  return name_ + ": (" + ToRuleText(schema) + ")";
}

std::string Cfd::ToRuleText(const Schema& schema) const {
  std::ostringstream out;
  for (std::size_t i = 0; i < lhs_.size(); ++i) {
    if (i > 0) out << ", ";
    out << schema.attr_name(lhs_[i].attr);
    if (lhs_[i].is_constant()) out << "=" << *lhs_[i].constant;
  }
  out << " -> " << schema.attr_name(rhs_.attr);
  if (rhs_.is_constant()) out << "=" << *rhs_.constant;
  return out.str();
}

Status RuleSet::AddRule(std::string name, std::vector<PatternCell> lhs,
                        std::vector<PatternCell> rhs) {
  if (lhs.empty()) return Status::InvalidArgument("rule has empty LHS");
  if (rhs.empty()) return Status::InvalidArgument("rule has empty RHS");

  auto check_attr = [this](const PatternCell& cell) -> Status {
    if (cell.attr < 0 ||
        static_cast<std::size_t>(cell.attr) >= schema_.num_attrs()) {
      return Status::InvalidArgument("pattern attribute id out of range");
    }
    return Status::OK();
  };
  for (const PatternCell& cell : lhs) GDR_RETURN_NOT_OK(check_attr(cell));
  for (const PatternCell& cell : rhs) {
    GDR_RETURN_NOT_OK(check_attr(cell));
    for (const PatternCell& l : lhs) {
      if (l.attr == cell.attr) {
        return Status::InvalidArgument(
            "RHS attribute also appears in LHS: " +
            schema_.attr_name(cell.attr));
      }
    }
  }

  // Normal form: one stored rule per RHS attribute. Validate every split
  // name up front so a duplicate leaves the rule set untouched.
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    std::string sub_name = name;
    if (rhs.size() > 1) sub_name += "." + std::to_string(i + 1);
    if (names_.count(sub_name) > 0) {
      return Status::InvalidArgument("duplicate rule name '" + sub_name + "'");
    }
  }
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    std::string sub_name = name;
    if (rhs.size() > 1) sub_name += "." + std::to_string(i + 1);
    names_.insert(sub_name);
    const RuleId id = static_cast<RuleId>(rules_.size());
    rules_.emplace_back(std::move(sub_name), lhs, rhs[i]);

    if (attr_to_rules_.size() < schema_.num_attrs()) {
      attr_to_rules_.resize(schema_.num_attrs());
    }
    const Cfd& added = rules_.back();
    for (std::size_t a = 0; a < schema_.num_attrs(); ++a) {
      if (added.Mentions(static_cast<AttrId>(a))) {
        attr_to_rules_[a].push_back(id);
      }
    }
  }
  return Status::OK();
}

Status RuleSet::AddRuleFromString(std::string name, std::string_view text) {
  const std::size_t arrow = text.find("->");
  if (arrow == std::string_view::npos) {
    return Status::InvalidArgument("rule '" + name + "': missing '->' in '" +
                                   std::string(text) + "'");
  }
  auto parse_item = [this, &name](std::string_view item,
                                  const char* side) -> Result<PatternCell> {
    item = Trim(item);
    if (item.empty()) {
      return Status::InvalidArgument("rule '" + name + "': empty " + side +
                                     " pattern item");
    }
    PatternCell cell;
    const std::size_t eq = item.find('=');
    const std::string_view attr_name =
        eq == std::string_view::npos ? item : Trim(item.substr(0, eq));
    cell.attr = schema_.FindAttr(attr_name);
    if (cell.attr == kInvalidAttrId) {
      return Status::InvalidArgument("rule '" + name +
                                     "': unknown attribute '" +
                                     std::string(attr_name) + "' in " + side +
                                     " item '" + std::string(item) + "'");
    }
    if (eq != std::string_view::npos) {
      cell.constant = std::string(Trim(item.substr(eq + 1)));
    }
    return cell;
  };

  std::vector<PatternCell> lhs;
  for (std::string_view part : Split(text.substr(0, arrow), ',')) {
    GDR_ASSIGN_OR_RETURN(PatternCell cell, parse_item(part, "LHS"));
    lhs.push_back(std::move(cell));
  }
  std::vector<PatternCell> rhs;
  for (std::string_view part : Split(text.substr(arrow + 2), ';')) {
    GDR_ASSIGN_OR_RETURN(PatternCell cell, parse_item(part, "RHS"));
    rhs.push_back(std::move(cell));
  }
  return AddRule(std::move(name), std::move(lhs), std::move(rhs));
}

bool RuleSurvivesText(const Cfd& rule, const Schema& schema,
                      std::string* offending_token) {
  auto bad = [offending_token](const std::string& token,
                               bool is_attr) -> bool {
    const bool has_delim =
        token.find_first_of(",;\n\r") != std::string::npos ||
        token.find("->") != std::string::npos ||
        (is_attr && token.find('=') != std::string::npos);
    const bool trimmed_away =
        std::string(Trim(token)) != token;  // parser trims; would not survive
    if (has_delim || trimmed_away) {
      if (offending_token != nullptr) *offending_token = token;
      return true;
    }
    return false;
  };
  // Names must survive the rules-file line format too: non-empty, no
  // ':'/newline, no surrounding whitespace, and not starting with the
  // comment marker '#' (the loader would silently skip the line).
  if (rule.name().empty() || rule.name().front() == '#' ||
      rule.name().find_first_of(":\n\r") != std::string::npos ||
      std::string(Trim(rule.name())) != rule.name()) {
    if (offending_token != nullptr) *offending_token = rule.name();
    return false;
  }
  for (const PatternCell& cell : rule.lhs()) {
    if (bad(schema.attr_name(cell.attr), /*is_attr=*/true)) return false;
    if (cell.is_constant() && bad(*cell.constant, /*is_attr=*/false)) {
      return false;
    }
  }
  if (bad(schema.attr_name(rule.rhs().attr), /*is_attr=*/true)) return false;
  if (rule.rhs().is_constant() &&
      bad(*rule.rhs().constant, /*is_attr=*/false)) {
    return false;
  }
  return true;
}

const std::vector<RuleId>& RuleSet::RulesMentioning(AttrId attr) const {
  if (attr < 0 || static_cast<std::size_t>(attr) >= attr_to_rules_.size()) {
    return empty_;
  }
  return attr_to_rules_[static_cast<std::size_t>(attr)];
}

std::vector<RuleId> RuleSet::AllRuleIds() const {
  std::vector<RuleId> ids(rules_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<RuleId>(i);
  }
  return ids;
}

}  // namespace gdr
