#include "cfd/violation_index.h"

#include <algorithm>
#include <cassert>

namespace gdr {

std::size_t ViolationIndex::GroupKeyHash::operator()(
    const GroupKey& key) const {
  // FNV-1a over the id bytes; exact-key equality is checked by the map.
  std::uint64_t h = 1469598103934665603ULL;
  for (ValueId id : key) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h);
}

ViolationIndex::ViolationIndex(Table* table, const RuleSet* rules)
    : table_(table), rules_(rules) {
  stats_.resize(rules_->size());
  for (std::size_t i = 0; i < rules_->size(); ++i) {
    const Cfd& rule = rules_->rule(static_cast<RuleId>(i));
    RuleStats& rs = stats_[i];
    rs.is_constant = rule.IsConstant();
    rs.rhs_attr = rule.rhs().attr;
    if (rs.is_constant) {
      rs.rhs_const = table_->InternValue(rs.rhs_attr, *rule.rhs().constant);
      rs.row_violates.assign(table_->num_rows(), 0);
    }
    for (const PatternCell& cell : rule.lhs()) {
      rs.lhs_attrs.push_back(cell.attr);
      rs.lhs_consts.push_back(
          cell.is_constant() ? table_->InternValue(cell.attr, *cell.constant)
                             : kInvalidValueId);
    }
  }
  for (std::size_t r = 0; r < table_->num_rows(); ++r) {
    for (RuleStats& rs : stats_) {
      AddRow(rs, static_cast<RowId>(r));
    }
  }
}

bool ViolationIndex::MatchesContext(const RuleStats& rs, RowId row) const {
  for (std::size_t i = 0; i < rs.lhs_attrs.size(); ++i) {
    if (rs.lhs_consts[i] != kInvalidValueId &&
        table_->id_at(row, rs.lhs_attrs[i]) != rs.lhs_consts[i]) {
      return false;
    }
  }
  return true;
}

ViolationIndex::GroupKey ViolationIndex::KeyFor(const RuleStats& rs,
                                                RowId row) const {
  GroupKey key(rs.lhs_attrs.size());
  for (std::size_t i = 0; i < rs.lhs_attrs.size(); ++i) {
    key[i] = table_->id_at(row, rs.lhs_attrs[i]);
  }
  return key;
}

void ViolationIndex::AddRow(RuleStats& rs, RowId row) {
  if (!MatchesContext(rs, row)) return;
  ++rs.context_count;

  if (rs.is_constant) {
    const bool violates = table_->id_at(row, rs.rhs_attr) != rs.rhs_const;
    if (static_cast<std::size_t>(row) >= rs.row_violates.size()) {
      rs.row_violates.resize(table_->num_rows(), 0);
    }
    rs.row_violates[static_cast<std::size_t>(row)] = violates ? 1 : 0;
    if (violates) {
      ++rs.violations;
      ++rs.violating_tuples;
    }
    return;
  }

  GroupKey key = KeyFor(rs, row);
  Group& g = rs.groups[key];
  // Retire the group's old contribution to the rule aggregates, mutate,
  // then account the new contribution.
  rs.violations -= g.PairViolations();
  rs.violating_tuples -= g.ViolatingTuples();

  const ValueId a = table_->id_at(row, rs.rhs_attr);
  std::int64_t& count = g.counts[a];
  g.sum_sq += 2 * count + 1;
  ++count;
  ++g.total;

  rs.violations += g.PairViolations();
  rs.violating_tuples += g.ViolatingTuples();
  rs.members[key].push_back(row);
}

void ViolationIndex::RemoveRow(RuleStats& rs, RowId row) {
  if (!MatchesContext(rs, row)) return;
  --rs.context_count;

  if (rs.is_constant) {
    if (rs.row_violates[static_cast<std::size_t>(row)]) {
      --rs.violations;
      --rs.violating_tuples;
      rs.row_violates[static_cast<std::size_t>(row)] = 0;
    }
    return;
  }

  GroupKey key = KeyFor(rs, row);
  auto git = rs.groups.find(key);
  assert(git != rs.groups.end());
  Group& g = git->second;

  rs.violations -= g.PairViolations();
  rs.violating_tuples -= g.ViolatingTuples();

  const ValueId a = table_->id_at(row, rs.rhs_attr);
  auto cit = g.counts.find(a);
  assert(cit != g.counts.end() && cit->second > 0);
  g.sum_sq -= 2 * cit->second - 1;
  --cit->second;
  if (cit->second == 0) g.counts.erase(cit);
  --g.total;

  rs.violations += g.PairViolations();
  rs.violating_tuples += g.ViolatingTuples();

  auto mit = rs.members.find(key);
  assert(mit != rs.members.end());
  std::vector<RowId>& rows = mit->second;
  auto rit = std::find(rows.begin(), rows.end(), row);
  assert(rit != rows.end());
  *rit = rows.back();
  rows.pop_back();

  if (g.total == 0) {
    rs.groups.erase(git);
    rs.members.erase(mit);
  }
}

ValueId ViolationIndex::ApplyCellChange(RowId row, AttrId attr,
                                        ValueId value) {
  const ValueId old = table_->id_at(row, attr);
  if (old == value) return old;
  ++version_;
  const std::vector<RuleId>& affected = rules_->RulesMentioning(attr);
  for (RuleId id : affected) {
    RemoveRow(stats_[static_cast<std::size_t>(id)], row);
  }
  table_->SetById(row, attr, value);
  for (RuleId id : affected) {
    AddRow(stats_[static_cast<std::size_t>(id)], row);
  }
  return old;
}

ValueId ViolationIndex::ApplyCellChange(RowId row, AttrId attr,
                                        std::string_view value) {
  return ApplyCellChange(row, attr, table_->InternValue(attr, value));
}

std::int64_t ViolationIndex::TupleViolation(RowId row, RuleId rule) const {
  const RuleStats& rs = stats_[static_cast<std::size_t>(rule)];
  if (!MatchesContext(rs, row)) return 0;
  if (rs.is_constant) {
    return rs.row_violates[static_cast<std::size_t>(row)] ? 1 : 0;
  }
  auto git = rs.groups.find(KeyFor(rs, row));
  if (git == rs.groups.end()) return 0;
  const Group& g = git->second;
  auto cit = g.counts.find(table_->id_at(row, rs.rhs_attr));
  const std::int64_t same = cit == g.counts.end() ? 0 : cit->second;
  return g.total - same;
}

bool ViolationIndex::IsDirty(RowId row) const {
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    if (TupleViolation(row, static_cast<RuleId>(i)) > 0) return true;
  }
  return false;
}

std::vector<RuleId> ViolationIndex::ViolatedRules(RowId row) const {
  std::vector<RuleId> out;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    if (TupleViolation(row, static_cast<RuleId>(i)) > 0) {
      out.push_back(static_cast<RuleId>(i));
    }
  }
  return out;
}

std::vector<RowId> ViolationIndex::DirtyRows() const {
  std::vector<RowId> out;
  for (std::size_t r = 0; r < table_->num_rows(); ++r) {
    if (IsDirty(static_cast<RowId>(r))) out.push_back(static_cast<RowId>(r));
  }
  return out;
}

std::int64_t ViolationIndex::ViolatedRuleCount(RowId row) const {
  std::int64_t count = 0;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    if (TupleViolation(row, static_cast<RuleId>(i)) > 0) ++count;
  }
  return count;
}

std::int64_t ViolationIndex::HypotheticalViolatedRuleCount(
    RowId row, AttrId attr, ValueId value) const {
  std::int64_t count = 0;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    const RuleStats& rs = stats_[i];

    // Hypothetical cell accessor for this row.
    auto hyp_at = [&](AttrId a) {
      return a == attr ? value : table_->id_at(row, a);
    };

    // Context check under the hypothetical values.
    bool in_context = true;
    for (std::size_t k = 0; k < rs.lhs_attrs.size(); ++k) {
      if (rs.lhs_consts[k] != kInvalidValueId &&
          hyp_at(rs.lhs_attrs[k]) != rs.lhs_consts[k]) {
        in_context = false;
        break;
      }
    }
    if (!in_context) continue;

    if (rs.is_constant) {
      if (hyp_at(rs.rhs_attr) != rs.rhs_const) ++count;
      continue;
    }

    // Variable rule: conflicts against the hypothetical LHS group,
    // excluding this row's own current contribution.
    GroupKey key(rs.lhs_attrs.size());
    for (std::size_t k = 0; k < rs.lhs_attrs.size(); ++k) {
      key[k] = hyp_at(rs.lhs_attrs[k]);
    }
    auto git = rs.groups.find(key);
    if (git == rs.groups.end()) continue;  // fresh group: no partners
    const Group& g = git->second;

    // Is the row currently a member of this (hypothetical) group? It is
    // iff its current LHS values equal the hypothetical key and it matches
    // the context now — equivalently, changing `attr` kept the key, which
    // happens when attr is not in X or value == old_value.
    bool currently_member = MatchesContext(rs, row);
    if (currently_member) {
      for (std::size_t k = 0; k < rs.lhs_attrs.size(); ++k) {
        if (table_->id_at(row, rs.lhs_attrs[k]) != key[k]) {
          currently_member = false;
          break;
        }
      }
    }
    const ValueId rhs_hyp = hyp_at(rs.rhs_attr);
    std::int64_t others = g.total;
    auto cit = g.counts.find(rhs_hyp);
    std::int64_t others_same = cit == g.counts.end() ? 0 : cit->second;
    if (currently_member) {
      --others;
      if (table_->id_at(row, rs.rhs_attr) == rhs_hyp) --others_same;
    }
    if (others - others_same > 0) ++count;
  }
  return count;
}

std::int64_t ViolationIndex::GroupTotal(RowId row, RuleId rule) const {
  const RuleStats& rs = stats_[static_cast<std::size_t>(rule)];
  if (rs.is_constant || !MatchesContext(rs, row)) return 0;
  auto git = rs.groups.find(KeyFor(rs, row));
  return git == rs.groups.end() ? 0 : git->second.total;
}

std::int64_t ViolationIndex::GroupRhsValueCount(RowId row, RuleId rule,
                                                ValueId value) const {
  const RuleStats& rs = stats_[static_cast<std::size_t>(rule)];
  if (rs.is_constant || !MatchesContext(rs, row)) return 0;
  auto git = rs.groups.find(KeyFor(rs, row));
  if (git == rs.groups.end()) return 0;
  auto cit = git->second.counts.find(value);
  return cit == git->second.counts.end() ? 0 : cit->second;
}

std::int64_t ViolationIndex::TotalViolations() const {
  std::int64_t total = 0;
  for (const RuleStats& rs : stats_) total += rs.violations;
  return total;
}

std::vector<RowId> ViolationIndex::ViolationPartners(RowId row,
                                                     RuleId rule) const {
  const RuleStats& rs = stats_[static_cast<std::size_t>(rule)];
  std::vector<RowId> out;
  if (rs.is_constant || !MatchesContext(rs, row)) return out;
  auto mit = rs.members.find(KeyFor(rs, row));
  if (mit == rs.members.end()) return out;
  const ValueId a = table_->id_at(row, rs.rhs_attr);
  for (RowId other : mit->second) {
    if (other != row && table_->id_at(other, rs.rhs_attr) != a) {
      out.push_back(other);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RowId> ViolationIndex::GroupMembers(RowId row, RuleId rule) const {
  const RuleStats& rs = stats_[static_cast<std::size_t>(rule)];
  std::vector<RowId> out;
  if (rs.is_constant || !MatchesContext(rs, row)) return out;
  auto mit = rs.members.find(KeyFor(rs, row));
  if (mit == rs.members.end()) return out;
  out = mit->second;
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// ViolationDelta
// ---------------------------------------------------------------------------

ViolationDelta::ViolationDelta(const ViolationIndex* base)
    : base_(base), base_version_(base->version()) {}

ValueId ViolationDelta::ValueAt(RowId row, AttrId attr) const {
  auto it = writes_.find(PackCell(row, attr));
  return it != writes_.end() ? it->second : base_->table().id_at(row, attr);
}

const ViolationDelta::RuleDelta* ViolationDelta::FindDelta(
    RuleId rule) const {
  auto it = rules_.find(rule);
  return it == rules_.end() ? nullptr : &it->second;
}

ViolationDelta::RuleDelta& ViolationDelta::EnsureDelta(RuleId rule) {
  return rules_[rule];
}

bool ViolationDelta::MatchesContext(const RuleStats& rs, RowId row) const {
  for (std::size_t i = 0; i < rs.lhs_attrs.size(); ++i) {
    if (rs.lhs_consts[i] != kInvalidValueId &&
        ValueAt(row, rs.lhs_attrs[i]) != rs.lhs_consts[i]) {
      return false;
    }
  }
  return true;
}

ViolationDelta::GroupKey ViolationDelta::KeyFor(const RuleStats& rs,
                                                RowId row) const {
  GroupKey key(rs.lhs_attrs.size());
  for (std::size_t i = 0; i < rs.lhs_attrs.size(); ++i) {
    key[i] = ValueAt(row, rs.lhs_attrs[i]);
  }
  return key;
}

bool ViolationDelta::RowViolates(const RuleStats& rs, const RuleDelta* rd,
                                 RowId row) const {
  if (rd != nullptr) {
    auto it = rd->row_violates.find(row);
    if (it != rd->row_violates.end()) return it->second != 0;
  }
  return rs.row_violates[static_cast<std::size_t>(row)] != 0;
}

const ViolationDelta::Group* ViolationDelta::FindGroup(
    const RuleStats& rs, const RuleDelta* rd, const GroupKey& key) const {
  if (rd != nullptr) {
    auto it = rd->groups.find(key);
    if (it != rd->groups.end()) return &it->second;
  }
  auto it = rs.groups.find(key);
  return it == rs.groups.end() ? nullptr : &it->second;
}

ViolationDelta::Group& ViolationDelta::EnsureGroup(const RuleStats& rs,
                                                   RuleDelta& rd,
                                                   const GroupKey& key) {
  auto [it, inserted] = rd.groups.try_emplace(key);
  if (inserted) {
    auto bit = rs.groups.find(key);
    if (bit != rs.groups.end()) it->second = bit->second;  // copy-on-write
  }
  return it->second;
}

void ViolationDelta::RemoveRow(RuleId rule, RowId row) {
  const RuleStats& rs = base_->stats_[static_cast<std::size_t>(rule)];
  if (!MatchesContext(rs, row)) return;
  RuleDelta& rd = EnsureDelta(rule);
  --rd.context_count;

  if (rs.is_constant) {
    if (RowViolates(rs, &rd, row)) {
      --rd.violations;
      --rd.violating_tuples;
    }
    rd.row_violates[row] = 0;
    return;
  }

  GroupKey key = KeyFor(rs, row);
  Group& g = EnsureGroup(rs, rd, key);
  rd.violations -= g.PairViolations();
  rd.violating_tuples -= g.ViolatingTuples();

  const ValueId a = ValueAt(row, rs.rhs_attr);
  auto cit = g.counts.find(a);
  assert(cit != g.counts.end() && cit->second > 0);
  g.sum_sq -= 2 * cit->second - 1;
  --cit->second;
  if (cit->second == 0) g.counts.erase(cit);
  --g.total;

  rd.violations += g.PairViolations();
  rd.violating_tuples += g.ViolatingTuples();
}

void ViolationDelta::AddRow(RuleId rule, RowId row) {
  const RuleStats& rs = base_->stats_[static_cast<std::size_t>(rule)];
  if (!MatchesContext(rs, row)) return;
  RuleDelta& rd = EnsureDelta(rule);
  ++rd.context_count;

  if (rs.is_constant) {
    const bool violates = ValueAt(row, rs.rhs_attr) != rs.rhs_const;
    rd.row_violates[row] = violates ? 1 : 0;
    if (violates) {
      ++rd.violations;
      ++rd.violating_tuples;
    }
    return;
  }

  GroupKey key = KeyFor(rs, row);
  Group& g = EnsureGroup(rs, rd, key);
  rd.violations -= g.PairViolations();
  rd.violating_tuples -= g.ViolatingTuples();

  const ValueId a = ValueAt(row, rs.rhs_attr);
  std::int64_t& count = g.counts[a];
  g.sum_sq += 2 * count + 1;
  ++count;
  ++g.total;

  rd.violations += g.PairViolations();
  rd.violating_tuples += g.ViolatingTuples();
}

ValueId ViolationDelta::SetCell(RowId row, AttrId attr, ValueId value) {
  const ValueId old = ValueAt(row, attr);
  if (old == value) return old;
  const std::vector<RuleId>& affected = base_->rules().RulesMentioning(attr);
  // Same discipline as the base: retire the row's contribution under its
  // old values, land the write, re-add under the new values.
  for (RuleId id : affected) RemoveRow(id, row);
  if (value == base_->table().id_at(row, attr)) {
    writes_.erase(PackCell(row, attr));
  } else {
    writes_[PackCell(row, attr)] = value;
  }
  for (RuleId id : affected) AddRow(id, row);
  return old;
}

void ViolationDelta::Merge(const ViolationDelta& other) {
  assert(other.base_ == base_);
  for (const auto& [cell, value] : other.writes_) {
    SetCell(static_cast<RowId>(cell >> 32),
            static_cast<AttrId>(cell & 0xFFFFFFFFULL), value);
  }
}

void ViolationDelta::Discard() {
  writes_.clear();
  rules_.clear();
}

std::int64_t ViolationDelta::RuleViolations(RuleId rule) const {
  const RuleDelta* rd = FindDelta(rule);
  return base_->RuleViolations(rule) + (rd != nullptr ? rd->violations : 0);
}

std::int64_t ViolationDelta::ViolatingCount(RuleId rule) const {
  const RuleDelta* rd = FindDelta(rule);
  return base_->ViolatingCount(rule) +
         (rd != nullptr ? rd->violating_tuples : 0);
}

std::int64_t ViolationDelta::ContextCount(RuleId rule) const {
  const RuleDelta* rd = FindDelta(rule);
  return base_->ContextCount(rule) + (rd != nullptr ? rd->context_count : 0);
}

std::int64_t ViolationDelta::TotalViolations() const {
  std::int64_t total = base_->TotalViolations();
  for (const auto& [rule, rd] : rules_) total += rd.violations;
  return total;
}

std::int64_t ViolationDelta::TupleViolation(RowId row, RuleId rule) const {
  const RuleStats& rs = base_->stats_[static_cast<std::size_t>(rule)];
  if (!MatchesContext(rs, row)) return 0;
  const RuleDelta* rd = FindDelta(rule);
  if (rs.is_constant) return RowViolates(rs, rd, row) ? 1 : 0;
  const Group* g = FindGroup(rs, rd, KeyFor(rs, row));
  if (g == nullptr) return 0;
  auto cit = g->counts.find(ValueAt(row, rs.rhs_attr));
  const std::int64_t same = cit == g->counts.end() ? 0 : cit->second;
  return g->total - same;
}

bool ViolationDelta::IsDirty(RowId row) const {
  for (std::size_t i = 0; i < base_->stats_.size(); ++i) {
    if (TupleViolation(row, static_cast<RuleId>(i)) > 0) return true;
  }
  return false;
}

std::vector<RowId> ViolationDelta::DirtyRows() const {
  std::vector<RowId> out;
  for (std::size_t r = 0; r < base_->table().num_rows(); ++r) {
    if (IsDirty(static_cast<RowId>(r))) out.push_back(static_cast<RowId>(r));
  }
  return out;
}

}  // namespace gdr
