#include "cfd/violation_index.h"

#include <algorithm>
#include <cassert>

namespace gdr {

std::size_t ViolationIndex::GroupKeyHash::operator()(
    const GroupKey& key) const {
  // FNV-1a over the id bytes; exact-key equality is checked by the map.
  std::uint64_t h = 1469598103934665603ULL;
  for (ValueId id : key) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h);
}

ViolationIndex::ViolationIndex(Table* table, const RuleSet* rules)
    : table_(table), rules_(rules) {
  stats_.resize(rules_->size());
  for (std::size_t i = 0; i < rules_->size(); ++i) {
    const Cfd& rule = rules_->rule(static_cast<RuleId>(i));
    RuleStats& rs = stats_[i];
    rs.is_constant = rule.IsConstant();
    rs.rhs_attr = rule.rhs().attr;
    if (rs.is_constant) {
      rs.rhs_const = table_->InternValue(rs.rhs_attr, *rule.rhs().constant);
      rs.row_violates.assign(table_->num_rows(), 0);
    } else {
      rs.row_group.assign(table_->num_rows(), kNoGroup);
    }
    rs.attr_in_lhs.assign(table_->num_attrs(), 0);
    for (const PatternCell& cell : rule.lhs()) {
      rs.lhs_attrs.push_back(cell.attr);
      rs.lhs_consts.push_back(
          cell.is_constant() ? table_->InternValue(cell.attr, *cell.constant)
                             : kInvalidValueId);
      rs.attr_in_lhs[static_cast<std::size_t>(cell.attr)] = 1;
    }
  }
  for (std::size_t r = 0; r < table_->num_rows(); ++r) {
    for (RuleStats& rs : stats_) {
      AddRow(rs, static_cast<RowId>(r));
    }
  }
}

Result<RowId> ViolationIndex::AppendRow(const std::vector<std::string>& values) {
  GDR_ASSIGN_OR_RETURN(const RowId row, table_->AppendRow(values));
  ++version_;
  for (RuleStats& rs : stats_) AddRow(rs, row);
  return row;
}

Result<RowId> ViolationIndex::AppendRows(
    const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) {
    return Status::InvalidArgument("AppendRows needs at least one row");
  }
  // Validate every arity before touching anything, so a malformed row in
  // the middle of a batch cannot leave the table and index half-grown.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != table_->num_attrs()) {
      return Status::InvalidArgument(
          "batch row " + std::to_string(i) + ": arity " +
          std::to_string(rows[i].size()) + " does not match schema arity " +
          std::to_string(table_->num_attrs()) + " (no rows were appended)");
    }
  }
  ++version_;
  const RowId first = static_cast<RowId>(table_->num_rows());
  table_->Reserve(table_->num_rows() + rows.size());
  for (const std::vector<std::string>& values : rows) {
    // Cannot fail: arity was validated above, and AppendRow has no other
    // failure mode.
    const Result<RowId> row = table_->AppendRow(values);
    assert(row.ok());
    for (RuleStats& rs : stats_) AddRow(rs, *row);
  }
  return first;
}

bool ViolationIndex::MatchesContext(const RuleStats& rs, RowId row) const {
  for (std::size_t i = 0; i < rs.lhs_attrs.size(); ++i) {
    if (rs.lhs_consts[i] != kInvalidValueId &&
        table_->id_at(row, rs.lhs_attrs[i]) != rs.lhs_consts[i]) {
      return false;
    }
  }
  return true;
}

void ViolationIndex::BuildKey(const RuleStats& rs, RowId row,
                              GroupKey* key) const {
  key->resize(rs.lhs_attrs.size());
  for (std::size_t i = 0; i < rs.lhs_attrs.size(); ++i) {
    (*key)[i] = table_->id_at(row, rs.lhs_attrs[i]);
  }
}

GroupId ViolationIndex::InternGroup(RuleStats& rs, RowId row) {
  BuildKey(rs, row, &key_scratch_);
  if (const GroupId* found = rs.key_to_group.Find(key_scratch_)) {
    return *found;
  }

  GroupId gid;
  if (!rs.free_groups.empty()) {
    gid = rs.free_groups.back();
    rs.free_groups.pop_back();
    Group& g = rs.groups[static_cast<std::size_t>(gid)];
    g.Reset();
    g.key.assign(key_scratch_.begin(), key_scratch_.end());
  } else {
    gid = static_cast<GroupId>(rs.groups.size());
    rs.groups.emplace_back();
    rs.groups.back().key = key_scratch_;
    rs.members.emplace_back();
  }
  rs.key_to_group.Insert(rs.groups[static_cast<std::size_t>(gid)].key, gid);
  return gid;
}

void ViolationIndex::AddRow(RuleStats& rs, RowId row) {
  if (!MatchesContext(rs, row)) return;
  ++rs.context_count;

  if (rs.is_constant) {
    const bool violates = table_->id_at(row, rs.rhs_attr) != rs.rhs_const;
    if (static_cast<std::size_t>(row) >= rs.row_violates.size()) {
      rs.row_violates.resize(table_->num_rows(), 0);
    }
    rs.row_violates[static_cast<std::size_t>(row)] = violates ? 1 : 0;
    if (violates) {
      ++rs.violations;
      ++rs.violating_tuples;
    }
    return;
  }

  const GroupId gid = InternGroup(rs, row);
  Group& g = rs.groups[static_cast<std::size_t>(gid)];
  // Retire the group's old contribution to the rule aggregates, mutate,
  // then account the new contribution.
  rs.violations -= g.PairViolations();
  rs.violating_tuples -= g.ViolatingTuples();
  g.Increment(table_->id_at(row, rs.rhs_attr));
  rs.violations += g.PairViolations();
  rs.violating_tuples += g.ViolatingTuples();

  rs.members[static_cast<std::size_t>(gid)].push_back(row);
  if (static_cast<std::size_t>(row) >= rs.row_group.size()) {
    rs.row_group.resize(table_->num_rows(), kNoGroup);
  }
  rs.row_group[static_cast<std::size_t>(row)] = gid;
}

void ViolationIndex::RemoveRow(RuleStats& rs, RowId row) {
  if (rs.is_constant) {
    if (!MatchesContext(rs, row)) return;
    --rs.context_count;
    // ViolatesFlag is bounds-guarded (appended-but-unindexed rows read as
    // non-violating), and a set flag implies the slot exists.
    if (rs.ViolatesFlag(row)) {
      --rs.violations;
      --rs.violating_tuples;
      rs.row_violates[static_cast<std::size_t>(row)] = 0;
    }
    return;
  }

  // For variable rules, row_group doubles as the context test: every
  // in-context row is a member of exactly one group.
  const GroupId gid = rs.GroupIdOf(row);
  if (gid == kNoGroup) return;
  --rs.context_count;

  Group& g = rs.groups[static_cast<std::size_t>(gid)];
  rs.violations -= g.PairViolations();
  rs.violating_tuples -= g.ViolatingTuples();
  g.Decrement(table_->id_at(row, rs.rhs_attr));
  rs.violations += g.PairViolations();
  rs.violating_tuples += g.ViolatingTuples();

  rs.row_group[static_cast<std::size_t>(row)] = kNoGroup;
  std::vector<RowId>& rows = rs.members[static_cast<std::size_t>(gid)];
  auto rit = std::find(rows.begin(), rows.end(), row);
  assert(rit != rows.end());
  *rit = rows.back();
  rows.pop_back();

  if (g.total == 0) RetireGroupIfEmpty(rs, gid);
}

void ViolationIndex::RetireGroupIfEmpty(RuleStats& rs, GroupId gid) {
  Group& g = rs.groups[static_cast<std::size_t>(gid)];
  if (g.total != 0) return;
  rs.key_to_group.Erase(g.key);
  g.key.clear();  // clear(), not shrink: the slot keeps its capacity
  g.Reset();      // for reuse through the free list
  rs.members[static_cast<std::size_t>(gid)].clear();
  rs.free_groups.push_back(gid);
}

ValueId ViolationIndex::ApplyCellChange(RowId row, AttrId attr,
                                        ValueId value) {
  const ValueId old = table_->id_at(row, attr);
  if (old == value) return old;
  ++version_;
  const std::vector<RuleId>& affected = rules_->RulesMentioning(attr);
  for (RuleId id : affected) {
    RemoveRow(stats_[static_cast<std::size_t>(id)], row);
  }
  table_->SetById(row, attr, value);
  for (RuleId id : affected) {
    AddRow(stats_[static_cast<std::size_t>(id)], row);
  }
  return old;
}

ValueId ViolationIndex::ApplyCellChange(RowId row, AttrId attr,
                                        std::string_view value) {
  return ApplyCellChange(row, attr, table_->InternValue(attr, value));
}

std::int64_t ViolationIndex::TupleViolation(RowId row, RuleId rule) const {
  const RuleStats& rs = stats_[static_cast<std::size_t>(rule)];
  if (rs.is_constant) {
    // The flag is 1 only for in-context violating rows, so no separate
    // context test is needed.
    return rs.ViolatesFlag(row) ? 1 : 0;
  }
  const GroupId gid = rs.GroupIdOf(row);
  if (gid == kNoGroup) return 0;
  const Group& g = rs.groups[static_cast<std::size_t>(gid)];
  return g.total - g.CountOf(table_->id_at(row, rs.rhs_attr));
}

bool ViolationIndex::IsDirty(RowId row) const {
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    if (TupleViolation(row, static_cast<RuleId>(i)) > 0) return true;
  }
  return false;
}

std::vector<RuleId> ViolationIndex::ViolatedRules(RowId row) const {
  std::vector<RuleId> out;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    if (TupleViolation(row, static_cast<RuleId>(i)) > 0) {
      out.push_back(static_cast<RuleId>(i));
    }
  }
  return out;
}

std::vector<RowId> ViolationIndex::DirtyRows() const {
  std::vector<RowId> out;
  for (std::size_t r = 0; r < table_->num_rows(); ++r) {
    if (IsDirty(static_cast<RowId>(r))) out.push_back(static_cast<RowId>(r));
  }
  return out;
}

std::int64_t ViolationIndex::ViolatedRuleCount(RowId row) const {
  std::int64_t count = 0;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    if (TupleViolation(row, static_cast<RuleId>(i)) > 0) ++count;
  }
  return count;
}

std::int64_t ViolationIndex::HypotheticalViolatedRuleCount(
    RowId row, AttrId attr, ValueId value) const {
  std::int64_t count = 0;
  GroupKey hyp_key;  // materialized only when a rule's LHS key moves
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    const RuleStats& rs = stats_[i];

    // Hypothetical cell accessor for this row.
    auto hyp_at = [&](AttrId a) {
      return a == attr ? value : table_->id_at(row, a);
    };

    // Context check under the hypothetical values.
    bool in_context = true;
    for (std::size_t k = 0; k < rs.lhs_attrs.size(); ++k) {
      if (rs.lhs_consts[k] != kInvalidValueId &&
          hyp_at(rs.lhs_attrs[k]) != rs.lhs_consts[k]) {
        in_context = false;
        break;
      }
    }
    if (!in_context) continue;

    if (rs.is_constant) {
      if (hyp_at(rs.rhs_attr) != rs.rhs_const) ++count;
      continue;
    }

    // Variable rule: conflicts against the hypothetical LHS group,
    // excluding this row's own current contribution. The key differs from
    // the row's current key only when attr sits in X and the value moved.
    const bool key_changed =
        table_->id_at(row, attr) != value &&
        rs.attr_in_lhs[static_cast<std::size_t>(attr)] != 0;

    const Group* g = nullptr;
    bool currently_member = false;
    if (!key_changed) {
      // Hypothetical key == current key: the dense row → GroupId mapping
      // answers directly, and membership is implied.
      const GroupId gid = rs.GroupIdOf(row);
      if (gid == kNoGroup) continue;  // fresh group: no partners
      g = &rs.groups[static_cast<std::size_t>(gid)];
      currently_member = true;
    } else {
      hyp_key.resize(rs.lhs_attrs.size());
      for (std::size_t k = 0; k < rs.lhs_attrs.size(); ++k) {
        hyp_key[k] = hyp_at(rs.lhs_attrs[k]);
      }
      const GroupId* git = rs.key_to_group.Find(hyp_key);
      if (git == nullptr) continue;  // fresh group
      g = &rs.groups[static_cast<std::size_t>(*git)];
      // The key moved, so the row cannot be a member of the target group.
    }

    const ValueId rhs_hyp = hyp_at(rs.rhs_attr);
    std::int64_t others = g->total;
    std::int64_t others_same = g->CountOf(rhs_hyp);
    if (currently_member) {
      --others;
      if (table_->id_at(row, rs.rhs_attr) == rhs_hyp) --others_same;
    }
    if (others - others_same > 0) ++count;
  }
  return count;
}

std::int64_t ViolationIndex::GroupTotal(RowId row, RuleId rule) const {
  const RuleStats& rs = stats_[static_cast<std::size_t>(rule)];
  if (rs.is_constant) return 0;
  const GroupId gid = rs.GroupIdOf(row);
  return gid == kNoGroup ? 0
                         : rs.groups[static_cast<std::size_t>(gid)].total;
}

std::int64_t ViolationIndex::GroupRhsValueCount(RowId row, RuleId rule,
                                                ValueId value) const {
  const RuleStats& rs = stats_[static_cast<std::size_t>(rule)];
  if (rs.is_constant) return 0;
  const GroupId gid = rs.GroupIdOf(row);
  if (gid == kNoGroup) return 0;
  return rs.groups[static_cast<std::size_t>(gid)].CountOf(value);
}

std::int64_t ViolationIndex::TotalViolations() const {
  std::int64_t total = 0;
  for (const RuleStats& rs : stats_) total += rs.violations;
  return total;
}

void ViolationIndex::AppendViolationPartners(RowId row, RuleId rule,
                                             std::vector<RowId>* out) const {
  const RuleStats& rs = stats_[static_cast<std::size_t>(rule)];
  if (rs.is_constant) return;
  const GroupId gid = rs.GroupIdOf(row);
  if (gid == kNoGroup) return;
  const ValueId a = table_->id_at(row, rs.rhs_attr);
  for (RowId other : rs.members[static_cast<std::size_t>(gid)]) {
    if (other != row && table_->id_at(other, rs.rhs_attr) != a) {
      out->push_back(other);
    }
  }
}

std::vector<RowId> ViolationIndex::ViolationPartners(RowId row,
                                                     RuleId rule) const {
  std::vector<RowId> out;
  AppendViolationPartners(row, rule, &out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RowId> ViolationIndex::GroupMembers(RowId row, RuleId rule) const {
  const RuleStats& rs = stats_[static_cast<std::size_t>(rule)];
  std::vector<RowId> out;
  if (rs.is_constant) return out;
  const GroupId gid = rs.GroupIdOf(row);
  if (gid == kNoGroup) return out;
  out = rs.members[static_cast<std::size_t>(gid)];
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// ViolationDelta
// ---------------------------------------------------------------------------

namespace {

// The delta's override state lives in flat (key, value) vectors that are
// tiny at the one-or-two staged writes of a hypothetical; these two
// helpers are the only lookup/update idiom used on them.
template <typename K, typename V>
const V* FindFlat(const std::vector<std::pair<K, V>>& entries, K key) {
  for (const auto& [k, v] : entries) {
    if (k == key) return &v;
  }
  return nullptr;
}

template <typename K, typename V>
void SetFlat(std::vector<std::pair<K, V>>& entries, K key, V value) {
  for (auto& [k, v] : entries) {
    if (k == key) {
      v = value;
      return;
    }
  }
  entries.emplace_back(key, value);
}

}  // namespace

ViolationDelta::ViolationDelta(const ViolationIndex* base)
    : base_(base), base_version_(base->version()) {
  rules_.resize(base_->stats_.size());
}

ValueId ViolationDelta::ValueAt(RowId row, AttrId attr) const {
  const ValueId* pending = FindFlat(writes_, PackCell(row, attr));
  return pending != nullptr ? *pending : base_->table().id_at(row, attr);
}

ViolationDelta::RuleDelta& ViolationDelta::EnsureDelta(RuleId rule) {
  RuleDelta& rd = rules_[static_cast<std::size_t>(rule)];
  if (!rd.touched) {
    rd.touched = true;
    touched_.push_back(rule);
  }
  return rd;
}

bool ViolationDelta::MatchesContext(const RuleStats& rs, RowId row) const {
  for (std::size_t i = 0; i < rs.lhs_attrs.size(); ++i) {
    if (rs.lhs_consts[i] != kInvalidValueId &&
        ValueAt(row, rs.lhs_attrs[i]) != rs.lhs_consts[i]) {
      return false;
    }
  }
  return true;
}

bool ViolationDelta::RowViolates(const RuleStats& rs, const RuleDelta& rd,
                                 RowId row) const {
  const std::uint8_t* over = FindFlat(rd.row_violates, row);
  return over != nullptr ? *over != 0 : rs.ViolatesFlag(row);
}

void ViolationDelta::SetRowViolates(RuleDelta& rd, RowId row,
                                    std::uint8_t flag) {
  SetFlat(rd.row_violates, row, flag);
}

std::uint64_t ViolationDelta::ResolveRowGroup(const RuleStats& rs,
                                              const RuleDelta& rd,
                                              RowId row) const {
  const std::uint64_t* over = FindFlat(rd.row_group, row);
  if (over != nullptr) return *over;
  const GroupId gid = rs.GroupIdOf(row);
  return gid == kNoGroup ? kDeltaNoGroup : static_cast<std::uint64_t>(gid);
}

void ViolationDelta::SetRowGroup(RuleDelta& rd, RowId row, std::uint64_t id) {
  SetFlat(rd.row_group, row, id);
}

std::uint64_t ViolationDelta::ResolveKeyGroup(const RuleStats& rs,
                                              RuleDelta& rd, RowId row) {
  key_scratch_.resize(rs.lhs_attrs.size());
  for (std::size_t i = 0; i < rs.lhs_attrs.size(); ++i) {
    key_scratch_[i] = ValueAt(row, rs.lhs_attrs[i]);
  }
  if (const GroupId* found = rs.key_to_group.Find(key_scratch_)) {
    return static_cast<std::uint64_t>(*found);
  }
  // A key the base has never interned: give it a delta-local novel id.
  for (std::size_t i = 0; i < rd.novel_live; ++i) {
    if (rd.novel_keys[i] == key_scratch_) return kNovelBit | i;
  }
  if (rd.novel_live < rd.novel_keys.size()) {
    rd.novel_keys[rd.novel_live].assign(key_scratch_.begin(),
                                        key_scratch_.end());
  } else {
    rd.novel_keys.push_back(key_scratch_);
  }
  return kNovelBit | rd.novel_live++;
}

const ViolationDelta::GroupCounts* ViolationDelta::FindGroup(
    const RuleStats& rs, const RuleDelta& rd, std::uint64_t id) const {
  for (std::size_t i = 0; i < rd.groups_live; ++i) {
    if (rd.groups[i].id == id) return &rd.groups[i].counts;
  }
  if ((id & kNovelBit) == 0) {
    return &rs.groups[static_cast<std::size_t>(id)];
  }
  return nullptr;  // novel groups always have a slot once referenced
}

ViolationDelta::GroupCounts& ViolationDelta::EnsureGroup(const RuleStats& rs,
                                                         RuleDelta& rd,
                                                         std::uint64_t id) {
  for (std::size_t i = 0; i < rd.groups_live; ++i) {
    if (rd.groups[i].id == id) return rd.groups[i].counts;
  }
  if (rd.groups_live == rd.groups.size()) rd.groups.emplace_back();
  GroupSlot& slot = rd.groups[rd.groups_live++];
  slot.id = id;
  if ((id & kNovelBit) == 0) {
    // Copy-on-write from the base's dense storage; assign() into the
    // recycled slot reuses its counts capacity.
    slot.counts.CopyFrom(rs.groups[static_cast<std::size_t>(id)]);
  } else {
    slot.counts.Reset();
  }
  return slot.counts;
}

void ViolationDelta::RemoveRow(RuleId rule, RowId row,
                               std::uint64_t* prev_group) {
  *prev_group = kDeltaNoGroup;
  const RuleStats& rs = base_->stats_[static_cast<std::size_t>(rule)];
  RuleDelta& rd = EnsureDelta(rule);

  if (rs.is_constant) {
    if (!MatchesContext(rs, row)) return;
    *prev_group = 1;  // context signal for AddRow's key_unchanged path
    --rd.context_count;
    if (RowViolates(rs, rd, row)) {
      --rd.violations;
      --rd.violating_tuples;
    }
    SetRowViolates(rd, row, 0);
    return;
  }

  const std::uint64_t id = ResolveRowGroup(rs, rd, row);
  if (id == kDeltaNoGroup) return;  // out of context under the overlay
  --rd.context_count;

  GroupCounts& g = EnsureGroup(rs, rd, id);
  rd.violations -= g.PairViolations();
  rd.violating_tuples -= g.ViolatingTuples();
  g.Decrement(ValueAt(row, rs.rhs_attr));
  rd.violations += g.PairViolations();
  rd.violating_tuples += g.ViolatingTuples();

  SetRowGroup(rd, row, kDeltaNoGroup);
  *prev_group = id;
}

void ViolationDelta::AddRow(RuleId rule, RowId row, std::uint64_t prev_group,
                            bool key_unchanged) {
  const RuleStats& rs = base_->stats_[static_cast<std::size_t>(rule)];
  RuleDelta& rd = EnsureDelta(rule);

  if (rs.is_constant) {
    // key_unchanged ⇒ the written attr is outside X, so the context is
    // whatever RemoveRow just observed (signalled through prev_group).
    const bool in_context = key_unchanged ? prev_group != kDeltaNoGroup
                                          : MatchesContext(rs, row);
    if (!in_context) return;
    ++rd.context_count;
    const bool violates = ValueAt(row, rs.rhs_attr) != rs.rhs_const;
    SetRowViolates(rd, row, violates ? 1 : 0);
    if (violates) {
      ++rd.violations;
      ++rd.violating_tuples;
    }
    return;
  }

  std::uint64_t id;
  if (key_unchanged) {
    // The written attribute is outside X, so neither the context nor the
    // LHS key moved: the row re-enters the group RemoveRow took it from.
    if (prev_group == kDeltaNoGroup) return;  // was and stays out of context
    id = prev_group;
  } else {
    if (!MatchesContext(rs, row)) {
      // Record the departure explicitly so queries do not fall back to
      // the base's (possibly in-context) group mapping.
      SetRowGroup(rd, row, kDeltaNoGroup);
      return;
    }
    id = ResolveKeyGroup(rs, rd, row);
  }
  ++rd.context_count;

  GroupCounts& g = EnsureGroup(rs, rd, id);
  rd.violations -= g.PairViolations();
  rd.violating_tuples -= g.ViolatingTuples();
  g.Increment(ValueAt(row, rs.rhs_attr));
  rd.violations += g.PairViolations();
  rd.violating_tuples += g.ViolatingTuples();

  SetRowGroup(rd, row, id);
}

ValueId ViolationDelta::SetCell(RowId row, AttrId attr, ValueId value) {
  const ValueId old = ValueAt(row, attr);
  if (old == value) return old;
  const std::vector<RuleId>& affected = base_->rules().RulesMentioning(attr);
  // Same discipline as the base: retire the row's contribution under its
  // old values, land the write, re-add under the new values. RemoveRow
  // reports each rule's group so AddRow can skip re-resolving it when the
  // written attribute cannot change that rule's LHS key.
  group_hints_.resize(affected.size());
  for (std::size_t i = 0; i < affected.size(); ++i) {
    RemoveRow(affected[i], row, &group_hints_[i]);
  }

  const std::uint64_t cell = PackCell(row, attr);
  if (value == base_->table().id_at(row, attr)) {
    // Writing the base value back cancels the pending write (swap-remove;
    // per-cell entries are independent, so order is free).
    for (std::size_t i = 0; i < writes_.size(); ++i) {
      if (writes_[i].first == cell) {
        writes_[i] = writes_.back();
        writes_.pop_back();
        break;
      }
    }
  } else {
    SetFlat(writes_, cell, value);
  }

  for (std::size_t i = 0; i < affected.size(); ++i) {
    const RuleStats& rs = base_->stats_[static_cast<std::size_t>(affected[i])];
    AddRow(affected[i], row, group_hints_[i],
           /*key_unchanged=*/
           rs.attr_in_lhs[static_cast<std::size_t>(attr)] == 0);
  }
  return old;
}

void ViolationDelta::Merge(const ViolationDelta& other) {
  assert(other.base_ == base_);
  // Reserve up front so replaying a large overlay does not reallocate the
  // write list mid-merge (an upper bound: cancelling writes shrink it).
  writes_.reserve(writes_.size() + other.writes_.size());
  for (const auto& [cell, value] : other.writes_) {
    SetCell(static_cast<RowId>(cell >> 32),
            static_cast<AttrId>(cell & 0xFFFFFFFFULL), value);
  }
}

void ViolationDelta::Discard() {
  // The reusable-scratch contract: reset to transparent, keep every
  // allocation. clear() on the flat override vectors retains capacity;
  // group and novel-key slots are retired by live-count so their inner
  // vectors survive for the next staging round.
  writes_.clear();
  for (RuleId rule : touched_) {
    RuleDelta& rd = rules_[static_cast<std::size_t>(rule)];
    rd.violations = 0;
    rd.violating_tuples = 0;
    rd.context_count = 0;
    rd.touched = false;
    rd.row_violates.clear();
    rd.row_group.clear();
    rd.groups_live = 0;
    rd.novel_live = 0;
  }
  touched_.clear();
}

std::int64_t ViolationDelta::TotalViolations() const {
  std::int64_t total = base_->TotalViolations();
  for (RuleId rule : touched_) {
    total += rules_[static_cast<std::size_t>(rule)].violations;
  }
  return total;
}

std::int64_t ViolationDelta::TupleViolation(RowId row, RuleId rule) const {
  const RuleStats& rs = base_->stats_[static_cast<std::size_t>(rule)];
  const RuleDelta& rd = rules_[static_cast<std::size_t>(rule)];
  if (rs.is_constant) return RowViolates(rs, rd, row) ? 1 : 0;
  const std::uint64_t id = ResolveRowGroup(rs, rd, row);
  if (id == kDeltaNoGroup) return 0;
  const GroupCounts* g = FindGroup(rs, rd, id);
  if (g == nullptr) return 0;
  return g->total - g->CountOf(ValueAt(row, rs.rhs_attr));
}

bool ViolationDelta::IsDirty(RowId row) const {
  for (std::size_t i = 0; i < base_->stats_.size(); ++i) {
    if (TupleViolation(row, static_cast<RuleId>(i)) > 0) return true;
  }
  return false;
}

std::vector<RowId> ViolationDelta::DirtyRows() const {
  std::vector<RowId> out;
  for (std::size_t r = 0; r < base_->table().num_rows(); ++r) {
    if (IsDirty(static_cast<RowId>(r))) out.push_back(static_cast<RowId>(r));
  }
  return out;
}

// ---------------------------------------------------------------------------
// HypotheticalBatch
// ---------------------------------------------------------------------------
//
// Every formula below is the closed form of what ViolationDelta::SetCell
// computes by mutation: remove the row's contribution under its base
// values, land the write, re-add under the hypothetical values. The
// intermediates are the same integers the delta's Increment/Decrement
// bookkeeping produces, which is what makes the resulting benefit doubles
// bit-identical to the oracle path.

HypotheticalBatch::HypotheticalBatch(const ViolationIndex* base)
    : base_(base) {}

void HypotheticalBatch::Stage(AttrId attr, ValueId value) {
  if (attr == attr_ && value == value_ &&
      staged_version_ == base_->version()) {
    return;  // already staged against the current base state
  }
  attr_ = attr;
  value_ = value;
  staged_version_ = base_->version();
  staged_.clear();
  for (RuleId rule : base_->rules().RulesMentioning(attr)) {
    StagedRule sr;
    sr.rule = rule;
    sr.rs = &base_->stats_[static_cast<std::size_t>(rule)];
    sr.attr_in_lhs = sr.rs->attr_in_lhs[static_cast<std::size_t>(attr)] != 0;
    sr.attr_is_rhs = sr.rs->rhs_attr == attr;
    staged_.push_back(sr);
  }
}

bool HypotheticalBatch::HypMatchesContext(const RuleStats& rs,
                                          RowId row) const {
  for (std::size_t i = 0; i < rs.lhs_attrs.size(); ++i) {
    if (rs.lhs_consts[i] == kInvalidValueId) continue;
    const ValueId v = rs.lhs_attrs[i] == attr_
                          ? value_
                          : base_->table().id_at(row, rs.lhs_attrs[i]);
    if (v != rs.lhs_consts[i]) return false;
  }
  return true;
}

HypotheticalBatch::Effect HypotheticalBatch::Probe(std::size_t k, RowId row) {
  const StagedRule& sr = staged_[k];
  const RuleStats& rs = *sr.rs;
  const Table& table = base_->table();

  // Deltas relative to the base aggregates; Probe assumes an effective
  // write (base value at (row, attr) ≠ staged value — the IsNoOp contract).
  std::int64_t d_vio = 0;  // vio(D^rj) − vio(D)
  std::int64_t d_vt = 0;   // violating-tuple delta
  std::int64_t d_ctx = 0;  // |D(φ)| delta

  if (rs.is_constant) {
    if (!sr.attr_in_lhs) {
      // attr is the RHS only: the context cannot move. In context, the
      // row's violation flag flips to (value ≠ tp[A]).
      if (base_->MatchesContext(rs, row)) {
        const std::int64_t old_vio = rs.ViolatesFlag(row) ? 1 : 0;
        const std::int64_t new_vio = value_ != rs.rhs_const ? 1 : 0;
        d_vio = new_vio - old_vio;
        d_vt = d_vio;
      }
    } else {
      // attr sits in X (and possibly is also the RHS): both the context
      // and the violation flag are re-derived under hypothetical values.
      const std::int64_t old_ctx = base_->MatchesContext(rs, row) ? 1 : 0;
      const std::int64_t old_vio = rs.ViolatesFlag(row) ? 1 : 0;
      const bool new_ctx = HypMatchesContext(rs, row);
      std::int64_t new_vio = 0;
      if (new_ctx) {
        const ValueId rhs =
            sr.attr_is_rhs ? value_ : table.id_at(row, rs.rhs_attr);
        new_vio = rhs != rs.rhs_const ? 1 : 0;
      }
      d_vio = new_vio - old_vio;
      d_vt = d_vio;
      d_ctx = (new_ctx ? 1 : 0) - old_ctx;
    }
  } else if (!sr.attr_in_lhs) {
    // Variable rule, attr is the RHS: the row stays in its group (if any);
    // within it one b_old is swapped for the staged value. With group size
    // n, c_old = count(b_old), c_new = count(value): the pair-violation
    // sum n² − Σc² moves by 2(c_old − c_new) − 2, and the violating-tuple
    // count is n iff the group still holds ≥ 2 distinct values.
    const GroupId gid = rs.GroupIdOf(row);
    if (gid != kNoGroup) {
      const GroupCounts& g = rs.groups[static_cast<std::size_t>(gid)];
      const std::int64_t n = g.total;
      const std::int64_t c_old = g.CountOf(table.id_at(row, rs.rhs_attr));
      const std::int64_t c_new = g.CountOf(value_);
      d_vio = 2 * (c_old - c_new) - 2;
      const std::int64_t d0 = g.Distinct();
      const std::int64_t d_after =
          d0 - (c_old == 1 ? 1 : 0) + (c_new == 0 ? 1 : 0);
      d_vt = (d_after > 1 ? n : 0) - (d0 > 1 ? n : 0);
    }
  } else {
    // Variable rule, attr in X: the write moves the row's LHS key, so the
    // row leaves its current group and (context permitting) joins the
    // group of the hypothetical key — never the same group, since the key
    // differs at the written component.
    const ValueId b_rm = table.id_at(row, rs.rhs_attr);
    const GroupId gid = rs.GroupIdOf(row);
    if (gid != kNoGroup) {
      // Leave: group (n, Σc², d0 distinct) loses one b_rm. Pair
      // violations move by (n−1)² − (Σc² − 2c + 1) minus n² − Σc²,
      // i.e. 2(c − n).
      const GroupCounts& g = rs.groups[static_cast<std::size_t>(gid)];
      const std::int64_t n = g.total;
      const std::int64_t c = g.CountOf(b_rm);
      const std::int64_t d0 = g.Distinct();
      const std::int64_t d1 = d0 - (c == 1 ? 1 : 0);
      d_vio += 2 * (c - n);
      d_vt += (d1 > 1 ? n - 1 : 0) - (d0 > 1 ? n : 0);
      d_ctx -= 1;
    }
    if (HypMatchesContext(rs, row)) {
      d_ctx += 1;
      key_scratch_.resize(rs.lhs_attrs.size());
      for (std::size_t i = 0; i < rs.lhs_attrs.size(); ++i) {
        key_scratch_[i] = rs.lhs_attrs[i] == attr_
                              ? value_
                              : table.id_at(row, rs.lhs_attrs[i]);
      }
      if (const GroupId* found = rs.key_to_group.Find(key_scratch_)) {
        // Join: target group (n, Σc², d0) gains one b_add. Pair
        // violations move by 2(n − c). A miss means a novel singleton
        // group — zero pairs, one distinct value, nothing to add.
        const GroupCounts& g2 = rs.groups[static_cast<std::size_t>(*found)];
        const ValueId b_add = sr.attr_is_rhs ? value_ : b_rm;
        const std::int64_t n = g2.total;
        const std::int64_t c = g2.CountOf(b_add);
        const std::int64_t d0 = g2.Distinct();
        const std::int64_t d_after = d0 + (c == 0 ? 1 : 0);
        d_vio += 2 * (n - c);
        d_vt += (d_after > 1 ? n + 1 : 0) - (d0 > 1 ? n : 0);
      }
    }
  }

  Effect effect;
  effect.adjustment = d_vio;
  effect.satisfying =
      (rs.context_count + d_ctx) - (rs.violating_tuples + d_vt);
  return effect;
}

}  // namespace gdr
