#ifndef GDR_CFD_CFD_H_
#define GDR_CFD_CFD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "data/schema.h"
#include "util/result.h"

namespace gdr {

/// Dense index of a rule within a RuleSet.
using RuleId = std::int32_t;

inline constexpr RuleId kInvalidRuleId = -1;

/// One slot of a CFD pattern tuple tp: an attribute plus either a constant
/// from dom(attr) or the wildcard '-' (nullopt).
struct PatternCell {
  AttrId attr = kInvalidAttrId;
  std::optional<std::string> constant;  // nullopt means '-'

  bool is_constant() const { return constant.has_value(); }
};

/// A Conditional Functional Dependency in normal form: φ = (X → A, tp) with
/// a single RHS attribute (the paper's Appendix A.1). Multi-RHS rules are
/// split by RuleSet::AddRule.
///
/// φ is a *constant* CFD when tp[A] is a constant (violated by single
/// tuples) and a *variable* CFD when tp[A] = '-' (violated by tuple pairs,
/// like a standard FD restricted to the pattern context).
class Cfd {
 public:
  Cfd(std::string name, std::vector<PatternCell> lhs, PatternCell rhs)
      : name_(std::move(name)), lhs_(std::move(lhs)), rhs_(rhs) {}

  const std::string& name() const { return name_; }
  const std::vector<PatternCell>& lhs() const { return lhs_; }
  const PatternCell& rhs() const { return rhs_; }

  bool IsConstant() const { return rhs_.is_constant(); }
  bool IsVariable() const { return !IsConstant(); }

  /// True when `attr` appears in LHS(φ).
  bool LhsContains(AttrId attr) const;

  /// True when `attr` appears anywhere in the rule (X ∪ {A}).
  bool Mentions(AttrId attr) const {
    return rhs_.attr == attr || LhsContains(attr);
  }

  /// Renders the rule as e.g. "phi1: (ZIP=46360 -> CT=Michigan City)".
  std::string ToString(const Schema& schema) const;

  /// Renders the rule in the exact textual syntax AddRuleFromString
  /// parses, e.g. "ZIP=46360 -> CT=Michigan City" — the serialization the
  /// workload exporter writes to rules.txt. The caller is responsible for
  /// checking the constants survive the syntax (see RuleSurvivesText).
  std::string ToRuleText(const Schema& schema) const;

 private:
  std::string name_;
  std::vector<PatternCell> lhs_;
  PatternCell rhs_;
};

/// The rule base Σ. Owns normal-form CFDs addressed by dense RuleId.
class RuleSet {
 public:
  explicit RuleSet(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  std::size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }

  const Cfd& rule(RuleId id) const {
    return rules_[static_cast<std::size_t>(id)];
  }

  /// Adds a (possibly multi-RHS) rule, normalizing it into one stored Cfd
  /// per RHS attribute (named "<name>.1", "<name>.2", ... when split).
  /// Fails if an attribute id is out of range, the LHS is empty, an RHS
  /// attribute also appears in the LHS, the RHS is empty, or a stored rule
  /// already carries the (post-split) name.
  Status AddRule(std::string name, std::vector<PatternCell> lhs,
                 std::vector<PatternCell> rhs);

  /// Parses and adds one rule from a compact textual form:
  ///
  ///   "ZIP=46360 -> CT=Michigan City ; STT=IN"   (constant CFD, multi-RHS)
  ///   "STR, CT=Fort Wayne -> ZIP"                (variable CFD)
  ///
  /// LHS items are comma-separated, RHS items semicolon-separated. An item
  /// is "Attr" (wildcard) or "Attr=value"; values extend to the next
  /// delimiter with surrounding whitespace trimmed. Errors name the rule
  /// and the offending token (unknown attribute, empty item, missing
  /// arrow, duplicate name).
  Status AddRuleFromString(std::string name, std::string_view text);

  /// Ids of rules whose LHS or RHS mentions `attr`. Never returns nulls;
  /// result is ordered by RuleId.
  const std::vector<RuleId>& RulesMentioning(AttrId attr) const;

  /// All rule ids, [0, size()).
  std::vector<RuleId> AllRuleIds() const;

 private:
  Schema schema_;
  std::vector<Cfd> rules_;
  // attr -> rule ids mentioning it; rebuilt incrementally by AddRule.
  std::vector<std::vector<RuleId>> attr_to_rules_;
  // Stored (post-split) rule names, for duplicate rejection.
  std::unordered_set<std::string> names_;
  std::vector<RuleId> empty_;
};

/// True when `rule` round-trips through the textual syntax: its name is
/// non-empty, has no ':' / newline / surrounding whitespace, and does not
/// start with the comment marker '#'; and every mentioned attribute name
/// and pattern constant is free of the delimiters the parser splits on
/// (',', ';', '=', "->", newlines) and of surrounding whitespace (which
/// the parser trims away). The workload exporter checks this before
/// writing rules.txt.
bool RuleSurvivesText(const Cfd& rule, const Schema& schema,
                      std::string* offending_token);

}  // namespace gdr

#endif  // GDR_CFD_CFD_H_
