#ifndef GDR_CFD_VIOLATION_INDEX_H_
#define GDR_CFD_VIOLATION_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cfd/cfd.h"
#include "data/table.h"
#include "util/result.h"

namespace gdr {

/// Incrementally maintained violation statistics for a (Table, RuleSet)
/// pair. This is the performance workhorse of the library: the consistency
/// manager, the quality-loss metric (Eq. 3), and the VOI benefit estimator
/// (Eq. 6) all reduce to O(1)/O(#affected-rules) queries against it.
///
/// Semantics implemented (paper Appendix A.1 and Definition 1):
///  * constant CFD φ = (X → A, tp), tp[A] = a:
///      t violates φ  iff  t[X] ≍ tp[X] and t[A] ≠ a;    vio(t, φ) = 1.
///  * variable CFD (tp[A] = '-'):
///      t violates φ with t' iff t[X] = t'[X] ≍ tp[X] and t[A] ≠ t'[A];
///      vio(t, φ) = |{t' violating φ with t}|.
///
/// Derived aggregates maintained per rule:
///  * vio(D, {φ})              — Definition 1 sum over tuples,
///  * |D ⊨ φ|                  — number of tuples not violating φ,
///  * |D(φ)|                   — tuples in φ's context (t[X] ≍ tp[X]),
///    which supplies the default rule weight w_φ = |D(φ)|/|D| of Eq. 3.
///
/// Mutations go through ApplyCellChange, which updates the table cell and
/// all affected per-rule structures. Hypothetical databases D^rj are *not*
/// evaluated by mutating this index: ViolationDelta (below) overlays
/// pending cell writes on a read-only base, so VOI ranking can score many
/// hypotheticals concurrently against one shared immutable index.
///
/// The index holds a non-owning pointer to the table; the table must
/// outlive the index, and all mutations while the index is alive must go
/// through ApplyCellChange.
class ViolationIndex {
 public:
  /// Builds the index with a full scan: O(#rows * #rules * arity).
  ViolationIndex(Table* table, const RuleSet* rules);

  ViolationIndex(const ViolationIndex&) = delete;
  ViolationIndex& operator=(const ViolationIndex&) = delete;

  const Table& table() const { return *table_; }
  const RuleSet& rules() const { return *rules_; }

  /// Sets table cell (row, attr) to `value` and updates every rule
  /// mentioning `attr`. Returns the previous value id.
  ValueId ApplyCellChange(RowId row, AttrId attr, ValueId value);

  /// Monotonic counter bumped by every effective cell change; consumers
  /// (e.g., the update generator's projection caches) use it to detect
  /// staleness without subscribing to change events.
  std::uint64_t version() const { return version_; }

  /// String-value convenience overload (interns `value` first).
  ValueId ApplyCellChange(RowId row, AttrId attr, std::string_view value);

  /// vio(t, {φ}) of Definition 1.
  std::int64_t TupleViolation(RowId row, RuleId rule) const;

  /// True when t violates φ.
  bool Violates(RowId row, RuleId rule) const {
    return TupleViolation(row, rule) > 0;
  }

  /// True when t violates any rule of Σ.
  bool IsDirty(RowId row) const;

  /// Rules currently violated by t (the paper's t.vioRuleList), ordered by
  /// RuleId.
  std::vector<RuleId> ViolatedRules(RowId row) const;

  /// All currently dirty rows, ascending.
  std::vector<RowId> DirtyRows() const;

  /// vio(D, {φ}) — total violations charged to rule φ.
  std::int64_t RuleViolations(RuleId rule) const {
    return stats_[static_cast<std::size_t>(rule)].violations;
  }

  /// vio(D, Σ) — Definition 1 aggregate over all rules.
  std::int64_t TotalViolations() const;

  /// |D ⊨ φ| — tuples in φ's context that satisfy φ (t[X] ≍ tp[X] and no
  /// violation). The paper's §4.1 worked example fixes this reading: on
  /// the 8-tuple instance it uses |D^rj ⊨ φ1| = 1, which is the satisfying
  /// count *within* φ1's context, not among all tuples. The context
  /// restriction is what keeps Eq. 6 comparable across rules whose
  /// contexts differ by orders of magnitude.
  std::int64_t SatisfyingCount(RuleId rule) const {
    const RuleStats& rs = stats_[static_cast<std::size_t>(rule)];
    return rs.context_count - rs.violating_tuples;
  }

  /// Number of tuples currently violating φ.
  std::int64_t ViolatingCount(RuleId rule) const {
    return stats_[static_cast<std::size_t>(rule)].violating_tuples;
  }

  /// |D(φ)| — tuples in the rule's context.
  std::int64_t ContextCount(RuleId rule) const {
    return stats_[static_cast<std::size_t>(rule)].context_count;
  }

  /// Interned pattern constant tp[A] of a constant rule; kInvalidValueId
  /// for variable rules.
  ValueId RhsConstant(RuleId rule) const {
    return stats_[static_cast<std::size_t>(rule)].rhs_const;
  }

  /// For a variable rule: rows t' that currently violate `rule` together
  /// with `row` (t'[X] = t[X] ≍ tp[X], t'[A] ≠ t[A]). Empty for constant
  /// rules or non-violating rows. Cost: O(group size) scan over the rows
  /// sharing t's LHS key.
  std::vector<RowId> ViolationPartners(RowId row, RuleId rule) const;

  /// Rows in the same variable-rule LHS group as `row` (including `row`
  /// itself when it matches the context); empty for constant rules or rows
  /// outside the context. Used by the update generator (scenario 2).
  std::vector<RowId> GroupMembers(RowId row, RuleId rule) const;

  /// Number of rules `row` currently violates.
  std::int64_t ViolatedRuleCount(RowId row) const;

  /// Number of rules `row` *would* violate if cell (row, attr) held
  /// `value` — a read-only hypothetical (no mutation, no version bump).
  /// Used as a consistency feature by the learning component.
  std::int64_t HypotheticalViolatedRuleCount(RowId row, AttrId attr,
                                             ValueId value) const;

  /// Size of `row`'s LHS group under a variable rule (0 when the rule is
  /// constant or the row is outside the context).
  std::int64_t GroupTotal(RowId row, RuleId rule) const;

  /// How many rows of `row`'s LHS group currently hold `value` in the
  /// rule's RHS attribute (0 outside the context / for constant rules).
  /// GroupTotal and GroupRhsValueCount supply the evidence-support factor
  /// of the update evaluation function.
  std::int64_t GroupRhsValueCount(RowId row, RuleId rule,
                                  ValueId value) const;

 private:
  // LHS key of a variable rule: the row's values of X, in rule order.
  using GroupKey = std::vector<ValueId>;

  struct GroupKeyHash {
    std::size_t operator()(const GroupKey& key) const;
  };

  // Per-LHS-group tallies for a variable rule. With total tuples n and
  // per-RHS-value counts c_a: pair violations within the group are
  // n^2 - sum(c_a^2) (each ordered pair with differing RHS), and the number
  // of violating tuples is n when the group has >= 2 distinct RHS values,
  // else 0.
  struct Group {
    std::int64_t total = 0;
    std::int64_t sum_sq = 0;  // sum over a of c_a^2
    std::unordered_map<ValueId, std::int64_t> counts;

    std::int64_t PairViolations() const { return total * total - sum_sq; }
    std::int64_t ViolatingTuples() const {
      return counts.size() > 1 ? total : 0;
    }
  };

  // Precomputed, table-bound form of one rule plus its live aggregates.
  struct RuleStats {
    bool is_constant = false;
    std::vector<AttrId> lhs_attrs;
    // Interned constants aligned with lhs_attrs; kInvalidValueId = wildcard.
    std::vector<ValueId> lhs_consts;
    AttrId rhs_attr = kInvalidAttrId;
    ValueId rhs_const = kInvalidValueId;  // constant rules only

    // Aggregates (all rules).
    std::int64_t violations = 0;        // vio(D, {φ})
    std::int64_t violating_tuples = 0;  // |D| - |D ⊨ φ|
    std::int64_t context_count = 0;     // |D(φ)|

    // Constant rules: per-row violation flag.
    std::vector<std::uint8_t> row_violates;

    // Variable rules: LHS-group tallies and per-group row membership. The
    // membership lists make partner queries possible without a table scan.
    std::unordered_map<GroupKey, Group, GroupKeyHash> groups;
    std::unordered_map<GroupKey, std::vector<RowId>, GroupKeyHash> members;
  };

  // True when row matches the rule's LHS pattern (t[X] ≍ tp[X]).
  bool MatchesContext(const RuleStats& rs, RowId row) const;
  GroupKey KeyFor(const RuleStats& rs, RowId row) const;

  // Removes/adds `row`'s contribution to `rs` using the row's *current*
  // table values. ApplyCellChange removes with old values, mutates the
  // table, then re-adds.
  void RemoveRow(RuleStats& rs, RowId row);
  void AddRow(RuleStats& rs, RowId row);

  friend class ViolationDelta;

  Table* table_;
  const RuleSet* rules_;
  std::vector<RuleStats> stats_;
  std::uint64_t version_ = 0;
};

/// A cheap, copyable overlay over an immutable ViolationIndex: pending
/// cell writes plus per-rule violation-count adjustments resolved against
/// the base. This is how hypothetical databases D^rj are evaluated —
/// staging a cell write into a delta never touches the base index or its
/// table, so any number of deltas can be evaluated concurrently against
/// one shared base (the parallel-VOI contract).
///
/// Resolution semantics: every query answers as if the pending writes had
/// been applied to the base table. The arithmetic mirrors the base's
/// incremental maintenance exactly (remove-with-old-values /
/// add-with-new-values per affected rule), with variable-rule LHS groups
/// copied on first touch, so delta aggregates are bit-identical to an
/// index rebuilt from scratch over the overlaid table.
///
/// The base must outlive the delta and must not be mutated while deltas
/// derived from it are in use (a base ApplyCellChange invalidates them;
/// `base_version()` records the version the delta was resolved against).
class ViolationDelta {
 public:
  explicit ViolationDelta(const ViolationIndex* base);

  ViolationDelta(const ViolationDelta&) = default;
  ViolationDelta& operator=(const ViolationDelta&) = default;
  ViolationDelta(ViolationDelta&&) = default;
  ViolationDelta& operator=(ViolationDelta&&) = default;

  const ViolationIndex& base() const { return *base_; }

  /// ViolationIndex::version() of the base at construction; a differing
  /// live value means this delta is stale.
  std::uint64_t base_version() const { return base_version_; }

  /// Overlay-aware cell read: the pending write when one exists, the base
  /// table cell otherwise.
  ValueId ValueAt(RowId row, AttrId attr) const;

  /// Stages `value` into cell (row, attr) and updates every affected
  /// rule's adjustments. Returns the previous overlay value. Staging a
  /// cell back to its base value cancels the pending write.
  ValueId SetCell(RowId row, AttrId attr, ValueId value);

  /// Replays `other`'s pending writes on top of this overlay (both deltas
  /// must share the same base). Cell-state semantics: after the merge,
  /// every cell `other` has a pending write for reads `other`'s value.
  void Merge(const ViolationDelta& other);

  /// Drops all pending state; the delta reads as the base again.
  void Discard();

  /// Number of cells with a pending write.
  std::size_t pending_writes() const { return writes_.size(); }
  bool empty() const { return writes_.empty(); }

  // -- Aggregate queries, all resolved against base + adjustments. ------

  /// vio(D', {φ}) of the overlaid database.
  std::int64_t RuleViolations(RuleId rule) const;
  /// Tuples currently violating φ in the overlaid database.
  std::int64_t ViolatingCount(RuleId rule) const;
  /// |D'(φ)| of the overlaid database.
  std::int64_t ContextCount(RuleId rule) const;
  /// |D' ⊨ φ| (in-context satisfying tuples) of the overlaid database.
  std::int64_t SatisfyingCount(RuleId rule) const {
    return ContextCount(rule) - ViolatingCount(rule);
  }
  /// vio(D', Σ).
  std::int64_t TotalViolations() const;

  /// vio(t, {φ}) under the overlay.
  std::int64_t TupleViolation(RowId row, RuleId rule) const;
  bool Violates(RowId row, RuleId rule) const {
    return TupleViolation(row, rule) > 0;
  }
  bool IsDirty(RowId row) const;
  /// All dirty rows of the overlaid database, ascending (O(rows × rules);
  /// diagnostic/testing use).
  std::vector<RowId> DirtyRows() const;

 private:
  using RuleStats = ViolationIndex::RuleStats;
  using GroupKey = ViolationIndex::GroupKey;
  using Group = ViolationIndex::Group;

  // Per-rule overlay state: adjustments relative to the base aggregates,
  // sparse per-row violation-flag overrides (constant rules), and
  // copy-on-write LHS groups holding *absolute* post-overlay tallies
  // (variable rules). Membership lists are not overlaid — no delta query
  // needs partner enumeration.
  struct RuleDelta {
    std::int64_t violations = 0;
    std::int64_t violating_tuples = 0;
    std::int64_t context_count = 0;
    std::unordered_map<RowId, std::uint8_t> row_violates;
    std::unordered_map<GroupKey, Group, ViolationIndex::GroupKeyHash> groups;
  };

  static std::uint64_t PackCell(RowId row, AttrId attr) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row))
            << 32) |
           static_cast<std::uint32_t>(attr);
  }

  const RuleDelta* FindDelta(RuleId rule) const;
  RuleDelta& EnsureDelta(RuleId rule);

  bool MatchesContext(const RuleStats& rs, RowId row) const;
  GroupKey KeyFor(const RuleStats& rs, RowId row) const;
  bool RowViolates(const RuleStats& rs, const RuleDelta* rd, RowId row) const;
  const Group* FindGroup(const RuleStats& rs, const RuleDelta* rd,
                         const GroupKey& key) const;
  Group& EnsureGroup(const RuleStats& rs, RuleDelta& rd, const GroupKey& key);

  // Mirror ViolationIndex::{Remove,Add}Row against the overlay state;
  // RemoveRow must run before the pending write lands, AddRow after.
  void RemoveRow(RuleId rule, RowId row);
  void AddRow(RuleId rule, RowId row);

  const ViolationIndex* base_;
  std::uint64_t base_version_ = 0;
  std::unordered_map<std::uint64_t, ValueId> writes_;
  std::unordered_map<RuleId, RuleDelta> rules_;
};

}  // namespace gdr

#endif  // GDR_CFD_VIOLATION_INDEX_H_
