#ifndef GDR_CFD_VIOLATION_INDEX_H_
#define GDR_CFD_VIOLATION_INDEX_H_

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cfd/cfd.h"
#include "data/table.h"
#include "util/flat_table.h"
#include "util/result.h"

namespace gdr {

/// Dense index of an interned LHS group within one variable rule's group
/// storage. Group ids are per-rule and recycled through a free list when a
/// group empties, so they are only meaningful against the index's current
/// state — never persist them across mutations.
using GroupId = std::int32_t;

inline constexpr GroupId kNoGroup = -1;

/// Incrementally maintained violation statistics for a (Table, RuleSet)
/// pair. This is the performance workhorse of the library: the consistency
/// manager, the quality-loss metric (Eq. 3), and the VOI benefit estimator
/// (Eq. 6) all reduce to O(1)/O(#affected-rules) queries against it.
///
/// Semantics implemented (paper Appendix A.1 and Definition 1):
///  * constant CFD φ = (X → A, tp), tp[A] = a:
///      t violates φ  iff  t[X] ≍ tp[X] and t[A] ≠ a;    vio(t, φ) = 1.
///  * variable CFD (tp[A] = '-'):
///      t violates φ with t' iff t[X] = t'[X] ≍ tp[X] and t[A] ≠ t'[A];
///      vio(t, φ) = |{t' violating φ with t}|.
///
/// Derived aggregates maintained per rule:
///  * vio(D, {φ})              — Definition 1 sum over tuples,
///  * |D ⊨ φ|                  — number of tuples not violating φ,
///  * |D(φ)|                   — tuples in φ's context (t[X] ≍ tp[X]),
///    which supplies the default rule weight w_φ = |D(φ)|/|D| of Eq. 3.
///
/// Data layout (the hot-path flattening): each variable rule interns its
/// live LHS groups into dense GroupIds. A row → GroupId flat vector makes
/// "which group is t in" a single array read — no key materialization, no
/// hashing — and doubles as the context test (kNoGroup ⇔ t[X] !≍ tp[X]).
/// Group tallies live in a dense vector recycled through a free list, with
/// per-RHS-value counts stored as a sorted (ValueId, count) small-vector
/// (groups overwhelmingly hold 1–3 distinct RHS values). Membership lists
/// are keyed by GroupId in a parallel vector. The key → GroupId hash map
/// survives, but only the mutation path (AddRow) and hypothetical-key
/// queries consult it.
///
/// Mutations go through ApplyCellChange, which updates the table cell and
/// all affected per-rule structures. Hypothetical databases D^rj are *not*
/// evaluated by mutating this index: ViolationDelta (below) overlays
/// pending cell writes on a read-only base, so VOI ranking can score many
/// hypotheticals concurrently against one shared immutable index.
///
/// The index holds a non-owning pointer to the table; the table must
/// outlive the index, and all mutations while the index is alive must go
/// through ApplyCellChange.
class ViolationIndex {
 public:
  /// Builds the index with a full scan: O(#rows * #rules * arity).
  ViolationIndex(Table* table, const RuleSet* rules);

  ViolationIndex(const ViolationIndex&) = delete;
  ViolationIndex& operator=(const ViolationIndex&) = delete;

  const Table& table() const { return *table_; }
  const RuleSet& rules() const { return *rules_; }

  /// Sets table cell (row, attr) to `value` and updates every rule
  /// mentioning `attr`. Returns the previous value id.
  ValueId ApplyCellChange(RowId row, AttrId attr, ValueId value);

  /// Monotonic counter bumped by every effective cell change; consumers
  /// (e.g., the update generator's projection caches) use it to detect
  /// staleness without subscribing to change events.
  std::uint64_t version() const { return version_; }

  /// String-value convenience overload (interns `value` first).
  ValueId ApplyCellChange(RowId row, AttrId attr, std::string_view value);

  /// Streaming ingestion: appends one row to the table and indexes it
  /// incrementally — the new row joins its LHS group (or mints one,
  /// recycling a free-listed slot) per variable rule, and the constant-rule
  /// bitmaps grow in place. O(#rules × arity) per row, independent of
  /// table size; aggregates are maintained exactly, so the result is
  /// bit-identical to rebuilding the index over the grown table (the
  /// streaming differential suite pins this). Returns the new RowId.
  /// Bumps version(): outstanding ViolationDeltas become stale.
  Result<RowId> AppendRow(const std::vector<std::string>& values);

  /// Batch variant: appends and indexes `rows` in order, returning the
  /// first new RowId (the batch occupies [first, first + rows.size())).
  /// All-or-nothing: every row's arity is validated up front, and on
  /// failure neither the table nor the index has changed. Fails on an
  /// empty batch. One version() bump per call.
  Result<RowId> AppendRows(const std::vector<std::vector<std::string>>& rows);

  /// vio(t, {φ}) of Definition 1.
  std::int64_t TupleViolation(RowId row, RuleId rule) const;

  /// True when t violates φ.
  bool Violates(RowId row, RuleId rule) const {
    return TupleViolation(row, rule) > 0;
  }

  /// True when t violates any rule of Σ.
  bool IsDirty(RowId row) const;

  /// Rules currently violated by t (the paper's t.vioRuleList), ordered by
  /// RuleId.
  std::vector<RuleId> ViolatedRules(RowId row) const;

  /// All currently dirty rows, ascending.
  std::vector<RowId> DirtyRows() const;

  /// vio(D, {φ}) — total violations charged to rule φ.
  std::int64_t RuleViolations(RuleId rule) const {
    return stats_[static_cast<std::size_t>(rule)].violations;
  }

  /// vio(D, Σ) — Definition 1 aggregate over all rules.
  std::int64_t TotalViolations() const;

  /// |D ⊨ φ| — tuples in φ's context that satisfy φ (t[X] ≍ tp[X] and no
  /// violation). The paper's §4.1 worked example fixes this reading: on
  /// the 8-tuple instance it uses |D^rj ⊨ φ1| = 1, which is the satisfying
  /// count *within* φ1's context, not among all tuples. The context
  /// restriction is what keeps Eq. 6 comparable across rules whose
  /// contexts differ by orders of magnitude.
  std::int64_t SatisfyingCount(RuleId rule) const {
    const RuleStats& rs = stats_[static_cast<std::size_t>(rule)];
    return rs.context_count - rs.violating_tuples;
  }

  /// Number of tuples currently violating φ.
  std::int64_t ViolatingCount(RuleId rule) const {
    return stats_[static_cast<std::size_t>(rule)].violating_tuples;
  }

  /// |D(φ)| — tuples in the rule's context.
  std::int64_t ContextCount(RuleId rule) const {
    return stats_[static_cast<std::size_t>(rule)].context_count;
  }

  /// Interned pattern constant tp[A] of a constant rule; kInvalidValueId
  /// for variable rules.
  ValueId RhsConstant(RuleId rule) const {
    return stats_[static_cast<std::size_t>(rule)].rhs_const;
  }

  /// For a variable rule: rows t' that currently violate `rule` together
  /// with `row` (t'[X] = t[X] ≍ tp[X], t'[A] ≠ t[A]), ascending. Empty for
  /// constant rules or non-violating rows. Cost: O(group size) scan over
  /// the group's membership list.
  std::vector<RowId> ViolationPartners(RowId row, RuleId rule) const;

  /// Allocation-free variant: appends the partners to `out` in membership
  /// order (unsorted — callers that need the sorted contract use
  /// ViolationPartners). `out` is not cleared.
  void AppendViolationPartners(RowId row, RuleId rule,
                               std::vector<RowId>* out) const;

  /// Rows in the same variable-rule LHS group as `row` (including `row`
  /// itself when it matches the context), ascending; empty for constant
  /// rules or rows outside the context. Used by the update generator
  /// (scenario 2).
  std::vector<RowId> GroupMembers(RowId row, RuleId rule) const;

  /// Number of rules `row` currently violates.
  std::int64_t ViolatedRuleCount(RowId row) const;

  /// Number of rules `row` *would* violate if cell (row, attr) held
  /// `value` — a read-only hypothetical (no mutation, no version bump).
  /// Used as a consistency feature by the learning component.
  std::int64_t HypotheticalViolatedRuleCount(RowId row, AttrId attr,
                                             ValueId value) const;

  /// Size of `row`'s LHS group under a variable rule (0 when the rule is
  /// constant or the row is outside the context).
  std::int64_t GroupTotal(RowId row, RuleId rule) const;

  /// How many rows of `row`'s LHS group currently hold `value` in the
  /// rule's RHS attribute (0 outside the context / for constant rules).
  /// GroupTotal and GroupRhsValueCount supply the evidence-support factor
  /// of the update evaluation function.
  std::int64_t GroupRhsValueCount(RowId row, RuleId rule,
                                  ValueId value) const;

 private:
  // LHS key of a variable rule: the row's values of X, in rule order. Only
  // the mutation path and hypothetical-key lookups materialize one.
  using GroupKey = std::vector<ValueId>;

  struct GroupKeyHash {
    std::size_t operator()(const GroupKey& key) const;
  };

  // Per-LHS-group tallies. With total tuples n and per-RHS-value counts
  // c_a: pair violations within the group are n^2 - sum(c_a^2) (each
  // ordered pair with differing RHS), and the number of violating tuples
  // is n when the group has >= 2 distinct RHS values, else 0. The counts
  // are laid out SoA — parallel sorted values[] / counts[] arrays — so the
  // CountOf scan is a straight-line predicated pass over a contiguous
  // ValueId array (no pair-stride gather, no early-exit branch) that the
  // auto-vectorizer handles, and copies/resets are flat array runs.
  // Groups overwhelmingly hold 1–3 distinct RHS values, so the layout wins
  // on scan shape, not size. GroupCounts is the tally core shared with
  // ViolationDelta's overlay groups and HypotheticalBatch's closed-form
  // probes (neither has use for the owning key).
  struct GroupCounts {
    std::int64_t total = 0;
    std::int64_t sum_sq = 0;  // sum over a of c_a^2
    std::vector<ValueId> values;       // distinct RHS values, ascending
    std::vector<std::int64_t> counts;  // aligned with values; all > 0

    std::int64_t PairViolations() const { return total * total - sum_sq; }
    std::int64_t ViolatingTuples() const {
      return values.size() > 1 ? total : 0;
    }
    std::int64_t Distinct() const {
      return static_cast<std::int64_t>(values.size());
    }

    std::int64_t CountOf(ValueId value) const {
      // Each value appears at most once, so the predicated sum *is* its
      // count (0 when absent). Deliberately no early exit: at the 1–3
      // distinct values groups typically hold, the branchless form beats
      // the compare-and-break loop and vectorizes. The mask-and form
      // (-(v == value) & count, i.e. all-ones or all-zeros mask) compiles
      // to straight-line compare/and/add over the two contiguous arrays
      // with no select per lane; BM_CountOfScan in micro_substrates pins
      // the per-element cost so a codegen regression shows up as numbers,
      // not as a missed inspection.
      const ValueId* vs = values.data();
      const std::int64_t* cs = counts.data();
      const std::size_t n = values.size();
      std::int64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        c += -static_cast<std::int64_t>(vs[i] == value) & cs[i];
      }
      return c;
    }

    /// counts[value] += 1 and maintains sum_sq; keeps both arrays sorted.
    void Increment(ValueId value) {
      std::size_t i = 0;
      while (i < values.size() && values[i] < value) ++i;
      if (i == values.size() || values[i] != value) {
        values.insert(values.begin() + static_cast<std::ptrdiff_t>(i), value);
        counts.insert(counts.begin() + static_cast<std::ptrdiff_t>(i), 0);
      }
      sum_sq += 2 * counts[i] + 1;
      ++counts[i];
      ++total;
    }

    /// counts[value] -= 1 and maintains sum_sq; erases exhausted entries.
    /// The value must be present with a positive count — Decrement is only
    /// reachable through remove-paths for rows previously added.
    void Decrement(ValueId value) {
      std::size_t i = 0;
      while (i < values.size() && values[i] != value) ++i;
      assert(i < values.size() && counts[i] > 0);
      sum_sq -= 2 * counts[i] - 1;
      --counts[i];
      if (counts[i] == 0) {
        values.erase(values.begin() + static_cast<std::ptrdiff_t>(i));
        counts.erase(counts.begin() + static_cast<std::ptrdiff_t>(i));
      }
      --total;
    }

    void Reset() {
      total = 0;
      sum_sq = 0;
      values.clear();  // clear() keeps capacity for slot reuse
      counts.clear();
    }

    void CopyFrom(const GroupCounts& other) {
      total = other.total;
      sum_sq = other.sum_sq;
      values.assign(other.values.begin(), other.values.end());
      counts.assign(other.counts.begin(), other.counts.end());
    }
  };

  struct Group : GroupCounts {
    GroupKey key;  // owning copy, for key_to_group erasure on retirement
  };

  // Precomputed, table-bound form of one rule plus its live aggregates.
  struct RuleStats {
    bool is_constant = false;
    std::vector<AttrId> lhs_attrs;
    // Interned constants aligned with lhs_attrs; kInvalidValueId = wildcard.
    std::vector<ValueId> lhs_consts;
    // Flat attr → "in X" flags (sized to the schema) so the overlay's
    // write path can test LHS membership without scanning lhs_attrs.
    std::vector<std::uint8_t> attr_in_lhs;
    AttrId rhs_attr = kInvalidAttrId;
    ValueId rhs_const = kInvalidValueId;  // constant rules only

    // Aggregates (all rules).
    std::int64_t violations = 0;        // vio(D, {φ})
    std::int64_t violating_tuples = 0;  // |D| - |D ⊨ φ|
    std::int64_t context_count = 0;     // |D(φ)|

    // Constant rules: per-row violation flag (1 ⇔ in context AND
    // violating, so queries need no separate context test).
    std::vector<std::uint8_t> row_violates;

    // Variable rules: the flattened group layout. row_group is the query
    // hot path (one array read); groups/members are dense storage indexed
    // by GroupId and recycled via free_groups; key_to_group serves the
    // mutation path and hypothetical-key lookups only. It is a flat
    // open-addressing table rather than std::unordered_map because the
    // hypothetical-key path (HypotheticalViolatedRuleCount, the delta's
    // ResolveKeyGroup, and every batched LHS-moving probe) makes it hot:
    // one contiguous probe run per lookup instead of a node chase.
    std::vector<GroupId> row_group;  // row -> GroupId, kNoGroup = no context
    std::vector<Group> groups;
    std::vector<std::vector<RowId>> members;
    std::vector<GroupId> free_groups;
    FlatTable<GroupKey, GroupId, GroupKeyHash> key_to_group;

    // Query-path accessors; bounds-guarded so rows appended to the table
    // but not yet indexed read as "outside the context" rather than UB.
    GroupId GroupIdOf(RowId row) const {
      const std::size_t r = static_cast<std::size_t>(row);
      return r < row_group.size() ? row_group[r] : kNoGroup;
    }
    bool ViolatesFlag(RowId row) const {
      const std::size_t r = static_cast<std::size_t>(row);
      return r < row_violates.size() && row_violates[r] != 0;
    }
  };

  // True when row matches the rule's LHS pattern (t[X] ≍ tp[X]).
  bool MatchesContext(const RuleStats& rs, RowId row) const;
  void BuildKey(const RuleStats& rs, RowId row, GroupKey* key) const;

  // Finds or creates the dense group slot for `row`'s current LHS key;
  // recycles retired slots through the free list.
  GroupId InternGroup(RuleStats& rs, RowId row);
  void RetireGroupIfEmpty(RuleStats& rs, GroupId gid);

  // Removes/adds `row`'s contribution to `rs` using the row's *current*
  // table values. ApplyCellChange removes with old values, mutates the
  // table, then re-adds.
  void RemoveRow(RuleStats& rs, RowId row);
  void AddRow(RuleStats& rs, RowId row);

  friend class ViolationDelta;
  friend class HypotheticalBatch;

  Table* table_;
  const RuleSet* rules_;
  std::vector<RuleStats> stats_;
  std::uint64_t version_ = 0;
  GroupKey key_scratch_;  // mutation-path scratch; queries never touch it

 public:
  /// Lightweight, non-owning handle to `row`'s LHS group under a variable
  /// rule: lets consumers that probe a group repeatedly (e.g. the update
  /// generator's evidence-support factors) resolve it once instead of per
  /// probe. Invalidated by any index mutation. An invalid view (constant
  /// rule / row outside the context) answers 0/empty.
  class GroupView {
   public:
    bool valid() const { return group_ != nullptr; }
    std::int64_t total() const { return group_ != nullptr ? group_->total : 0; }
    std::int64_t ValueCount(ValueId value) const {
      return group_ != nullptr ? group_->CountOf(value) : 0;
    }
    /// Membership list in internal (unsorted) order; empty when invalid.
    const std::vector<RowId>& rows() const {
      static const std::vector<RowId> kEmpty;
      return rows_ != nullptr ? *rows_ : kEmpty;
    }

   private:
    friend class ViolationIndex;
    GroupView(const Group* group, const std::vector<RowId>* rows)
        : group_(group), rows_(rows) {}
    const Group* group_ = nullptr;
    const std::vector<RowId>* rows_ = nullptr;
  };

  /// The group `row` belongs to under `rule`; invalid for constant rules
  /// and out-of-context rows. One array read.
  GroupView GroupOf(RowId row, RuleId rule) const {
    const RuleStats& rs = stats_[static_cast<std::size_t>(rule)];
    if (rs.is_constant) return GroupView(nullptr, nullptr);
    const GroupId gid = rs.GroupIdOf(row);
    if (gid == kNoGroup) return GroupView(nullptr, nullptr);
    return GroupView(&rs.groups[static_cast<std::size_t>(gid)],
                     &rs.members[static_cast<std::size_t>(gid)]);
  }

  /// Introspection for tests: live vs recycled group-slot accounting of a
  /// variable rule's dense storage.
  struct GroupStorageStats {
    std::size_t slots = 0;       // dense storage size (live + free)
    std::size_t free_slots = 0;  // retired, awaiting reuse
    std::size_t live_groups() const { return slots - free_slots; }
  };
  GroupStorageStats GroupStorage(RuleId rule) const {
    const RuleStats& rs = stats_[static_cast<std::size_t>(rule)];
    return {rs.groups.size(), rs.free_groups.size()};
  }
};

/// A cheap, copyable overlay over an immutable ViolationIndex: pending
/// cell writes plus per-rule violation-count adjustments resolved against
/// the base. This is how hypothetical databases D^rj are evaluated —
/// staging a cell write into a delta never touches the base index or its
/// table, so any number of deltas can be evaluated concurrently against
/// one shared base (the parallel-VOI contract).
///
/// Resolution semantics: every query answers as if the pending writes had
/// been applied to the base table. The arithmetic mirrors the base's
/// incremental maintenance exactly (remove-with-old-values /
/// add-with-new-values per affected rule), with variable-rule LHS groups
/// copied on first touch, so delta aggregates are bit-identical to an
/// index rebuilt from scratch over the overlaid table.
///
/// Layout mirrors the base's flattening: overlay group state is keyed by
/// integer delta-group ids (the base's dense GroupId, or a novel id for
/// LHS keys the base has never seen) instead of materialized key vectors,
/// and per-row overrides live in small unsorted vectors — at the one-or-
/// two staged writes of a VOI hypothetical these probe faster than any
/// hash map and copy as flat memcpy-able runs.
///
/// Reusable-scratch contract: Discard() resets the delta to transparent
/// while *keeping every allocation* (override vectors, copied group
/// tallies, novel-key slots). A loop that stages one hypothetical, reads
/// it, and Discard()s — the VOI ranking inner loop — therefore allocates
/// only on its first few iterations and is allocation-free at steady
/// state. Construct one delta per worker and reuse it; do not construct
/// per hypothetical.
///
/// The base must outlive the delta and must not be mutated while deltas
/// derived from it are in use (a base ApplyCellChange invalidates them;
/// `base_version()` records the version the delta was resolved against).
class ViolationDelta {
 public:
  explicit ViolationDelta(const ViolationIndex* base);

  ViolationDelta(const ViolationDelta&) = default;
  ViolationDelta& operator=(const ViolationDelta&) = default;
  ViolationDelta(ViolationDelta&&) = default;
  ViolationDelta& operator=(ViolationDelta&&) = default;

  const ViolationIndex& base() const { return *base_; }

  /// ViolationIndex::version() of the base at construction; a differing
  /// live value means this delta is stale.
  std::uint64_t base_version() const { return base_version_; }

  /// Overlay-aware cell read: the pending write when one exists, the base
  /// table cell otherwise.
  ValueId ValueAt(RowId row, AttrId attr) const;

  /// Stages `value` into cell (row, attr) and updates every affected
  /// rule's adjustments. Returns the previous overlay value. Staging a
  /// cell back to its base value cancels the pending write.
  ValueId SetCell(RowId row, AttrId attr, ValueId value);

  /// Replays `other`'s pending writes on top of this overlay (both deltas
  /// must share the same base). Cell-state semantics: after the merge,
  /// every cell `other` has a pending write for reads `other`'s value.
  /// Cost note: the flat overlay layout is designed for the few-write
  /// hypotheticals of VOI scoring, so Merge is O(W_other × W_merged) in
  /// pending writes — fine for combining small overlays, quadratic if
  /// both sides carry thousands of writes (re-sort the layout before
  /// reaching for it at that scale).
  void Merge(const ViolationDelta& other);

  /// Drops all pending state; the delta reads as the base again. Keeps
  /// every allocation (the reusable-scratch contract above).
  void Discard();

  /// Number of cells with a pending write.
  std::size_t pending_writes() const { return writes_.size(); }
  bool empty() const { return writes_.empty(); }

  // -- Aggregate queries, all resolved against base + adjustments. ------

  /// vio(D', {φ}) of the overlaid database.
  std::int64_t RuleViolations(RuleId rule) const {
    return base_->RuleViolations(rule) +
           rules_[static_cast<std::size_t>(rule)].violations;
  }
  /// vio(D', {φ}) − vio(D, {φ}): the overlay's adjustment alone. Lets the
  /// VOI hot loop test "did this rule's count move at all" with one read.
  std::int64_t RuleViolationAdjustment(RuleId rule) const {
    return rules_[static_cast<std::size_t>(rule)].violations;
  }
  /// Tuples currently violating φ in the overlaid database.
  std::int64_t ViolatingCount(RuleId rule) const {
    return base_->ViolatingCount(rule) +
           rules_[static_cast<std::size_t>(rule)].violating_tuples;
  }
  /// |D'(φ)| of the overlaid database.
  std::int64_t ContextCount(RuleId rule) const {
    return base_->ContextCount(rule) +
           rules_[static_cast<std::size_t>(rule)].context_count;
  }
  /// |D' ⊨ φ| (in-context satisfying tuples) of the overlaid database.
  std::int64_t SatisfyingCount(RuleId rule) const {
    return ContextCount(rule) - ViolatingCount(rule);
  }
  /// vio(D', Σ).
  std::int64_t TotalViolations() const;

  /// vio(t, {φ}) under the overlay.
  std::int64_t TupleViolation(RowId row, RuleId rule) const;
  bool Violates(RowId row, RuleId rule) const {
    return TupleViolation(row, rule) > 0;
  }
  bool IsDirty(RowId row) const;
  /// All dirty rows of the overlaid database, ascending (O(rows × rules);
  /// diagnostic/testing use).
  std::vector<RowId> DirtyRows() const;

 private:
  using RuleStats = ViolationIndex::RuleStats;
  using GroupKey = ViolationIndex::GroupKey;
  using GroupCounts = ViolationIndex::GroupCounts;

  // Delta-group id: the base's dense GroupId widened to uint64, or — for
  // LHS keys the base has never interned — kNovelBit | per-rule local id.
  static constexpr std::uint64_t kNovelBit = 1ull << 63;
  static constexpr std::uint64_t kDeltaNoGroup = ~0ull;

  // Copy-on-write overlay of one group's tallies. Slots are recycled by
  // live-count (not erased) so their counts vectors keep capacity across
  // Discard().
  struct GroupSlot {
    std::uint64_t id = kDeltaNoGroup;
    GroupCounts counts;
  };

  // Per-rule overlay state: adjustments relative to the base aggregates
  // plus small-vector overrides. `touched` gates the Discard() sweep.
  struct RuleDelta {
    std::int64_t violations = 0;
    std::int64_t violating_tuples = 0;
    std::int64_t context_count = 0;
    bool touched = false;
    // Constant rules: sparse per-row violation-flag overrides.
    std::vector<std::pair<RowId, std::uint8_t>> row_violates;
    // Variable rules: per-row delta-group override (kDeltaNoGroup = out of
    // context under the overlay). Rows without an entry resolve via the
    // base's row → GroupId vector.
    std::vector<std::pair<RowId, std::uint64_t>> row_group;
    // Copy-on-write group tallies; first groups_live slots are active.
    std::vector<GroupSlot> groups;
    std::size_t groups_live = 0;
    // Interned novel LHS keys; first novel_live slots are active.
    std::vector<GroupKey> novel_keys;
    std::size_t novel_live = 0;
  };

  static std::uint64_t PackCell(RowId row, AttrId attr) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row))
            << 32) |
           static_cast<std::uint32_t>(attr);
  }

  RuleDelta& EnsureDelta(RuleId rule);

  bool MatchesContext(const RuleStats& rs, RowId row) const;
  bool RowViolates(const RuleStats& rs, const RuleDelta& rd, RowId row) const;
  void SetRowViolates(RuleDelta& rd, RowId row, std::uint8_t flag);

  // Delta-group id of `row` under the overlay; kDeltaNoGroup when out of
  // context. Falls back to the base's row → GroupId vector for rows the
  // overlay never touched.
  std::uint64_t ResolveRowGroup(const RuleStats& rs, const RuleDelta& rd,
                                RowId row) const;
  void SetRowGroup(RuleDelta& rd, RowId row, std::uint64_t id);

  // Delta-group id for `row`'s overlay LHS key (interning a novel id if
  // the base has never seen the key).
  std::uint64_t ResolveKeyGroup(const RuleStats& rs, RuleDelta& rd, RowId row);

  const GroupCounts* FindGroup(const RuleStats& rs, const RuleDelta& rd,
                               std::uint64_t id) const;
  GroupCounts& EnsureGroup(const RuleStats& rs, RuleDelta& rd,
                           std::uint64_t id);

  // Mirror ViolationIndex::{Remove,Add}Row against the overlay state;
  // RemoveRow must run before the pending write lands, AddRow after.
  // RemoveRow reports through `prev_group` the group the row left
  // (variable rules) or whether the row was in context (constant rules:
  // 1 / kDeltaNoGroup); AddRow reuses the signal — skipping the context
  // test and key hash — when `key_unchanged` says the written attribute
  // sits outside the rule's LHS and so can move neither context nor key.
  void RemoveRow(RuleId rule, RowId row, std::uint64_t* prev_group);
  void AddRow(RuleId rule, RowId row, std::uint64_t prev_group,
              bool key_unchanged);

  const ViolationIndex* base_;
  std::uint64_t base_version_ = 0;
  // Pending writes as a flat (packed cell, value) list: at the one or two
  // staged writes of a hypothetical, scanning beats hashing.
  std::vector<std::pair<std::uint64_t, ValueId>> writes_;
  std::vector<RuleDelta> rules_;  // dense, one slot per rule
  std::vector<RuleId> touched_;   // rules with touched=true
  GroupKey key_scratch_;          // mutation-path scratch
  std::vector<std::uint64_t> group_hints_;  // SetCell Remove→Add handoff
};

/// Closed-form evaluator for batches of single-cell hypotheticals that
/// share one (attr, value) write target — exactly the shape of a VOI
/// update group, whose members differ only by row. Where ViolationDelta
/// answers "what does the overlaid database look like" by replaying the
/// base's incremental maintenance (copy-on-write group tallies, override
/// vectors, a Discard() sweep — all per update), HypotheticalBatch stages
/// the *shared* part once and answers each row's per-rule effect with pure
/// integer reads against the immutable base:
///
///   Stage(attr, value)   resolves the affected rules and their per-rule
///                        invariants (attr ∈ X?, attr = A?) — once per
///                        group instead of once per update.
///   Probe(k, row)        the k-th affected rule's violation-count
///                        adjustment and |D^rj ⊨ φ| under the write, from
///                        closed-form count arithmetic on the base's group
///                        tallies. No state is written (besides the key
///                        scratch), so nothing needs discarding.
///
/// The arithmetic mirrors ViolationDelta::SetCell's remove-then-add
/// discipline exactly — same integer intermediates, hence bit-identical
/// benefit doubles — and the differential suites pin it against that
/// oracle at every thread count.
///
/// Contract: Probe assumes the write is effective at the probed row
/// (base value ≠ staged value); callers test IsNoOp(row) first and short-
/// circuit to a zero benefit, matching the oracle's SetCell early return.
/// The base must outlive the batch and must not be mutated mid-probe;
/// Stage() revalidates against base->version(), so a stale staging is
/// refreshed on the next call. One batch per worker thread (the key
/// scratch makes Probe non-reentrant); copy/construct freely.
class HypotheticalBatch {
 public:
  explicit HypotheticalBatch(const ViolationIndex* base);

  const ViolationIndex& base() const { return *base_; }

  /// (Re)stages the batch for hypothetical writes of `value` into `attr`.
  /// A no-op when that exact target is already staged against the base's
  /// current version — the group-batched hot loop calls this per update
  /// and pays only once per group.
  void Stage(AttrId attr, ValueId value);

  AttrId staged_attr() const { return attr_; }
  ValueId staged_value() const { return value_; }

  /// Rules mentioning the staged attribute, in RulesMentioning order (the
  /// accumulation order every scoring path shares).
  std::size_t num_affected() const { return staged_.size(); }
  RuleId affected_rule(std::size_t k) const { return staged_[k].rule; }

  /// True when the base already holds the staged value at (row, attr): the
  /// write is a whole-row no-op and every rule effect is exactly zero.
  bool IsNoOp(RowId row) const {
    return base_->table().id_at(row, attr_) == value_;
  }

  struct Effect {
    std::int64_t adjustment = 0;  // vio(D^rj, {φ}) − vio(D, {φ})
    std::int64_t satisfying = 0;  // |D^rj ⊨ φ|
  };

  /// Effect of the staged write applied at `row` on affected rule k.
  /// Requires !IsNoOp(row) (see the class contract).
  Effect Probe(std::size_t k, RowId row);

  /// Hints the prefetcher at the per-rule row-indexed slots Probe will
  /// read for `row`: the row→GroupId entry of each staged variable rule
  /// and the violation flag of each staged constant rule. A group's
  /// updates touch scattered rows, so the batched scoring loop issues
  /// this for update j+1 while update j's closed forms execute. Pure
  /// hint — no correctness effect; a no-op before Stage() or on
  /// out-of-range rows.
  void PrefetchRow(RowId row) const {
#if defined(__GNUC__) || defined(__clang__)
    const std::size_t r = static_cast<std::size_t>(row);
    for (const StagedRule& sr : staged_) {
      const RuleStats& rs = *sr.rs;
      if (rs.is_constant) {
        if (r < rs.row_violates.size()) {
          __builtin_prefetch(rs.row_violates.data() + r);
        }
      } else if (r < rs.row_group.size()) {
        __builtin_prefetch(rs.row_group.data() + r);
      }
    }
#else
    (void)row;
#endif
  }

 private:
  using RuleStats = ViolationIndex::RuleStats;
  using GroupCounts = ViolationIndex::GroupCounts;
  using GroupKey = ViolationIndex::GroupKey;

  // Per-affected-rule facts that hold for every row of the batch.
  struct StagedRule {
    RuleId rule = 0;
    const RuleStats* rs = nullptr;
    bool attr_in_lhs = false;  // staged attr sits in the rule's X
    bool attr_is_rhs = false;  // staged attr is the rule's A
  };

  // True when `row` matches rs's LHS pattern with the staged write applied.
  bool HypMatchesContext(const RuleStats& rs, RowId row) const;

  const ViolationIndex* base_;
  std::uint64_t staged_version_ = ~0ull;  // never equals a live version()
  AttrId attr_ = kInvalidAttrId;
  ValueId value_ = kInvalidValueId;
  std::vector<StagedRule> staged_;
  GroupKey key_scratch_;  // LHS-moving probes build the hypothetical key here
};

}  // namespace gdr

#endif  // GDR_CFD_VIOLATION_INDEX_H_
