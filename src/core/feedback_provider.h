#ifndef GDR_CORE_FEEDBACK_PROVIDER_H_
#define GDR_CORE_FEEDBACK_PROVIDER_H_

#include <optional>

#include "data/table.h"
#include "repair/update.h"

namespace gdr {

/// The user of the GDR loop, as a synchronous (push-model) callback: the
/// loop blocks inside GetFeedback until an answer exists. This is the
/// legacy integration surface, kept for harnesses whose "user" can answer
/// inline — experiments implement it with a ground-truth oracle
/// (src/sim/oracle.h), and `GdrEngine::Run()` / `PumpSession()` pump a
/// pull-based GdrSession through it. Production deployments, where
/// feedback arrives asynchronously (a UI, a review queue, a network),
/// should drive `GdrSession` (core/session.h) directly instead of
/// implementing this interface.
class FeedbackProvider {
 public:
  virtual ~FeedbackProvider() = default;

  /// Feedback for one suggested update, given the current database state.
  virtual Feedback GetFeedback(const Table& table, const Update& update) = 0;

  /// Optionally volunteers the correct value for the update's cell
  /// (Section 4.2: "the user may also suggest a new value v' and GDR will
  /// consider it as a confirm feedback for ⟨t, A, v', 1⟩"). Consulted only
  /// after GetFeedback returned kReject. Default: no suggestion.
  virtual std::optional<std::string> SuggestValue(const Table& table,
                                                  const Update& update) {
    (void)table;
    (void)update;
    return std::nullopt;
  }
};

}  // namespace gdr

#endif  // GDR_CORE_FEEDBACK_PROVIDER_H_
