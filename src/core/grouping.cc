#include "core/grouping.h"

#include <sstream>

namespace gdr {

std::string UpdateGroup::ToString(const Table& table) const {
  std::ostringstream out;
  out << table.schema().attr_name(attr) << " := '"
      << table.dict(attr).ToString(value) << "' (" << updates.size()
      << " updates)";
  return out.str();
}

std::vector<UpdateGroup> GroupUpdates(const UpdatePool& pool) {
  // The group-major snapshot puts each (attr, value) group in one
  // contiguous run, so grouping is a single linear pass: a new group
  // starts exactly where the key changes. Output order — groups ascending
  // by (attr, value), updates ascending by row — matches the old
  // map-accumulation construction bit for bit.
  std::vector<UpdateGroup> out;
  for (const Update& update : pool.AllGroupedByValue()) {
    if (out.empty() || out.back().attr != update.attr ||
        out.back().value != update.value) {
      out.emplace_back();
      out.back().attr = update.attr;
      out.back().value = update.value;
    }
    out.back().updates.push_back(update);
  }
  return out;
}

}  // namespace gdr
