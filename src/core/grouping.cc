#include "core/grouping.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace gdr {

std::string UpdateGroup::ToString(const Table& table) const {
  std::ostringstream out;
  out << table.schema().attr_name(attr) << " := '"
      << table.dict(attr).ToString(value) << "' (" << updates.size()
      << " updates)";
  return out.str();
}

std::vector<UpdateGroup> GroupUpdates(const UpdatePool& pool) {
  std::map<std::pair<AttrId, ValueId>, UpdateGroup> grouped;
  for (const Update& update : pool.All()) {
    UpdateGroup& group = grouped[{update.attr, update.value}];
    group.attr = update.attr;
    group.value = update.value;
    group.updates.push_back(update);
  }
  std::vector<UpdateGroup> out;
  out.reserve(grouped.size());
  for (auto& [key, group] : grouped) {
    // pool.All() is (row, attr)-ordered, so updates are already row-sorted.
    out.push_back(std::move(group));
  }
  return out;
}

}  // namespace gdr
