#ifndef GDR_CORE_GROUPING_H_
#define GDR_CORE_GROUPING_H_

#include <string>
#include <vector>

#include "repair/update.h"
#include "repair/update_pool.h"

namespace gdr {

/// A group of candidate updates sharing contextual information — the
/// paper's grouping function: "tuples with the same update value in a given
/// attribute are grouped together" (Section 3). Presenting such groups
/// makes batch inspection easy for the user and gives the learner
/// correlated training examples.
struct UpdateGroup {
  AttrId attr = kInvalidAttrId;
  ValueId value = kInvalidValueId;
  std::vector<Update> updates;

  std::size_t size() const { return updates.size(); }

  /// "City := 'Michigan City' (3 updates)".
  std::string ToString(const Table& table) const;
};

/// Partitions the pool into (attribute, suggested value) groups.
/// Deterministic: groups ordered by (attr, value), updates within a group
/// by (row).
std::vector<UpdateGroup> GroupUpdates(const UpdatePool& pool);

}  // namespace gdr

#endif  // GDR_CORE_GROUPING_H_
