#ifndef GDR_CORE_VOI_H_
#define GDR_CORE_VOI_H_

#include <functional>
#include <span>
#include <vector>

#include "cfd/violation_index.h"
#include "core/grouping.h"
#include "util/perf_counters.h"

namespace gdr {

class ThreadPool;

/// Supplies the learned confirm probability p̃_j for an update: the
/// prediction probability of the user model once trained, falling back to
/// the repair score s_j before any feedback exists (Section 4.1, "User
/// Model"). Wired to LearnerBank::ConfirmProbability in the engine.
using ConfirmProbabilityFn = std::function<double(const Update&)>;

/// Group-batched form of the same contract: fills `out` (resized to the
/// span's length) with each update's p̃_j. Wired to
/// LearnerBank::ConfirmProbabilities in the engine; must be bit-identical
/// to calling the scalar fn per update — the learner_batch differential
/// suite enforces exactly that.
using ConfirmProbabilityBatchFn =
    std::function<void(std::span<const Update>, std::vector<double>*)>;

/// The VOI-based group ranking of Section 4.1. Computes the estimated
/// update benefit of acquiring feedback on a group c (Eq. 6):
///
///   E[g(c)] = Σ_φ w_φ  Σ_{r_j ∈ c}  p̃_j ·
///             (vio(D, {φ}) − vio(D^{r_j}, {φ})) / |D^{r_j} ⊨ φ|
///
/// D^{r_j} (the hypothetical database with r_j applied) is evaluated on a
/// ViolationDelta — an overlay staging the cell write against the
/// read-only shared index — so scoring never mutates shared state and any
/// number of hypotheticals can be evaluated concurrently. Rules not
/// mentioning the update's attribute contribute zero (their violation
/// counts cannot change) and are skipped.
///
/// A ranking pass evaluates one hypothetical per pooled update — tens of
/// thousands per Rank() on paper-scale workloads. Two implementations
/// exist behind ScoringMode:
///
///   kBatched (default)  all updates of one group share an (attr, value)
///       write target, so the group's context is staged once into a
///       HypotheticalBatch and each update's benefit is a closed-form
///       integer probe — no per-update delta staging, no copy-on-write
///       group tallies, no Discard() sweep.
///   kPerUpdateOracle    the PR 5 path: each hypothetical staged into a
///       reusable-scratch ViolationDelta. Kept as the oracle the batched
///       path is differentially pinned against (bit-identical scores AND
///       ranking order at every thread count).
///
/// When constructed with a ThreadPool, Rank() fans group evaluations out
/// across the workers. Scores are reduced into per-group slots and each
/// group's terms are accumulated in the same order as the serial path, so
/// ranking output is bit-identical for every thread count.
class VoiRanker {
 public:
  enum class ScoringMode {
    kBatched,          // group-batched closed-form probes (production)
    kPerUpdateOracle,  // per-update delta staging (differential oracle)
  };

  /// How the learner's p̃_j is obtained — the inference-side mirror of
  /// ScoringMode. kBatched routes each group through the
  /// ConfirmProbabilityBatchFn (one feature matrix + tree-at-a-time forest
  /// pass per group); kPerUpdateOracle calls the scalar fn per update.
  /// Both produce bit-identical probabilities, scores, and ranking order —
  /// the oracle exists for the differential suites and perf comparison.
  enum class InferenceMode {
    kBatched,
    kPerUpdateOracle,
  };

  /// `index` is read-only; `weights` must have one entry per rule (Eq. 3
  /// weights); `workers` of nullptr means serial ranking. Non-owning
  /// pointers.
  VoiRanker(const ViolationIndex* index, const std::vector<double>* weights,
            ThreadPool* workers = nullptr,
            ScoringMode mode = ScoringMode::kBatched);

  ScoringMode scoring_mode() const { return mode_; }
  void set_scoring_mode(ScoringMode mode) { mode_ = mode; }

  InferenceMode inference_mode() const { return inference_; }
  void set_inference_mode(InferenceMode mode) { inference_ = mode; }

  /// Installs the group-batched p̃ supplier used when inference_mode() is
  /// kBatched. Without one, every mode falls back to the scalar fn passed
  /// to Rank/ScoreGroup (so a ranker with no learner wiring behaves
  /// exactly as before this knob existed).
  void set_batch_probability_fn(ConfirmProbabilityBatchFn fn) {
    batch_probability_ = std::move(fn);
  }

  /// E[g(c)] for one group. Uses one internal scratch (delta or batch, per
  /// the scoring mode) across the group's updates.
  double ScoreGroup(const UpdateGroup& group,
                    const ConfirmProbabilityFn& confirm_probability) const;

  /// The benefit term of a single update r_j:
  ///   Σ_φ w_φ (vio(D,{φ}) − vio(D^rj,{φ})) / |D^rj ⊨ φ|
  /// (without the p̃_j factor). Pure read: safe to call concurrently.
  double UpdateBenefit(const Update& update) const;

  /// Scratch-reusing variant: stages the hypothetical into `scratch`
  /// (which must be empty and derived from this ranker's index) and
  /// Discard()s it before returning. Callers evaluating many updates keep
  /// one delta alive and pass it here — zero allocations at steady state.
  /// Safe to call concurrently with distinct scratch deltas.
  double UpdateBenefit(const Update& update, ViolationDelta* scratch) const;

  /// Batched variant: restages `batch` when the update's (attr, value)
  /// differs from what it holds (a no-op within one group) and probes the
  /// closed forms. Bit-identical to the delta variants. Safe to call
  /// concurrently with distinct batches.
  double UpdateBenefit(const Update& update, HypotheticalBatch* batch) const;

  /// Scores all groups; returns indices into `groups` sorted by descending
  /// benefit (ties by ascending index), plus the scores themselves.
  /// Confirm probabilities are always evaluated serially on the calling
  /// thread (the learner bank is not required to be thread-safe); only the
  /// pure index-delta evaluations run on the pool.
  struct Ranking {
    std::vector<std::size_t> order;  // group indices, best first
    std::vector<double> scores;      // aligned with `groups`

    /// Score of group `i`, or 0.0 when out of range — e.g. an empty
    /// ranking produced by a strategy that does not rank by VOI. Both the
    /// Run() shim and GdrSession read per-group scores through this.
    double ScoreOf(std::size_t i) const {
      return i < scores.size() ? scores[i] : 0.0;
    }
  };
  Ranking Rank(const std::vector<UpdateGroup>& groups,
               const ConfirmProbabilityFn& confirm_probability) const;

  /// Cumulative probe-phase counters (kVoiProbe: benefit-probe ns plus the
  /// number of updates probed), merged from every scratch after each
  /// ranking pass. Not thread-safe w.r.t. concurrent Rank calls on the
  /// *same* ranker — each engine owns its ranker, so that never happens.
  const PerfCounters& perf_counters() const { return perf_; }
  void ResetPerfCounters() { perf_.Reset(); }

 private:
  // Per-worker scoring state: the batched evaluator plus the delta the
  // oracle mode stages into, and the slot's probe counters (merged into
  // perf_ after the fan-out barrier). Constructing both evaluators is
  // cheap (vector resizes); only the active mode's half is touched on the
  // hot path.
  struct Scratch {
    explicit Scratch(const ViolationIndex* index)
        : delta(index), batch(index) {}
    ViolationDelta delta;
    HypotheticalBatch batch;
    PerfCounters perf;
  };

  // The one canonical per-group accumulation (terms in update order);
  // serial and parallel ranking and ScoreGroup all funnel through it,
  // which is what keeps scores bit-identical across paths and modes.
  double ScoreGroupTerms(const UpdateGroup& group,
                         const std::vector<double>& probabilities,
                         Scratch* scratch) const;
  void FillProbabilities(const UpdateGroup& group,
                         const ConfirmProbabilityFn& confirm_probability,
                         std::vector<double>* out) const;

  const ViolationIndex* index_;
  const std::vector<double>* weights_;
  ThreadPool* workers_;
  ScoringMode mode_;
  InferenceMode inference_ = InferenceMode::kBatched;
  ConfirmProbabilityBatchFn batch_probability_;
  mutable PerfCounters perf_;
};

}  // namespace gdr

#endif  // GDR_CORE_VOI_H_
