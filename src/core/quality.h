#ifndef GDR_CORE_QUALITY_H_
#define GDR_CORE_QUALITY_H_

#include <vector>

#include "cfd/violation_index.h"
#include "data/table.h"
#include "util/result.h"

namespace gdr {

/// Default rule weights of the paper's experiments: w_i = |D(φ_i)| / |D|,
/// computed against the *current* contents of `index` (GDR computes them
/// once on the initial dirty instance and keeps them fixed). The weights
/// express how much of the data falls in each rule's context.
std::vector<double> ContextRuleWeights(const ViolationIndex& index);

/// Evaluation-only data-quality metric (Eq. 2/3), measured against the
/// ground-truth clean database D_opt that experiments have access to:
///
///   ql(D, φ) = (|D_opt ⊨ φ| − |D ⊨ φ|) / |D_opt ⊨ φ|
///   L(D)     = Σ_i w_i · ql(D, φ_i)
///
/// The GDR engine itself never sees D_opt — it only uses the VOI
/// *estimates* of this quantity (src/core/voi.h). This evaluator is the
/// measuring stick for the experiment harnesses (Figures 3–5).
class QualityEvaluator {
 public:
  /// Builds |D_opt ⊨ φ| per rule by indexing the ground truth. `weights`
  /// must have one entry per rule (use ContextRuleWeights of the dirty
  /// instance for the paper's setting).
  QualityEvaluator(Table ground_truth, const RuleSet* rules,
                   std::vector<double> weights);

  /// L(D) for the database behind `index` (Eq. 3).
  double Loss(const ViolationIndex& index) const;

  /// Percentage of the initial loss recovered so far:
  ///   100 · (L(D_0) − L(D)) / L(D_0)
  /// where L(D_0) = `initial_loss` (capture Loss() before repairing).
  /// The y-axis of Figures 3 and 4.
  double ImprovementPct(const ViolationIndex& index,
                        double initial_loss) const;

  const std::vector<double>& weights() const { return weights_; }
  const std::vector<std::int64_t>& opt_satisfying() const {
    return opt_satisfying_;
  }

 private:
  std::vector<double> weights_;
  std::vector<std::int64_t> opt_satisfying_;  // |D_opt ⊨ φ| per rule
};

/// Precision/recall of applied repairs against the ground truth (the
/// Appendix B.1 metric, Figure 5):
///   precision = correctly updated cells / updated cells
///   recall    = correctly updated cells / initially incorrect cells
struct RepairAccuracy {
  std::size_t updated_cells = 0;
  std::size_t correctly_updated_cells = 0;
  std::size_t initially_incorrect_cells = 0;

  double Precision() const {
    return updated_cells == 0
               ? 1.0
               : static_cast<double>(correctly_updated_cells) /
                     static_cast<double>(updated_cells);
  }
  double Recall() const {
    return initially_incorrect_cells == 0
               ? 1.0
               : static_cast<double>(correctly_updated_cells) /
                     static_cast<double>(initially_incorrect_cells);
  }
};

/// Computes repair accuracy by three-way cell comparison of the initial
/// dirty instance, the current instance, and the ground truth (all same
/// schema and row count).
Result<RepairAccuracy> ComputeRepairAccuracy(const Table& initial,
                                             const Table& current,
                                             const Table& ground_truth);

}  // namespace gdr

#endif  // GDR_CORE_QUALITY_H_
