#include "core/learner_bank.h"

#include <cmath>

#include "util/string_similarity.h"

namespace gdr {

namespace {

FeatureSchema SchemaForAttr(const Table& table) {
  std::vector<FeatureDesc> features;
  features.reserve(table.num_attrs() + 7);
  for (std::size_t a = 0; a < table.num_attrs(); ++a) {
    features.push_back(
        {table.schema().attr_name(static_cast<AttrId>(a)),
         FeatureType::kCategorical});
  }
  features.push_back({"suggested_value", FeatureType::kCategorical});
  features.push_back({"similarity", FeatureType::kNumeric});
  features.push_back({"repair_score", FeatureType::kNumeric});
  features.push_back({"log_support_current", FeatureType::kNumeric});
  features.push_back({"log_support_suggested", FeatureType::kNumeric});
  features.push_back({"violations_now", FeatureType::kNumeric});
  features.push_back({"violations_after", FeatureType::kNumeric});
  return FeatureSchema(std::move(features));
}

}  // namespace

LearnerBank::LearnerBank(const Table* table, const ViolationIndex* index,
                         LearnerBankOptions options)
    : table_(table), index_(index), options_(options) {
  const std::size_t n = table_->num_attrs();
  sets_.reserve(n);
  models_.reserve(n);
  for (std::size_t a = 0; a < n; ++a) {
    sets_.emplace_back(SchemaForAttr(*table_), kNumFeedbackClasses);
    RandomForestOptions forest_options = options_.forest;
    // Distinct deterministic stream per attribute model.
    forest_options.seed = options_.seed * 1000003ULL + a;
    models_.emplace_back(forest_options);
  }
  trained_.assign(n, false);
  stale_.assign(n, false);
  outcome_window_.assign(n * kNumFeedbackClasses, {});
  outcome_next_.assign(n * kNumFeedbackClasses, 0);
  outcome_count_.assign(n * kNumFeedbackClasses, 0);
}

namespace {

std::size_t OutcomeSlot(AttrId attr, Feedback predicted) {
  return static_cast<std::size_t>(attr) * kNumFeedbackClasses +
         static_cast<std::size_t>(predicted);
}

}  // namespace

void LearnerBank::RecordPredictionOutcome(AttrId attr, Feedback predicted,
                                          bool correct) {
  const std::size_t slot = OutcomeSlot(attr, predicted);
  std::vector<bool>& window = outcome_window_[slot];
  if (window.size() < kAccuracyWindow) {
    window.push_back(correct);
  } else {
    window[outcome_next_[slot] % kAccuracyWindow] = correct;
  }
  ++outcome_next_[slot];
  ++outcome_count_[slot];
}

double LearnerBank::RollingAccuracy(AttrId attr, Feedback predicted) const {
  const std::vector<bool>& window = outcome_window_[OutcomeSlot(attr, predicted)];
  if (window.empty()) return 1.0;
  std::size_t correct = 0;
  for (bool outcome : window) correct += outcome ? 1 : 0;
  return static_cast<double>(correct) / static_cast<double>(window.size());
}

bool LearnerBank::IsReliable(AttrId attr, Feedback predicted,
                             double min_accuracy,
                             std::size_t min_samples) const {
  const std::size_t slot = OutcomeSlot(attr, predicted);
  return trained_[static_cast<std::size_t>(attr)] &&
         outcome_count_[slot] >= min_samples &&
         RollingAccuracy(attr, predicted) >= min_accuracy;
}

std::vector<double> LearnerBank::Encode(const Update& update) const {
  std::vector<double> features;
  features.reserve(table_->num_attrs() + 7);
  for (std::size_t a = 0; a < table_->num_attrs(); ++a) {
    features.push_back(static_cast<double>(
        table_->id_at(update.row, static_cast<AttrId>(a))));
  }
  const ValueId current = table_->id_at(update.row, update.attr);
  features.push_back(static_cast<double>(update.value));
  features.push_back(NormalizedEditSimilarity(
      table_->at(update.row, update.attr),
      table_->dict(update.attr).ToString(update.value)));
  features.push_back(update.score);
  features.push_back(std::log1p(
      static_cast<double>(table_->ValueCount(update.attr, current))));
  features.push_back(std::log1p(
      static_cast<double>(table_->ValueCount(update.attr, update.value))));
  features.push_back(
      static_cast<double>(index_->ViolatedRuleCount(update.row)));
  features.push_back(static_cast<double>(index_->HypotheticalViolatedRuleCount(
      update.row, update.attr, update.value)));
  return features;
}

Status LearnerBank::AddFeedback(const Update& update, Feedback feedback) {
  TrainingSet& set = sets_[static_cast<std::size_t>(update.attr)];
  GDR_RETURN_NOT_OK(
      set.Add(Example{Encode(update), static_cast<int>(feedback)}));
  stale_[static_cast<std::size_t>(update.attr)] = true;
  return Status::OK();
}

Status LearnerBank::Retrain(AttrId attr) {
  const std::size_t a = static_cast<std::size_t>(attr);
  if (!stale_[a]) return Status::OK();
  if (sets_[a].size() < options_.min_training_examples) return Status::OK();
  GDR_RETURN_NOT_OK(models_[a].Train(sets_[a]));
  trained_[a] = true;
  stale_[a] = false;
  return Status::OK();
}

bool LearnerBank::IsTrained(AttrId attr) const {
  return trained_[static_cast<std::size_t>(attr)];
}

Feedback LearnerBank::PredictFeedback(const Update& update) const {
  const int label =
      models_[static_cast<std::size_t>(update.attr)].Predict(Encode(update));
  return static_cast<Feedback>(label);
}

double LearnerBank::Uncertainty(const Update& update) const {
  return models_[static_cast<std::size_t>(update.attr)].Uncertainty(
      Encode(update));
}

double LearnerBank::ConfirmProbability(const Update& update) const {
  const std::size_t a = static_cast<std::size_t>(update.attr);
  if (!trained_[a]) return update.score;
  const std::vector<double> fractions =
      models_[a].VoteFractions(Encode(update));
  return fractions[static_cast<std::size_t>(Feedback::kConfirm)];
}

}  // namespace gdr
