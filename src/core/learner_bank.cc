#include "core/learner_bank.h"

#include <cmath>

#include "util/string_similarity.h"

namespace gdr {

namespace {

FeatureSchema SchemaForAttr(const Table& table) {
  std::vector<FeatureDesc> features;
  features.reserve(table.num_attrs() + 7);
  for (std::size_t a = 0; a < table.num_attrs(); ++a) {
    features.push_back(
        {table.schema().attr_name(static_cast<AttrId>(a)),
         FeatureType::kCategorical});
  }
  features.push_back({"suggested_value", FeatureType::kCategorical});
  features.push_back({"similarity", FeatureType::kNumeric});
  features.push_back({"repair_score", FeatureType::kNumeric});
  features.push_back({"log_support_current", FeatureType::kNumeric});
  features.push_back({"log_support_suggested", FeatureType::kNumeric});
  features.push_back({"violations_now", FeatureType::kNumeric});
  features.push_back({"violations_after", FeatureType::kNumeric});
  return FeatureSchema(std::move(features));
}

}  // namespace

LearnerBank::LearnerBank(const Table* table, const ViolationIndex* index,
                         LearnerBankOptions options)
    : table_(table), index_(index), options_(options) {
  const std::size_t n = table_->num_attrs();
  sets_.reserve(n);
  models_.reserve(n);
  for (std::size_t a = 0; a < n; ++a) {
    sets_.emplace_back(SchemaForAttr(*table_), kNumFeedbackClasses);
    RandomForestOptions forest_options = options_.forest;
    // Distinct deterministic stream per attribute model.
    forest_options.seed = options_.seed * 1000003ULL + a;
    models_.emplace_back(forest_options);
  }
  trained_.assign(n, false);
  stale_.assign(n, false);
  outcome_window_.assign(n * kNumFeedbackClasses, {});
  outcome_next_.assign(n * kNumFeedbackClasses, 0);
  outcome_count_.assign(n * kNumFeedbackClasses, 0);
}

namespace {

std::size_t OutcomeSlot(AttrId attr, Feedback predicted) {
  return static_cast<std::size_t>(attr) * kNumFeedbackClasses +
         static_cast<std::size_t>(predicted);
}

}  // namespace

void LearnerBank::RecordPredictionOutcome(AttrId attr, Feedback predicted,
                                          bool correct) {
  const std::size_t slot = OutcomeSlot(attr, predicted);
  std::vector<bool>& window = outcome_window_[slot];
  if (window.size() < kAccuracyWindow) {
    window.push_back(correct);
  } else {
    window[outcome_next_[slot] % kAccuracyWindow] = correct;
  }
  ++outcome_next_[slot];
  ++outcome_count_[slot];
}

double LearnerBank::RollingAccuracy(AttrId attr, Feedback predicted) const {
  const std::vector<bool>& window = outcome_window_[OutcomeSlot(attr, predicted)];
  if (window.empty()) return 1.0;
  std::size_t correct = 0;
  for (bool outcome : window) correct += outcome ? 1 : 0;
  return static_cast<double>(correct) / static_cast<double>(window.size());
}

bool LearnerBank::IsReliable(AttrId attr, Feedback predicted,
                             double min_accuracy,
                             std::size_t min_samples) const {
  const std::size_t slot = OutcomeSlot(attr, predicted);
  return trained_[static_cast<std::size_t>(attr)] &&
         outcome_count_[slot] >= min_samples &&
         RollingAccuracy(attr, predicted) >= min_accuracy;
}

void LearnerBank::EncodeIntoRaw(const Update& update, double* dst) const {
  const std::size_t num_attrs = table_->num_attrs();
  for (std::size_t a = 0; a < num_attrs; ++a) {
    dst[a] = static_cast<double>(
        table_->id_at(update.row, static_cast<AttrId>(a)));
  }
  const ValueId current = table_->id_at(update.row, update.attr);
  dst[num_attrs] = static_cast<double>(update.value);
  dst[num_attrs + 1] = NormalizedEditSimilarity(
      table_->at(update.row, update.attr),
      table_->dict(update.attr).ToString(update.value));
  dst[num_attrs + 2] = update.score;
  dst[num_attrs + 3] = std::log1p(
      static_cast<double>(table_->ValueCount(update.attr, current)));
  dst[num_attrs + 4] = std::log1p(
      static_cast<double>(table_->ValueCount(update.attr, update.value)));
  dst[num_attrs + 5] =
      static_cast<double>(index_->ViolatedRuleCount(update.row));
  dst[num_attrs + 6] = static_cast<double>(
      index_->HypotheticalViolatedRuleCount(update.row, update.attr,
                                            update.value));
}

std::vector<double> LearnerBank::Encode(const Update& update) const {
  std::vector<double> features(EncodedWidth());
  EncodeIntoRaw(update, features.data());
  return features;
}

Status LearnerBank::AddFeedback(const Update& update, Feedback feedback) {
  TrainingSet& set = sets_[static_cast<std::size_t>(update.attr)];
  GDR_RETURN_NOT_OK(
      set.Add(Example{Encode(update), static_cast<int>(feedback)}));
  stale_[static_cast<std::size_t>(update.attr)] = true;
  return Status::OK();
}

Status LearnerBank::Retrain(AttrId attr) {
  const std::size_t a = static_cast<std::size_t>(attr);
  if (!stale_[a]) return Status::OK();
  if (sets_[a].size() < options_.min_training_examples) return Status::OK();
  GDR_RETURN_NOT_OK(models_[a].Train(sets_[a]));
  trained_[a] = true;
  stale_[a] = false;
  return Status::OK();
}

bool LearnerBank::IsTrained(AttrId attr) const {
  return trained_[static_cast<std::size_t>(attr)];
}

Feedback LearnerBank::PredictFeedback(const Update& update) const {
  encode_scratch_.resize(EncodedWidth());
  EncodeIntoRaw(update, encode_scratch_.data());
  const int label =
      models_[static_cast<std::size_t>(update.attr)].Predict(encode_scratch_);
  return static_cast<Feedback>(label);
}

double LearnerBank::Uncertainty(const Update& update) const {
  encode_scratch_.resize(EncodedWidth());
  EncodeIntoRaw(update, encode_scratch_.data());
  models_[static_cast<std::size_t>(update.attr)].VoteFractionsInto(
      encode_scratch_, &fraction_scratch_);
  return RandomForest::VoteEntropy(fraction_scratch_);
}

double LearnerBank::ConfirmProbability(const Update& update) const {
  const std::size_t a = static_cast<std::size_t>(update.attr);
  if (!trained_[a]) return update.score;
  {
    ScopedPhaseTimer timer(&perf_, PerfPhase::kLearnerEncode, 1);
    encode_scratch_.resize(EncodedWidth());
    EncodeIntoRaw(update, encode_scratch_.data());
  }
  ScopedPhaseTimer timer(&perf_, PerfPhase::kLearnerTreeWalk, 1);
  models_[a].VoteFractionsInto(encode_scratch_, &fraction_scratch_);
  return fraction_scratch_[static_cast<std::size_t>(Feedback::kConfirm)];
}

void LearnerBank::ConfirmProbabilities(std::span<const Update> updates,
                                       std::vector<double>* out) const {
  const std::size_t n = updates.size();
  out->resize(n);
  // Process contiguous runs sharing one attribute (an UpdateGroup is a
  // single run); each trained run is one matrix + one batched forest pass.
  std::size_t i = 0;
  while (i < n) {
    const AttrId attr = updates[i].attr;
    std::size_t j = i + 1;
    while (j < n && updates[j].attr == attr) ++j;
    const std::size_t a = static_cast<std::size_t>(attr);
    if (!trained_[a]) {
      for (std::size_t r = i; r < j; ++r) (*out)[r] = updates[r].score;
      i = j;
      continue;
    }
    const std::size_t rows = j - i;
    const std::size_t width = EncodedWidth();
    {
      ScopedPhaseTimer timer(&perf_, PerfPhase::kLearnerEncode, rows);
      matrix_scratch_.resize(rows * width);
      for (std::size_t r = 0; r < rows; ++r) {
        EncodeIntoRaw(updates[i + r], matrix_scratch_.data() + r * width);
      }
    }
    {
      ScopedPhaseTimer timer(&perf_, PerfPhase::kLearnerTreeWalk, rows);
      models_[a].VoteFractionsBatch(matrix_scratch_.data(), rows, width,
                                    &fraction_scratch_);
    }
    const std::size_t classes =
        static_cast<std::size_t>(models_[a].num_classes());
    const std::size_t confirm =
        static_cast<std::size_t>(Feedback::kConfirm);
    for (std::size_t r = 0; r < rows; ++r) {
      (*out)[i + r] = fraction_scratch_[r * classes + confirm];
    }
    i = j;
  }
}

}  // namespace gdr
