#include "core/voi.h"

#include <algorithm>
#include <numeric>

namespace gdr {

VoiRanker::VoiRanker(ViolationIndex* index, const std::vector<double>* weights)
    : index_(index), weights_(weights) {}

double VoiRanker::UpdateBenefit(const Update& update) const {
  const std::vector<RuleId>& affected =
      index_->rules().RulesMentioning(update.attr);
  if (affected.empty()) return 0.0;

  // Record vio(D, {φ}) before the hypothetical application.
  std::vector<std::int64_t> vio_before(affected.size());
  for (std::size_t i = 0; i < affected.size(); ++i) {
    vio_before[i] = index_->RuleViolations(affected[i]);
  }

  // D^rj: apply, measure, revert. Apply+revert restores exact state.
  const ValueId old_value =
      index_->ApplyCellChange(update.row, update.attr, update.value);
  double benefit = 0.0;
  for (std::size_t i = 0; i < affected.size(); ++i) {
    const RuleId rule = affected[i];
    const std::int64_t satisfying = index_->SatisfyingCount(rule);
    if (satisfying <= 0) continue;  // no denominator: rule fully violated
    const double delta =
        static_cast<double>(vio_before[i] - index_->RuleViolations(rule));
    benefit += (*weights_)[static_cast<std::size_t>(rule)] * delta /
               static_cast<double>(satisfying);
  }
  index_->ApplyCellChange(update.row, update.attr, old_value);
  return benefit;
}

double VoiRanker::ScoreGroup(
    const UpdateGroup& group,
    const ConfirmProbabilityFn& confirm_probability) const {
  double score = 0.0;
  for (const Update& update : group.updates) {
    score += confirm_probability(update) * UpdateBenefit(update);
  }
  return score;
}

VoiRanker::Ranking VoiRanker::Rank(
    const std::vector<UpdateGroup>& groups,
    const ConfirmProbabilityFn& confirm_probability) const {
  Ranking ranking;
  ranking.scores.resize(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    ranking.scores[i] = ScoreGroup(groups[i], confirm_probability);
  }
  ranking.order.resize(groups.size());
  std::iota(ranking.order.begin(), ranking.order.end(), 0);
  std::stable_sort(ranking.order.begin(), ranking.order.end(),
                   [&ranking](std::size_t a, std::size_t b) {
                     return ranking.scores[a] > ranking.scores[b];
                   });
  return ranking;
}

}  // namespace gdr
