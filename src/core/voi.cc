#include "core/voi.h"

#include <algorithm>
#include <numeric>

#include "util/thread_pool.h"

namespace gdr {

VoiRanker::VoiRanker(const ViolationIndex* index,
                     const std::vector<double>* weights, ThreadPool* workers)
    : index_(index), weights_(weights), workers_(workers) {}

double VoiRanker::UpdateBenefit(const Update& update) const {
  const std::vector<RuleId>& affected =
      index_->rules().RulesMentioning(update.attr);
  if (affected.empty()) return 0.0;

  // D^rj as an overlay: stage the write, read the affected aggregates.
  // The shared index is never touched, so concurrent evaluations are safe.
  ViolationDelta delta(index_);
  delta.SetCell(update.row, update.attr, update.value);

  double benefit = 0.0;
  for (RuleId rule : affected) {
    const std::int64_t satisfying = delta.SatisfyingCount(rule);
    if (satisfying <= 0) continue;  // no denominator: rule fully violated
    const double drop = static_cast<double>(index_->RuleViolations(rule) -
                                            delta.RuleViolations(rule));
    benefit += (*weights_)[static_cast<std::size_t>(rule)] * drop /
               static_cast<double>(satisfying);
  }
  return benefit;
}

double VoiRanker::ScoreGroup(
    const UpdateGroup& group,
    const ConfirmProbabilityFn& confirm_probability) const {
  double score = 0.0;
  for (const Update& update : group.updates) {
    score += confirm_probability(update) * UpdateBenefit(update);
  }
  return score;
}

VoiRanker::Ranking VoiRanker::Rank(
    const std::vector<UpdateGroup>& groups,
    const ConfirmProbabilityFn& confirm_probability) const {
  Ranking ranking;
  ranking.scores.assign(groups.size(), 0.0);

  if (workers_ == nullptr || workers_->size() <= 1 || groups.size() <= 1) {
    for (std::size_t i = 0; i < groups.size(); ++i) {
      ranking.scores[i] = ScoreGroup(groups[i], confirm_probability);
    }
  } else {
    // Confirm probabilities may touch the learner bank, which is not
    // required to be thread-safe — evaluate them up front on this thread.
    std::vector<std::vector<double>> probabilities(groups.size());
    for (std::size_t i = 0; i < groups.size(); ++i) {
      probabilities[i].reserve(groups[i].updates.size());
      for (const Update& update : groups[i].updates) {
        probabilities[i].push_back(confirm_probability(update));
      }
    }
    // Each task accumulates its group's terms in update order into its own
    // slot — the same operations in the same order as the serial path, so
    // the scores are bit-identical for every thread count.
    workers_->ParallelFor(groups.size(), [&](std::size_t i) {
      const UpdateGroup& group = groups[i];
      double score = 0.0;
      for (std::size_t j = 0; j < group.updates.size(); ++j) {
        score += probabilities[i][j] * UpdateBenefit(group.updates[j]);
      }
      ranking.scores[i] = score;
    });
  }

  ranking.order.resize(groups.size());
  std::iota(ranking.order.begin(), ranking.order.end(), 0);
  std::stable_sort(ranking.order.begin(), ranking.order.end(),
                   [&ranking](std::size_t a, std::size_t b) {
                     return ranking.scores[a] > ranking.scores[b];
                   });
  return ranking;
}

}  // namespace gdr
