#include "core/voi.h"

#include <algorithm>
#include <numeric>

#include "util/thread_pool.h"

namespace gdr {

VoiRanker::VoiRanker(const ViolationIndex* index,
                     const std::vector<double>* weights, ThreadPool* workers,
                     ScoringMode mode)
    : index_(index), weights_(weights), workers_(workers), mode_(mode) {}

double VoiRanker::UpdateBenefit(const Update& update,
                                ViolationDelta* scratch) const {
  const std::vector<RuleId>& affected =
      index_->rules().RulesMentioning(update.attr);
  if (affected.empty()) return 0.0;

  // D^rj as an overlay: stage the write into the caller's scratch delta,
  // read the affected aggregates, discard (keeping the scratch's
  // allocations for the next hypothetical). The shared index is never
  // touched, so concurrent evaluations with distinct scratches are safe.
  scratch->SetCell(update.row, update.attr, update.value);

  double benefit = 0.0;
  for (RuleId rule : affected) {
    // drop = vio(D) − vio(D^rj) = −adjustment. A zero adjustment
    // contributes exactly +0.0, so skipping it leaves the accumulated
    // double bit-identical.
    const std::int64_t adjustment = scratch->RuleViolationAdjustment(rule);
    if (adjustment == 0) continue;
    const std::int64_t satisfying = scratch->SatisfyingCount(rule);
    if (satisfying <= 0) {
      continue;  // no denominator: rule fully violated
    }
    benefit += (*weights_)[static_cast<std::size_t>(rule)] *
               static_cast<double>(-adjustment) /
               static_cast<double>(satisfying);
  }
  scratch->Discard();
  return benefit;
}

double VoiRanker::UpdateBenefit(const Update& update) const {
  ViolationDelta scratch(index_);
  return UpdateBenefit(update, &scratch);
}

double VoiRanker::UpdateBenefit(const Update& update,
                                HypotheticalBatch* batch) const {
  // Within one group every update shares (attr, value), so this Stage is
  // a cheap no-op after the group's first update — the staging cost the
  // delta path pays per update is paid once per group here.
  batch->Stage(update.attr, update.value);
  const std::size_t affected = batch->num_affected();
  if (affected == 0) return 0.0;
  if (batch->IsNoOp(update.row)) return 0.0;  // oracle: SetCell early return

  double benefit = 0.0;
  for (std::size_t k = 0; k < affected; ++k) {
    // Same rule order, same skip conditions, same integer inputs as the
    // delta path — hence bit-identical accumulated doubles.
    const HypotheticalBatch::Effect effect = batch->Probe(k, update.row);
    if (effect.adjustment == 0) continue;
    if (effect.satisfying <= 0) {
      continue;  // no denominator: rule fully violated
    }
    benefit +=
        (*weights_)[static_cast<std::size_t>(batch->affected_rule(k))] *
        static_cast<double>(-effect.adjustment) /
        static_cast<double>(effect.satisfying);
  }
  return benefit;
}

double VoiRanker::ScoreGroupTerms(const UpdateGroup& group,
                                  const std::vector<double>& probabilities,
                                  Scratch* scratch) const {
  // The one canonical accumulation: terms in update order, probability
  // times benefit. Every scoring path funnels through here, which is what
  // keeps scores bit-identical across serial, parallel, and ScoreGroup.
  const std::size_t n = group.updates.size();
  ScopedPhaseTimer timer(&scratch->perf, PerfPhase::kVoiProbe, n);
  double score = 0.0;
  if (mode_ == ScoringMode::kBatched) {
    if (n != 0) {
      // Stage the group's shared (attr, value) context up front so the
      // per-update prefetch below can resolve the affected rules before
      // the first probe. Every update of a group shares the target, so
      // this is the same single Stage the loop would have paid.
      scratch->batch.Stage(group.updates.front().attr,
                           group.updates.front().value);
    }
    for (std::size_t j = 0; j < n; ++j) {
      // Pull the next update's per-rule row→group slots toward the cache
      // while the current update's closed forms execute.
      if (j + 1 < n) scratch->batch.PrefetchRow(group.updates[j + 1].row);
      score +=
          probabilities[j] * UpdateBenefit(group.updates[j], &scratch->batch);
    }
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      score +=
          probabilities[j] * UpdateBenefit(group.updates[j], &scratch->delta);
    }
  }
  return score;
}

void VoiRanker::FillProbabilities(
    const UpdateGroup& group, const ConfirmProbabilityFn& confirm_probability,
    std::vector<double>* out) const {
  if (inference_ == InferenceMode::kBatched && batch_probability_) {
    batch_probability_(std::span<const Update>(group.updates), out);
    return;
  }
  out->clear();
  out->reserve(group.updates.size());
  for (const Update& update : group.updates) {
    out->push_back(confirm_probability(update));
  }
}

double VoiRanker::ScoreGroup(
    const UpdateGroup& group,
    const ConfirmProbabilityFn& confirm_probability) const {
  Scratch scratch(index_);
  std::vector<double> probabilities;
  FillProbabilities(group, confirm_probability, &probabilities);
  const double score = ScoreGroupTerms(group, probabilities, &scratch);
  perf_.MergeFrom(scratch.perf);
  return score;
}

VoiRanker::Ranking VoiRanker::Rank(
    const std::vector<UpdateGroup>& groups,
    const ConfirmProbabilityFn& confirm_probability) const {
  Ranking ranking;
  ranking.scores.assign(groups.size(), 0.0);

  if (workers_ == nullptr || workers_->size() <= 1 || groups.size() <= 1) {
    // Serial path: one scratch and one probability buffer for the whole
    // pass.
    Scratch scratch(index_);
    std::vector<double> probabilities;
    for (std::size_t i = 0; i < groups.size(); ++i) {
      FillProbabilities(groups[i], confirm_probability, &probabilities);
      ranking.scores[i] = ScoreGroupTerms(groups[i], probabilities, &scratch);
    }
    perf_.MergeFrom(scratch.perf);
  } else {
    // Confirm probabilities may touch the learner bank, which is not
    // required to be thread-safe — evaluate them up front on this thread.
    std::vector<std::vector<double>> probabilities(groups.size());
    for (std::size_t i = 0; i < groups.size(); ++i) {
      FillProbabilities(groups[i], confirm_probability, &probabilities[i]);
    }
    // One scratch per executor slot (workers + the calling thread); each
    // slot runs on exactly one thread, so its scratch needs no
    // synchronization and is reused across every group that slot scores.
    std::vector<Scratch> scratches;
    scratches.reserve(workers_->size() + 1);
    for (std::size_t s = 0; s < workers_->size() + 1; ++s) {
      scratches.emplace_back(index_);
    }
    // Each task runs the same canonical accumulation into its group's own
    // slot, so the scores are bit-identical for every thread count.
    workers_->ParallelForWithSlot(
        groups.size(), [&](std::size_t slot, std::size_t i) {
          ranking.scores[i] =
              ScoreGroupTerms(groups[i], probabilities[i], &scratches[slot]);
        });
    // The barrier above is the synchronization point: every slot's
    // counters are quiescent, so merging them on the calling thread races
    // with nothing.
    for (const Scratch& scratch : scratches) perf_.MergeFrom(scratch.perf);
  }

  ranking.order.resize(groups.size());
  std::iota(ranking.order.begin(), ranking.order.end(), 0);
  std::stable_sort(ranking.order.begin(), ranking.order.end(),
                   [&ranking](std::size_t a, std::size_t b) {
                     return ranking.scores[a] > ranking.scores[b];
                   });
  return ranking;
}

}  // namespace gdr
