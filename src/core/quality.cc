#include "core/quality.h"

namespace gdr {

std::vector<double> ContextRuleWeights(const ViolationIndex& index) {
  const double n = static_cast<double>(index.table().num_rows());
  std::vector<double> weights(index.rules().size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = n == 0 ? 0.0
                        : static_cast<double>(index.ContextCount(
                              static_cast<RuleId>(i))) /
                              n;
  }
  return weights;
}

QualityEvaluator::QualityEvaluator(Table ground_truth, const RuleSet* rules,
                                   std::vector<double> weights)
    : weights_(std::move(weights)) {
  // Index the ground truth once to read off |D_opt ⊨ φ| per rule. The
  // table copy is local; the index dies with this scope.
  ViolationIndex opt_index(&ground_truth, rules);
  opt_satisfying_.resize(rules->size());
  for (std::size_t i = 0; i < rules->size(); ++i) {
    opt_satisfying_[i] = opt_index.SatisfyingCount(static_cast<RuleId>(i));
  }
}

double QualityEvaluator::Loss(const ViolationIndex& index) const {
  double loss = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    const RuleId rule = static_cast<RuleId>(i);
    if (opt_satisfying_[i] <= 0) continue;  // rule vacuous in D_opt
    const double ql = static_cast<double>(opt_satisfying_[i] -
                                          index.SatisfyingCount(rule)) /
                      static_cast<double>(opt_satisfying_[i]);
    loss += weights_[i] * ql;
  }
  return loss;
}

double QualityEvaluator::ImprovementPct(const ViolationIndex& index,
                                        double initial_loss) const {
  if (initial_loss <= 0.0) return 100.0;
  return 100.0 * (initial_loss - Loss(index)) / initial_loss;
}

Result<RepairAccuracy> ComputeRepairAccuracy(const Table& initial,
                                             const Table& current,
                                             const Table& ground_truth) {
  if (!(initial.schema() == current.schema()) ||
      !(initial.schema() == ground_truth.schema())) {
    return Status::InvalidArgument("schemas differ");
  }
  if (initial.num_rows() != current.num_rows() ||
      initial.num_rows() != ground_truth.num_rows()) {
    return Status::InvalidArgument("row counts differ");
  }
  RepairAccuracy acc;
  for (std::size_t r = 0; r < initial.num_rows(); ++r) {
    for (std::size_t a = 0; a < initial.num_attrs(); ++a) {
      const RowId row = static_cast<RowId>(r);
      const AttrId attr = static_cast<AttrId>(a);
      const std::string& before = initial.at(row, attr);
      const std::string& now = current.at(row, attr);
      const std::string& truth = ground_truth.at(row, attr);
      if (before != truth) ++acc.initially_incorrect_cells;
      if (now != before) {
        ++acc.updated_cells;
        if (now == truth) ++acc.correctly_updated_cells;
      }
    }
  }
  return acc;
}

}  // namespace gdr
