#ifndef GDR_CORE_SESSION_H_
#define GDR_CORE_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/gdr.h"
#include "util/result.h"

namespace gdr {

/// Where the interactive loop currently stands, from the caller's side.
enum class SessionState {
  /// A batch has been delivered by NextBatch() and at least one of its
  /// suggestions is still unresolved; the machine is idle until feedback
  /// arrives (or the caller pulls again, abandoning the remainder).
  kAwaitingFeedback,
  /// Between batches: machine steps (retrain, reorder, learner take-over,
  /// group transition, ranking) are pending and run on the next
  /// NextBatch() call.
  kRanking,
  /// The loop has terminated (final learner sweep included, where the
  /// strategy has one). NextBatch() returns an empty batch.
  kDone,
};

const char* SessionStateName(SessionState state);

/// Per-call result of SubmitFeedback.
enum class FeedbackOutcome {
  /// The feedback was consumed: stats, learner, and database advanced.
  kApplied,
  /// The suggestion was retired or replaced (by a consistency cascade from
  /// an earlier answer) between delivery and submission. Nothing was
  /// consumed — in particular no budget — matching the legacy loop, which
  /// skipped stale suggestions without consulting the user.
  kStale,
  /// This update_id was already resolved; the call was a no-op.
  kDuplicate,
  /// The update_id does not belong to the outstanding batch (never issued,
  /// or abandoned by a later NextBatch()); the call was a no-op.
  kUnknownId,
};

/// One machine-ranked suggestion handed to the caller, with the metadata a
/// review UI needs to present it (Section 4.2's group session screen).
struct SuggestedUpdate {
  /// Session-unique handle for SubmitFeedback. Ids are assigned in
  /// delivery order and are stable across Snapshot()/Restore().
  std::uint64_t update_id = 0;
  Update update;
  /// The group the suggestion was presented under: all members share
  /// (attribute := suggested value). For the ungrouped Active-Learning
  /// strategy this is the update's own cell attribute/value.
  AttrId group_attr = kInvalidAttrId;
  ValueId group_value = kInvalidValueId;
  /// E[g(c)] of the group under the current ranking (Eq. 6); 0.0 for
  /// strategies that do not rank by VOI.
  double voi_score = 0.0;
  /// Committee disagreement entropy in [0,1]; 1.0 before the attribute's
  /// model is trained.
  double uncertainty = 1.0;
  /// User labels remaining after this batch was formed
  /// (GdrOptions::kUnlimitedBudget when no budget is set).
  std::size_t budget_remaining = GdrOptions::kUnlimitedBudget;
};

/// A serializable record of a session's loop position. Event-sourced: the
/// snapshot is the exact sequence of API calls (pulls, submissions, and
/// row appends) that produced the current state. Because every component is
/// deterministic under a fixed seed, replaying the events against a fresh
/// session over the *original dirty table* reconstructs the pool, the
/// learner bank (training sets, forests, rolling accuracy), the RNG
/// streams, and the stats bit-for-bit — which is what lets a session
/// survive a process restart without serializing any of those directly.
struct SessionSnapshot {
  struct Event {
    enum class Kind : std::uint8_t { kPull = 0, kSubmit = 1, kAppend = 2 };
    Kind kind = Kind::kPull;
    std::uint64_t update_id = 0;          // kSubmit only
    Feedback feedback = Feedback::kConfirm;  // kSubmit only
    /// Whether the submission was consumed (kApplied) or hit a stale
    /// suggestion (kStale). Replay must reproduce the same outcome;
    /// a mismatch means the table was not reloaded in its original
    /// dirty state, and Restore() rejects it.
    bool applied = false;                 // kSubmit only
    bool has_value = false;               // volunteered value present?
    std::string value;                    // kSubmit only, when has_value
    /// kAppend only: the admitted rows, verbatim, and how many rows the
    /// admission made dirty. Replay re-appends the rows; a newly_dirty
    /// mismatch is the appends' divergence check, analogous to `applied`.
    std::vector<std::vector<std::string>> rows;
    std::size_t newly_dirty = 0;

    bool operator==(const Event&) const = default;
  };

  /// The options the session ran under, for compatibility validation at
  /// Restore() time. The caller is responsible for reconstructing the
  /// full GdrOptions (replay assumes every knob matches — a silent
  /// mismatch anywhere, including nested learner/forest options, diverges
  /// the replay); these scalar loop knobs are carried along so the common
  /// mistakes are caught loudly instead.
  Strategy strategy = Strategy::kGdr;
  std::uint64_t seed = 0;
  std::size_t feedback_budget = GdrOptions::kUnlimitedBudget;
  int ns = 0;
  int max_outer_iterations = 0;
  int learner_sweep_passes = 0;
  double learner_max_uncertainty = 0.0;
  double learner_min_accuracy = 0.0;

  std::vector<Event> events;

  /// Plain-text wire format (versioned header + hex-encoded values, so
  /// volunteered strings and appended cells may contain any bytes).
  /// Version 2 adds the append ("A") event; version 3 adds a trailing
  /// "end" marker so a truncated prefix (crash mid-write) can never parse
  /// as a complete snapshot. Version-1/2 snapshots still deserialize.
  std::string Serialize() const;
  static Result<SessionSnapshot> Deserialize(std::string_view text);
};

/// Outcome of one GdrSession::AppendDirtyRows call.
struct SessionAppendOutcome {
  std::size_t rows_appended = 0;
  /// Rows that entered the dirty set: arrivals that violate a rule plus
  /// existing rows their arrival implicated. 0 means the appends were
  /// clean — nothing was admitted and the ranking is untouched.
  std::size_t newly_dirty = 0;
  /// Net change in pool size (admission adds suggestions; a partner
  /// revisit may retire one without replacement).
  std::int64_t pool_delta = 0;
  /// Groups the live-ranking merge had to (re)score: groups minted or
  /// changed by this admission. Untouched groups keep their scores —
  /// the merge never rescores them.
  std::size_t groups_rescored = 0;
  /// True when the appends re-armed a session that had already reached
  /// kDone (new dirt revives the loop).
  bool revived = false;
};

/// The pull-based interactive loop of Procedure 1, inverted: instead of
/// GdrEngine::Run() owning the loop and calling *out* to a blocking
/// FeedbackProvider, the caller pulls the next batch of machine-ranked
/// suggestions and pushes feedback whenever it arrives — per update, in
/// any order, at any later time. All machine steps (retrain, reorder,
/// learner take-over, consistency cascades, group transitions, the final
/// learner sweep) run inside NextBatch()/SubmitFeedback(); between calls
/// the session holds an explicit loop position, so one process can
/// multiplex many sessions and a snapshot can move a session across
/// process restarts.
///
///   GdrSession session(&table, &rules, options);
///   GDR_RETURN_NOT_OK(session.Start());
///   while (session.state() != SessionState::kDone) {
///     auto batch = session.NextBatch();            // ≤ ns suggestions
///     for (const SuggestedUpdate& s : *batch) {
///       if (!session.IsLive(s.update_id)) continue;
///       ... show s to the user, await their answer ...
///       session.SubmitFeedback(s.update_id, answer);
///     }
///   }
///
/// Pumping a session with a FeedbackProvider (PumpSession below) is
/// bit-identical to the legacy GdrEngine::Run() — same stats, same
/// repairs, every seed, every strategy, every thread count.
class GdrSession {
 public:
  /// Owns its engine: `table` and `rules` are non-owning and must outlive
  /// the session; the table is repaired in place.
  GdrSession(Table* table, const RuleSet* rules, GdrOptions options = {});

  /// Wraps an existing engine (non-owning; must outlive the session).
  /// Used by the Run() shim; also lets harnesses inspect engine internals
  /// while driving the session.
  explicit GdrSession(GdrEngine* engine);

  ~GdrSession();

  GdrSession(const GdrSession&) = delete;
  GdrSession& operator=(const GdrSession&) = delete;

  /// Initializes the engine if needed and arms the loop. Must be called
  /// (once) before NextBatch(); Restore() calls it internally.
  Status Start();

  SessionState state() const { return state_; }

  /// Runs pending machine steps and returns the next batch: the ≤ n_s
  /// top-ordered suggestions of the current group session (VOI-ranked
  /// groups, uncertainty- or strategy-ordered within the group), each with
  /// presentation metadata. Returns an empty vector once the loop is done.
  /// Pulling while a batch is still outstanding abandons the unresolved
  /// remainder — those suggestions stay in the pool and reappear in later
  /// batches (they are never silently dropped).
  Result<std::vector<SuggestedUpdate>> NextBatch();

  /// Pushes one unit of user feedback for a delivered suggestion. On
  /// kReject the user may volunteer the correct value, which is applied as
  /// a confirmed ⟨t, A, v', 1⟩ (Section 4.2). Safe to call in any order
  /// within the outstanding batch and at any time before the next pull.
  Result<FeedbackOutcome> SubmitFeedback(
      std::uint64_t update_id, Feedback feedback,
      std::optional<std::string> suggested_value = std::nullopt);

  /// Streaming admission: appends `rows` to the live instance mid-session
  /// — at any loop position, including mid-batch and after kDone. The
  /// engine indexes the rows incrementally and admits their violations
  /// into the update pool; the session then merges the new state into the
  /// *live* ranking: groups whose update lists the admission left alone
  /// keep their scores verbatim (their next full rescore happens at the
  /// next iteration, as always), while minted or changed groups are scored
  /// against the grown index. The in-flight group session continues —
  /// admitted updates that join the picked group's (attribute, value)
  /// surface in its later rounds. Clean rows (violating nothing) admit
  /// nothing and cause zero ranking churn. Appends are recorded in the
  /// event log, so Snapshot()/Restore() replays them in position; a kDone
  /// session with new dirt is re-armed (`revived`).
  Result<SessionAppendOutcome> AppendDirtyRows(
      const std::vector<std::vector<std::string>>& rows);

  /// True while `update_id` is outstanding *and* its suggestion is still
  /// the pool's live entry for the cell. A pump should skip dead ids
  /// instead of asking the user about them.
  bool IsLive(std::uint64_t update_id) const;

  /// The unresolved suggestions of the outstanding batch, in delivery
  /// order. Empty unless state() == kAwaitingFeedback. After Restore(),
  /// this is where a resumed UI picks up mid-batch.
  std::vector<SuggestedUpdate> Outstanding() const;

  /// Invoked after every applied label and after every learner batch, with
  /// the engine in a consistent state — the same hook Run() exposes.
  /// Suppressed while Restore() replays history (the events already fired
  /// in the original session).
  void SetProgressCallback(GdrEngine::ProgressCallback callback);

  const GdrEngine& engine() const { return *engine_; }
  const Table& table() const { return engine_->table(); }
  const GdrStats& stats() const { return engine_->stats(); }

  /// The session's event log since Start(), restorable at any point —
  /// including mid-batch. Cheap: the log is maintained incrementally.
  SessionSnapshot Snapshot() const;

  /// Rebuilds the loop position recorded in `snapshot` by replaying its
  /// events. Requirements: the session has not been started (Restore
  /// starts it), the engine is pristine (freshly constructed over the
  /// *original dirty table* — replay re-applies every repair), and the
  /// session's strategy/seed/ns/feedback_budget match the snapshot's.
  /// After a successful restore the session continues exactly where the
  /// snapshotted one stood: same pool, learner bank, RNG streams, stats,
  /// outstanding batch, and update-id sequence.
  ///
  /// A failed restore (corrupted snapshot, diverging replay, non-pristine
  /// engine) is fully rolled back: the table is returned to its pre-call
  /// contents, the engine is rebuilt pristine over it, and the session is
  /// reset to not-started — Start() afterwards runs it exactly like a
  /// fresh session. For sessions wrapping an external engine, the rollback
  /// re-owns a *new* engine; the caller's original engine object is
  /// abandoned mid-replay and must not be reused.
  Status Restore(const SessionSnapshot& snapshot);

 private:
  // Loop position between API calls. The grouped strategies and the
  // ungrouped Active-Learning baseline have disjoint phase sets; both
  // funnel into kFinalSweep → kDone.
  enum class Phase {
    kNotStarted,
    // Grouped strategies (all but kActiveLearning):
    kIterationStart,  // outer-loop check, group, rank, pick, quota
    kRoundStart,      // inner-round check, order, form + deliver a batch
    kBatchOut,        // a delivered batch awaits feedback
    kRoundEnd,        // batch resolved/abandoned: retrain, next round
    kTakeOver,        // learner decides the group's remainder; epilogue
    // Active-Learning:
    kAlRoundStart,  // loop check, order pool, form + deliver a batch
    kAlBatchOut,    // a delivered batch awaits feedback
    kAlRoundEnd,    // retrain touched attributes or terminate
    // Common tail:
    kFinalSweep,  // budget-exhaustion learner sweep where applicable
    kDone,
  };

  // One delivered suggestion awaiting (or already given) feedback.
  struct OutstandingEntry {
    SuggestedUpdate suggestion;
    bool resolved = false;
  };

  // Runs machine steps until a batch is delivered (returned in `batch`)
  // or the loop completes (empty `batch`, state kDone).
  Status Advance(std::vector<SuggestedUpdate>* batch);
  // One phase step each; return the next phase via phase_.
  Status StepIterationStart();
  Status StepRoundStart(std::vector<SuggestedUpdate>* batch);
  Status StepRoundEnd();
  Status StepTakeOver();
  Status StepAlRoundStart(std::vector<SuggestedUpdate>* batch);
  Status StepAlRoundEnd();
  Status StepFinalSweep();

  // Packages live[0..count) as the outstanding batch.
  void DeliverBatch(const std::vector<Update>& live, std::size_t count,
                    AttrId group_attr, ValueId group_value, double voi_score,
                    std::vector<SuggestedUpdate>* batch);

  bool RanksByVoi() const;

  // Splices an admission into the live grouped-iteration state: regroups
  // the pool, carries unchanged groups' scores over, scores minted/changed
  // groups, and remaps picked_group_. Returns the number of groups scored.
  std::size_t MergeAdmittedGroups();

  // The fallible middle of Restore(): Start + pristine check + event
  // replay. Restore() wraps it with the all-or-nothing rollback.
  Status ReplaySnapshot(const SessionSnapshot& snapshot);
  // Returns every loop member to its freshly-constructed value.
  void ResetToNotStarted();

  GdrEngine* engine_;                     // the components + step functions
  std::unique_ptr<GdrEngine> owned_engine_;  // set by the owning ctor
  GdrEngine::ProgressCallback callback_;

  SessionState state_ = SessionState::kRanking;
  Phase phase_ = Phase::kNotStarted;

  // Grouped-iteration position.
  int iterations_ = 0;
  std::vector<UpdateGroup> groups_;
  VoiRanker::Ranking ranking_;
  std::size_t picked_group_ = 0;
  double group_score_ = 0.0;
  std::size_t quota_ = 0;
  std::size_t labeled_in_group_ = 0;
  std::size_t before_feedback_ = 0;
  std::size_t before_decisions_ = 0;
  // Set by AppendDirtyRows, cleared at each iteration/AL-round start: an
  // admission counts as progress in the no-progress epilogues (the new
  // groups deserve an iteration before the loop may terminate).
  bool admitted_since_iteration_ = false;

  // Active-Learning round position.
  std::size_t labeled_in_round_ = 0;
  std::vector<AttrId> touched_attrs_;

  // The outstanding batch.
  std::vector<OutstandingEntry> outstanding_;
  std::size_t resolved_count_ = 0;
  std::uint64_t next_update_id_ = 1;

  // Event log backing Snapshot(); replay suppresses callbacks.
  std::vector<SessionSnapshot::Event> log_;
  bool replaying_ = false;
};

/// Drives `session` to completion with a blocking FeedbackProvider: pull a
/// batch, ask `user` about each still-live suggestion (collecting a
/// volunteered value after a reject), push the answer, repeat until done.
/// This is the whole legacy loop — GdrEngine::Run() is this function plus
/// a session constructed over the engine.
Status PumpSession(GdrSession* session, FeedbackProvider* user);

}  // namespace gdr

#endif  // GDR_CORE_SESSION_H_
