#ifndef GDR_CORE_GDR_H_
#define GDR_CORE_GDR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cfd/violation_index.h"
#include "core/feedback_provider.h"
#include "core/grouping.h"
#include "core/learner_bank.h"
#include "core/voi.h"
#include "data/table.h"
#include "repair/consistency_manager.h"
#include "repair/repair_state.h"
#include "repair/update_generator.h"
#include "repair/update_pool.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gdr {

/// The interaction policies evaluated in Section 5.
enum class Strategy {
  /// Full GDR: VOI group ranking + active-learning (uncertainty) ordering
  /// within the group + learner take-over of the group's remaining updates.
  kGdr,
  /// GDR-S-Learning: VOI ranking, but the user labels a *random* selection
  /// within the group (passive learning); the learner still takes over.
  kGdrSLearning,
  /// GDR-NoLearning: VOI ranking alone; the user verifies every update.
  kGdrNoLearning,
  /// Active-Learning: no grouping/VOI; global uncertainty ordering with
  /// learner take-over at budget exhaustion.
  kActiveLearning,
  /// Greedy: groups ranked by size; the user verifies every update.
  kGreedy,
  /// Random: uniformly random group order; the user verifies everything.
  kRandomRanking,
};

const char* StrategyName(Strategy strategy);

/// Inverse of StrategyName: parses "GDR", "GDR-S-Learning",
/// "GDR-NoLearning", "Active-Learning", "Greedy", "Random"
/// (case-sensitive, exactly as StrategyName prints them). Returns
/// InvalidArgument for anything else, listing the accepted names.
Result<Strategy> StrategyFromName(std::string_view name);

struct GdrOptions {
  /// Sentinel for "no feedback budget": the user keeps answering until the
  /// database is clean or the pool is exhausted.
  static constexpr std::size_t kUnlimitedBudget =
      static_cast<std::size_t>(-1);

  Strategy strategy = Strategy::kGdr;
  /// Maximum number of updates the user will verify (the F of Appendix
  /// B.1); unlimited by default.
  std::size_t feedback_budget = kUnlimitedBudget;
  /// Labels per interactive round n_s (Section 4.2): the user inspects the
  /// n_s top-ordered updates, then the model retrains and reorders.
  int ns = 5;
  std::uint64_t seed = 42;
  LearnerBankOptions learner;
  /// Safety valve on outer iterations.
  int max_outer_iterations = 1000000;
  /// Passes of the final learner sweep applied after the user budget is
  /// exhausted (each confirm/reject can surface new suggestions).
  int learner_sweep_passes = 3;
  /// A learner decision is applied only when the committee's disagreement
  /// entropy is at or below this threshold; more uncertain updates stay in
  /// the pool for the user. This is the "user is satisfied with the
  /// learner predictions" guard of Section 4.2 — the user would not
  /// delegate decisions the committee visibly disagrees on.
  double learner_max_uncertainty = 0.35;
  /// Decisions are delegated to an attribute's model only while its
  /// rolling prediction accuracy on the user's recent labels stays at or
  /// above this threshold (the interactive session's "user is satisfied
  /// with the learner predictions" condition, measured rather than
  /// assumed).
  double learner_min_accuracy = 0.8;
  /// Worker threads for VOI group ranking (Step 4): 1 = serial (default),
  /// 0 = one per hardware thread, N = exactly N workers. Ranking output is
  /// bit-identical for every setting — parallelism only changes wall-clock
  /// time, never scores, order, or repair results.
  std::size_t num_threads = 1;
  /// Non-owning: when set, ranking fans out on this pool instead of a
  /// per-engine one and `num_threads` is ignored. This is how a session
  /// server multiplexes all sessions' ranking work onto one shared pool —
  /// thousands of resident sessions must not mean thousands of worker
  /// threads. The pool must outlive the engine. Scores stay bit-identical:
  /// pool size never affects ranking output, only wall-clock time.
  ThreadPool* shared_pool = nullptr;
  /// VOI scoring implementation: the group-batched closed-form path
  /// (default) or the per-update delta oracle it is differentially pinned
  /// against. Both produce bit-identical scores and ranking order — the
  /// oracle exists for differential suites and perf comparison, never as a
  /// correctness escape hatch.
  VoiRanker::ScoringMode voi_scoring = VoiRanker::ScoringMode::kBatched;
  /// Learner inference implementation, the p̃ side of the same split:
  /// group-batched matrix encoding + tree-at-a-time forest evaluation
  /// (default) or the scalar per-update oracle it is differentially
  /// pinned against. Bit-identical probabilities, scores, and ranking
  /// order either way.
  VoiRanker::InferenceMode learner_inference =
      VoiRanker::InferenceMode::kBatched;
};

/// Per-phase wall-clock timings (seconds), accumulated by the engine.
struct GdrTimings {
  double init_seconds = 0.0;     // Initialize(): index build + pool seeding
  double ranking_seconds = 0.0;  // Step 4: VOI group ranking
  double session_seconds = 0.0;  // group sessions: labels + cascades
  double learner_sweep_seconds = 0.0;  // budget-exhaustion sweeps
  /// Machine time spent inside the session API (NextBatch + SubmitFeedback
  /// bodies). Deliberately excludes the user's think-time between pulls —
  /// a pull-based session may idle for hours while feedback is pending.
  double total_seconds = 0.0;
  /// Hot-path phase breakdown inside ranking (util/perf_counters.h),
  /// synced from the learner bank's and ranker's cumulative counters
  /// after every ranking pass. learner_* covers p̃ evaluation (feature
  /// encoding vs forest tree walks, `learner_inferences` updates total);
  /// voi_probe_* covers the benefit probes (`voi_probes` updates probed).
  double learner_encode_seconds = 0.0;
  double learner_tree_walk_seconds = 0.0;
  double voi_probe_seconds = 0.0;
  std::uint64_t learner_inferences = 0;
  std::uint64_t voi_probes = 0;
};

struct GdrStats {
  std::size_t initial_dirty = 0;  // E of Section 5.2
  std::size_t user_feedback = 0;  // total updates verified by the user
  std::size_t user_confirms = 0;
  std::size_t user_rejects = 0;
  std::size_t user_retains = 0;
  std::size_t user_suggested_values = 0;
  std::size_t learner_decisions = 0;
  std::size_t learner_confirms = 0;
  std::size_t forced_repairs = 0;  // consistency-manager cascades
  std::size_t outer_iterations = 0;
  /// Streaming ingestion counters. appended_rows counts every row admitted
  /// through AppendDirtyRows (clean arrivals included); admitted_dirty
  /// counts the rows that entered the dirty set because of those appends
  /// (arrivals and existing partners alike). initial_dirty stays frozen at
  /// its Initialize() value — E of Section 5.2 is a property of the
  /// initial instance.
  std::size_t appended_rows = 0;
  std::size_t admitted_dirty = 0;
  /// Wall-clock phase breakdown. Excluded from determinism comparisons —
  /// every other field is identical run-to-run for a fixed seed,
  /// regardless of num_threads.
  GdrTimings timings;
};

class GdrSession;

/// The GDR framework of Figure 2: the component container (violation
/// index, update pool, consistency manager, learner bank, VOI ranker) plus
/// the per-strategy *step functions* of Procedure 1. The interactive loop
/// itself lives in GdrSession (core/session.h), which sequences these
/// steps between feedback pulls; `Run()` survives as a compatibility shim
/// that pumps a session with a blocking FeedbackProvider.
///
/// Legacy (push) use:
///   GdrEngine engine(&table, &rules, &user, options);
///   GDR_RETURN_NOT_OK(engine.Initialize());
///   GDR_RETURN_NOT_OK(engine.Run(callback));
///
/// Pull use (production shape — see core/session.h):
///   GdrSession session(&table, &rules, options);
///   GDR_RETURN_NOT_OK(session.Start());
///   while (session.state() != SessionState::kDone) { ... NextBatch ... }
///
/// The table is repaired in place. The engine never reads ground truth;
/// experiment metrics are computed by the caller against engine.index().
class GdrEngine {
 public:
  /// All pointers are non-owning and must outlive the engine. `table` is
  /// the dirty instance to repair. `user` may be nullptr when the engine
  /// is driven through a GdrSession (only the Run() shim needs it).
  GdrEngine(Table* table, const RuleSet* rules, FeedbackProvider* user,
            GdrOptions options = {});

  GdrEngine(const GdrEngine&) = delete;
  GdrEngine& operator=(const GdrEngine&) = delete;

  /// Step 1–2 of Procedure 1: detects dirty tuples, seeds the candidate
  /// pool, fixes the rule weights w_i = |D(φ_i)|/|D| on the initial
  /// instance.
  Status Initialize();

  /// Outcome of one streaming admission (AppendDirtyRows).
  struct AppendOutcome {
    RowId first_row = -1;        // first id of the appended batch
    std::size_t rows = 0;        // rows appended (== batch size)
    std::size_t newly_dirty = 0;  // rows that entered the dirty set
  };

  /// Streaming ingestion: appends `rows` to the live instance (incremental
  /// index maintenance via ViolationIndex::AppendRows, all-or-nothing),
  /// admits the resulting violations into the update pool
  /// (ConsistencyManager::AdmitRows), and refreshes the rule weights
  /// w_i = |D(φ_i)|/|D| for the grown instance. Requires Initialize().
  /// Rows violating no rule are appended but admit nothing. Deterministic:
  /// the same engine history plus the same appends yields a bit-identical
  /// engine, which is what lets GdrSession record appends in its event log.
  Result<AppendOutcome> AppendDirtyRows(
      const std::vector<std::vector<std::string>>& rows);

  /// Invoked after every user label and after every learner batch, with
  /// the engine in a consistent state; `user_feedback` is the labels spent
  /// so far. Used by harnesses to record quality curves.
  using ProgressCallback =
      std::function<void(const GdrEngine& engine, std::size_t user_feedback)>;

  /// Steps 3–10 of Procedure 1: the interactive loop, as a compatibility
  /// shim. Constructs a GdrSession over this engine and pumps it against
  /// the FeedbackProvider passed at construction (which must be non-null
  /// for this entry point). Behavior, stats, and repairs are bit-identical
  /// to driving the session by hand with the same answers. Terminates when
  /// the database is clean, the candidate pool is exhausted, the feedback
  /// budget is spent (after the final learner sweep, for learning
  /// strategies), or an iteration makes no progress.
  Status Run(const ProgressCallback& callback = nullptr);

  const Table& table() const { return *table_; }
  const ViolationIndex& index() const { return *index_; }
  const UpdatePool& pool() const { return *pool_; }
  const GdrStats& stats() const { return stats_; }
  const std::vector<double>& rule_weights() const { return weights_; }
  const LearnerBank& learner() const { return *bank_; }
  const ConsistencyManager& consistency() const { return *manager_; }

 private:
  // The loop position (which group, how far into its quota, which batch is
  // awaiting feedback) lives in GdrSession; the engine contributes the
  // state-free per-strategy step functions below, each resumable at any
  // point because all of its inputs are engine components.
  friend class GdrSession;

  bool UsesLearner() const {
    return options_.strategy == Strategy::kGdr ||
           options_.strategy == Strategy::kGdrSLearning ||
           options_.strategy == Strategy::kActiveLearning;
  }
  bool UserBudgetLeft() const {
    return stats_.user_feedback < options_.feedback_budget;
  }

  // Picks the group to present per strategy; returns false if none.
  bool PickGroup(const std::vector<UpdateGroup>& groups,
                 const VoiRanker::Ranking& ranking, std::size_t* picked,
                 double* gmax) const;

  // Per-group user label quota d_i = E·(1 − g(c_i)/g_max), clamped to
  // [min(ns, |c|), |c|] (see DESIGN.md on the clamp).
  std::size_t GroupQuota(const UpdateGroup& group, double score,
                         double gmax) const;

  // One unit of user feedback on `update`: records the prediction outcome
  // against the displayed model prediction, updates stats, trains the bank
  // (learning strategies), applies the feedback through the consistency
  // manager, and applies a volunteered correct value (reject only).
  Status ApplyUserFeedback(const Update& update, Feedback feedback,
                           const std::optional<std::string>& volunteered,
                           const ProgressCallback& callback);

  // Learner take-over of one group (Section 4.2's "user is satisfied with
  // the learner predictions"): the trained, reliable, confident model
  // decides the group's remaining pooled updates.
  Status TakeOverGroup(const UpdateGroup& group,
                       const ProgressCallback& callback);

  // Applies learner predictions to every pooled update with a trained
  // model (budget-exhaustion sweep).
  Status LearnerSweep(const ProgressCallback& callback);

  // Applies one learner decision (no training-set growth).
  Status ApplyLearnerDecision(const Update& update, Feedback feedback);

  // Orders `updates` for user inspection per strategy (in place).
  void OrderForSession(std::vector<Update>* updates);

  // Copies the bank's and ranker's cumulative phase counters into
  // stats_.timings (called after every ranking pass; both sources only
  // ever grow, so assignment — not accumulation — is correct).
  void SyncPerfTimings();

  // Validated snapshot: updates of `group` still present in the pool.
  std::vector<Update> LiveGroupUpdates(const UpdateGroup& group) const;

  Table* table_;
  const RuleSet* rules_;
  FeedbackProvider* user_;
  GdrOptions options_;

  std::unique_ptr<ViolationIndex> index_;
  std::unique_ptr<UpdatePool> pool_;
  std::unique_ptr<RepairState> state_;
  std::unique_ptr<UpdateGenerator> generator_;
  std::unique_ptr<ConsistencyManager> manager_;
  std::unique_ptr<LearnerBank> bank_;
  std::unique_ptr<ThreadPool> workers_;  // nullptr when ranking serially
  std::unique_ptr<VoiRanker> voi_;
  std::vector<double> weights_;
  mutable Rng rng_{0};
  GdrStats stats_;
  bool initialized_ = false;
};

}  // namespace gdr

#endif  // GDR_CORE_GDR_H_
