#ifndef GDR_CORE_LEARNER_BANK_H_
#define GDR_CORE_LEARNER_BANK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "cfd/violation_index.h"
#include "data/table.h"
#include "ml/example.h"
#include "ml/random_forest.h"
#include "repair/update.h"
#include "util/perf_counters.h"
#include "util/result.h"

namespace gdr {

struct LearnerBankOptions {
  /// Forest configuration shared by all per-attribute models (the paper
  /// uses WEKA random forests with k = 10 and defaults).
  RandomForestOptions forest;
  /// A model only starts predicting after this many training examples;
  /// below the threshold the bank reports "untrained" and the engine falls
  /// back to the repair score s_j.
  std::size_t min_training_examples = 25;
  std::uint64_t seed = 17;
};

/// The GDR learning component (Section 4.2): one classification model
/// M_{A_i} per attribute, each predicting the user's feedback
/// {confirm, reject, retain} for suggested updates of that attribute.
///
/// Training examples follow the paper's data representation
///   ⟨t[A_1], …, t[A_n], v, R(t[A_i], v), F⟩:
/// all current attribute values of the tuple (categorical), the suggested
/// value (categorical), and the relationship function R between t[A_i] and
/// v. The paper leaves R open ("we use a string similarity function");
/// this implementation supplies a small family of relationship features:
///   * normalized edit similarity sim(t[A_i], v),
///   * the update's repair score s,
///   * active-instance supports of the current and suggested values
///     (log-scaled) — "is the current value a rare outlier?",
///   * the tuple's violated-rule count now and under the hypothetical
///     update — "does the suggestion actually mend the tuple?".
/// The consistency features are what let a model generalize across data
/// sources instead of memorizing source ids. Categorical feature values
/// are the table's interned value ids, which keeps example construction
/// allocation-free on the hot path.
class LearnerBank {
 public:
  /// `table` and `index` are non-owning and must outlive the bank;
  /// features are encoded against the table's dictionaries and the index's
  /// live violation state.
  LearnerBank(const Table* table, const ViolationIndex* index,
              LearnerBankOptions options = {});

  /// Records user feedback on `update` as a training example for the
  /// attribute's model (does not retrain; call Retrain).
  Status AddFeedback(const Update& update, Feedback feedback);

  /// Retrains the attribute's forest if it has reached the example
  /// threshold. Cheap no-op otherwise.
  Status Retrain(AttrId attr);

  /// True once the attribute's model is trained and predicting.
  bool IsTrained(AttrId attr) const;

  /// Committee-majority feedback prediction. Requires IsTrained(attr).
  Feedback PredictFeedback(const Update& update) const;

  /// Committee disagreement entropy in [0,1] (the active-learning
  /// ordering score). Requires IsTrained(attr).
  double Uncertainty(const Update& update) const;

  /// Uncertainty with the untrained fallback applied: committee
  /// disagreement once the attribute's model predicts, 1.0 (maximally
  /// uncertain) before. The uncertainty-ordering and the session batch
  /// metadata both use this form.
  double UncertaintyOrMax(const Update& update) const {
    return IsTrained(update.attr) ? Uncertainty(update) : 1.0;
  }

  /// p̃_j for VOI: the committee's confirm-vote fraction when trained,
  /// otherwise the update's repair score s_j (Section 4.1, "User Model").
  double ConfirmProbability(const Update& update) const;

  /// Batched p̃: fills `out` (resized to updates.size()) with each
  /// update's ConfirmProbability. Updates sharing one attribute — a whole
  /// UpdateGroup, the VOI ranking unit — are encoded into one row-major
  /// feature matrix (member scratch, one layout pass) and evaluated
  /// tree-at-a-time by RandomForest::VoteFractionsBatch; untrained
  /// attributes fall back to the repair score per update, exactly like the
  /// scalar call. Bit-identical to calling ConfirmProbability per update
  /// (same feature doubles, same vote accumulation order per row), which
  /// the learner_batch differential suite enforces. Not thread-safe
  /// (shared scratch): callers evaluate probabilities on one thread, the
  /// contract VoiRanker already holds.
  void ConfirmProbabilities(std::span<const Update> updates,
                            std::vector<double>* out) const;

  /// Feature encoding for one suggested update (exposed for tests).
  std::vector<double> Encode(const Update& update) const;

  /// Cumulative hot-path phase counters (encode ns / tree-walk ns, with
  /// per-phase item counts). Accumulated by ConfirmProbability,
  /// ConfirmProbabilities, and Uncertainty; surfaced through
  /// GdrStats::timings and the server stats reply.
  const PerfCounters& perf_counters() const { return perf_; }
  void ResetPerfCounters() { perf_.Reset(); }

  std::size_t TrainingExamples(AttrId attr) const {
    return sets_[static_cast<std::size_t>(attr)].size();
  }

  /// Records whether the model's prediction `predicted` matched the user's
  /// actual feedback for one labeled update (Section 4.2: the user
  /// inspects the learner's displayed predictions while labeling; this is
  /// how "the user decides whether the classifiers are accurate").
  /// Outcomes are tracked per predicted class: a model can be excellent at
  /// recognizing retains yet useless at confirms, and delegating must
  /// distinguish the two.
  void RecordPredictionOutcome(AttrId attr, Feedback predicted, bool correct);

  /// Rolling accuracy of this attribute's recent `predicted`-class
  /// predictions (1.0 when nothing recorded yet).
  double RollingAccuracy(AttrId attr, Feedback predicted) const;

  /// True when the model is trained and its recent predictions *of this
  /// class* have been accurate enough for the user to delegate them:
  /// ≥ min_samples observed outcomes with rolling accuracy ≥ min_accuracy.
  bool IsReliable(AttrId attr, Feedback predicted, double min_accuracy,
                  std::size_t min_samples = 8) const;

 private:
  static constexpr std::size_t kAccuracyWindow = 20;

  // Number of features per encoded example (schema width).
  std::size_t EncodedWidth() const { return table_->num_attrs() + 7; }

  // Writes one update's features into `dst` (EncodedWidth() doubles).
  // The one canonical encoding — Encode and the batch matrix layout both
  // funnel through it, which is what keeps the batched features
  // bit-identical to the scalar path.
  void EncodeIntoRaw(const Update& update, double* dst) const;

  const Table* table_;
  const ViolationIndex* index_;
  LearnerBankOptions options_;
  std::vector<TrainingSet> sets_;      // one per attribute
  std::vector<RandomForest> models_;   // one per attribute
  std::vector<bool> trained_;
  std::vector<bool> stale_;            // feedback added since last train
  // Ring buffers of recent prediction outcomes, one per (attribute,
  // predicted class), indexed attr * kNumFeedbackClasses + class.
  std::vector<std::vector<bool>> outcome_window_;
  std::vector<std::size_t> outcome_next_;   // ring cursors
  std::vector<std::size_t> outcome_count_;  // total outcomes observed

  // Hot-path scratch (prediction-side methods are logically const but
  // reuse these buffers — the reason the bank is documented not
  // thread-safe for concurrent prediction calls).
  mutable std::vector<double> encode_scratch_;    // one example's features
  mutable std::vector<double> matrix_scratch_;    // batch feature matrix
  mutable std::vector<double> fraction_scratch_;  // vote fractions
  mutable PerfCounters perf_;
};

}  // namespace gdr

#endif  // GDR_CORE_LEARNER_BANK_H_
