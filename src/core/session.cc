#include "core/session.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "util/stopwatch.h"
#include "util/strings.h"

namespace gdr {

const char* SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kAwaitingFeedback:
      return "awaiting-feedback";
    case SessionState::kRanking:
      return "ranking";
    case SessionState::kDone:
      return "done";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// SessionSnapshot wire format
// ---------------------------------------------------------------------------

namespace {

// Accumulates its scope's elapsed wall-clock into *sink on destruction,
// so every early return of a step function is accounted for.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += watch_.ElapsedSeconds(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch watch_;
  double* sink_;
};

constexpr char kSnapshotMagic[] = "GDRSNAP";
// Version 2 added the append ("A") event for streaming admissions;
// version 3 added the trailing "end" marker, which is how Deserialize
// distinguishes a complete snapshot from a truncated prefix (a crash
// mid-write used to be able to produce a prefix that still parsed, with a
// silently shortened last value). Version-1/2 snapshots (no marker) still
// deserialize.
constexpr int kSnapshotVersion = 3;

}  // namespace

std::string SessionSnapshot::Serialize() const {
  std::ostringstream out;
  out.precision(17);  // doubles round-trip exactly at 17 significant digits
  out << kSnapshotMagic << " " << kSnapshotVersion << "\n";
  out << "strategy " << StrategyName(strategy) << "\n";
  out << "seed " << seed << "\n";
  out << "budget " << feedback_budget << "\n";
  out << "ns " << ns << "\n";
  out << "max_outer " << max_outer_iterations << "\n";
  out << "sweep_passes " << learner_sweep_passes << "\n";
  out << "max_uncertainty " << learner_max_uncertainty << "\n";
  out << "min_accuracy " << learner_min_accuracy << "\n";
  out << "events " << events.size() << "\n";
  for (const Event& event : events) {
    if (event.kind == Event::Kind::kPull) {
      out << "P\n";
      continue;
    }
    if (event.kind == Event::Kind::kAppend) {
      // Rows are recorded verbatim so replay re-appends exactly what the
      // live session ingested; arity is uniform (AppendRows validated it).
      const std::size_t arity = event.rows.empty() ? 0 : event.rows[0].size();
      out << "A " << event.rows.size() << " " << arity << " "
          << event.newly_dirty << "\n";
      for (const std::vector<std::string>& row : event.rows) {
        for (std::size_t a = 0; a < row.size(); ++a) {
          if (a > 0) out << " ";
          // Any byte is legal in a cell value.
          out << "V" << EncodeHex(row[a]);
        }
        out << "\n";
      }
      continue;
    }
    out << "S " << event.update_id << " " << static_cast<int>(event.feedback)
        << " " << (event.applied ? "A" : "X") << " ";
    if (event.has_value) {
      out << "V" << EncodeHex(event.value);
    } else {
      out << "-";
    }
    out << "\n";
  }
  out << "end\n";
  return out.str();
}

Result<SessionSnapshot> SessionSnapshot::Deserialize(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a GDR session snapshot");
  }
  if (version < 1 || version > kSnapshotVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  SessionSnapshot snapshot;
  std::string key, strategy_name;
  unsigned long long seed = 0, budget = 0;
  std::size_t num_events = 0;
  if (!(in >> key >> strategy_name) || key != "strategy" ||
      !(in >> key >> seed) || key != "seed" ||          //
      !(in >> key >> budget) || key != "budget" ||      //
      !(in >> key >> snapshot.ns) || key != "ns" ||     //
      !(in >> key >> snapshot.max_outer_iterations) || key != "max_outer" ||
      !(in >> key >> snapshot.learner_sweep_passes) ||
      key != "sweep_passes" ||
      !(in >> key >> snapshot.learner_max_uncertainty) ||
      key != "max_uncertainty" ||
      !(in >> key >> snapshot.learner_min_accuracy) ||
      key != "min_accuracy" ||
      !(in >> key >> num_events) || key != "events") {
    return Status::InvalidArgument("malformed snapshot header");
  }
  GDR_ASSIGN_OR_RETURN(snapshot.strategy, StrategyFromName(strategy_name));
  snapshot.seed = seed;
  snapshot.feedback_budget = static_cast<std::size_t>(budget);
  snapshot.events.reserve(num_events);
  for (std::size_t i = 0; i < num_events; ++i) {
    std::string tag;
    if (!(in >> tag)) {
      return Status::InvalidArgument("snapshot truncated: expected " +
                                     std::to_string(num_events) + " events");
    }
    Event event;
    if (tag == "P") {
      event.kind = Event::Kind::kPull;
    } else if (tag == "S") {
      event.kind = Event::Kind::kSubmit;
      int feedback = -1;
      std::string applied, payload;
      if (!(in >> event.update_id >> feedback >> applied >> payload) ||
          feedback < 0 || feedback >= kNumFeedbackClasses ||
          (applied != "A" && applied != "X")) {
        return Status::InvalidArgument("malformed submit event");
      }
      event.feedback = static_cast<Feedback>(feedback);
      event.applied = applied == "A";
      if (payload != "-") {
        if (payload.front() != 'V' ||
            !DecodeHex(std::string_view(payload).substr(1), &event.value)) {
          return Status::InvalidArgument("malformed volunteered value");
        }
        event.has_value = true;
      }
    } else if (tag == "A") {
      event.kind = Event::Kind::kAppend;
      std::size_t num_rows = 0, arity = 0;
      if (!(in >> num_rows >> arity >> event.newly_dirty)) {
        return Status::InvalidArgument("malformed append event");
      }
      event.rows.assign(num_rows, std::vector<std::string>(arity));
      for (std::vector<std::string>& row : event.rows) {
        for (std::string& cell : row) {
          std::string token;
          if (!(in >> token) || token.front() != 'V' ||
              !DecodeHex(std::string_view(token).substr(1), &cell)) {
            return Status::InvalidArgument("malformed append event cell");
          }
        }
      }
    } else {
      return Status::InvalidArgument("unknown snapshot event tag '" + tag +
                                     "'");
    }
    snapshot.events.push_back(std::move(event));
  }
  if (version >= 3) {
    // The explicit terminator is the truncation check: without it, a
    // prefix cut inside the last event's hex payload could parse as a
    // complete snapshot with a silently corrupted value.
    std::string terminator;
    if (!(in >> terminator) || terminator != "end") {
      return Status::InvalidArgument(
          "snapshot truncated: missing 'end' marker after events");
    }
  }
  return snapshot;
}

// ---------------------------------------------------------------------------
// GdrSession
// ---------------------------------------------------------------------------

GdrSession::GdrSession(Table* table, const RuleSet* rules, GdrOptions options)
    : engine_(nullptr) {
  owned_engine_ =
      std::make_unique<GdrEngine>(table, rules, nullptr, std::move(options));
  engine_ = owned_engine_.get();
}

GdrSession::GdrSession(GdrEngine* engine) : engine_(engine) {}

GdrSession::~GdrSession() = default;

void GdrSession::SetProgressCallback(GdrEngine::ProgressCallback callback) {
  callback_ = std::move(callback);
}

bool GdrSession::RanksByVoi() const {
  const Strategy s = engine_->options_.strategy;
  return s == Strategy::kGdr || s == Strategy::kGdrSLearning ||
         s == Strategy::kGdrNoLearning;
}

Status GdrSession::Start() {
  if (phase_ != Phase::kNotStarted) {
    return Status::FailedPrecondition("session already started");
  }
  if (!engine_->initialized_) {
    GDR_RETURN_NOT_OK(engine_->Initialize());
  }
  iterations_ = 0;
  phase_ = engine_->options_.strategy == Strategy::kActiveLearning
               ? Phase::kAlRoundStart
               : Phase::kIterationStart;
  state_ = SessionState::kRanking;
  return Status::OK();
}

Result<std::vector<SuggestedUpdate>> GdrSession::NextBatch() {
  if (phase_ == Phase::kNotStarted) {
    return Status::FailedPrecondition("call Start() before NextBatch()");
  }
  std::vector<SuggestedUpdate> batch;
  if (state_ == SessionState::kDone) return batch;
  const ScopedTimer timer(&engine_->stats_.timings.total_seconds);
  SessionSnapshot::Event pull;
  pull.kind = SessionSnapshot::Event::Kind::kPull;
  log_.push_back(pull);
  state_ = SessionState::kRanking;
  GDR_RETURN_NOT_OK(Advance(&batch));
  return batch;
}

Result<FeedbackOutcome> GdrSession::SubmitFeedback(
    std::uint64_t update_id, Feedback feedback,
    std::optional<std::string> suggested_value) {
  if (phase_ == Phase::kNotStarted) {
    return Status::FailedPrecondition("call Start() before SubmitFeedback()");
  }
  OutstandingEntry* entry = nullptr;
  for (OutstandingEntry& candidate : outstanding_) {
    if (candidate.suggestion.update_id == update_id) {
      entry = &candidate;
      break;
    }
  }
  if (entry == nullptr) return FeedbackOutcome::kUnknownId;
  if (entry->resolved) return FeedbackOutcome::kDuplicate;

  const ScopedTimer session_timer(
      &engine_->stats_.timings.session_seconds);
  const ScopedTimer total_timer(&engine_->stats_.timings.total_seconds);
  FeedbackOutcome outcome;
  if (!engine_->pool_->IsLive(entry->suggestion.update)) {
    // Retired or replaced by a cascade from an earlier answer in this
    // batch: the legacy loop skipped these without consuming feedback.
    outcome = FeedbackOutcome::kStale;
  } else {
    const Status applied = engine_->ApplyUserFeedback(
        entry->suggestion.update, feedback, suggested_value,
        replaying_ ? GdrEngine::ProgressCallback() : callback_);
    // On failure the entry stays unresolved and unlogged: the submission
    // is retryable and a snapshot never records a half-applied answer.
    if (!applied.ok()) return applied;
    if (engine_->options_.strategy == Strategy::kActiveLearning) {
      ++labeled_in_round_;
      touched_attrs_.push_back(entry->suggestion.update.attr);
    } else {
      ++labeled_in_group_;
    }
    outcome = FeedbackOutcome::kApplied;
  }
  entry->resolved = true;
  ++resolved_count_;
  log_.push_back(SessionSnapshot::Event{
      .kind = SessionSnapshot::Event::Kind::kSubmit,
      .update_id = update_id,
      .feedback = feedback,
      .applied = outcome == FeedbackOutcome::kApplied,
      .has_value = suggested_value.has_value(),
      .value = suggested_value.value_or(std::string())});
  if (resolved_count_ == outstanding_.size()) {
    // The batch is fully answered; machine steps (retrain, reorder, group
    // transition) run on the next pull.
    state_ = SessionState::kRanking;
  }
  return outcome;
}

Result<SessionAppendOutcome> GdrSession::AppendDirtyRows(
    const std::vector<std::vector<std::string>>& rows) {
  if (phase_ == Phase::kNotStarted) {
    return Status::FailedPrecondition(
        "call Start() before AppendDirtyRows()");
  }
  SessionAppendOutcome outcome;
  if (rows.empty()) return outcome;  // nothing ingested, nothing logged
  GdrEngine& engine = *engine_;
  const ScopedTimer total_timer(&engine.stats_.timings.total_seconds);
  const std::int64_t pool_before =
      static_cast<std::int64_t>(engine.pool_->size());
  GDR_ASSIGN_OR_RETURN(const GdrEngine::AppendOutcome admitted,
                       engine.AppendDirtyRows(rows));
  outcome.rows_appended = admitted.rows;
  outcome.newly_dirty = admitted.newly_dirty;
  outcome.pool_delta =
      static_cast<std::int64_t>(engine.pool_->size()) - pool_before;

  if (outcome.newly_dirty > 0 || outcome.pool_delta != 0) {
    // The admission must count as progress in the no-progress epilogues:
    // the merged-in groups deserve an iteration before the loop may end.
    admitted_since_iteration_ = true;
    if (phase_ == Phase::kBatchOut) {
      // A grouped iteration is in flight: merge the admitted updates into
      // the live ranking without rescoring untouched groups.
      outcome.groups_rescored = MergeAdmittedGroups();
    }
  }
  if (state_ == SessionState::kDone && engine.manager_->HasDirtyRows() &&
      !engine.pool_->empty()) {
    // The appends introduced dirt after completion: re-arm the loop. The
    // next pull re-checks budget and iteration limits as usual.
    phase_ = engine.options_.strategy == Strategy::kActiveLearning
                 ? Phase::kAlRoundStart
                 : Phase::kIterationStart;
    state_ = SessionState::kRanking;
    outcome.revived = true;
  }

  SessionSnapshot::Event event;
  event.kind = SessionSnapshot::Event::Kind::kAppend;
  event.rows = rows;
  event.newly_dirty = outcome.newly_dirty;
  log_.push_back(std::move(event));
  return outcome;
}

std::size_t GdrSession::MergeAdmittedGroups() {
  GdrEngine& engine = *engine_;
  const Stopwatch merge_watch;
  const UpdateGroup picked_old = groups_[picked_group_];
  const double picked_score = group_score_;

  std::vector<UpdateGroup> fresh = GroupUpdates(*engine.pool_);
  std::map<std::pair<AttrId, ValueId>, std::size_t> old_index;
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    old_index.emplace(std::make_pair(groups_[i].attr, groups_[i].value), i);
  }
  // Update::operator== ignores the score, but a regenerated suggestion
  // with a different score must count as a changed group.
  const auto same_updates = [](const UpdateGroup& a, const UpdateGroup& b) {
    if (a.updates.size() != b.updates.size()) return false;
    for (std::size_t i = 0; i < a.updates.size(); ++i) {
      if (!(a.updates[i] == b.updates[i]) ||
          a.updates[i].score != b.updates[i].score) {
        return false;
      }
    }
    return true;
  };

  const bool voi = RanksByVoi();
  std::vector<double> scores(fresh.size(), 0.0);
  std::size_t rescored = 0;
  std::size_t new_picked = fresh.size();
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const auto it = old_index.find({fresh[i].attr, fresh[i].value});
    const bool unchanged =
        it != old_index.end() && same_updates(fresh[i], groups_[it->second]);
    if (unchanged) {
      if (voi) scores[i] = ranking_.ScoreOf(it->second);
    } else {
      // Minted or changed by the admission: (re)score it. Untouched
      // groups above keep the score computed at iteration start — that
      // score may be stale w.r.t. the grown denominators, which is the
      // documented staleness tolerance (full rescore next iteration).
      if (voi) {
        scores[i] = engine.voi_->ScoreGroup(fresh[i], [&engine](const Update& u) {
          return engine.bank_->ConfirmProbability(u);
        });
      }
      ++rescored;
    }
    if (fresh[i].attr == picked_old.attr &&
        fresh[i].value == picked_old.value) {
      new_picked = i;
    }
  }
  if (new_picked == fresh.size()) {
    // The picked (attr, value) vanished — a partner revisit can replace a
    // suggestion's value. Keep the old group object so the in-flight group
    // session drains naturally: its dead updates fall out via
    // LiveGroupUpdates and the session moves on to take-over.
    fresh.push_back(picked_old);
    scores.push_back(picked_score);
    new_picked = fresh.size() - 1;
  }
  groups_ = std::move(fresh);
  picked_group_ = new_picked;
  if (voi) {
    // Rebuild the order exactly as Rank() does: descending score, ties by
    // ascending group index.
    ranking_.scores = std::move(scores);
    ranking_.order.resize(groups_.size());
    for (std::size_t i = 0; i < groups_.size(); ++i) ranking_.order[i] = i;
    std::stable_sort(ranking_.order.begin(), ranking_.order.end(),
                     [this](std::size_t a, std::size_t b) {
                       return ranking_.scores[a] > ranking_.scores[b];
                     });
  }
  engine.stats_.timings.ranking_seconds += merge_watch.ElapsedSeconds();
  engine.SyncPerfTimings();
  return rescored;
}

bool GdrSession::IsLive(std::uint64_t update_id) const {
  for (const OutstandingEntry& entry : outstanding_) {
    if (entry.suggestion.update_id == update_id) {
      return !entry.resolved && engine_->pool_->IsLive(entry.suggestion.update);
    }
  }
  return false;
}

std::vector<SuggestedUpdate> GdrSession::Outstanding() const {
  std::vector<SuggestedUpdate> pending;
  for (const OutstandingEntry& entry : outstanding_) {
    if (!entry.resolved) pending.push_back(entry.suggestion);
  }
  return pending;
}

Status GdrSession::Advance(std::vector<SuggestedUpdate>* batch) {
  while (true) {
    switch (phase_) {
      case Phase::kNotStarted:
        return Status::FailedPrecondition("session not started");
      case Phase::kIterationStart:
        GDR_RETURN_NOT_OK(StepIterationStart());
        break;
      case Phase::kRoundStart:
        GDR_RETURN_NOT_OK(StepRoundStart(batch));
        if (!batch->empty()) return Status::OK();
        break;
      case Phase::kBatchOut:
        // Pulled again with suggestions unresolved: abandon the remainder
        // (they stay pooled and will be re-presented) and close the round.
        phase_ = Phase::kRoundEnd;
        break;
      case Phase::kRoundEnd:
        GDR_RETURN_NOT_OK(StepRoundEnd());
        break;
      case Phase::kTakeOver:
        GDR_RETURN_NOT_OK(StepTakeOver());
        break;
      case Phase::kAlRoundStart:
        GDR_RETURN_NOT_OK(StepAlRoundStart(batch));
        if (!batch->empty()) return Status::OK();
        break;
      case Phase::kAlBatchOut:
        phase_ = Phase::kAlRoundEnd;
        break;
      case Phase::kAlRoundEnd:
        GDR_RETURN_NOT_OK(StepAlRoundEnd());
        break;
      case Phase::kFinalSweep:
        GDR_RETURN_NOT_OK(StepFinalSweep());
        return Status::OK();
      case Phase::kDone:
        return Status::OK();
    }
  }
}

Status GdrSession::StepIterationStart() {
  GdrEngine& engine = *engine_;
  if (!(iterations_ < engine.options_.max_outer_iterations &&
        engine.manager_->HasDirtyRows() && !engine.pool_->empty() &&
        engine.UserBudgetLeft())) {
    phase_ = Phase::kFinalSweep;
    return Status::OK();
  }
  ++iterations_;
  ++engine.stats_.outer_iterations;

  groups_ = GroupUpdates(*engine.pool_);
  if (groups_.empty()) {
    phase_ = Phase::kFinalSweep;
    return Status::OK();
  }
  ranking_ = VoiRanker::Ranking{};
  if (RanksByVoi()) {
    const Stopwatch ranking_watch;
    ranking_ = engine.voi_->Rank(groups_, [&engine](const Update& u) {
      return engine.bank_->ConfirmProbability(u);
    });
    engine.stats_.timings.ranking_seconds += ranking_watch.ElapsedSeconds();
    engine.SyncPerfTimings();
  }
  double gmax = 0.0;
  if (!engine.PickGroup(groups_, ranking_, &picked_group_, &gmax)) {
    phase_ = Phase::kFinalSweep;
    return Status::OK();
  }
  group_score_ = RanksByVoi() ? ranking_.ScoreOf(picked_group_) : 0.0;
  quota_ = engine.GroupQuota(groups_[picked_group_], group_score_, gmax);
  labeled_in_group_ = 0;
  before_feedback_ = engine.stats_.user_feedback;
  before_decisions_ = engine.stats_.learner_decisions;
  admitted_since_iteration_ = false;
  phase_ = Phase::kRoundStart;
  return Status::OK();
}

Status GdrSession::StepRoundStart(std::vector<SuggestedUpdate>* batch) {
  GdrEngine& engine = *engine_;
  const ScopedTimer timer(&engine.stats_.timings.session_seconds);
  if (!(labeled_in_group_ < quota_ && engine.UserBudgetLeft())) {
    phase_ = Phase::kTakeOver;
    return Status::OK();
  }
  const UpdateGroup& group = groups_[picked_group_];
  std::vector<Update> live = engine.LiveGroupUpdates(group);
  if (live.empty()) {
    phase_ = Phase::kTakeOver;
    return Status::OK();
  }
  engine.OrderForSession(&live);
  const std::size_t count = std::min(
      {static_cast<std::size_t>(engine.options_.ns),
       quota_ - labeled_in_group_,
       engine.options_.feedback_budget - engine.stats_.user_feedback,
       live.size()});
  if (count == 0) {
    phase_ = Phase::kTakeOver;
    return Status::OK();
  }
  DeliverBatch(live, count, group.attr, group.value, group_score_, batch);
  phase_ = Phase::kBatchOut;
  state_ = SessionState::kAwaitingFeedback;
  return Status::OK();
}

Status GdrSession::StepRoundEnd() {
  GdrEngine& engine = *engine_;
  const ScopedTimer timer(&engine.stats_.timings.session_seconds);
  outstanding_.clear();
  resolved_count_ = 0;
  Status status = Status::OK();
  if (engine.UsesLearner()) {
    status = engine.bank_->Retrain(groups_[picked_group_].attr);
  }
  phase_ = Phase::kRoundStart;
  return status;
}

Status GdrSession::StepTakeOver() {
  GdrEngine& engine = *engine_;
  const ScopedTimer timer(&engine.stats_.timings.session_seconds);
  const Status status =
      engine.TakeOverGroup(groups_[picked_group_],
                           replaying_ ? GdrEngine::ProgressCallback()
                                      : callback_);
  // Iteration epilogue: a group session that produced neither user
  // feedback nor learner decisions cannot make progress (every suggestion
  // went stale); terminate rather than loop. A mid-iteration admission
  // counts as progress — the merged-in groups have not been presented yet.
  if (engine.stats_.user_feedback == before_feedback_ &&
      engine.stats_.learner_decisions == before_decisions_ &&
      !admitted_since_iteration_) {
    phase_ = Phase::kFinalSweep;
  } else {
    phase_ = Phase::kIterationStart;
  }
  return status;
}

Status GdrSession::StepAlRoundStart(std::vector<SuggestedUpdate>* batch) {
  GdrEngine& engine = *engine_;
  const ScopedTimer timer(&engine.stats_.timings.session_seconds);
  if (!(engine.UserBudgetLeft() && !engine.pool_->empty() &&
        engine.manager_->HasDirtyRows())) {
    phase_ = Phase::kFinalSweep;
    return Status::OK();
  }
  std::vector<Update> live = engine.pool_->All();
  engine.OrderForSession(&live);
  const std::size_t count = std::min(
      {static_cast<std::size_t>(engine.options_.ns),
       engine.options_.feedback_budget - engine.stats_.user_feedback,
       live.size()});
  if (count == 0) {
    phase_ = Phase::kFinalSweep;
    return Status::OK();
  }
  labeled_in_round_ = 0;
  touched_attrs_.clear();
  admitted_since_iteration_ = false;
  // Ungrouped: each suggestion is presented under its own cell.
  DeliverBatch(live, count, kInvalidAttrId, kInvalidValueId, 0.0, batch);
  phase_ = Phase::kAlBatchOut;
  state_ = SessionState::kAwaitingFeedback;
  return Status::OK();
}

Status GdrSession::StepAlRoundEnd() {
  GdrEngine& engine = *engine_;
  const ScopedTimer timer(&engine.stats_.timings.session_seconds);
  // Distinguish abandonment from exhaustion before discarding the batch:
  // an unresolved suggestion that is *still live* means the caller walked
  // away from it (pulled again without answering) — it must be
  // re-presented, not treated as the all-stale termination signal. A
  // pumped session never leaves live suggestions unresolved, so this
  // branch cannot affect the Run() shim.
  bool abandoned_live = false;
  for (const OutstandingEntry& entry : outstanding_) {
    if (!entry.resolved && engine.pool_->IsLive(entry.suggestion.update)) {
      abandoned_live = true;
      break;
    }
  }
  outstanding_.clear();
  resolved_count_ = 0;
  if (labeled_in_round_ == 0) {
    if (abandoned_live || admitted_since_iteration_) {
      // Nothing was consumed, but either live suggestions were walked away
      // from or an admission refreshed the pool; re-rank and re-present.
      phase_ = Phase::kAlRoundStart;
    } else {
      // A whole round without a single consumable label: the pool has
      // gone entirely stale relative to the ordering; stop asking.
      phase_ = Phase::kFinalSweep;
    }
    return Status::OK();
  }
  std::sort(touched_attrs_.begin(), touched_attrs_.end());
  touched_attrs_.erase(
      std::unique(touched_attrs_.begin(), touched_attrs_.end()),
      touched_attrs_.end());
  for (AttrId attr : touched_attrs_) {
    GDR_RETURN_NOT_OK(engine.bank_->Retrain(attr));
  }
  ++engine.stats_.outer_iterations;
  phase_ = Phase::kAlRoundStart;
  return Status::OK();
}

Status GdrSession::StepFinalSweep() {
  GdrEngine& engine = *engine_;
  // Active-Learning always ends with a sweep; grouped learning strategies
  // sweep only when the loop ended because the user budget ran out.
  const bool sweeps =
      engine.options_.strategy == Strategy::kActiveLearning ||
      (engine.UsesLearner() && !engine.UserBudgetLeft());
  Status status = Status::OK();
  if (sweeps) {
    status = engine.LearnerSweep(replaying_ ? GdrEngine::ProgressCallback()
                                            : callback_);
  }
  phase_ = Phase::kDone;
  state_ = SessionState::kDone;
  return status;
}

void GdrSession::DeliverBatch(const std::vector<Update>& live,
                              std::size_t count, AttrId group_attr,
                              ValueId group_value, double voi_score,
                              std::vector<SuggestedUpdate>* batch) {
  const GdrEngine& engine = *engine_;
  outstanding_.clear();
  resolved_count_ = 0;
  const std::size_t remaining =
      engine.options_.feedback_budget == GdrOptions::kUnlimitedBudget
          ? GdrOptions::kUnlimitedBudget
          : engine.options_.feedback_budget - engine.stats_.user_feedback;
  outstanding_.reserve(count);
  batch->reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SuggestedUpdate suggestion;
    suggestion.update_id = next_update_id_++;
    suggestion.update = live[i];
    suggestion.group_attr =
        group_attr == kInvalidAttrId ? live[i].attr : group_attr;
    suggestion.group_value =
        group_attr == kInvalidAttrId ? live[i].value : group_value;
    suggestion.voi_score = voi_score;
    suggestion.uncertainty = engine.bank_->UncertaintyOrMax(live[i]);
    suggestion.budget_remaining = remaining;
    outstanding_.push_back(OutstandingEntry{suggestion, false});
    batch->push_back(suggestion);
  }
}

SessionSnapshot GdrSession::Snapshot() const {
  SessionSnapshot snapshot;
  const GdrOptions& options = engine_->options_;
  snapshot.strategy = options.strategy;
  snapshot.seed = options.seed;
  snapshot.feedback_budget = options.feedback_budget;
  snapshot.ns = options.ns;
  snapshot.max_outer_iterations = options.max_outer_iterations;
  snapshot.learner_sweep_passes = options.learner_sweep_passes;
  snapshot.learner_max_uncertainty = options.learner_max_uncertainty;
  snapshot.learner_min_accuracy = options.learner_min_accuracy;
  snapshot.events = log_;
  return snapshot;
}

Status GdrSession::Restore(const SessionSnapshot& snapshot) {
  if (phase_ != Phase::kNotStarted) {
    return Status::FailedPrecondition(
        "Restore() requires a session that has not been started");
  }
  const GdrOptions& options = engine_->options_;
  if (snapshot.strategy != options.strategy ||
      snapshot.seed != options.seed ||
      snapshot.feedback_budget != options.feedback_budget ||
      snapshot.ns != options.ns ||
      snapshot.max_outer_iterations != options.max_outer_iterations ||
      snapshot.learner_sweep_passes != options.learner_sweep_passes ||
      snapshot.learner_max_uncertainty != options.learner_max_uncertainty ||
      snapshot.learner_min_accuracy != options.learner_min_accuracy) {
    return Status::InvalidArgument(
        "snapshot was taken under different options: strategy, seed, ns, "
        "feedback_budget, max_outer_iterations, learner_sweep_passes, and "
        "the learner delegation thresholds must match");
  }
  // Replay mutates the table in place and grows engine state event by
  // event, so a snapshot that diverges mid-replay (corrupted file, table
  // not reloaded in its original dirty state) would otherwise strand the
  // session half-replayed. Save the pristine dirty instance up front; on
  // any failure, put the table back, rebuild a fresh engine over it, and
  // reset the loop to not-started — the session stays fully usable (a
  // subsequent Start() runs it as if the restore was never attempted).
  Table* table = engine_->table_;
  const RuleSet* rules = engine_->rules_;
  FeedbackProvider* user = engine_->user_;
  const GdrOptions saved_options = engine_->options_;
  Table pristine = *table;
  const Status replayed = ReplaySnapshot(snapshot);
  if (!replayed.ok()) {
    *table = std::move(pristine);
    owned_engine_ =
        std::make_unique<GdrEngine>(table, rules, user, saved_options);
    engine_ = owned_engine_.get();
    ResetToNotStarted();
  }
  return replayed;
}

Status GdrSession::ReplaySnapshot(const SessionSnapshot& snapshot) {
  GDR_RETURN_NOT_OK(Start());
  const GdrStats& stats = engine_->stats_;
  if (stats.user_feedback != 0 || stats.learner_decisions != 0 ||
      stats.outer_iterations != 0 || stats.forced_repairs != 0) {
    return Status::FailedPrecondition(
        "Restore() requires a pristine engine over the original dirty "
        "table");
  }
  replaying_ = true;
  Status status = Status::OK();
  for (const SessionSnapshot::Event& event : snapshot.events) {
    if (event.kind == SessionSnapshot::Event::Kind::kPull) {
      if (state_ == SessionState::kDone) {
        status = Status::InvalidArgument(
            "snapshot replay diverged: pull recorded after completion "
            "(was the table reloaded in its original dirty state?)");
        break;
      }
      const Result<std::vector<SuggestedUpdate>> batch = NextBatch();
      if (!batch.ok()) {
        status = batch.status();
        break;
      }
    } else if (event.kind == SessionSnapshot::Event::Kind::kAppend) {
      const Result<SessionAppendOutcome> outcome =
          AppendDirtyRows(event.rows);
      if (!outcome.ok()) {
        status = outcome.status();
        break;
      }
      if (outcome->newly_dirty != event.newly_dirty) {
        status = Status::InvalidArgument(
            "snapshot replay diverged: a recorded append admitted a "
            "different number of dirty rows (was the table reloaded in "
            "its original dirty state?)");
        break;
      }
    } else {
      std::optional<std::string> value;
      if (event.has_value) value = event.value;
      const Result<FeedbackOutcome> outcome =
          SubmitFeedback(event.update_id, event.feedback, std::move(value));
      if (!outcome.ok()) {
        status = outcome.status();
        break;
      }
      if (*outcome == FeedbackOutcome::kUnknownId ||
          *outcome == FeedbackOutcome::kDuplicate ||
          (*outcome == FeedbackOutcome::kApplied) != event.applied) {
        status = Status::InvalidArgument(
            "snapshot replay diverged: a recorded submission did not match "
            "a delivered suggestion (was the table reloaded in its "
            "original dirty state?)");
        break;
      }
    }
  }
  replaying_ = false;
  return status;
}

void GdrSession::ResetToNotStarted() {
  state_ = SessionState::kRanking;
  phase_ = Phase::kNotStarted;
  iterations_ = 0;
  groups_.clear();
  ranking_ = VoiRanker::Ranking{};
  picked_group_ = 0;
  group_score_ = 0.0;
  quota_ = 0;
  labeled_in_group_ = 0;
  before_feedback_ = 0;
  before_decisions_ = 0;
  admitted_since_iteration_ = false;
  labeled_in_round_ = 0;
  touched_attrs_.clear();
  outstanding_.clear();
  resolved_count_ = 0;
  next_update_id_ = 1;
  log_.clear();
  replaying_ = false;
}

Status PumpSession(GdrSession* session, FeedbackProvider* user) {
  if (user == nullptr) {
    return Status::InvalidArgument("PumpSession requires a FeedbackProvider");
  }
  while (session->state() != SessionState::kDone) {
    std::vector<SuggestedUpdate> batch;
    GDR_ASSIGN_OR_RETURN(batch, session->NextBatch());
    for (const SuggestedUpdate& suggestion : batch) {
      // An earlier answer in this batch may have retired this suggestion
      // via a consistency cascade; never ask the user about a dead one.
      if (!session->IsLive(suggestion.update_id)) continue;
      const Feedback feedback =
          user->GetFeedback(session->table(), suggestion.update);
      std::optional<std::string> volunteered;
      if (feedback == Feedback::kReject) {
        volunteered = user->SuggestValue(session->table(), suggestion.update);
      }
      GDR_RETURN_NOT_OK(
          session
              ->SubmitFeedback(suggestion.update_id, feedback,
                               std::move(volunteered))
              .status());
    }
  }
  return Status::OK();
}

}  // namespace gdr
