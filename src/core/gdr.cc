#include "core/gdr.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/quality.h"
#include "core/session.h"
#include "util/stopwatch.h"

namespace gdr {

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kGdr:
      return "GDR";
    case Strategy::kGdrSLearning:
      return "GDR-S-Learning";
    case Strategy::kGdrNoLearning:
      return "GDR-NoLearning";
    case Strategy::kActiveLearning:
      return "Active-Learning";
    case Strategy::kGreedy:
      return "Greedy";
    case Strategy::kRandomRanking:
      return "Random";
  }
  return "unknown";
}

Result<Strategy> StrategyFromName(std::string_view name) {
  static constexpr Strategy kAll[] = {
      Strategy::kGdr,            Strategy::kGdrSLearning,
      Strategy::kGdrNoLearning,  Strategy::kActiveLearning,
      Strategy::kGreedy,         Strategy::kRandomRanking,
  };
  for (Strategy strategy : kAll) {
    if (name == StrategyName(strategy)) return strategy;
  }
  std::string known;
  for (Strategy strategy : kAll) {
    if (!known.empty()) known += ", ";
    known += StrategyName(strategy);
  }
  return Status::InvalidArgument("unknown strategy '" + std::string(name) +
                                 "' (expected one of: " + known + ")");
}

GdrEngine::GdrEngine(Table* table, const RuleSet* rules,
                     FeedbackProvider* user, GdrOptions options)
    : table_(table), rules_(rules), user_(user), options_(options) {
  rng_.Seed(options_.seed);
}

Status GdrEngine::Initialize() {
  if (initialized_) {
    return Status::FailedPrecondition("engine already initialized");
  }
  const Stopwatch init_watch;
  index_ = std::make_unique<ViolationIndex>(table_, rules_);
  pool_ = std::make_unique<UpdatePool>();
  state_ = std::make_unique<RepairState>();
  generator_ =
      std::make_unique<UpdateGenerator>(index_.get(), table_, state_.get());
  manager_ = std::make_unique<ConsistencyManager>(
      index_.get(), pool_.get(), state_.get(), generator_.get());
  LearnerBankOptions learner_options = options_.learner;
  learner_options.seed = options_.seed ^ 0x9E3779B97F4A7C15ULL;
  bank_ = std::make_unique<LearnerBank>(table_, index_.get(), learner_options);

  weights_ = ContextRuleWeights(*index_);
  ThreadPool* ranking_pool = options_.shared_pool;
  if (ranking_pool == nullptr) {
    const std::size_t threads =
        ThreadPool::ResolveThreadCount(options_.num_threads);
    if (threads > 1) workers_ = std::make_unique<ThreadPool>(threads);
    ranking_pool = workers_.get();
  }
  voi_ = std::make_unique<VoiRanker>(index_.get(), &weights_, ranking_pool,
                                     options_.voi_scoring);
  voi_->set_inference_mode(options_.learner_inference);
  voi_->set_batch_probability_fn(
      [bank = bank_.get()](std::span<const Update> updates,
                           std::vector<double>* out) {
        bank->ConfirmProbabilities(updates, out);
      });

  stats_ = GdrStats{};
  stats_.initial_dirty = manager_->Initialize();
  stats_.timings.init_seconds = init_watch.ElapsedSeconds();
  initialized_ = true;
  return Status::OK();
}

void GdrEngine::SyncPerfTimings() {
  const PerfCounters& learner = bank_->perf_counters();
  const PerfCounters& voi = voi_->perf_counters();
  GdrTimings& timings = stats_.timings;
  timings.learner_encode_seconds = learner.Seconds(PerfPhase::kLearnerEncode);
  timings.learner_tree_walk_seconds =
      learner.Seconds(PerfPhase::kLearnerTreeWalk);
  timings.learner_inferences = learner.Count(PerfPhase::kLearnerTreeWalk);
  timings.voi_probe_seconds = voi.Seconds(PerfPhase::kVoiProbe);
  timings.voi_probes = voi.Count(PerfPhase::kVoiProbe);
}

Result<GdrEngine::AppendOutcome> GdrEngine::AppendDirtyRows(
    const std::vector<std::vector<std::string>>& rows) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize() first");
  }
  AppendOutcome outcome;
  if (rows.empty()) return outcome;
  GDR_ASSIGN_OR_RETURN(outcome.first_row, index_->AppendRows(rows));
  outcome.rows = rows.size();
  outcome.newly_dirty = manager_->AdmitRows(outcome.first_row, rows.size());
  // |D| and every |D(φ)| moved; the Eq. 3 weights follow the live instance.
  weights_ = ContextRuleWeights(*index_);
  stats_.appended_rows += rows.size();
  stats_.admitted_dirty += outcome.newly_dirty;
  return outcome;
}

bool GdrEngine::PickGroup(const std::vector<UpdateGroup>& groups,
                          const VoiRanker::Ranking& ranking,
                          std::size_t* picked, double* gmax) const {
  if (groups.empty()) return false;
  *gmax = 0.0;
  switch (options_.strategy) {
    case Strategy::kGdr:
    case Strategy::kGdrSLearning:
    case Strategy::kGdrNoLearning: {
      *picked = ranking.order.front();
      *gmax = ranking.scores[ranking.order.front()];
      return true;
    }
    case Strategy::kGreedy: {
      std::size_t best = 0;
      for (std::size_t i = 1; i < groups.size(); ++i) {
        if (groups[i].size() > groups[best].size()) best = i;
      }
      *picked = best;
      return true;
    }
    case Strategy::kRandomRanking: {
      *picked = static_cast<std::size_t>(rng_.NextBounded(groups.size()));
      return true;
    }
    case Strategy::kActiveLearning:
      return false;  // ungrouped: the session's AL phases drive it
  }
  return false;
}

std::size_t GdrEngine::GroupQuota(const UpdateGroup& group, double score,
                                  double gmax) const {
  if (options_.strategy == Strategy::kGdrNoLearning ||
      options_.strategy == Strategy::kGreedy ||
      options_.strategy == Strategy::kRandomRanking) {
    return group.size();  // every update is verified by the user
  }
  // d_i = E · (1 − g(c_i)/g_max): the more beneficial the group, the less
  // user effort it needs (Section 5.2). Clamped to at least one n_s round
  // so the learner keeps receiving labeled examples, and to the group size.
  double d = 0.0;
  if (gmax > 0.0) {
    d = static_cast<double>(stats_.initial_dirty) *
        (1.0 - std::max(0.0, score) / gmax);
  }
  const std::size_t floor_quota =
      std::min<std::size_t>(static_cast<std::size_t>(options_.ns),
                            group.size());
  return std::clamp<std::size_t>(static_cast<std::size_t>(std::llround(d)),
                                 floor_quota, group.size());
}

std::vector<Update> GdrEngine::LiveGroupUpdates(
    const UpdateGroup& group) const {
  std::vector<Update> live;
  live.reserve(group.updates.size());
  for (const Update& u : group.updates) {
    if (pool_->IsLive(u)) live.push_back(u);
  }
  return live;
}

void GdrEngine::OrderForSession(std::vector<Update>* updates) {
  switch (options_.strategy) {
    case Strategy::kGdr:
    case Strategy::kActiveLearning: {
      // Uncertainty ordering (Section 4.2): most uncertain first; before a
      // model exists every update is maximally uncertain, so the repair
      // score breaks ties (higher first), then row for determinism.
      std::vector<std::pair<double, std::size_t>> keyed(updates->size());
      for (std::size_t i = 0; i < updates->size(); ++i) {
        keyed[i] = {bank_->UncertaintyOrMax((*updates)[i]), i};
      }
      std::stable_sort(keyed.begin(), keyed.end(),
                       [updates](const auto& a, const auto& b) {
                         if (a.first != b.first) return a.first > b.first;
                         const Update& ua = (*updates)[a.second];
                         const Update& ub = (*updates)[b.second];
                         if (ua.score != ub.score) return ua.score > ub.score;
                         return ua.row < ub.row;
                       });
      std::vector<Update> ordered(updates->size());
      for (std::size_t i = 0; i < keyed.size(); ++i) {
        ordered[i] = (*updates)[keyed[i].second];
      }
      // Mix exploration into the head: every other slot of the first n_s
      // becomes a random representative pick, so the user's labels both
      // teach the model (uncertain cases) and validate its displayed
      // predictions on typical cases (the delegation gate needs an
      // unbiased sample to be meaningful).
      const std::size_t head =
          std::min<std::size_t>(static_cast<std::size_t>(options_.ns),
                                ordered.size());
      for (std::size_t i = 1; i < head; i += 2) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng_.NextBounded(ordered.size() - i));
        std::swap(ordered[i], ordered[j]);
      }
      *updates = std::move(ordered);
      break;
    }
    case Strategy::kGdrSLearning:
      rng_.Shuffle(*updates);  // passive learning: random selection
      break;
    case Strategy::kGdrNoLearning:
    case Strategy::kGreedy:
    case Strategy::kRandomRanking:
      break;  // user verifies everything; order is immaterial
  }
}

Status GdrEngine::ApplyUserFeedback(
    const Update& update, Feedback feedback,
    const std::optional<std::string>& volunteered,
    const ProgressCallback& callback) {
  // The session displays the learner's prediction next to each update
  // (Section 4.2); comparing it with the user's actual answer is how the
  // engine measures whether the user could safely delegate to the model.
  // The prediction must be evaluated before any mutation below: it has to
  // describe the tuple the user actually saw.
  std::optional<Feedback> predicted;
  if (UsesLearner() && bank_->IsTrained(update.attr)) {
    predicted = bank_->PredictFeedback(update);
  }
  if (UsesLearner()) {
    // The one failable step runs before any counter moves, so a failed
    // submission leaves the engine untouched and is safely retryable —
    // SubmitFeedback's contract. (The example must also be recorded
    // before the database mutates: features describe the tuple the user
    // actually saw.)
    GDR_RETURN_NOT_OK(bank_->AddFeedback(update, feedback));
  }
  if (predicted.has_value()) {
    bank_->RecordPredictionOutcome(update.attr, *predicted,
                                   *predicted == feedback);
  }
  ++stats_.user_feedback;
  switch (feedback) {
    case Feedback::kConfirm:
      ++stats_.user_confirms;
      break;
    case Feedback::kReject:
      ++stats_.user_rejects;
      break;
    case Feedback::kRetain:
      ++stats_.user_retains;
      break;
  }
  std::vector<AppliedChange> changes =
      manager_->ApplyFeedback(update, feedback);

  if (feedback == Feedback::kReject && volunteered.has_value()) {
    // Section 4.2: a rejecting user may volunteer the correct value v',
    // treated as confirming ⟨t, A, v', 1⟩. Ignored for other feedback.
    const ValueId v = table_->InternValue(update.attr, *volunteered);
    std::vector<AppliedChange> more =
        manager_->ApplyUserValue(update.row, update.attr, v);
    changes.insert(changes.end(), more.begin(), more.end());
    ++stats_.user_suggested_values;
  }
  for (const AppliedChange& change : changes) {
    if (change.forced) ++stats_.forced_repairs;
  }
  if (callback) callback(*this, stats_.user_feedback);
  return Status::OK();
}

Status GdrEngine::ApplyLearnerDecision(const Update& update,
                                       Feedback feedback) {
  ++stats_.learner_decisions;
  if (feedback == Feedback::kConfirm) ++stats_.learner_confirms;
  std::vector<AppliedChange> changes =
      manager_->ApplyFeedback(update, feedback);
  for (const AppliedChange& change : changes) {
    if (change.forced) ++stats_.forced_repairs;
  }
  return Status::OK();
}

Status GdrEngine::TakeOverGroup(const UpdateGroup& group,
                                const ProgressCallback& callback) {
  // The user is "satisfied with the learner predictions": the learned
  // model decides the group's remaining updates (Section 4.2) — but only
  // predictions of classes whose recent accuracy earned the delegation.
  if (!UsesLearner() || !bank_->IsTrained(group.attr)) return Status::OK();
  for (const Update& u : LiveGroupUpdates(group)) {
    // Re-validate: an earlier decision in this loop may have retired or
    // replaced later suggestions via the consistency manager.
    if (!pool_->IsLive(u)) continue;
    if (bank_->Uncertainty(u) > options_.learner_max_uncertainty) continue;
    const Feedback predicted = bank_->PredictFeedback(u);
    if (!bank_->IsReliable(u.attr, predicted, options_.learner_min_accuracy)) {
      continue;
    }
    GDR_RETURN_NOT_OK(ApplyLearnerDecision(u, predicted));
  }
  if (callback) callback(*this, stats_.user_feedback);
  return Status::OK();
}

Status GdrEngine::LearnerSweep(const ProgressCallback& callback) {
  const Stopwatch sweep_watch;
  for (int pass = 0; pass < options_.learner_sweep_passes; ++pass) {
    std::size_t decided = 0;
    for (const Update& u : pool_->All()) {
      if (!bank_->IsTrained(u.attr)) continue;
      if (!pool_->IsLive(u)) continue;
      if (bank_->Uncertainty(u) > options_.learner_max_uncertainty) continue;
      const Feedback predicted = bank_->PredictFeedback(u);
      if (!bank_->IsReliable(u.attr, predicted,
                             options_.learner_min_accuracy)) {
        continue;
      }
      GDR_RETURN_NOT_OK(ApplyLearnerDecision(u, predicted));
      ++decided;
    }
    if (decided == 0) break;
  }
  stats_.timings.learner_sweep_seconds += sweep_watch.ElapsedSeconds();
  if (callback) callback(*this, stats_.user_feedback);
  return Status::OK();
}

Status GdrEngine::Run(const ProgressCallback& callback) {
  // Compatibility shim: the loop itself lives in GdrSession; this entry
  // point pumps one against the blocking FeedbackProvider, which restores
  // the paper's Procedure 1 call shape (and is bit-identical to it).
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize() first");
  }
  if (user_ == nullptr) {
    return Status::FailedPrecondition(
        "engine has no FeedbackProvider; construct a GdrSession over it "
        "and drive the session directly");
  }
  GdrSession session(this);
  session.SetProgressCallback(callback);
  GDR_RETURN_NOT_OK(session.Start());
  return PumpSession(&session, user_);
}

}  // namespace gdr
