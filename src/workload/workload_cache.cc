#include "workload/workload_cache.h"

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>

#include "util/fileio.h"
#include "util/strings.h"
#include "workload/file_workload.h"
#include "workload/registry.h"

namespace gdr {

namespace {

// Salted slots probed per content hash before giving up on the disk layer
// for a spec. Reaching this would take 16 distinct canonical specs sharing
// one 64-bit FNV value — if that happens, the cache degrades to
// resolve-every-time for the 17th, never to aliasing.
constexpr std::size_t kMaxProbes = 16;

constexpr char kMetaFile[] = "meta.txt";

std::string SlotDir(const std::string& cache_dir, const std::string& hash,
                    std::size_t salt) {
  std::string dir = cache_dir + "/wl_" + hash;
  if (salt > 0) dir += "_" + std::to_string(salt);
  return dir;
}

// meta.txt: a 3-line record written *after* the csv: file set, so its
// presence marks a complete entry (a crash mid-export leaves no meta and
// the slot is rebuilt). Spec and name travel hex-encoded so any byte is
// representable.
struct Meta {
  std::string canonical;
  std::string dataset_name;
  std::size_t corrupted_tuples = 0;
};

std::string SerializeMeta(const Meta& meta) {
  std::ostringstream out;
  out << "gdr-workload-cache 1\n";
  out << "spec " << EncodeHex(meta.canonical) << "\n";
  out << "name " << EncodeHex(meta.dataset_name) << "\n";
  out << "corrupted " << meta.corrupted_tuples << "\n";
  return out.str();
}

Result<Meta> ParseMeta(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) || header != "gdr-workload-cache 1") {
    return Status::InvalidArgument("unrecognized cache meta header");
  }
  Meta meta;
  std::string tag, value;
  if (!(in >> tag >> value) || tag != "spec" ||
      !DecodeHex(value, &meta.canonical)) {
    return Status::InvalidArgument("cache meta: bad spec line");
  }
  if (!(in >> tag >> value) || tag != "name" ||
      !DecodeHex(value, &meta.dataset_name)) {
    return Status::InvalidArgument("cache meta: bad name line");
  }
  std::uint64_t corrupted = 0;
  if (!(in >> tag >> corrupted) || tag != "corrupted") {
    return Status::InvalidArgument("cache meta: bad corrupted line");
  }
  meta.corrupted_tuples = static_cast<std::size_t>(corrupted);
  return meta;
}

}  // namespace

WorkloadCache::WorkloadCache(WorkloadCacheOptions options)
    : options_(std::move(options)) {}

Result<std::shared_ptr<const Dataset>> WorkloadCache::Resolve(
    std::string_view spec_text) {
  GDR_ASSIGN_OR_RETURN(const WorkloadSpec spec, WorkloadSpec::Parse(spec_text));
  return Resolve(spec);
}

Result<std::shared_ptr<const Dataset>> WorkloadCache::Resolve(
    const WorkloadSpec& spec) {
  const std::string canonical = spec.Canonical();

  if (options_.max_resident > 0) {
    const auto it = resident_.find(canonical);
    if (it != resident_.end()) {
      ++counters_.memory_hits;
      it->second.last_touch = ++touch_clock_;
      return it->second.dataset;
    }
  }

  if (!options_.cache_dir.empty()) {
    const std::string dir = FindDiskEntry(canonical);
    if (!dir.empty()) {
      auto loaded = LoadDiskEntry(dir);
      if (loaded.ok()) {
        ++counters_.disk_hits;
        auto shared = std::make_shared<const Dataset>(*std::move(loaded));
        InsertResident(canonical, shared);
        return shared;
      }
      // A corrupt entry degrades to a full resolution (and a re-export
      // below) — the cache must never fail a run the registry could serve.
      std::fprintf(stderr, "workload cache: discarding corrupt entry %s: %s\n",
                   dir.c_str(), loaded.status().ToString().c_str());
    }
  }

  ++counters_.misses;
  GDR_ASSIGN_OR_RETURN(Dataset dataset,
                       WorkloadRegistry::Global().Resolve(spec));
  if (!options_.cache_dir.empty()) {
    if (const Status stored = StoreDiskEntry(canonical, dataset);
        !stored.ok()) {
      // Best-effort: a full disk never fails the resolution itself.
      std::fprintf(stderr, "workload cache: cannot store '%s': %s\n",
                   canonical.c_str(), stored.ToString().c_str());
    }
  }
  auto shared = std::make_shared<const Dataset>(std::move(dataset));
  InsertResident(canonical, shared);
  return shared;
}

std::string WorkloadCache::FindDiskEntry(const std::string& canonical) {
  const std::string hash = Fnv1a64Hex(canonical);
  bool skipped_mismatch = false;
  for (std::size_t salt = 0; salt < kMaxProbes; ++salt) {
    const std::string dir = SlotDir(options_.cache_dir, hash, salt);
    auto meta_text = ReadFileToString(dir + "/" + kMetaFile);
    if (!meta_text.ok()) break;  // first slot with no complete entry
    auto meta = ParseMeta(*meta_text);
    if (meta.ok() && meta->canonical == canonical) {
      if (skipped_mismatch) ++counters_.collisions_resolved;
      return dir;
    }
    // Occupied by a different spec (a true hash collision) or unreadable:
    // never alias — probe the next salted slot.
    skipped_mismatch = true;
  }
  return "";
}

Status WorkloadCache::StoreDiskEntry(const std::string& canonical,
                                     const Dataset& dataset) {
  const std::string hash = Fnv1a64Hex(canonical);
  std::string dir;
  bool skipped_mismatch = false;
  for (std::size_t salt = 0; salt < kMaxProbes; ++salt) {
    const std::string candidate = SlotDir(options_.cache_dir, hash, salt);
    auto meta_text = ReadFileToString(candidate + "/" + kMetaFile);
    if (!meta_text.ok()) {
      dir = candidate;  // free (or incomplete) slot: claim it
      break;
    }
    auto meta = ParseMeta(*meta_text);
    if (meta.ok() && meta->canonical == canonical) {
      dir = candidate;  // already stored (e.g. by a previous process)
      break;
    }
    skipped_mismatch = true;
  }
  if (dir.empty()) {
    return Status::FailedPrecondition("workload cache: " +
                                      std::to_string(kMaxProbes) +
                                      " colliding slots for hash " + hash);
  }
  if (skipped_mismatch) ++counters_.collisions_resolved;
  GDR_RETURN_NOT_OK(ExportWorkload(dataset, dir));
  Meta meta;
  meta.canonical = canonical;
  meta.dataset_name = dataset.name;
  meta.corrupted_tuples = dataset.corrupted_tuples;
  // Written last, atomically: meta.txt present == entry complete.
  return WriteFileAtomic(dir + "/" + kMetaFile, SerializeMeta(meta));
}

Result<Dataset> WorkloadCache::LoadDiskEntry(const std::string& dir) {
  GDR_ASSIGN_OR_RETURN(const std::string meta_text,
                       ReadFileToString(dir + "/" + kMetaFile));
  GDR_ASSIGN_OR_RETURN(const Meta meta, ParseMeta(meta_text));
  WorkloadSpec spec = CsvWorkloadSpec(dir);
  spec.params.emplace_back("name", meta.dataset_name);
  GDR_ASSIGN_OR_RETURN(Dataset dataset, LoadCsvWorkload(spec));
  // The loader recomputes corrupted_tuples as rows-with-differing-cells;
  // carry the generator's count instead so cached and uncached resolutions
  // are indistinguishable even when an injected error wrote a cell's
  // original value back.
  dataset.corrupted_tuples = meta.corrupted_tuples;
  return dataset;
}

void WorkloadCache::InsertResident(const std::string& canonical,
                                   std::shared_ptr<const Dataset> dataset) {
  if (options_.max_resident == 0) return;
  resident_[canonical] = Resident{std::move(dataset), ++touch_clock_};
  while (resident_.size() > options_.max_resident) {
    auto victim = resident_.begin();
    for (auto it = resident_.begin(); it != resident_.end(); ++it) {
      if (it->second.last_touch < victim->second.last_touch) victim = it;
    }
    resident_.erase(victim);
  }
}

}  // namespace gdr
