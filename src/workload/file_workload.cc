#include "workload/file_workload.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "sim/error_injector.h"
#include "util/csv.h"
#include "util/strings.h"
#include "workload/row_stream.h"

namespace gdr {

namespace {

constexpr auto TrimView = TrimWhitespace;

/// Parses one rules.txt into `rules`. Line format: "name: rule-text" in the
/// AddRuleFromString syntax; '#' lines are comments; a line without a
/// name prefix is auto-named r<line-number>.
Status LoadRulesFile(const std::string& path, RuleSet* rules) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open rules file " + path);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = TrimView(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::size_t colon = trimmed.find(':');
    std::string name;
    std::string_view body;
    if (colon == std::string_view::npos) {
      name = "r" + std::to_string(line_number);
      body = trimmed;
    } else {
      name = std::string(TrimView(trimmed.substr(0, colon)));
      body = TrimView(trimmed.substr(colon + 1));
      if (name.empty()) {
        return Status::InvalidArgument(
            path + ":" + std::to_string(line_number) +
            ": empty rule name before ':'");
      }
    }
    if (const Status added = rules->AddRuleFromString(std::move(name), body);
        !added.ok()) {
      return Status::InvalidArgument(path + ":" +
                                     std::to_string(line_number) + ": " +
                                     added.message());
    }
  }
  return Status::OK();
}

Result<Dataset> LoadFromFiles(const WorkloadSpec& spec) {
  GDR_RETURN_NOT_OK(spec.RejectUnknownKeys(
      {"clean", "dirty", "rules", "name", "errors", "dirty_fraction",
       "max_attrs", "char_edit_prob", "error_seed", "error_attrs"}));
  const std::string* clean_path = spec.Find("clean");
  if (clean_path == nullptr) {
    return Status::InvalidArgument(
        "csv workload needs clean=FILE (the clean instance)");
  }
  const std::string* rules_path = spec.Find("rules");
  if (rules_path == nullptr) {
    return Status::InvalidArgument(
        "csv workload needs rules=FILE (the CFD rule base)");
  }
  const std::string* dirty_path = spec.Find("dirty");
  const std::string* errors = spec.Find("errors");
  if (dirty_path != nullptr && errors != nullptr) {
    return Status::InvalidArgument(
        "csv workload takes either dirty=FILE or errors=..., not both");
  }
  if (dirty_path != nullptr) {
    // Injector knobs would be silently dead alongside a dirty file;
    // reject them so a misconfiguration surfaces.
    for (const char* key : {"dirty_fraction", "max_attrs", "char_edit_prob",
                            "error_seed", "error_attrs"}) {
      if (spec.Has(key)) {
        return Status::InvalidArgument(
            "csv workload: parameter '" + std::string(key) +
            "' only applies with errors=random, not with dirty=FILE");
      }
    }
  }
  if (dirty_path == nullptr && errors == nullptr) {
    return Status::InvalidArgument(
        "csv workload needs a dirty instance: pass dirty=FILE or "
        "errors=random");
  }

  // Chunked ingestion: the file is streamed through CsvRowStream rather
  // than slurped, and AppendStream makes the load all-or-nothing — a
  // truncated or malformed file leaves dataset.clean empty instead of
  // partially populated.
  GDR_ASSIGN_OR_RETURN(const std::unique_ptr<CsvRowStream> clean_stream,
                       CsvRowStream::Open(*clean_path));
  const std::vector<std::string> header = clean_stream->header();
  GDR_ASSIGN_OR_RETURN(Schema schema, Schema::Make(header));
  Dataset dataset(schema);
  GDR_ASSIGN_OR_RETURN(
      dataset.name,
      spec.GetString("name",
                     std::filesystem::path(*clean_path).stem().string()));
  GDR_ASSIGN_OR_RETURN(const std::size_t clean_count,
                       AppendStream(clean_stream.get(), &dataset.clean));
  if (clean_count < 1) {
    return Status::InvalidArgument(
        *clean_path + ": need a header record plus at least one data record");
  }

  // The dirty instance always starts as a copy of the clean one (shared
  // value dictionaries) with per-cell edits applied row-major — the same
  // construction order as the generators, which is what makes file
  // round-trips bit-identical downstream.
  dataset.dirty = dataset.clean;
  if (dirty_path != nullptr) {
    GDR_ASSIGN_OR_RETURN(const std::unique_ptr<CsvRowStream> dirty_stream,
                         CsvRowStream::Open(*dirty_path));
    if (dirty_stream->header() != header) {
      return Status::InvalidArgument(
          *dirty_path + ": header must match " + *clean_path + " exactly");
    }
    std::size_t row_count = 0;
    std::vector<std::vector<std::string>> chunk;
    while (true) {
      chunk.clear();
      GDR_ASSIGN_OR_RETURN(
          const std::size_t pulled,
          dirty_stream->NextChunk(kDefaultStreamChunk, &chunk));
      if (pulled == 0) break;
      if (row_count + pulled > clean_count) {
        row_count += pulled;
        // Keep draining just to report the real row count in the error.
        while (true) {
          chunk.clear();
          const auto more =
              dirty_stream->NextChunk(kDefaultStreamChunk, &chunk);
          if (!more.ok() || *more == 0) break;
          row_count += *more;
        }
        break;
      }
      for (const std::vector<std::string>& dirty_row : chunk) {
        const RowId row = static_cast<RowId>(row_count++);
        bool row_corrupted = false;
        for (std::size_t a = 0; a < schema.num_attrs(); ++a) {
          const AttrId attr = static_cast<AttrId>(a);
          if (dirty_row[a] != dataset.clean.at(row, attr)) {
            dataset.dirty.Set(row, attr, dirty_row[a]);
            row_corrupted = true;
          }
        }
        if (row_corrupted) ++dataset.corrupted_tuples;
      }
    }
    if (row_count != clean_count) {
      return Status::InvalidArgument(
          *dirty_path + ": row count " + std::to_string(row_count) +
          " does not match " + *clean_path + " (" +
          std::to_string(clean_count) + ")");
    }
  } else {
    if (*errors != "random") {
      return Status::InvalidArgument("csv workload: unknown error model '" +
                                     *errors + "' (supported: random)");
    }
    std::vector<AttrId> attrs;
    if (const std::string* attr_list = spec.Find("error_attrs");
        attr_list != nullptr) {
      std::string_view rest = *attr_list;
      while (!rest.empty()) {
        const std::size_t bar = rest.find('|');
        const std::string_view item = TrimView(rest.substr(0, bar));
        rest = bar == std::string_view::npos ? std::string_view()
                                             : rest.substr(bar + 1);
        if (item.empty()) continue;
        GDR_ASSIGN_OR_RETURN(const AttrId attr, schema.GetAttr(item));
        attrs.push_back(attr);
      }
      if (attrs.empty()) {
        return Status::InvalidArgument(
            "csv workload: error_attrs named no attributes");
      }
    } else {
      for (std::size_t a = 0; a < schema.num_attrs(); ++a) {
        attrs.push_back(static_cast<AttrId>(a));
      }
    }
    RandomErrorOptions options;
    GDR_ASSIGN_OR_RETURN(
        options.dirty_tuple_fraction,
        spec.GetDouble("dirty_fraction", options.dirty_tuple_fraction));
    GDR_ASSIGN_OR_RETURN(options.max_attrs_per_tuple,
                         spec.GetInt("max_attrs", options.max_attrs_per_tuple));
    GDR_ASSIGN_OR_RETURN(
        options.char_edit_probability,
        spec.GetDouble("char_edit_prob", options.char_edit_probability));
    GDR_ASSIGN_OR_RETURN(options.seed,
                         spec.GetUint64("error_seed", options.seed));
    dataset.corrupted_tuples =
        InjectRandomErrors(&dataset.dirty, attrs, options);
  }

  GDR_RETURN_NOT_OK(LoadRulesFile(*rules_path, &dataset.rules));
  return dataset;
}

Status WriteTableCsv(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  WriteCsvLine(out, table.schema().attribute_names());
  std::vector<std::string> row(table.num_attrs());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t a = 0; a < table.num_attrs(); ++a) {
      row[a] = table.at(static_cast<RowId>(r), static_cast<AttrId>(a));
    }
    WriteCsvLine(out, row);
  }
  out.flush();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace

Result<Dataset> LoadCsvWorkload(const WorkloadSpec& spec) {
  return LoadFromFiles(spec);
}

Status ExportWorkload(const Dataset& dataset, const std::string& dir) {
  if (dataset.clean.num_rows() != dataset.dirty.num_rows() ||
      !(dataset.clean.schema() == dataset.dirty.schema())) {
    return Status::InvalidArgument(
        "dataset clean/dirty instances disagree on schema or row count");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  const WorkloadSpec paths = CsvWorkloadSpec(dir);
  GDR_RETURN_NOT_OK(WriteTableCsv(dataset.clean, *paths.Find("clean")));
  GDR_RETURN_NOT_OK(WriteTableCsv(dataset.dirty, *paths.Find("dirty")));

  const std::string rules_path = *paths.Find("rules");
  std::ofstream out(rules_path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open " + rules_path + " for writing");
  }
  out << "# " << dataset.name << ": " << dataset.rules.size()
      << " rules in normal form (one RHS attribute per line)\n";
  const Schema& schema = dataset.rules.schema();
  for (const RuleId id : dataset.rules.AllRuleIds()) {
    const Cfd& rule = dataset.rules.rule(id);
    std::string offender;
    if (!RuleSurvivesText(rule, schema, &offender)) {
      return Status::InvalidArgument(
          "rule '" + rule.name() + "': token '" + offender +
          "' contains a delimiter or surrounding whitespace and cannot be "
          "serialized to rules.txt");
    }
    out << rule.name() << ": " << rule.ToRuleText(schema) << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write failed for " + rules_path);
  return Status::OK();
}

WorkloadSpec CsvWorkloadSpec(const std::string& dir) {
  const std::filesystem::path base(dir);
  WorkloadSpec spec;
  spec.name = "csv";
  spec.params = {{"clean", (base / "clean.csv").string()},
                 {"dirty", (base / "dirty.csv").string()},
                 {"rules", (base / "rules.txt").string()}};
  return spec;
}

Status RegisterFileWorkloads(WorkloadRegistry* registry) {
  return registry->Register(
      "csv",
      "file-backed workload: clean=FILE,rules=FILE plus dirty=FILE or "
      "errors=random[,dirty_fraction=,max_attrs=,char_edit_prob=,"
      "error_seed=,error_attrs=A|B]",
      LoadCsvWorkload);
}

}  // namespace gdr
