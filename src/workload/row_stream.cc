#include "workload/row_stream.h"

#include <algorithm>
#include <utility>

namespace gdr {

namespace {

// Bytes per read: large enough that parsing dominates syscall overhead,
// small enough to keep the resident buffer trivial at any file size.
constexpr std::size_t kReadChunkBytes = 64 * 1024;

}  // namespace

// ---------------------------------------------------------------------------
// CsvRowStream
// ---------------------------------------------------------------------------

Result<std::unique_ptr<CsvRowStream>> CsvRowStream::Open(
    const std::string& path) {
  std::unique_ptr<CsvRowStream> stream(new CsvRowStream(path));
  stream->in_.open(path, std::ios::binary);
  if (!stream->in_) {
    return Status::IOError("cannot open CSV file " + path);
  }
  while (stream->pending_.empty() && !stream->eof_) {
    GDR_RETURN_NOT_OK(stream->Fill());
  }
  if (stream->pending_.empty()) {
    return Status::InvalidArgument(path + ": empty CSV (no header record)");
  }
  stream->header_ = std::move(stream->pending_.front());
  stream->pending_pos_ = 1;
  // Diagnostics number physical records, header included, so "record N"
  // matches the Nth line of a file without embedded newlines.
  stream->next_record_ = 2;
  return stream;
}

Status CsvRowStream::Fill() {
  char buffer[kReadChunkBytes];
  in_.read(buffer, static_cast<std::streamsize>(kReadChunkBytes));
  const std::streamsize got = in_.gcount();
  if (got > 0) {
    if (const Status consumed = parser_.Consume(
            std::string_view(buffer, static_cast<std::size_t>(got)),
            &pending_);
        !consumed.ok()) {
      return Status::InvalidArgument(path_ + ": " + consumed.message());
    }
  }
  if (got < static_cast<std::streamsize>(kReadChunkBytes)) {
    if (in_.bad()) return Status::IOError("read failed for " + path_);
    if (const Status finished = parser_.Finish(&pending_); !finished.ok()) {
      return Status::InvalidArgument(path_ + ": " + finished.message());
    }
    eof_ = true;
  }
  return Status::OK();
}

Result<std::size_t> CsvRowStream::NextChunk(
    std::size_t max_rows, std::vector<std::vector<std::string>>* out) {
  // Drop already-delivered rows before buffering more, so the resident
  // window never exceeds one chunk plus one read's worth of records.
  if (pending_pos_ > 0) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(pending_pos_));
    pending_pos_ = 0;
  }
  while (pending_.size() < max_rows && !eof_) {
    GDR_RETURN_NOT_OK(Fill());
  }
  const std::size_t count = std::min(max_rows, pending_.size());
  for (std::size_t i = 0; i < count; ++i) {
    if (pending_[i].size() != header_.size()) {
      return Status::InvalidArgument(
          path_ + " record " + std::to_string(next_record_ + i) +
          ": expected " + std::to_string(header_.size()) + " fields, got " +
          std::to_string(pending_[i].size()));
    }
    out->push_back(std::move(pending_[i]));
  }
  pending_pos_ = count;
  next_record_ += count;
  return count;
}

// ---------------------------------------------------------------------------
// TableRowStream / VectorRowStream / GeneratorRowStream
// ---------------------------------------------------------------------------

TableRowStream::TableRowStream(const Table* table) : table_(table) {
  header_ = table_->schema().attribute_names();
}

Result<std::size_t> TableRowStream::NextChunk(
    std::size_t max_rows, std::vector<std::vector<std::string>>* out) {
  const std::size_t count =
      std::min(max_rows, table_->num_rows() - next_row_);
  for (std::size_t i = 0; i < count; ++i) {
    const RowId row = static_cast<RowId>(next_row_ + i);
    std::vector<std::string> values;
    values.reserve(table_->num_attrs());
    for (std::size_t a = 0; a < table_->num_attrs(); ++a) {
      values.push_back(table_->at(row, static_cast<AttrId>(a)));
    }
    out->push_back(std::move(values));
  }
  next_row_ += count;
  return count;
}

VectorRowStream::VectorRowStream(std::vector<std::string> header,
                                 std::vector<std::vector<std::string>> rows)
    : rows_(std::move(rows)) {
  header_ = std::move(header);
}

Result<std::size_t> VectorRowStream::NextChunk(
    std::size_t max_rows, std::vector<std::vector<std::string>>* out) {
  const std::size_t count = std::min(max_rows, rows_.size() - next_row_);
  for (std::size_t i = 0; i < count; ++i) {
    out->push_back(std::move(rows_[next_row_ + i]));
  }
  next_row_ += count;
  return count;
}

GeneratorRowStream::GeneratorRowStream(std::vector<std::string> header,
                                       std::uint64_t count, RowFn fn)
    : count_(count), fn_(std::move(fn)) {
  header_ = std::move(header);
}

Result<std::size_t> GeneratorRowStream::NextChunk(
    std::size_t max_rows, std::vector<std::vector<std::string>>* out) {
  const std::uint64_t count =
      std::min<std::uint64_t>(max_rows, count_ - next_index_);
  std::vector<std::string> row;
  for (std::uint64_t i = 0; i < count; ++i) {
    fn_(next_index_ + i, &row);
    out->push_back(row);
  }
  next_index_ += count;
  return static_cast<std::size_t>(count);
}

Result<std::unique_ptr<RowStream>> MakeStreamGenStream(
    const StreamGenOptions& options) {
  GDR_ASSIGN_OR_RETURN(const Schema schema, StreamGenSchema());
  return std::unique_ptr<RowStream>(new GeneratorRowStream(
      schema.attribute_names(), options.records,
      [options](std::uint64_t index, std::vector<std::string>* out) {
        StreamGenRow(options, index, out);
      }));
}

// ---------------------------------------------------------------------------
// AppendStream
// ---------------------------------------------------------------------------

Result<std::size_t> AppendStream(RowStream* stream, Table* table,
                                 std::size_t chunk_rows) {
  if (chunk_rows == 0) {
    return Status::InvalidArgument("AppendStream needs chunk_rows >= 1");
  }
  const std::size_t rows_before = table->num_rows();
  std::vector<std::vector<std::string>> chunk;
  while (true) {
    chunk.clear();
    const Result<std::size_t> pulled = stream->NextChunk(chunk_rows, &chunk);
    if (!pulled.ok()) {
      table->TruncateTo(rows_before);
      return pulled.status();
    }
    if (*pulled == 0) break;
    for (const std::vector<std::string>& row : chunk) {
      if (const auto appended = table->AppendRow(row); !appended.ok()) {
        const std::size_t record =
            table->num_rows() - rows_before + 1;  // 1-based data record
        table->TruncateTo(rows_before);
        return Status::InvalidArgument("record " + std::to_string(record) +
                                       ": " + appended.status().message());
      }
    }
  }
  return table->num_rows() - rows_before;
}

}  // namespace gdr
