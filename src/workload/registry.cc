#include "workload/registry.h"

#include <cstdio>
#include <cstdlib>

#include "workload/file_workload.h"

namespace gdr {

Status WorkloadRegistry::Register(std::string name, std::string description,
                                  Factory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("workload name must be non-empty");
  }
  if (entries_.count(name) > 0) {
    return Status::InvalidArgument("workload '" + name +
                                   "' is already registered");
  }
  entries_.emplace(std::move(name),
                   Entry{std::move(description), std::move(factory)});
  return Status::OK();
}

bool WorkloadRegistry::Contains(std::string_view name) const {
  return entries_.count(std::string(name)) > 0;
}

Result<Dataset> WorkloadRegistry::Resolve(const WorkloadSpec& spec) const {
  const auto it = entries_.find(spec.name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [name, entry] : entries_) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::NotFound("no workload named '" + spec.name +
                            "' (registered: " + known + ")");
  }
  return it->second.factory(spec);
}

Result<Dataset> WorkloadRegistry::Resolve(std::string_view spec_text) const {
  GDR_ASSIGN_OR_RETURN(const WorkloadSpec spec, WorkloadSpec::Parse(spec_text));
  return Resolve(spec);
}

std::vector<std::pair<std::string, std::string>> WorkloadRegistry::List()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.emplace_back(name, entry.description);
  }
  return out;
}

std::string FormatWorkloadListing(const WorkloadRegistry& registry) {
  std::string out;
  for (const auto& [name, description] : registry.List()) {
    out += "  ";
    out += name;
    out.append(name.size() < 10 ? 10 - name.size() + 1 : 1, ' ');
    out += description;
    out += '\n';
  }
  return out;
}

Result<Dataset> ResolveWorkloadOrReport(const std::string& spec_text) {
  auto dataset = WorkloadRegistry::Global().Resolve(spec_text);
  if (!dataset.ok()) {
    std::fprintf(stderr, "workload '%s': %s\nregistered workloads:\n%s",
                 spec_text.c_str(), dataset.status().ToString().c_str(),
                 FormatWorkloadListing(WorkloadRegistry::Global()).c_str());
  }
  return dataset;
}

WorkloadRegistry& WorkloadRegistry::Global() {
  static WorkloadRegistry* registry = [] {
    auto* r = new WorkloadRegistry();
    const Status builtins = RegisterBuiltinWorkloads(r);
    const Status file = RegisterFileWorkloads(r);
    if (!builtins.ok() || !file.ok()) {
      // Unreachable by construction (fixed, unique names); loudly abort
      // rather than hand out a half-populated global registry.
      std::fprintf(stderr, "workload registry bootstrap failed: %s %s\n",
                   builtins.ToString().c_str(), file.ToString().c_str());
      std::abort();
    }
    return r;
  }();
  return *registry;
}

}  // namespace gdr
