#ifndef GDR_WORKLOAD_FILE_WORKLOAD_H_
#define GDR_WORKLOAD_FILE_WORKLOAD_H_

#include <string>

#include "cfd/cfd.h"
#include "sim/dataset.h"
#include "util/result.h"
#include "workload/registry.h"
#include "workload/workload.h"

namespace gdr {

/// The file-backed "csv" workload factory. Builds a Dataset from
///
///   clean=FILE   (required) clean CSV; first record is the attribute header
///   rules=FILE   (required) rules text, one CFD per line: "name: rule-text"
///                in the AddRuleFromString syntax ('#' starts a comment
///                line; a line without "name:" gets an auto name)
///
/// and exactly one source of dirt:
///
///   dirty=FILE   dirty CSV with the identical header and row count, or
///   errors=random            deterministic random corruption of the clean
///     dirty_fraction=F       instance (the Dataset 2 error model), with
///     max_attrs=N            the ErrorInjector knobs parsed from the
///     char_edit_prob=P       remaining key=value options; error_attrs is
///     error_seed=S           a '|'-separated attribute-name list (default:
///     error_attrs=A|B|C      every attribute).
///
/// Optional: name=STR overrides the workload display name (default: the
/// clean file's stem).
///
/// When dirty= is given, the dirty table is materialized as a copy of the
/// clean table with the differing cells applied row-major — exactly how the
/// generators build theirs — so value-id interning, and therefore every
/// downstream ranking tie-break, is reproduced bit-identically;
/// `corrupted_tuples` is the number of rows with at least one differing
/// cell.
Result<Dataset> LoadCsvWorkload(const WorkloadSpec& spec);

/// The inverse of the "csv" factory: writes `<dir>/clean.csv`,
/// `<dir>/dirty.csv` (header + rows, RFC-4180 quoting), and
/// `<dir>/rules.txt` ("name: rule-text" per normal-form rule), creating
/// `dir` if needed. Fails when a rule name or pattern constant cannot
/// survive the textual syntax (embedded delimiter or surrounding
/// whitespace). Any in-memory workload round-trips: loading the exported
/// files via CsvWorkloadSpec yields a Dataset with bit-identical tables,
/// dictionaries, and rules.
Status ExportWorkload(const Dataset& dataset, const std::string& dir);

/// The spec that loads ExportWorkload's output back. Built as a struct
/// (not spec text) so directories containing ',' still resolve.
WorkloadSpec CsvWorkloadSpec(const std::string& dir);

/// Registers the "csv" factory on `registry`.
Status RegisterFileWorkloads(WorkloadRegistry* registry);

}  // namespace gdr

#endif  // GDR_WORKLOAD_FILE_WORKLOAD_H_
