// The generator-backed built-in workloads. The dataset1/dataset2 entries
// are deliberately thin: they translate string parameters into the
// generator option structs and delegate, so resolving "dataset1:seed=11"
// is bit-identical to calling GenerateDataset1({.seed = 11}) directly
// (workload_test pins this down cell-by-cell).
#include "sim/dataset1.h"
#include "sim/dataset2.h"
#include "workload/registry.h"

namespace gdr {

namespace {

Result<Dataset> MakeDataset1(const WorkloadSpec& spec) {
  GDR_RETURN_NOT_OK(spec.RejectUnknownKeys(
      {"records", "hospitals", "volume_skew", "error_scale", "seed"}));
  const Dataset1Options defaults;
  Dataset1Options options;
  GDR_ASSIGN_OR_RETURN(options.num_records,
                       spec.GetSize("records", defaults.num_records));
  GDR_ASSIGN_OR_RETURN(options.num_hospitals,
                       spec.GetSize("hospitals", defaults.num_hospitals));
  GDR_ASSIGN_OR_RETURN(options.volume_skew,
                       spec.GetDouble("volume_skew", defaults.volume_skew));
  GDR_ASSIGN_OR_RETURN(options.error_scale,
                       spec.GetDouble("error_scale", defaults.error_scale));
  GDR_ASSIGN_OR_RETURN(options.seed, spec.GetUint64("seed", defaults.seed));
  return GenerateDataset1(options);
}

Result<Dataset> MakeDataset2(const WorkloadSpec& spec) {
  GDR_RETURN_NOT_OK(spec.RejectUnknownKeys(
      {"records", "dirty_fraction", "seed", "min_support", "min_confidence"}));
  const Dataset2Options defaults;
  Dataset2Options options;
  GDR_ASSIGN_OR_RETURN(options.num_records,
                       spec.GetSize("records", defaults.num_records));
  GDR_ASSIGN_OR_RETURN(
      options.dirty_tuple_fraction,
      spec.GetDouble("dirty_fraction", defaults.dirty_tuple_fraction));
  GDR_ASSIGN_OR_RETURN(options.seed, spec.GetUint64("seed", defaults.seed));
  GDR_ASSIGN_OR_RETURN(
      options.discovery.min_support,
      spec.GetDouble("min_support", defaults.discovery.min_support));
  GDR_ASSIGN_OR_RETURN(
      options.discovery.min_confidence,
      spec.GetDouble("min_confidence", defaults.discovery.min_confidence));
  return GenerateDataset2(options);
}

// The paper's Figure 1 running example: Customer(Name, SRC, STR, CT, STT,
// ZIP), six tuples, four injected errors, rules phi1..phi5. Small enough
// to eyeball — the default workload of quickstart and the interactive REPL,
// and the content of the examples/data/ toy CSV files.
Result<Dataset> MakeFigure1(const WorkloadSpec& spec) {
  GDR_RETURN_NOT_OK(spec.RejectUnknownKeys({}));
  GDR_ASSIGN_OR_RETURN(
      Schema schema, Schema::Make({"Name", "SRC", "STR", "CT", "STT", "ZIP"}));
  Dataset dataset(schema);
  dataset.name = "figure1";

  const std::vector<std::vector<std::string>> truth = {
      {"Ann", "H1", "Sherden Rd", "Fort Wayne", "IN", "46825"},
      {"Bob", "H1", "Sherden Rd", "Fort Wayne", "IN", "46825"},
      {"Cal", "H2", "Oak Ave", "Michigan City", "IN", "46360"},
      {"Dee", "H2", "Oak Ave", "Michigan City", "IN", "46360"},
      {"Eve", "H3", "Main St", "New Haven", "IN", "46774"},
      {"Fay", "H4", "Main St", "Westville", "IN", "46391"},
  };
  for (const auto& row : truth) {
    GDR_ASSIGN_OR_RETURN(const RowId added, dataset.clean.AppendRow(row));
    (void)added;
  }

  // H2's operator mistypes cities, Bob's zip was confused with the
  // neighboring code, Eve's state got spelled out.
  dataset.dirty = dataset.clean;
  dataset.dirty.Set(1, 5, "46391");
  dataset.dirty.Set(2, 3, "Michigan Cty");
  dataset.dirty.Set(3, 3, "Michigan Cty");
  dataset.dirty.Set(4, 4, "IND");
  dataset.corrupted_tuples = 4;

  GDR_RETURN_NOT_OK(dataset.rules.AddRuleFromString(
      "phi1", "ZIP=46360 -> CT=Michigan City ; STT=IN"));
  GDR_RETURN_NOT_OK(dataset.rules.AddRuleFromString(
      "phi2", "ZIP=46774 -> CT=New Haven ; STT=IN"));
  GDR_RETURN_NOT_OK(dataset.rules.AddRuleFromString(
      "phi3", "ZIP=46825 -> CT=Fort Wayne ; STT=IN"));
  GDR_RETURN_NOT_OK(dataset.rules.AddRuleFromString(
      "phi4", "ZIP=46391 -> CT=Westville ; STT=IN"));
  GDR_RETURN_NOT_OK(
      dataset.rules.AddRuleFromString("phi5", "STR, CT=Fort Wayne -> ZIP"));
  return dataset;
}

}  // namespace

Status RegisterBuiltinWorkloads(WorkloadRegistry* registry) {
  GDR_RETURN_NOT_OK(registry->Register(
      "dataset1",
      "hospital feed with source-correlated errors "
      "(records, hospitals, volume_skew, error_scale, seed)",
      MakeDataset1));
  GDR_RETURN_NOT_OK(registry->Register(
      "dataset2",
      "census with uniform random errors and discovered rules "
      "(records, dirty_fraction, seed, min_support, min_confidence)",
      MakeDataset2));
  GDR_RETURN_NOT_OK(registry->Register(
      "figure1", "the paper's six-tuple Figure 1 running example",
      MakeFigure1));
  return Status::OK();
}

}  // namespace gdr
