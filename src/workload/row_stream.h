#ifndef GDR_WORKLOAD_ROW_STREAM_H_
#define GDR_WORKLOAD_ROW_STREAM_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/table.h"
#include "sim/stream_gen.h"
#include "util/csv.h"
#include "util/result.h"

namespace gdr {

/// Default rows-per-chunk for stream consumers. Big enough to amortize the
/// per-chunk call overhead, small enough that a chunk of wide string rows
/// stays cache- and allocator-friendly.
inline constexpr std::size_t kDefaultStreamChunk = 4096;

/// A pull-based source of rows sharing one schema: the ingestion-side
/// counterpart of GdrSession's pull-based feedback loop. Consumers drain it
/// chunk by chunk (CSV files are parsed incrementally — the file is never
/// slurped), so million-row sources never materialize in memory at once.
///
/// Contract: header() is the attribute-name record and is available from
/// construction; every delivered row has header().size() fields; after
/// NextChunk() first returns 0 the stream is exhausted and stays so.
class RowStream {
 public:
  virtual ~RowStream() = default;

  const std::vector<std::string>& header() const { return header_; }

  /// Appends up to `max_rows` rows to *out (which is not cleared) and
  /// returns how many were appended; 0 means the stream is exhausted.
  virtual Result<std::size_t> NextChunk(
      std::size_t max_rows, std::vector<std::vector<std::string>>* out) = 0;

 protected:
  std::vector<std::string> header_;
};

/// Streams a CSV file through CsvChunkParser in fixed-size byte chunks.
/// Record 0 is the header; arity errors and malformed CSV are reported
/// with the physical record number (header = record 1) and the path.
class CsvRowStream : public RowStream {
 public:
  /// Opens `path` and parses up to the header record. Fails if the file
  /// cannot be opened or holds no record at all.
  static Result<std::unique_ptr<CsvRowStream>> Open(const std::string& path);

  Result<std::size_t> NextChunk(
      std::size_t max_rows,
      std::vector<std::vector<std::string>>* out) override;

 private:
  explicit CsvRowStream(std::string path) : path_(std::move(path)) {}

  // Reads and parses more bytes; sets eof_ after Finish().
  Status Fill();

  std::string path_;
  std::ifstream in_;
  CsvChunkParser parser_;
  std::vector<std::vector<std::string>> pending_;
  std::size_t pending_pos_ = 0;   // rows [0, pending_pos_) already delivered
  std::size_t next_record_ = 0;   // file record number of pending_[pos]
  bool eof_ = false;
};

/// Streams an in-memory Table (header = schema attribute names): lets any
/// materialized workload feed the streaming ingestion path.
class TableRowStream : public RowStream {
 public:
  explicit TableRowStream(const Table* table);

  Result<std::size_t> NextChunk(
      std::size_t max_rows,
      std::vector<std::vector<std::string>>* out) override;

 private:
  const Table* table_;
  std::size_t next_row_ = 0;
};

/// Streams a fixed vector of rows; test fixture for arrival-order and
/// chunk-size sweeps.
class VectorRowStream : public RowStream {
 public:
  VectorRowStream(std::vector<std::string> header,
                  std::vector<std::vector<std::string>> rows);

  Result<std::size_t> NextChunk(
      std::size_t max_rows,
      std::vector<std::vector<std::string>>* out) override;

 private:
  std::vector<std::vector<std::string>> rows_;
  std::size_t next_row_ = 0;
};

/// Adapts a per-index row function (row i is a pure function of i) into a
/// stream of `count` rows. Because rows depend only on their index, every
/// chunking of the stream produces identical content.
class GeneratorRowStream : public RowStream {
 public:
  using RowFn = std::function<void(std::uint64_t index,
                                   std::vector<std::string>* out)>;

  GeneratorRowStream(std::vector<std::string> header, std::uint64_t count,
                     RowFn fn);

  Result<std::size_t> NextChunk(
      std::size_t max_rows,
      std::vector<std::vector<std::string>>* out) override;

 private:
  std::uint64_t count_;
  std::uint64_t next_index_ = 0;
  RowFn fn_;
};

/// The sim/stream_gen generator as a stream (options.records rows).
Result<std::unique_ptr<RowStream>> MakeStreamGenStream(
    const StreamGenOptions& options);

/// Drains `stream` into `table`, `chunk_rows` rows at a time, and returns
/// the number of rows appended. All-or-nothing: any stream or append error
/// rolls the table back to its pre-call size (Table::TruncateTo), so a
/// truncated or malformed source never leaves a partially-loaded table.
Result<std::size_t> AppendStream(RowStream* stream, Table* table,
                                 std::size_t chunk_rows = kDefaultStreamChunk);

}  // namespace gdr

#endif  // GDR_WORKLOAD_ROW_STREAM_H_
