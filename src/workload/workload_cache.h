#ifndef GDR_WORKLOAD_WORKLOAD_CACHE_H_
#define GDR_WORKLOAD_WORKLOAD_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "sim/dataset.h"
#include "util/result.h"
#include "workload/workload.h"

namespace gdr {

struct WorkloadCacheOptions {
  /// Directory for the on-disk layer: each resolved workload is
  /// ExportWorkload()ed to `<cache_dir>/wl_<fnv1a-hex>/` (clean.csv,
  /// dirty.csv, rules.txt + a meta.txt recording the canonical spec), so a
  /// later resolution — in this process or the next — loads the exported
  /// csv: file set instead of re-running generation + rule discovery.
  /// Empty (the default) disables the disk layer; the cache is then
  /// in-memory only.
  std::string cache_dir;
  /// Resolved Datasets kept resident; least-recently-used entries are
  /// dropped beyond this (they remain loadable from the disk layer when
  /// one is configured). 0 disables the in-memory layer.
  std::size_t max_resident = 8;
};

/// Content-keyed cache of resolved workloads. The key is
/// WorkloadSpec::Canonical() — name plus sorted, whitespace-normalized
/// parameters — so "dataset1:seed=7,records=100" and
/// "dataset1:records=100, seed=7" are one entry. Two layers:
///
///   memory  canonical spec -> shared resident Dataset (LRU, max_resident)
///   disk    canonical spec -> ExportWorkload()ed csv: file set, which
///           loads back bit-identically (the PR 4 round-trip guarantee),
///           named by the spec's FNV-1a content hash
///
/// Hash collisions can never alias silently: the disk layer stores the
/// full canonical spec next to the files and verifies it on every hit; a
/// mismatch probes `wl_<hash>_1`, `_2`, ... until an empty or matching
/// slot is found (counted in `collisions_resolved`). The in-memory layer
/// is keyed by the canonical string itself, so it cannot collide at all.
///
/// Not thread-safe: one cache per resolving thread (benches and the sweep
/// runner resolve serially).
class WorkloadCache {
 public:
  struct Counters {
    std::size_t memory_hits = 0;
    std::size_t disk_hits = 0;
    std::size_t misses = 0;  // full resolutions through the registry
    std::size_t collisions_resolved = 0;

    std::size_t hits() const { return memory_hits + disk_hits; }
  };

  explicit WorkloadCache(WorkloadCacheOptions options = {});

  /// Parse + Resolve for textual specs.
  Result<std::shared_ptr<const Dataset>> Resolve(std::string_view spec_text);

  /// Returns the cached Dataset for `spec`'s canonical form, resolving it
  /// through the global WorkloadRegistry on the first request. The result
  /// is shared and immutable — many concurrent readers (per-shard session
  /// builders, sweep cells) may hold it at once.
  Result<std::shared_ptr<const Dataset>> Resolve(const WorkloadSpec& spec);

  const Counters& counters() const { return counters_; }
  const WorkloadCacheOptions& options() const { return options_; }

 private:
  struct Resident {
    std::shared_ptr<const Dataset> dataset;
    std::uint64_t last_touch = 0;
  };

  // Returns the disk directory holding `canonical` (verified against
  // meta.txt), "" when the entry is absent. Probes collision salts.
  std::string FindDiskEntry(const std::string& canonical);
  // Exports `dataset` under `canonical`'s hash (next free salt slot).
  Status StoreDiskEntry(const std::string& canonical, const Dataset& dataset);
  Result<Dataset> LoadDiskEntry(const std::string& dir);
  void InsertResident(const std::string& canonical,
                      std::shared_ptr<const Dataset> dataset);

  WorkloadCacheOptions options_;
  Counters counters_;
  std::map<std::string, Resident> resident_;  // canonical -> entry
  std::uint64_t touch_clock_ = 0;
};

}  // namespace gdr

#endif  // GDR_WORKLOAD_WORKLOAD_CACHE_H_
