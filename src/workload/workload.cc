#include "workload/workload.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>

#include "util/strings.h"

namespace gdr {

namespace {

constexpr auto Trim = TrimWhitespace;

}  // namespace

Result<WorkloadSpec> WorkloadSpec::Parse(std::string_view text) {
  WorkloadSpec spec;
  const std::size_t colon = text.find(':');
  const std::string_view name = Trim(text.substr(0, colon));
  if (name.empty()) {
    return Status::InvalidArgument("workload spec '" + std::string(text) +
                                   "' lacks a name");
  }
  if (name.find('=') != std::string_view::npos ||
      name.find(',') != std::string_view::npos) {
    return Status::InvalidArgument(
        "workload spec must start with 'name:' before any parameters, got '" +
        std::string(text) + "'");
  }
  spec.name = std::string(name);
  if (colon == std::string_view::npos) return spec;

  std::string_view rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item = Trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    if (item.empty()) continue;  // tolerate a trailing comma
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("workload '" + spec.name +
                                     "': parameter '" + std::string(item) +
                                     "' is not of the form key=value");
    }
    const std::string key(Trim(item.substr(0, eq)));
    const std::string value(Trim(item.substr(eq + 1)));
    if (spec.Find(key) != nullptr) {
      return Status::InvalidArgument("workload '" + spec.name +
                                     "': duplicate parameter '" + key + "'");
    }
    spec.params.emplace_back(key, value);
  }
  return spec;
}

std::string WorkloadSpec::ToString() const {
  std::string out = name;
  for (std::size_t i = 0; i < params.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += params[i].first;
    out += '=';
    out += params[i].second;
  }
  return out;
}

std::string WorkloadSpec::Canonical() const {
  std::vector<std::pair<std::string, std::string>> sorted = params;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out(TrimWhitespace(name));
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += sorted[i].first;
    out += '=';
    out += sorted[i].second;
  }
  return out;
}

std::uint64_t WorkloadSpec::ContentHash() const { return Fnv1a64(Canonical()); }

const std::string* WorkloadSpec::Find(std::string_view key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<std::string> WorkloadSpec::GetString(std::string_view key,
                                            std::string_view fallback) const {
  const std::string* value = Find(key);
  return value != nullptr ? *value : std::string(fallback);
}

Result<std::uint64_t> WorkloadSpec::GetUint64(std::string_view key,
                                              std::uint64_t fallback) const {
  const std::string* value = Find(key);
  if (value == nullptr) return fallback;
  std::uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value->data(), value->data() + value->size(), parsed);
  if (ec != std::errc() || ptr != value->data() + value->size()) {
    return Status::InvalidArgument(
        "workload '" + name + "': parameter '" + std::string(key) +
        "' expects a non-negative integer, got '" + *value + "'");
  }
  return parsed;
}

Result<std::size_t> WorkloadSpec::GetSize(std::string_view key,
                                          std::size_t fallback) const {
  GDR_ASSIGN_OR_RETURN(const std::uint64_t value, GetUint64(key, fallback));
  return static_cast<std::size_t>(value);
}

Result<int> WorkloadSpec::GetInt(std::string_view key, int fallback) const {
  const std::string* value = Find(key);
  if (value == nullptr) return fallback;
  int parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value->data(), value->data() + value->size(), parsed);
  if (ec != std::errc() || ptr != value->data() + value->size()) {
    return Status::InvalidArgument("workload '" + name + "': parameter '" +
                                   std::string(key) +
                                   "' expects an integer, got '" + *value +
                                   "'");
  }
  return parsed;
}

Result<double> WorkloadSpec::GetDouble(std::string_view key,
                                       double fallback) const {
  const std::string* value = Find(key);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (value->empty() || end != value->c_str() + value->size()) {
    return Status::InvalidArgument("workload '" + name + "': parameter '" +
                                   std::string(key) +
                                   "' expects a number, got '" + *value + "'");
  }
  return parsed;
}

Status WorkloadSpec::RejectUnknownKeys(
    std::initializer_list<std::string_view> known) const {
  for (const auto& [key, value] : params) {
    bool found = false;
    for (std::string_view k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string accepted;
      for (std::string_view k : known) {
        if (!accepted.empty()) accepted += ", ";
        accepted += k;
      }
      return Status::InvalidArgument(
          "workload '" + name + "': unknown parameter '" + key +
          "' (accepted: " + (accepted.empty() ? "none" : accepted) + ")");
    }
  }
  return Status::OK();
}

}  // namespace gdr
