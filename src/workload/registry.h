#ifndef GDR_WORKLOAD_REGISTRY_H_
#define GDR_WORKLOAD_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/dataset.h"
#include "util/result.h"
#include "workload/workload.h"

namespace gdr {

/// Maps workload names to factories that materialize an experiment-ready
/// Dataset from a WorkloadSpec. Every entry point (benches, examples,
/// integration tests) resolves its scenario through a registry instead of
/// calling a generator directly, so new scenarios are a Register() — or a
/// set of files fed to the built-in "csv" factory — away, not a recompile
/// of a dozen binaries.
///
/// Not thread-safe for concurrent Register(); Resolve()/List() are const
/// and safe once registration is done (the usual pattern: register at
/// startup, resolve from anywhere).
class WorkloadRegistry {
 public:
  using Factory = std::function<Result<Dataset>(const WorkloadSpec&)>;

  /// Registers a named factory. Fails on an empty name or a duplicate.
  Status Register(std::string name, std::string description, Factory factory);

  bool Contains(std::string_view name) const;

  /// Resolves a parsed spec to a Dataset via the matching factory. Unknown
  /// names fail with the list of registered workloads.
  Result<Dataset> Resolve(const WorkloadSpec& spec) const;

  /// Convenience: Parse + Resolve for textual specs ("dataset1:records=4000").
  Result<Dataset> Resolve(std::string_view spec_text) const;

  /// (name, description) pairs, sorted by name.
  std::vector<std::pair<std::string, std::string>> List() const;

  /// The process-wide registry, pre-populated with the built-in workloads
  /// (dataset1, dataset2, figure1) and the file-backed "csv" factory.
  static WorkloadRegistry& Global();

 private:
  struct Entry {
    std::string description;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

/// Renders `registry.List()` as indented "name  description" lines for
/// usage/error output — the one implementation every entry point's
/// "unknown workload" message shares.
std::string FormatWorkloadListing(const WorkloadRegistry& registry);

/// Resolves a textual spec via the global registry; on failure, prints
/// "workload '<spec>': <error>" plus the registered listing to stderr and
/// returns the status. The shared front door of every command-line entry
/// point (benches and examples alike).
Result<Dataset> ResolveWorkloadOrReport(const std::string& spec_text);

/// Registers the generator-backed built-ins: "dataset1" (hospital feed,
/// correlated errors), "dataset2" (census, random errors + rule discovery)
/// — thin adapters over GenerateDataset1/2, bit-identical to calling the
/// generators with the same options — and "figure1" (the paper's running
/// example: six Customer tuples, four injected errors, the phi1..phi5 CFD
/// family).
Status RegisterBuiltinWorkloads(WorkloadRegistry* registry);

}  // namespace gdr

#endif  // GDR_WORKLOAD_REGISTRY_H_
