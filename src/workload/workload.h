#ifndef GDR_WORKLOAD_WORKLOAD_H_
#define GDR_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace gdr {

/// A parsed workload request: a registry name plus string-keyed parameters,
/// the resolution unit of the workload subsystem. The textual form used on
/// every bench/example command line is
///
///   name                                  (no parameters)
///   name:key=value,key=value,...
///
/// e.g. "dataset1:records=4000,seed=7" or
/// "csv:clean=d/clean.csv,dirty=d/dirty.csv,rules=d/rules.txt".
///
/// Keys are unique (duplicates are a parse error); values run to the next
/// comma, so commas cannot appear inside a value in the textual form —
/// build the spec programmatically (e.g. via CsvWorkloadSpec) when a file
/// path contains one.
struct WorkloadSpec {
  std::string name;
  /// Parameters in the order written; keys are unique.
  std::vector<std::pair<std::string, std::string>> params;

  /// Parses the textual form above. Fails with a message naming the
  /// offending token on an empty name, a missing key, or a duplicate key.
  static Result<WorkloadSpec> Parse(std::string_view text);

  /// Renders back to the textual form (inverse of Parse for specs whose
  /// values contain no commas).
  std::string ToString() const;

  /// The canonical textual form: the (already whitespace-trimmed) name
  /// followed by the parameters in *sorted key order* with single
  /// separators and no padding. Two specs that differ only in parameter
  /// order or surrounding whitespace canonicalize identically — this is
  /// the content key of the workload cache. Keys are unique by
  /// construction, so the sort is total.
  std::string Canonical() const;

  /// Stable FNV-1a (64-bit) hash of Canonical(), identical across runs and
  /// platforms. Used to name cache directories; collisions are possible in
  /// principle, so every consumer must verify the stored canonical string
  /// before trusting a hash match (the cache does).
  std::uint64_t ContentHash() const;

  /// Returns the value for `key`, or nullptr when absent.
  const std::string* Find(std::string_view key) const;
  bool Has(std::string_view key) const { return Find(key) != nullptr; }

  /// Typed parameter accessors. Each returns `fallback` when the key is
  /// absent and an InvalidArgument naming the workload, key, and raw value
  /// when present but malformed.
  Result<std::string> GetString(std::string_view key,
                                std::string_view fallback) const;
  Result<std::size_t> GetSize(std::string_view key, std::size_t fallback) const;
  Result<std::uint64_t> GetUint64(std::string_view key,
                                  std::uint64_t fallback) const;
  Result<int> GetInt(std::string_view key, int fallback) const;
  Result<double> GetDouble(std::string_view key, double fallback) const;

  /// Fails (naming the first offender and the accepted set) when the spec
  /// carries a key outside `known` — every factory calls this first so a
  /// typo like "record=" surfaces instead of being silently ignored.
  Status RejectUnknownKeys(
      std::initializer_list<std::string_view> known) const;
};

}  // namespace gdr

#endif  // GDR_WORKLOAD_WORKLOAD_H_
