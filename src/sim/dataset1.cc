#include "sim/dataset1.h"

#include <vector>

#include "sim/error_injector.h"
#include "sim/master_data.h"
#include "util/rng.h"

namespace gdr {

namespace {

constexpr const char* kClassifications[] = {
    "Emergency", "Urgent", "Routine", "Follow-up", "Transfer",
};

constexpr const char* kComplaints[] = {
    "Chest pain",    "Abdominal pain", "Fever",         "Headache",
    "Back pain",     "Shortness of breath", "Laceration", "Fracture",
    "Dizziness",     "Nausea",         "Burn",          "Allergic reaction",
    "Cough",         "Sore throat",    "Rash",          "Eye injury",
    "Ear pain",      "Dehydration",    "Seizure",       "Syncope",
    "Palpitations",  "Overdose",       "Animal bite",   "Fall",
};

constexpr const char* kStateTypos[] = {"IND", "In", "Ind.", "IN "};

}  // namespace

Result<Dataset> GenerateDataset1(const Dataset1Options& options) {
  GDR_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({"PatientID", "Age", "Sex", "Classification", "Complaint",
                    "HospitalName", "StreetAddress", "City", "Zip", "State",
                    "VisitDate"}));
  Dataset dataset(schema);
  dataset.name = "dataset1-hospital";

  const MasterDirectory directory = MasterDirectory::BuildIndiana();
  HospitalFleetOptions fleet_options;
  fleet_options.count = options.num_hospitals;
  fleet_options.seed = options.seed * 31 + 13;
  const std::vector<Hospital> hospitals =
      BuildHospitals(directory, fleet_options);
  const std::vector<double> volume =
      HospitalVolumeWeights(hospitals.size(), options.volume_skew);

  Rng rng(options.seed);

  // Clean instance.
  std::vector<std::size_t> hospital_of_row;
  hospital_of_row.reserve(options.num_records);
  for (std::size_t i = 0; i < options.num_records; ++i) {
    const std::size_t h = rng.NextWeighted(volume);
    hospital_of_row.push_back(h);
    const Hospital& hospital = hospitals[h];
    const std::vector<std::string>& streets =
        directory.streets_by_city.at(hospital.city);
    const std::string& street = streets[rng.NextBounded(streets.size())];
    const std::string zip = directory.ZipOfStreet(street, hospital.city);

    std::vector<std::string> row = {
        /*PatientID=*/"P" + std::to_string(100000 + i),
        /*Age=*/std::to_string(1 + rng.NextBounded(98)),
        /*Sex=*/rng.NextBernoulli(0.5) ? "M" : "F",
        /*Classification=*/
        kClassifications[rng.NextBounded(
            sizeof(kClassifications) / sizeof(kClassifications[0]))],
        /*Complaint=*/
        kComplaints[rng.NextBounded(sizeof(kComplaints) /
                                    sizeof(kComplaints[0]))],
        /*HospitalName=*/hospital.name,
        /*StreetAddress=*/street,
        /*City=*/hospital.city,
        /*Zip=*/zip,
        /*State=*/"IN",
        /*VisitDate=*/
        "2010-" + std::to_string(1 + rng.NextBounded(12)) + "-" +
            std::to_string(1 + rng.NextBounded(28)),
    };
    GDR_ASSIGN_OR_RETURN(RowId added, dataset.clean.AppendRow(row));
    (void)added;
  }

  // Dirty instance: per-hospital correlated corruption.
  dataset.dirty = dataset.clean;
  GDR_ASSIGN_OR_RETURN(const AttrId kStreet,
                       schema.GetAttr("StreetAddress"));
  GDR_ASSIGN_OR_RETURN(const AttrId kCity, schema.GetAttr("City"));
  GDR_ASSIGN_OR_RETURN(const AttrId kZip, schema.GetAttr("Zip"));
  GDR_ASSIGN_OR_RETURN(const AttrId kState, schema.GetAttr("State"));

  for (std::size_t i = 0; i < options.num_records; ++i) {
    const Hospital& hospital = hospitals[hospital_of_row[i]];
    const double rate = hospital.error_rate * options.error_scale;
    if (rate <= 0.0 || !rng.NextBernoulli(rate)) continue;
    const RowId row = static_cast<RowId>(i);
    ++dataset.corrupted_tuples;

    switch (hospital.profile) {
      case Hospital::Profile::kClean:
        --dataset.corrupted_tuples;  // unreachable rate guard
        break;
      case Hospital::Profile::kCityTypo:
        dataset.dirty.Set(row, kCity,
                          PerturbCharacters(dataset.clean.at(row, kCity),
                                            &rng));
        break;
      case Hospital::Profile::kCitySwap:
        dataset.dirty.Set(row, kCity, hospital.wrong_city);
        break;
      case Hospital::Profile::kZipBoundary: {
        const std::string& true_zip = dataset.clean.at(row, kZip);
        auto partner = directory.boundary_partner.find(true_zip);
        if (partner != directory.boundary_partner.end()) {
          dataset.dirty.Set(row, kZip, partner->second);
        }
        break;
      }
      case Hospital::Profile::kStateTypo:
        dataset.dirty.Set(
            row, kState,
            kStateTypos[rng.NextBounded(sizeof(kStateTypos) /
                                        sizeof(kStateTypos[0]))]);
        break;
      case Hospital::Profile::kStreetTypo:
        dataset.dirty.Set(row, kStreet,
                          PerturbCharacters(dataset.clean.at(row, kStreet),
                                            &rng));
        break;
    }
  }

  // Rules: Figure 1's family over the full directory.
  int rule_number = 0;
  for (const ZipEntry& entry : directory.zips) {
    GDR_RETURN_NOT_OK(dataset.rules.AddRuleFromString(
        "phi" + std::to_string(++rule_number),
        "Zip=" + entry.zip + " -> City=" + entry.city +
            " ; State=" + entry.state));
  }
  GDR_RETURN_NOT_OK(dataset.rules.AddRuleFromString(
      "phi" + std::to_string(++rule_number),
      "StreetAddress, City -> Zip"));

  return dataset;
}

}  // namespace gdr
