#ifndef GDR_SIM_STREAM_GEN_H_
#define GDR_SIM_STREAM_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cfd/cfd.h"
#include "data/schema.h"
#include "util/result.h"

namespace gdr {

/// Parameterized million-row-scale generator for streaming-ingestion
/// benchmarks and differential tests. Unlike the Figure-3 datasets it is
/// defined *per row index*: StreamGenRow(options, i, ...) is a pure
/// function of (options, i), so any chunking, arrival order, or partial
/// materialization of the stream yields the same tuples — the property the
/// incremental-vs-rebuild differential suite rests on.
struct StreamGenOptions {
  std::uint64_t records = 1'000'000;
  /// Distinct cities; each city has one canonical zip/state, so violations
  /// arise only from injected corruption.
  std::uint64_t cities = 5'000;
  /// Probability that a row is corrupted (zip swapped to a neighboring
  /// city's, or state perturbed).
  double dirty_fraction = 0.02;
  std::uint64_t seed = 11;
};

/// {Facility, City, Zip, State, Phone}.
Result<Schema> StreamGenSchema();

/// Two variable CFDs (City -> Zip, Zip -> City) plus up to eight constant
/// CFDs (City=C<k> -> State=S<k%50>) pinning the first cities' states.
Result<RuleSet> StreamGenRules(const StreamGenOptions& options);

/// Materializes row `index` of the stream into *out (arity 5, schema
/// order). Deterministic in (options, index) only.
void StreamGenRow(const StreamGenOptions& options, std::uint64_t index,
                  std::vector<std::string>* out);

}  // namespace gdr

#endif  // GDR_SIM_STREAM_GEN_H_
