#ifndef GDR_SIM_CFD_DISCOVERY_H_
#define GDR_SIM_CFD_DISCOVERY_H_

#include <vector>

#include "cfd/cfd.h"
#include "data/table.h"
#include "util/result.h"

namespace gdr {

struct CfdDiscoveryOptions {
  /// Minimum fraction of tuples the pattern's LHS constant must cover
  /// (the paper's experiments use a 5% support threshold).
  double min_support = 0.05;
  /// Minimum fraction of covered tuples that must agree on the RHS value.
  /// Below 1.0 tolerates dirty data, which is the point of discovering
  /// rules from an instance that needs repairing.
  double min_confidence = 0.85;
};

/// Discovers constant CFDs of the form (A = a → B = b) from an instance —
/// a deliberately simplified take on the discovery algorithms of Fan et
/// al. (ICDE 2009) restricted to single-attribute LHS patterns, which is
/// the rule shape Dataset 2's experiments rely on.
///
/// For every ordered attribute pair (A, B), A ≠ B, and every value a of A
/// with support ≥ min_support·|D|: if the most frequent co-occurring B
/// value b covers ≥ min_confidence of a's tuples, emit (A=a → B=b).
/// Deterministic: rules are ordered by (A, B, a's value id).
Result<RuleSet> DiscoverConstantCfds(const Table& table,
                                     const std::vector<AttrId>& attrs,
                                     const CfdDiscoveryOptions& options = {});

struct FdDiscoveryOptions {
  /// Minimum confidence of the dependency under the g3-style measure:
  /// the fraction of tuples that would satisfy X → A after removing the
  /// fewest violators (per-group majority agreement).
  double min_confidence = 0.9;
  /// At least this fraction of tuples must sit in LHS groups of size ≥ 2;
  /// below it the dependency is vacuously "true" (X is nearly a key) and
  /// useless as a repair rule.
  double min_pair_coverage = 0.2;
  /// Maximum LHS size explored (1 or 2).
  int max_lhs = 2;
};

/// Discovers *variable* CFDs (X → A, tp all-wildcard) — approximate
/// functional dependencies mined with a support/confidence lattice walk in
/// the spirit of the discovery algorithms the paper cites (Fan et al.
/// ICDE 2009, Golab et al. VLDB 2008), restricted to |X| ≤ 2.
///
/// Prunes: trivial dependencies (A ∈ X), near-key LHSs (see
/// min_pair_coverage), and supersets of an already-emitted LHS for the
/// same RHS (minimality). Deterministic output order.
Result<RuleSet> DiscoverVariableCfds(const Table& table,
                                     const std::vector<AttrId>& attrs,
                                     const FdDiscoveryOptions& options = {});

}  // namespace gdr

#endif  // GDR_SIM_CFD_DISCOVERY_H_
