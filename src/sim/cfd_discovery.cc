#include "sim/cfd_discovery.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

namespace gdr {

Result<RuleSet> DiscoverConstantCfds(const Table& table,
                                     const std::vector<AttrId>& attrs,
                                     const CfdDiscoveryOptions& options) {
  if (options.min_support <= 0.0 || options.min_support > 1.0) {
    return Status::InvalidArgument("min_support must be in (0, 1]");
  }
  if (options.min_confidence <= 0.0 || options.min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in (0, 1]");
  }
  RuleSet rules(table.schema());
  const std::size_t n = table.num_rows();
  if (n == 0) return rules;
  const std::size_t min_count = static_cast<std::size_t>(
      std::ceil(options.min_support * static_cast<double>(n)));

  int rule_number = 0;
  for (AttrId lhs : attrs) {
    for (AttrId rhs : attrs) {
      if (lhs == rhs) continue;
      // a -> histogram over b, plus a's total support.
      std::unordered_map<ValueId, std::unordered_map<ValueId, std::size_t>>
          cooccurrence;
      std::unordered_map<ValueId, std::size_t> support;
      for (std::size_t r = 0; r < n; ++r) {
        const RowId row = static_cast<RowId>(r);
        const ValueId a = table.id_at(row, lhs);
        const ValueId b = table.id_at(row, rhs);
        ++cooccurrence[a][b];
        ++support[a];
      }
      // Deterministic order: ascending LHS value id.
      for (std::size_t v = 0; v < table.DomainSize(lhs); ++v) {
        const ValueId a = static_cast<ValueId>(v);
        auto sup = support.find(a);
        if (sup == support.end() || sup->second < min_count) continue;
        const auto& histogram = cooccurrence[a];
        ValueId mode = kInvalidValueId;
        std::size_t mode_count = 0;
        for (const auto& [b, count] : histogram) {
          if (count > mode_count ||
              (count == mode_count && b < mode)) {
            mode = b;
            mode_count = count;
          }
        }
        const double confidence = static_cast<double>(mode_count) /
                                  static_cast<double>(sup->second);
        if (confidence < options.min_confidence) continue;
        GDR_RETURN_NOT_OK(rules.AddRule(
            "disc" + std::to_string(++rule_number),
            {PatternCell{lhs, table.dict(lhs).ToString(a)}},
            {PatternCell{rhs, table.dict(rhs).ToString(mode)}}));
      }
    }
  }
  return rules;
}

namespace {

// Confidence and pair coverage of the candidate FD lhs -> rhs under the
// per-group-majority (g3-style) measure.
struct FdScore {
  double confidence = 0.0;
  double pair_coverage = 0.0;
};

FdScore ScoreFd(const Table& table, const std::vector<AttrId>& lhs,
                AttrId rhs) {
  // Group rows by the LHS projection; count the majority RHS value per
  // group. std::map keys keep evaluation deterministic.
  std::map<std::vector<ValueId>, std::unordered_map<ValueId, std::size_t>>
      groups;
  std::vector<ValueId> key(lhs.size());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const RowId row = static_cast<RowId>(r);
    for (std::size_t k = 0; k < lhs.size(); ++k) {
      key[k] = table.id_at(row, lhs[k]);
    }
    ++groups[key][table.id_at(row, rhs)];
  }
  std::size_t kept = 0;
  std::size_t in_pairs = 0;
  for (const auto& [group_key, counts] : groups) {
    std::size_t total = 0;
    std::size_t majority = 0;
    for (const auto& [value, count] : counts) {
      total += count;
      majority = std::max(majority, count);
    }
    kept += majority;
    if (total >= 2) in_pairs += total;
  }
  const double n = static_cast<double>(table.num_rows());
  FdScore score;
  if (n > 0) {
    score.confidence = static_cast<double>(kept) / n;
    score.pair_coverage = static_cast<double>(in_pairs) / n;
  }
  return score;
}

}  // namespace

Result<RuleSet> DiscoverVariableCfds(const Table& table,
                                     const std::vector<AttrId>& attrs,
                                     const FdDiscoveryOptions& options) {
  if (options.min_confidence <= 0.0 || options.min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in (0, 1]");
  }
  if (options.max_lhs < 1 || options.max_lhs > 2) {
    return Status::InvalidArgument("max_lhs must be 1 or 2");
  }
  RuleSet rules(table.schema());
  if (table.num_rows() == 0) return rules;

  int rule_number = 0;
  auto try_emit = [&](const std::vector<AttrId>& lhs,
                      AttrId rhs) -> Result<bool> {
    const FdScore score = ScoreFd(table, lhs, rhs);
    if (score.confidence < options.min_confidence ||
        score.pair_coverage < options.min_pair_coverage) {
      return false;
    }
    std::vector<PatternCell> lhs_cells;
    for (AttrId attr : lhs) {
      lhs_cells.push_back(PatternCell{attr, std::nullopt});
    }
    GDR_RETURN_NOT_OK(rules.AddRule("fd" + std::to_string(++rule_number),
                                    std::move(lhs_cells),
                                    {PatternCell{rhs, std::nullopt}}));
    return true;
  };

  // Level 1: single-attribute LHS. Remember satisfied RHSs for minimality.
  std::vector<std::vector<bool>> covered(
      table.num_attrs(), std::vector<bool>(table.num_attrs(), false));
  for (AttrId rhs : attrs) {
    for (AttrId lhs : attrs) {
      if (lhs == rhs) continue;
      GDR_ASSIGN_OR_RETURN(bool emitted, try_emit({lhs}, rhs));
      if (emitted) {
        covered[static_cast<std::size_t>(lhs)][static_cast<std::size_t>(
            rhs)] = true;
      }
    }
  }
  if (options.max_lhs < 2) return rules;

  // Level 2: pairs, skipping supersets of an emitted level-1 LHS for the
  // same RHS (minimality pruning).
  for (AttrId rhs : attrs) {
    for (std::size_t i = 0; i < attrs.size(); ++i) {
      for (std::size_t j = i + 1; j < attrs.size(); ++j) {
        const AttrId a = attrs[i];
        const AttrId b = attrs[j];
        if (a == rhs || b == rhs) continue;
        if (covered[static_cast<std::size_t>(a)][static_cast<std::size_t>(
                rhs)] ||
            covered[static_cast<std::size_t>(b)][static_cast<std::size_t>(
                rhs)]) {
          continue;
        }
        GDR_RETURN_NOT_OK(try_emit({a, b}, rhs).status());
      }
    }
  }
  return rules;
}

}  // namespace gdr
