#include "sim/oracle.h"

namespace gdr {

UserOracle::UserOracle(const Table* ground_truth, UserOracleOptions options)
    : ground_truth_(ground_truth), options_(options), rng_(options.seed) {}

Feedback UserOracle::GetFeedback(const Table& table, const Update& update) {
  ++feedback_given_;
  const std::string& truth = ground_truth_->at(update.row, update.attr);
  const std::string& suggested =
      table.dict(update.attr).ToString(update.value);
  if (suggested == truth) return Feedback::kConfirm;
  if (table.at(update.row, update.attr) == truth) return Feedback::kRetain;
  return Feedback::kReject;
}

std::optional<std::string> UserOracle::SuggestValue(const Table& table,
                                                    const Update& update) {
  (void)table;
  if (options_.volunteer_probability <= 0.0 ||
      !rng_.NextBernoulli(options_.volunteer_probability)) {
    return std::nullopt;
  }
  ++values_volunteered_;
  return ground_truth_->at(update.row, update.attr);
}

}  // namespace gdr
