#ifndef GDR_SIM_EXPERIMENT_H_
#define GDR_SIM_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/gdr.h"
#include "core/quality.h"
#include "sim/dataset.h"
#include "sim/oracle.h"
#include "util/result.h"

namespace gdr {

/// One sample of a quality-vs-effort curve.
struct CurvePoint {
  std::size_t feedback = 0;      // user-verified updates so far
  double improvement_pct = 0.0;  // y-axis of Figures 3/4
  double loss = 0.0;             // L(D) (Eq. 3) at this point
};

/// Which entry point RunStrategyExperiment drives. Both produce
/// bit-identical results (the session differential tests enforce it);
/// exercising both keeps the legacy shim and the pull API equally honest.
enum class ExperimentDriver {
  /// Legacy push loop: GdrEngine::Run() with the oracle as provider.
  kEngineRun,
  /// Pull loop: a GdrSession pumped batch-by-batch against the oracle.
  kSessionPump,
};

struct ExperimentConfig {
  Strategy strategy = Strategy::kGdr;
  /// User label budget F; unlimited runs until convergence/exhaustion.
  std::size_t feedback_budget = GdrOptions::kUnlimitedBudget;
  int ns = 5;
  std::uint64_t seed = 42;
  double volunteer_probability = 0.0;
  /// Curve granularity: a point is recorded every `sample_every` labels
  /// (plus the final state).
  std::size_t sample_every = 25;
  /// Worker threads for VOI ranking (GdrOptions::num_threads: 1 = serial,
  /// 0 = hardware concurrency). Never changes results, only wall-clock.
  std::size_t num_threads = 1;
  /// Non-owning: when set, VOI ranking fans out on this pool and
  /// `num_threads` is ignored (GdrOptions::shared_pool semantics). Lets a
  /// harness run many experiments against one pool instead of paying a
  /// pool construction per run. Must outlive the call.
  ThreadPool* shared_pool = nullptr;
  /// Entry point under test; results are identical either way.
  ExperimentDriver driver = ExperimentDriver::kEngineRun;
  /// VOI scoring implementation (GdrOptions::voi_scoring): batched
  /// closed-form probes (default) or the per-update delta oracle. Results
  /// are bit-identical either way — the voi_batched differential suite
  /// runs whole experiments under both to enforce exactly that.
  VoiRanker::ScoringMode voi_scoring = VoiRanker::ScoringMode::kBatched;
  /// Learner inference implementation (GdrOptions::learner_inference):
  /// group-batched matrix encoding + tree-at-a-time forest passes
  /// (default) or the scalar per-update oracle. Results are bit-identical
  /// either way — the learner_batch differential suite runs whole
  /// experiments under both to enforce exactly that.
  VoiRanker::InferenceMode learner_inference =
      VoiRanker::InferenceMode::kBatched;
};

struct ExperimentResult {
  std::string strategy_name;
  std::vector<CurvePoint> curve;
  GdrStats stats;
  RepairAccuracy accuracy;
  double initial_loss = 0.0;
  double final_loss = 0.0;
  double final_improvement_pct = 0.0;
  std::int64_t remaining_violations = 0;
  /// End-to-end wall-clock of the run (engine setup + interactive loop);
  /// per-phase breakdown is in stats.timings.
  double wall_seconds = 0.0;
};

/// Runs one strategy on a copy of `dataset.dirty` against the ground-truth
/// oracle and records the quality curve (the common skeleton of the
/// Figure 3/4/5 experiments). The dataset itself is not mutated.
Result<ExperimentResult> RunStrategyExperiment(const Dataset& dataset,
                                               const ExperimentConfig& config);

/// Runs the Automatic-Heuristic baseline (BatchRepair) on a copy of the
/// dirty instance; the curve is the single constant level the paper plots.
Result<ExperimentResult> RunHeuristicExperiment(const Dataset& dataset);

/// Renders a curve as "feedback_pct improvement_pct" rows, with feedback
/// expressed as a percentage of `denominator` (Figure 3 normalizes by the
/// total feedback the strategy needed; Figure 4 by the initial dirty-tuple
/// count). Used by the bench harnesses.
std::string FormatCurve(const std::vector<CurvePoint>& curve,
                        double denominator);

}  // namespace gdr

#endif  // GDR_SIM_EXPERIMENT_H_
