#ifndef GDR_SIM_DATASET1_H_
#define GDR_SIM_DATASET1_H_

#include <cstdint>

#include "sim/dataset.h"
#include "util/result.h"

namespace gdr {

/// Generator options for the Dataset 1 analog (see DESIGN.md for the
/// substitution rationale: the paper's Dataset 1 is a proprietary
/// emergency-room feed from 74 Indiana hospitals with manually repaired
/// ground truth).
struct Dataset1Options {
  std::size_t num_records = 20000;
  std::size_t num_hospitals = 74;
  /// Zipf skew of hospital visit volumes; larger skew ⇒ more widely
  /// varying update-group sizes (a defining property of Dataset 1).
  double volume_skew = 0.85;
  /// Multiplier on every hospital's error rate (1.0 lands near the
  /// paper's ~30% dirty tuples).
  double error_scale = 1.0;
  std::uint64_t seed = 11;
};

/// Generates the hospital workload:
///  * Schema: PatientID, Age, Sex, Classification, Complaint,
///    HospitalName, StreetAddress, City, Zip, State, VisitDate
///    (the attribute subset of Appendix B).
///  * Clean records are sampled from the master directory: a patient's
///    address is a street of the hospital's city, with the zip/city/state
///    the directory entails.
///  * Errors are *correlated*: each hospital corrupts records at its own
///    rate with its own signature pattern (city swap to one fixed wrong
///    city, boundary-zip confusion, keyboard typos in city/state/street) —
///    the recurrent source-correlated mistakes the GDR learner exploits.
///  * Rules: one constant CFD "Zip=z → City=c; State=IN" per directory
///    zip, plus the variable CFD "StreetAddress, City → Zip" (the paper's
///    Figure 1 rule family).
Result<Dataset> GenerateDataset1(const Dataset1Options& options = {});

}  // namespace gdr

#endif  // GDR_SIM_DATASET1_H_
