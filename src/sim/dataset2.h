#ifndef GDR_SIM_DATASET2_H_
#define GDR_SIM_DATASET2_H_

#include <cstdint>

#include "sim/cfd_discovery.h"
#include "sim/dataset.h"
#include "util/result.h"

namespace gdr {

/// Generator options for the Dataset 2 analog (the paper uses the UCI
/// Adult census sample, assumed clean, with synthetic random errors; see
/// DESIGN.md).
struct Dataset2Options {
  std::size_t num_records = 23000;  // the paper's "about 23,000 records"
  /// Fraction of tuples corrupted (paper: 30%).
  double dirty_tuple_fraction = 0.3;
  std::uint64_t seed = 23;
  /// Rule discovery settings (paper: 5% support threshold).
  CfdDiscoveryOptions discovery;
};

/// Generates the census workload:
///  * Schema: education, hours_per_week, income, marital_status,
///    native_country, occupation, race, relationship, sex, workclass
///    (the Appendix B attribute subset).
///  * Clean records come from a synthetic joint distribution with three
///    deterministic dependencies baked in — relationship → marital_status,
///    occupation → workclass, occupation → income — which is what makes
///    constant CFDs discoverable at the paper's 5% support threshold.
///  * Errors are *uniformly random* (uncorrelated): 30% of tuples get 1–2
///    randomly chosen attributes perturbed by character edits or domain
///    swaps. Random errors are Dataset 2's defining property: they leave
///    little signal for the learner, and update-group sizes come out
///    nearly uniform.
///  * Rules are discovered from the *dirty* instance (as a practitioner
///    would) with DiscoverConstantCfds.
Result<Dataset> GenerateDataset2(const Dataset2Options& options = {});

}  // namespace gdr

#endif  // GDR_SIM_DATASET2_H_
