#include "sim/dataset2.h"

#include <vector>

#include "sim/error_injector.h"
#include "util/rng.h"

namespace gdr {

namespace {

// The synthetic census world. Each occupation deterministically entails a
// workclass, an income bracket, and (bijectively) an education level;
// relationships and marital statuses are in bijection. The bidirectional
// determinism is deliberate: it is what makes the corrupted value of *any*
// dependency attribute detectable from some rule direction after CFD
// discovery — the property the paper's Dataset 2 rule set (discovered with
// the algorithm of Fan et al.) exhibits on the real Adult data.
struct OccupationSpec {
  const char* occupation;
  const char* workclass;
  const char* income;
  const char* education;  // 1:1 with occupation
};

constexpr OccupationSpec kOccupations[] = {
    {"Exec-managerial", "Private", ">50K", "Masters"},
    {"Prof-specialty", "Private", ">50K", "Doctorate"},
    {"Tech-support", "Private", "<=50K", "Assoc-voc"},
    {"Craft-repair", "Private", "<=50K", "HS-grad"},
    {"Sales", "Private", "<=50K", "Some-college"},
    {"Adm-clerical", "Government", "<=50K", "Bachelors"},
    {"Protective-serv", "Government", "<=50K", "Assoc-acdm"},
    {"Farming-fishing", "Self-employed", "<=50K", "11th"},
    {"Handlers-cleaners", "Private", "<=50K", "9th"},
    {"Transport-moving", "Private", "<=50K", "Prof-school"},
};

struct RelationshipSpec {
  const char* relationship;
  const char* marital_status;  // 1:1 with relationship
};

constexpr RelationshipSpec kRelationships[] = {
    {"Husband", "Married-civ-spouse"},
    {"Wife", "Married-AF-spouse"},
    {"Own-child", "Never-married"},
    {"Not-in-family", "Separated"},
    {"Unmarried", "Divorced"},
    {"Other-relative", "Widowed"},
};

constexpr const char* kCountries[] = {
    "United-States", "Mexico", "Philippines", "Germany",
    "Canada", "India", "England", "Cuba",
};

constexpr const char* kRaces[] = {
    "White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other",
};

constexpr const char* kHours[] = {"20", "35", "40", "45", "50", "60"};

template <typename T, std::size_t N>
const T& Pick(const T (&items)[N], Rng* rng) {
  return items[rng->NextBounded(N)];
}

}  // namespace

Result<Dataset> GenerateDataset2(const Dataset2Options& options) {
  GDR_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({"education", "hours_per_week", "income", "marital_status",
                    "native_country", "occupation", "race", "relationship",
                    "sex", "workclass"}));
  Dataset dataset(schema);
  dataset.name = "dataset2-census";

  Rng rng(options.seed);
  for (std::size_t i = 0; i < options.num_records; ++i) {
    const OccupationSpec& occ = Pick(kOccupations, &rng);
    const RelationshipSpec& rel = Pick(kRelationships, &rng);
    std::vector<std::string> row = {
        /*education=*/occ.education,
        /*hours_per_week=*/Pick(kHours, &rng),
        /*income=*/occ.income,
        /*marital_status=*/rel.marital_status,
        /*native_country=*/Pick(kCountries, &rng),
        /*occupation=*/occ.occupation,
        /*race=*/Pick(kRaces, &rng),
        /*relationship=*/rel.relationship,
        /*sex=*/rng.NextBernoulli(0.5) ? "Male" : "Female",
        /*workclass=*/occ.workclass,
    };
    GDR_ASSIGN_OR_RETURN(RowId added, dataset.clean.AppendRow(row));
    (void)added;
  }

  // Random, uncorrelated corruption over the dependency attributes — the
  // defining property of Dataset 2 (no signal for the learner beyond the
  // consistency features, near-uniform group sizes).
  dataset.dirty = dataset.clean;
  std::vector<AttrId> corruptible;
  for (const char* name :
       {"education", "income", "marital_status", "occupation",
        "relationship", "workclass"}) {
    GDR_ASSIGN_OR_RETURN(AttrId attr, schema.GetAttr(name));
    corruptible.push_back(attr);
  }
  RandomErrorOptions error_options;
  error_options.dirty_tuple_fraction = options.dirty_tuple_fraction;
  error_options.max_attrs_per_tuple = 2;
  error_options.char_edit_probability = 0.5;
  error_options.seed = options.seed * 131 + 7;
  dataset.corrupted_tuples =
      InjectRandomErrors(&dataset.dirty, corruptible, error_options);

  // Discover the rules from the dirty instance, as in the paper.
  std::vector<AttrId> all_attrs;
  for (std::size_t a = 0; a < schema.num_attrs(); ++a) {
    all_attrs.push_back(static_cast<AttrId>(a));
  }
  GDR_ASSIGN_OR_RETURN(
      dataset.rules,
      DiscoverConstantCfds(dataset.dirty, all_attrs, options.discovery));
  return dataset;
}

}  // namespace gdr
