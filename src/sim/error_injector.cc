#include "sim/error_injector.h"

#include <algorithm>

namespace gdr {

namespace {

constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";

char RandomChar(Rng* rng) {
  return kAlphabet[rng->NextBounded(sizeof(kAlphabet) - 1)];
}

}  // namespace

std::string PerturbCharacters(const std::string& value, Rng* rng) {
  if (value.empty()) return std::string(1, RandomChar(rng));
  std::string out = value;
  const int edits = 1 + static_cast<int>(rng->NextBounded(2));
  for (int e = 0; e < edits; ++e) {
    const std::size_t pos = rng->NextBounded(out.size());
    switch (rng->NextBounded(4)) {
      case 0:  // substitution
        out[pos] = RandomChar(rng);
        break;
      case 1:  // deletion
        if (out.size() > 1) out.erase(pos, 1);
        break;
      case 2:  // insertion
        out.insert(pos, 1, RandomChar(rng));
        break;
      default:  // adjacent transposition
        if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
        break;
    }
  }
  if (out == value) {
    // The edits happened to cancel out; force a substitution.
    const std::size_t pos = rng->NextBounded(out.size());
    char c = RandomChar(rng);
    while (c == out[pos]) c = RandomChar(rng);
    out[pos] = c;
  }
  return out;
}

std::string DomainSwap(const Table& table, AttrId attr,
                       const std::string& current, Rng* rng) {
  const std::size_t domain = table.DomainSize(attr);
  if (domain < 2) return PerturbCharacters(current, rng);
  for (int attempt = 0; attempt < 16; ++attempt) {
    const ValueId v = static_cast<ValueId>(rng->NextBounded(domain));
    const std::string& candidate = table.dict(attr).ToString(v);
    if (candidate != current) return candidate;
  }
  return PerturbCharacters(current, rng);
}

std::size_t InjectRandomErrors(Table* table, const std::vector<AttrId>& attrs,
                               const RandomErrorOptions& options) {
  Rng rng(options.seed);
  std::size_t corrupted = 0;
  for (std::size_t r = 0; r < table->num_rows(); ++r) {
    if (!rng.NextBernoulli(options.dirty_tuple_fraction)) continue;
    ++corrupted;
    const RowId row = static_cast<RowId>(r);
    const int num_attrs =
        1 + static_cast<int>(rng.NextBounded(
                static_cast<std::uint64_t>(options.max_attrs_per_tuple)));
    const std::vector<std::size_t> picked = rng.SampleWithoutReplacement(
        attrs.size(), std::min<std::size_t>(
                          static_cast<std::size_t>(num_attrs), attrs.size()));
    for (std::size_t p : picked) {
      const AttrId attr = attrs[p];
      const std::string current = table->at(row, attr);
      const std::string corrupt =
          rng.NextBernoulli(options.char_edit_probability)
              ? PerturbCharacters(current, &rng)
              : DomainSwap(*table, attr, current, &rng);
      table->Set(row, attr, corrupt);
    }
  }
  return corrupted;
}

}  // namespace gdr
