#include "sim/stream_gen.h"

#include <algorithm>

#include "util/rng.h"

namespace gdr {

namespace {

// Distinct states; the constant rules below assume city k maps to state
// k % kStates in the clean stream.
constexpr std::uint64_t kStates = 50;

// SplitMix64 finalizer: decorrelates consecutive row indices so each row
// gets an independent-looking generator stream from a single seed.
std::uint64_t MixIndex(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Result<Schema> StreamGenSchema() {
  return Schema::Make({"Facility", "City", "Zip", "State", "Phone"});
}

Result<RuleSet> StreamGenRules(const StreamGenOptions& options) {
  GDR_ASSIGN_OR_RETURN(Schema schema, StreamGenSchema());
  RuleSet rules(std::move(schema));
  GDR_RETURN_NOT_OK(rules.AddRuleFromString("v_city_zip", "City -> Zip"));
  GDR_RETURN_NOT_OK(rules.AddRuleFromString("v_zip_city", "Zip -> City"));
  const std::uint64_t constant_rules =
      std::min<std::uint64_t>(options.cities, 8);
  for (std::uint64_t k = 0; k < constant_rules; ++k) {
    GDR_RETURN_NOT_OK(rules.AddRuleFromString(
        "c_state" + std::to_string(k),
        "City=C" + std::to_string(k) + " -> State=S" +
            std::to_string(k % kStates)));
  }
  return rules;
}

void StreamGenRow(const StreamGenOptions& options, std::uint64_t index,
                  std::vector<std::string>* out) {
  Rng rng(MixIndex(options.seed, index));
  const std::uint64_t cities = std::max<std::uint64_t>(options.cities, 1);
  const std::uint64_t city = rng.NextBounded(cities);

  out->clear();
  out->reserve(5);
  out->push_back("F" + std::to_string(index));
  out->push_back("C" + std::to_string(city));
  std::string zip = "Z" + std::to_string(city);
  std::string state = "S" + std::to_string(city % kStates);
  if (rng.NextBernoulli(options.dirty_fraction)) {
    if (cities > 1 && rng.NextBernoulli(0.5)) {
      // Neighboring city's zip: breaks City -> Zip here and drags that
      // zip's group into violating Zip -> City.
      zip = "Z" + std::to_string((city + 1) % cities);
    } else {
      // Off-by-one state: breaks the constant rule when this city has one.
      state = "S" + std::to_string((city % kStates + 1) % kStates);
    }
  }
  out->push_back(std::move(zip));
  out->push_back(std::move(state));
  out->push_back("P" + std::to_string(index));
}

}  // namespace gdr
