#ifndef GDR_SIM_MASTER_DATA_H_
#define GDR_SIM_MASTER_DATA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace gdr {

/// One (zip, city, state) entry of the address master directory.
struct ZipEntry {
  std::string zip;
  std::string city;
  std::string state;
};

/// The clean "world" Dataset 1 is sampled from: an Indiana-flavored
/// address directory with the functional semantics the paper's rules
/// encode — a zip determines its city and state, and a (street, city)
/// pair determines its zip. Cities may span several zips; streets are
/// partitioned among a city's zips so that STR,CT → ZIP holds exactly.
///
/// Every structure is built deterministically (no Rng): the directory is
/// part of the experiment definition, not of its randomness.
struct MasterDirectory {
  std::vector<ZipEntry> zips;
  std::vector<std::string> cities;
  // city -> streets in that city.
  std::unordered_map<std::string, std::vector<std::string>> streets_by_city;
  // "street|city" -> zip (the ground-truth STR,CT → ZIP function).
  std::unordered_map<std::string, std::string> zip_of_street;
  // zip -> the neighboring zip used by the boundary-confusion error
  // pattern ("hospitals located on the boundary between two zip codes").
  std::unordered_map<std::string, std::string> boundary_partner;

  const ZipEntry& EntryForZip(const std::string& zip) const;
  std::string ZipOfStreet(const std::string& street,
                          const std::string& city) const;

  /// The canonical directory: ~24 cities, ~46 zips, 10 streets per city.
  static MasterDirectory BuildIndiana();
};

/// The recurrent-mistake source model: each hospital's data-entry pipeline
/// corrupts patient addresses in its own characteristic way (the paper's
/// "SRC = H2 ⇒ CT is usually wrong" pattern, Section 1.1).
struct Hospital {
  enum class Profile : std::uint8_t {
    kClean = 0,       // no systematic errors
    kCityTypo = 1,    // city name mangled by keyboard noise
    kCitySwap = 2,    // city replaced by one specific wrong city
    kZipBoundary = 3, // zip replaced by the true zip's boundary partner
    kStateTypo = 4,   // state spelled out / mistyped
    kStreetTypo = 5,  // street mangled (mostly undetectable by the rules)
  };

  std::string name;
  std::string city;
  std::string street;
  std::string zip;
  Profile profile = Profile::kClean;
  /// Probability that a record entered at this hospital is corrupted.
  double error_rate = 0.0;
  /// For kCitySwap: the specific wrong city this operator keeps typing.
  std::string wrong_city;
};

const char* HospitalProfileName(Hospital::Profile profile);

struct HospitalFleetOptions {
  std::size_t count = 74;  // the paper's 74 hospitals
  /// Fraction of hospitals with a clean entry pipeline.
  double clean_fraction = 0.4;
  std::uint64_t seed = 13;
};

/// Builds the hospital fleet over `directory` with a deterministic mix of
/// error profiles and rates (rates drawn in [0.35, 0.8]).
std::vector<Hospital> BuildHospitals(const MasterDirectory& directory,
                                     const HospitalFleetOptions& options);

/// Zipf-like visit-volume weights (weight_i ∝ 1/(i+1)^skew) producing the
/// widely varying group sizes that distinguish Dataset 1 (Section 5.1).
std::vector<double> HospitalVolumeWeights(std::size_t count, double skew);

}  // namespace gdr

#endif  // GDR_SIM_MASTER_DATA_H_
