#ifndef GDR_SIM_DATASET_H_
#define GDR_SIM_DATASET_H_

#include <string>

#include "cfd/cfd.h"
#include "data/table.h"

namespace gdr {

/// An experiment-ready workload: the ground-truth instance D_opt, the
/// dirty instance D to repair, and the data-quality rules Σ. `clean` and
/// `dirty` have identical schemas and row counts; `dirty` starts as a copy
/// of `clean` with injected errors, so shared value ids agree.
struct Dataset {
  std::string name;
  Table clean;
  Table dirty;
  RuleSet rules;
  /// Tuples that received at least one injected error.
  std::size_t corrupted_tuples = 0;

  explicit Dataset(const Schema& schema)
      : clean(schema), dirty(schema), rules(schema) {}
};

}  // namespace gdr

#endif  // GDR_SIM_DATASET_H_
