#include "sim/experiment.h"

#include <sstream>

#include "core/session.h"
#include "repair/heuristic_repair.h"
#include "util/stopwatch.h"

namespace gdr {

Result<ExperimentResult> RunStrategyExperiment(
    const Dataset& dataset, const ExperimentConfig& config) {
  Table working = dataset.dirty;  // repaired in place; dataset untouched

  UserOracleOptions oracle_options;
  oracle_options.volunteer_probability = config.volunteer_probability;
  oracle_options.seed = config.seed ^ 0xA5A5A5A5ULL;
  UserOracle oracle(&dataset.clean, oracle_options);

  GdrOptions options;
  options.strategy = config.strategy;
  options.feedback_budget = config.feedback_budget;
  options.ns = config.ns;
  options.seed = config.seed;
  options.num_threads = config.num_threads;
  options.shared_pool = config.shared_pool;
  options.voi_scoring = config.voi_scoring;
  options.learner_inference = config.learner_inference;

  const Stopwatch wall_watch;
  GdrEngine engine(&working, &dataset.rules, &oracle, options);
  GDR_RETURN_NOT_OK(engine.Initialize());

  // The evaluator shares the engine's rule weights so that measured loss
  // and the engine's internal VOI estimates refer to the same Eq. 3.
  QualityEvaluator evaluator(dataset.clean, &dataset.rules,
                             engine.rule_weights());
  ExperimentResult result;
  result.strategy_name = StrategyName(config.strategy);
  result.initial_loss = evaluator.Loss(engine.index());

  const std::size_t sample_every = std::max<std::size_t>(
      1, config.sample_every);
  result.curve.push_back({0, 0.0, result.initial_loss});
  std::size_t last_sampled = 0;

  const GdrEngine::ProgressCallback record_point =
      [&](const GdrEngine& e, std::size_t feedback) {
        if (feedback < last_sampled + sample_every) return;
        last_sampled = feedback;
        const double loss = evaluator.Loss(e.index());
        result.curve.push_back(
            {feedback,
             evaluator.ImprovementPct(e.index(), result.initial_loss), loss});
      };
  if (config.driver == ExperimentDriver::kSessionPump) {
    // Drive the pull API directly: same oracle, same callback, same
    // results — but through NextBatch()/SubmitFeedback() instead of the
    // Run() shim.
    GdrSession session(&engine);
    session.SetProgressCallback(record_point);
    GDR_RETURN_NOT_OK(session.Start());
    GDR_RETURN_NOT_OK(PumpSession(&session, &oracle));
  } else {
    GDR_RETURN_NOT_OK(engine.Run(record_point));
  }

  result.wall_seconds = wall_watch.ElapsedSeconds();
  result.stats = engine.stats();
  result.final_loss = evaluator.Loss(engine.index());
  result.final_improvement_pct =
      evaluator.ImprovementPct(engine.index(), result.initial_loss);
  result.curve.push_back({result.stats.user_feedback,
                          result.final_improvement_pct, result.final_loss});
  result.remaining_violations = engine.index().TotalViolations();
  GDR_ASSIGN_OR_RETURN(
      result.accuracy,
      ComputeRepairAccuracy(dataset.dirty, working, dataset.clean));
  return result;
}

Result<ExperimentResult> RunHeuristicExperiment(const Dataset& dataset) {
  Table working = dataset.dirty;
  const Stopwatch wall_watch;
  ViolationIndex index(&working, &dataset.rules);
  const std::vector<double> weights = ContextRuleWeights(index);
  QualityEvaluator evaluator(dataset.clean, &dataset.rules, weights);

  ExperimentResult result;
  result.strategy_name = "Automatic-Heuristic";
  result.initial_loss = evaluator.Loss(index);
  result.curve.push_back({0, 0.0, result.initial_loss});

  const HeuristicRepairStats stats = RunBatchRepair(&index, &working);
  result.wall_seconds = wall_watch.ElapsedSeconds();
  result.final_loss = evaluator.Loss(index);
  result.final_improvement_pct =
      evaluator.ImprovementPct(index, result.initial_loss);
  result.curve.push_back({0, result.final_improvement_pct,
                          result.final_loss});
  result.remaining_violations = stats.remaining_violations;
  GDR_ASSIGN_OR_RETURN(
      result.accuracy,
      ComputeRepairAccuracy(dataset.dirty, working, dataset.clean));
  return result;
}

std::string FormatCurve(const std::vector<CurvePoint>& curve,
                        double denominator) {
  std::ostringstream out;
  for (const CurvePoint& point : curve) {
    const double pct =
        denominator <= 0.0
            ? 0.0
            : 100.0 * static_cast<double>(point.feedback) / denominator;
    out << pct << "\t" << point.improvement_pct << "\n";
  }
  return out.str();
}

}  // namespace gdr
