#ifndef GDR_SIM_ERROR_INJECTOR_H_
#define GDR_SIM_ERROR_INJECTOR_H_

#include <string>
#include <vector>

#include "data/table.h"
#include "util/rng.h"

namespace gdr {

/// Elementary corruption operators of Appendix B ("changing characters or
/// replacing the attribute value with another value from the domain").

/// Applies 1–2 character-level edits (substitution, deletion, insertion,
/// or adjacent transposition) to `value`. Never returns `value` unchanged
/// for non-empty inputs.
std::string PerturbCharacters(const std::string& value, Rng* rng);

/// A uniformly random *different* value from the attribute's active
/// domain; falls back to character perturbation when the domain has a
/// single value.
std::string DomainSwap(const Table& table, AttrId attr,
                       const std::string& current, Rng* rng);

struct RandomErrorOptions {
  /// Fraction of tuples corrupted (the paper reports 30% dirty).
  double dirty_tuple_fraction = 0.3;
  /// Per dirty tuple, 1..max_attrs_per_tuple random attributes corrupted.
  int max_attrs_per_tuple = 2;
  /// Probability of a character perturbation (vs a domain swap).
  double char_edit_probability = 0.5;
  std::uint64_t seed = 5;
};

/// The Dataset 2 error model: uniformly random corruption with no
/// correlation to any attribute — randomly picked tuples, randomly picked
/// attributes, random perturbation kind. Mutates `table` in place
/// (`attrs`: the corruptible attributes). Returns the number of corrupted
/// tuples.
std::size_t InjectRandomErrors(Table* table, const std::vector<AttrId>& attrs,
                               const RandomErrorOptions& options);

}  // namespace gdr

#endif  // GDR_SIM_ERROR_INJECTOR_H_
