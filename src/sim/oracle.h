#ifndef GDR_SIM_ORACLE_H_
#define GDR_SIM_ORACLE_H_

#include <cstdint>

#include "core/feedback_provider.h"
#include "util/rng.h"

namespace gdr {

struct UserOracleOptions {
  /// Probability that, after rejecting a suggestion, the simulated user
  /// volunteers the correct value (Section 4.2's v' feedback). The paper's
  /// simulation answers strictly from ground truth; 0 disables
  /// volunteering and matches the conservative reading.
  double volunteer_probability = 0.0;
  std::uint64_t seed = 7;
};

/// The simulated user of Section 5: "we simulated user feedback to
/// suggested updates by providing answers as determined by the ground
/// truth". For an update ⟨t, A, v⟩:
///   * confirm — v equals the ground-truth value of t[A];
///   * retain  — the current t[A] already equals the ground truth;
///   * reject  — otherwise (v is wrong and so is the current value).
class UserOracle : public FeedbackProvider {
 public:
  /// `ground_truth` is non-owning; same schema/rows as the repaired table.
  explicit UserOracle(const Table* ground_truth,
                      UserOracleOptions options = {});

  Feedback GetFeedback(const Table& table, const Update& update) override;

  std::optional<std::string> SuggestValue(const Table& table,
                                          const Update& update) override;

  std::size_t feedback_given() const { return feedback_given_; }
  std::size_t values_volunteered() const { return values_volunteered_; }

 private:
  const Table* ground_truth_;
  UserOracleOptions options_;
  Rng rng_;
  std::size_t feedback_given_ = 0;
  std::size_t values_volunteered_ = 0;
};

}  // namespace gdr

#endif  // GDR_SIM_ORACLE_H_
