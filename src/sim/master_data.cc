#include "sim/master_data.h"

#include <cassert>
#include <cmath>

namespace gdr {

namespace {

struct CitySpec {
  const char* name;
  int num_zips;
  int first_zip;
};

// Indiana-flavored city list. Zip numbers are synthetic but follow the
// 46xxx/47xxx shape of the paper's examples; consecutive zips of one city
// are boundary partners, and single-zip cities partner with the next city
// in the list (boundary between towns).
constexpr CitySpec kCities[] = {
    {"Indianapolis", 4, 46201}, {"Fort Wayne", 3, 46802},
    {"Evansville", 3, 47708},   {"South Bend", 2, 46601},
    {"Carmel", 2, 46032},       {"Fishers", 2, 46037},
    {"Bloomington", 2, 47401},  {"Hammond", 2, 46320},
    {"Gary", 2, 46402},         {"Lafayette", 2, 47901},
    {"Muncie", 2, 47302},       {"Terre Haute", 2, 47801},
    {"Kokomo", 1, 46901},       {"Anderson", 1, 46011},
    {"Noblesville", 1, 46060},  {"Greenwood", 1, 46142},
    {"Elkhart", 1, 46514},      {"Mishawaka", 1, 46544},
    {"Michigan City", 1, 46360}, {"Westville", 1, 46391},
    {"New Haven", 1, 46774},    {"Columbus", 1, 47201},
    {"Jeffersonville", 1, 47130}, {"Richmond", 1, 47374},
};

constexpr const char* kStreetBases[] = {
    "Main",    "Oak",     "Maple",   "Washington", "Jefferson",
    "Sherden", "Walnut",  "Lincoln", "Jackson",    "Meridian",
    "Elm",     "Cedar",   "Spring",  "Franklin",   "Harrison",
    "Monroe",  "Madison", "Market",  "College",    "Riverside",
};

constexpr const char* kStreetSuffixes[] = {"St", "Ave", "Rd", "Blvd", "Dr"};

}  // namespace

const ZipEntry& MasterDirectory::EntryForZip(const std::string& zip) const {
  for (const ZipEntry& entry : zips) {
    if (entry.zip == zip) return entry;
  }
  assert(false && "unknown zip");
  return zips.front();
}

std::string MasterDirectory::ZipOfStreet(const std::string& street,
                                         const std::string& city) const {
  auto it = zip_of_street.find(street + "|" + city);
  return it == zip_of_street.end() ? std::string() : it->second;
}

MasterDirectory MasterDirectory::BuildIndiana() {
  MasterDirectory dir;
  for (const CitySpec& spec : kCities) {
    dir.cities.emplace_back(spec.name);
    std::vector<std::string> city_zips;
    for (int z = 0; z < spec.num_zips; ++z) {
      city_zips.push_back(std::to_string(spec.first_zip + z));
      dir.zips.push_back({city_zips.back(), spec.name, "IN"});
    }
    // Streets: 40 per city (each base with two suffixes), partitioned
    // round-robin among the city's zips so (street, city) -> zip is a
    // function. Street groups of a few dozen tuples keep the pairwise
    // violation fan-out of a single wrong zip bounded.
    constexpr std::size_t kNumSuffixes =
        sizeof(kStreetSuffixes) / sizeof(kStreetSuffixes[0]);
    std::vector<std::string>& streets = dir.streets_by_city[spec.name];
    int street_index = 0;
    for (const char* base : kStreetBases) {
      for (int variant = 0; variant < 2; ++variant) {
        const std::string street =
            std::string(base) + " " +
            kStreetSuffixes[(static_cast<std::size_t>(street_index) +
                             static_cast<std::size_t>(variant)) %
                            kNumSuffixes];
        streets.push_back(street);
        dir.zip_of_street[street + "|" + spec.name] =
            city_zips[static_cast<std::size_t>(street_index) %
                      city_zips.size()];
        ++street_index;
      }
    }
    // Boundary partners within the city.
    for (std::size_t z = 0; z + 1 < city_zips.size(); ++z) {
      dir.boundary_partner[city_zips[z]] = city_zips[z + 1];
      dir.boundary_partner[city_zips[z + 1]] = city_zips[z];
    }
  }
  // Single-zip cities: partner with the next city's first zip (the
  // "located on the boundary between two towns" pattern).
  for (std::size_t c = 0; c < dir.cities.size(); ++c) {
    const CitySpec& spec = kCities[c];
    if (spec.num_zips != 1) continue;
    const std::string zip = std::to_string(spec.first_zip);
    const CitySpec& next = kCities[(c + 1) % dir.cities.size()];
    dir.boundary_partner[zip] = std::to_string(next.first_zip);
  }
  return dir;
}

const char* HospitalProfileName(Hospital::Profile profile) {
  switch (profile) {
    case Hospital::Profile::kClean:
      return "clean";
    case Hospital::Profile::kCityTypo:
      return "city-typo";
    case Hospital::Profile::kCitySwap:
      return "city-swap";
    case Hospital::Profile::kZipBoundary:
      return "zip-boundary";
    case Hospital::Profile::kStateTypo:
      return "state-typo";
    case Hospital::Profile::kStreetTypo:
      return "street-typo";
  }
  return "unknown";
}

std::vector<Hospital> BuildHospitals(const MasterDirectory& directory,
                                     const HospitalFleetOptions& options) {
  Rng rng(options.seed);
  std::vector<Hospital> hospitals;
  hospitals.reserve(options.count);

  // The dirty profiles cycle so every error pattern is represented; rates
  // vary per hospital so the learner sees graded signal strength. Zip and
  // street corruption are kept rarer: a single wrong zip dirties its whole
  // (street, city) group through the variable rule, so a small share of
  // zip-corrupting hospitals already yields plenty of pairwise violations.
  constexpr Hospital::Profile kDirtyProfiles[] = {
      Hospital::Profile::kCitySwap, Hospital::Profile::kCityTypo,
      Hospital::Profile::kStateTypo, Hospital::Profile::kCityTypo,
      Hospital::Profile::kCitySwap, Hospital::Profile::kZipBoundary,
      Hospital::Profile::kStateTypo, Hospital::Profile::kStreetTypo,
  };
  const std::size_t num_dirty_profiles =
      sizeof(kDirtyProfiles) / sizeof(kDirtyProfiles[0]);

  std::size_t dirty_index = 0;
  for (std::size_t i = 0; i < options.count; ++i) {
    Hospital h;
    const std::string& city =
        directory.cities[i % directory.cities.size()];
    h.city = city;
    const std::vector<std::string>& streets =
        directory.streets_by_city.at(city);
    h.street = streets[rng.NextBounded(streets.size())];
    h.zip = directory.ZipOfStreet(h.street, h.city);
    h.name = city + " Medical Center " + std::to_string(i + 1);

    if (rng.NextDouble() < options.clean_fraction) {
      h.profile = Hospital::Profile::kClean;
      h.error_rate = 0.0;
    } else {
      h.profile = kDirtyProfiles[dirty_index % num_dirty_profiles];
      ++dirty_index;
      h.error_rate = 0.25 + 0.35 * rng.NextDouble();
      if (h.profile == Hospital::Profile::kCitySwap) {
        // A consistent wrong city: the operator keeps picking the same
        // neighboring entry from a drop-down.
        std::string wrong = city;
        while (wrong == city) {
          wrong = directory.cities[rng.NextBounded(directory.cities.size())];
        }
        h.wrong_city = wrong;
      }
    }
    hospitals.push_back(std::move(h));
  }
  return hospitals;
}

std::vector<double> HospitalVolumeWeights(std::size_t count, double skew) {
  std::vector<double> weights(count);
  for (std::size_t i = 0; i < count; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), skew);
  }
  return weights;
}

}  // namespace gdr
