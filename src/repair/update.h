#ifndef GDR_REPAIR_UPDATE_H_
#define GDR_REPAIR_UPDATE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "data/table.h"

namespace gdr {

/// Identifies one database cell (t, A). Keys the update pool, the prevented
/// lists, and the changeable flags.
struct CellKey {
  RowId row = -1;
  AttrId attr = kInvalidAttrId;

  bool operator==(const CellKey& other) const {
    return row == other.row && attr == other.attr;
  }
};

struct CellKeyHash {
  std::size_t operator()(const CellKey& key) const {
    // Rows and attrs are small non-negative ints; pack and mix.
    std::uint64_t packed =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.row))
         << 32) |
        static_cast<std::uint32_t>(key.attr);
    packed ^= packed >> 33;
    packed *= 0xFF51AFD7ED558CCDULL;
    packed ^= packed >> 33;
    return static_cast<std::size_t>(packed);
  }
};

/// A candidate update r = ⟨t, A, v, s⟩ (Section 3): replace cell (row, attr)
/// by `value`, with repair-algorithm certainty `score` = sim(t[A], v) ∈
/// [0,1] (Eq. 7).
struct Update {
  RowId row = -1;
  AttrId attr = kInvalidAttrId;
  ValueId value = kInvalidValueId;
  double score = 0.0;

  CellKey cell() const { return CellKey{row, attr}; }

  bool operator==(const Update& other) const {
    return row == other.row && attr == other.attr && value == other.value;
  }

  /// "t17.City := 'Michigan City' (s=0.82)" for logs and examples.
  std::string ToString(const Table& table) const;
};

/// The three user responses of Section 4.2 ("Learning User Feedback").
///  * kConfirm — t[A] should be v; apply the update.
///  * kReject  — v is wrong for t[A]; find another suggestion.
///  * kRetain  — t[A] is already correct; stop suggesting for this cell.
enum class Feedback : std::uint8_t {
  kConfirm = 0,
  kReject = 1,
  kRetain = 2,
};

/// Number of feedback classes; class labels for the learner are the enum
/// values.
inline constexpr int kNumFeedbackClasses = 3;

/// "confirm" / "reject" / "retain".
const char* FeedbackName(Feedback feedback);

}  // namespace gdr

#endif  // GDR_REPAIR_UPDATE_H_
