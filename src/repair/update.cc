#include "repair/update.h"

#include <sstream>

namespace gdr {

std::string Update::ToString(const Table& table) const {
  std::ostringstream out;
  out << "t" << row << "." << table.schema().attr_name(attr) << ": '"
      << table.at(row, attr) << "' -> '" << table.dict(attr).ToString(value)
      << "' (s=" << score << ")";
  return out.str();
}

const char* FeedbackName(Feedback feedback) {
  switch (feedback) {
    case Feedback::kConfirm:
      return "confirm";
    case Feedback::kReject:
      return "reject";
    case Feedback::kRetain:
      return "retain";
  }
  return "unknown";
}

}  // namespace gdr
