#include "repair/consistency_manager.h"

#include <algorithm>
#include <deque>

namespace gdr {

ConsistencyManager::ConsistencyManager(ViolationIndex* index,
                                       UpdatePool* pool, RepairState* state,
                                       UpdateGenerator* generator)
    : index_(index), pool_(pool), state_(state), generator_(generator) {}

std::size_t ConsistencyManager::Initialize() {
  dirty_.clear();
  const std::size_t num_attrs = index_->table().num_attrs();
  for (RowId row : index_->DirtyRows()) {
    dirty_.insert(row);
    for (std::size_t a = 0; a < num_attrs; ++a) {
      const AttrId attr = static_cast<AttrId>(a);
      if (auto update = generator_->UpdateAttributeTuple(row, attr)) {
        pool_->Upsert(*update);
      }
    }
  }
  return dirty_.size();
}

std::size_t ConsistencyManager::AdmitRows(RowId first_row, std::size_t count) {
  const RuleSet& rules = index_->rules();
  const std::size_t num_attrs = index_->table().num_attrs();
  const std::size_t dirty_before = dirty_.size();

  // New dirty rows get the full Initialize() treatment: one suggestion per
  // attribute, row-major.
  for (std::size_t i = 0; i < count; ++i) {
    const RowId row = first_row + static_cast<RowId>(i);
    if (!index_->IsDirty(row)) continue;
    dirty_.insert(row);
    for (std::size_t a = 0; a < num_attrs; ++a) {
      const AttrId attr = static_cast<AttrId>(a);
      if (auto update = generator_->UpdateAttributeTuple(row, attr)) {
        pool_->Upsert(*update);
      }
    }
  }

  // Existing rows the arrivals pulled into (deeper) violation: the new
  // rows' variable-rule partners. Constant rules cannot implicate anyone
  // but the appended row itself. Note what is deliberately *not* refreshed:
  // dirty rows that are no partner of any arrival keep their pooled
  // suggestions verbatim — their violations did not change, so invariant
  // (ii) holds without touching them (this is what "admission without
  // rescoring untouched groups" rests on).
  std::unordered_set<RowId> partners;
  std::unordered_set<CellKey, CellKeyHash> revisit;
  for (std::size_t i = 0; i < count; ++i) {
    const RowId row = first_row + static_cast<RowId>(i);
    for (std::size_t ridx = 0; ridx < rules.size(); ++ridx) {
      const RuleId rid = static_cast<RuleId>(ridx);
      const Cfd& rule = rules.rule(rid);
      if (!rule.IsVariable() || !index_->Violates(row, rid)) continue;
      partner_scratch_.clear();
      index_->AppendViolationPartners(row, rid, &partner_scratch_);
      for (RowId p : partner_scratch_) {
        if (p >= first_row) continue;  // fellow arrivals were seeded above
        partners.insert(p);
        // The partner's suggestions on this rule's attributes were
        // generated against the smaller group; regenerate (invariant (ii)).
        for (const PatternCell& c : rule.lhs()) {
          revisit.insert(CellKey{p, c.attr});
        }
        revisit.insert(CellKey{p, rule.rhs().attr});
      }
    }
  }
  for (const RowId p : partners) {
    if (dirty_.contains(p)) continue;
    // Appends only ever add violations, so a partner outside the dirty set
    // is newly dirty: seed every attribute, like Initialize().
    dirty_.insert(p);
    for (std::size_t a = 0; a < num_attrs; ++a) {
      revisit.insert(CellKey{p, static_cast<AttrId>(a)});
    }
  }
  // Sorted order: regeneration itself is cell-independent, but a
  // deterministic sweep keeps the whole admission replayable step by step.
  std::vector<CellKey> cells(revisit.begin(), revisit.end());
  std::sort(cells.begin(), cells.end(), [](const CellKey& a, const CellKey& b) {
    return a.row != b.row ? a.row < b.row : a.attr < b.attr;
  });
  for (const CellKey& cell : cells) Revisit(cell);

  return dirty_.size() - dirty_before;
}

void ConsistencyManager::Revisit(CellKey cell) {
  pool_->Remove(cell);
  if (auto update = generator_->UpdateAttributeTuple(cell.row, cell.attr)) {
    pool_->Upsert(*update);
  }
}

void ConsistencyManager::RefreshDirty(RowId row) {
  if (index_->IsDirty(row)) {
    dirty_.insert(row);
  } else {
    dirty_.erase(row);
  }
}

std::vector<RowId> ConsistencyManager::DirtyRows() const {
  std::vector<RowId> out(dirty_.begin(), dirty_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<AppliedChange> ConsistencyManager::ApplyFeedback(
    const Update& update, Feedback feedback) {
  std::vector<AppliedChange> applied;
  const CellKey cell = update.cell();
  switch (feedback) {
    case Feedback::kRetain:
      // Step 1: the current value is correct; stop repairing this cell.
      state_->Freeze(cell);
      pool_->Remove(cell);
      break;
    case Feedback::kReject:
      // Step 2: never suggest this value again; look for another one.
      state_->Prevent(cell, update.value);
      Revisit(cell);
      break;
    case Feedback::kConfirm:
      // Step 3: write the value and maintain all dependent structures.
      ApplyConfirmedChange(update.row, update.attr, update.value,
                           /*forced=*/false, &applied);
      break;
  }
  return applied;
}

std::vector<AppliedChange> ConsistencyManager::ApplyUserValue(RowId row,
                                                              AttrId attr,
                                                              ValueId value) {
  std::vector<AppliedChange> applied;
  ApplyConfirmedChange(row, attr, value, /*forced=*/false, &applied);
  return applied;
}

void ConsistencyManager::ApplyConfirmedChange(
    RowId row, AttrId attr, ValueId value, bool forced,
    std::vector<AppliedChange>* out) {
  struct PendingChange {
    RowId row;
    AttrId attr;
    ValueId value;
    bool forced;
  };
  std::deque<PendingChange> queue;
  queue.push_back({row, attr, value, forced});

  const RuleSet& rules = index_->rules();
  const Table& table = index_->table();

  while (!queue.empty()) {
    const PendingChange change = queue.front();
    queue.pop_front();
    const CellKey cell{change.row, change.attr};
    const std::vector<RuleId>& affected_rules =
        rules.RulesMentioning(change.attr);

    // Confirming the value (even if it equals the current one) freezes the
    // cell and retires its pooled suggestion.
    state_->Freeze(cell);
    pool_->Remove(cell);

    if (table.id_at(change.row, change.attr) == change.value) {
      // No cell changed, but the freeze itself can complete a constant
      // rule's evidence: if the rule is still violated, its LHS is now
      // fully frozen, and its RHS is changeable, tp[A] is entailed
      // (step 3(a)i applies to the freeze, not only to value changes).
      for (RuleId rid : affected_rules) {
        const Cfd& rule = rules.rule(rid);
        if (!rule.IsConstant() || !index_->Violates(change.row, rid)) {
          continue;
        }
        bool lhs_frozen = true;
        for (const PatternCell& c : rule.lhs()) {
          if (state_->IsChangeable(CellKey{change.row, c.attr})) {
            lhs_frozen = false;
            break;
          }
        }
        const CellKey rhs_cell{change.row, rule.rhs().attr};
        if (lhs_frozen && state_->IsChangeable(rhs_cell)) {
          queue.push_back(
              {change.row, rule.rhs().attr, index_->RhsConstant(rid), true});
        }
      }
      RefreshDirty(change.row);
      continue;
    }

    // Partner tuples *before* the change: exactly the rows whose violation
    // counts will drop when this row's value moves away from them.
    // (Unsorted allocation-free enumeration: everything lands in keyed
    // sets, so partner order never matters in this routine.)
    std::unordered_set<RowId> affected_rows;
    affected_rows.insert(change.row);
    for (RuleId rid : affected_rules) {
      if (rules.rule(rid).IsVariable()) {
        partner_scratch_.clear();
        index_->AppendViolationPartners(change.row, rid, &partner_scratch_);
        for (RowId p : partner_scratch_) affected_rows.insert(p);
      }
    }

    const ValueId old_value =
        index_->ApplyCellChange(change.row, change.attr, change.value);
    out->push_back(
        {change.row, change.attr, old_value, change.value, change.forced});

    // Partner tuples *after* the change: rows gaining new violations.
    for (RuleId rid : affected_rules) {
      if (rules.rule(rid).IsVariable()) {
        partner_scratch_.clear();
        index_->AppendViolationPartners(change.row, rid, &partner_scratch_);
        for (RowId p : partner_scratch_) affected_rows.insert(p);
      }
    }

    // Steps 3(a)/3(b): per affected rule, either escalate (forced RHS of a
    // constant rule with fully frozen LHS) or mark cells for revisiting.
    std::unordered_set<CellKey, CellKeyHash> revisit;
    for (RuleId rid : affected_rules) {
      const Cfd& rule = rules.rule(rid);

      // Attributes of X ∪ A for this rule.
      std::vector<AttrId> rule_attrs;
      rule_attrs.reserve(rule.lhs().size() + 1);
      for (const PatternCell& c : rule.lhs()) rule_attrs.push_back(c.attr);
      rule_attrs.push_back(rule.rhs().attr);

      if (index_->Violates(change.row, rid)) {
        if (rule.IsConstant()) {
          bool lhs_frozen = true;
          for (const PatternCell& c : rule.lhs()) {
            if (state_->IsChangeable(CellKey{change.row, c.attr})) {
              lhs_frozen = false;
              break;
            }
          }
          const CellKey rhs_cell{change.row, rule.rhs().attr};
          if (lhs_frozen && state_->IsChangeable(rhs_cell)) {
            // Step 3(a)i: the context is confirmed, so tp[A] is entailed;
            // apply it directly (cascade).
            queue.push_back(
                {change.row, rule.rhs().attr, index_->RhsConstant(rid), true});
          } else {
            for (AttrId a : rule_attrs) {
              if (a != change.attr) revisit.insert(CellKey{change.row, a});
            }
          }
        } else {
          // Step 3(a)ii: this row and its (new) partners need fresh
          // suggestions on every attribute of the rule.
          for (AttrId a : rule_attrs) {
            if (a != change.attr) revisit.insert(CellKey{change.row, a});
          }
          partner_scratch_.clear();
          index_->AppendViolationPartners(change.row, rid, &partner_scratch_);
          for (RowId p : partner_scratch_) {
            for (AttrId a : rule_attrs) revisit.insert(CellKey{p, a});
          }
        }
      }
      // Step 3(b) and invariant (ii): every row whose violation state was
      // touched gets its suggestions for this rule's attributes refreshed.
      for (RowId r : affected_rows) {
        if (r == change.row) continue;
        for (AttrId a : rule_attrs) revisit.insert(CellKey{r, a});
      }
    }

    // Steps 4–5: drop and regenerate suggestions for revisited cells.
    for (const CellKey& c : revisit) Revisit(c);

    // Step 6 / invariant (i): refresh dirty membership of touched rows.
    for (RowId r : affected_rows) RefreshDirty(r);
  }
}

}  // namespace gdr
