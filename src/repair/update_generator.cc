#include "repair/update_generator.h"

#include <algorithm>

#include "util/string_similarity.h"

namespace gdr {

std::size_t UpdateGenerator::ProjKeyHash::operator()(
    const ProjKey& key) const {
  std::uint64_t h = 1469598103934665603ULL;
  for (ValueId id : key) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h);
}

UpdateGenerator::UpdateGenerator(ViolationIndex* index, Table* table,
                                 const RepairState* state)
    : index_(index), table_(table), state_(state) {
  const RuleSet& rules = index_->rules();
  rule_constants_.resize(table_->num_attrs());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const Cfd& rule = rules.rule(static_cast<RuleId>(i));
    auto add_constant = [this](const PatternCell& cell) {
      if (!cell.is_constant()) return;
      const ValueId id = table_->InternValue(cell.attr, *cell.constant);
      std::vector<ValueId>& consts =
          rule_constants_[static_cast<std::size_t>(cell.attr)];
      if (std::find(consts.begin(), consts.end(), id) == consts.end()) {
        consts.push_back(id);
      }
    };
    for (const PatternCell& cell : rule.lhs()) add_constant(cell);
    add_constant(rule.rhs());
  }
}

double UpdateGenerator::Sim(AttrId attr, ValueId from, ValueId to) const {
  const ValueDict& dict = table_->dict(attr);
  return NormalizedEditSimilarity(dict.ToString(from), dict.ToString(to));
}

const UpdateGenerator::ProjIndex& UpdateGenerator::Projection(RuleId rule,
                                                              AttrId attr) {
  ProjIndex& proj = projections_[{rule, attr}];
  if (proj.built_at_version == index_->version()) return proj;

  const Cfd& cfd = index_->rules().rule(rule);
  proj.key_attrs.clear();
  for (const PatternCell& cell : cfd.lhs()) {
    if (cell.attr != attr) proj.key_attrs.push_back(cell.attr);
  }
  if (cfd.rhs().attr != attr) proj.key_attrs.push_back(cfd.rhs().attr);

  proj.values.clear();
  ProjKey key(proj.key_attrs.size());
  for (std::size_t r = 0; r < table_->num_rows(); ++r) {
    const RowId row = static_cast<RowId>(r);
    for (std::size_t k = 0; k < proj.key_attrs.size(); ++k) {
      key[k] = table_->id_at(row, proj.key_attrs[k]);
    }
    auto& bucket = proj.values[key];
    const ValueId v = table_->id_at(row, attr);
    auto it = std::find_if(bucket.begin(), bucket.end(),
                           [v](const auto& entry) { return entry.first == v; });
    if (it != bucket.end()) {
      ++it->second;
    } else if (bucket.size() < kMaxValuesPerProjection) {
      bucket.emplace_back(v, 1);
    }
  }
  proj.built_at_version = index_->version();
  return proj;
}

std::optional<Update> UpdateGenerator::UpdateAttributeTuple(RowId row,
                                                            AttrId attr) {
  const CellKey cell{row, attr};
  if (!state_->IsChangeable(cell)) return std::nullopt;

  const ValueId current = table_->id_at(row, attr);
  double best_score = -1.0;
  ValueId best_value = kInvalidValueId;

  auto consider = [&](ValueId v, double score) {
    if (v == current || v == kInvalidValueId) return;
    if (state_->IsPrevented(cell, v)) return;
    // Strict improvement: earlier scenarios (and rule constants, offered
    // first in scenario 3) win ties, mirroring Algorithm 1's cur_s >
    // best_s test.
    if (score > best_score) {
      best_score = score;
      best_value = v;
    }
  };

  // conf ratio helper: support of the suggested value against the current
  // value within the evidence set (see class comment).
  auto support_ratio = [](std::int64_t suggested, std::int64_t current_count) {
    const double total =
        static_cast<double>(suggested) + static_cast<double>(current_count);
    return total <= 0.0 ? 0.0 : static_cast<double>(suggested) / total;
  };

  const RuleSet& rules = index_->rules();
  const std::vector<RuleId> violated = index_->ViolatedRules(row);
  std::vector<RuleId> lhs_of;  // violated rules with attr ∈ LHS

  for (RuleId rid : violated) {
    const Cfd& rule = rules.rule(rid);
    if (rule.rhs().attr == attr) {
      if (rule.IsConstant()) {
        // Scenario 1: adopt the pattern constant (conf = 1).
        const ValueId v = table_->InternValue(attr, *rule.rhs().constant);
        consider(v, Sim(attr, current, v));
      } else {
        // Scenario 2: adopt a violation partner's RHS value, weighted by
        // its share of the violating group. Resolve the row's group once;
        // every support probe then hits the same small-vector counts
        // instead of re-deriving the group per partner.
        const ViolationIndex::GroupView group = index_->GroupOf(row, rid);
        const std::int64_t current_count = group.ValueCount(current);
        for (RowId partner : index_->ViolationPartners(row, rid)) {
          const ValueId v = table_->id_at(partner, attr);
          const double conf =
              support_ratio(group.ValueCount(v), current_count);
          consider(v, Sim(attr, current, v) * conf);
        }
      }
    }
    if (rule.LhsContains(attr)) lhs_of.push_back(rid);
  }

  if (!lhs_of.empty()) {
    // Scenario 3: semantically related replacements — rule constants
    // first, then values from tuples matching t[(X ∪ A) − {B}].
    const std::int64_t current_global = table_->ValueCount(attr, current);
    for (ValueId v : RuleConstants(attr)) {
      const double conf =
          support_ratio(table_->ValueCount(attr, v), current_global);
      consider(v, Sim(attr, current, v) * conf);
    }
    for (RuleId rid : lhs_of) {
      const ProjIndex& proj = Projection(rid, attr);
      ProjKey key(proj.key_attrs.size());
      for (std::size_t k = 0; k < proj.key_attrs.size(); ++k) {
        key[k] = table_->id_at(row, proj.key_attrs[k]);
      }
      auto it = proj.values.find(key);
      if (it == proj.values.end()) continue;
      std::int64_t current_in_bucket = 0;
      for (const auto& [v, count] : it->second) {
        if (v == current) current_in_bucket = count;
      }
      for (const auto& [v, count] : it->second) {
        const double conf = support_ratio(count, current_in_bucket);
        consider(v, Sim(attr, current, v) * conf);
      }
    }
  }

  if (best_value == kInvalidValueId) return std::nullopt;
  return Update{row, attr, best_value, best_score};
}

}  // namespace gdr
