#ifndef GDR_REPAIR_REPAIR_STATE_H_
#define GDR_REPAIR_REPAIR_STATE_H_

#include <unordered_map>
#include <unordered_set>

#include "repair/update.h"

namespace gdr {

/// Per-cell repair bookkeeping of Appendix A.4/A.5:
///  * ⟨t,B⟩.Changeable — false once the cell's value has been confirmed
///    correct (by retain feedback or by applying a confirmed update); no
///    further updates are generated for it.
///  * ⟨t,B⟩.preventedList — values confirmed wrong for the cell; the update
///    generator never re-suggests them.
///
/// Cells start changeable with an empty prevented list; state is stored
/// sparsely.
class RepairState {
 public:
  RepairState() = default;

  bool IsChangeable(CellKey cell) const {
    return !frozen_.contains(cell);
  }

  /// Marks the cell's current value as confirmed-correct.
  void Freeze(CellKey cell) { frozen_.insert(cell); }

  void Prevent(CellKey cell, ValueId value) {
    prevented_[cell].insert(value);
  }

  bool IsPrevented(CellKey cell, ValueId value) const {
    auto it = prevented_.find(cell);
    return it != prevented_.end() && it->second.contains(value);
  }

  std::size_t PreventedCount(CellKey cell) const {
    auto it = prevented_.find(cell);
    return it == prevented_.end() ? 0 : it->second.size();
  }

  std::size_t frozen_count() const { return frozen_.size(); }

 private:
  std::unordered_set<CellKey, CellKeyHash> frozen_;
  std::unordered_map<CellKey, std::unordered_set<ValueId>, CellKeyHash>
      prevented_;
};

}  // namespace gdr

#endif  // GDR_REPAIR_REPAIR_STATE_H_
