#include "repair/update_pool.h"

#include <algorithm>

namespace gdr {

std::vector<Update> UpdatePool::All() const {
  std::vector<Update> out;
  out.reserve(pool_.size());
  for (const auto& [cell, update] : pool_) out.push_back(update);
  std::sort(out.begin(), out.end(), [](const Update& a, const Update& b) {
    if (a.row != b.row) return a.row < b.row;
    return a.attr < b.attr;
  });
  return out;
}

std::vector<Update> UpdatePool::AllGroupedByValue() const {
  std::vector<Update> out;
  out.reserve(pool_.size());
  for (const auto& [cell, update] : pool_) out.push_back(update);
  // (attr, value, row) is a strict total order here: the pool holds at
  // most one update per (row, attr) cell, so the sort is deterministic
  // regardless of the hash map's iteration order.
  std::sort(out.begin(), out.end(), [](const Update& a, const Update& b) {
    if (a.attr != b.attr) return a.attr < b.attr;
    if (a.value != b.value) return a.value < b.value;
    return a.row < b.row;
  });
  return out;
}

}  // namespace gdr
