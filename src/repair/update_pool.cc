#include "repair/update_pool.h"

#include <algorithm>

namespace gdr {

std::vector<Update> UpdatePool::All() const {
  std::vector<Update> out;
  out.reserve(pool_.size());
  for (const auto& [cell, update] : pool_) out.push_back(update);
  std::sort(out.begin(), out.end(), [](const Update& a, const Update& b) {
    if (a.row != b.row) return a.row < b.row;
    return a.attr < b.attr;
  });
  return out;
}

}  // namespace gdr
