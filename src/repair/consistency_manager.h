#ifndef GDR_REPAIR_CONSISTENCY_MANAGER_H_
#define GDR_REPAIR_CONSISTENCY_MANAGER_H_

#include <unordered_set>
#include <vector>

#include "cfd/violation_index.h"
#include "repair/repair_state.h"
#include "repair/update.h"
#include "repair/update_generator.h"
#include "repair/update_pool.h"

namespace gdr {

/// A cell modification actually written to the database, either directly
/// confirmed (by the user or the learner) or forced by the consistency
/// manager's constant-rule cascade (Appendix A.5, step 3(a)i).
struct AppliedChange {
  RowId row = -1;
  AttrId attr = kInvalidAttrId;
  ValueId old_value = kInvalidValueId;
  ValueId new_value = kInvalidValueId;
  bool forced = false;
};

/// The Updates Consistency Manager of Section 3 / Appendix A.5. Owns the
/// interplay between the violation index, the candidate-update pool, and
/// the per-cell repair state, and maintains the two invariants:
///
///  (i)  every tuple violating some rule is in the dirty set, and
///  (ii) no pooled update depends on data values modified since it was
///       generated (stale updates are regenerated).
///
/// Feedback handling (steps 1–6 of A.5):
///  * retain  — freeze the cell, drop its pooled update.
///  * reject  — add the value to the cell's prevented list, regenerate.
///  * confirm — apply the update through the violation index; freeze the
///    cell; then, per rule mentioning the attribute, (a) force tp[A] onto
///    the RHS of a still-violated constant rule whose LHS is fully frozen
///    (cascading, via a work queue), (b) collect a RevisitList of cells
///    whose suggestions may be stale — the tuple's cells in X ∪ A and, for
///    variable rules, the cells of every old- and new-group member — and
///    regenerate their suggestions.
///
/// Invariant (ii) is maintained *more aggressively* than the paper's
/// pseudocode: old-group partners of a variable rule are revisited even
/// when their violations were resolved (paper step 3b removes rules from
/// their vioRuleLists but leaves their stale pool entries to be filtered
/// later); revisiting them immediately keeps the pool exact at all times,
/// which the VOI ranking relies on.
class ConsistencyManager {
 public:
  /// All pointers are non-owning; everything must outlive the manager.
  ConsistencyManager(ViolationIndex* index, UpdatePool* pool,
                     RepairState* state, UpdateGenerator* generator);

  ConsistencyManager(const ConsistencyManager&) = delete;
  ConsistencyManager& operator=(const ConsistencyManager&) = delete;

  /// Step 1 of the GDR process: identifies all dirty tuples and seeds the
  /// pool by calling UpdateAttributeTuple for every (dirty tuple,
  /// attribute) pair. Returns the number of initially dirty tuples (the E
  /// of Section 5.2).
  std::size_t Initialize();

  /// Streaming admission: after rows [first_row, first_row + count) were
  /// appended through ViolationIndex::AppendRows, restores both invariants
  /// for the grown instance. New dirty rows are seeded exactly like
  /// Initialize() (a suggestion per attribute); existing rows pulled into
  /// violation by the arrivals — the appended rows' variable-rule partners
  /// — join the dirty set, with suggestions seeded (newly dirty) or
  /// refreshed on the affected rules' attributes (already dirty, whose
  /// pooled evidence the new group members changed). Appends never clean
  /// an existing row, so no pooled update is retired here. Returns the
  /// number of rows that entered the dirty set.
  std::size_t AdmitRows(RowId first_row, std::size_t count);

  /// Applies one unit of feedback for `update`. Returns the cell changes
  /// written to the database (empty for reject/retain; the confirmed change
  /// plus any forced cascade for confirm).
  std::vector<AppliedChange> ApplyFeedback(const Update& update,
                                           Feedback feedback);

  /// The user supplied the correct value v' directly; treated as confirm of
  /// ⟨t, A, v', 1⟩ (Section 4.2).
  std::vector<AppliedChange> ApplyUserValue(RowId row, AttrId attr,
                                            ValueId value);

  /// Current dirty tuples, ascending. Maintained incrementally.
  std::vector<RowId> DirtyRows() const;

  std::size_t dirty_count() const { return dirty_.size(); }
  bool HasDirtyRows() const { return !dirty_.empty(); }
  bool IsDirty(RowId row) const { return dirty_.contains(row); }

 private:
  // Applies a confirmed value to (row, attr) and performs all consequent
  // maintenance; appends changes (incl. cascades) to `out`.
  void ApplyConfirmedChange(RowId row, AttrId attr, ValueId value,
                            bool forced, std::vector<AppliedChange>* out);

  // Regenerates the pooled suggestion for `cell` (removing it first).
  void Revisit(CellKey cell);

  // Recomputes `row`'s membership in the dirty set.
  void RefreshDirty(RowId row);

  ViolationIndex* index_;
  UpdatePool* pool_;
  RepairState* state_;
  UpdateGenerator* generator_;
  std::unordered_set<RowId> dirty_;
  // Scratch for AppendViolationPartners during confirm cascades; partner
  // order is irrelevant there (results land in keyed sets/pools), so the
  // allocation-free unsorted enumeration suffices.
  std::vector<RowId> partner_scratch_;
};

}  // namespace gdr

#endif  // GDR_REPAIR_CONSISTENCY_MANAGER_H_
