#ifndef GDR_REPAIR_UPDATE_POOL_H_
#define GDR_REPAIR_UPDATE_POOL_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "repair/update.h"

namespace gdr {

/// The PossibleUpdates list of Section 3: the live pool of candidate
/// updates. The on-demand generator produces at most one suggestion per
/// cell at a time (the best-scoring one); rejected suggestions are replaced,
/// so the pool is a map cell → update.
class UpdatePool {
 public:
  UpdatePool() = default;

  /// Inserts or replaces the suggestion for the update's cell.
  void Upsert(const Update& update) { pool_[update.cell()] = update; }

  /// Removes any suggestion for `cell`; returns true if one was present.
  bool Remove(CellKey cell) { return pool_.erase(cell) > 0; }

  /// Current suggestion for `cell`, if any.
  std::optional<Update> Get(CellKey cell) const {
    auto it = pool_.find(cell);
    if (it == pool_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(CellKey cell) const { return pool_.contains(cell); }

  /// True when `update` is exactly the pool's current suggestion for its
  /// cell. This is the staleness re-validation performed before consuming
  /// feedback: an update delivered earlier may have been retired (cell
  /// frozen) or replaced (regenerated suggestion) by a consistency cascade.
  bool IsLive(const Update& update) const {
    auto it = pool_.find(update.cell());
    return it != pool_.end() && it->second == update;
  }

  std::size_t size() const { return pool_.size(); }
  bool empty() const { return pool_.empty(); }

  /// Snapshot of all pooled updates, ordered by (row, attr) so that
  /// downstream grouping and ranking are deterministic.
  std::vector<Update> All() const;

  /// Group-major snapshot: ordered by (attr, value, row), so every
  /// (attribute, suggested value) group is one contiguous run — the
  /// iteration order GroupUpdates consumes, turning grouping into a single
  /// linear pass. (attr, value) runs appear in the same ascending order
  /// the old map-based grouping produced, rows ascending within each.
  std::vector<Update> AllGroupedByValue() const;

 private:
  std::unordered_map<CellKey, Update, CellKeyHash> pool_;
};

}  // namespace gdr

#endif  // GDR_REPAIR_UPDATE_POOL_H_
