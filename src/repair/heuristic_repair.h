#ifndef GDR_REPAIR_HEURISTIC_REPAIR_H_
#define GDR_REPAIR_HEURISTIC_REPAIR_H_

#include <cstddef>

#include "cfd/violation_index.h"
#include "data/table.h"

namespace gdr {

struct HeuristicRepairOptions {
  /// Upper bound on full repair passes; the algorithm usually converges in
  /// a handful.
  int max_passes = 25;
};

struct HeuristicRepairStats {
  std::size_t updates_applied = 0;
  int passes = 0;
  std::int64_t remaining_violations = 0;
};

/// Fully automatic CFD repair in the spirit of BatchRepair (Cong et al.,
/// VLDB 2007): the paper's "Automatic-Heuristic" baseline. Repeatedly
/// generates the best-scoring candidate update for every dirty tuple (the
/// same Appendix A.4 generator GDR uses), applies them in descending score
/// order, freezes each repaired cell so the greedy choice is never revised,
/// and stops when the database is consistent, a pass applies nothing, or
/// `max_passes` is reached.
///
/// Freezing repaired cells is what makes the procedure terminate (each pass
/// must repair at least one previously untouched cell to continue); it is
/// also why the heuristic can lock in wrong values — exactly the risk that
/// motivates GDR's user involvement (Section 1).
///
/// Mutates the table underlying `index` through the index. `table` must be
/// the indexed table (used by the generator to intern candidate values).
HeuristicRepairStats RunBatchRepair(ViolationIndex* index, Table* table,
                                    const HeuristicRepairOptions& options = {});

}  // namespace gdr

#endif  // GDR_REPAIR_HEURISTIC_REPAIR_H_
