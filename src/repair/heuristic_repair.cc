#include "repair/heuristic_repair.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "repair/repair_state.h"
#include "repair/update_generator.h"

namespace gdr {

HeuristicRepairStats RunBatchRepair(ViolationIndex* index, Table* table,
                                    const HeuristicRepairOptions& options) {
  RepairState state;
  UpdateGenerator generator(index, table, &state);
  HeuristicRepairStats stats;

  for (int pass = 0; pass < options.max_passes; ++pass) {
    const std::vector<RowId> dirty = index->DirtyRows();
    if (dirty.empty()) break;
    stats.passes = pass + 1;

    // One best update per dirty tuple (the tuple's highest-scoring cell
    // repair), as in BatchRepair's per-violation resolution step.
    std::vector<Update> batch;
    for (RowId row : dirty) {
      std::optional<Update> best;
      for (std::size_t a = 0; a < table->num_attrs(); ++a) {
        auto update = generator.UpdateAttributeTuple(row, static_cast<AttrId>(a));
        if (update && (!best || update->score > best->score)) {
          best = update;
        }
      }
      if (best) batch.push_back(*best);
    }
    if (batch.empty()) break;

    std::sort(batch.begin(), batch.end(), [](const Update& a, const Update& b) {
      if (a.score != b.score) return a.score > b.score;
      if (a.row != b.row) return a.row < b.row;
      return a.attr < b.attr;
    });

    std::size_t applied_this_pass = 0;
    for (const Update& update : batch) {
      if (!state.IsChangeable(update.cell())) continue;
      // Re-check: earlier applications in this pass may have already
      // resolved this tuple's violations.
      if (!index->IsDirty(update.row)) continue;
      // Cost guard (the cost-based acceptance of BatchRepair): apply only
      // if the database's total violation count actually drops; a repair
      // that trades one violation for several new ones is rejected and
      // its value prevented so it is never re-suggested.
      const std::int64_t before_vio = index->TotalViolations();
      const ValueId old_value =
          index->ApplyCellChange(update.row, update.attr, update.value);
      if (index->TotalViolations() >= before_vio) {
        index->ApplyCellChange(update.row, update.attr, old_value);
        state.Prevent(update.cell(), update.value);
        continue;
      }
      state.Freeze(update.cell());
      ++applied_this_pass;
    }
    stats.updates_applied += applied_this_pass;
    if (applied_this_pass == 0) break;
  }

  stats.remaining_violations = index->TotalViolations();
  return stats;
}

}  // namespace gdr
