#ifndef GDR_REPAIR_UPDATE_GENERATOR_H_
#define GDR_REPAIR_UPDATE_GENERATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cfd/violation_index.h"
#include "repair/repair_state.h"
#include "repair/update.h"

namespace gdr {

/// On-demand candidate-update discovery: the paper's UpdateAttributeTuple
/// (Algorithm 1, Appendix A.4), which resolves CFD violations by value
/// modification following the mechanism of Cong et al. (VLDB 2007).
///
/// For a cell (t, B) it explores three scenarios over the rules currently
/// violated by t:
///   1. B = RHS(φ), φ constant: suggest the pattern constant tp[A].
///   2. B = RHS(φ), φ variable: suggest the RHS value of a tuple t' that
///      violates φ together with t (the best-scoring distinct partner
///      value).
///   3. B ∈ LHS(φ) for some violated φ: suggest the value maximizing
///      sim(t[B], v) among (a) constants for B appearing in any rule of Σ
///      ("first using the values in the CFDs") and (b) the B values of
///      tuples that agree with t on the rule's remaining attributes
///      (X ∪ A) − {B} ("searching in the tuples identified by the pattern
///      t[X ∪ A − {B}]") — the semantically related candidates. The
///      projection lookup is served by a lazily built per-(rule, B) index
///      invalidated whenever the database version advances.
///
/// All scenarios skip values in the cell's prevented list and the cell's
/// current value; the best score across scenarios wins (earlier candidates
/// win ties). Returns nothing when the cell is frozen (⟨t,B⟩.Changeable =
/// false), the tuple violates no rule involving B, or every candidate is
/// prevented.
///
/// Update evaluation function. The paper's Eq. 7 scores an update purely
/// by string similarity, s = sim(v, v'), "any domain specific similarity
/// function can be used". Raw similarity inverts on typo-polluted domains:
/// the value most similar to a clean cell is frequently someone else's
/// typo, so the repairer would be maximally "certain" about its worst
/// suggestions. This implementation therefore scores
///
///     s(r) = sim(v, v') · conf(r),  conf ∈ (0, 1]
///
/// where conf is the suggested value's support within the evidence that
/// produced it:
///   scenario 1 — conf = 1 (the pattern constant is sanctioned by Σ);
///   scenario 2 — conf = n(v') / (n(v') + n(v)) over the violating LHS
///                group (adopting the group's majority is safer than
///                adopting a lone outlier);
///   scenario 3 — same ratio over the projection bucket (or the global
///                value supports, for rule-constant candidates).
///
/// Unlike the paper's pseudocode (best_s initialized to 0 with a strict
/// improvement test), candidates with similarity 0 are admissible here:
/// with categorical domains, the correct value frequently shares no
/// characters with the dirty one, and dropping those candidates would make
/// such cells unrepairable.
class UpdateGenerator {
 public:
  /// `table` is the same table the index is built over; it is used only to
  /// intern candidate values (never to mutate cells directly). All pointers
  /// are non-owning and must outlive the generator.
  UpdateGenerator(ViolationIndex* index, Table* table,
                  const RepairState* state);

  UpdateGenerator(const UpdateGenerator&) = delete;
  UpdateGenerator& operator=(const UpdateGenerator&) = delete;

  /// Best update for cell (row, attr), or nullopt (see class comment).
  std::optional<Update> UpdateAttributeTuple(RowId row, AttrId attr);

  /// sim(from, to) per Eq. 7 over `attr`'s dictionary.
  double Sim(AttrId attr, ValueId from, ValueId to) const;

 private:
  using ProjKey = std::vector<ValueId>;

  struct ProjKeyHash {
    std::size_t operator()(const ProjKey& key) const;
  };

  // Distinct B values (with in-bucket support counts) per projection
  // t[(X ∪ A) − {B}] for one (rule, B) pair, rebuilt lazily when the
  // database version moves.
  struct ProjIndex {
    std::uint64_t built_at_version = ~0ULL;
    std::vector<AttrId> key_attrs;  // (X ∪ A) − {B}, in rule order
    std::unordered_map<ProjKey, std::vector<std::pair<ValueId, std::int64_t>>,
                       ProjKeyHash>
        values;
  };

  // Constants for `attr` collected from all rules (LHS and RHS patterns),
  // interned once at construction.
  const std::vector<ValueId>& RuleConstants(AttrId attr) const {
    return rule_constants_[static_cast<std::size_t>(attr)];
  }

  // The projection index for (rule, attr), rebuilt if stale.
  const ProjIndex& Projection(RuleId rule, AttrId attr);

  // Caps the distinct values remembered per projection key; beyond this
  // the candidate set is no longer "semantically tight" anyway.
  static constexpr std::size_t kMaxValuesPerProjection = 32;

  ViolationIndex* index_;
  Table* table_;
  const RepairState* state_;
  std::vector<std::vector<ValueId>> rule_constants_;
  std::map<std::pair<RuleId, AttrId>, ProjIndex> projections_;
};

}  // namespace gdr

#endif  // GDR_REPAIR_UPDATE_GENERATOR_H_
