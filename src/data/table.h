#ifndef GDR_DATA_TABLE_H_
#define GDR_DATA_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/schema.h"
#include "data/value_dict.h"
#include "util/result.h"

namespace gdr {

/// Dense index of a tuple within a table. Row ids are stable under the
/// growth contract: GDR repairs by value modification only (the paper's
/// update model) and tables grow strictly by appending — a RowId, once
/// issued, identifies the same logical tuple for the lifetime of an
/// experiment, and streaming ingestion only ever issues new, larger ids.
/// TruncateTo() exists solely to roll back a failed multi-row append
/// (all-or-nothing loads); it never removes rows another component has
/// observed.
using RowId = std::int32_t;

/// An in-memory relational instance: the database D of the paper. Row-major
/// storage of interned ValueIds with one ValueDict per attribute.
///
/// The table itself is passive — it performs no constraint checking. The CFD
/// violation machinery (src/cfd) observes cell changes through the repair
/// engine that orchestrates mutations.
///
/// Copyable: a copy is a snapshot sharing no state, used for hypothetical
/// databases and for keeping the dirty instance alongside the ground truth.
class Table {
 public:
  explicit Table(Schema schema)
      : schema_(std::move(schema)),
        dicts_(schema_.num_attrs()),
        value_counts_(schema_.num_attrs()) {}

  Table(const Table&) = default;
  Table& operator=(const Table&) = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_attrs() const { return schema_.num_attrs(); }

  /// Appends a tuple given as strings (one per attribute, in schema order).
  /// Fails if the arity does not match.
  Result<RowId> AppendRow(const std::vector<std::string>& values);

  /// Pre-sizes row storage for `num_rows` total rows (chunked ingestion
  /// hint; never shrinks, never changes contents).
  void Reserve(std::size_t num_rows) { rows_.reserve(num_rows); }

  /// Drops every row with id >= num_rows, unwinding their value-support
  /// counts. The rollback half of the growth contract: a failed multi-row
  /// append truncates back to the pre-append size, so loads are
  /// all-or-nothing. Values interned by the dropped rows stay in the
  /// dictionaries (ids are never recycled), matching how Set() leaves
  /// replaced values interned. No-op when the table is already at or below
  /// `num_rows`.
  void TruncateTo(std::size_t num_rows);

  /// Interned cell accessor.
  ValueId id_at(RowId row, AttrId attr) const {
    return rows_[static_cast<std::size_t>(row)][static_cast<std::size_t>(attr)];
  }

  /// String cell accessor.
  const std::string& at(RowId row, AttrId attr) const {
    return dicts_[static_cast<std::size_t>(attr)].ToString(id_at(row, attr));
  }

  /// Overwrites a cell with a string value (interning it), returning the new
  /// ValueId.
  ValueId Set(RowId row, AttrId attr, std::string_view value);

  /// Overwrites a cell with an already-interned value of this table.
  void SetById(RowId row, AttrId attr, ValueId value) {
    ValueId& cell =
        rows_[static_cast<std::size_t>(row)][static_cast<std::size_t>(attr)];
    if (cell == value) return;
    auto& counts = value_counts_[static_cast<std::size_t>(attr)];
    --counts[static_cast<std::size_t>(cell)];
    cell = value;
    if (counts.size() <= static_cast<std::size_t>(value)) {
      counts.resize(static_cast<std::size_t>(value) + 1, 0);
    }
    ++counts[static_cast<std::size_t>(value)];
  }

  /// Number of rows currently holding `value` in `attr` (the value's
  /// support in the active instance). O(1); maintained on every mutation.
  std::int64_t ValueCount(AttrId attr, ValueId value) const {
    const auto& counts = value_counts_[static_cast<std::size_t>(attr)];
    return static_cast<std::size_t>(value) < counts.size()
               ? counts[static_cast<std::size_t>(value)]
               : 0;
  }

  /// Interns `value` in attribute `attr`'s dictionary without writing any
  /// cell (used for pattern constants and candidate update values).
  ValueId InternValue(AttrId attr, std::string_view value) {
    return dicts_[static_cast<std::size_t>(attr)].Intern(value);
  }

  const ValueDict& dict(AttrId attr) const {
    return dicts_[static_cast<std::size_t>(attr)];
  }

  /// The active domain dom(A): every value id currently interned for `attr`
  /// is in [0, DomainSize(attr)).
  std::size_t DomainSize(AttrId attr) const {
    return dicts_[static_cast<std::size_t>(attr)].size();
  }

  /// True when the cell (row, attr) holds the same *string* in both tables.
  /// Works across tables with unrelated dictionaries.
  bool CellEquals(RowId row, AttrId attr, const Table& other) const {
    return at(row, attr) == other.at(row, attr);
  }

  /// Number of cells whose string value differs from `other` (same schema
  /// and row count required). This is the raw material for precision/recall.
  Result<std::size_t> CountDifferingCells(const Table& other) const;

  /// Renders a row as "v1 | v2 | ..." for logs and examples.
  std::string RowToString(RowId row) const;

 private:
  Schema schema_;
  std::vector<ValueDict> dicts_;
  std::vector<std::vector<ValueId>> rows_;
  // Per attribute: support of each value id among the current rows.
  std::vector<std::vector<std::int64_t>> value_counts_;
};

}  // namespace gdr

#endif  // GDR_DATA_TABLE_H_
