#ifndef GDR_DATA_VALUE_DICT_H_
#define GDR_DATA_VALUE_DICT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gdr {

/// Dense integer handle for an interned attribute value. Value ids are
/// per-attribute: id 3 of "City" and id 3 of "Zip" are unrelated.
using ValueId = std::int32_t;

/// Sentinel for "no value" (used by optional pattern slots, never stored in
/// table cells).
inline constexpr ValueId kInvalidValueId = -1;

/// Interns the string domain of one attribute. All table cells, CFD pattern
/// constants, and ML categorical features hold ValueIds; strings are
/// materialized only for similarity scoring and display. Ids are assigned
/// densely in first-insertion order, so they double as array indexes.
class ValueDict {
 public:
  ValueDict() = default;

  /// Returns the id of `value`, interning it if new.
  ValueId Intern(std::string_view value);

  /// Returns the id of `value` or kInvalidValueId if it was never interned.
  ValueId Lookup(std::string_view value) const;

  /// Returns the string for `id`. `id` must be a valid id of this dict.
  const std::string& ToString(ValueId id) const;

  bool Contains(std::string_view value) const {
    return Lookup(value) != kInvalidValueId;
  }

  /// Number of distinct interned values; valid ids are [0, size()).
  std::size_t size() const { return values_.size(); }

 private:
  std::vector<std::string> values_;
  // Owns a second copy of each key; attribute domains are small (at most a
  // few thousand distinct strings), so the duplication is irrelevant.
  std::unordered_map<std::string, ValueId> index_;
};

}  // namespace gdr

#endif  // GDR_DATA_VALUE_DICT_H_
