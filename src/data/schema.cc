#include "data/schema.h"

namespace gdr {

Result<Schema> Schema::Make(std::vector<std::string> attribute_names) {
  Schema schema;
  for (const std::string& name : attribute_names) {
    if (name.empty()) {
      return Status::InvalidArgument("empty attribute name");
    }
    const AttrId id = static_cast<AttrId>(schema.names_.size());
    auto [it, inserted] = schema.index_.emplace(name, id);
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument("duplicate attribute name: " + name);
    }
    schema.names_.push_back(name);
  }
  return schema;
}

AttrId Schema::FindAttr(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidAttrId : it->second;
}

Result<AttrId> Schema::GetAttr(std::string_view name) const {
  const AttrId id = FindAttr(name);
  if (id == kInvalidAttrId) {
    return Status::NotFound("no attribute named '" + std::string(name) + "'");
  }
  return id;
}

}  // namespace gdr
