#include "data/value_dict.h"

#include <cassert>

namespace gdr {

ValueId ValueDict::Intern(std::string_view value) {
  auto it = index_.find(std::string(value));
  if (it != index_.end()) return it->second;
  const ValueId id = static_cast<ValueId>(values_.size());
  values_.emplace_back(value);
  index_.emplace(values_.back(), id);
  return id;
}

ValueId ValueDict::Lookup(std::string_view value) const {
  auto it = index_.find(std::string(value));
  return it == index_.end() ? kInvalidValueId : it->second;
}

const std::string& ValueDict::ToString(ValueId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < values_.size());
  return values_[static_cast<std::size_t>(id)];
}

}  // namespace gdr
