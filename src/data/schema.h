#ifndef GDR_DATA_SCHEMA_H_
#define GDR_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace gdr {

/// Dense index of an attribute within a relation schema.
using AttrId = std::int32_t;

inline constexpr AttrId kInvalidAttrId = -1;

/// The attribute list of a single relation R. GDR (like the paper's CFD
/// machinery) operates on one relation at a time; a multi-relation database
/// is repaired relation-by-relation.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema from attribute names. Fails on duplicates or empty
  /// names.
  static Result<Schema> Make(std::vector<std::string> attribute_names);

  std::size_t num_attrs() const { return names_.size(); }

  const std::string& attr_name(AttrId id) const {
    return names_[static_cast<std::size_t>(id)];
  }

  /// Returns the id for `name`, or kInvalidAttrId if absent.
  AttrId FindAttr(std::string_view name) const;

  /// Returns the id for `name` or an error mentioning the name.
  Result<AttrId> GetAttr(std::string_view name) const;

  const std::vector<std::string>& attribute_names() const { return names_; }

  bool operator==(const Schema& other) const { return names_ == other.names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttrId> index_;
};

}  // namespace gdr

#endif  // GDR_DATA_SCHEMA_H_
