#include "data/table.h"

#include <sstream>

namespace gdr {

Result<RowId> Table::AppendRow(const std::vector<std::string>& values) {
  if (values.size() != schema_.num_attrs()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) +
        " does not match schema arity " + std::to_string(schema_.num_attrs()));
  }
  std::vector<ValueId> row(values.size());
  for (std::size_t a = 0; a < values.size(); ++a) {
    row[a] = dicts_[a].Intern(values[a]);
    auto& counts = value_counts_[a];
    if (counts.size() <= static_cast<std::size_t>(row[a])) {
      counts.resize(static_cast<std::size_t>(row[a]) + 1, 0);
    }
    ++counts[static_cast<std::size_t>(row[a])];
  }
  rows_.push_back(std::move(row));
  return static_cast<RowId>(rows_.size() - 1);
}

void Table::TruncateTo(std::size_t num_rows) {
  while (rows_.size() > num_rows) {
    const std::vector<ValueId>& row = rows_.back();
    for (std::size_t a = 0; a < row.size(); ++a) {
      --value_counts_[a][static_cast<std::size_t>(row[a])];
    }
    rows_.pop_back();
  }
}

ValueId Table::Set(RowId row, AttrId attr, std::string_view value) {
  const ValueId id = dicts_[static_cast<std::size_t>(attr)].Intern(value);
  SetById(row, attr, id);
  return id;
}

Result<std::size_t> Table::CountDifferingCells(const Table& other) const {
  if (!(schema_ == other.schema_)) {
    return Status::InvalidArgument("schemas differ");
  }
  if (num_rows() != other.num_rows()) {
    return Status::InvalidArgument("row counts differ");
  }
  std::size_t count = 0;
  for (std::size_t r = 0; r < num_rows(); ++r) {
    for (std::size_t a = 0; a < num_attrs(); ++a) {
      const RowId row = static_cast<RowId>(r);
      const AttrId attr = static_cast<AttrId>(a);
      if (!CellEquals(row, attr, other)) ++count;
    }
  }
  return count;
}

std::string Table::RowToString(RowId row) const {
  std::ostringstream out;
  for (std::size_t a = 0; a < num_attrs(); ++a) {
    if (a > 0) out << " | ";
    out << at(row, static_cast<AttrId>(a));
  }
  return out.str();
}

}  // namespace gdr
