#ifndef GDR_ML_DECISION_TREE_H_
#define GDR_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "ml/example.h"
#include "util/result.h"
#include "util/rng.h"

namespace gdr {

struct DecisionTreeOptions {
  /// Maximum tree depth (root = depth 0).
  int max_depth = 24;
  /// Nodes with fewer examples become leaves.
  int min_samples_split = 2;
  /// Number of features considered at each split; 0 means all (plain
  /// decision tree), ⌈√M⌉ is the random-forest default (set by the forest).
  int feature_subsample = 0;
};

/// A binary classification tree trained by recursive information-gain
/// splitting (entropy impurity), supporting
///  * numeric features:      x[f] <= threshold,
///  * categorical features:  x[f] == value  (one-vs-rest),
/// with optional per-split random feature subsampling — the standard
/// random-forest base learner construction (Breiman 2001), which the paper
/// uses via WEKA. One-vs-rest equality splits keep high-cardinality
/// categorical attributes (city names, zip codes) tractable.
///
/// Two representations coexist after Train():
///  * the recursive `nodes_` vector the builder produces — each node a
///    struct with its own per-leaf distribution vector. Kept as the
///    differential oracle (`PredictDistribution` walks it).
///  * a flattened SoA mirror — feature / threshold / left / right /
///    majority as parallel arrays, every leaf distribution packed into one
///    contiguous pool indexed by offset — built once at the end of Train.
///    `Predict` and `PredictDistributionInto` descend the flat arrays:
///    batch evaluation touches a handful of dense arrays instead of
///    chasing 48-byte nodes with heap-allocated payloads, and returning a
///    distribution is a pool memcpy instead of a vector copy-construct.
/// The learner_batch differential suite pins the flat walk to the
/// recursive oracle on fuzzed inputs.
///
/// Deterministic given the training data, options, and Rng state.
class DecisionTree {
 public:
  DecisionTree() = default;

  /// Trains on `indices` into `data` (duplicates allowed — this is how
  /// bootstrap bags are passed). Resets prior contents. `rng` is needed
  /// only when options.feature_subsample > 0 (may be nullptr otherwise).
  /// Fails on an empty index set or an empty schema.
  Status Train(const TrainingSet& data,
               const std::vector<std::size_t>& indices,
               const DecisionTreeOptions& options, Rng* rng);

  /// Convenience: trains on all examples of `data`.
  Status Train(const TrainingSet& data, const DecisionTreeOptions& options,
               Rng* rng = nullptr);

  bool trained() const { return !nodes_.empty(); }

  /// Majority class at the reached leaf (flat-array descent).
  int Predict(const std::vector<double>& features) const {
    return Predict(features.data());
  }

  /// Raw-pointer overload for batch callers holding a row-major feature
  /// matrix; `features` must point at num_features doubles.
  int Predict(const double* features) const {
    return flat_majority_[static_cast<std::size_t>(DescendFlat(features))];
  }

  /// Class-frequency distribution at the reached leaf (sums to 1).
  /// Recursive-representation walk, kept as the oracle the flat paths are
  /// differentially pinned against; allocates the result.
  std::vector<double> PredictDistribution(
      const std::vector<double>& features) const;

  /// No-alloc variant: copies the reached leaf's distribution out of the
  /// contiguous pool into `out` (resized to num_classes). Bit-identical to
  /// PredictDistribution.
  void PredictDistributionInto(const std::vector<double>& features,
                               std::vector<double>* out) const {
    PredictDistributionInto(features.data(), out);
  }
  void PredictDistributionInto(const double* features,
                               std::vector<double>* out) const;

  /// Number of nodes (diagnostics / tests).
  std::size_t node_count() const { return nodes_.size(); }
  int num_classes() const { return num_classes_; }

 private:
  struct Node {
    // Internal node: test sends an example left when
    //   numeric:      features[feature] <= threshold
    //   categorical:  features[feature] == threshold
    std::int32_t feature = -1;  // -1 marks a leaf
    bool categorical = false;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    // Leaf payload.
    std::int32_t majority = 0;
    std::vector<double> distribution;
  };

  // Recursive builder; returns the index of the created node.
  std::int32_t Build(const TrainingSet& data, std::vector<std::size_t>& items,
                     int depth, const DecisionTreeOptions& options, Rng* rng);

  std::int32_t MakeLeaf(const TrainingSet& data,
                        const std::vector<std::size_t>& items);

  const Node& Descend(const std::vector<double>& features) const;

  // Mirrors nodes_ into the SoA arrays + distribution pool (end of Train).
  void Flatten();

  // Flat-array descent to a leaf's node index.
  std::int32_t DescendFlat(const double* features) const {
    std::int32_t i = 0;
    std::int32_t f = flat_feature_[0];
    while (f >= 0) {
      const std::size_t n = static_cast<std::size_t>(i);
      const double x = features[static_cast<std::size_t>(f)];
      const bool goes_left = flat_categorical_[n] != 0
                                 ? (x == flat_threshold_[n])
                                 : (x <= flat_threshold_[n]);
      i = goes_left ? flat_left_[n] : flat_right_[n];
      f = flat_feature_[static_cast<std::size_t>(i)];
    }
    return i;
  }

  std::vector<Node> nodes_;
  int num_classes_ = 0;

  // SoA mirror, parallel to nodes_. flat_dist_offset_ indexes dist_pool_
  // (num_classes_ doubles per leaf; -1 for internal nodes).
  std::vector<std::int32_t> flat_feature_;     // -1 marks a leaf
  std::vector<std::uint8_t> flat_categorical_;
  std::vector<double> flat_threshold_;
  std::vector<std::int32_t> flat_left_;
  std::vector<std::int32_t> flat_right_;
  std::vector<std::int32_t> flat_majority_;
  std::vector<std::int32_t> flat_dist_offset_;
  std::vector<double> dist_pool_;
};

/// Shannon entropy (nats) of a count histogram; 0 for empty/pure counts.
double CountsEntropy(const std::vector<std::size_t>& counts);

}  // namespace gdr

#endif  // GDR_ML_DECISION_TREE_H_
