#ifndef GDR_ML_DECISION_TREE_H_
#define GDR_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "ml/example.h"
#include "util/result.h"
#include "util/rng.h"

namespace gdr {

struct DecisionTreeOptions {
  /// Maximum tree depth (root = depth 0).
  int max_depth = 24;
  /// Nodes with fewer examples become leaves.
  int min_samples_split = 2;
  /// Number of features considered at each split; 0 means all (plain
  /// decision tree), ⌈√M⌉ is the random-forest default (set by the forest).
  int feature_subsample = 0;
};

/// A binary classification tree trained by recursive information-gain
/// splitting (entropy impurity), supporting
///  * numeric features:      x[f] <= threshold,
///  * categorical features:  x[f] == value  (one-vs-rest),
/// with optional per-split random feature subsampling — the standard
/// random-forest base learner construction (Breiman 2001), which the paper
/// uses via WEKA. One-vs-rest equality splits keep high-cardinality
/// categorical attributes (city names, zip codes) tractable.
///
/// Deterministic given the training data, options, and Rng state.
class DecisionTree {
 public:
  DecisionTree() = default;

  /// Trains on `indices` into `data` (duplicates allowed — this is how
  /// bootstrap bags are passed). Resets prior contents. `rng` is needed
  /// only when options.feature_subsample > 0 (may be nullptr otherwise).
  /// Fails on an empty index set or an empty schema.
  Status Train(const TrainingSet& data,
               const std::vector<std::size_t>& indices,
               const DecisionTreeOptions& options, Rng* rng);

  /// Convenience: trains on all examples of `data`.
  Status Train(const TrainingSet& data, const DecisionTreeOptions& options,
               Rng* rng = nullptr);

  bool trained() const { return !nodes_.empty(); }

  /// Majority class at the reached leaf.
  int Predict(const std::vector<double>& features) const;

  /// Class-frequency distribution at the reached leaf (sums to 1).
  std::vector<double> PredictDistribution(
      const std::vector<double>& features) const;

  /// Number of nodes (diagnostics / tests).
  std::size_t node_count() const { return nodes_.size(); }
  int num_classes() const { return num_classes_; }

 private:
  struct Node {
    // Internal node: test sends an example left when
    //   numeric:      features[feature] <= threshold
    //   categorical:  features[feature] == threshold
    std::int32_t feature = -1;  // -1 marks a leaf
    bool categorical = false;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    // Leaf payload.
    std::int32_t majority = 0;
    std::vector<double> distribution;
  };

  // Recursive builder; returns the index of the created node.
  std::int32_t Build(const TrainingSet& data, std::vector<std::size_t>& items,
                     int depth, const DecisionTreeOptions& options, Rng* rng);

  std::int32_t MakeLeaf(const TrainingSet& data,
                        const std::vector<std::size_t>& items);

  const Node& Descend(const std::vector<double>& features) const;

  std::vector<Node> nodes_;
  int num_classes_ = 0;
};

/// Shannon entropy (nats) of a count histogram; 0 for empty/pure counts.
double CountsEntropy(const std::vector<std::size_t>& counts);

}  // namespace gdr

#endif  // GDR_ML_DECISION_TREE_H_
