#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

namespace gdr {

Status RandomForest::Train(const TrainingSet& data) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot train a forest on zero examples");
  }
  trees_.clear();
  num_classes_ = data.num_classes();

  DecisionTreeOptions tree_options = options_.tree;
  const std::size_t num_features = data.schema().num_features();
  tree_options.feature_subsample =
      options_.feature_subsample > 0
          ? options_.feature_subsample
          : static_cast<int>(
                std::ceil(std::sqrt(static_cast<double>(num_features))));

  Rng rng(options_.seed);
  const std::size_t n = data.size();
  const std::size_t bag_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.bootstrap_fraction *
                                  static_cast<double>(n)));

  trees_.resize(static_cast<std::size_t>(options_.num_trees));
  for (DecisionTree& tree : trees_) {
    // Bootstrap bag: sample with replacement.
    std::vector<std::size_t> bag(bag_size);
    for (std::size_t& index : bag) {
      index = static_cast<std::size_t>(rng.NextBounded(n));
    }
    GDR_RETURN_NOT_OK(tree.Train(data, bag, tree_options, &rng));
  }
  return Status::OK();
}

std::vector<int> RandomForest::CommitteeVotes(
    const std::vector<double>& features) const {
  std::vector<int> votes;
  votes.reserve(trees_.size());
  for (const DecisionTree& tree : trees_) {
    votes.push_back(tree.Predict(features));
  }
  return votes;
}

std::vector<double> RandomForest::VoteFractions(
    const std::vector<double>& features) const {
  std::vector<double> fractions;
  VoteFractionsInto(features, &fractions);
  return fractions;
}

void RandomForest::VoteFractionsInto(const std::vector<double>& features,
                                     std::vector<double>* out) const {
  out->assign(static_cast<std::size_t>(num_classes_), 0.0);
  if (trees_.empty()) return;
  for (const DecisionTree& tree : trees_) {
    (*out)[static_cast<std::size_t>(tree.Predict(features))] += 1.0;
  }
  for (double& f : *out) f /= static_cast<double>(trees_.size());
}

void RandomForest::VoteFractionsBatch(const double* features,
                                      std::size_t rows, std::size_t stride,
                                      std::vector<double>* out) const {
  const std::size_t classes = static_cast<std::size_t>(num_classes_);
  out->assign(rows * classes, 0.0);
  if (trees_.empty()) return;
  // Tree-at-a-time within row blocks: per row the accumulator sees the
  // same +1.0 sequence in tree order as the per-row loop, so the sums
  // (and the final divisions) are bit-identical to VoteFractions. The
  // blocking caps how much of the feature matrix and vote output a tree
  // pass streams, keeping both resident across the tree loop — without it
  // large batches pay a full-matrix cache sweep per tree.
  constexpr std::size_t kRowBlock = 64;
  for (std::size_t base = 0; base < rows; base += kRowBlock) {
    const std::size_t end = std::min(rows, base + kRowBlock);
    for (const DecisionTree& tree : trees_) {
      const double* row = features + base * stride;
      double* votes = out->data() + base * classes;
      for (std::size_t r = base; r < end; ++r) {
        votes[tree.Predict(row)] += 1.0;
        row += stride;
        votes += classes;
      }
    }
  }
  const double denominator = static_cast<double>(trees_.size());
  for (double& f : *out) f /= denominator;
}

int RandomForest::Predict(const std::vector<double>& features) const {
  const std::vector<double> fractions = VoteFractions(features);
  return static_cast<int>(std::distance(
      fractions.begin(),
      std::max_element(fractions.begin(), fractions.end())));
}

double RandomForest::VoteEntropy(const std::vector<double>& fractions) {
  if (fractions.size() < 2) return 0.0;
  const double log_base = std::log(static_cast<double>(fractions.size()));
  double h = 0.0;
  for (double f : fractions) {
    if (f <= 0.0) continue;
    h -= f * std::log(f) / log_base;
  }
  return h;
}

double RandomForest::Uncertainty(const std::vector<double>& features) const {
  return VoteEntropy(VoteFractions(features));
}

}  // namespace gdr
