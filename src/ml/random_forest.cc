#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

namespace gdr {

Status RandomForest::Train(const TrainingSet& data) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot train a forest on zero examples");
  }
  trees_.clear();
  num_classes_ = data.num_classes();

  DecisionTreeOptions tree_options = options_.tree;
  const std::size_t num_features = data.schema().num_features();
  tree_options.feature_subsample =
      options_.feature_subsample > 0
          ? options_.feature_subsample
          : static_cast<int>(
                std::ceil(std::sqrt(static_cast<double>(num_features))));

  Rng rng(options_.seed);
  const std::size_t n = data.size();
  const std::size_t bag_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.bootstrap_fraction *
                                  static_cast<double>(n)));

  trees_.resize(static_cast<std::size_t>(options_.num_trees));
  for (DecisionTree& tree : trees_) {
    // Bootstrap bag: sample with replacement.
    std::vector<std::size_t> bag(bag_size);
    for (std::size_t& index : bag) {
      index = static_cast<std::size_t>(rng.NextBounded(n));
    }
    GDR_RETURN_NOT_OK(tree.Train(data, bag, tree_options, &rng));
  }
  return Status::OK();
}

std::vector<int> RandomForest::CommitteeVotes(
    const std::vector<double>& features) const {
  std::vector<int> votes;
  votes.reserve(trees_.size());
  for (const DecisionTree& tree : trees_) {
    votes.push_back(tree.Predict(features));
  }
  return votes;
}

std::vector<double> RandomForest::VoteFractions(
    const std::vector<double>& features) const {
  std::vector<double> fractions(static_cast<std::size_t>(num_classes_), 0.0);
  if (trees_.empty()) return fractions;
  for (const DecisionTree& tree : trees_) {
    fractions[static_cast<std::size_t>(tree.Predict(features))] += 1.0;
  }
  for (double& f : fractions) f /= static_cast<double>(trees_.size());
  return fractions;
}

int RandomForest::Predict(const std::vector<double>& features) const {
  const std::vector<double> fractions = VoteFractions(features);
  return static_cast<int>(std::distance(
      fractions.begin(),
      std::max_element(fractions.begin(), fractions.end())));
}

double RandomForest::VoteEntropy(const std::vector<double>& fractions) {
  if (fractions.size() < 2) return 0.0;
  const double log_base = std::log(static_cast<double>(fractions.size()));
  double h = 0.0;
  for (double f : fractions) {
    if (f <= 0.0) continue;
    h -= f * std::log(f) / log_base;
  }
  return h;
}

double RandomForest::Uncertainty(const std::vector<double>& features) const {
  return VoteEntropy(VoteFractions(features));
}

}  // namespace gdr
