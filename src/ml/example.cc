#include "ml/example.h"

namespace gdr {

Status TrainingSet::Add(Example example) {
  if (example.features.size() != schema_.num_features()) {
    return Status::InvalidArgument(
        "example arity " + std::to_string(example.features.size()) +
        " does not match schema arity " +
        std::to_string(schema_.num_features()));
  }
  if (example.label < 0 || example.label >= num_classes_) {
    return Status::InvalidArgument("label out of range: " +
                                   std::to_string(example.label));
  }
  examples_.push_back(std::move(example));
  return Status::OK();
}

std::vector<std::size_t> TrainingSet::ClassCounts() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes_), 0);
  for (const Example& e : examples_) {
    counts[static_cast<std::size_t>(e.label)]++;
  }
  return counts;
}

}  // namespace gdr
