#ifndef GDR_ML_RANDOM_FOREST_H_
#define GDR_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/example.h"
#include "util/result.h"
#include "util/rng.h"

namespace gdr {

struct RandomForestOptions {
  /// Committee size k; the paper uses WEKA's default k = 10.
  int num_trees = 10;
  /// Bootstrap sample size as a fraction of N (N' = N by Breiman's default).
  double bootstrap_fraction = 1.0;
  /// Per-split feature subsample M'; 0 means ⌈√M⌉ (the standard default).
  int feature_subsample = 0;
  /// Base-learner options (feature_subsample inside is overridden).
  DecisionTreeOptions tree;
  std::uint64_t seed = 1;
};

/// A bagged ensemble of decision trees (Breiman 2001) serving as the GDR
/// learning component's classifier *and* as the active-learning committee
/// (Section 4.2): each tree is one committee member, the ensemble
/// prediction is the majority vote, and the disagreement entropy of the
/// votes is the learning-benefit (uncertainty) score used to order updates
/// for the user.
class RandomForest {
 public:
  explicit RandomForest(RandomForestOptions options = {})
      : options_(options) {}

  /// (Re)trains the committee on `data`. Deterministic given options.seed.
  /// Fails on an empty training set.
  Status Train(const TrainingSet& data);

  bool trained() const { return !trees_.empty(); }
  int num_trees() const { return static_cast<int>(trees_.size()); }
  int num_classes() const { return num_classes_; }

  /// Majority vote over the committee (ties broken toward the smaller
  /// class index, deterministically).
  int Predict(const std::vector<double>& features) const;

  /// Per-class fraction of committee votes (sums to 1).
  std::vector<double> VoteFractions(const std::vector<double>& features) const;

  /// No-alloc variant: `out` is resized to num_classes and filled.
  /// Bit-identical to VoteFractions (same accumulation order: +1.0 per
  /// tree vote in tree order, one division at the end).
  void VoteFractionsInto(const std::vector<double>& features,
                         std::vector<double>* out) const;

  /// Batched committee evaluation over a row-major feature matrix:
  /// `features` holds `rows` examples of `stride` doubles each; `out` is
  /// resized to rows × num_classes (row-major) and filled with each row's
  /// vote fractions. Evaluated tree-at-a-time — every row descends tree 0,
  /// then every row descends tree 1, … — so one tree's flat node arrays
  /// stay hot across the whole batch instead of the whole forest being
  /// re-walked per row. Each row's accumulator still receives its +1.0
  /// votes in tree order and is divided once at the end, so every row's
  /// fractions are bit-identical to a per-row VoteFractions call.
  void VoteFractionsBatch(const double* features, std::size_t rows,
                          std::size_t stride, std::vector<double>* out) const;

  /// Committee vote of each tree, in tree order.
  std::vector<int> CommitteeVotes(const std::vector<double>& features) const;

  /// The paper's uncertainty score: entropy of the committee vote
  /// fractions with logarithm base = #classes, so the score is in [0, 1]
  /// (Section 4.2's worked example: votes {3/5, 1/5, 1/5} → 0.86).
  double Uncertainty(const std::vector<double>& features) const;

  /// Entropy of an arbitrary vote-fraction vector, same normalization.
  static double VoteEntropy(const std::vector<double>& fractions);

 private:
  RandomForestOptions options_;
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
};

}  // namespace gdr

#endif  // GDR_ML_RANDOM_FOREST_H_
