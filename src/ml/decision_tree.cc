#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace gdr {

double CountsEntropy(const std::vector<std::size_t>& counts) {
  const std::size_t total =
      std::accumulate(counts.begin(), counts.end(), std::size_t{0});
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

namespace {

// Weighted post-split entropy of a two-way partition.
double SplitEntropy(const std::vector<std::size_t>& left,
                    const std::vector<std::size_t>& right) {
  const std::size_t nl =
      std::accumulate(left.begin(), left.end(), std::size_t{0});
  const std::size_t nr =
      std::accumulate(right.begin(), right.end(), std::size_t{0});
  const std::size_t n = nl + nr;
  if (n == 0) return 0.0;
  return (static_cast<double>(nl) * CountsEntropy(left) +
          static_cast<double>(nr) * CountsEntropy(right)) /
         static_cast<double>(n);
}

struct SplitChoice {
  double gain = 0.0;
  std::int32_t feature = -1;
  bool categorical = false;
  double threshold = 0.0;
};

}  // namespace

Status DecisionTree::Train(const TrainingSet& data,
                           const std::vector<std::size_t>& indices,
                           const DecisionTreeOptions& options, Rng* rng) {
  if (indices.empty()) {
    return Status::InvalidArgument("cannot train a tree on zero examples");
  }
  if (data.schema().num_features() == 0) {
    return Status::InvalidArgument("feature schema is empty");
  }
  if (options.feature_subsample > 0 && rng == nullptr) {
    return Status::InvalidArgument(
        "feature subsampling requires an Rng");
  }
  nodes_.clear();
  num_classes_ = data.num_classes();
  std::vector<std::size_t> items = indices;
  Build(data, items, /*depth=*/0, options, rng);
  Flatten();
  return Status::OK();
}

void DecisionTree::Flatten() {
  const std::size_t n = nodes_.size();
  flat_feature_.resize(n);
  flat_categorical_.resize(n);
  flat_threshold_.resize(n);
  flat_left_.resize(n);
  flat_right_.resize(n);
  flat_majority_.resize(n);
  flat_dist_offset_.resize(n);
  dist_pool_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    flat_feature_[i] = node.feature;
    flat_categorical_[i] = node.categorical ? 1 : 0;
    flat_threshold_[i] = node.threshold;
    flat_left_[i] = node.left;
    flat_right_[i] = node.right;
    flat_majority_[i] = node.majority;
    if (node.feature < 0) {
      flat_dist_offset_[i] = static_cast<std::int32_t>(dist_pool_.size());
      dist_pool_.insert(dist_pool_.end(), node.distribution.begin(),
                        node.distribution.end());
    } else {
      flat_dist_offset_[i] = -1;
    }
  }
}

Status DecisionTree::Train(const TrainingSet& data,
                           const DecisionTreeOptions& options, Rng* rng) {
  std::vector<std::size_t> all(data.size());
  std::iota(all.begin(), all.end(), 0);
  return Train(data, all, options, rng);
}

std::int32_t DecisionTree::MakeLeaf(const TrainingSet& data,
                                    const std::vector<std::size_t>& items) {
  Node leaf;
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes_), 0);
  for (std::size_t i : items) {
    counts[static_cast<std::size_t>(data.example(i).label)]++;
  }
  leaf.distribution.resize(counts.size());
  std::size_t best = 0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    leaf.distribution[c] =
        static_cast<double>(counts[c]) / static_cast<double>(items.size());
    if (counts[c] > counts[best]) best = c;
  }
  leaf.majority = static_cast<std::int32_t>(best);
  nodes_.push_back(std::move(leaf));
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

std::int32_t DecisionTree::Build(const TrainingSet& data,
                                 std::vector<std::size_t>& items, int depth,
                                 const DecisionTreeOptions& options,
                                 Rng* rng) {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes_), 0);
  for (std::size_t i : items) {
    counts[static_cast<std::size_t>(data.example(i).label)]++;
  }
  const double parent_entropy = CountsEntropy(counts);

  const bool pure = std::count(counts.begin(), counts.end(), items.size()) > 0;
  if (pure || depth >= options.max_depth ||
      items.size() < static_cast<std::size_t>(options.min_samples_split)) {
    return MakeLeaf(data, items);
  }

  // Candidate features: all, or a random subset of M' (forest mode).
  const std::size_t num_features = data.schema().num_features();
  std::vector<std::size_t> candidates;
  if (options.feature_subsample > 0 &&
      static_cast<std::size_t>(options.feature_subsample) < num_features) {
    candidates = rng->SampleWithoutReplacement(
        num_features, static_cast<std::size_t>(options.feature_subsample));
    std::sort(candidates.begin(), candidates.end());  // determinism of ties
  } else {
    candidates.resize(num_features);
    std::iota(candidates.begin(), candidates.end(), 0);
  }

  SplitChoice best;
  for (std::size_t f : candidates) {
    if (data.schema().IsCategorical(f)) {
      // One-vs-rest on each value present in this node.
      std::map<double, std::vector<std::size_t>> per_value;
      for (std::size_t i : items) {
        auto& vc = per_value[data.example(i).features[f]];
        if (vc.empty()) vc.resize(static_cast<std::size_t>(num_classes_), 0);
        vc[static_cast<std::size_t>(data.example(i).label)]++;
      }
      if (per_value.size() < 2) continue;
      for (const auto& [value, value_counts] : per_value) {
        std::vector<std::size_t> rest(counts.size());
        for (std::size_t c = 0; c < counts.size(); ++c) {
          rest[c] = counts[c] - value_counts[c];
        }
        const double gain =
            parent_entropy - SplitEntropy(value_counts, rest);
        if (gain > best.gain) {
          best = {gain, static_cast<std::int32_t>(f), true, value};
        }
      }
    } else {
      // Numeric: sweep thresholds between distinct consecutive values.
      std::vector<std::pair<double, int>> sorted;
      sorted.reserve(items.size());
      for (std::size_t i : items) {
        sorted.emplace_back(data.example(i).features[f],
                            data.example(i).label);
      }
      std::sort(sorted.begin(), sorted.end());
      std::vector<std::size_t> left(counts.size(), 0);
      std::vector<std::size_t> right = counts;
      for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
        left[static_cast<std::size_t>(sorted[k].second)]++;
        right[static_cast<std::size_t>(sorted[k].second)]--;
        if (sorted[k].first == sorted[k + 1].first) continue;
        const double gain = parent_entropy - SplitEntropy(left, right);
        if (gain > best.gain) {
          const double threshold =
              sorted[k].first +
              (sorted[k + 1].first - sorted[k].first) / 2.0;
          best = {gain, static_cast<std::int32_t>(f), false, threshold};
        }
      }
    }
  }

  constexpr double kMinGain = 1e-12;
  if (best.feature < 0 || best.gain <= kMinGain) {
    return MakeLeaf(data, items);
  }

  std::vector<std::size_t> left_items;
  std::vector<std::size_t> right_items;
  for (std::size_t i : items) {
    const double x = data.example(i).features[static_cast<std::size_t>(
        best.feature)];
    const bool goes_left =
        best.categorical ? (x == best.threshold) : (x <= best.threshold);
    (goes_left ? left_items : right_items).push_back(i);
  }
  if (left_items.empty() || right_items.empty()) {
    return MakeLeaf(data, items);  // degenerate split (numeric duplicates)
  }
  items.clear();
  items.shrink_to_fit();

  const std::int32_t node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_index)].feature = best.feature;
  nodes_[static_cast<std::size_t>(node_index)].categorical = best.categorical;
  nodes_[static_cast<std::size_t>(node_index)].threshold = best.threshold;

  const std::int32_t left_index =
      Build(data, left_items, depth + 1, options, rng);
  const std::int32_t right_index =
      Build(data, right_items, depth + 1, options, rng);
  nodes_[static_cast<std::size_t>(node_index)].left = left_index;
  nodes_[static_cast<std::size_t>(node_index)].right = right_index;
  return node_index;
}

const DecisionTree::Node& DecisionTree::Descend(
    const std::vector<double>& features) const {
  const Node* node = &nodes_[0];
  while (node->feature >= 0) {
    const double x = features[static_cast<std::size_t>(node->feature)];
    const bool goes_left =
        node->categorical ? (x == node->threshold) : (x <= node->threshold);
    node = &nodes_[static_cast<std::size_t>(goes_left ? node->left
                                                      : node->right)];
  }
  return *node;
}

std::vector<double> DecisionTree::PredictDistribution(
    const std::vector<double>& features) const {
  return Descend(features).distribution;
}

void DecisionTree::PredictDistributionInto(const double* features,
                                           std::vector<double>* out) const {
  const std::size_t leaf = static_cast<std::size_t>(DescendFlat(features));
  const std::size_t offset =
      static_cast<std::size_t>(flat_dist_offset_[leaf]);
  out->assign(dist_pool_.begin() + static_cast<std::ptrdiff_t>(offset),
              dist_pool_.begin() +
                  static_cast<std::ptrdiff_t>(offset +
                                              static_cast<std::size_t>(
                                                  num_classes_)));
}

}  // namespace gdr
