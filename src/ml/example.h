#ifndef GDR_ML_EXAMPLE_H_
#define GDR_ML_EXAMPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace gdr {

/// Feature kinds supported by the learners. Categorical features hold
/// interned ids (compared only for equality); numeric features hold reals
/// (compared by threshold).
enum class FeatureType : std::uint8_t {
  kCategorical = 0,
  kNumeric = 1,
};

struct FeatureDesc {
  std::string name;
  FeatureType type = FeatureType::kCategorical;
};

/// Describes the feature vector layout shared by a training set and the
/// models trained on it.
class FeatureSchema {
 public:
  FeatureSchema() = default;
  explicit FeatureSchema(std::vector<FeatureDesc> features)
      : features_(std::move(features)) {}

  std::size_t num_features() const { return features_.size(); }
  const FeatureDesc& feature(std::size_t i) const { return features_[i]; }
  bool IsCategorical(std::size_t i) const {
    return features_[i].type == FeatureType::kCategorical;
  }

 private:
  std::vector<FeatureDesc> features_;
};

/// One labeled example. Feature values are stored uniformly as doubles;
/// categorical ids are small non-negative integers, exactly representable.
struct Example {
  std::vector<double> features;
  int label = 0;
};

/// A labeled training set with a fixed feature schema and class count.
/// Examples accumulate incrementally as user feedback arrives (Section 4.2,
/// "the newly labeled examples are added to the learner training dataset").
class TrainingSet {
 public:
  TrainingSet() = default;
  TrainingSet(FeatureSchema schema, int num_classes)
      : schema_(std::move(schema)), num_classes_(num_classes) {}

  /// Appends an example; fails on arity mismatch or label out of range.
  Status Add(Example example);

  const FeatureSchema& schema() const { return schema_; }
  int num_classes() const { return num_classes_; }
  std::size_t size() const { return examples_.size(); }
  bool empty() const { return examples_.empty(); }
  const Example& example(std::size_t i) const { return examples_[i]; }
  const std::vector<Example>& examples() const { return examples_; }

  /// Per-class example counts (size num_classes()).
  std::vector<std::size_t> ClassCounts() const;

 private:
  FeatureSchema schema_;
  int num_classes_ = 0;
  std::vector<Example> examples_;
};

}  // namespace gdr

#endif  // GDR_ML_EXAMPLE_H_
