// Checked parsing and hex framing in util/strings — the helpers behind
// every numeric flag, workload parameter, and wire-protocol field.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/strings.h"

namespace gdr {
namespace {

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(*ParseInt64("0", "x"), 0);
  EXPECT_EQ(*ParseInt64("42", "x"), 42);
  EXPECT_EQ(*ParseInt64("-7", "x"), -7);
  EXPECT_EQ(*ParseInt64("9223372036854775807", "x"),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(*ParseInt64("-9223372036854775808", "x"),
            std::numeric_limits<std::int64_t>::min());
}

TEST(ParseInt64Test, RejectsWhatAtollAccepts) {
  // Every one of these returns a number (usually truncated or zero) from
  // std::atoll; the checked parser refuses them all.
  for (const char* bad : {"", "12x", "x12", "1.5", "1 2", " 7", "7 ", "+",
                          "-", "--1", "0x10", "1e3"}) {
    const auto result = ParseInt64(bad, "flag");
    EXPECT_FALSE(result.ok()) << "'" << bad << "' parsed as "
                              << (result.ok() ? *result : 0);
  }
}

TEST(ParseInt64Test, RejectsOutOfRangeInsteadOfSaturating) {
  EXPECT_FALSE(ParseInt64("9223372036854775808", "x").ok());
  EXPECT_FALSE(ParseInt64("-9223372036854775809", "x").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999", "x").ok());
}

TEST(ParseInt64Test, ErrorNamesTheValue) {
  const auto result = ParseInt64("abc", "--rows");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("--rows"), std::string::npos);
  EXPECT_NE(result.status().message().find("abc"), std::string::npos);
}

TEST(ParseUint64Test, ParsesValidValues) {
  EXPECT_EQ(*ParseUint64("0", "x"), 0u);
  EXPECT_EQ(*ParseUint64("18446744073709551615", "x"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseUint64Test, RejectsNegativeInsteadOfWrapping) {
  // strtoull("-1") wraps to 18446744073709551615; the checked parser errors.
  EXPECT_FALSE(ParseUint64("-1", "x").ok());
  EXPECT_FALSE(ParseUint64("-0", "x").ok());
  EXPECT_FALSE(ParseUint64("18446744073709551616", "x").ok());
  EXPECT_FALSE(ParseUint64("", "x").ok());
  EXPECT_FALSE(ParseUint64("3.0", "x").ok());
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0", "x"), 0.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0.25", "x"), 0.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1.5e3", "x"), -1500.0);
}

TEST(ParseDoubleTest, RejectsJunk) {
  for (const char* bad : {"", "1.5x", "x", "1..2", "1 2", "--1.0"}) {
    EXPECT_FALSE(ParseDouble(bad, "flag").ok()) << "'" << bad << "'";
  }
}

TEST(HexTest, RoundTripsArbitraryBytes) {
  std::string bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<char>(i));
  const std::string hex = EncodeHex(bytes);
  EXPECT_EQ(hex.size(), 512u);
  std::string decoded;
  ASSERT_TRUE(DecodeHex(hex, &decoded));
  EXPECT_EQ(decoded, bytes);
}

TEST(HexTest, EmptyIsEmpty) {
  EXPECT_EQ(EncodeHex(""), "");
  std::string decoded = "sentinel";
  ASSERT_TRUE(DecodeHex("", &decoded));
  EXPECT_EQ(decoded, "");
}

TEST(HexTest, RejectsOddLengthAndNonHex) {
  std::string out;
  EXPECT_FALSE(DecodeHex("a", &out));
  EXPECT_FALSE(DecodeHex("abc", &out));
  EXPECT_FALSE(DecodeHex("zz", &out));
  EXPECT_FALSE(DecodeHex("0g", &out));
  EXPECT_FALSE(DecodeHex("a b ", &out));
}

TEST(SplitStringTest, SplitsPreservingEmptyPieces) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(Fnv1aTest, MatchesKnownVectorsAndIsStable) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
  // The hex form is fixed-width lowercase — it names cache directories.
  EXPECT_EQ(Fnv1a64Hex(""), "cbf29ce484222325");
  EXPECT_EQ(Fnv1a64Hex("foobar"), "85944171f73967e8");
  EXPECT_EQ(Fnv1a64Hex("foobar").size(), 16u);
  // Distinct inputs, distinct digests (sanity, not a collision proof).
  EXPECT_NE(Fnv1a64("dataset1:records=100"), Fnv1a64("dataset1:records=101"));
}

}  // namespace
}  // namespace gdr
