#include "ml/example.h"

#include <gtest/gtest.h>

namespace gdr {
namespace {

FeatureSchema TwoFeatureSchema() {
  return FeatureSchema({{"cat", FeatureType::kCategorical},
                        {"num", FeatureType::kNumeric}});
}

TEST(TrainingSetTest, AddValidatesArity) {
  TrainingSet set(TwoFeatureSchema(), 2);
  EXPECT_TRUE(set.Add({{1.0, 0.5}, 0}).ok());
  EXPECT_FALSE(set.Add({{1.0}, 0}).ok());
  EXPECT_FALSE(set.Add({{1.0, 2.0, 3.0}, 0}).ok());
}

TEST(TrainingSetTest, AddValidatesLabelRange) {
  TrainingSet set(TwoFeatureSchema(), 2);
  EXPECT_FALSE(set.Add({{1.0, 0.5}, -1}).ok());
  EXPECT_FALSE(set.Add({{1.0, 0.5}, 2}).ok());
  EXPECT_TRUE(set.Add({{1.0, 0.5}, 1}).ok());
}

TEST(TrainingSetTest, ClassCounts) {
  TrainingSet set(TwoFeatureSchema(), 3);
  ASSERT_TRUE(set.Add({{0.0, 0.0}, 0}).ok());
  ASSERT_TRUE(set.Add({{0.0, 0.0}, 2}).ok());
  ASSERT_TRUE(set.Add({{0.0, 0.0}, 2}).ok());
  EXPECT_EQ(set.ClassCounts(), (std::vector<std::size_t>{1, 0, 2}));
  EXPECT_EQ(set.size(), 3u);
}

TEST(FeatureSchemaTest, TypePredicates) {
  FeatureSchema schema = TwoFeatureSchema();
  EXPECT_TRUE(schema.IsCategorical(0));
  EXPECT_FALSE(schema.IsCategorical(1));
  EXPECT_EQ(schema.feature(0).name, "cat");
  EXPECT_EQ(schema.num_features(), 2u);
}

}  // namespace
}  // namespace gdr
