#include "sim/oracle.h"

#include <gtest/gtest.h>

namespace gdr {
namespace {

class OracleFixture : public ::testing::Test {
 protected:
  OracleFixture()
      : schema_(*Schema::Make({"CT", "ZIP"})), truth_(schema_),
        dirty_(schema_) {
    EXPECT_TRUE(truth_.AppendRow({"Michigan City", "46360"}).ok());
    EXPECT_TRUE(truth_.AppendRow({"Westville", "46391"}).ok());
    dirty_ = truth_;
    dirty_.Set(0, 0, "Michigan Cty");  // cell (0, CT) is wrong
  }

  Update Suggest(RowId row, AttrId attr, const char* value) {
    return Update{row, attr, dirty_.InternValue(attr, value), 0.5};
  }

  Schema schema_;
  Table truth_;
  Table dirty_;
};

TEST_F(OracleFixture, ConfirmsCorrectSuggestion) {
  UserOracle oracle(&truth_);
  EXPECT_EQ(oracle.GetFeedback(dirty_, Suggest(0, 0, "Michigan City")),
            Feedback::kConfirm);
}

TEST_F(OracleFixture, RejectsWrongSuggestionForWrongCell) {
  UserOracle oracle(&truth_);
  EXPECT_EQ(oracle.GetFeedback(dirty_, Suggest(0, 0, "Fort Wayne")),
            Feedback::kReject);
}

TEST_F(OracleFixture, RetainsWhenCurrentValueIsCorrect) {
  UserOracle oracle(&truth_);
  EXPECT_EQ(oracle.GetFeedback(dirty_, Suggest(1, 0, "Fort Wayne")),
            Feedback::kRetain);
}

TEST_F(OracleFixture, CountsFeedback) {
  UserOracle oracle(&truth_);
  oracle.GetFeedback(dirty_, Suggest(0, 0, "Michigan City"));
  oracle.GetFeedback(dirty_, Suggest(1, 0, "Fort Wayne"));
  EXPECT_EQ(oracle.feedback_given(), 2u);
}

TEST_F(OracleFixture, NeverVolunteersByDefault) {
  UserOracle oracle(&truth_);
  EXPECT_FALSE(
      oracle.SuggestValue(dirty_, Suggest(0, 0, "Fort Wayne")).has_value());
  EXPECT_EQ(oracle.values_volunteered(), 0u);
}

TEST_F(OracleFixture, AlwaysVolunteersAtProbabilityOne) {
  UserOracleOptions options;
  options.volunteer_probability = 1.0;
  UserOracle oracle(&truth_, options);
  const auto value = oracle.SuggestValue(dirty_, Suggest(0, 0, "Fort Wayne"));
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "Michigan City");
  EXPECT_EQ(oracle.values_volunteered(), 1u);
}

TEST_F(OracleFixture, VolunteerRateApproximatesProbability) {
  UserOracleOptions options;
  options.volunteer_probability = 0.5;
  options.seed = 9;
  UserOracle oracle(&truth_, options);
  int volunteered = 0;
  for (int i = 0; i < 1000; ++i) {
    volunteered +=
        oracle.SuggestValue(dirty_, Suggest(0, 0, "Fort Wayne")).has_value()
            ? 1
            : 0;
  }
  EXPECT_NEAR(volunteered / 1000.0, 0.5, 0.06);
}

}  // namespace
}  // namespace gdr
