// ShardPlan: split math (sizes differ by at most one, ranges contiguous),
// boundary shapes (empty instance, more shards than rows, range edges),
// initial-row and append-row ownership, batch routing, and shard Dataset
// materialization (content, shared rules, corrupted-tuple counts).
#include "plane/shard_plan.h"

#include <gtest/gtest.h>

#include "workload/registry.h"

namespace gdr::plane {
namespace {

void ExpectPartition(const ShardPlan& plan, std::size_t num_rows,
                     std::size_t num_shards) {
  ASSERT_EQ(plan.num_shards(), num_shards);
  EXPECT_EQ(plan.num_rows(), num_rows);
  std::size_t cursor = 0;
  std::size_t min_size = num_rows + 1, max_size = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const ShardRange& range = plan.range(s);
    EXPECT_EQ(range.begin, cursor) << "shard " << s;
    cursor = range.end;
    min_size = std::min(min_size, range.size());
    max_size = std::max(max_size, range.size());
  }
  EXPECT_EQ(cursor, num_rows);
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ShardPlanTest, SplitsEvenly) {
  auto plan = ShardPlan::Split(12, 4);
  ASSERT_TRUE(plan.ok());
  ExpectPartition(*plan, 12, 4);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(plan->range(s).size(), 3u);
}

TEST(ShardPlanTest, FrontShardsCarryTheRemainder) {
  auto plan = ShardPlan::Split(10, 4);  // 3,3,2,2
  ASSERT_TRUE(plan.ok());
  ExpectPartition(*plan, 10, 4);
  EXPECT_EQ(plan->range(0).size(), 3u);
  EXPECT_EQ(plan->range(1).size(), 3u);
  EXPECT_EQ(plan->range(2).size(), 2u);
  EXPECT_EQ(plan->range(3).size(), 2u);
}

TEST(ShardPlanTest, ZeroShardsIsAnError) {
  EXPECT_EQ(ShardPlan::Split(10, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardPlanTest, MoreShardsThanRowsLeavesSurplusEmpty) {
  auto plan = ShardPlan::Split(3, 5);
  ASSERT_TRUE(plan.ok());
  ExpectPartition(*plan, 3, 5);
  EXPECT_EQ(plan->range(2).size(), 1u);
  EXPECT_TRUE(plan->range(3).empty());
  EXPECT_TRUE(plan->range(4).empty());
}

TEST(ShardPlanTest, EmptyInstanceYieldsAllEmptyShards) {
  auto plan = ShardPlan::Split(0, 3);
  ASSERT_TRUE(plan.ok());
  ExpectPartition(*plan, 0, 3);
  for (std::size_t s = 0; s < 3; ++s) EXPECT_TRUE(plan->range(s).empty());
}

TEST(ShardPlanTest, OwnerOfMatchesRangesIncludingEdges) {
  for (const auto [rows, shards] :
       {std::pair<std::size_t, std::size_t>{10, 4},
        {12, 4},
        {7, 3},
        {1, 1},
        {100, 7}}) {
    auto plan = ShardPlan::Split(rows, shards);
    ASSERT_TRUE(plan.ok());
    for (std::size_t row = 0; row < rows; ++row) {
      const std::size_t owner = plan->OwnerOf(row);
      ASSERT_LT(owner, shards);
      EXPECT_GE(row, plan->range(owner).begin)
          << rows << "/" << shards << " row " << row;
      EXPECT_LT(row, plan->range(owner).end)
          << rows << "/" << shards << " row " << row;
      // Edge rows belong to exactly one shard: the previous range ends
      // where this one begins.
      if (row == plan->range(owner).begin && owner > 0) {
        EXPECT_EQ(plan->range(owner - 1).end, row);
      }
    }
  }
}

TEST(ShardPlanTest, AppendsRouteRoundRobin) {
  auto plan = ShardPlan::Split(10, 3);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->OwnerOfAppend(0), 0u);
  EXPECT_EQ(plan->OwnerOfAppend(1), 1u);
  EXPECT_EQ(plan->OwnerOfAppend(2), 2u);
  EXPECT_EQ(plan->OwnerOfAppend(3), 0u);
  // Empty initial shards still receive appends.
  auto sparse = ShardPlan::Split(1, 3);
  ASSERT_TRUE(sparse.ok());
  EXPECT_EQ(sparse->OwnerOfAppend(1), 1u);
  EXPECT_EQ(sparse->OwnerOfAppend(2), 2u);
}

TEST(ShardPlanTest, RouteAppendsPartitionsPreservingOrder) {
  auto plan = ShardPlan::Split(6, 2);
  ASSERT_TRUE(plan.ok());
  const std::vector<std::vector<std::string>> rows = {
      {"a"}, {"b"}, {"c"}, {"d"}, {"e"}};
  // Offset 1: indexes 1..5 -> shards 1,0,1,0,1.
  const auto routed = plan->RouteAppends(rows, /*appends_so_far=*/1);
  ASSERT_EQ(routed.size(), 2u);
  ASSERT_EQ(routed[0].size(), 2u);
  EXPECT_EQ(routed[0][0][0], "b");
  EXPECT_EQ(routed[0][1][0], "d");
  ASSERT_EQ(routed[1].size(), 3u);
  EXPECT_EQ(routed[1][0][0], "a");
  EXPECT_EQ(routed[1][1][0], "c");
  EXPECT_EQ(routed[1][2][0], "e");
}

TEST(ShardPlanTest, EveryAppendLandsInExactlyOneShard) {
  auto plan = ShardPlan::Split(10, 4);
  ASSERT_TRUE(plan.ok());
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 11; ++i) rows.push_back({std::to_string(i)});
  const auto routed = plan->RouteAppends(rows, /*appends_so_far=*/3);
  std::size_t total = 0;
  for (const auto& shard_rows : routed) total += shard_rows.size();
  EXPECT_EQ(total, rows.size());
}

// ------------------------------------------------- MakeShardDataset --

Dataset SmallDataset() {
  return *WorkloadRegistry::Global().Resolve("dataset1:records=200,seed=9");
}

TEST(MakeShardDatasetTest, SlicesContentAndSharesRules) {
  const Dataset full = SmallDataset();
  auto plan = ShardPlan::Split(full.dirty.num_rows(), 3);
  ASSERT_TRUE(plan.ok());
  std::size_t corrupted_total = 0;
  for (std::size_t s = 0; s < plan->num_shards(); ++s) {
    const ShardRange& range = plan->range(s);
    auto shard = MakeShardDataset(full, range, "slice");
    ASSERT_TRUE(shard.ok());
    EXPECT_EQ(shard->name, "slice");
    EXPECT_EQ(shard->clean.num_rows(), range.size());
    EXPECT_EQ(shard->dirty.num_rows(), range.size());
    EXPECT_EQ(shard->rules.size(), full.rules.size());
    for (std::size_t r = 0; r < range.size(); ++r) {
      for (std::size_t a = 0; a < full.clean.num_attrs(); ++a) {
        const RowId local = static_cast<RowId>(r);
        const RowId global = static_cast<RowId>(range.begin + r);
        const AttrId attr = static_cast<AttrId>(a);
        EXPECT_EQ(shard->clean.at(local, attr), full.clean.at(global, attr));
        EXPECT_EQ(shard->dirty.at(local, attr), full.dirty.at(global, attr));
      }
    }
    corrupted_total += shard->corrupted_tuples;
  }
  // Corruption counts partition with the rows.
  EXPECT_EQ(corrupted_total, full.corrupted_tuples);
}

TEST(MakeShardDatasetTest, EmptyRangeYieldsEmptyDataset) {
  const Dataset full = SmallDataset();
  auto shard = MakeShardDataset(full, ShardRange{10, 10}, "empty");
  ASSERT_TRUE(shard.ok());
  EXPECT_EQ(shard->clean.num_rows(), 0u);
  EXPECT_EQ(shard->dirty.num_rows(), 0u);
  EXPECT_EQ(shard->corrupted_tuples, 0u);
}

TEST(MakeShardDatasetTest, RejectsOutOfRangeSlices) {
  const Dataset full = SmallDataset();
  EXPECT_EQ(MakeShardDataset(full, ShardRange{0, full.dirty.num_rows() + 1},
                             "over")
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(MakeShardDataset(full, ShardRange{5, 4}, "inverted")
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace gdr::plane
