#include "core/grouping.h"

#include <gtest/gtest.h>

namespace gdr {
namespace {

TEST(GroupingTest, GroupsByAttributeAndValue) {
  UpdatePool pool;
  pool.Upsert({/*row=*/0, /*attr=*/1, /*value=*/7, /*score=*/0.9});
  pool.Upsert({/*row=*/1, /*attr=*/1, /*value=*/7, /*score=*/0.8});
  pool.Upsert({/*row=*/2, /*attr=*/1, /*value=*/9, /*score=*/0.7});
  pool.Upsert({/*row=*/3, /*attr=*/2, /*value=*/7, /*score=*/0.6});

  const std::vector<UpdateGroup> groups = GroupUpdates(pool);
  ASSERT_EQ(groups.size(), 3u);
  // Deterministic (attr, value) order.
  EXPECT_EQ(groups[0].attr, 1);
  EXPECT_EQ(groups[0].value, 7);
  EXPECT_EQ(groups[0].size(), 2u);
  EXPECT_EQ(groups[1].attr, 1);
  EXPECT_EQ(groups[1].value, 9);
  EXPECT_EQ(groups[2].attr, 2);
  // Updates within a group are row-ordered.
  EXPECT_EQ(groups[0].updates[0].row, 0);
  EXPECT_EQ(groups[0].updates[1].row, 1);
}

TEST(GroupingTest, EmptyPoolYieldsNoGroups) {
  UpdatePool pool;
  EXPECT_TRUE(GroupUpdates(pool).empty());
}

TEST(GroupingTest, UpsertReplacesCellSuggestion) {
  UpdatePool pool;
  pool.Upsert({0, 1, 7, 0.9});
  pool.Upsert({0, 1, 8, 0.5});  // same cell, new value
  const std::vector<UpdateGroup> groups = GroupUpdates(pool);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].value, 8);
}

TEST(GroupingTest, ToStringDescribesGroup) {
  Schema schema = *Schema::Make({"CT"});
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({"Fort Wayne"}).ok());
  const ValueId v = table.InternValue(0, "Michigan City");
  UpdateGroup group;
  group.attr = 0;
  group.value = v;
  group.updates = {{0, 0, v, 1.0}};
  EXPECT_EQ(group.ToString(table), "CT := 'Michigan City' (1 updates)");
}

TEST(UpdatePoolTest, GetRemoveContains) {
  UpdatePool pool;
  const Update u{3, 2, 5, 0.4};
  pool.Upsert(u);
  EXPECT_TRUE(pool.Contains(u.cell()));
  auto got = pool.Get(u.cell());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, u);
  EXPECT_TRUE(pool.Remove(u.cell()));
  EXPECT_FALSE(pool.Remove(u.cell()));
  EXPECT_FALSE(pool.Get(u.cell()).has_value());
  EXPECT_TRUE(pool.empty());
}

TEST(UpdatePoolTest, AllIsDeterministicallyOrdered) {
  UpdatePool pool;
  pool.Upsert({5, 0, 1, 0.1});
  pool.Upsert({1, 2, 1, 0.1});
  pool.Upsert({1, 0, 1, 0.1});
  const std::vector<Update> all = pool.All();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].row, 1);
  EXPECT_EQ(all[0].attr, 0);
  EXPECT_EQ(all[1].row, 1);
  EXPECT_EQ(all[1].attr, 2);
  EXPECT_EQ(all[2].row, 5);
}

}  // namespace
}  // namespace gdr
