#include "sim/experiment.h"

#include <sstream>

#include <gtest/gtest.h>

#include "workload/registry.h"

namespace gdr {
namespace {

Dataset TinyDataset() {
  return *WorkloadRegistry::Global().Resolve("dataset1:records=600,seed=33");
}

TEST(ExperimentTest, RunsAndReportsCurve) {
  Dataset dataset = TinyDataset();
  ExperimentConfig config;
  config.strategy = Strategy::kGdrNoLearning;
  config.feedback_budget = 100;
  config.sample_every = 10;
  auto result = RunStrategyExperiment(dataset, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->strategy_name, "GDR-NoLearning");
  ASSERT_GE(result->curve.size(), 2u);
  EXPECT_EQ(result->curve.front().feedback, 0u);
  EXPECT_GT(result->initial_loss, 0.0);
  // Curve feedback counts are non-decreasing.
  for (std::size_t i = 1; i < result->curve.size(); ++i) {
    EXPECT_GE(result->curve[i].feedback, result->curve[i - 1].feedback);
  }
  EXPECT_LE(result->stats.user_feedback, 100u);
}

TEST(ExperimentTest, DoesNotMutateDataset) {
  Dataset dataset = TinyDataset();
  const Table dirty_before = dataset.dirty;
  ExperimentConfig config;
  config.feedback_budget = 50;
  ASSERT_TRUE(RunStrategyExperiment(dataset, config).ok());
  EXPECT_EQ(*dataset.dirty.CountDifferingCells(dirty_before), 0u);
}

TEST(ExperimentTest, FinalImprovementMatchesLossDrop) {
  Dataset dataset = TinyDataset();
  ExperimentConfig config;
  config.feedback_budget = 120;
  auto result = RunStrategyExperiment(dataset, config);
  ASSERT_TRUE(result.ok());
  const double expected =
      100.0 * (result->initial_loss - result->final_loss) /
      result->initial_loss;
  EXPECT_NEAR(result->final_improvement_pct, expected, 1e-9);
}

TEST(ExperimentTest, HeuristicBaselineRuns) {
  Dataset dataset = TinyDataset();
  auto result = RunHeuristicExperiment(dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->strategy_name, "Automatic-Heuristic");
  EXPECT_EQ(result->stats.user_feedback, 0u);  // no user involved
  EXPECT_GT(result->final_improvement_pct, 0.0);
  EXPECT_GT(result->accuracy.updated_cells, 0u);
}

TEST(ExperimentTest, DeterministicPerSeed) {
  Dataset dataset = TinyDataset();
  ExperimentConfig config;
  config.feedback_budget = 80;
  config.seed = 5;
  auto a = RunStrategyExperiment(dataset, config);
  auto b = RunStrategyExperiment(dataset, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.user_feedback, b->stats.user_feedback);
  EXPECT_DOUBLE_EQ(a->final_loss, b->final_loss);
  EXPECT_DOUBLE_EQ(a->accuracy.Precision(), b->accuracy.Precision());
}

TEST(ExperimentTest, FormatCurveNormalizes) {
  std::vector<CurvePoint> curve = {{0, 0.0, 1.0}, {50, 40.0, 0.6}};
  const std::string text = FormatCurve(curve, 100.0);
  EXPECT_NE(text.find("50\t40"), std::string::npos);
  // Zero denominator is safe.
  EXPECT_FALSE(FormatCurve(curve, 0.0).empty());
}

TEST(ExperimentTest, FormatCurveEmptyCurveIsEmptyString) {
  EXPECT_EQ(FormatCurve({}, 100.0), "");
  EXPECT_EQ(FormatCurve({}, 0.0), "");
}

TEST(ExperimentTest, FormatCurveDegenerateDenominatorsClampToZeroPct) {
  // A zero or negative denominator (e.g. a strategy that needed no
  // feedback at all) must not divide: every x becomes 0, y is preserved.
  const std::vector<CurvePoint> curve = {{0, 0.0, 1.0}, {25, 80.0, 0.2}};
  for (double denominator : {0.0, -3.5}) {
    const std::string text = FormatCurve(curve, denominator);
    std::istringstream lines(text);
    std::string line;
    std::size_t rows = 0;
    while (std::getline(lines, line)) {
      EXPECT_EQ(line.substr(0, 2), "0\t") << line;
      ++rows;
    }
    EXPECT_EQ(rows, curve.size());
  }
  EXPECT_NE(FormatCurve(curve, 0.0).find("80"), std::string::npos);
}

TEST(ExperimentTest, FormatCurveSinglePoint) {
  const std::vector<CurvePoint> curve = {{10, 55.5, 0.4}};
  EXPECT_EQ(FormatCurve(curve, 20.0), "50\t55.5\n");
}

TEST(ExperimentTest, PhaseTimingsArePopulated) {
  Dataset dataset = TinyDataset();
  ExperimentConfig config;
  config.strategy = Strategy::kGdrNoLearning;
  config.feedback_budget = 60;
  auto result = RunStrategyExperiment(dataset, config);
  ASSERT_TRUE(result.ok());
  const GdrTimings& timings = result->stats.timings;
  EXPECT_GT(timings.init_seconds, 0.0);
  EXPECT_GT(timings.ranking_seconds, 0.0);  // VOI strategies rank each round
  EXPECT_GT(timings.session_seconds, 0.0);
  EXPECT_GT(timings.total_seconds, 0.0);
  // Run() contains the ranking and session phases.
  EXPECT_GE(timings.total_seconds,
            timings.ranking_seconds + timings.session_seconds);
  // The experiment wall clock wraps Initialize() + Run().
  EXPECT_GT(result->wall_seconds, 0.0);
  EXPECT_GE(result->wall_seconds, timings.total_seconds);
}

TEST(ExperimentTest, HeuristicReportsWallClock) {
  Dataset dataset = TinyDataset();
  auto result = RunHeuristicExperiment(dataset);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->wall_seconds, 0.0);
}

TEST(ExperimentTest, WorksOnDataset2) {
  Dataset dataset =
      *WorkloadRegistry::Global().Resolve("dataset2:records=800,seed=44");
  ExperimentConfig config;
  config.strategy = Strategy::kGdr;
  config.feedback_budget = 150;
  auto result = RunStrategyExperiment(dataset, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_improvement_pct, 0.0);
}

}  // namespace
}  // namespace gdr
