#include "core/gdr.h"

#include <gtest/gtest.h>

#include "core/quality.h"
#include "sim/oracle.h"
#include "workload/registry.h"

namespace gdr {
namespace {

Dataset SmallDataset() {
  return *WorkloadRegistry::Global().Resolve("dataset1:records=800,seed=21");
}

TEST(GdrEngineTest, RunRequiresInitialize) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean);
  GdrEngine engine(&working, &dataset.rules, &oracle);
  EXPECT_EQ(engine.Run().code(), StatusCode::kFailedPrecondition);
}

TEST(GdrEngineTest, InitializeIsSingleShot) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean);
  GdrEngine engine(&working, &dataset.rules, &oracle);
  ASSERT_TRUE(engine.Initialize().ok());
  EXPECT_EQ(engine.Initialize().code(), StatusCode::kFailedPrecondition);
}

TEST(GdrEngineTest, InitializeReportsDirtyCountAndWeights) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean);
  GdrEngine engine(&working, &dataset.rules, &oracle);
  ASSERT_TRUE(engine.Initialize().ok());
  EXPECT_GT(engine.stats().initial_dirty, 0u);
  EXPECT_EQ(engine.rule_weights().size(), dataset.rules.size());
  for (double w : engine.rule_weights()) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
  EXPECT_FALSE(engine.pool().empty());
}

TEST(GdrEngineTest, RespectsFeedbackBudget) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean);
  GdrOptions options;
  options.feedback_budget = 60;
  GdrEngine engine(&working, &dataset.rules, &oracle, options);
  ASSERT_TRUE(engine.Initialize().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_LE(engine.stats().user_feedback, 60u);
}

TEST(GdrEngineTest, StatsAreInternallyConsistent) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean);
  GdrOptions options;
  options.feedback_budget = 150;
  GdrEngine engine(&working, &dataset.rules, &oracle, options);
  ASSERT_TRUE(engine.Initialize().ok());
  ASSERT_TRUE(engine.Run().ok());
  const GdrStats& stats = engine.stats();
  EXPECT_EQ(stats.user_feedback,
            stats.user_confirms + stats.user_rejects + stats.user_retains);
  EXPECT_GE(stats.learner_decisions, stats.learner_confirms);
  EXPECT_EQ(stats.user_feedback, oracle.feedback_given());
}

TEST(GdrEngineTest, CallbackSeesMonotoneFeedbackCounts) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean);
  GdrOptions options;
  options.feedback_budget = 100;
  GdrEngine engine(&working, &dataset.rules, &oracle, options);
  ASSERT_TRUE(engine.Initialize().ok());
  std::size_t last = 0;
  ASSERT_TRUE(engine
                  .Run([&last](const GdrEngine&, std::size_t feedback) {
                    EXPECT_GE(feedback, last);
                    last = feedback;
                  })
                  .ok());
  EXPECT_EQ(last, engine.stats().user_feedback);
}

TEST(GdrEngineTest, QualityImprovesUnderOracle) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean);
  GdrOptions options;
  options.feedback_budget = 300;
  GdrEngine engine(&working, &dataset.rules, &oracle, options);
  ASSERT_TRUE(engine.Initialize().ok());
  QualityEvaluator evaluator(dataset.clean, &dataset.rules,
                             engine.rule_weights());
  const double initial = evaluator.Loss(engine.index());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_LT(evaluator.Loss(engine.index()), initial);
}

TEST(GdrEngineTest, DeterministicForSameSeed) {
  Dataset dataset = SmallDataset();
  GdrOptions options;
  options.feedback_budget = 120;
  options.seed = 77;

  auto run = [&](Table* working) {
    UserOracle oracle(&dataset.clean);
    GdrEngine engine(working, &dataset.rules, &oracle, options);
    EXPECT_TRUE(engine.Initialize().ok());
    EXPECT_TRUE(engine.Run().ok());
    return engine.stats();
  };
  Table wa = dataset.dirty;
  Table wb = dataset.dirty;
  const GdrStats sa = run(&wa);
  const GdrStats sb = run(&wb);
  EXPECT_EQ(sa.user_feedback, sb.user_feedback);
  EXPECT_EQ(sa.user_confirms, sb.user_confirms);
  EXPECT_EQ(sa.learner_decisions, sb.learner_decisions);
  EXPECT_EQ(*wa.CountDifferingCells(wb), 0u);
}

TEST(GdrEngineTest, NoLearningNeverUsesLearner) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean);
  GdrOptions options;
  options.strategy = Strategy::kGdrNoLearning;
  options.feedback_budget = 200;
  GdrEngine engine(&working, &dataset.rules, &oracle, options);
  ASSERT_TRUE(engine.Initialize().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.stats().learner_decisions, 0u);
}

TEST(GdrEngineTest, UserOnlyStrategiesApplyOnlyConfirmedValues) {
  // With a ground-truth oracle and no learner, every applied change must
  // be correct: precision 1.0 by construction.
  Dataset dataset = SmallDataset();
  for (Strategy strategy : {Strategy::kGdrNoLearning, Strategy::kGreedy,
                            Strategy::kRandomRanking}) {
    Table working = dataset.dirty;
    UserOracle oracle(&dataset.clean);
    GdrOptions options;
    options.strategy = strategy;
    options.feedback_budget = 150;
    GdrEngine engine(&working, &dataset.rules, &oracle, options);
    ASSERT_TRUE(engine.Initialize().ok());
    ASSERT_TRUE(engine.Run().ok());
    auto acc = ComputeRepairAccuracy(dataset.dirty, working, dataset.clean);
    ASSERT_TRUE(acc.ok());
    EXPECT_DOUBLE_EQ(acc->Precision(), 1.0) << StrategyName(strategy);
  }
}

TEST(GdrEngineTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(Strategy::kGdr), "GDR");
  EXPECT_STREQ(StrategyName(Strategy::kGdrSLearning), "GDR-S-Learning");
  EXPECT_STREQ(StrategyName(Strategy::kGdrNoLearning), "GDR-NoLearning");
  EXPECT_STREQ(StrategyName(Strategy::kActiveLearning), "Active-Learning");
  EXPECT_STREQ(StrategyName(Strategy::kGreedy), "Greedy");
  EXPECT_STREQ(StrategyName(Strategy::kRandomRanking), "Random");
}

TEST(GdrEngineTest, StrategyNamesRoundTripThroughParser) {
  for (Strategy strategy :
       {Strategy::kGdr, Strategy::kGdrSLearning, Strategy::kGdrNoLearning,
        Strategy::kActiveLearning, Strategy::kGreedy,
        Strategy::kRandomRanking}) {
    auto parsed = StrategyFromName(StrategyName(strategy));
    ASSERT_TRUE(parsed.ok()) << StrategyName(strategy);
    EXPECT_EQ(*parsed, strategy);
  }
}

TEST(GdrEngineTest, StrategyFromNameRejectsUnknownNames) {
  for (const char* bad : {"", "gdr", "GDR ", "Passive", "random"}) {
    auto parsed = StrategyFromName(bad);
    ASSERT_FALSE(parsed.ok()) << "'" << bad << "'";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    // The error lists the accepted spellings, so a REPL user can recover.
    EXPECT_NE(parsed.status().message().find("GDR-S-Learning"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace gdr
