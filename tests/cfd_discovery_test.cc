#include "sim/cfd_discovery.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gdr {
namespace {

TEST(CfdDiscoveryTest, FindsPlantedDependency) {
  Schema schema = *Schema::Make({"occupation", "workclass"});
  Table table(schema);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(table.AppendRow({"Sales", "Private"}).ok());
    ASSERT_TRUE(table.AppendRow({"Adm-clerical", "Government"}).ok());
  }
  auto rules = DiscoverConstantCfds(table, {0, 1}, {});
  ASSERT_TRUE(rules.ok());
  // Both directions are deterministic here: 4 rules total.
  EXPECT_EQ(rules->size(), 4u);
  bool found = false;
  for (std::size_t i = 0; i < rules->size(); ++i) {
    const Cfd& rule = rules->rule(static_cast<RuleId>(i));
    if (rule.lhs()[0].attr == 0 && *rule.lhs()[0].constant == "Sales") {
      EXPECT_EQ(*rule.rhs().constant, "Private");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CfdDiscoveryTest, SupportThresholdFiltersRareValues) {
  Schema schema = *Schema::Make({"A", "B"});
  Table table(schema);
  for (int i = 0; i < 99; ++i) {
    ASSERT_TRUE(table.AppendRow({"common", "x"}).ok());
  }
  ASSERT_TRUE(table.AppendRow({"rare", "y"}).ok());
  CfdDiscoveryOptions options;
  options.min_support = 0.05;  // "rare" has 1% support
  auto rules = DiscoverConstantCfds(table, {0, 1}, options);
  ASSERT_TRUE(rules.ok());
  for (std::size_t i = 0; i < rules->size(); ++i) {
    EXPECT_NE(*rules->rule(static_cast<RuleId>(i)).lhs()[0].constant, "rare");
  }
}

TEST(CfdDiscoveryTest, ConfidenceThresholdToleratesNoise) {
  Schema schema = *Schema::Make({"A", "B"});
  Table table(schema);
  // 90% of "a" tuples agree on "b1" — discovered at confidence 0.85,
  // rejected at 0.95.
  for (int i = 0; i < 90; ++i) ASSERT_TRUE(table.AppendRow({"a", "b1"}).ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(table.AppendRow({"a", "b2"}).ok());

  CfdDiscoveryOptions loose;
  loose.min_confidence = 0.85;
  auto with_loose = DiscoverConstantCfds(table, {0, 1}, loose);
  ASSERT_TRUE(with_loose.ok());
  bool found = false;
  for (std::size_t i = 0; i < with_loose->size(); ++i) {
    const Cfd& rule = with_loose->rule(static_cast<RuleId>(i));
    if (rule.lhs()[0].attr == 0 && rule.rhs().attr == 1) {
      EXPECT_EQ(*rule.rhs().constant, "b1");
      found = true;
    }
  }
  EXPECT_TRUE(found);

  CfdDiscoveryOptions strict;
  strict.min_confidence = 0.95;
  auto with_strict = DiscoverConstantCfds(table, {0, 1}, strict);
  ASSERT_TRUE(with_strict.ok());
  for (std::size_t i = 0; i < with_strict->size(); ++i) {
    const Cfd& rule = with_strict->rule(static_cast<RuleId>(i));
    EXPECT_FALSE(rule.lhs()[0].attr == 0 && rule.rhs().attr == 1);
  }
}

TEST(CfdDiscoveryTest, NoRulesFromIndependentAttributes) {
  Schema schema = *Schema::Make({"A", "B"});
  Table table(schema);
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(table
                    .AppendRow({"a" + std::to_string(rng.NextBounded(4)),
                                "b" + std::to_string(rng.NextBounded(4))})
                    .ok());
  }
  auto rules = DiscoverConstantCfds(table, {0, 1}, {});
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 0u);
}

TEST(CfdDiscoveryTest, ValidatesOptions) {
  Schema schema = *Schema::Make({"A", "B"});
  Table table(schema);
  CfdDiscoveryOptions bad;
  bad.min_support = 0.0;
  EXPECT_FALSE(DiscoverConstantCfds(table, {0, 1}, bad).ok());
  bad = {};
  bad.min_confidence = 1.5;
  EXPECT_FALSE(DiscoverConstantCfds(table, {0, 1}, bad).ok());
}

TEST(CfdDiscoveryTest, EmptyTableYieldsNoRules) {
  Schema schema = *Schema::Make({"A", "B"});
  Table table(schema);
  auto rules = DiscoverConstantCfds(table, {0, 1}, {});
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 0u);
}

TEST(FdDiscoveryTest, FindsPlantedFunctionalDependency) {
  Schema schema = *Schema::Make({"STR", "CT", "ZIP"});
  Table table(schema);
  const char* streets[] = {"Main St", "Oak Ave", "Elm Rd"};
  const char* cities[] = {"Fort Wayne", "Westville"};
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const int s = static_cast<int>(rng.NextBounded(3));
    const int c = static_cast<int>(rng.NextBounded(2));
    // zip is a function of (street, city).
    ASSERT_TRUE(table
                    .AppendRow({streets[s], cities[c],
                                "4" + std::to_string(1000 + s * 10 + c)})
                    .ok());
  }
  auto rules = DiscoverVariableCfds(table, {0, 1, 2}, {});
  ASSERT_TRUE(rules.ok());
  bool found = false;
  for (std::size_t i = 0; i < rules->size(); ++i) {
    const Cfd& rule = rules->rule(static_cast<RuleId>(i));
    if (rule.IsVariable() && rule.rhs().attr == 2 &&
        rule.lhs().size() == 2) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "expected STR, CT -> ZIP to be discovered";
}

TEST(FdDiscoveryTest, SingleAttributeFdPreferredByMinimality) {
  Schema schema = *Schema::Make({"A", "B", "C"});
  Table table(schema);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const int a = static_cast<int>(rng.NextBounded(4));
    // b = f(a); c independent.
    ASSERT_TRUE(table
                    .AppendRow({"a" + std::to_string(a),
                                "b" + std::to_string(a % 3),
                                "c" + std::to_string(rng.NextBounded(5))})
                    .ok());
  }
  auto rules = DiscoverVariableCfds(table, {0, 1, 2}, {});
  ASSERT_TRUE(rules.ok());
  bool single = false;
  for (std::size_t i = 0; i < rules->size(); ++i) {
    const Cfd& rule = rules->rule(static_cast<RuleId>(i));
    if (rule.rhs().attr == 1) {
      // A -> B must appear with the minimal LHS, never as {A, C} -> B.
      EXPECT_EQ(rule.lhs().size(), 1u);
      if (rule.lhs().size() == 1 && rule.lhs()[0].attr == 0) single = true;
    }
  }
  EXPECT_TRUE(single);
}

TEST(FdDiscoveryTest, NearKeyLhsIsPruned) {
  Schema schema = *Schema::Make({"Id", "B"});
  Table table(schema);
  for (int i = 0; i < 200; ++i) {
    // Id is unique: Id -> B holds vacuously but has no pair coverage.
    ASSERT_TRUE(table
                    .AppendRow({"id" + std::to_string(i),
                                "b" + std::to_string(i % 3)})
                    .ok());
  }
  auto rules = DiscoverVariableCfds(table, {0, 1}, {});
  ASSERT_TRUE(rules.ok());
  for (std::size_t i = 0; i < rules->size(); ++i) {
    EXPECT_NE(rules->rule(static_cast<RuleId>(i)).lhs()[0].attr, 0);
  }
}

TEST(FdDiscoveryTest, ConfidenceToleratesDirtyMinority) {
  Schema schema = *Schema::Make({"A", "B"});
  Table table(schema);
  // A -> B holds for 95% of tuples within each group.
  Rng rng(9);
  for (int i = 0; i < 400; ++i) {
    const int a = static_cast<int>(rng.NextBounded(2));
    const bool noise = rng.NextBernoulli(0.05);
    ASSERT_TRUE(table
                    .AppendRow({"a" + std::to_string(a),
                                noise ? "junk" + std::to_string(i)
                                      : "b" + std::to_string(a)})
                    .ok());
  }
  FdDiscoveryOptions options;
  options.min_confidence = 0.9;
  auto rules = DiscoverVariableCfds(table, {0, 1}, options);
  ASSERT_TRUE(rules.ok());
  bool found = false;
  for (std::size_t i = 0; i < rules->size(); ++i) {
    const Cfd& rule = rules->rule(static_cast<RuleId>(i));
    if (rule.lhs()[0].attr == 0 && rule.rhs().attr == 1) found = true;
  }
  EXPECT_TRUE(found);

  options.min_confidence = 0.99;
  auto strict = DiscoverVariableCfds(table, {0, 1}, options);
  ASSERT_TRUE(strict.ok());
  for (std::size_t i = 0; i < strict->size(); ++i) {
    const Cfd& rule = strict->rule(static_cast<RuleId>(i));
    EXPECT_FALSE(rule.lhs()[0].attr == 0 && rule.rhs().attr == 1);
  }
}

TEST(FdDiscoveryTest, ValidatesOptions) {
  Schema schema = *Schema::Make({"A", "B"});
  Table table(schema);
  FdDiscoveryOptions bad;
  bad.min_confidence = 0.0;
  EXPECT_FALSE(DiscoverVariableCfds(table, {0, 1}, bad).ok());
  bad = {};
  bad.max_lhs = 3;
  EXPECT_FALSE(DiscoverVariableCfds(table, {0, 1}, bad).ok());
}

}  // namespace
}  // namespace gdr
