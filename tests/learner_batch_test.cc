// Differential suite for batched learner inference: the group-batched
// ConfirmProbabilities path (row-major feature matrix + tree-at-a-time
// forest evaluation over flattened SoA trees) must be bit-identical to
// the per-update ConfirmProbability oracle — probabilities, scores, AND
// ranking order — across random groups, retrain boundaries, untrained
// attributes, and 1/2/4/8 threads, through whole experiments and
// mid-session appends. Also pins the flattened tree representation to
// the recursive oracle on fuzzed inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/learner_bank.h"
#include "core/session.h"
#include "core/voi.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "sim/experiment.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/registry.h"

namespace gdr {
namespace {

// ---------------------------------------------------------------------------
// Flattened tree ≡ recursive tree on fuzzed trees and inputs.

TrainingSet FuzzedTrainingSet(Rng* rng, std::size_t num_features,
                              int num_classes, std::size_t num_examples) {
  std::vector<FeatureDesc> descs;
  for (std::size_t f = 0; f < num_features; ++f) {
    const bool categorical = rng->NextBounded(2) == 0;
    descs.push_back({"f" + std::to_string(f),
                     categorical ? FeatureType::kCategorical
                                 : FeatureType::kNumeric});
  }
  TrainingSet set(FeatureSchema(descs), num_classes);
  for (std::size_t i = 0; i < num_examples; ++i) {
    Example example;
    for (std::size_t f = 0; f < num_features; ++f) {
      example.features.push_back(
          descs[f].type == FeatureType::kCategorical
              ? static_cast<double>(rng->NextBounded(5))
              : rng->NextDouble() * 10.0);
    }
    // Learnable-but-noisy labels so trees grow real split structure.
    const double signal = example.features[0] + example.features[1 % num_features];
    example.label = static_cast<int>(
        (static_cast<std::size_t>(signal) + rng->NextBounded(2)) %
        static_cast<std::size_t>(num_classes));
    EXPECT_TRUE(set.Add(std::move(example)).ok());
  }
  return set;
}

std::vector<double> FuzzedInput(Rng* rng, const FeatureSchema& schema) {
  std::vector<double> features;
  for (std::size_t f = 0; f < schema.num_features(); ++f) {
    features.push_back(schema.IsCategorical(f)
                           ? static_cast<double>(rng->NextBounded(6))
                           : rng->NextDouble() * 12.0 - 1.0);
  }
  return features;
}

class FlattenedTreeTest : public ::testing::TestWithParam<int> {};

TEST_P(FlattenedTreeTest, FlatWalkMatchesRecursiveOracleOnFuzzedInputs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const std::size_t num_features = 2 + rng.NextBounded(6);
  const int num_classes = 2 + static_cast<int>(rng.NextBounded(3));
  const TrainingSet set =
      FuzzedTrainingSet(&rng, num_features, num_classes, 40 + rng.NextBounded(120));

  DecisionTreeOptions options;
  options.feature_subsample = 1 + static_cast<int>(rng.NextBounded(num_features));
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(set, options, &rng).ok());

  std::vector<double> flat_dist;
  for (int probe = 0; probe < 200; ++probe) {
    const std::vector<double> input = FuzzedInput(&rng, set.schema());
    // Recursive oracle vs flat SoA walk: same leaf, bit-identical payload.
    const std::vector<double> recursive = tree.PredictDistribution(input);
    tree.PredictDistributionInto(input, &flat_dist);
    EXPECT_EQ(flat_dist, recursive);
    // The flat majority must be the first-max of the recursive
    // distribution (the builder's tie-break).
    const auto max_it = std::max_element(recursive.begin(), recursive.end());
    EXPECT_EQ(tree.Predict(input),
              static_cast<int>(std::distance(recursive.begin(), max_it)));
  }
}

TEST_P(FlattenedTreeTest, ForestBatchMatchesPerRowFractions) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const std::size_t num_features = 3 + rng.NextBounded(4);
  const TrainingSet set = FuzzedTrainingSet(&rng, num_features, 3, 120);

  RandomForestOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) + 11;
  RandomForest forest(options);
  ASSERT_TRUE(forest.Train(set).ok());

  for (const std::size_t rows : {std::size_t{1}, std::size_t{4}, std::size_t{33}}) {
    std::vector<double> matrix;
    std::vector<std::vector<double>> inputs;
    for (std::size_t r = 0; r < rows; ++r) {
      inputs.push_back(FuzzedInput(&rng, set.schema()));
      matrix.insert(matrix.end(), inputs.back().begin(), inputs.back().end());
    }
    std::vector<double> batch;
    forest.VoteFractionsBatch(matrix.data(), rows, num_features, &batch);
    ASSERT_EQ(batch.size(), rows * static_cast<std::size_t>(forest.num_classes()));
    for (std::size_t r = 0; r < rows; ++r) {
      const std::vector<double> per_row = forest.VoteFractions(inputs[r]);
      for (std::size_t c = 0; c < per_row.size(); ++c) {
        EXPECT_EQ(batch[r * per_row.size() + c], per_row[c]) << r << "," << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlattenedTreeTest, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Batched p̃ ≡ per-update oracle over a live bank.

// Randomized instance mirroring voi_batched_test, plus a learner bank the
// tests feed synthetic-but-deterministic feedback into.
struct RandomLearnerInstance {
  explicit RandomLearnerInstance(std::uint64_t seed)
      : schema(*Schema::Make({"STR", "CT", "STT", "ZIP"})),
        table(schema),
        rules(schema),
        rng(seed) {
    const char* streets[] = {"Main St", "Oak Ave", "Sherden Rd", "Elm St"};
    const char* cities[] = {"Fort Wayne", "Westville", "Michigan City"};
    const char* states[] = {"IN", "IND"};
    const char* zips[] = {"46825", "46391", "46360", "46802", "46774"};
    for (int i = 0; i < 80; ++i) {
      EXPECT_TRUE(table
                      .AppendRow({streets[rng.NextBounded(4)],
                                  cities[rng.NextBounded(3)],
                                  states[rng.NextBounded(2)],
                                  zips[rng.NextBounded(5)]})
                      .ok());
    }
    EXPECT_TRUE(
        rules.AddRuleFromString("c1", "ZIP=46360 -> CT=Michigan City ; STT=IN")
            .ok());
    EXPECT_TRUE(rules.AddRuleFromString("c2", "ZIP=46391 -> CT=Westville")
                    .ok());
    EXPECT_TRUE(rules.AddRuleFromString("v1", "STR, CT -> ZIP").ok());
    EXPECT_TRUE(rules.AddRuleFromString("v2", "ZIP -> CT").ok());
    index = std::make_unique<ViolationIndex>(&table, &rules);

    weights.resize(rules.size());
    for (double& w : weights) w = 0.05 + 0.95 * rng.NextDouble();

    LearnerBankOptions bank_options;
    bank_options.min_training_examples = 12;
    bank_options.seed = seed * 31 + 5;
    bank = std::make_unique<LearnerBank>(&table, index.get(), bank_options);

    const std::size_t num_groups = 12;
    for (std::size_t g = 0; g < num_groups; ++g) {
      UpdateGroup group;
      group.attr = static_cast<AttrId>(rng.NextBounded(table.num_attrs()));
      group.value = static_cast<ValueId>(
          rng.NextBounded(table.DomainSize(group.attr)));
      const std::size_t members = 3 + rng.NextBounded(12);
      for (std::size_t row_index :
           rng.SampleWithoutReplacement(table.num_rows(), members)) {
        Update update;
        update.row = static_cast<RowId>(row_index);
        update.attr = group.attr;
        update.value = group.value;
        update.score = rng.NextDouble();
        group.updates.push_back(update);
      }
      groups.push_back(std::move(group));
    }
  }

  // Deterministic synthetic label; what it "means" is irrelevant — the
  // differential only needs trained committees with real vote structure.
  Feedback LabelFor(const Update& update) const {
    return static_cast<Feedback>(
        (static_cast<std::size_t>(update.row) +
         static_cast<std::size_t>(update.attr) * 3 +
         static_cast<std::size_t>(update.value)) %
        static_cast<std::size_t>(kNumFeedbackClasses));
  }

  // Feeds every update of every group whose attr is in `attrs` as labeled
  // feedback and retrains those models.
  void TrainAttrs(const std::vector<AttrId>& attrs) {
    for (const UpdateGroup& group : groups) {
      if (std::find(attrs.begin(), attrs.end(), group.attr) == attrs.end()) {
        continue;
      }
      for (const Update& update : group.updates) {
        ASSERT_TRUE(bank->AddFeedback(update, LabelFor(update)).ok());
      }
    }
    for (AttrId attr : attrs) ASSERT_TRUE(bank->Retrain(attr).ok());
  }

  Schema schema;
  Table table;
  RuleSet rules;
  Rng rng;
  std::unique_ptr<ViolationIndex> index;
  std::vector<double> weights;
  std::unique_ptr<LearnerBank> bank;
  std::vector<UpdateGroup> groups;
};

void ExpectBatchedMatchesOracle(const RandomLearnerInstance& inst) {
  std::vector<double> batched;
  for (const UpdateGroup& group : inst.groups) {
    inst.bank->ConfirmProbabilities(std::span<const Update>(group.updates),
                                    &batched);
    ASSERT_EQ(batched.size(), group.updates.size());
    for (std::size_t j = 0; j < group.updates.size(); ++j) {
      EXPECT_EQ(batched[j], inst.bank->ConfirmProbability(group.updates[j]))
          << "group attr " << group.attr << " update " << j;
    }
  }
}

class LearnerBatchTest : public ::testing::TestWithParam<int> {};

// Untrained bank: both paths fall back to the repair score per update.
TEST_P(LearnerBatchTest, UntrainedFallbackMatchesOracle) {
  RandomLearnerInstance inst(static_cast<std::uint64_t>(GetParam()));
  ExpectBatchedMatchesOracle(inst);
  std::vector<double> batched;
  for (const UpdateGroup& group : inst.groups) {
    inst.bank->ConfirmProbabilities(std::span<const Update>(group.updates),
                                    &batched);
    for (std::size_t j = 0; j < group.updates.size(); ++j) {
      EXPECT_EQ(batched[j], group.updates[j].score);
    }
  }
}

// Trained committees: batched matrix evaluation is bit-identical to the
// scalar oracle, including across retrain boundaries (models retrained on
// more feedback mid-stream) and with a mix of trained and untrained attrs.
TEST_P(LearnerBatchTest, TrainedAndRetrainedMatchesOracle) {
  RandomLearnerInstance inst(static_cast<std::uint64_t>(GetParam()));

  // Train a strict subset of attributes: the untrained remainder must keep
  // falling back while trained attrs predict, in the same batch sweep.
  inst.TrainAttrs({static_cast<AttrId>(0), static_cast<AttrId>(1)});
  ExpectBatchedMatchesOracle(inst);

  // Retrain boundary: more feedback + Retrain, then re-compare. The
  // probabilities may move; the two paths must move together.
  inst.TrainAttrs({static_cast<AttrId>(0), static_cast<AttrId>(1),
                   static_cast<AttrId>(2), static_cast<AttrId>(3)});
  ExpectBatchedMatchesOracle(inst);
}

// A span holding several attr runs back-to-back (the general contract,
// wider than the one-group-per-call the ranker uses).
TEST_P(LearnerBatchTest, MixedAttrSpanMatchesOracle) {
  RandomLearnerInstance inst(static_cast<std::uint64_t>(GetParam()));
  inst.TrainAttrs({static_cast<AttrId>(1), static_cast<AttrId>(3)});

  std::vector<Update> all;
  for (const UpdateGroup& group : inst.groups) {
    all.insert(all.end(), group.updates.begin(), group.updates.end());
  }
  std::vector<double> batched;
  inst.bank->ConfirmProbabilities(std::span<const Update>(all), &batched);
  ASSERT_EQ(batched.size(), all.size());
  for (std::size_t j = 0; j < all.size(); ++j) {
    EXPECT_EQ(batched[j], inst.bank->ConfirmProbability(all[j]));
  }
}

// The tentpole gate: Rank under batched inference is bit-identical —
// scores AND order — to the per-update oracle mode at 1/2/4/8 threads,
// with trained models in the loop.
TEST_P(LearnerBatchTest, BatchedInferenceRankingBitIdenticalAcrossThreads) {
  RandomLearnerInstance inst(static_cast<std::uint64_t>(GetParam()));
  inst.TrainAttrs({static_cast<AttrId>(0), static_cast<AttrId>(2)});

  const ConfirmProbabilityFn scalar = [&inst](const Update& update) {
    return inst.bank->ConfirmProbability(update);
  };
  const ConfirmProbabilityBatchFn batch_fn =
      [&inst](std::span<const Update> updates, std::vector<double>* out) {
        inst.bank->ConfirmProbabilities(updates, out);
      };

  VoiRanker oracle(inst.index.get(), &inst.weights);
  oracle.set_inference_mode(VoiRanker::InferenceMode::kPerUpdateOracle);
  const VoiRanker::Ranking reference = oracle.Rank(inst.groups, scalar);
  ASSERT_EQ(reference.scores.size(), inst.groups.size());

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    VoiRanker batched(inst.index.get(), &inst.weights, &pool);
    batched.set_batch_probability_fn(batch_fn);
    const VoiRanker::Ranking ranking = batched.Rank(inst.groups, scalar);
    EXPECT_EQ(ranking.scores, reference.scores) << threads << " threads";
    EXPECT_EQ(ranking.order, reference.order) << threads << " threads";
  }
}

// Batched inference accumulates perf counters (encode + tree walk with
// item counts; probes on the ranker side) — the observability half of the
// tentpole.
TEST_P(LearnerBatchTest, PerfCountersAccumulate) {
  RandomLearnerInstance inst(static_cast<std::uint64_t>(GetParam()));
  inst.TrainAttrs({static_cast<AttrId>(0), static_cast<AttrId>(1),
                   static_cast<AttrId>(2), static_cast<AttrId>(3)});

  std::vector<double> out;
  std::size_t expected = 0;
  for (const UpdateGroup& group : inst.groups) {
    inst.bank->ConfirmProbabilities(std::span<const Update>(group.updates),
                                    &out);
    // Attrs whose feedback never reached min_training_examples stay
    // untrained and take the score fallback — no encode, no tree walk.
    if (inst.bank->IsTrained(group.attr)) expected += group.updates.size();
  }
  const PerfCounters& perf = inst.bank->perf_counters();
  EXPECT_EQ(perf.Count(PerfPhase::kLearnerEncode), expected);
  EXPECT_EQ(perf.Count(PerfPhase::kLearnerTreeWalk), expected);

  std::size_t total_updates = 0;
  for (const UpdateGroup& group : inst.groups) {
    total_updates += group.updates.size();
  }
  VoiRanker ranker(inst.index.get(), &inst.weights);
  ranker.Rank(inst.groups, [&inst](const Update& update) {
    return inst.bank->ConfirmProbability(update);
  });
  EXPECT_EQ(ranker.perf_counters().Count(PerfPhase::kVoiProbe), total_updates);
  EXPECT_GT(ranker.perf_counters().Seconds(PerfPhase::kVoiProbe), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearnerBatchTest, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Whole experiments and the pull API across inference modes.

void ExpectResultsIdentical(const ExperimentResult& a,
                            const ExperimentResult& b) {
  EXPECT_EQ(a.stats.initial_dirty, b.stats.initial_dirty);
  EXPECT_EQ(a.stats.user_feedback, b.stats.user_feedback);
  EXPECT_EQ(a.stats.user_confirms, b.stats.user_confirms);
  EXPECT_EQ(a.stats.user_rejects, b.stats.user_rejects);
  EXPECT_EQ(a.stats.user_retains, b.stats.user_retains);
  EXPECT_EQ(a.stats.learner_decisions, b.stats.learner_decisions);
  EXPECT_EQ(a.stats.forced_repairs, b.stats.forced_repairs);
  EXPECT_EQ(a.stats.outer_iterations, b.stats.outer_iterations);
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.remaining_violations, b.remaining_violations);
  EXPECT_EQ(a.accuracy.updated_cells, b.accuracy.updated_cells);
  EXPECT_EQ(a.accuracy.correctly_updated_cells,
            b.accuracy.correctly_updated_cells);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].feedback, b.curve[i].feedback);
    EXPECT_EQ(a.curve[i].improvement_pct, b.curve[i].improvement_pct);
    EXPECT_EQ(a.curve[i].loss, b.curve[i].loss);
  }
}

// Whole experiments — interactive loop, learner retrains, repairs, curve —
// are bit-identical whether p̃ is evaluated batched or per update, for the
// learning strategies whose ranking actually consults trained models.
TEST(LearnerBatchExperimentTest, ExperimentsIdenticalAcrossInferenceModes) {
  const Dataset dataset =
      *WorkloadRegistry::Global().Resolve("dataset1:records=600,seed=21");

  for (const Strategy strategy :
       {Strategy::kGdr, Strategy::kGdrSLearning}) {
    auto run = [&](VoiRanker::InferenceMode mode) {
      ExperimentConfig config;
      config.strategy = strategy;
      config.feedback_budget = 120;
      config.seed = 9;
      config.sample_every = 10;
      config.learner_inference = mode;
      auto result = RunStrategyExperiment(dataset, config);
      EXPECT_TRUE(result.ok());
      return *result;
    };
    const ExperimentResult batched = run(VoiRanker::InferenceMode::kBatched);
    const ExperimentResult oracle =
        run(VoiRanker::InferenceMode::kPerUpdateOracle);
    ExpectResultsIdentical(batched, oracle);
  }
}

// The same through the pull API at several thread counts.
TEST(LearnerBatchExperimentTest, SessionPumpIdenticalAcrossInferenceModes) {
  const Dataset dataset =
      *WorkloadRegistry::Global().Resolve("dataset1:records=400,seed=7");

  auto run = [&](VoiRanker::InferenceMode mode, std::size_t threads) {
    ExperimentConfig config;
    config.strategy = Strategy::kGdr;
    config.feedback_budget = 80;
    config.seed = 5;
    config.sample_every = 10;
    config.num_threads = threads;
    config.driver = ExperimentDriver::kSessionPump;
    config.learner_inference = mode;
    auto result = RunStrategyExperiment(dataset, config);
    EXPECT_TRUE(result.ok());
    return *result;
  };
  const ExperimentResult reference =
      run(VoiRanker::InferenceMode::kPerUpdateOracle, 1);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ExpectResultsIdentical(run(VoiRanker::InferenceMode::kBatched, threads),
                           reference);
  }
}

// ---------------------------------------------------------------------------
// Mid-session append differential: two sessions differing only in
// learner_inference must deliver identical suggestion traces through an
// AppendDirtyRows in the middle (streaming admission rescores groups via
// ScoreGroup, the other FillProbabilities consumer).

Schema SessionSchema() { return *Schema::Make({"City", "Zip", "State"}); }

RuleSet SessionRules() {
  RuleSet rules(SessionSchema());
  EXPECT_TRUE(rules.AddRuleFromString("v1", "City -> Zip").ok());
  EXPECT_TRUE(rules.AddRuleFromString("v2", "Zip -> City").ok());
  EXPECT_TRUE(
      rules.AddRuleFromString("c1", "City=Springfield -> State=IL").ok());
  return rules;
}

using Truth = std::vector<std::vector<std::string>>;

Truth BaseTruth() {
  return {{"Springfield", "Z0", "IL"},
          {"Springfield", "Z0", "IL"},
          {"Shelby", "Z1", "IN"},
          {"Shelby", "Z1", "IN"},
          {"Dalton", "Z2", "OH"},
          {"Dalton", "Z2", "OH"}};
}

Table BaseDirty() {
  Table table(SessionSchema());
  Truth rows = BaseTruth();
  rows[1][1] = "Zx";
  rows[0][2] = "XX";
  for (const auto& row : rows) EXPECT_TRUE(table.AppendRow(row).ok());
  return table;
}

struct PolicyAnswer {
  Feedback feedback;
  std::optional<std::string> volunteered;
};

PolicyAnswer Answer(const Table& table, const Truth& truth,
                    const SuggestedUpdate& s) {
  const std::string& expected =
      truth[static_cast<std::size_t>(s.update.row)]
           [static_cast<std::size_t>(s.update.attr)];
  const std::string& suggested =
      table.dict(s.update.attr).ToString(s.update.value);
  if (suggested == expected) return {Feedback::kConfirm, std::nullopt};
  if (table.at(s.update.row, s.update.attr) == expected) {
    return {Feedback::kRetain, std::nullopt};
  }
  return {Feedback::kReject, expected};
}

std::string TraceLine(const GdrSession& session, const SuggestedUpdate& s) {
  return std::to_string(s.update_id) + "|r" + std::to_string(s.update.row) +
         "|a" + std::to_string(s.update.attr) + "|" +
         session.table().dict(s.update.attr).ToString(s.update.value) + "|" +
         std::to_string(s.voi_score);
}

void Drive(GdrSession* session, const Truth& truth,
           std::vector<std::string>* trace) {
  while (session->state() != SessionState::kDone) {
    const auto batch = session->NextBatch();
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch->empty() && session->state() == SessionState::kDone) break;
    for (const SuggestedUpdate& s : *batch) {
      if (!session->IsLive(s.update_id)) continue;
      trace->push_back(TraceLine(*session, s));
      const PolicyAnswer answer = Answer(session->table(), truth, s);
      const auto outcome = session->SubmitFeedback(
          s.update_id, answer.feedback, answer.volunteered);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    }
  }
}

std::vector<std::string> TableCells(const Table& table) {
  std::vector<std::string> cells;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t a = 0; a < table.num_attrs(); ++a) {
      cells.push_back(table.at(static_cast<RowId>(r), static_cast<AttrId>(a)));
    }
  }
  return cells;
}

TEST(LearnerBatchSessionTest, AppendMidSessionIdenticalAcrossInferenceModes) {
  const RuleSet rules = SessionRules();
  Truth truth = BaseTruth();

  GdrOptions batched_options;
  batched_options.strategy = Strategy::kGdr;
  batched_options.ns = 2;
  batched_options.seed = 42;
  batched_options.feedback_budget = 100;
  // A tiny threshold so the bank actually trains (and retrains) inside
  // this small session — the inference modes then diverge unless batched
  // evaluation is truly bit-identical.
  batched_options.learner.min_training_examples = 4;
  batched_options.learner_inference = VoiRanker::InferenceMode::kBatched;
  GdrOptions oracle_options = batched_options;
  oracle_options.learner_inference = VoiRanker::InferenceMode::kPerUpdateOracle;

  Table table_a = BaseDirty();
  GdrSession a(&table_a, &rules, batched_options);
  Table table_b = BaseDirty();
  GdrSession b(&table_b, &rules, oracle_options);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());

  std::vector<std::string> trace_a;
  std::vector<std::string> trace_b;
  const auto batch_a = a.NextBatch();
  const auto batch_b = b.NextBatch();
  ASSERT_TRUE(batch_a.ok() && batch_b.ok());
  ASSERT_FALSE(batch_a->empty());
  ASSERT_EQ(batch_a->size(), batch_b->size());
  {
    const SuggestedUpdate& sa = batch_a->front();
    const SuggestedUpdate& sb = batch_b->front();
    EXPECT_EQ(TraceLine(a, sa), TraceLine(b, sb));
    trace_a.push_back(TraceLine(a, sa));
    trace_b.push_back(TraceLine(b, sb));
    const PolicyAnswer pa = Answer(a.table(), truth, sa);
    const PolicyAnswer pb = Answer(b.table(), truth, sb);
    ASSERT_TRUE(a.SubmitFeedback(sa.update_id, pa.feedback, pa.volunteered)
                    .ok());
    ASSERT_TRUE(b.SubmitFeedback(sb.update_id, pb.feedback, pb.volunteered)
                    .ok());
  }

  const std::vector<std::vector<std::string>> arrivals = {
      {"Springfield", "Z9", "IL"},
      {"Evanston", "Z5", "IL"},
      {"Evanston", "Z5", "IL"}};
  truth.push_back({"Springfield", "Z0", "IL"});
  truth.push_back({"Evanston", "Z5", "IL"});
  truth.push_back({"Evanston", "Z5", "IL"});
  const auto out_a = a.AppendDirtyRows(arrivals);
  const auto out_b = b.AppendDirtyRows(arrivals);
  ASSERT_TRUE(out_a.ok() && out_b.ok());
  EXPECT_GE(out_a->newly_dirty, 1u);
  EXPECT_EQ(out_a->rows_appended, out_b->rows_appended);
  EXPECT_EQ(out_a->newly_dirty, out_b->newly_dirty);
  EXPECT_EQ(out_a->pool_delta, out_b->pool_delta);
  EXPECT_EQ(out_a->groups_rescored, out_b->groups_rescored);

  Drive(&a, truth, &trace_a);
  Drive(&b, truth, &trace_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(TableCells(table_a), TableCells(table_b));
  EXPECT_EQ(a.stats().user_feedback, b.stats().user_feedback);
  EXPECT_EQ(a.stats().appended_rows, b.stats().appended_rows);
  EXPECT_EQ(a.stats().admitted_dirty, b.stats().admitted_dirty);
  EXPECT_EQ(a.Snapshot().Serialize(), b.Snapshot().Serialize());
}

}  // namespace
}  // namespace gdr
