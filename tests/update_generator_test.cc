#include "repair/update_generator.h"

#include <gtest/gtest.h>

#include "util/string_similarity.h"

namespace gdr {
namespace {

class GeneratorFixture : public ::testing::Test {
 protected:
  GeneratorFixture()
      : schema_(*Schema::Make({"STR", "CT", "STT", "ZIP"})), table_(schema_),
        rules_(schema_) {}

  void Append(const char* str, const char* ct, const char* stt,
              const char* zip) {
    ASSERT_TRUE(table_.AppendRow({str, ct, stt, zip}).ok());
  }

  void Build() {
    index_ = std::make_unique<ViolationIndex>(&table_, &rules_);
    generator_ =
        std::make_unique<UpdateGenerator>(index_.get(), &table_, &state_);
  }

  std::string ValueOf(const Update& update) const {
    return table_.dict(update.attr).ToString(update.value);
  }

  Schema schema_;
  Table table_;
  RuleSet rules_;
  RepairState state_;
  std::unique_ptr<ViolationIndex> index_;
  std::unique_ptr<UpdateGenerator> generator_;
};

TEST_F(GeneratorFixture, Scenario1AdoptsPatternConstant) {
  ASSERT_TRUE(
      rules_.AddRuleFromString("phi1", "ZIP=46360 -> CT=Michigan City").ok());
  Append("Main St", "Michigan Cty", "IN", "46360");  // typo in city
  Build();

  const AttrId ct = schema_.FindAttr("CT");
  auto update = generator_->UpdateAttributeTuple(0, ct);
  ASSERT_TRUE(update.has_value());
  EXPECT_EQ(ValueOf(*update), "Michigan City");
  // Eq. 7 similarity on the pattern constant with conf = 1.
  EXPECT_NEAR(update->score,
              NormalizedEditSimilarity("Michigan Cty", "Michigan City"),
              1e-9);
}

TEST_F(GeneratorFixture, Scenario2AdoptsMajorityPartnerValue) {
  ASSERT_TRUE(rules_.AddRuleFromString("phi5", "STR, CT -> ZIP").ok());
  // Three agreeing tuples, one outlier.
  Append("Main St", "Fort Wayne", "IN", "46802");
  Append("Main St", "Fort Wayne", "IN", "46802");
  Append("Main St", "Fort Wayne", "IN", "46802");
  Append("Main St", "Fort Wayne", "IN", "46803");  // wrong zip
  Build();

  const AttrId zip = schema_.FindAttr("ZIP");
  auto update = generator_->UpdateAttributeTuple(3, zip);
  ASSERT_TRUE(update.has_value());
  EXPECT_EQ(ValueOf(*update), "46802");
  // conf = 3/(3+1), sim = 4/5.
  EXPECT_NEAR(update->score, 0.8 * 0.75, 1e-9);
}

TEST_F(GeneratorFixture, Scenario2MinorityAdoptionScoresLow) {
  ASSERT_TRUE(rules_.AddRuleFromString("phi5", "STR, CT -> ZIP").ok());
  Append("Main St", "Fort Wayne", "IN", "46802");
  Append("Main St", "Fort Wayne", "IN", "46802");
  Append("Main St", "Fort Wayne", "IN", "46802");
  Append("Main St", "Fort Wayne", "IN", "46803");
  Build();

  // The majority tuple is offered the outlier's value, but with conf
  // 1/(1+3) = 0.25 — a deliberately weak suggestion.
  const AttrId zip = schema_.FindAttr("ZIP");
  auto update = generator_->UpdateAttributeTuple(0, zip);
  ASSERT_TRUE(update.has_value());
  EXPECT_EQ(ValueOf(*update), "46803");
  EXPECT_NEAR(update->score, 0.8 * 0.25, 1e-9);
}

TEST_F(GeneratorFixture, Scenario3SuggestsFromProjection) {
  ASSERT_TRUE(rules_.AddRuleFromString("phi5", "STR, CT -> ZIP").ok());
  // t0/t1 conflict on zip within (Maple Rd, Fort Wayne); t2 shows that
  // (CT=Fort Wayne, ZIP=46802) tuples carry street "Maple Dr".
  Append("Maple Rd", "Fort Wayne", "IN", "46802");
  Append("Maple Rd", "Fort Wayne", "IN", "46803");
  Append("Maple Dr", "Fort Wayne", "IN", "46802");
  Append("Maple Dr", "Fort Wayne", "IN", "46802");
  Build();

  // STR is in LHS(phi5); the projection key for t0 is (CT, ZIP) =
  // (Fort Wayne, 46802) whose street values are {Maple Rd, Maple Dr}.
  const AttrId str = schema_.FindAttr("STR");
  auto update = generator_->UpdateAttributeTuple(0, str);
  ASSERT_TRUE(update.has_value());
  EXPECT_EQ(ValueOf(*update), "Maple Dr");
}

TEST_F(GeneratorFixture, FrozenCellYieldsNothing) {
  ASSERT_TRUE(
      rules_.AddRuleFromString("phi1", "ZIP=46360 -> CT=Michigan City").ok());
  Append("Main St", "Wrong", "IN", "46360");
  Build();
  const AttrId ct = schema_.FindAttr("CT");
  state_.Freeze(CellKey{0, ct});
  EXPECT_FALSE(generator_->UpdateAttributeTuple(0, ct).has_value());
}

TEST_F(GeneratorFixture, PreventedValueIsSkipped) {
  ASSERT_TRUE(
      rules_.AddRuleFromString("phi1", "ZIP=46360 -> CT=Michigan City").ok());
  Append("Main St", "Wrong", "IN", "46360");
  Build();
  const AttrId ct = schema_.FindAttr("CT");
  const ValueId mc = table_.InternValue(ct, "Michigan City");
  state_.Prevent(CellKey{0, ct}, mc);
  auto update = generator_->UpdateAttributeTuple(0, ct);
  // The only candidate was prevented.
  EXPECT_FALSE(update.has_value());
}

TEST_F(GeneratorFixture, CleanTupleYieldsNothing) {
  ASSERT_TRUE(
      rules_.AddRuleFromString("phi1", "ZIP=46360 -> CT=Michigan City").ok());
  Append("Main St", "Michigan City", "IN", "46360");
  Build();
  for (std::size_t a = 0; a < schema_.num_attrs(); ++a) {
    EXPECT_FALSE(
        generator_->UpdateAttributeTuple(0, static_cast<AttrId>(a))
            .has_value());
  }
}

TEST_F(GeneratorFixture, NeverSuggestsCurrentValue) {
  ASSERT_TRUE(rules_.AddRuleFromString("phi5", "STR, CT -> ZIP").ok());
  Append("Main St", "Fort Wayne", "IN", "46802");
  Append("Main St", "Fort Wayne", "IN", "46803");
  Build();
  const AttrId zip = schema_.FindAttr("ZIP");
  for (RowId row : {RowId{0}, RowId{1}}) {
    auto update = generator_->UpdateAttributeTuple(row, zip);
    ASSERT_TRUE(update.has_value());
    EXPECT_NE(update->value, table_.id_at(row, zip));
  }
}

TEST_F(GeneratorFixture, ZeroSimilarityCandidatesAreAdmissible) {
  // Correct value shares no characters with the dirty one (domain swap);
  // the strict paper pseudocode would drop it, this implementation keeps
  // it (see header comment).
  ASSERT_TRUE(rules_.AddRuleFromString("phi1", "ZIP=11111 -> CT=Zzz").ok());
  Append("Main St", "Qqq", "IN", "11111");
  Build();
  const AttrId ct = schema_.FindAttr("CT");
  auto update = generator_->UpdateAttributeTuple(0, ct);
  ASSERT_TRUE(update.has_value());
  EXPECT_EQ(ValueOf(*update), "Zzz");
  EXPECT_DOUBLE_EQ(update->score, 0.0);
}

TEST_F(GeneratorFixture, ProjectionCacheInvalidatesOnChange) {
  ASSERT_TRUE(rules_.AddRuleFromString("phi5", "STR, CT -> ZIP").ok());
  Append("Maple Rd", "Fort Wayne", "IN", "46802");
  Append("Maple Rd", "Fort Wayne", "IN", "46803");
  Append("Maple Dr", "Fort Wayne", "IN", "46802");
  Build();
  const AttrId str = schema_.FindAttr("STR");
  auto first = generator_->UpdateAttributeTuple(0, str);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(ValueOf(*first), "Maple Dr");

  // Rename the t2 street through the index; the projection must rebuild.
  index_->ApplyCellChange(2, str, std::string_view("Maple Ct"));
  auto second = generator_->UpdateAttributeTuple(0, str);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(ValueOf(*second), "Maple Ct");
}

}  // namespace
}  // namespace gdr
