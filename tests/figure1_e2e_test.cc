// End-to-end fidelity test on the paper's Figure 1 scenario: a scripted
// ground-truth user plus GDR-NoLearning must drive the Customer instance
// to exactly the true database with zero residual violations.
#include <gtest/gtest.h>

#include "core/gdr.h"
#include "sim/oracle.h"

namespace gdr {
namespace {

class Figure1EndToEnd : public ::testing::Test {
 protected:
  Figure1EndToEnd()
      : schema_(*Schema::Make({"Name", "SRC", "STR", "CT", "STT", "ZIP"})),
        truth_(schema_),
        dirty_(schema_),
        rules_(schema_) {
    auto add = [this](const char* n, const char* s, const char* st,
                      const char* ct, const char* stt, const char* z) {
      EXPECT_TRUE(truth_.AppendRow({n, s, st, ct, stt, z}).ok());
    };
    add("Ann", "H1", "Sherden Rd", "Fort Wayne", "IN", "46825");
    add("Bob", "H1", "Sherden Rd", "Fort Wayne", "IN", "46825");
    add("Cal", "H2", "Oak Ave", "Michigan City", "IN", "46360");
    add("Dee", "H2", "Oak Ave", "Michigan City", "IN", "46360");
    add("Eve", "H3", "Main St", "New Haven", "IN", "46774");
    add("Fay", "H4", "Main St", "Westville", "IN", "46391");

    dirty_ = truth_;
    dirty_.Set(1, 5, "46391");         // boundary-zip confusion
    dirty_.Set(2, 3, "Michigan Cty");  // city typos (source H2)
    dirty_.Set(3, 3, "Michigan Cty");
    dirty_.Set(4, 4, "IND");           // state spelled out

    EXPECT_TRUE(rules_
                    .AddRuleFromString(
                        "phi1", "ZIP=46360 -> CT=Michigan City ; STT=IN")
                    .ok());
    EXPECT_TRUE(
        rules_.AddRuleFromString("phi2", "ZIP=46774 -> CT=New Haven ; STT=IN")
            .ok());
    EXPECT_TRUE(
        rules_.AddRuleFromString("phi3", "ZIP=46825 -> CT=Fort Wayne ; STT=IN")
            .ok());
    EXPECT_TRUE(
        rules_.AddRuleFromString("phi4", "ZIP=46391 -> CT=Westville ; STT=IN")
            .ok());
    EXPECT_TRUE(
        rules_.AddRuleFromString("phi5", "STR, CT=Fort Wayne -> ZIP").ok());
  }

  Schema schema_;
  Table truth_;
  Table dirty_;
  RuleSet rules_;
};

TEST_F(Figure1EndToEnd, AllTuplesInitiallyViolate) {
  // "Note that all the tuples in Figure 1 have violations" — in our
  // instance every row except the clean Westville one conflicts somehow,
  // and Westville shares no group with the wrong-zip tuple.
  ViolationIndex index(&dirty_, &rules_);
  EXPECT_GE(index.DirtyRows().size(), 4u);
}

TEST_F(Figure1EndToEnd, RepairsToExactGroundTruth) {
  Table working = dirty_;
  UserOracle oracle(&truth_);
  GdrOptions options;
  options.strategy = Strategy::kGdrNoLearning;
  GdrEngine engine(&working, &rules_, &oracle, options);
  ASSERT_TRUE(engine.Initialize().ok());
  ASSERT_TRUE(engine.Run().ok());

  EXPECT_EQ(engine.index().TotalViolations(), 0);
  auto diff = working.CountDifferingCells(truth_);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, 0u);
}

TEST_F(Figure1EndToEnd, GroupingMatchesNarrative) {
  // Section 1.1: one group suggests CT := 'Michigan City' (t2, t3 here);
  // grouping is by (attribute, suggested value).
  Table working = dirty_;
  UserOracle oracle(&truth_);
  GdrEngine engine(&working, &rules_, &oracle);
  ASSERT_TRUE(engine.Initialize().ok());
  const std::vector<UpdateGroup> groups = GroupUpdates(engine.pool());
  const AttrId ct = schema_.FindAttr("CT");
  bool found = false;
  for (const UpdateGroup& group : groups) {
    if (group.attr != ct) continue;
    if (working.dict(ct).ToString(group.value) == "Michigan City") {
      EXPECT_EQ(group.size(), 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(Figure1EndToEnd, ConsultingUserCostsAtMostPoolSize) {
  Table working = dirty_;
  UserOracle oracle(&truth_);
  GdrOptions options;
  options.strategy = Strategy::kGdrNoLearning;
  GdrEngine engine(&working, &rules_, &oracle, options);
  ASSERT_TRUE(engine.Initialize().ok());
  ASSERT_TRUE(engine.Run().ok());
  // Every user answer concerned a distinct suggested update; rejects can
  // trigger replacements, so the bound is loose but must stay small.
  EXPECT_LE(engine.stats().user_feedback, 24u);
  EXPECT_GE(engine.stats().user_confirms, 4u);  // the four seeded errors
}

}  // namespace
}  // namespace gdr
