#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "cfd/violation_index.h"
#include "util/rng.h"

namespace gdr {
namespace {

// Shared fixture: a randomized table plus a rule mix (constant + variable)
// in the style of the Figure-1 schema.
struct RandomInstance {
  RandomInstance(std::uint64_t seed, int rows)
      : schema(*Schema::Make({"STR", "CT", "STT", "ZIP"})),
        table(schema),
        rules(schema) {
    Rng rng(seed);
    const char* streets[] = {"Main St", "Oak Ave", "Sherden Rd"};
    const char* cities[] = {"Fort Wayne", "Westville", "Michigan City"};
    const char* states[] = {"IN", "IND"};
    const char* zips[] = {"46825", "46391", "46360", "46802"};
    for (int i = 0; i < rows; ++i) {
      EXPECT_TRUE(table
                      .AppendRow({streets[rng.NextBounded(3)],
                                  cities[rng.NextBounded(3)],
                                  states[rng.NextBounded(2)],
                                  zips[rng.NextBounded(4)]})
                      .ok());
    }
    EXPECT_TRUE(
        rules.AddRuleFromString("c1", "ZIP=46360 -> CT=Michigan City ; STT=IN")
            .ok());
    EXPECT_TRUE(rules.AddRuleFromString("c2", "ZIP=46391 -> CT=Westville")
                    .ok());
    EXPECT_TRUE(rules.AddRuleFromString("v1", "STR, CT -> ZIP").ok());
    EXPECT_TRUE(rules.AddRuleFromString("v2", "ZIP -> CT").ok());
  }

  Schema schema;
  Table table;
  RuleSet rules;
};

// Asserts that `delta` answers every query exactly as an index rebuilt
// from scratch over `expected` (the base table with the overlay applied).
void ExpectDeltaMatchesRebuild(const ViolationDelta& delta, Table expected,
                               const RuleSet& rules) {
  ViolationIndex rebuilt(&expected, &rules);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleId rule = static_cast<RuleId>(i);
    EXPECT_EQ(delta.RuleViolations(rule), rebuilt.RuleViolations(rule));
    EXPECT_EQ(delta.ViolatingCount(rule), rebuilt.ViolatingCount(rule));
    EXPECT_EQ(delta.ContextCount(rule), rebuilt.ContextCount(rule));
    EXPECT_EQ(delta.SatisfyingCount(rule), rebuilt.SatisfyingCount(rule));
  }
  EXPECT_EQ(delta.TotalViolations(), rebuilt.TotalViolations());
  for (std::size_t r = 0; r < expected.num_rows(); ++r) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      EXPECT_EQ(delta.TupleViolation(static_cast<RowId>(r),
                                     static_cast<RuleId>(i)),
                rebuilt.TupleViolation(static_cast<RowId>(r),
                                       static_cast<RuleId>(i)))
          << "row " << r << " rule " << i;
    }
  }
  EXPECT_EQ(delta.DirtyRows(), rebuilt.DirtyRows());
}

// The tentpole property: after ANY random sequence of overlay writes,
// merges, and discards, the incrementally maintained delta equals an index
// rebuilt from scratch — violation set, per-rule counts, dirty-tuple set —
// and the shared base is untouched.
class OverlayPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OverlayPropertyTest, RandomWalkMatchesRebuild) {
  RandomInstance inst(static_cast<std::uint64_t>(GetParam()), 50);
  Rng rng(static_cast<std::uint64_t>(GetParam()) ^ 0xDEADBEEFULL);

  ViolationIndex base(&inst.table, &inst.rules);
  const Table pristine = inst.table;  // snapshot before any overlay op
  const std::int64_t base_total = base.TotalViolations();
  const std::vector<RowId> base_dirty = base.DirtyRows();

  ViolationDelta delta(&base);
  Table mirror = pristine;  // what the overlay should resolve to

  auto random_cell = [&](RowId* row, AttrId* attr, ValueId* value) {
    *row = static_cast<RowId>(rng.NextBounded(inst.table.num_rows()));
    *attr = static_cast<AttrId>(rng.NextBounded(inst.table.num_attrs()));
    *value = static_cast<ValueId>(
        rng.NextBounded(inst.table.DomainSize(*attr)));
  };

  for (int step = 0; step < 120; ++step) {
    const std::uint64_t kind = rng.NextBounded(100);
    if (kind < 70) {  // overlay write
      RowId row;
      AttrId attr;
      ValueId value;
      random_cell(&row, &attr, &value);
      const ValueId before = delta.ValueAt(row, attr);
      EXPECT_EQ(delta.SetCell(row, attr, value), before);
      mirror.SetById(row, attr, value);
      EXPECT_EQ(delta.ValueAt(row, attr), value);
    } else if (kind < 85) {  // merge a second delta built independently
      ViolationDelta other(&base);
      std::map<std::pair<RowId, AttrId>, ValueId> other_writes;
      const int writes = 1 + static_cast<int>(rng.NextBounded(5));
      for (int w = 0; w < writes; ++w) {
        RowId row;
        AttrId attr;
        ValueId value;
        random_cell(&row, &attr, &value);
        other.SetCell(row, attr, value);
        if (value == pristine.id_at(row, attr)) {
          other_writes.erase({row, attr});  // net no-op cancels the write
        } else {
          other_writes[{row, attr}] = value;
        }
      }
      delta.Merge(other);
      for (const auto& [cell, value] : other_writes) {
        mirror.SetById(cell.first, cell.second, value);
      }
    } else if (kind < 95) {  // discard all pending state
      delta.Discard();
      EXPECT_TRUE(delta.empty());
      mirror = pristine;
    } else {  // copy: overlays are value types
      ViolationDelta copied = delta;
      delta = std::move(copied);
    }

    if (step % 10 == 9) {
      ExpectDeltaMatchesRebuild(delta, mirror, inst.rules);
    }
  }
  ExpectDeltaMatchesRebuild(delta, mirror, inst.rules);

  // The shared base never moved: same table cells, same aggregates.
  EXPECT_EQ(base.TotalViolations(), base_total);
  EXPECT_EQ(base.DirtyRows(), base_dirty);
  EXPECT_EQ(*inst.table.CountDifferingCells(pristine), 0u);
  EXPECT_EQ(base.version(), delta.base_version());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayPropertyTest, ::testing::Range(1, 11));

TEST(ViolationDeltaTest, ApplyThenRevertReadsAsBase) {
  RandomInstance inst(99, 40);
  ViolationIndex base(&inst.table, &inst.rules);
  Rng rng(123);

  ViolationDelta delta(&base);
  for (int i = 0; i < 30; ++i) {
    const RowId row = static_cast<RowId>(rng.NextBounded(40));
    const AttrId attr =
        static_cast<AttrId>(rng.NextBounded(inst.table.num_attrs()));
    const ValueId value =
        static_cast<ValueId>(rng.NextBounded(inst.table.DomainSize(attr)));
    const ValueId old = delta.SetCell(row, attr, value);
    delta.SetCell(row, attr, old);  // revert immediately
  }
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.pending_writes(), 0u);
  EXPECT_EQ(delta.TotalViolations(), base.TotalViolations());
  for (std::size_t i = 0; i < inst.rules.size(); ++i) {
    const RuleId rule = static_cast<RuleId>(i);
    EXPECT_EQ(delta.RuleViolations(rule), base.RuleViolations(rule));
    EXPECT_EQ(delta.ViolatingCount(rule), base.ViolatingCount(rule));
    EXPECT_EQ(delta.ContextCount(rule), base.ContextCount(rule));
  }
  EXPECT_EQ(delta.DirtyRows(), base.DirtyRows());
}

TEST(ViolationDeltaTest, MatchesIncrementalBaseOnSameWrites) {
  // The overlay resolves exactly like a second index that really applies
  // the same writes.
  RandomInstance inst(7, 45);
  ViolationIndex base(&inst.table, &inst.rules);
  Table applied_table = inst.table;
  ViolationIndex applied(&applied_table, &inst.rules);
  Rng rng(77);

  ViolationDelta delta(&base);
  for (int i = 0; i < 60; ++i) {
    const RowId row = static_cast<RowId>(rng.NextBounded(45));
    const AttrId attr =
        static_cast<AttrId>(rng.NextBounded(inst.table.num_attrs()));
    const ValueId value =
        static_cast<ValueId>(rng.NextBounded(inst.table.DomainSize(attr)));
    delta.SetCell(row, attr, value);
    applied.ApplyCellChange(row, attr, value);
  }
  for (std::size_t i = 0; i < inst.rules.size(); ++i) {
    const RuleId rule = static_cast<RuleId>(i);
    EXPECT_EQ(delta.RuleViolations(rule), applied.RuleViolations(rule));
    EXPECT_EQ(delta.SatisfyingCount(rule), applied.SatisfyingCount(rule));
  }
  EXPECT_EQ(delta.DirtyRows(), applied.DirtyRows());
}

// Asserts that the incrementally maintained `index` answers every query
// exactly as an index rebuilt from scratch over the same table — including
// the group-shaped queries that ride on the dense GroupId storage.
void ExpectIndexMatchesRebuild(const ViolationIndex& index, Table expected,
                               const RuleSet& rules) {
  ViolationIndex rebuilt(&expected, &rules);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleId rule = static_cast<RuleId>(i);
    EXPECT_EQ(index.RuleViolations(rule), rebuilt.RuleViolations(rule));
    EXPECT_EQ(index.ViolatingCount(rule), rebuilt.ViolatingCount(rule));
    EXPECT_EQ(index.ContextCount(rule), rebuilt.ContextCount(rule));
    EXPECT_EQ(index.SatisfyingCount(rule), rebuilt.SatisfyingCount(rule));
    // Interned GroupIds are an implementation detail, but the *number* of
    // live groups is observable and must match a fresh build (a free-list
    // slot aliasing a live group would break it, as would a leaked slot
    // still counted live).
    EXPECT_EQ(index.GroupStorage(rule).live_groups(),
              rebuilt.GroupStorage(rule).slots)
        << "rule " << i;
  }
  EXPECT_EQ(index.TotalViolations(), rebuilt.TotalViolations());
  EXPECT_EQ(index.DirtyRows(), rebuilt.DirtyRows());
  for (std::size_t r = 0; r < expected.num_rows(); ++r) {
    const RowId row = static_cast<RowId>(r);
    for (std::size_t i = 0; i < rules.size(); ++i) {
      const RuleId rule = static_cast<RuleId>(i);
      EXPECT_EQ(index.TupleViolation(row, rule),
                rebuilt.TupleViolation(row, rule))
          << "row " << r << " rule " << i;
      EXPECT_EQ(index.GroupTotal(row, rule), rebuilt.GroupTotal(row, rule))
          << "row " << r << " rule " << i;
      EXPECT_EQ(index.GroupMembers(row, rule),
                rebuilt.GroupMembers(row, rule))
          << "row " << r << " rule " << i;
      EXPECT_EQ(index.ViolationPartners(row, rule),
                rebuilt.ViolationPartners(row, rule))
          << "row " << r << " rule " << i;
    }
  }
}

// GroupId-recycling adversary: random ApplyCellChange sequences that
// repeatedly empty and re-create LHS groups. Free-list reuse must never
// alias a live group — verified by demanding every group-shaped query
// match a from-scratch rebuild at every checkpoint.
class GroupRecyclingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupRecyclingPropertyTest, RandomChurnMatchesRebuild) {
  RandomInstance inst(static_cast<std::uint64_t>(GetParam()) ^ 0xC0FFEEULL,
                      40);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);

  ViolationIndex index(&inst.table, &inst.rules);
  for (int step = 0; step < 200; ++step) {
    const RowId row = static_cast<RowId>(rng.NextBounded(40));
    const AttrId attr =
        static_cast<AttrId>(rng.NextBounded(inst.table.num_attrs()));
    // Biasing toward a small value set maximizes group empty/recreate
    // churn: rows chase each other through the same handful of keys.
    const ValueId value = static_cast<ValueId>(
        rng.NextBounded(rng.NextBounded(4) == 0
                            ? inst.table.DomainSize(attr)
                            : std::min<std::size_t>(
                                  2, inst.table.DomainSize(attr))));
    index.ApplyCellChange(row, attr, value);
    if (step % 20 == 19) {
      ExpectIndexMatchesRebuild(index, inst.table, inst.rules);
    }
  }
  ExpectIndexMatchesRebuild(index, inst.table, inst.rules);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupRecyclingPropertyTest,
                         ::testing::Range(1, 9));

TEST(GroupRecyclingTest, FreeListReusesSlotsInsteadOfGrowing) {
  // A singleton group is created and destroyed on every toggle of row 0's
  // STR value; after the first round trip the dense storage must recycle
  // the retired slot rather than grow, and the sibling groups' aggregates
  // must be unaffected (no aliasing through the free list).
  RandomInstance inst(4242, 30);
  ViolationIndex index(&inst.table, &inst.rules);
  const RuleId v1 = 3;  // "STR, CT -> ZIP" in RandomInstance's rule order
  ASSERT_TRUE(inst.rules.rule(v1).IsVariable());

  const AttrId str = 0;
  const ValueId fresh_a = inst.table.InternValue(str, "Churn Alley A");
  const ValueId fresh_b = inst.table.InternValue(str, "Churn Alley B");
  const ValueId original = inst.table.id_at(0, str);

  // Warm up: one full toggle creates (then retires) both fresh groups.
  index.ApplyCellChange(0, str, fresh_a);
  index.ApplyCellChange(0, str, fresh_b);
  index.ApplyCellChange(0, str, original);
  const auto warm = index.GroupStorage(v1);
  EXPECT_GT(warm.free_slots, 0u);

  for (int i = 0; i < 25; ++i) {
    index.ApplyCellChange(0, str, i % 2 == 0 ? fresh_a : fresh_b);
    index.ApplyCellChange(0, str, original);
    const auto storage = index.GroupStorage(v1);
    EXPECT_EQ(storage.slots, warm.slots) << "iteration " << i;
    EXPECT_EQ(storage.live_groups(), warm.live_groups()) << "iteration " << i;
  }
  ExpectIndexMatchesRebuild(index, inst.table, inst.rules);
}

TEST(ViolationDeltaTest, DiscardKeepsReuseTransparent) {
  // The reusable-scratch contract: stage → read → Discard in a loop, as
  // the VOI inner loop does, and every round answers exactly like a fresh
  // overlay would.
  RandomInstance inst(55, 35);
  ViolationIndex base(&inst.table, &inst.rules);
  Rng rng(555);

  ViolationDelta scratch(&base);
  for (int round = 0; round < 40; ++round) {
    const RowId row = static_cast<RowId>(rng.NextBounded(35));
    const AttrId attr =
        static_cast<AttrId>(rng.NextBounded(inst.table.num_attrs()));
    const ValueId value =
        static_cast<ValueId>(rng.NextBounded(inst.table.DomainSize(attr)));

    ViolationDelta fresh(&base);
    fresh.SetCell(row, attr, value);
    scratch.SetCell(row, attr, value);
    for (std::size_t i = 0; i < inst.rules.size(); ++i) {
      const RuleId rule = static_cast<RuleId>(i);
      EXPECT_EQ(scratch.RuleViolations(rule), fresh.RuleViolations(rule));
      EXPECT_EQ(scratch.SatisfyingCount(rule), fresh.SatisfyingCount(rule));
      EXPECT_EQ(scratch.ContextCount(rule), fresh.ContextCount(rule));
    }
    EXPECT_EQ(scratch.TotalViolations(), fresh.TotalViolations());
    scratch.Discard();
    EXPECT_TRUE(scratch.empty());
    EXPECT_EQ(scratch.pending_writes(), 0u);
    EXPECT_EQ(scratch.TotalViolations(), base.TotalViolations());
  }
}

TEST(ViolationDeltaTest, FreshDeltaIsTransparent) {
  RandomInstance inst(3, 20);
  ViolationIndex base(&inst.table, &inst.rules);
  const ViolationDelta delta(&base);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.TotalViolations(), base.TotalViolations());
  EXPECT_EQ(delta.DirtyRows(), base.DirtyRows());
  for (std::size_t r = 0; r < inst.table.num_rows(); ++r) {
    for (std::size_t a = 0; a < inst.table.num_attrs(); ++a) {
      EXPECT_EQ(delta.ValueAt(static_cast<RowId>(r), static_cast<AttrId>(a)),
                inst.table.id_at(static_cast<RowId>(r),
                                 static_cast<AttrId>(a)));
    }
  }
}

}  // namespace
}  // namespace gdr
