#include "core/voi.h"

#include <gtest/gtest.h>

namespace gdr {
namespace {

// Reproduces the worked example of Section 4.1: an 8-tuple instance where
// 4 tuples fall in phi1's context (ZIP = 46360), all violating it; the
// group suggests CT := 'Michigan City' for three of them with p-tilde =
// {0.9, 0.6, 0.6}; with w1 = 4/8 the estimated benefit is
//   4/8 * (0.9*(4-3)/1 + 0.6*(4-3)/1 + 0.6*(4-3)/1) = 1.05.
class Section41Example : public ::testing::Test {
 protected:
  Section41Example()
      : schema_(*Schema::Make({"CT", "ZIP"})), table_(schema_),
        rules_(schema_) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(table_.AppendRow({"Wrong" + std::to_string(i), "46360"})
                      .ok());
    }
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(table_.AppendRow({"Westville", "46391"}).ok());
    }
    EXPECT_TRUE(
        rules_.AddRuleFromString("phi1", "ZIP=46360 -> CT=Michigan City")
            .ok());
    index_ = std::make_unique<ViolationIndex>(&table_, &rules_);
    weights_ = {4.0 / 8.0};  // the example's w1
    ranker_ = std::make_unique<VoiRanker>(index_.get(), &weights_);
    michigan_city_ = table_.InternValue(0, "Michigan City");
  }

  Schema schema_;
  Table table_;
  RuleSet rules_;
  std::unique_ptr<ViolationIndex> index_;
  std::vector<double> weights_;
  std::unique_ptr<VoiRanker> ranker_;
  ValueId michigan_city_;
};

TEST_F(Section41Example, GroupBenefitIsOnePointOhFive) {
  UpdateGroup group;
  group.attr = 0;
  group.value = michigan_city_;
  group.updates = {{0, 0, michigan_city_, 0.0},
                   {1, 0, michigan_city_, 0.0},
                   {2, 0, michigan_city_, 0.0}};
  const std::vector<double> p_tilde = {0.9, 0.6, 0.6};
  auto probability = [&](const Update& u) {
    return p_tilde[static_cast<std::size_t>(u.row)];
  };
  EXPECT_NEAR(ranker_->ScoreGroup(group, probability), 1.05, 1e-9);
}

TEST_F(Section41Example, SingleUpdateBenefitTerm) {
  // (vio(D) - vio(D^r)) / |D^r |= phi1| = (4-3)/1 = 1, weighted by 4/8.
  const Update update{0, 0, michigan_city_, 0.0};
  EXPECT_NEAR(ranker_->UpdateBenefit(update), 0.5, 1e-9);
}

TEST_F(Section41Example, ScoringLeavesIndexUntouched) {
  const std::int64_t vio_before = index_->TotalViolations();
  const Update update{0, 0, michigan_city_, 0.0};
  ranker_->UpdateBenefit(update);
  EXPECT_EQ(index_->TotalViolations(), vio_before);
  EXPECT_EQ(table_.at(0, 0), "Wrong0");
}

TEST_F(Section41Example, UnrelatedAttributeHasZeroBenefit) {
  // An update on ZIP of an out-of-context tuple resolves nothing.
  const ValueId zip = table_.InternValue(1, "46391");
  const Update update{4, 1, zip, 0.0};
  EXPECT_DOUBLE_EQ(ranker_->UpdateBenefit(update), 0.0);
}

TEST_F(Section41Example, HarmfulUpdateHasNegativeBenefit) {
  // First fix one in-context tuple so phi1 has a satisfying tuple (the
  // Eq. 6 denominator); then dragging a clean Westville tuple into the
  // violated 46360 context adds a violation: benefit = 0.5*(3-4)/1.
  index_->ApplyCellChange(0, 0, michigan_city_);
  const ValueId bad_zip = table_.InternValue(1, "46360");
  const Update update{4, 1, bad_zip, 0.0};
  EXPECT_NEAR(ranker_->UpdateBenefit(update), -0.5, 1e-9);
}

TEST_F(Section41Example, RankOrdersGroupsByScore) {
  UpdateGroup fixers;
  fixers.attr = 0;
  fixers.value = michigan_city_;
  fixers.updates = {{0, 0, michigan_city_, 0.9}};

  const ValueId bad_zip = table_.InternValue(1, "46360");
  UpdateGroup breakers;
  breakers.attr = 1;
  breakers.value = bad_zip;
  breakers.updates = {{4, 1, bad_zip, 0.9}};

  const std::vector<UpdateGroup> groups = {breakers, fixers};
  const VoiRanker::Ranking ranking =
      ranker_->Rank(groups, [](const Update& u) { return u.score; });
  ASSERT_EQ(ranking.order.size(), 2u);
  EXPECT_EQ(ranking.order[0], 1u);  // fixers first
  EXPECT_GT(ranking.scores[1], ranking.scores[0]);
}

TEST_F(Section41Example, ProbabilityScalesBenefit) {
  UpdateGroup group;
  group.attr = 0;
  group.value = michigan_city_;
  group.updates = {{0, 0, michigan_city_, 0.0}};
  const double full =
      ranker_->ScoreGroup(group, [](const Update&) { return 1.0; });
  const double half =
      ranker_->ScoreGroup(group, [](const Update&) { return 0.5; });
  EXPECT_NEAR(half, full / 2.0, 1e-12);
}

TEST(VoiVariableRuleTest, BenefitCountsPairwiseResolution) {
  Schema schema = *Schema::Make({"STR", "CT", "ZIP"});
  Table table(schema);
  // Conflicted group (Main St): 3 x 46802 vs 1 x 46803 -> 6 ordered
  // violating pairs. Clean group (Oak Ave): 4 satisfying tuples.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(table.AppendRow({"Main St", "Fort Wayne", "46802"}).ok());
  }
  ASSERT_TRUE(table.AppendRow({"Main St", "Fort Wayne", "46803"}).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(table.AppendRow({"Oak Ave", "Fort Wayne", "46802"}).ok());
  }
  RuleSet rules(schema);
  ASSERT_TRUE(rules.AddRuleFromString("phi5", "STR, CT -> ZIP").ok());
  ViolationIndex index(&table, &rules);
  ASSERT_EQ(index.RuleViolations(0), 6);
  const std::vector<double> weights = {1.0};
  VoiRanker ranker(&index, &weights);

  // Fixing the outlier removes all 6 pairs; afterwards all 8 tuples
  // satisfy the rule: benefit = 6/8.
  const ValueId good = table.dict(2).Lookup("46802");
  EXPECT_NEAR(ranker.UpdateBenefit({3, 2, good, 0.0}), 6.0 / 8.0, 1e-12);

  // Adopting the outlier's value on a majority tuple makes the Main St
  // group 2-vs-2: vio rises 6 -> 8 while only the Oak Ave tuples satisfy.
  // Benefit = (6 - 8)/4 = -0.5.
  const ValueId bad = table.dict(2).Lookup("46803");
  EXPECT_NEAR(ranker.UpdateBenefit({0, 2, bad, 0.0}), -0.5, 1e-12);
}

}  // namespace
}  // namespace gdr
