#include "util/rng.h"

#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace gdr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(99);
  const std::uint64_t first = a.Next();
  a.Next();
  a.Seed(99);
  EXPECT_EQ(a.Next(), first);
}

class RngBoundsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundsTest, NextBoundedStaysInRange) {
  Rng rng(7);
  const std::uint64_t bound = GetParam();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundsTest,
                         ::testing::Values(1, 2, 3, 7, 10, 100, 1000,
                                           1ULL << 40));

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.NextBernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(23);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.NextWeighted(weights), 1u);
  }
}

TEST(RngTest, WeightedApproximatesDistribution) {
  Rng rng(29);
  const std::vector<double> weights = {1.0, 3.0};
  int second = 0;
  for (int i = 0; i < 10000; ++i) {
    second += rng.NextWeighted(weights) == 1 ? 1 : 0;
  }
  EXPECT_NEAR(second / 10000.0, 0.75, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<std::size_t> sample =
        rng.SampleWithoutReplacement(20, 10);
    EXPECT_EQ(sample.size(), 10u);
    const std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (std::size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(41);
  const std::vector<std::size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

}  // namespace
}  // namespace gdr
