// Concurrency stress over SessionManager, written for the TSan CI matrix:
// N client threads hammer open/next/feedback/evict/snapshot/close/dump
// against overlapping (tenant, session) keys while a byte budget keeps the
// background eviction scan constantly firing. The invariants: no data
// race (TSan's job), every error is a typed client-level status (never
// kInternal/kIOError), and the final counters reconcile.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "server/session_manager.h"

namespace gdr::server {
namespace {

OpenConfig StressConfig() {
  OpenConfig config;
  config.workload_spec = "figure1";
  config.feedback_budget = 30;
  config.seed = 11;
  return config;
}

TEST(ServerStressTest, ConcurrentClientsOnOverlappingSessions) {
  const auto spill =
      std::filesystem::temp_directory_path() / "gdr_spill_stress";
  std::filesystem::remove_all(spill);
  SessionManagerOptions options;
  options.spill_dir = spill.string();
  options.memory_budget_bytes = 1;  // evict at every opportunity
  SessionManager manager(options);

  const std::vector<SessionKey> keys = {
      {"t0", "shared-a"}, {"t0", "shared-b"}, {"t1", "shared-a"},
      {"t1", "own-c"},    {"t2", "own-d"},    {"t2", "own-e"}};

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 60;
  std::atomic<int> unexpected_errors{0};
  std::atomic<int> batches_pulled{0};

  const auto worker = [&](int thread_id) {
    std::mt19937 rng(1234u + static_cast<unsigned>(thread_id));
    const auto check = [&](const Status& status) {
      if (status.ok()) return;
      if (status.code() == StatusCode::kInternal ||
          status.code() == StatusCode::kIOError) {
        unexpected_errors.fetch_add(1);
        ADD_FAILURE() << "thread " << thread_id << ": "
                      << status.ToString();
      }
    };
    for (int op = 0; op < kOpsPerThread; ++op) {
      const SessionKey& key = keys[rng() % keys.size()];
      switch (rng() % 8) {
        case 0:
          check(manager.Open(key, StressConfig()).status());
          break;
        case 1:
        case 2: {
          const auto batch = manager.Next(key);
          check(batch.status());
          if (batch.ok() && !batch->suggestions.empty()) {
            batches_pulled.fetch_add(1);
            const WireSuggestion& s = batch->suggestions[0];
            check(manager
                      .Feedback(key, s.update_id, Feedback::kConfirm,
                                std::nullopt)
                      .status());
          }
          break;
        }
        case 3:
          check(manager
                    .Feedback(key, 1 + rng() % 20, Feedback::kReject,
                              "volunteered-" + std::to_string(rng() % 3))
                    .status());
          break;
        case 4:
          check(manager.Evict(key).status());
          break;
        case 5:
          check(manager.Snapshot(key).status());
          break;
        case 6:
          check(manager.Dump(key).status());
          break;
        case 7:
          if (rng() % 4 == 0) {
            check(manager.Close(key));
          } else {
            manager.Stats();
          }
          break;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(unexpected_errors.load(), 0);
  EXPECT_GT(batches_pulled.load(), 0);

  // The survivors are all still serviceable (rehydrating if evicted)...
  std::size_t live = 0;
  for (const SessionKey& key : keys) {
    const auto cells = manager.Dump(key);
    if (!cells.ok()) {
      EXPECT_EQ(cells.status().code(), StatusCode::kNotFound);
      continue;
    }
    ++live;
    EXPECT_EQ(cells->size() % 6, 0u);  // whole rows of the figure1 schema
    EXPECT_TRUE(manager.Close(key).ok());
  }
  // ...and after closing them the counters reconcile to an empty server.
  const WireServerStats stats = manager.Stats();
  EXPECT_EQ(stats.resident_sessions, 0u);
  EXPECT_EQ(stats.evicted_sessions, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
  EXPECT_GT(stats.evictions, 0u);  // the 1-byte budget fired
  std::filesystem::remove_all(spill);
}

TEST(ServerStressTest, ConcurrentOpensOfTheSameKeyAdmitExactlyOne) {
  const auto spill =
      std::filesystem::temp_directory_path() / "gdr_spill_stress_open";
  std::filesystem::remove_all(spill);
  SessionManagerOptions options;
  options.spill_dir = spill.string();
  SessionManager manager(options);

  constexpr int kThreads = 4;
  std::atomic<int> admitted{0};
  std::atomic<int> duplicates{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const auto opened = manager.Open({"race", "same"}, StressConfig());
      if (opened.ok()) {
        admitted.fetch_add(1);
      } else if (opened.status().code() == StatusCode::kAlreadyExists) {
        duplicates.fetch_add(1);
      } else {
        ADD_FAILURE() << opened.status().ToString();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(admitted.load(), 1);
  EXPECT_EQ(duplicates.load(), kThreads - 1);
  EXPECT_TRUE(manager.Close({"race", "same"}).ok());
  std::filesystem::remove_all(spill);
}

}  // namespace
}  // namespace gdr::server
