#include "sim/dataset2.h"

#include <map>

#include <gtest/gtest.h>

#include "cfd/violation_index.h"

namespace gdr {
namespace {

TEST(Dataset2Test, SchemaMatchesPaperAttributeSubset) {
  Dataset dataset = *GenerateDataset2({.num_records = 200, .seed = 1});
  EXPECT_EQ(dataset.clean.schema().attribute_names(),
            (std::vector<std::string>{
                "education", "hours_per_week", "income", "marital_status",
                "native_country", "occupation", "race", "relationship",
                "sex", "workclass"}));
}

TEST(Dataset2Test, CleanInstanceRespectsPlantedDependencies) {
  Dataset dataset = *GenerateDataset2({.num_records = 2000, .seed = 2});
  const Schema& schema = dataset.clean.schema();
  const AttrId occupation = schema.FindAttr("occupation");
  const AttrId workclass = schema.FindAttr("workclass");
  const AttrId relationship = schema.FindAttr("relationship");
  const AttrId marital = schema.FindAttr("marital_status");

  // occupation -> workclass and relationship -> marital_status must be
  // functions on the clean instance.
  std::map<std::string, std::string> occ_to_work;
  std::map<std::string, std::string> rel_to_marital;
  for (std::size_t r = 0; r < dataset.clean.num_rows(); ++r) {
    const RowId row = static_cast<RowId>(r);
    const std::string& occ = dataset.clean.at(row, occupation);
    const std::string& work = dataset.clean.at(row, workclass);
    auto [it, inserted] = occ_to_work.emplace(occ, work);
    if (!inserted) EXPECT_EQ(it->second, work) << occ;
    const std::string& rel = dataset.clean.at(row, relationship);
    const std::string& mar = dataset.clean.at(row, marital);
    auto [jt, jinserted] = rel_to_marital.emplace(rel, mar);
    if (!jinserted) EXPECT_EQ(jt->second, mar) << rel;
  }
  EXPECT_EQ(occ_to_work.size(), 10u);
  EXPECT_EQ(rel_to_marital.size(), 6u);
}

TEST(Dataset2Test, DiscoveredRulesHoldOnCleanData) {
  Dataset dataset = *GenerateDataset2({.num_records = 4000, .seed = 3});
  ASSERT_GT(dataset.rules.size(), 20u);
  Table clean = dataset.clean;
  ViolationIndex index(&clean, &dataset.rules);
  // Discovery ran on the dirty instance with confidence < 1, so the rules
  // must be (essentially) exact on the clean instance.
  EXPECT_EQ(index.TotalViolations(), 0);
}

TEST(Dataset2Test, DirtyFractionNearTarget) {
  Dataset dataset = *GenerateDataset2({.num_records = 5000, .seed = 4});
  EXPECT_NEAR(static_cast<double>(dataset.corrupted_tuples) / 5000.0, 0.3,
              0.04);
}

TEST(Dataset2Test, DirtyInstanceViolatesRules) {
  Dataset dataset = *GenerateDataset2({.num_records = 3000, .seed = 5});
  Table dirty = dataset.dirty;
  ViolationIndex index(&dirty, &dataset.rules);
  EXPECT_GT(index.TotalViolations(), 0);
  // Most corrupted tuples are detectable thanks to the bidirectional
  // dependency structure.
  EXPECT_GT(index.DirtyRows().size(), dataset.corrupted_tuples / 2);
}

TEST(Dataset2Test, DeterministicPerSeed) {
  Dataset a = *GenerateDataset2({.num_records = 400, .seed = 6});
  Dataset b = *GenerateDataset2({.num_records = 400, .seed = 6});
  EXPECT_EQ(*a.dirty.CountDifferingCells(b.dirty), 0u);
  EXPECT_EQ(a.rules.size(), b.rules.size());
}

TEST(Dataset2Test, SupportThresholdShapesRuleCount) {
  Dataset2Options tight;
  tight.num_records = 3000;
  tight.seed = 7;
  tight.discovery.min_support = 0.2;  // only very frequent LHS values
  Dataset few = *GenerateDataset2(tight);

  Dataset2Options loose = tight;
  loose.discovery.min_support = 0.05;
  Dataset many = *GenerateDataset2(loose);
  EXPECT_GT(many.rules.size(), few.rules.size());
}

}  // namespace
}  // namespace gdr
