#include "sim/master_data.h"

#include <set>

#include <gtest/gtest.h>

namespace gdr {
namespace {

TEST(MasterDirectoryTest, ZipsAreUniqueAndWellFormed) {
  const MasterDirectory dir = MasterDirectory::BuildIndiana();
  std::set<std::string> seen;
  for (const ZipEntry& entry : dir.zips) {
    EXPECT_EQ(entry.zip.size(), 5u);
    EXPECT_EQ(entry.state, "IN");
    EXPECT_FALSE(entry.city.empty());
    EXPECT_TRUE(seen.insert(entry.zip).second) << "duplicate " << entry.zip;
  }
  EXPECT_GE(dir.zips.size(), 40u);
  EXPECT_GE(dir.cities.size(), 20u);
}

TEST(MasterDirectoryTest, StreetZipFunctionIsConsistent) {
  const MasterDirectory dir = MasterDirectory::BuildIndiana();
  for (const std::string& city : dir.cities) {
    const auto& streets = dir.streets_by_city.at(city);
    EXPECT_EQ(streets.size(), 40u);
    std::set<std::string> unique(streets.begin(), streets.end());
    EXPECT_EQ(unique.size(), streets.size()) << "duplicate street in " << city;
    for (const std::string& street : streets) {
      const std::string zip = dir.ZipOfStreet(street, city);
      ASSERT_FALSE(zip.empty());
      // The zip belongs to this city.
      EXPECT_EQ(dir.EntryForZip(zip).city, city);
    }
  }
}

TEST(MasterDirectoryTest, BoundaryPartnersAreValidAndDistinct) {
  const MasterDirectory dir = MasterDirectory::BuildIndiana();
  for (const ZipEntry& entry : dir.zips) {
    auto it = dir.boundary_partner.find(entry.zip);
    ASSERT_NE(it, dir.boundary_partner.end())
        << "no boundary partner for " << entry.zip;
    EXPECT_NE(it->second, entry.zip);
    // Partner must itself be a real zip.
    EXPECT_NO_FATAL_FAILURE(dir.EntryForZip(it->second));
  }
}

TEST(BuildHospitalsTest, FleetShapeAndDeterminism) {
  const MasterDirectory dir = MasterDirectory::BuildIndiana();
  HospitalFleetOptions options;
  options.count = 74;
  options.seed = 13;
  const std::vector<Hospital> a = BuildHospitals(dir, options);
  const std::vector<Hospital> b = BuildHospitals(dir, options);
  ASSERT_EQ(a.size(), 74u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].profile, b[i].profile);
    EXPECT_DOUBLE_EQ(a[i].error_rate, b[i].error_rate);
  }
}

TEST(BuildHospitalsTest, HospitalsAreInternallyConsistent) {
  const MasterDirectory dir = MasterDirectory::BuildIndiana();
  const std::vector<Hospital> fleet = BuildHospitals(dir, {});
  std::size_t clean = 0;
  for (const Hospital& h : fleet) {
    EXPECT_EQ(dir.ZipOfStreet(h.street, h.city), h.zip);
    if (h.profile == Hospital::Profile::kClean) {
      ++clean;
      EXPECT_DOUBLE_EQ(h.error_rate, 0.0);
    } else {
      EXPECT_GT(h.error_rate, 0.0);
      EXPECT_LT(h.error_rate, 1.0);
    }
    if (h.profile == Hospital::Profile::kCitySwap) {
      EXPECT_FALSE(h.wrong_city.empty());
      EXPECT_NE(h.wrong_city, h.city);
    }
  }
  // Roughly the configured clean fraction.
  EXPECT_GT(clean, fleet.size() / 5);
  EXPECT_LT(clean, fleet.size() * 3 / 5);
}

TEST(HospitalVolumeWeightsTest, ZipfShape) {
  const std::vector<double> weights = HospitalVolumeWeights(10, 1.0);
  ASSERT_EQ(weights.size(), 10u);
  EXPECT_DOUBLE_EQ(weights[0], 1.0);
  for (std::size_t i = 1; i < weights.size(); ++i) {
    EXPECT_LT(weights[i], weights[i - 1]);
  }
  EXPECT_NEAR(weights[9], 0.1, 1e-12);
}

TEST(HospitalProfileNameTest, AllNamed) {
  EXPECT_STREQ(HospitalProfileName(Hospital::Profile::kClean), "clean");
  EXPECT_STREQ(HospitalProfileName(Hospital::Profile::kZipBoundary),
               "zip-boundary");
  EXPECT_STREQ(HospitalProfileName(Hospital::Profile::kCitySwap),
               "city-swap");
}

}  // namespace
}  // namespace gdr
