#include "data/schema.h"

#include <gtest/gtest.h>

namespace gdr {
namespace {

TEST(SchemaTest, MakeAssignsDenseIds) {
  auto schema = Schema::Make({"A", "B", "C"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_attrs(), 3u);
  EXPECT_EQ(schema->attr_name(0), "A");
  EXPECT_EQ(schema->attr_name(2), "C");
}

TEST(SchemaTest, RejectsDuplicates) {
  auto schema = Schema::Make({"A", "B", "A"});
  EXPECT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsEmptyName) {
  auto schema = Schema::Make({"A", ""});
  EXPECT_FALSE(schema.ok());
}

TEST(SchemaTest, FindAttr) {
  auto schema = Schema::Make({"City", "Zip"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->FindAttr("Zip"), 1);
  EXPECT_EQ(schema->FindAttr("State"), kInvalidAttrId);
}

TEST(SchemaTest, GetAttrReportsName) {
  auto schema = Schema::Make({"City"});
  ASSERT_TRUE(schema.ok());
  auto missing = schema->GetAttr("Nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("Nope"), std::string::npos);
  auto found = schema->GetAttr("City");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 0);
}

TEST(SchemaTest, EqualityByNames) {
  auto a = Schema::Make({"X", "Y"});
  auto b = Schema::Make({"X", "Y"});
  auto c = Schema::Make({"Y", "X"});
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *c);
}

TEST(SchemaTest, EmptySchemaAllowed) {
  auto schema = Schema::Make({});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_attrs(), 0u);
}

}  // namespace
}  // namespace gdr
