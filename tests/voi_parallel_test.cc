#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/voi.h"
#include "workload/registry.h"
#include "sim/experiment.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gdr {
namespace {

// Randomized instance: table + constant/variable rule mix + synthetic
// candidate pools grouped by (attr, value), as GroupUpdates produces.
struct RandomVoiInstance {
  explicit RandomVoiInstance(std::uint64_t seed)
      : schema(*Schema::Make({"STR", "CT", "STT", "ZIP"})),
        table(schema),
        rules(schema),
        rng(seed) {
    const char* streets[] = {"Main St", "Oak Ave", "Sherden Rd", "Elm St"};
    const char* cities[] = {"Fort Wayne", "Westville", "Michigan City"};
    const char* states[] = {"IN", "IND"};
    const char* zips[] = {"46825", "46391", "46360", "46802", "46774"};
    for (int i = 0; i < 80; ++i) {
      EXPECT_TRUE(table
                      .AppendRow({streets[rng.NextBounded(4)],
                                  cities[rng.NextBounded(3)],
                                  states[rng.NextBounded(2)],
                                  zips[rng.NextBounded(5)]})
                      .ok());
    }
    EXPECT_TRUE(
        rules.AddRuleFromString("c1", "ZIP=46360 -> CT=Michigan City ; STT=IN")
            .ok());
    EXPECT_TRUE(rules.AddRuleFromString("c2", "ZIP=46391 -> CT=Westville")
                    .ok());
    EXPECT_TRUE(rules.AddRuleFromString("v1", "STR, CT -> ZIP").ok());
    EXPECT_TRUE(rules.AddRuleFromString("v2", "ZIP -> CT").ok());
    index = std::make_unique<ViolationIndex>(&table, &rules);

    weights.resize(rules.size());
    for (double& w : weights) w = 0.05 + 0.95 * rng.NextDouble();

    const std::size_t num_groups = 12;
    for (std::size_t g = 0; g < num_groups; ++g) {
      UpdateGroup group;
      group.attr = static_cast<AttrId>(rng.NextBounded(table.num_attrs()));
      group.value = static_cast<ValueId>(
          rng.NextBounded(table.DomainSize(group.attr)));
      const std::size_t members = 3 + rng.NextBounded(12);
      for (std::size_t row_index :
           rng.SampleWithoutReplacement(table.num_rows(), members)) {
        Update update;
        update.row = static_cast<RowId>(row_index);
        update.attr = group.attr;
        update.value = group.value;
        update.score = rng.NextDouble();
        group.updates.push_back(update);
      }
      groups.push_back(std::move(group));
    }
  }

  Schema schema;
  Table table;
  RuleSet rules;
  Rng rng;
  std::unique_ptr<ViolationIndex> index;
  std::vector<double> weights;
  std::vector<UpdateGroup> groups;
};

// A deterministic stand-in for the learner's p-tilde.
double Probability(const Update& u) {
  return 0.1 + 0.8 * u.score;
}

// The pre-overlay reference semantics: apply the hypothetical to a real
// index, read the aggregates, revert. Evaluated on private copies so the
// shared instance stays untouched.
double LegacyMutateAndRevertBenefit(const Table& table, const RuleSet& rules,
                                    const std::vector<double>& weights,
                                    const Update& update) {
  Table scratch = table;
  ViolationIndex index(&scratch, &rules);
  const std::vector<RuleId>& affected = rules.RulesMentioning(update.attr);
  if (affected.empty()) return 0.0;
  std::vector<std::int64_t> vio_before(affected.size());
  for (std::size_t i = 0; i < affected.size(); ++i) {
    vio_before[i] = index.RuleViolations(affected[i]);
  }
  const ValueId old =
      index.ApplyCellChange(update.row, update.attr, update.value);
  double benefit = 0.0;
  for (std::size_t i = 0; i < affected.size(); ++i) {
    const RuleId rule = affected[i];
    const std::int64_t satisfying = index.SatisfyingCount(rule);
    if (satisfying <= 0) continue;
    const double drop =
        static_cast<double>(vio_before[i] - index.RuleViolations(rule));
    benefit += weights[static_cast<std::size_t>(rule)] * drop /
               static_cast<double>(satisfying);
  }
  index.ApplyCellChange(update.row, update.attr, old);
  return benefit;
}

class VoiParallelTest : public ::testing::TestWithParam<int> {};

// Differential: the overlay-based benefit is bit-identical to the legacy
// mutate-and-revert evaluation for every pooled update.
TEST_P(VoiParallelTest, OverlayBenefitMatchesMutateAndRevert) {
  RandomVoiInstance inst(static_cast<std::uint64_t>(GetParam()));
  VoiRanker ranker(inst.index.get(), &inst.weights);
  for (const UpdateGroup& group : inst.groups) {
    for (const Update& update : group.updates) {
      EXPECT_EQ(ranker.UpdateBenefit(update),
                LegacyMutateAndRevertBenefit(inst.table, inst.rules,
                                             inst.weights, update));
    }
  }
}

// Differential: the scratch-reusing benefit evaluation (one delta staged
// and Discard()ed per update — the ranking inner loop) is bit-identical
// to constructing a fresh delta per update and to the legacy
// mutate-and-revert layout.
TEST_P(VoiParallelTest, ScratchReuseMatchesFreshDelta) {
  RandomVoiInstance inst(static_cast<std::uint64_t>(GetParam()));
  VoiRanker ranker(inst.index.get(), &inst.weights);
  ViolationDelta scratch(inst.index.get());
  for (const UpdateGroup& group : inst.groups) {
    for (const Update& update : group.updates) {
      const double reused = ranker.UpdateBenefit(update, &scratch);
      EXPECT_TRUE(scratch.empty());  // the scratch contract: discarded
      EXPECT_EQ(reused, ranker.UpdateBenefit(update));
      EXPECT_EQ(reused, LegacyMutateAndRevertBenefit(inst.table, inst.rules,
                                                     inst.weights, update));
    }
  }
}

// Differential: parallel scores and the chosen top group are bit-identical
// to the serial path at 1, 2, 4, and 8 threads (scratch-delta reuse is on
// everywhere — serial keeps one delta, each pool slot keeps its own), and
// all of them pin to scores derived from the legacy mutate-and-revert
// layout.
TEST_P(VoiParallelTest, ParallelRankingBitIdenticalToSerial) {
  RandomVoiInstance inst(static_cast<std::uint64_t>(GetParam()));

  VoiRanker serial(inst.index.get(), &inst.weights);
  const VoiRanker::Ranking reference =
      serial.Rank(inst.groups, Probability);
  ASSERT_EQ(reference.scores.size(), inst.groups.size());

  // Old-layout oracle: per-group scores accumulated in the same update
  // order from mutate-and-revert benefits on a rebuilt index.
  for (std::size_t i = 0; i < inst.groups.size(); ++i) {
    double expected = 0.0;
    for (const Update& update : inst.groups[i].updates) {
      expected += Probability(update) *
                  LegacyMutateAndRevertBenefit(inst.table, inst.rules,
                                               inst.weights, update);
    }
    EXPECT_EQ(reference.scores[i], expected) << "group " << i;
  }

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    VoiRanker parallel(inst.index.get(), &inst.weights, &pool);
    const VoiRanker::Ranking ranking =
        parallel.Rank(inst.groups, Probability);
    // Exact double equality: same operations in the same order per group.
    EXPECT_EQ(ranking.scores, reference.scores) << threads << " threads";
    EXPECT_EQ(ranking.order, reference.order) << threads << " threads";
    ASSERT_FALSE(ranking.order.empty());
    EXPECT_EQ(ranking.order.front(), reference.order.front());
  }
}

// Scoring through the ranker leaves the shared index and table untouched.
TEST_P(VoiParallelTest, RankingNeverMutatesSharedState) {
  RandomVoiInstance inst(static_cast<std::uint64_t>(GetParam()));
  const Table before = inst.table;
  const std::int64_t vio_before = inst.index->TotalViolations();
  const std::uint64_t version_before = inst.index->version();

  ThreadPool pool(4);
  VoiRanker ranker(inst.index.get(), &inst.weights, &pool);
  ranker.Rank(inst.groups, Probability);

  EXPECT_EQ(inst.index->TotalViolations(), vio_before);
  EXPECT_EQ(inst.index->version(), version_before);
  EXPECT_EQ(*inst.table.CountDifferingCells(before), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VoiParallelTest, ::testing::Range(1, 7));

// Determinism: a full Experiment run with a fixed seed yields identical
// stats and repair precision/recall regardless of num_threads.
TEST(VoiParallelDeterminismTest, ExperimentIdenticalAcrossThreadCounts) {
  const Dataset dataset = *WorkloadRegistry::Global().Resolve("dataset1:records=600,seed=21");

  auto run = [&dataset](std::size_t num_threads) {
    ExperimentConfig config;
    config.strategy = Strategy::kGdr;
    config.feedback_budget = 60;
    config.seed = 9;
    config.sample_every = 10;
    config.num_threads = num_threads;
    auto result = RunStrategyExperiment(dataset, config);
    EXPECT_TRUE(result.ok());
    return *result;
  };

  const ExperimentResult reference = run(1);
  for (std::size_t threads : {2u, 8u}) {
    const ExperimentResult result = run(threads);
    const GdrStats& a = reference.stats;
    const GdrStats& b = result.stats;
    EXPECT_EQ(a.initial_dirty, b.initial_dirty);
    EXPECT_EQ(a.user_feedback, b.user_feedback);
    EXPECT_EQ(a.user_confirms, b.user_confirms);
    EXPECT_EQ(a.user_rejects, b.user_rejects);
    EXPECT_EQ(a.user_retains, b.user_retains);
    EXPECT_EQ(a.user_suggested_values, b.user_suggested_values);
    EXPECT_EQ(a.learner_decisions, b.learner_decisions);
    EXPECT_EQ(a.learner_confirms, b.learner_confirms);
    EXPECT_EQ(a.forced_repairs, b.forced_repairs);
    EXPECT_EQ(a.outer_iterations, b.outer_iterations);

    EXPECT_EQ(reference.final_loss, result.final_loss);
    EXPECT_EQ(reference.remaining_violations, result.remaining_violations);
    EXPECT_EQ(reference.accuracy.updated_cells, result.accuracy.updated_cells);
    EXPECT_EQ(reference.accuracy.correctly_updated_cells,
              result.accuracy.correctly_updated_cells);
    EXPECT_EQ(reference.accuracy.initially_incorrect_cells,
              result.accuracy.initially_incorrect_cells);
    EXPECT_EQ(reference.accuracy.Precision(), result.accuracy.Precision());
    EXPECT_EQ(reference.accuracy.Recall(), result.accuracy.Recall());

    ASSERT_EQ(reference.curve.size(), result.curve.size());
    for (std::size_t i = 0; i < reference.curve.size(); ++i) {
      EXPECT_EQ(reference.curve[i].feedback, result.curve[i].feedback);
      EXPECT_EQ(reference.curve[i].improvement_pct,
                result.curve[i].improvement_pct);
      EXPECT_EQ(reference.curve[i].loss, result.curve[i].loss);
    }
  }
}

}  // namespace
}  // namespace gdr
