// Workload subsystem: spec parsing, typed parameter access, unknown-key
// rejection, registry resolution, built-in adapter bit-identity with the
// direct generators, and the csv: factory's error paths. Round-trip
// (export → load → identical experiment fingerprints) lives in
// workload_roundtrip_test.cc.
#include "workload/workload.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "sim/dataset1.h"
#include "sim/dataset2.h"
#include "workload/file_workload.h"
#include "workload/registry.h"
#include "workload/row_stream.h"

namespace gdr {
namespace {

std::filesystem::path TempDir(const std::string& leaf) {
  const auto dir = std::filesystem::temp_directory_path() / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void WriteFile(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  ASSERT_TRUE(out.good());
}

// ---------------------------------------------------------------- spec --

TEST(WorkloadSpecTest, ParsesNameOnly) {
  auto spec = WorkloadSpec::Parse("dataset1");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "dataset1");
  EXPECT_TRUE(spec->params.empty());
}

TEST(WorkloadSpecTest, ParsesParamsInOrder) {
  auto spec = WorkloadSpec::Parse("dataset1:records=400, seed=5,volume_skew=0.5");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->params.size(), 3u);
  EXPECT_EQ(spec->params[0].first, "records");
  EXPECT_EQ(spec->params[0].second, "400");
  EXPECT_EQ(spec->params[1].first, "seed");
  EXPECT_EQ(spec->params[1].second, "5");
  EXPECT_EQ(spec->ToString(), "dataset1:records=400,seed=5,volume_skew=0.5");
}

TEST(WorkloadSpecTest, ValueMayContainColonAndEquals) {
  auto spec = WorkloadSpec::Parse("csv:clean=C:/data/x.csv,name=a=b");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(*spec->Find("clean"), "C:/data/x.csv");
  EXPECT_EQ(*spec->Find("name"), "a=b");
}

TEST(WorkloadSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(WorkloadSpec::Parse("").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("  :records=4").ok());
  // A missing name must not silently swallow the first parameter.
  EXPECT_FALSE(WorkloadSpec::Parse("records=400").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("d1:records").ok());
  const auto dup = WorkloadSpec::Parse("d1:a=1,a=2");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate parameter 'a'"),
            std::string::npos);
}

TEST(WorkloadSpecTest, TypedGettersParseAndReportOffendingValue) {
  const auto spec = WorkloadSpec::Parse("w:n=42,f=0.25,bad=xyz");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(*spec->GetSize("n", 7), 42u);
  EXPECT_EQ(*spec->GetSize("absent", 7), 7u);
  EXPECT_DOUBLE_EQ(*spec->GetDouble("f", 0.0), 0.25);
  EXPECT_EQ(*spec->GetInt("n", 0), 42);
  const auto bad = spec->GetSize("bad", 0);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("'bad'"), std::string::npos);
  EXPECT_NE(bad.status().message().find("'xyz'"), std::string::npos);
}

TEST(WorkloadSpecTest, RejectUnknownKeysNamesOffenderAndAcceptedSet) {
  const auto spec = WorkloadSpec::Parse("w:records=4,recrods=5");
  ASSERT_TRUE(spec.ok());
  const Status status = spec->RejectUnknownKeys({"records", "seed"});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("'recrods'"), std::string::npos);
  EXPECT_NE(status.message().find("records, seed"), std::string::npos);
  EXPECT_TRUE(spec->RejectUnknownKeys({"records", "recrods"}).ok());
}

// ------------------------------------------------------------ registry --

TEST(WorkloadRegistryTest, GlobalHasBuiltins) {
  WorkloadRegistry& registry = WorkloadRegistry::Global();
  EXPECT_TRUE(registry.Contains("dataset1"));
  EXPECT_TRUE(registry.Contains("dataset2"));
  EXPECT_TRUE(registry.Contains("figure1"));
  EXPECT_TRUE(registry.Contains("csv"));
  EXPECT_FALSE(registry.Contains("nope"));
  // List is sorted and carries descriptions.
  const auto list = registry.List();
  ASSERT_GE(list.size(), 4u);
  for (std::size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(list[i - 1].first, list[i].first);
  }
}

TEST(WorkloadRegistryTest, UnknownWorkloadErrorListsRegistered) {
  const auto resolved = WorkloadRegistry::Global().Resolve("unknown-wl");
  ASSERT_FALSE(resolved.ok());
  EXPECT_NE(resolved.status().message().find("'unknown-wl'"),
            std::string::npos);
  EXPECT_NE(resolved.status().message().find("dataset1"), std::string::npos);
}

TEST(WorkloadRegistryTest, DuplicateRegistrationFails) {
  WorkloadRegistry registry;
  auto factory = [](const WorkloadSpec&) -> Result<Dataset> {
    return Status::InvalidArgument("unused");
  };
  ASSERT_TRUE(registry.Register("w", "", factory).ok());
  EXPECT_FALSE(registry.Register("w", "", factory).ok());
  EXPECT_FALSE(registry.Register("", "", factory).ok());
}

TEST(WorkloadRegistryTest, UnknownParameterRejectedByBuiltins) {
  const auto resolved =
      WorkloadRegistry::Global().Resolve("dataset1:record=100");
  ASSERT_FALSE(resolved.ok());
  EXPECT_NE(resolved.status().message().find("'record'"), std::string::npos);
  EXPECT_FALSE(
      WorkloadRegistry::Global().Resolve("figure1:records=2").ok());
  EXPECT_FALSE(
      WorkloadRegistry::Global().Resolve("dataset2:hospitals=3").ok());
}

void ExpectSameDataset(const Dataset& a, const Dataset& b) {
  ASSERT_TRUE(a.clean.schema() == b.clean.schema());
  ASSERT_EQ(a.clean.num_rows(), b.clean.num_rows());
  ASSERT_EQ(a.dirty.num_rows(), b.dirty.num_rows());
  EXPECT_EQ(*a.clean.CountDifferingCells(b.clean), 0u);
  EXPECT_EQ(*a.dirty.CountDifferingCells(b.dirty), 0u);
  EXPECT_EQ(a.corrupted_tuples, b.corrupted_tuples);
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (const RuleId id : a.rules.AllRuleIds()) {
    EXPECT_EQ(a.rules.rule(id).ToString(a.rules.schema()),
              b.rules.rule(id).ToString(b.rules.schema()));
  }
  // Value interning (and therefore every downstream id-based tie-break)
  // must agree, not just the strings.
  for (std::size_t attr = 0; attr < a.dirty.num_attrs(); ++attr) {
    ASSERT_EQ(a.dirty.DomainSize(static_cast<AttrId>(attr)),
              b.dirty.DomainSize(static_cast<AttrId>(attr)));
    for (std::size_t r = 0; r < a.dirty.num_rows(); ++r) {
      ASSERT_EQ(a.dirty.id_at(static_cast<RowId>(r), static_cast<AttrId>(attr)),
                b.dirty.id_at(static_cast<RowId>(r),
                              static_cast<AttrId>(attr)));
    }
  }
}

TEST(WorkloadRegistryTest, Dataset1AdapterIsBitIdenticalToGenerator) {
  const auto via_registry = WorkloadRegistry::Global().Resolve(
      "dataset1:records=500,seed=11,hospitals=20");
  ASSERT_TRUE(via_registry.ok());
  Dataset1Options options;
  options.num_records = 500;
  options.seed = 11;
  options.num_hospitals = 20;
  const auto direct = GenerateDataset1(options);
  ASSERT_TRUE(direct.ok());
  ExpectSameDataset(*via_registry, *direct);
}

TEST(WorkloadRegistryTest, Dataset2AdapterIsBitIdenticalToGenerator) {
  const auto via_registry = WorkloadRegistry::Global().Resolve(
      "dataset2:records=600,seed=9,dirty_fraction=0.25");
  ASSERT_TRUE(via_registry.ok());
  Dataset2Options options;
  options.num_records = 600;
  options.seed = 9;
  options.dirty_tuple_fraction = 0.25;
  const auto direct = GenerateDataset2(options);
  ASSERT_TRUE(direct.ok());
  ExpectSameDataset(*via_registry, *direct);
}

// ------------------------------------------------------------- csv ------

class CsvWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir("gdr_workload_test");
    WriteFile(dir_ / "clean.csv",
              "A,B,ZIP\n"
              "x,u,1\n"
              "y,v,2\n"
              "y,w,2\n");
    WriteFile(dir_ / "dirty.csv",
              "A,B,ZIP\n"
              "x,u,1\n"
              "y,v,9\n"
              "y,w,2\n");
    WriteFile(dir_ / "rules.txt",
              "# comment\n"
              "r1: ZIP=1 -> A=x\n"
              "\n"
              "r2: ZIP=2 -> A=y\n");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  WorkloadSpec Spec() const { return CsvWorkloadSpec(dir_.string()); }

  std::filesystem::path dir_;
};

TEST_F(CsvWorkloadTest, LoadsTablesRulesAndCorruptionCount) {
  const auto dataset = WorkloadRegistry::Global().Resolve(Spec());
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->name, "clean");  // stem of clean.csv; name= overrides
  EXPECT_EQ(dataset->clean.num_rows(), 3u);
  EXPECT_EQ(dataset->dirty.num_rows(), 3u);
  EXPECT_EQ(dataset->corrupted_tuples, 1u);
  EXPECT_EQ(dataset->rules.size(), 2u);
  EXPECT_EQ(dataset->dirty.at(1, 2), "9");
  EXPECT_EQ(dataset->clean.at(1, 2), "2");
  // The dirty table is a diff-applied copy of clean: shared interning.
  EXPECT_EQ(dataset->dirty.id_at(0, 0), dataset->clean.id_at(0, 0));
}

TEST_F(CsvWorkloadTest, NameParameterOverridesStem) {
  WorkloadSpec spec = Spec();
  spec.params.emplace_back("name", "toy");
  const auto dataset = WorkloadRegistry::Global().Resolve(spec);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->name, "toy");
}

TEST_F(CsvWorkloadTest, ErrorInjectorSpecIsDeterministic) {
  WorkloadSpec spec;
  spec.name = "csv";
  spec.params = {{"clean", (dir_ / "clean.csv").string()},
                 {"rules", (dir_ / "rules.txt").string()},
                 {"errors", "random"},
                 {"dirty_fraction", "0.9"},
                 {"error_seed", "3"},
                 {"error_attrs", "A|B"}};
  const auto a = WorkloadRegistry::Global().Resolve(spec);
  const auto b = WorkloadRegistry::Global().Resolve(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a->dirty.CountDifferingCells(b->dirty), 0u);
  EXPECT_GT(a->corrupted_tuples, 0u);
  // ZIP was excluded from error_attrs.
  for (std::size_t r = 0; r < a->dirty.num_rows(); ++r) {
    EXPECT_EQ(a->dirty.at(static_cast<RowId>(r), 2),
              a->clean.at(static_cast<RowId>(r), 2));
  }
}

TEST_F(CsvWorkloadTest, MissingRequiredKeysFail) {
  WorkloadSpec spec;
  spec.name = "csv";
  const auto no_clean = WorkloadRegistry::Global().Resolve(spec);
  ASSERT_FALSE(no_clean.ok());
  EXPECT_NE(no_clean.status().message().find("clean="), std::string::npos);

  spec.params = {{"clean", (dir_ / "clean.csv").string()}};
  const auto no_rules = WorkloadRegistry::Global().Resolve(spec);
  ASSERT_FALSE(no_rules.ok());
  EXPECT_NE(no_rules.status().message().find("rules="), std::string::npos);

  spec.params.emplace_back("rules", (dir_ / "rules.txt").string());
  const auto no_dirt = WorkloadRegistry::Global().Resolve(spec);
  ASSERT_FALSE(no_dirt.ok());
  EXPECT_NE(no_dirt.status().message().find("dirty"), std::string::npos);

  spec.params.emplace_back("dirty", (dir_ / "dirty.csv").string());
  spec.params.emplace_back("errors", "random");
  EXPECT_FALSE(WorkloadRegistry::Global().Resolve(spec).ok());  // both
}

TEST_F(CsvWorkloadTest, InjectorKnobsRejectedAlongsideDirtyFile) {
  WorkloadSpec spec = Spec();  // carries dirty=FILE
  spec.params.emplace_back("error_seed", "7");
  const auto dataset = WorkloadRegistry::Global().Resolve(spec);
  ASSERT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("'error_seed'"),
            std::string::npos);
  EXPECT_NE(dataset.status().message().find("errors=random"),
            std::string::npos);
}

TEST_F(CsvWorkloadTest, MismatchedDirtyFileFails) {
  WriteFile(dir_ / "dirty.csv", "A,B,ZIP\nx,u,1\n");  // row count differs
  auto short_file = WorkloadRegistry::Global().Resolve(Spec());
  ASSERT_FALSE(short_file.ok());
  EXPECT_NE(short_file.status().message().find("row count"),
            std::string::npos);

  WriteFile(dir_ / "dirty.csv", "A,B,Z\nx,u,1\ny,v,9\ny,w,2\n");  // header
  auto bad_header = WorkloadRegistry::Global().Resolve(Spec());
  ASSERT_FALSE(bad_header.ok());
  EXPECT_NE(bad_header.status().message().find("header"), std::string::npos);
}

TEST_F(CsvWorkloadTest, BadRuleLineFailsWithFileAndLine) {
  WriteFile(dir_ / "rules.txt", "r1: ZIP=1 -> A=x\nr2: NOPE=1 -> A=x\n");
  const auto dataset = WorkloadRegistry::Global().Resolve(Spec());
  ASSERT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find(":2:"), std::string::npos);
  EXPECT_NE(dataset.status().message().find("'NOPE'"), std::string::npos);
}

TEST_F(CsvWorkloadTest, UnknownErrorModelFails) {
  WorkloadSpec spec;
  spec.name = "csv";
  spec.params = {{"clean", (dir_ / "clean.csv").string()},
                 {"rules", (dir_ / "rules.txt").string()},
                 {"errors", "gaussian"}};
  const auto dataset = WorkloadRegistry::Global().Resolve(spec);
  ASSERT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("'gaussian'"), std::string::npos);
}

TEST_F(CsvWorkloadTest, MissingFileFails) {
  WorkloadSpec spec = Spec();
  for (auto& [key, value] : spec.params) {
    if (key == "clean") value = (dir_ / "absent.csv").string();
  }
  EXPECT_FALSE(WorkloadRegistry::Global().Resolve(spec).ok());
}

TEST_F(CsvWorkloadTest, AutoNamedRulesAndCrlfFilesLoad) {
  // CRLF everywhere and a rule line without a "name:" prefix.
  WriteFile(dir_ / "clean.csv", "A,B,ZIP\r\nx,u,1\r\ny,v,2\r\ny,w,2\r\n");
  WriteFile(dir_ / "dirty.csv", "A,B,ZIP\r\nx,u,1\r\ny,v,9\r\ny,w,2\r\n");
  WriteFile(dir_ / "rules.txt", "ZIP=1 -> A=x\r\n");
  const auto dataset = WorkloadRegistry::Global().Resolve(Spec());
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->rules.size(), 1u);
  EXPECT_EQ(dataset->rules.rule(0).name(), "r1");
  EXPECT_EQ(dataset->corrupted_tuples, 1u);
}

TEST_F(CsvWorkloadTest, TruncatedDirtyRecordFailsWithRecordNumber) {
  // Record 3 of dirty.csv is cut short mid-row (a truncated download).
  WriteFile(dir_ / "dirty.csv",
            "A,B,ZIP\n"
            "x,u,1\n"
            "y,v\n");
  const auto dataset = WorkloadRegistry::Global().Resolve(Spec());
  ASSERT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("record 3"), std::string::npos)
      << dataset.status().message();
  EXPECT_NE(dataset.status().message().find("dirty.csv"), std::string::npos);
}

TEST_F(CsvWorkloadTest, TruncatedCleanRecordLeavesNoPartialLoad) {
  WriteFile(dir_ / "clean.csv",
            "A,B,ZIP\n"
            "x,u,1\n"
            "y\n"
            "y,w,2\n");
  const auto dataset = WorkloadRegistry::Global().Resolve(Spec());
  ASSERT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("record 3"), std::string::npos);
  EXPECT_NE(dataset.status().message().find("clean.csv"), std::string::npos);
}

TEST_F(CsvWorkloadTest, UnterminatedQuoteInDirtyFails) {
  WriteFile(dir_ / "dirty.csv",
            "A,B,ZIP\n"
            "x,u,1\n"
            "y,\"oops,9\n"
            "y,w,2\n");
  const auto dataset = WorkloadRegistry::Global().Resolve(Spec());
  ASSERT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("quote"), std::string::npos)
      << dataset.status().message();
}

TEST_F(CsvWorkloadTest, HeaderOnlyCleanFileFails) {
  WriteFile(dir_ / "clean.csv", "A,B,ZIP\n");
  const auto dataset = WorkloadRegistry::Global().Resolve(Spec());
  ASSERT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("data record"), std::string::npos);
}

TEST_F(CsvWorkloadTest, LongerDirtyFileReportsRealRowCounts) {
  WriteFile(dir_ / "dirty.csv",
            "A,B,ZIP\n"
            "x,u,1\n"
            "y,v,9\n"
            "y,w,2\n"
            "z,z,3\n");  // one row too many
  const auto dataset = WorkloadRegistry::Global().Resolve(Spec());
  ASSERT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("row count"), std::string::npos);
  // The real counts, not where the diff loop happened to stop.
  EXPECT_NE(dataset.status().message().find("4"), std::string::npos);
  EXPECT_NE(dataset.status().message().find("3"), std::string::npos);
}

// -------------------------------------------------------- row stream ----

class RowStreamTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = TempDir("gdr_row_stream_test"); }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(RowStreamTest, CsvStreamDeliversAllRecordsAcrossChunkSizes) {
  WriteFile(dir_ / "t.csv", "A,B\n1,2\n3,4\n5,6\n7,8\n");
  for (std::size_t chunk : {1u, 2u, 3u, 100u}) {
    auto stream = CsvRowStream::Open((dir_ / "t.csv").string());
    ASSERT_TRUE(stream.ok());
    EXPECT_EQ((*stream)->header(), (std::vector<std::string>{"A", "B"}));
    std::vector<std::vector<std::string>> all;
    while (true) {
      std::vector<std::vector<std::string>> rows;
      const auto pulled = (*stream)->NextChunk(chunk, &rows);
      ASSERT_TRUE(pulled.ok());
      if (*pulled == 0) break;
      for (auto& row : rows) all.push_back(std::move(row));
    }
    ASSERT_EQ(all.size(), 4u) << "chunk size " << chunk;
    EXPECT_EQ(all[0], (std::vector<std::string>{"1", "2"}));
    EXPECT_EQ(all[3], (std::vector<std::string>{"7", "8"}));
  }
}

TEST_F(RowStreamTest, AppendStreamRollsBackOnMidStreamArityError) {
  WriteFile(dir_ / "bad.csv", "A,B\n1,2\n3,4\nonly-one-field\n5,6\n");
  auto schema = Schema::Make({"A", "B"});
  ASSERT_TRUE(schema.ok());
  Table table(*schema);
  ASSERT_TRUE(table.AppendRow({"pre", "loaded"}).ok());

  auto stream = CsvRowStream::Open((dir_ / "bad.csv").string());
  ASSERT_TRUE(stream.ok());
  // Chunk of 1 forces the failure to surface after good rows were already
  // appended — exactly the partial-load hazard AppendStream must undo.
  const auto appended = AppendStream(stream->get(), &table, /*chunk_rows=*/1);
  ASSERT_FALSE(appended.ok());
  EXPECT_NE(appended.status().message().find("record 4"), std::string::npos)
      << appended.status().message();
  EXPECT_EQ(table.num_rows(), 1u);  // all-or-nothing
  EXPECT_EQ(table.at(0, 0), "pre");
}

TEST_F(RowStreamTest, AppendStreamRollsBackOnUnterminatedQuote) {
  // Enough valid rows to overflow the reader's 64 KiB window, so Open()
  // succeeds and the bad final record only surfaces mid-stream — after
  // thousands of rows were already appended and must be rolled back.
  std::string csv = "A,B\n";
  for (int i = 0; i < 10'000; ++i) {
    csv += std::to_string(i) + ",ok\n";
  }
  csv += "\"open,4\n";
  WriteFile(dir_ / "bad.csv", csv);
  auto schema = Schema::Make({"A", "B"});
  ASSERT_TRUE(schema.ok());
  Table table(*schema);
  auto stream = CsvRowStream::Open((dir_ / "bad.csv").string());
  ASSERT_TRUE(stream.ok());
  const auto appended = AppendStream(stream->get(), &table, /*chunk_rows=*/64);
  ASSERT_FALSE(appended.ok());
  EXPECT_NE(appended.status().message().find("quote"), std::string::npos)
      << appended.status().message();
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST_F(RowStreamTest, VectorStreamArityMismatchRollsBack) {
  auto schema = Schema::Make({"A", "B"});
  ASSERT_TRUE(schema.ok());
  Table table(*schema);
  VectorRowStream stream({"A", "B"}, {{"1", "2"}, {"3", "4", "5"}});
  const auto appended = AppendStream(&stream, &table, /*chunk_rows=*/1);
  ASSERT_FALSE(appended.ok());
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST_F(RowStreamTest, TableStreamRoundTripsRows) {
  auto schema = Schema::Make({"A", "B"});
  ASSERT_TRUE(schema.ok());
  Table source(*schema);
  ASSERT_TRUE(source.AppendRow({"1", "2"}).ok());
  ASSERT_TRUE(source.AppendRow({"3", "4"}).ok());
  Table sink(*schema);
  TableRowStream stream(&source);
  const auto appended = AppendStream(&stream, &sink);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(*appended, 2u);
  EXPECT_EQ(*sink.CountDifferingCells(source), 0u);
}

TEST_F(RowStreamTest, EmptyCsvFileFailsToOpen) {
  WriteFile(dir_ / "empty.csv", "");
  EXPECT_FALSE(CsvRowStream::Open((dir_ / "empty.csv").string()).ok());
}

// ---------------------------------------------------------- exporter ----

TEST(ExportWorkloadTest, WritesLoadableFiles) {
  const auto figure1 = WorkloadRegistry::Global().Resolve("figure1");
  ASSERT_TRUE(figure1.ok());
  const auto dir = TempDir("gdr_export_test");
  ASSERT_TRUE(ExportWorkload(*figure1, dir.string()).ok());
  const auto reloaded =
      WorkloadRegistry::Global().Resolve(CsvWorkloadSpec(dir.string()));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->clean.num_rows(), figure1->clean.num_rows());
  EXPECT_EQ(*reloaded->clean.CountDifferingCells(figure1->clean), 0u);
  EXPECT_EQ(*reloaded->dirty.CountDifferingCells(figure1->dirty), 0u);
  EXPECT_EQ(reloaded->corrupted_tuples, figure1->corrupted_tuples);
  ASSERT_EQ(reloaded->rules.size(), figure1->rules.size());
  for (const RuleId id : figure1->rules.AllRuleIds()) {
    EXPECT_EQ(reloaded->rules.rule(id).ToString(reloaded->rules.schema()),
              figure1->rules.rule(id).ToString(figure1->rules.schema()));
  }
  std::filesystem::remove_all(dir);
}

TEST(ExportWorkloadTest, RejectsUnserializableRuleConstant) {
  auto schema = Schema::Make({"A", "B"});
  ASSERT_TRUE(schema.ok());
  Dataset dataset(*schema);
  dataset.name = "bad-rules";
  ASSERT_TRUE(dataset.clean.AppendRow({"x", "y"}).ok());
  dataset.dirty = dataset.clean;
  ASSERT_TRUE(dataset.rules
                  .AddRule("r1", {PatternCell{0, "a,b"}},
                           {PatternCell{1, "c"}})
                  .ok());
  const auto dir = TempDir("gdr_export_bad_test");
  const Status status = ExportWorkload(dataset, dir.string());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("'a,b'"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gdr
