// End-to-end integration tests: the full GDR loop against the simulated
// user on both workloads, checking the qualitative claims of Section 5 at
// reduced scale.
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "workload/registry.h"

namespace gdr {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset1_ = new Dataset(*WorkloadRegistry::Global().Resolve(
        "dataset1:records=2000,seed=55"));
    dataset2_ = new Dataset(*WorkloadRegistry::Global().Resolve(
        "dataset2:records=2000,seed=55"));
  }
  static void TearDownTestSuite() {
    delete dataset1_;
    dataset1_ = nullptr;
    delete dataset2_;
    dataset2_ = nullptr;
  }

  static ExperimentResult Run(const Dataset& dataset, Strategy strategy,
                              std::size_t budget) {
    ExperimentConfig config;
    config.strategy = strategy;
    config.feedback_budget = budget;
    config.seed = 13;
    auto result = RunStrategyExperiment(dataset, config);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }

  static Dataset* dataset1_;
  static Dataset* dataset2_;
};

Dataset* IntegrationFixture::dataset1_ = nullptr;
Dataset* IntegrationFixture::dataset2_ = nullptr;

TEST_F(IntegrationFixture, GdrReachesHighQualityWithModestEffort) {
  const ExperimentResult gdr = Run(*dataset1_, Strategy::kGdr, 600);
  EXPECT_GT(gdr.final_improvement_pct, 60.0);
  EXPECT_GT(gdr.accuracy.Precision(), 0.9);
  EXPECT_GT(gdr.accuracy.Recall(), 0.5);
}

TEST_F(IntegrationFixture, LearningBeatsNoLearningAtEqualBudget) {
  const ExperimentResult with = Run(*dataset1_, Strategy::kGdr, 400);
  const ExperimentResult without =
      Run(*dataset1_, Strategy::kGdrNoLearning, 400);
  EXPECT_GT(with.final_improvement_pct, without.final_improvement_pct);
}

TEST_F(IntegrationFixture, VoiRankingBeatsRandomOnDataset1) {
  // The Figure 3 claim at reduced scale.
  const ExperimentResult voi =
      Run(*dataset1_, Strategy::kGdrNoLearning, 500);
  const ExperimentResult random =
      Run(*dataset1_, Strategy::kRandomRanking, 500);
  EXPECT_GT(voi.final_improvement_pct, random.final_improvement_pct);
}

TEST_F(IntegrationFixture, GdrBeatsHeuristicGivenEnoughFeedback) {
  const ExperimentResult gdr =
      Run(*dataset1_, Strategy::kGdr, GdrOptions::kUnlimitedBudget);
  auto heuristic = RunHeuristicExperiment(*dataset1_);
  ASSERT_TRUE(heuristic.ok());
  EXPECT_GT(gdr.final_improvement_pct, heuristic->final_improvement_pct);
  // And with far better precision: the heuristic locks in wrong values.
  EXPECT_GT(gdr.accuracy.Precision(), heuristic->accuracy.Precision());
}

TEST_F(IntegrationFixture, Dataset2LearnerAlsoConverges) {
  const ExperimentResult gdr = Run(*dataset2_, Strategy::kGdr, 600);
  EXPECT_GT(gdr.final_improvement_pct, 60.0);
  EXPECT_GT(gdr.accuracy.Precision(), 0.85);
}

TEST_F(IntegrationFixture, UserOnlyStrategiesNeverDamageTheDatabase) {
  for (Strategy strategy : {Strategy::kGdrNoLearning, Strategy::kGreedy,
                            Strategy::kRandomRanking}) {
    const ExperimentResult result = Run(*dataset1_, strategy, 300);
    EXPECT_DOUBLE_EQ(result.accuracy.Precision(), 1.0)
        << StrategyName(strategy);
    EXPECT_GE(result.final_improvement_pct, 0.0) << StrategyName(strategy);
  }
}

TEST_F(IntegrationFixture, FullVerificationConvergesTowardClean) {
  // GDR-NoLearning with unlimited budget: the user verifies everything the
  // system ever suggests. The remaining violations must collapse to a
  // small residue (cells whose correct value is never suggested).
  ExperimentConfig config;
  config.strategy = Strategy::kGdrNoLearning;
  config.seed = 13;
  auto result = RunStrategyExperiment(*dataset1_, config);
  ASSERT_TRUE(result.ok());
  Table dirty = dataset1_->dirty;
  ViolationIndex initial(&dirty, &dataset1_->rules);
  EXPECT_LT(result->remaining_violations, initial.TotalViolations() / 4);
  EXPECT_GT(result->final_improvement_pct, 50.0);
}

}  // namespace
}  // namespace gdr
