#include "ml/decision_tree.h"

#include <cmath>

#include <gtest/gtest.h>

namespace gdr {
namespace {

FeatureSchema MixedSchema() {
  return FeatureSchema({{"color", FeatureType::kCategorical},
                        {"size", FeatureType::kNumeric}});
}

TEST(CountsEntropyTest, KnownValues) {
  EXPECT_DOUBLE_EQ(CountsEntropy({}), 0.0);
  EXPECT_DOUBLE_EQ(CountsEntropy({5, 0}), 0.0);
  EXPECT_NEAR(CountsEntropy({1, 1}), std::log(2.0), 1e-12);
  EXPECT_NEAR(CountsEntropy({1, 1, 1, 1}), std::log(4.0), 1e-12);
}

TEST(DecisionTreeTest, RejectsEmptyTraining) {
  TrainingSet set(MixedSchema(), 2);
  DecisionTree tree;
  EXPECT_FALSE(tree.Train(set, {}, {}, nullptr).ok());
}

TEST(DecisionTreeTest, PureClassBecomesSingleLeaf) {
  TrainingSet set(MixedSchema(), 2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(set.Add({{0.0, static_cast<double>(i)}, 1}).ok());
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(set, {}, nullptr).ok());
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.Predict({0.0, 3.0}), 1);
}

TEST(DecisionTreeTest, SplitsOnNumericThreshold) {
  TrainingSet set(MixedSchema(), 2);
  for (int i = 0; i < 20; ++i) {
    const double size = static_cast<double>(i);
    ASSERT_TRUE(set.Add({{0.0, size}, size < 10 ? 0 : 1}).ok());
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(set, {}, nullptr).ok());
  EXPECT_EQ(tree.Predict({0.0, 2.0}), 0);
  EXPECT_EQ(tree.Predict({0.0, 15.0}), 1);
}

TEST(DecisionTreeTest, SplitsOnCategoricalEquality) {
  TrainingSet set(MixedSchema(), 2);
  // color id 7 -> class 1, everything else -> class 0, size is noise.
  for (int i = 0; i < 30; ++i) {
    const double color = static_cast<double>(i % 3 == 0 ? 7 : i % 5);
    ASSERT_TRUE(
        set.Add({{color, static_cast<double>(i)}, color == 7.0 ? 1 : 0})
            .ok());
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(set, {}, nullptr).ok());
  EXPECT_EQ(tree.Predict({7.0, 100.0}), 1);
  EXPECT_EQ(tree.Predict({2.0, 100.0}), 0);
}

TEST(DecisionTreeTest, LearnsConjunctionRequiringTwoLevels) {
  // class = (a == 1) AND (b == 1): needs a two-level tree, and unlike XOR
  // every greedy split has positive information gain.
  FeatureSchema schema({{"a", FeatureType::kCategorical},
                        {"b", FeatureType::kCategorical}});
  TrainingSet set(schema, 2);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int rep = 0; rep < 5; ++rep) {
        ASSERT_TRUE(set.Add({{static_cast<double>(a),
                              static_cast<double>(b)},
                             (a == 1 && b == 1) ? 1 : 0})
                        .ok());
      }
    }
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(set, {}, nullptr).ok());
  EXPECT_EQ(tree.Predict({0.0, 0.0}), 0);
  EXPECT_EQ(tree.Predict({0.0, 1.0}), 0);
  EXPECT_EQ(tree.Predict({1.0, 0.0}), 0);
  EXPECT_EQ(tree.Predict({1.0, 1.0}), 1);
  EXPECT_GE(tree.node_count(), 3u);
}

TEST(DecisionTreeTest, MaxDepthZeroYieldsMajorityLeaf) {
  TrainingSet set(MixedSchema(), 2);
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(set.Add({{0.0, static_cast<double>(i)}, i < 6 ? 0 : 1}).ok());
  }
  DecisionTreeOptions options;
  options.max_depth = 0;
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(set, options, nullptr).ok());
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.Predict({0.0, 8.0}), 0);  // majority class
}

TEST(DecisionTreeTest, PredictDistributionSumsToOne) {
  TrainingSet set(MixedSchema(), 3);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(set.Add({{static_cast<double>(i % 2),
                          static_cast<double>(i)},
                         i % 3})
                    .ok());
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(set, {}, nullptr).ok());
  const std::vector<double> dist = tree.PredictDistribution({1.0, 5.0});
  ASSERT_EQ(dist.size(), 3u);
  double sum = 0.0;
  for (double d : dist) {
    EXPECT_GE(d, 0.0);
    sum += d;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(DecisionTreeTest, DuplicateIndicesActAsWeights) {
  TrainingSet set(MixedSchema(), 2);
  ASSERT_TRUE(set.Add({{0.0, 0.0}, 0}).ok());
  ASSERT_TRUE(set.Add({{0.0, 0.0}, 1}).ok());
  // Weight example 1 heavily via duplication (a bootstrap bag).
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(set, {0, 1, 1, 1, 1}, {}, nullptr).ok());
  EXPECT_EQ(tree.Predict({0.0, 0.0}), 1);
}

TEST(DecisionTreeTest, FeatureSubsampleRequiresRng) {
  TrainingSet set(MixedSchema(), 2);
  ASSERT_TRUE(set.Add({{0.0, 0.0}, 0}).ok());
  DecisionTreeOptions options;
  options.feature_subsample = 1;
  DecisionTree tree;
  EXPECT_FALSE(tree.Train(set, options, nullptr).ok());
}

TEST(DecisionTreeTest, DeterministicGivenSeed) {
  TrainingSet set(MixedSchema(), 2);
  Rng data_rng(5);
  for (int i = 0; i < 50; ++i) {
    const double color = static_cast<double>(data_rng.NextBounded(4));
    const double size = data_rng.NextDouble() * 10;
    ASSERT_TRUE(set.Add({{color, size}, size > 5 ? 1 : 0}).ok());
  }
  DecisionTreeOptions options;
  options.feature_subsample = 1;
  Rng rng1(42);
  Rng rng2(42);
  DecisionTree t1;
  DecisionTree t2;
  ASSERT_TRUE(t1.Train(set, options, &rng1).ok());
  ASSERT_TRUE(t2.Train(set, options, &rng2).ok());
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> x = {static_cast<double>(i % 4),
                                   static_cast<double>(i) / 2.0};
    EXPECT_EQ(t1.Predict(x), t2.Predict(x));
  }
}

}  // namespace
}  // namespace gdr
