// Differential suite for group-batched VOI scoring: the closed-form
// HypotheticalBatch probes must be bit-identical — scores AND ranking
// order — to the per-update delta oracle (and to the original
// mutate-and-revert layout) at every thread count, through whole
// experiments, and across mid-session appends.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/session.h"
#include "core/voi.h"
#include "sim/experiment.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/registry.h"

namespace gdr {
namespace {

// Randomized instance mirroring voi_parallel_test: table + constant/variable
// rule mix + synthetic candidate pools grouped by (attr, value).
struct RandomVoiInstance {
  explicit RandomVoiInstance(std::uint64_t seed)
      : schema(*Schema::Make({"STR", "CT", "STT", "ZIP"})),
        table(schema),
        rules(schema),
        rng(seed) {
    const char* streets[] = {"Main St", "Oak Ave", "Sherden Rd", "Elm St"};
    const char* cities[] = {"Fort Wayne", "Westville", "Michigan City"};
    const char* states[] = {"IN", "IND"};
    const char* zips[] = {"46825", "46391", "46360", "46802", "46774"};
    for (int i = 0; i < 80; ++i) {
      EXPECT_TRUE(table
                      .AppendRow({streets[rng.NextBounded(4)],
                                  cities[rng.NextBounded(3)],
                                  states[rng.NextBounded(2)],
                                  zips[rng.NextBounded(5)]})
                      .ok());
    }
    EXPECT_TRUE(
        rules.AddRuleFromString("c1", "ZIP=46360 -> CT=Michigan City ; STT=IN")
            .ok());
    EXPECT_TRUE(rules.AddRuleFromString("c2", "ZIP=46391 -> CT=Westville")
                    .ok());
    EXPECT_TRUE(rules.AddRuleFromString("v1", "STR, CT -> ZIP").ok());
    EXPECT_TRUE(rules.AddRuleFromString("v2", "ZIP -> CT").ok());
    index = std::make_unique<ViolationIndex>(&table, &rules);

    weights.resize(rules.size());
    for (double& w : weights) w = 0.05 + 0.95 * rng.NextDouble();

    const std::size_t num_groups = 12;
    for (std::size_t g = 0; g < num_groups; ++g) {
      UpdateGroup group;
      group.attr = static_cast<AttrId>(rng.NextBounded(table.num_attrs()));
      group.value = static_cast<ValueId>(
          rng.NextBounded(table.DomainSize(group.attr)));
      const std::size_t members = 3 + rng.NextBounded(12);
      for (std::size_t row_index :
           rng.SampleWithoutReplacement(table.num_rows(), members)) {
        Update update;
        update.row = static_cast<RowId>(row_index);
        update.attr = group.attr;
        update.value = group.value;
        update.score = rng.NextDouble();
        group.updates.push_back(update);
      }
      groups.push_back(std::move(group));
    }
  }

  Schema schema;
  Table table;
  RuleSet rules;
  Rng rng;
  std::unique_ptr<ViolationIndex> index;
  std::vector<double> weights;
  std::vector<UpdateGroup> groups;
};

double Probability(const Update& u) { return 0.1 + 0.8 * u.score; }

// The pre-overlay reference semantics: apply the hypothetical to a real
// index, read the aggregates, revert.
double LegacyMutateAndRevertBenefit(const Table& table, const RuleSet& rules,
                                    const std::vector<double>& weights,
                                    const Update& update) {
  Table scratch = table;
  ViolationIndex index(&scratch, &rules);
  const std::vector<RuleId>& affected = rules.RulesMentioning(update.attr);
  if (affected.empty()) return 0.0;
  std::vector<std::int64_t> vio_before(affected.size());
  for (std::size_t i = 0; i < affected.size(); ++i) {
    vio_before[i] = index.RuleViolations(affected[i]);
  }
  const ValueId old =
      index.ApplyCellChange(update.row, update.attr, update.value);
  double benefit = 0.0;
  for (std::size_t i = 0; i < affected.size(); ++i) {
    const RuleId rule = affected[i];
    const std::int64_t satisfying = index.SatisfyingCount(rule);
    if (satisfying <= 0) continue;
    const double drop =
        static_cast<double>(vio_before[i] - index.RuleViolations(rule));
    benefit += weights[static_cast<std::size_t>(rule)] * drop /
               static_cast<double>(satisfying);
  }
  index.ApplyCellChange(update.row, update.attr, old);
  return benefit;
}

class VoiBatchedTest : public ::testing::TestWithParam<int> {};

// Differential: the batched closed-form benefit is bit-identical to the
// delta-scratch path, the fresh-delta path, and the legacy
// mutate-and-revert layout — for every pooled update, with the batch
// staged once per group (the hot-path access pattern).
TEST_P(VoiBatchedTest, BatchedBenefitMatchesEveryOracle) {
  RandomVoiInstance inst(static_cast<std::uint64_t>(GetParam()));
  VoiRanker ranker(inst.index.get(), &inst.weights);
  HypotheticalBatch batch(inst.index.get());
  ViolationDelta scratch(inst.index.get());
  for (const UpdateGroup& group : inst.groups) {
    for (const Update& update : group.updates) {
      const double batched = ranker.UpdateBenefit(update, &batch);
      EXPECT_EQ(batched, ranker.UpdateBenefit(update, &scratch));
      EXPECT_EQ(batched, ranker.UpdateBenefit(update));
      EXPECT_EQ(batched, LegacyMutateAndRevertBenefit(inst.table, inst.rules,
                                                      inst.weights, update));
    }
  }
}

// Same differential under adversarial staging: updates interleaved
// round-robin across groups so every probe forces a restage onto a new
// (attr, value) context. Restaging must never leak state between contexts.
TEST_P(VoiBatchedTest, InterleavedRestagingMatchesOracle) {
  RandomVoiInstance inst(static_cast<std::uint64_t>(GetParam()));
  VoiRanker ranker(inst.index.get(), &inst.weights);
  HypotheticalBatch batch(inst.index.get());
  std::size_t largest = 0;
  for (const UpdateGroup& group : inst.groups) {
    largest = std::max(largest, group.updates.size());
  }
  for (std::size_t k = 0; k < largest; ++k) {
    for (const UpdateGroup& group : inst.groups) {
      if (k >= group.updates.size()) continue;
      const Update& update = group.updates[k];
      EXPECT_EQ(ranker.UpdateBenefit(update, &batch),
                ranker.UpdateBenefit(update));
    }
  }
}

// Batched scoring leaves the shared index and table untouched; probes are
// pure reads against the pinned base version.
TEST_P(VoiBatchedTest, BatchedScoringNeverMutatesSharedState) {
  RandomVoiInstance inst(static_cast<std::uint64_t>(GetParam()));
  const Table before = inst.table;
  const std::int64_t vio_before = inst.index->TotalViolations();
  const std::uint64_t version_before = inst.index->version();

  ThreadPool pool(4);
  VoiRanker ranker(inst.index.get(), &inst.weights, &pool,
                   VoiRanker::ScoringMode::kBatched);
  ranker.Rank(inst.groups, Probability);

  EXPECT_EQ(inst.index->TotalViolations(), vio_before);
  EXPECT_EQ(inst.index->version(), version_before);
  EXPECT_EQ(*inst.table.CountDifferingCells(before), 0u);
}

// The tentpole gate: batched-mode Rank is bit-identical — scores AND
// order — to per-update-oracle Rank at 1, 2, 4, and 8 threads.
TEST_P(VoiBatchedTest, BatchedRankingBitIdenticalToOracleAcrossThreads) {
  RandomVoiInstance inst(static_cast<std::uint64_t>(GetParam()));

  VoiRanker oracle(inst.index.get(), &inst.weights, nullptr,
                   VoiRanker::ScoringMode::kPerUpdateOracle);
  const VoiRanker::Ranking reference = oracle.Rank(inst.groups, Probability);
  ASSERT_EQ(reference.scores.size(), inst.groups.size());

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    VoiRanker batched(inst.index.get(), &inst.weights, &pool,
                      VoiRanker::ScoringMode::kBatched);
    const VoiRanker::Ranking ranking = batched.Rank(inst.groups, Probability);
    EXPECT_EQ(ranking.scores, reference.scores) << threads << " threads";
    EXPECT_EQ(ranking.order, reference.order) << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VoiBatchedTest, ::testing::Range(1, 7));

void ExpectResultsIdentical(const ExperimentResult& a,
                            const ExperimentResult& b) {
  EXPECT_EQ(a.stats.initial_dirty, b.stats.initial_dirty);
  EXPECT_EQ(a.stats.user_feedback, b.stats.user_feedback);
  EXPECT_EQ(a.stats.user_confirms, b.stats.user_confirms);
  EXPECT_EQ(a.stats.user_rejects, b.stats.user_rejects);
  EXPECT_EQ(a.stats.user_retains, b.stats.user_retains);
  EXPECT_EQ(a.stats.learner_decisions, b.stats.learner_decisions);
  EXPECT_EQ(a.stats.forced_repairs, b.stats.forced_repairs);
  EXPECT_EQ(a.stats.outer_iterations, b.stats.outer_iterations);
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.remaining_violations, b.remaining_violations);
  EXPECT_EQ(a.accuracy.updated_cells, b.accuracy.updated_cells);
  EXPECT_EQ(a.accuracy.correctly_updated_cells,
            b.accuracy.correctly_updated_cells);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].feedback, b.curve[i].feedback);
    EXPECT_EQ(a.curve[i].improvement_pct, b.curve[i].improvement_pct);
    EXPECT_EQ(a.curve[i].loss, b.curve[i].loss);
  }
}

// Whole experiments — interactive loop, learner, repairs, curve — are
// bit-identical whether VOI runs batched or through the per-update oracle,
// across the strategies that exercise VOI ranking.
TEST(VoiBatchedExperimentTest, ExperimentsIdenticalAcrossScoringModes) {
  const Dataset dataset =
      *WorkloadRegistry::Global().Resolve("dataset1:records=600,seed=21");

  for (const Strategy strategy :
       {Strategy::kGdr, Strategy::kGdrSLearning, Strategy::kGdrNoLearning}) {
    auto run = [&](VoiRanker::ScoringMode mode) {
      ExperimentConfig config;
      config.strategy = strategy;
      config.feedback_budget = 60;
      config.seed = 9;
      config.sample_every = 10;
      config.voi_scoring = mode;
      auto result = RunStrategyExperiment(dataset, config);
      EXPECT_TRUE(result.ok());
      return *result;
    };
    const ExperimentResult batched = run(VoiRanker::ScoringMode::kBatched);
    const ExperimentResult oracle =
        run(VoiRanker::ScoringMode::kPerUpdateOracle);
    ExpectResultsIdentical(batched, oracle);
  }
}

// The same through the pull API at several thread counts: session pumping
// with batched scoring matches the oracle mode exactly.
TEST(VoiBatchedExperimentTest, SessionPumpIdenticalAcrossScoringModes) {
  const Dataset dataset =
      *WorkloadRegistry::Global().Resolve("dataset1:records=400,seed=7");

  auto run = [&](VoiRanker::ScoringMode mode, std::size_t threads) {
    ExperimentConfig config;
    config.strategy = Strategy::kGdr;
    config.feedback_budget = 40;
    config.seed = 5;
    config.sample_every = 10;
    config.num_threads = threads;
    config.driver = ExperimentDriver::kSessionPump;
    config.voi_scoring = mode;
    auto result = RunStrategyExperiment(dataset, config);
    EXPECT_TRUE(result.ok());
    return *result;
  };
  const ExperimentResult reference =
      run(VoiRanker::ScoringMode::kPerUpdateOracle, 1);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ExpectResultsIdentical(run(VoiRanker::ScoringMode::kBatched, threads),
                           reference);
  }
}

// ---------------------------------------------------------------------------
// Mid-session append differential (the PR 6 streaming-admission path):
// two sessions differing only in GdrOptions::voi_scoring must deliver
// identical suggestion traces through an AppendDirtyRows in the middle.

Schema SessionSchema() { return *Schema::Make({"City", "Zip", "State"}); }

RuleSet SessionRules() {
  RuleSet rules(SessionSchema());
  EXPECT_TRUE(rules.AddRuleFromString("v1", "City -> Zip").ok());
  EXPECT_TRUE(rules.AddRuleFromString("v2", "Zip -> City").ok());
  EXPECT_TRUE(
      rules.AddRuleFromString("c1", "City=Springfield -> State=IL").ok());
  return rules;
}

using Truth = std::vector<std::vector<std::string>>;

Truth BaseTruth() {
  return {{"Springfield", "Z0", "IL"},
          {"Springfield", "Z0", "IL"},
          {"Shelby", "Z1", "IN"},
          {"Shelby", "Z1", "IN"},
          {"Dalton", "Z2", "OH"},
          {"Dalton", "Z2", "OH"}};
}

Table BaseDirty() {
  Table table(SessionSchema());
  Truth rows = BaseTruth();
  rows[1][1] = "Zx";
  rows[0][2] = "XX";
  for (const auto& row : rows) EXPECT_TRUE(table.AppendRow(row).ok());
  return table;
}

struct PolicyAnswer {
  Feedback feedback;
  std::optional<std::string> volunteered;
};

PolicyAnswer Answer(const Table& table, const Truth& truth,
                    const SuggestedUpdate& s) {
  const std::string& expected =
      truth[static_cast<std::size_t>(s.update.row)]
           [static_cast<std::size_t>(s.update.attr)];
  const std::string& suggested =
      table.dict(s.update.attr).ToString(s.update.value);
  if (suggested == expected) return {Feedback::kConfirm, std::nullopt};
  if (table.at(s.update.row, s.update.attr) == expected) {
    return {Feedback::kRetain, std::nullopt};
  }
  return {Feedback::kReject, expected};
}

std::string TraceLine(const GdrSession& session, const SuggestedUpdate& s) {
  return std::to_string(s.update_id) + "|r" + std::to_string(s.update.row) +
         "|a" + std::to_string(s.update.attr) + "|" +
         session.table().dict(s.update.attr).ToString(s.update.value) + "|" +
         std::to_string(s.voi_score);
}

void Drive(GdrSession* session, const Truth& truth,
           std::vector<std::string>* trace) {
  while (session->state() != SessionState::kDone) {
    const auto batch = session->NextBatch();
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch->empty() && session->state() == SessionState::kDone) break;
    for (const SuggestedUpdate& s : *batch) {
      if (!session->IsLive(s.update_id)) continue;
      trace->push_back(TraceLine(*session, s));
      const PolicyAnswer answer = Answer(session->table(), truth, s);
      const auto outcome = session->SubmitFeedback(
          s.update_id, answer.feedback, answer.volunteered);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    }
  }
}

std::vector<std::string> TableCells(const Table& table) {
  std::vector<std::string> cells;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t a = 0; a < table.num_attrs(); ++a) {
      cells.push_back(table.at(static_cast<RowId>(r), static_cast<AttrId>(a)));
    }
  }
  return cells;
}

TEST(VoiBatchedSessionTest, AppendMidSessionIdenticalAcrossScoringModes) {
  const RuleSet rules = SessionRules();
  Truth truth = BaseTruth();

  GdrOptions batched_options;
  batched_options.strategy = Strategy::kGdrNoLearning;
  batched_options.ns = 2;
  batched_options.seed = 42;
  batched_options.feedback_budget = 100;
  batched_options.voi_scoring = VoiRanker::ScoringMode::kBatched;
  GdrOptions oracle_options = batched_options;
  oracle_options.voi_scoring = VoiRanker::ScoringMode::kPerUpdateOracle;

  Table table_a = BaseDirty();
  GdrSession a(&table_a, &rules, batched_options);
  Table table_b = BaseDirty();
  GdrSession b(&table_b, &rules, oracle_options);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());

  // First batch from each: identical suggestions before any append.
  std::vector<std::string> trace_a;
  std::vector<std::string> trace_b;
  const auto batch_a = a.NextBatch();
  const auto batch_b = b.NextBatch();
  ASSERT_TRUE(batch_a.ok() && batch_b.ok());
  ASSERT_FALSE(batch_a->empty());
  ASSERT_EQ(batch_a->size(), batch_b->size());
  {
    const SuggestedUpdate& sa = batch_a->front();
    const SuggestedUpdate& sb = batch_b->front();
    EXPECT_EQ(TraceLine(a, sa), TraceLine(b, sb));
    trace_a.push_back(TraceLine(a, sa));
    trace_b.push_back(TraceLine(b, sb));
    const PolicyAnswer pa = Answer(a.table(), truth, sa);
    const PolicyAnswer pb = Answer(b.table(), truth, sb);
    ASSERT_TRUE(a.SubmitFeedback(sa.update_id, pa.feedback, pa.volunteered)
                    .ok());
    ASSERT_TRUE(b.SubmitFeedback(sb.update_id, pb.feedback, pb.volunteered)
                    .ok());
  }

  // Mid-session arrivals: a dirty Springfield row joining the broken
  // City -> Zip group plus a clean pair. Both modes must admit, pool, and
  // rescore identically.
  const std::vector<std::vector<std::string>> arrivals = {
      {"Springfield", "Z9", "IL"},
      {"Evanston", "Z5", "IL"},
      {"Evanston", "Z5", "IL"}};
  truth.push_back({"Springfield", "Z0", "IL"});
  truth.push_back({"Evanston", "Z5", "IL"});
  truth.push_back({"Evanston", "Z5", "IL"});
  const auto out_a = a.AppendDirtyRows(arrivals);
  const auto out_b = b.AppendDirtyRows(arrivals);
  ASSERT_TRUE(out_a.ok() && out_b.ok());
  EXPECT_GE(out_a->newly_dirty, 1u);
  EXPECT_EQ(out_a->rows_appended, out_b->rows_appended);
  EXPECT_EQ(out_a->newly_dirty, out_b->newly_dirty);
  EXPECT_EQ(out_a->pool_delta, out_b->pool_delta);
  EXPECT_EQ(out_a->groups_rescored, out_b->groups_rescored);

  Drive(&a, truth, &trace_a);
  Drive(&b, truth, &trace_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(TableCells(table_a), TableCells(table_b));
  EXPECT_EQ(a.stats().user_feedback, b.stats().user_feedback);
  EXPECT_EQ(a.stats().appended_rows, b.stats().appended_rows);
  EXPECT_EQ(a.stats().admitted_dirty, b.stats().admitted_dirty);
  EXPECT_EQ(a.Snapshot().Serialize(), b.Snapshot().Serialize());
}

}  // namespace
}  // namespace gdr
