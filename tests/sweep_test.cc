// The sweep harness: grid shape, cache-hit accounting across cells,
// determinism flags over a real (if tiny) strategy × shard × thread grid,
// config validation, and the BENCH_sweep.json rendering.
#include "plane/sweep.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

namespace gdr::plane {
namespace {

SweepConfig TinyConfig() {
  SweepConfig config;
  config.workloads = {"dataset1:records=200,seed=13",
                      "dataset1:seed=13,records=200"};  // same content
  config.strategies = {Strategy::kGdrNoLearning};
  config.shard_counts = {1, 2};
  config.thread_counts = {1, 2};
  config.seed = 7;
  config.sample_every = 25;
  return config;
}

TEST(SweepTest, RunsTheFullGridWithCacheHits) {
  const SweepConfig config = TinyConfig();
  auto report = RunSweep(config);
  ASSERT_TRUE(report.ok());

  // 2 workloads x 1 strategy x 2 shard counts x 2 thread counts.
  ASSERT_EQ(report->cells.size(), 8u);
  EXPECT_TRUE(report->determinism_ok);
  for (const SweepCell& cell : report->cells) {
    EXPECT_TRUE(cell.merge_deterministic) << cell.workload;
    EXPECT_TRUE(cell.fingerprint_consistent) << cell.workload;
    EXPECT_EQ(cell.rows, 200u);
    EXPECT_EQ(cell.strategy, "GDR-NoLearning");
  }

  // One real resolution; every other cell (including the reordered spec,
  // which canonicalizes identically) hits the memory layer.
  EXPECT_TRUE(report->cache_hits_expected);
  EXPECT_EQ(report->cache.misses, 1u);
  EXPECT_EQ(report->cache.memory_hits, 7u);
  EXPECT_FALSE(report->cells.front().cache_hit);
  EXPECT_TRUE(report->cells.back().cache_hit);

  // Both workload specs canonicalize to one cache key.
  EXPECT_EQ(report->cells.front().workload, report->cells.back().workload);
}

TEST(SweepTest, FingerprintsAgreeAcrossThreadCountsPerGroup) {
  auto report = RunSweep(TinyConfig());
  ASSERT_TRUE(report.ok());
  // Cells of one (workload, strategy, shard_count) group differ only in
  // thread count; their fingerprints must be one value.
  for (const SweepCell& a : report->cells) {
    for (const SweepCell& b : report->cells) {
      if (a.workload == b.workload && a.strategy == b.strategy &&
          a.shard_count == b.shard_count) {
        EXPECT_EQ(a.fingerprint, b.fingerprint);
      }
    }
  }
}

TEST(SweepTest, RejectsEmptyGridAxes) {
  SweepConfig config = TinyConfig();
  config.strategies.clear();
  EXPECT_EQ(RunSweep(config).status().code(), StatusCode::kInvalidArgument);

  config = TinyConfig();
  config.shard_counts = {2, 0};
  EXPECT_EQ(RunSweep(config).status().code(), StatusCode::kInvalidArgument);
}

TEST(SweepTest, SingleCellExpectsNoCacheHits) {
  SweepConfig config = TinyConfig();
  config.workloads = {"dataset1:records=200,seed=13"};
  config.shard_counts = {1};
  config.thread_counts = {1};
  auto report = RunSweep(config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cells.size(), 1u);
  EXPECT_FALSE(report->cache_hits_expected);
  EXPECT_EQ(report->cache.hits(), 0u);
}

TEST(SweepTest, JsonCarriesTheGateSignals) {
  auto report = RunSweep(TinyConfig());
  ASSERT_TRUE(report.ok());
  const std::string json = SweepReportToJson(*report);

  for (const char* key :
       {"\"bench\": \"sweep\"", "\"hardware_concurrency\":", "\"cells\":",
        "\"determinism_ok\": true", "\"memory_hits\": 7", "\"misses\": 1",
        "\"hits_expected\": true", "\"merge_deterministic\": true",
        "\"fingerprint_consistent\": true", "\"fingerprint\": \"",
        "\"shard_count\": 2", "\"thread_count\": 2",
        "\"pool_tasks_completed\":", "\"workload_name\": \"dataset1-hospital\"",
        "\"strategy\": \"GDR-NoLearning\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Valid-JSON smoke: balanced braces/brackets in the rendered document.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(SweepJsonTest, EscapesStringsInConfigEcho) {
  SweepReport report;
  report.config.workloads = {"csv:clean=C:\\data\\x \"y\".csv"};
  const std::string json = SweepReportToJson(report);
  EXPECT_NE(json.find("C:\\\\data\\\\x \\\"y\\\".csv"), std::string::npos);
}

}  // namespace
}  // namespace gdr::plane
