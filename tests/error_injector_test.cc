#include "sim/error_injector.h"

#include <gtest/gtest.h>

namespace gdr {
namespace {

TEST(PerturbCharactersTest, AlwaysChangesNonEmpty) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::string original = "Fort Wayne";
    EXPECT_NE(PerturbCharacters(original, &rng), original);
  }
}

TEST(PerturbCharactersTest, HandlesShortStrings) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(PerturbCharacters("a", &rng), "a");
    EXPECT_FALSE(PerturbCharacters("", &rng).empty());
  }
}

TEST(PerturbCharactersTest, StaysClose) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const std::string mangled = PerturbCharacters("Michigan City", &rng);
    // At most 2 edits of 1 char each.
    EXPECT_LE(mangled.size(), std::string("Michigan City").size() + 2);
    EXPECT_GE(mangled.size() + 2, std::string("Michigan City").size());
  }
}

TEST(DomainSwapTest, PicksDifferentDomainValue) {
  Schema schema = *Schema::Make({"CT"});
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({"A"}).ok());
  ASSERT_TRUE(table.AppendRow({"B"}).ok());
  ASSERT_TRUE(table.AppendRow({"C"}).ok());
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const std::string swapped = DomainSwap(table, 0, "A", &rng);
    EXPECT_NE(swapped, "A");
    EXPECT_TRUE(swapped == "B" || swapped == "C");
  }
}

TEST(DomainSwapTest, FallsBackOnSingletonDomain) {
  Schema schema = *Schema::Make({"CT"});
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({"Only"}).ok());
  Rng rng(13);
  EXPECT_NE(DomainSwap(table, 0, "Only", &rng), "Only");
}

class InjectRateTest : public ::testing::TestWithParam<double> {};

TEST_P(InjectRateTest, DirtyFractionApproximatesTarget) {
  Schema schema = *Schema::Make({"A", "B"});
  Table table(schema);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(table.AppendRow({"alpha" + std::to_string(i % 7),
                                 "beta" + std::to_string(i % 5)})
                    .ok());
  }
  Table clean = table;
  RandomErrorOptions options;
  options.dirty_tuple_fraction = GetParam();
  options.seed = 17;
  const std::size_t corrupted = InjectRandomErrors(&table, {0, 1}, options);
  EXPECT_NEAR(static_cast<double>(corrupted) / 3000.0, GetParam(), 0.04);
  // Every corrupted tuple actually differs from the clean version.
  std::size_t differing_rows = 0;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t a = 0; a < 2; ++a) {
      if (!table.CellEquals(static_cast<RowId>(r), static_cast<AttrId>(a),
                            clean)) {
        ++differing_rows;
        break;
      }
    }
  }
  EXPECT_EQ(differing_rows, corrupted);
}

INSTANTIATE_TEST_SUITE_P(Rates, InjectRateTest,
                         ::testing::Values(0.1, 0.3, 0.5));

TEST(InjectRandomErrorsTest, ZeroFractionIsNoOp) {
  Schema schema = *Schema::Make({"A"});
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({"x"}).ok());
  RandomErrorOptions options;
  options.dirty_tuple_fraction = 0.0;
  EXPECT_EQ(InjectRandomErrors(&table, {0}, options), 0u);
  EXPECT_EQ(table.at(0, 0), "x");
}

TEST(InjectRandomErrorsTest, DeterministicPerSeed) {
  Schema schema = *Schema::Make({"A", "B"});
  auto build = [&schema]() {
    Table t(schema);
    for (int i = 0; i < 500; ++i) {
      EXPECT_TRUE(
          t.AppendRow({"v" + std::to_string(i % 9), "w" + std::to_string(i % 4)})
              .ok());
    }
    return t;
  };
  Table a = build();
  Table b = build();
  RandomErrorOptions options;
  options.seed = 23;
  InjectRandomErrors(&a, {0, 1}, options);
  InjectRandomErrors(&b, {0, 1}, options);
  auto diff = a.CountDifferingCells(b);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, 0u);
}

}  // namespace
}  // namespace gdr
