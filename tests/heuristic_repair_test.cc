#include "repair/heuristic_repair.h"

#include <gtest/gtest.h>

#include "workload/registry.h"

namespace gdr {
namespace {

TEST(HeuristicRepairTest, ResolvesSimpleConstantViolations) {
  Schema schema = *Schema::Make({"CT", "ZIP"});
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({"Michigan Cty", "46360"}).ok());
  ASSERT_TRUE(table.AppendRow({"Michigan City", "46360"}).ok());
  RuleSet rules(schema);
  ASSERT_TRUE(rules.AddRuleFromString("phi1", "ZIP=46360 -> CT=Michigan City")
                  .ok());
  ViolationIndex index(&table, &rules);
  ASSERT_EQ(index.TotalViolations(), 1);

  const HeuristicRepairStats stats = RunBatchRepair(&index, &table);
  EXPECT_EQ(stats.remaining_violations, 0);
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(table.at(0, 0), "Michigan City");
}

TEST(HeuristicRepairTest, ResolvesVariableViolationsByMajority) {
  Schema schema = *Schema::Make({"STR", "CT", "ZIP"});
  Table table(schema);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table.AppendRow({"Main St", "Fort Wayne", "46802"}).ok());
  }
  ASSERT_TRUE(table.AppendRow({"Main St", "Fort Wayne", "46803"}).ok());
  RuleSet rules(schema);
  ASSERT_TRUE(rules.AddRuleFromString("phi5", "STR, CT -> ZIP").ok());
  ViolationIndex index(&table, &rules);

  const HeuristicRepairStats stats = RunBatchRepair(&index, &table);
  EXPECT_EQ(stats.remaining_violations, 0);
  EXPECT_EQ(table.at(5, 2), "46802");
}

TEST(HeuristicRepairTest, TerminatesOnCleanDatabase) {
  Schema schema = *Schema::Make({"CT", "ZIP"});
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({"Michigan City", "46360"}).ok());
  RuleSet rules(schema);
  ASSERT_TRUE(rules.AddRuleFromString("phi1", "ZIP=46360 -> CT=Michigan City")
                  .ok());
  ViolationIndex index(&table, &rules);
  const HeuristicRepairStats stats = RunBatchRepair(&index, &table);
  EXPECT_EQ(stats.passes, 0);
  EXPECT_EQ(stats.updates_applied, 0u);
}

TEST(HeuristicRepairTest, RespectsMaxPasses) {
  Dataset dataset = *WorkloadRegistry::Global().Resolve("dataset1:records=500,seed=3");
  Table working = dataset.dirty;
  ViolationIndex index(&working, &dataset.rules);
  HeuristicRepairOptions options;
  options.max_passes = 1;
  const HeuristicRepairStats stats = RunBatchRepair(&index, &working, options);
  EXPECT_LE(stats.passes, 1);
}

TEST(HeuristicRepairTest, ReducesViolationsOnDataset1) {
  Dataset dataset = *WorkloadRegistry::Global().Resolve("dataset1:records=1000,seed=7");
  Table working = dataset.dirty;
  ViolationIndex index(&working, &dataset.rules);
  const std::int64_t before = index.TotalViolations();
  ASSERT_GT(before, 0);
  const HeuristicRepairStats stats = RunBatchRepair(&index, &working);
  EXPECT_LT(stats.remaining_violations, before);
  EXPECT_GT(stats.updates_applied, 0u);
}

TEST(HeuristicRepairTest, SecondRunIsNoOpAfterConvergence) {
  Dataset dataset = *WorkloadRegistry::Global().Resolve("dataset1:records=500,seed=9");
  Table working = dataset.dirty;
  ViolationIndex index(&working, &dataset.rules);
  RunBatchRepair(&index, &working);
  const std::int64_t after_first = index.TotalViolations();
  const HeuristicRepairStats second = RunBatchRepair(&index, &working);
  // A fresh run may retry frozen-in-first-run cells (state is local), but
  // must never regress the violation count.
  EXPECT_LE(second.remaining_violations, after_first);
}

}  // namespace
}  // namespace gdr
