#include "cfd/cfd.h"

#include <gtest/gtest.h>

namespace gdr {
namespace {

Schema CustomerSchema() {
  return *Schema::Make({"Name", "SRC", "STR", "CT", "STT", "ZIP"});
}

TEST(CfdTest, AddRuleFromStringConstant) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules
                  .AddRuleFromString(
                      "phi1", "ZIP=46360 -> CT=Michigan City ; STT=IN")
                  .ok());
  // Multi-RHS normalizes into two rules.
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules.rule(0).name(), "phi1.1");
  EXPECT_EQ(rules.rule(1).name(), "phi1.2");
  EXPECT_TRUE(rules.rule(0).IsConstant());
  EXPECT_EQ(*rules.rule(0).rhs().constant, "Michigan City");
  EXPECT_EQ(*rules.rule(1).rhs().constant, "IN");
  ASSERT_EQ(rules.rule(0).lhs().size(), 1u);
  EXPECT_EQ(*rules.rule(0).lhs()[0].constant, "46360");
}

TEST(CfdTest, AddRuleFromStringVariable) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules.AddRuleFromString("phi5", "STR, CT=Fort Wayne -> ZIP")
                  .ok());
  ASSERT_EQ(rules.size(), 1u);
  const Cfd& rule = rules.rule(0);
  EXPECT_TRUE(rule.IsVariable());
  EXPECT_EQ(rule.name(), "phi5");  // single RHS keeps the name
  ASSERT_EQ(rule.lhs().size(), 2u);
  EXPECT_FALSE(rule.lhs()[0].is_constant());  // STR is a wildcard
  EXPECT_EQ(*rule.lhs()[1].constant, "Fort Wayne");
}

TEST(CfdTest, ParserRejectsMalformed) {
  RuleSet rules(CustomerSchema());
  EXPECT_FALSE(rules.AddRuleFromString("bad", "no arrow here").ok());
  EXPECT_FALSE(rules.AddRuleFromString("bad", "Unknown=1 -> CT=x").ok());
  EXPECT_FALSE(rules.AddRuleFromString("bad", " -> CT=x").ok());
}

TEST(CfdTest, ParserErrorsNameRuleAndOffendingToken) {
  RuleSet rules(CustomerSchema());
  const Status no_arrow = rules.AddRuleFromString("phiX", "no arrow here");
  ASSERT_FALSE(no_arrow.ok());
  EXPECT_NE(no_arrow.message().find("'phiX'"), std::string::npos);
  EXPECT_NE(no_arrow.message().find("'no arrow here'"), std::string::npos);

  const Status unknown =
      rules.AddRuleFromString("phiY", "Unknwon=1 -> CT=x");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.message().find("'phiY'"), std::string::npos);
  EXPECT_NE(unknown.message().find("'Unknwon'"), std::string::npos);
  EXPECT_NE(unknown.message().find("LHS"), std::string::npos);

  const Status unknown_rhs =
      rules.AddRuleFromString("phiZ", "ZIP=1 -> Ctty=x");
  ASSERT_FALSE(unknown_rhs.ok());
  EXPECT_NE(unknown_rhs.message().find("'Ctty'"), std::string::npos);
  EXPECT_NE(unknown_rhs.message().find("RHS"), std::string::npos);

  const Status empty_item = rules.AddRuleFromString("phiW", " -> CT=x");
  ASSERT_FALSE(empty_item.ok());
  EXPECT_NE(empty_item.message().find("empty LHS"), std::string::npos);

  // Failed adds leave the set untouched.
  EXPECT_EQ(rules.size(), 0u);
}

TEST(CfdTest, DuplicateRuleNamesRejected) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules.AddRuleFromString("phi", "ZIP=1 -> CT=x").ok());
  const Status dup = rules.AddRuleFromString("phi", "ZIP=2 -> CT=y");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.message().find("duplicate rule name 'phi'"),
            std::string::npos);
  EXPECT_EQ(rules.size(), 1u);

  // Split multi-RHS names collide with existing ".N" names — and the
  // failed add is atomic (neither half lands).
  ASSERT_TRUE(rules.AddRuleFromString("psi.2", "ZIP=3 -> CT=z").ok());
  EXPECT_FALSE(
      rules.AddRuleFromString("psi", "ZIP=4 -> CT=a ; STT=b").ok());
  EXPECT_EQ(rules.size(), 2u);
}

TEST(CfdTest, ToRuleTextRoundTripsThroughParser) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules.AddRuleFromString("phi5", "STR, CT=Fort Wayne -> ZIP")
                  .ok());
  ASSERT_TRUE(rules.AddRuleFromString("phi1", "ZIP=46360 -> CT=Michigan City")
                  .ok());
  RuleSet reparsed(CustomerSchema());
  for (const RuleId id : rules.AllRuleIds()) {
    const Cfd& rule = rules.rule(id);
    std::string offender;
    EXPECT_TRUE(RuleSurvivesText(rule, rules.schema(), &offender)) << offender;
    ASSERT_TRUE(reparsed
                    .AddRuleFromString(rule.name(),
                                       rule.ToRuleText(rules.schema()))
                    .ok());
    EXPECT_EQ(reparsed.rule(id).ToString(reparsed.schema()),
              rule.ToString(rules.schema()));
  }
}

TEST(CfdTest, RuleSurvivesTextFlagsDelimiterConstants) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules.AddRule("r1", {PatternCell{5, "4,6"}},
                            {PatternCell{3, std::nullopt}})
                  .ok());
  std::string offender;
  EXPECT_FALSE(RuleSurvivesText(rules.rule(0), rules.schema(), &offender));
  EXPECT_EQ(offender, "4,6");

  RuleSet ok_rules(CustomerSchema());
  ASSERT_TRUE(ok_rules.AddRule("r1", {PatternCell{5, "46360"}},
                               {PatternCell{3, "Michigan City"}})
                  .ok());
  EXPECT_TRUE(RuleSurvivesText(ok_rules.rule(0), ok_rules.schema(), nullptr));
}

TEST(CfdTest, RuleSurvivesTextFlagsUnloadableNames) {
  // A '#'-prefixed name would be skipped as a comment by the rules-file
  // loader; an empty or colon-bearing name would mis-split on reload.
  for (const char* name : {"#r1", "", "a:b", " r1"}) {
    RuleSet rules(CustomerSchema());
    ASSERT_TRUE(rules.AddRule(name, {PatternCell{5, "1"}},
                              {PatternCell{3, "x"}})
                    .ok());
    std::string offender;
    EXPECT_FALSE(RuleSurvivesText(rules.rule(0), rules.schema(), &offender))
        << "name '" << name << "' should not survive";
    EXPECT_EQ(offender, name);
  }
}

TEST(CfdTest, AddRuleValidatesStructure) {
  RuleSet rules(CustomerSchema());
  // RHS attribute repeated in LHS.
  EXPECT_FALSE(rules.AddRuleFromString("bad", "CT=Fort Wayne -> CT=x").ok());
  // Out-of-range attribute id.
  EXPECT_FALSE(
      rules.AddRule("bad", {PatternCell{99, std::nullopt}},
                    {PatternCell{2, std::nullopt}})
          .ok());
  // Empty RHS.
  EXPECT_FALSE(rules.AddRule("bad", {PatternCell{0, std::nullopt}}, {}).ok());
}

TEST(CfdTest, MentionsAndLhsContains) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules.AddRuleFromString("phi5", "STR, CT=Fort Wayne -> ZIP")
                  .ok());
  const Cfd& rule = rules.rule(0);
  const Schema& schema = rules.schema();
  EXPECT_TRUE(rule.LhsContains(schema.FindAttr("STR")));
  EXPECT_TRUE(rule.LhsContains(schema.FindAttr("CT")));
  EXPECT_FALSE(rule.LhsContains(schema.FindAttr("ZIP")));
  EXPECT_TRUE(rule.Mentions(schema.FindAttr("ZIP")));
  EXPECT_FALSE(rule.Mentions(schema.FindAttr("Name")));
}

TEST(CfdTest, RulesMentioningIndex) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules
                  .AddRuleFromString("phi1",
                                     "ZIP=46360 -> CT=Michigan City ; STT=IN")
                  .ok());
  ASSERT_TRUE(rules.AddRuleFromString("phi5", "STR, CT=Fort Wayne -> ZIP")
                  .ok());
  const Schema& schema = rules.schema();
  // ZIP is mentioned by all three normal-form rules.
  EXPECT_EQ(rules.RulesMentioning(schema.FindAttr("ZIP")).size(), 3u);
  // CT by phi1.1 and phi5.
  EXPECT_EQ(rules.RulesMentioning(schema.FindAttr("CT")).size(), 2u);
  // STT only by phi1.2.
  EXPECT_EQ(rules.RulesMentioning(schema.FindAttr("STT")).size(), 1u);
  // Name by nothing.
  EXPECT_TRUE(rules.RulesMentioning(schema.FindAttr("Name")).empty());
  // Out-of-range attr is safe.
  EXPECT_TRUE(rules.RulesMentioning(kInvalidAttrId).empty());
}

TEST(CfdTest, ToStringRendersPatterns) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules.AddRuleFromString("phi5", "STR, CT=Fort Wayne -> ZIP")
                  .ok());
  EXPECT_EQ(rules.rule(0).ToString(rules.schema()),
            "phi5: (STR, CT=Fort Wayne -> ZIP)");
}

TEST(CfdTest, AllRuleIds) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules.AddRuleFromString("a", "ZIP=1 -> CT=x").ok());
  ASSERT_TRUE(rules.AddRuleFromString("b", "ZIP=2 -> CT=y").ok());
  EXPECT_EQ(rules.AllRuleIds(), (std::vector<RuleId>{0, 1}));
}

TEST(CfdTest, ValuesWithSpacesAndTrimming) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(
      rules.AddRuleFromString("phi", "  ZIP = 46360  ->  CT = Michigan City ")
          .ok());
  EXPECT_EQ(*rules.rule(0).lhs()[0].constant, "46360");
  EXPECT_EQ(*rules.rule(0).rhs().constant, "Michigan City");
}

}  // namespace
}  // namespace gdr
