#include "cfd/cfd.h"

#include <gtest/gtest.h>

namespace gdr {
namespace {

Schema CustomerSchema() {
  return *Schema::Make({"Name", "SRC", "STR", "CT", "STT", "ZIP"});
}

TEST(CfdTest, AddRuleFromStringConstant) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules
                  .AddRuleFromString(
                      "phi1", "ZIP=46360 -> CT=Michigan City ; STT=IN")
                  .ok());
  // Multi-RHS normalizes into two rules.
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules.rule(0).name(), "phi1.1");
  EXPECT_EQ(rules.rule(1).name(), "phi1.2");
  EXPECT_TRUE(rules.rule(0).IsConstant());
  EXPECT_EQ(*rules.rule(0).rhs().constant, "Michigan City");
  EXPECT_EQ(*rules.rule(1).rhs().constant, "IN");
  ASSERT_EQ(rules.rule(0).lhs().size(), 1u);
  EXPECT_EQ(*rules.rule(0).lhs()[0].constant, "46360");
}

TEST(CfdTest, AddRuleFromStringVariable) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules.AddRuleFromString("phi5", "STR, CT=Fort Wayne -> ZIP")
                  .ok());
  ASSERT_EQ(rules.size(), 1u);
  const Cfd& rule = rules.rule(0);
  EXPECT_TRUE(rule.IsVariable());
  EXPECT_EQ(rule.name(), "phi5");  // single RHS keeps the name
  ASSERT_EQ(rule.lhs().size(), 2u);
  EXPECT_FALSE(rule.lhs()[0].is_constant());  // STR is a wildcard
  EXPECT_EQ(*rule.lhs()[1].constant, "Fort Wayne");
}

TEST(CfdTest, ParserRejectsMalformed) {
  RuleSet rules(CustomerSchema());
  EXPECT_FALSE(rules.AddRuleFromString("bad", "no arrow here").ok());
  EXPECT_FALSE(rules.AddRuleFromString("bad", "Unknown=1 -> CT=x").ok());
  EXPECT_FALSE(rules.AddRuleFromString("bad", " -> CT=x").ok());
}

TEST(CfdTest, AddRuleValidatesStructure) {
  RuleSet rules(CustomerSchema());
  // RHS attribute repeated in LHS.
  EXPECT_FALSE(rules.AddRuleFromString("bad", "CT=Fort Wayne -> CT=x").ok());
  // Out-of-range attribute id.
  EXPECT_FALSE(
      rules.AddRule("bad", {PatternCell{99, std::nullopt}},
                    {PatternCell{2, std::nullopt}})
          .ok());
  // Empty RHS.
  EXPECT_FALSE(rules.AddRule("bad", {PatternCell{0, std::nullopt}}, {}).ok());
}

TEST(CfdTest, MentionsAndLhsContains) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules.AddRuleFromString("phi5", "STR, CT=Fort Wayne -> ZIP")
                  .ok());
  const Cfd& rule = rules.rule(0);
  const Schema& schema = rules.schema();
  EXPECT_TRUE(rule.LhsContains(schema.FindAttr("STR")));
  EXPECT_TRUE(rule.LhsContains(schema.FindAttr("CT")));
  EXPECT_FALSE(rule.LhsContains(schema.FindAttr("ZIP")));
  EXPECT_TRUE(rule.Mentions(schema.FindAttr("ZIP")));
  EXPECT_FALSE(rule.Mentions(schema.FindAttr("Name")));
}

TEST(CfdTest, RulesMentioningIndex) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules
                  .AddRuleFromString("phi1",
                                     "ZIP=46360 -> CT=Michigan City ; STT=IN")
                  .ok());
  ASSERT_TRUE(rules.AddRuleFromString("phi5", "STR, CT=Fort Wayne -> ZIP")
                  .ok());
  const Schema& schema = rules.schema();
  // ZIP is mentioned by all three normal-form rules.
  EXPECT_EQ(rules.RulesMentioning(schema.FindAttr("ZIP")).size(), 3u);
  // CT by phi1.1 and phi5.
  EXPECT_EQ(rules.RulesMentioning(schema.FindAttr("CT")).size(), 2u);
  // STT only by phi1.2.
  EXPECT_EQ(rules.RulesMentioning(schema.FindAttr("STT")).size(), 1u);
  // Name by nothing.
  EXPECT_TRUE(rules.RulesMentioning(schema.FindAttr("Name")).empty());
  // Out-of-range attr is safe.
  EXPECT_TRUE(rules.RulesMentioning(kInvalidAttrId).empty());
}

TEST(CfdTest, ToStringRendersPatterns) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules.AddRuleFromString("phi5", "STR, CT=Fort Wayne -> ZIP")
                  .ok());
  EXPECT_EQ(rules.rule(0).ToString(rules.schema()),
            "phi5: (STR, CT=Fort Wayne -> ZIP)");
}

TEST(CfdTest, AllRuleIds) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(rules.AddRuleFromString("a", "ZIP=1 -> CT=x").ok());
  ASSERT_TRUE(rules.AddRuleFromString("b", "ZIP=2 -> CT=y").ok());
  EXPECT_EQ(rules.AllRuleIds(), (std::vector<RuleId>{0, 1}));
}

TEST(CfdTest, ValuesWithSpacesAndTrimming) {
  RuleSet rules(CustomerSchema());
  ASSERT_TRUE(
      rules.AddRuleFromString("phi", "  ZIP = 46360  ->  CT = Michigan City ")
          .ok());
  EXPECT_EQ(*rules.rule(0).lhs()[0].constant, "46360");
  EXPECT_EQ(*rules.rule(0).rhs().constant, "Michigan City");
}

}  // namespace
}  // namespace gdr
