// Property tests for the flat open-addressing table backing the violation
// index's key → GroupId maps: random insert/erase/rehash churn pinned
// against a std::unordered_map oracle, plus the GroupId free-list
// recycling adversary (retire-and-reintern cycles that tombstone-based
// schemes degrade under).
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/flat_table.h"
#include "util/rng.h"

namespace gdr {
namespace {

using Key = std::vector<std::int32_t>;

// The violation index's GroupKeyHash shape: FNV-1a over the id bytes.
struct KeyHash {
  std::size_t operator()(const Key& key) const {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::int32_t id : key) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

// A deliberately colliding hash: every key lands in one of 4 home slots,
// forcing long probe runs and exercising backward-shift deletion across
// wrapped runs.
struct CollidingHash {
  std::size_t operator()(const Key& key) const {
    return KeyHash{}(key) & 3;
  }
};

template <typename Hash>
void ExpectMatchesOracle(
    const FlatTable<Key, std::int32_t, Hash>& table,
    const std::unordered_map<Key, std::int32_t, KeyHash>& oracle) {
  ASSERT_EQ(table.size(), oracle.size());
  for (const auto& [key, value] : oracle) {
    const std::int32_t* found = table.Find(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, value);
  }
  // The reverse direction: everything the table visits is in the oracle.
  std::size_t visited = 0;
  table.ForEach([&](const Key& key, std::int32_t value) {
    ++visited;
    auto it = oracle.find(key);
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(it->second, value);
  });
  EXPECT_EQ(visited, oracle.size());
}

template <typename Hash>
void ChurnAgainstOracle(std::uint64_t seed, std::size_t operations,
                        std::size_t key_space) {
  Rng rng(seed);
  FlatTable<Key, std::int32_t, Hash> table;
  std::unordered_map<Key, std::int32_t, KeyHash> oracle;

  auto random_key = [&] {
    Key key(2 + rng.NextBounded(3));
    for (auto& part : key) {
      part = static_cast<std::int32_t>(rng.NextBounded(key_space));
    }
    return key;
  };

  for (std::size_t op = 0; op < operations; ++op) {
    const Key key = random_key();
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {  // insert-or-assign, biased so the table grows and rehashes
        const std::int32_t value =
            static_cast<std::int32_t>(rng.NextBounded(1 << 20));
        const bool inserted = table.Insert(key, value);
        EXPECT_EQ(inserted, !oracle.contains(key));
        oracle[key] = value;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(table.Erase(key), oracle.erase(key) > 0);
        break;
      }
      default: {  // lookup
        const std::int32_t* found = table.Find(key);
        auto it = oracle.find(key);
        ASSERT_EQ(found != nullptr, it != oracle.end());
        if (found != nullptr) EXPECT_EQ(*found, it->second);
      }
    }
    if (op % 257 == 0) ExpectMatchesOracle(table, oracle);
  }
  ExpectMatchesOracle(table, oracle);
}

TEST(FlatTableTest, RandomChurnMatchesUnorderedMapOracle) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ChurnAgainstOracle<KeyHash>(seed, 4000, 50);
  }
}

TEST(FlatTableTest, ChurnSurvivesPathologicalCollisions) {
  // Small key space + 4 home slots: every operation probes through long,
  // frequently wrapping runs.
  for (std::uint64_t seed = 10; seed <= 13; ++seed) {
    ChurnAgainstOracle<CollidingHash>(seed, 1500, 8);
  }
}

// The violation-index access pattern: groups retire (Erase) and re-intern
// (Insert with a recycled GroupId) in tight cycles as rows move between
// LHS groups. Backward-shift deletion must keep lookups exact through
// thousands of such cycles without tombstone accumulation.
TEST(FlatTableTest, FreeListRecyclingAdversary) {
  Rng rng(99);
  FlatTable<Key, std::int32_t, KeyHash> table;
  std::unordered_map<Key, std::int32_t, KeyHash> oracle;
  std::vector<std::int32_t> free_ids;  // recycled "GroupIds"
  std::int32_t next_id = 0;
  std::vector<Key> live;

  for (std::size_t cycle = 0; cycle < 3000; ++cycle) {
    if (!live.empty() && rng.NextBounded(2) == 0) {
      // Retire a random live group: erase its key, recycle its id.
      const std::size_t victim = rng.NextBounded(live.size());
      const Key key = live[victim];
      live[victim] = live.back();
      live.pop_back();
      free_ids.push_back(oracle.at(key));
      ASSERT_TRUE(table.Erase(key));
      oracle.erase(key);
    } else {
      // Intern a new group under a fresh key, preferring a recycled id.
      Key key{static_cast<std::int32_t>(rng.NextBounded(40)),
              static_cast<std::int32_t>(rng.NextBounded(40)),
              static_cast<std::int32_t>(cycle)};  // unique per cycle
      std::int32_t id;
      if (!free_ids.empty()) {
        id = free_ids.back();
        free_ids.pop_back();
      } else {
        id = next_id++;
      }
      ASSERT_TRUE(table.Insert(key, id));
      oracle[key] = id;
      live.push_back(std::move(key));
    }
  }
  ExpectMatchesOracle(table, oracle);

  // Drain every live group; the table must empty exactly.
  for (const Key& key : live) ASSERT_TRUE(table.Erase(key));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.Contains(live.empty() ? Key{0} : live.front()));
}

TEST(FlatTableTest, ClearKeepsCapacityAndEmptiesTable) {
  FlatTable<Key, std::int32_t, KeyHash> table;
  for (std::int32_t i = 0; i < 500; ++i) {
    table.Insert({i, i + 1}, i);
  }
  const std::size_t capacity = table.capacity();
  EXPECT_GE(capacity, 500u);
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.capacity(), capacity);  // the reusable-scratch contract
  for (std::int32_t i = 0; i < 500; ++i) {
    EXPECT_EQ(table.Find({i, i + 1}), nullptr);
  }
  // Refill after Clear: no stale entries resurface.
  for (std::int32_t i = 0; i < 500; ++i) {
    EXPECT_TRUE(table.Insert({i, i + 1}, i * 2));
  }
  EXPECT_EQ(table.size(), 500u);
  EXPECT_EQ(*table.Find({7, 8}), 14);
}

TEST(FlatTableTest, ReserveAvoidsRehashAndFindOrInsertDefaults) {
  FlatTable<Key, std::int32_t, KeyHash> table;
  table.Reserve(100);
  const std::size_t capacity = table.capacity();
  for (std::int32_t i = 0; i < 100; ++i) {
    bool inserted = false;
    std::int32_t& slot = table.FindOrInsert({i}, &inserted);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(slot, 0);  // value-initialized
    slot = i;
  }
  EXPECT_EQ(table.capacity(), capacity);  // Reserve pre-sized: no growth
  bool inserted = true;
  EXPECT_EQ(table.FindOrInsert({42}, &inserted), 42);
  EXPECT_FALSE(inserted);
}

}  // namespace
}  // namespace gdr
