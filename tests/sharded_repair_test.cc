// The sharded data plane's differential suite: merged results and their
// fingerprints must be a pure function of the shard partition — identical
// across thread counts (1/2/4/8), across forward/reverse shard execution,
// and, at shard_count 1, identical to the plain unsharded experiment.
// Plus merge unit behavior and append routing into per-shard sessions.
#include "plane/sharded_repair.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "util/thread_pool.h"
#include "workload/registry.h"

namespace gdr::plane {
namespace {

Dataset SmallDataset() {
  return *WorkloadRegistry::Global().Resolve("dataset1:records=300,seed=21");
}

ShardedRepairConfig BaseConfig(std::size_t shard_count) {
  ShardedRepairConfig config;
  config.shard_count = shard_count;
  config.experiment.strategy = Strategy::kGdrNoLearning;
  config.experiment.seed = 17;
  config.experiment.sample_every = 20;
  return config;
}

TEST(ShardedRepairTest, SingleShardMatchesPlainExperiment) {
  const Dataset dataset = SmallDataset();
  const ShardedRepairConfig config = BaseConfig(1);

  auto sharded = RunShardedRepair(dataset, config);
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded->shards.size(), 1u);

  ExperimentConfig plain = config.experiment;
  auto direct = RunStrategyExperiment(dataset, plain);
  ASSERT_TRUE(direct.ok());

  // The single-shard slice is a full copy, so the merged result must be
  // the plain experiment bit for bit.
  EXPECT_EQ(sharded->fingerprint, FingerprintExperimentResult(*direct));
  EXPECT_TRUE(sharded->merge_deterministic);
}

TEST(ShardedRepairTest, FingerprintInvariantAcrossThreadCountsAndOrder) {
  const Dataset dataset = SmallDataset();
  const std::size_t kShards = 4;

  // Baseline: serial, forward order.
  auto baseline = RunShardedRepair(dataset, BaseConfig(kShards));
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(baseline->merge_deterministic);
  ASSERT_EQ(baseline->shards.size(), kShards);

  // Serial, reverse order.
  {
    ShardedRepairConfig config = BaseConfig(kShards);
    config.reverse_execution = true;
    auto reversed = RunShardedRepair(dataset, config);
    ASSERT_TRUE(reversed.ok());
    EXPECT_EQ(reversed->fingerprint, baseline->fingerprint);
  }

  // Pooled at 2/4/8 workers, forward and reverse.
  for (const std::size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    for (const bool reverse : {false, true}) {
      ShardedRepairConfig config = BaseConfig(kShards);
      config.pool = &pool;
      config.reverse_execution = reverse;
      auto result = RunShardedRepair(dataset, config);
      ASSERT_TRUE(result.ok()) << threads << (reverse ? " reverse" : "");
      EXPECT_EQ(result->fingerprint, baseline->fingerprint)
          << threads << " threads, reverse=" << reverse;
      EXPECT_TRUE(result->merge_deterministic);
    }
  }
}

TEST(ShardedRepairTest, ShardCountBeyondRowCountRunsEmptyShards) {
  Dataset dataset =
      *WorkloadRegistry::Global().Resolve("dataset1:records=40,seed=3");
  ShardedRepairConfig config = BaseConfig(dataset.dirty.num_rows() + 5);
  auto result = RunShardedRepair(dataset, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->shards.size(), dataset.dirty.num_rows() + 5);
  EXPECT_TRUE(result->merge_deterministic);
  // The surplus shards are empty experiments contributing nothing.
  for (std::size_t s = dataset.dirty.num_rows(); s < result->shards.size();
       ++s) {
    EXPECT_EQ(result->shards[s].stats.user_feedback, 0u);
    EXPECT_EQ(result->shards[s].remaining_violations, 0);
  }
}

TEST(MergeShardResultsTest, EmptyAndSingleInputs) {
  EXPECT_EQ(MergeShardResults({}).curve.size(), 0u);

  ExperimentResult one;
  one.strategy_name = "GDR";
  one.initial_loss = 2.0;
  one.final_loss = 0.5;
  one.curve = {{0, 0.0, 2.0}, {10, 75.0, 0.5}};
  const ExperimentResult merged = MergeShardResults({one});
  EXPECT_EQ(FingerprintExperimentResult(merged),
            FingerprintExperimentResult(one));
}

TEST(MergeShardResultsTest, SumsCountersAndReplaysCurves) {
  ExperimentResult a;
  a.strategy_name = "GDR";
  a.stats.user_feedback = 10;
  a.initial_loss = 1.0;
  a.final_loss = 0.0;
  a.remaining_violations = 1;
  a.wall_seconds = 2.0;
  a.curve = {{0, 0.0, 1.0}, {4, 50.0, 0.5}, {10, 100.0, 0.0}};

  ExperimentResult b;
  b.strategy_name = "GDR";
  b.stats.user_feedback = 6;
  b.initial_loss = 3.0;
  b.final_loss = 1.0;
  b.remaining_violations = 2;
  b.wall_seconds = 5.0;
  b.curve = {{0, 0.0, 3.0}, {6, 200.0 / 3.0, 1.0}};

  const ExperimentResult merged = MergeShardResults({a, b});
  EXPECT_EQ(merged.stats.user_feedback, 16u);
  EXPECT_DOUBLE_EQ(merged.initial_loss, 4.0);
  EXPECT_DOUBLE_EQ(merged.final_loss, 1.0);
  EXPECT_EQ(merged.remaining_violations, 3);
  EXPECT_DOUBLE_EQ(merged.wall_seconds, 5.0);  // max, shards overlap
  EXPECT_DOUBLE_EQ(merged.final_improvement_pct, 75.0);

  // Events replay at feedback 4 (a), 6 (b), 10 (a) on top of the summed
  // initial point; totals accumulate per-shard deltas.
  ASSERT_EQ(merged.curve.size(), 4u);
  EXPECT_EQ(merged.curve[0].feedback, 0u);
  EXPECT_DOUBLE_EQ(merged.curve[0].loss, 4.0);
  EXPECT_EQ(merged.curve[1].feedback, 4u);
  EXPECT_DOUBLE_EQ(merged.curve[1].loss, 3.5);
  EXPECT_EQ(merged.curve[2].feedback, 10u);
  EXPECT_DOUBLE_EQ(merged.curve[2].loss, 1.5);
  EXPECT_EQ(merged.curve[3].feedback, 16u);
  EXPECT_DOUBLE_EQ(merged.curve[3].loss, 1.0);
  // Order of the input vector is the only order that matters; the same
  // shards merged twice give the same digest.
  EXPECT_EQ(FingerprintExperimentResult(MergeShardResults({a, b})),
            FingerprintExperimentResult(merged));
}

// Late-arriving rows route by append index to the owning shard's session
// (the PR 6 streaming path, sharded): every routed row is appended to
// exactly one per-shard session and admission totals add up.
TEST(ShardedRepairTest, AppendsRouteIntoOwningShardSessions) {
  const Dataset dataset = SmallDataset();
  const std::size_t kShards = 3;
  auto plan = ShardPlan::Split(dataset.dirty.num_rows(), kShards);
  ASSERT_TRUE(plan.ok());

  struct ShardSession {
    Dataset slice;
    Table working;
    std::unique_ptr<GdrEngine> engine;
    std::unique_ptr<GdrSession> session;

    explicit ShardSession(Dataset s)
        : slice(std::move(s)), working(slice.dirty) {}
  };
  GdrOptions options;
  options.strategy = Strategy::kGdrNoLearning;
  options.seed = 5;

  std::vector<std::unique_ptr<ShardSession>> sessions;
  std::vector<std::unique_ptr<UserOracle>> oracles;
  for (std::size_t s = 0; s < kShards; ++s) {
    auto slice = MakeShardDataset(dataset, plan->range(s), "shard");
    ASSERT_TRUE(slice.ok());
    sessions.push_back(std::make_unique<ShardSession>(*std::move(slice)));
    ShardSession& shard = *sessions.back();
    oracles.push_back(std::make_unique<UserOracle>(&shard.slice.clean));
    shard.engine = std::make_unique<GdrEngine>(
        &shard.working, &shard.slice.rules, oracles.back().get(), options);
    ASSERT_TRUE(shard.engine->Initialize().ok());
    shard.session = std::make_unique<GdrSession>(shard.engine.get());
    ASSERT_TRUE(shard.session->Start().ok());
  }

  std::vector<std::vector<std::string>> batch;
  for (int i = 0; i < 7; ++i) {
    batch.push_back(std::vector<std::string>(dataset.dirty.num_attrs(),
                                             "v" + std::to_string(i)));
  }
  const auto routed = plan->RouteAppends(batch);
  ASSERT_EQ(routed.size(), kShards);

  std::size_t appended_total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    if (routed[s].empty()) continue;
    const std::size_t before = sessions[s]->working.num_rows();
    auto outcome = sessions[s]->session->AppendDirtyRows(routed[s]);
    ASSERT_TRUE(outcome.ok()) << "shard " << s;
    EXPECT_EQ(outcome->rows_appended, routed[s].size());
    EXPECT_EQ(sessions[s]->working.num_rows(), before + routed[s].size());
    appended_total += outcome->rows_appended;
  }
  EXPECT_EQ(appended_total, batch.size());
}

}  // namespace
}  // namespace gdr::plane
