#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace gdr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kIOError), "IOError");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  GDR_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GDR_ASSIGN_OR_RETURN(int half, Half(x));
  GDR_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> err = Quarter(6);  // 6/2 = 3 is odd
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).ValueOrDie();
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace gdr
