#include "data/table.h"

#include <gtest/gtest.h>

namespace gdr {
namespace {

Table MakeCityTable() {
  auto schema = Schema::Make({"City", "Zip"});
  Table table(*schema);
  EXPECT_TRUE(table.AppendRow({"Fort Wayne", "46802"}).ok());
  EXPECT_TRUE(table.AppendRow({"Westville", "46391"}).ok());
  EXPECT_TRUE(table.AppendRow({"Fort Wayne", "46802"}).ok());
  return table;
}

TEST(TableTest, AppendAndAccess) {
  Table table = MakeCityTable();
  EXPECT_EQ(table.num_rows(), 3u);
  EXPECT_EQ(table.num_attrs(), 2u);
  EXPECT_EQ(table.at(0, 0), "Fort Wayne");
  EXPECT_EQ(table.at(1, 1), "46391");
  // Same string interns to the same id.
  EXPECT_EQ(table.id_at(0, 0), table.id_at(2, 0));
}

TEST(TableTest, AppendRejectsWrongArity) {
  auto schema = Schema::Make({"A", "B"});
  Table table(*schema);
  EXPECT_FALSE(table.AppendRow({"only-one"}).ok());
  EXPECT_FALSE(table.AppendRow({"1", "2", "3"}).ok());
}

TEST(TableTest, SetOverwritesCell) {
  Table table = MakeCityTable();
  table.Set(1, 0, "New Haven");
  EXPECT_EQ(table.at(1, 0), "New Haven");
}

TEST(TableTest, ValueCountTracksMutations) {
  Table table = MakeCityTable();
  const ValueId fort_wayne = table.dict(0).Lookup("Fort Wayne");
  const ValueId westville = table.dict(0).Lookup("Westville");
  EXPECT_EQ(table.ValueCount(0, fort_wayne), 2);
  EXPECT_EQ(table.ValueCount(0, westville), 1);

  table.SetById(1, 0, fort_wayne);
  EXPECT_EQ(table.ValueCount(0, fort_wayne), 3);
  EXPECT_EQ(table.ValueCount(0, westville), 0);

  const ValueId fresh = table.Set(0, 0, "Gary");
  EXPECT_EQ(table.ValueCount(0, fresh), 1);
  EXPECT_EQ(table.ValueCount(0, fort_wayne), 2);
}

TEST(TableTest, ValueCountForNeverUsedValueIsZero) {
  Table table = MakeCityTable();
  const ValueId interned_only = table.InternValue(0, "Phantom");
  EXPECT_EQ(table.ValueCount(0, interned_only), 0);
}

TEST(TableTest, SetByIdSameValueIsNoop) {
  Table table = MakeCityTable();
  const ValueId v = table.id_at(0, 0);
  table.SetById(0, 0, v);
  EXPECT_EQ(table.ValueCount(0, v), 2);
}

TEST(TableTest, CopyIsIndependentSnapshot) {
  Table table = MakeCityTable();
  Table copy = table;
  copy.Set(0, 0, "Changed");
  EXPECT_EQ(table.at(0, 0), "Fort Wayne");
  EXPECT_EQ(copy.at(0, 0), "Changed");
}

TEST(TableTest, CellEqualsComparesStringsAcrossDictionaries) {
  Table a = MakeCityTable();
  // b interns the values in a different order -> different ids.
  auto schema = Schema::Make({"City", "Zip"});
  Table b(*schema);
  ASSERT_TRUE(b.AppendRow({"Fort Wayne", "46802"}).ok());
  ASSERT_TRUE(b.AppendRow({"Westville", "46391"}).ok());
  ASSERT_TRUE(b.AppendRow({"Somewhere", "00000"}).ok());
  b.InternValue(0, "Zzz");
  EXPECT_TRUE(a.CellEquals(0, 0, b));
  EXPECT_FALSE(a.CellEquals(2, 0, b));
}

TEST(TableTest, CountDifferingCells) {
  Table a = MakeCityTable();
  Table b = a;
  auto same = a.CountDifferingCells(b);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(*same, 0u);

  b.Set(0, 0, "X");
  b.Set(2, 1, "Y");
  auto diff = a.CountDifferingCells(b);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, 2u);
}

TEST(TableTest, CountDifferingCellsRejectsMismatch) {
  Table a = MakeCityTable();
  auto other_schema = Schema::Make({"X"});
  Table c(*other_schema);
  EXPECT_FALSE(a.CountDifferingCells(c).ok());

  Table d(a.schema());
  ASSERT_TRUE(d.AppendRow({"only", "row"}).ok());
  EXPECT_FALSE(a.CountDifferingCells(d).ok());
}

TEST(TableTest, RowToString) {
  Table table = MakeCityTable();
  EXPECT_EQ(table.RowToString(1), "Westville | 46391");
}

}  // namespace
}  // namespace gdr
