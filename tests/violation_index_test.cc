#include "cfd/violation_index.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gdr {
namespace {

// A Figure-1-style Customer instance:
//   rules: phi1..phi4 constant (zip -> city, state), phi5 variable
//   (STR, CT=Fort Wayne -> ZIP).
class Figure1Fixture : public ::testing::Test {
 protected:
  Figure1Fixture()
      : schema_(*Schema::Make({"Name", "SRC", "STR", "CT", "STT", "ZIP"})),
        table_(schema_),
        rules_(schema_) {
    Append("a", "H1", "Sherden Rd", "Fort Wayne", "IN", "46825");   // t0 clean
    Append("b", "H1", "Sherden Rd", "Fort Wayne", "IN", "46391");   // t1 zip err
    Append("c", "H2", "Oak Ave", "Michigan Cty", "IN", "46360");    // t2 city typo
    Append("d", "H2", "Oak Ave", "Michigan Cty", "IN", "46360");    // t3 city typo
    Append("e", "H3", "Main St", "New Haven", "IND", "46774");      // t4 state typo
    Append("f", "H4", "Main St", "Westville", "IN", "46391");       // t5 clean

    Add("phi1", "ZIP=46360 -> CT=Michigan City ; STT=IN");
    Add("phi2", "ZIP=46774 -> CT=New Haven ; STT=IN");
    Add("phi3", "ZIP=46825 -> CT=Fort Wayne ; STT=IN");
    Add("phi4", "ZIP=46391 -> CT=Westville ; STT=IN");
    Add("phi5", "STR, CT=Fort Wayne -> ZIP");
    index_ = std::make_unique<ViolationIndex>(&table_, &rules_);
  }

  void Append(const char* name, const char* src, const char* str,
              const char* ct, const char* stt, const char* zip) {
    ASSERT_TRUE(table_.AppendRow({name, src, str, ct, stt, zip}).ok());
  }

  void Add(const char* name, const char* text) {
    ASSERT_TRUE(rules_.AddRuleFromString(name, text).ok());
  }

  RuleId Rule(const char* name) const {
    for (std::size_t i = 0; i < rules_.size(); ++i) {
      if (rules_.rule(static_cast<RuleId>(i)).name() == name) {
        return static_cast<RuleId>(i);
      }
    }
    return kInvalidRuleId;
  }

  Schema schema_;
  Table table_;
  RuleSet rules_;
  std::unique_ptr<ViolationIndex> index_;
};

TEST_F(Figure1Fixture, ConstantRuleViolations) {
  const RuleId phi1_ct = Rule("phi1.1");
  ASSERT_NE(phi1_ct, kInvalidRuleId);
  // t2, t3 have zip 46360 with a mistyped city.
  EXPECT_EQ(index_->TupleViolation(2, phi1_ct), 1);
  EXPECT_EQ(index_->TupleViolation(3, phi1_ct), 1);
  EXPECT_EQ(index_->TupleViolation(0, phi1_ct), 0);  // out of context
  EXPECT_EQ(index_->RuleViolations(phi1_ct), 2);
  EXPECT_EQ(index_->ViolatingCount(phi1_ct), 2);
  EXPECT_EQ(index_->ContextCount(phi1_ct), 2);
  EXPECT_EQ(index_->SatisfyingCount(phi1_ct), 0);  // in-context satisfying
}

TEST_F(Figure1Fixture, StateRuleViolations) {
  const RuleId phi2_stt = Rule("phi2.2");
  ASSERT_NE(phi2_stt, kInvalidRuleId);
  EXPECT_EQ(index_->TupleViolation(4, phi2_stt), 1);  // "IND"
  EXPECT_EQ(index_->RuleViolations(phi2_stt), 1);
}

TEST_F(Figure1Fixture, Phi4CityRule) {
  const RuleId phi4_ct = Rule("phi4.1");
  // t1 (Fort Wayne, 46391) violates; t5 (Westville, 46391) satisfies.
  EXPECT_EQ(index_->TupleViolation(1, phi4_ct), 1);
  EXPECT_EQ(index_->TupleViolation(5, phi4_ct), 0);
  EXPECT_EQ(index_->ContextCount(phi4_ct), 2);
  EXPECT_EQ(index_->SatisfyingCount(phi4_ct), 1);
}

TEST_F(Figure1Fixture, VariableRulePairwiseViolations) {
  const RuleId phi5 = Rule("phi5");
  ASSERT_NE(phi5, kInvalidRuleId);
  // Group (Sherden Rd, Fort Wayne) = {t0:46825, t1:46391}: each violates
  // with the other (Definition 1: vio = #partners).
  EXPECT_EQ(index_->TupleViolation(0, phi5), 1);
  EXPECT_EQ(index_->TupleViolation(1, phi5), 1);
  // Pairwise counting: 2 ordered pairs.
  EXPECT_EQ(index_->RuleViolations(phi5), 2);
  EXPECT_EQ(index_->ViolatingCount(phi5), 2);
  // Context = tuples with CT ≍ Fort Wayne.
  EXPECT_EQ(index_->ContextCount(phi5), 2);
  EXPECT_EQ(index_->SatisfyingCount(phi5), 0);
  // t4/t5 (Main St) are outside the Fort Wayne context.
  EXPECT_EQ(index_->TupleViolation(4, phi5), 0);
  EXPECT_EQ(index_->TupleViolation(5, phi5), 0);
}

TEST_F(Figure1Fixture, ViolationPartnersAndGroupMembers) {
  const RuleId phi5 = Rule("phi5");
  EXPECT_EQ(index_->ViolationPartners(0, phi5), (std::vector<RowId>{1}));
  EXPECT_EQ(index_->ViolationPartners(1, phi5), (std::vector<RowId>{0}));
  EXPECT_EQ(index_->GroupMembers(0, phi5), (std::vector<RowId>{0, 1}));
  // Constant rules have no partners.
  EXPECT_TRUE(index_->ViolationPartners(2, Rule("phi1.1")).empty());
  // Out-of-context rows have neither.
  EXPECT_TRUE(index_->ViolationPartners(4, phi5).empty());
  EXPECT_TRUE(index_->GroupMembers(4, phi5).empty());
}

TEST_F(Figure1Fixture, GroupCounts) {
  const RuleId phi5 = Rule("phi5");
  EXPECT_EQ(index_->GroupTotal(0, phi5), 2);
  const ValueId zip_46825 = table_.dict(schema_.FindAttr("ZIP")).Lookup("46825");
  const ValueId zip_46391 = table_.dict(schema_.FindAttr("ZIP")).Lookup("46391");
  EXPECT_EQ(index_->GroupRhsValueCount(0, phi5, zip_46825), 1);
  EXPECT_EQ(index_->GroupRhsValueCount(0, phi5, zip_46391), 1);
  // Constant rules report 0.
  EXPECT_EQ(index_->GroupTotal(2, Rule("phi1.1")), 0);
}

TEST_F(Figure1Fixture, DirtyRows) {
  EXPECT_TRUE(index_->IsDirty(0));   // phi5 partner
  EXPECT_TRUE(index_->IsDirty(1));   // phi4 + phi5
  EXPECT_TRUE(index_->IsDirty(2));
  EXPECT_TRUE(index_->IsDirty(4));
  EXPECT_FALSE(index_->IsDirty(5));
  EXPECT_EQ(index_->DirtyRows(), (std::vector<RowId>{0, 1, 2, 3, 4}));
}

TEST_F(Figure1Fixture, ViolatedRules) {
  const std::vector<RuleId> violated = index_->ViolatedRules(1);
  // t1 violates phi4.1 (city) and phi5; state rule phi4.2 is satisfied.
  EXPECT_EQ(violated.size(), 2u);
  EXPECT_EQ(index_->ViolatedRuleCount(1), 2);
  EXPECT_EQ(index_->ViolatedRuleCount(5), 0);
}

TEST_F(Figure1Fixture, ApplyCellChangeResolvesViolations) {
  const RuleId phi5 = Rule("phi5");
  const AttrId zip = schema_.FindAttr("ZIP");
  const std::int64_t before = index_->TotalViolations();
  // Fix t1's zip to 46825: resolves phi4.1, phi5 for both t0 and t1.
  index_->ApplyCellChange(1, zip, std::string_view("46825"));
  EXPECT_EQ(index_->RuleViolations(phi5), 0);
  EXPECT_FALSE(index_->IsDirty(0));
  EXPECT_FALSE(index_->IsDirty(1));
  EXPECT_LT(index_->TotalViolations(), before);
  EXPECT_EQ(table_.at(1, zip), "46825");
}

TEST_F(Figure1Fixture, ApplyCellChangeCanCreateViolations) {
  const AttrId ct = schema_.FindAttr("CT");
  // Make t5 a Fort Wayne tuple: joins the phi5 context with Main St and a
  // different zip than nobody -> fresh group, but now violates phi4.1.
  index_->ApplyCellChange(5, ct, std::string_view("Fort Wayne"));
  EXPECT_TRUE(index_->IsDirty(5));
  const RuleId phi4_ct = Rule("phi4.1");
  EXPECT_EQ(index_->TupleViolation(5, phi4_ct), 1);
  // t4 has Main St but is not in the Fort Wayne context: no phi5 pair.
  EXPECT_EQ(index_->TupleViolation(5, Rule("phi5")), 0);
}

TEST_F(Figure1Fixture, ApplyThenRevertRestoresState) {
  const AttrId zip = schema_.FindAttr("ZIP");
  const std::int64_t vio_before = index_->TotalViolations();
  const std::vector<RowId> dirty_before = index_->DirtyRows();
  const ValueId old_value =
      index_->ApplyCellChange(1, zip, std::string_view("46825"));
  index_->ApplyCellChange(1, zip, old_value);
  EXPECT_EQ(index_->TotalViolations(), vio_before);
  EXPECT_EQ(index_->DirtyRows(), dirty_before);
  EXPECT_EQ(table_.at(1, zip), "46391");
}

TEST_F(Figure1Fixture, VersionAdvancesOnEffectiveChangesOnly) {
  const AttrId zip = schema_.FindAttr("ZIP");
  const std::uint64_t v0 = index_->version();
  index_->ApplyCellChange(1, zip, table_.id_at(1, zip));  // no-op
  EXPECT_EQ(index_->version(), v0);
  index_->ApplyCellChange(1, zip, std::string_view("46825"));
  EXPECT_GT(index_->version(), v0);
}

TEST_F(Figure1Fixture, HypotheticalMatchesActualApply) {
  const AttrId zip = schema_.FindAttr("ZIP");
  const AttrId ct = schema_.FindAttr("CT");
  for (RowId row : {RowId{0}, RowId{1}, RowId{5}}) {
    for (AttrId attr : {zip, ct}) {
      for (std::size_t v = 0; v < table_.DomainSize(attr); ++v) {
        const ValueId value = static_cast<ValueId>(v);
        const std::int64_t hypothetical =
            index_->HypotheticalViolatedRuleCount(row, attr, value);
        const ValueId old_value = index_->ApplyCellChange(row, attr, value);
        const std::int64_t actual = index_->ViolatedRuleCount(row);
        index_->ApplyCellChange(row, attr, old_value);
        EXPECT_EQ(hypothetical, actual)
            << "row " << row << " attr " << attr << " value " << v;
      }
    }
  }
}

// Property test: after a random walk of cell changes, the incrementally
// maintained index agrees with an index rebuilt from scratch.
class IncrementalConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalConsistencyTest, MatchesRebuild) {
  Schema schema = *Schema::Make({"STR", "CT", "STT", "ZIP"});
  Table table(schema);
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const char* streets[] = {"Main St", "Oak Ave", "Sherden Rd"};
  const char* cities[] = {"Fort Wayne", "Westville", "Michigan City"};
  const char* zips[] = {"46825", "46391", "46360", "46802"};
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(table
                    .AppendRow({streets[rng.NextBounded(3)],
                                cities[rng.NextBounded(3)], "IN",
                                zips[rng.NextBounded(4)]})
                    .ok());
  }
  RuleSet rules(schema);
  ASSERT_TRUE(rules.AddRuleFromString("c1", "ZIP=46360 -> CT=Michigan City")
                  .ok());
  ASSERT_TRUE(rules.AddRuleFromString("c2", "ZIP=46391 -> CT=Westville").ok());
  ASSERT_TRUE(rules.AddRuleFromString("v1", "STR, CT -> ZIP").ok());
  ASSERT_TRUE(rules.AddRuleFromString("v2", "ZIP -> CT").ok());

  ViolationIndex incremental(&table, &rules);
  for (int step = 0; step < 200; ++step) {
    const RowId row = static_cast<RowId>(rng.NextBounded(table.num_rows()));
    const AttrId attr = static_cast<AttrId>(rng.NextBounded(4));
    const ValueId value =
        static_cast<ValueId>(rng.NextBounded(table.DomainSize(attr)));
    incremental.ApplyCellChange(row, attr, value);
  }

  Table snapshot = table;
  ViolationIndex rebuilt(&snapshot, &rules);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleId rule = static_cast<RuleId>(i);
    EXPECT_EQ(incremental.RuleViolations(rule), rebuilt.RuleViolations(rule));
    EXPECT_EQ(incremental.ViolatingCount(rule), rebuilt.ViolatingCount(rule));
    EXPECT_EQ(incremental.ContextCount(rule), rebuilt.ContextCount(rule));
    EXPECT_EQ(incremental.SatisfyingCount(rule),
              rebuilt.SatisfyingCount(rule));
  }
  EXPECT_EQ(incremental.DirtyRows(), rebuilt.DirtyRows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      EXPECT_EQ(
          incremental.TupleViolation(static_cast<RowId>(r),
                                     static_cast<RuleId>(i)),
          rebuilt.TupleViolation(static_cast<RowId>(r),
                                 static_cast<RuleId>(i)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalConsistencyTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace gdr
