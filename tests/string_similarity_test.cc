#include "util/string_similarity.h"

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gdr {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("46360", "46391"), 2u);
}

TEST(EditDistanceTest, Symmetry) {
  EXPECT_EQ(EditDistance("Fort Wayne", "FT Wayne"),
            EditDistance("FT Wayne", "Fort Wayne"));
}

TEST(NormalizedEditSimilarityTest, PaperEq7Examples) {
  // sim(v, v') = 1 - dist / max(|v|, |v'|)  (Eq. 7)
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", "xyz"), 0.0);
  // 46391 -> 46825: dist 3 over length 5.
  EXPECT_NEAR(NormalizedEditSimilarity("46391", "46825"), 1.0 - 3.0 / 5.0,
              1e-12);
}

TEST(NormalizedEditSimilarityTest, RangeIsUnitInterval) {
  EXPECT_GE(NormalizedEditSimilarity("a", "completely different"), 0.0);
  EXPECT_LE(NormalizedEditSimilarity("abcd", "abce"), 1.0);
}

// Property sweep: metric axioms of the edit distance on a pseudo-random
// corpus of short strings.
class EditDistancePropertyTest : public ::testing::TestWithParam<int> {};

std::string RandomWord(Rng* rng) {
  const std::size_t len = rng->NextBounded(12);
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + rng->NextBounded(6)));
  }
  return out;
}

TEST_P(EditDistancePropertyTest, MetricAxioms) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    const std::string a = RandomWord(&rng);
    const std::string b = RandomWord(&rng);
    const std::string c = RandomWord(&rng);
    const std::size_t ab = EditDistance(a, b);
    const std::size_t ba = EditDistance(b, a);
    const std::size_t bc = EditDistance(b, c);
    const std::size_t ac = EditDistance(a, c);
    EXPECT_EQ(ab, ba) << a << " / " << b;
    EXPECT_EQ(EditDistance(a, a), 0u);
    EXPECT_LE(ac, ab + bc) << a << " / " << b << " / " << c;
    // Distance is bounded by the longer string's length.
    EXPECT_LE(ab, std::max(a.size(), b.size()));
    // Identity of indiscernibles.
    if (ab == 0) EXPECT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistancePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(JaroWinklerTest, KnownBehaviour) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", ""), 0.0);
  // Shared prefixes are boosted above plain Jaro.
  const double with_prefix = JaroWinklerSimilarity("MARTHA", "MARHTA");
  EXPECT_GT(with_prefix, 0.9);
  EXPECT_LE(with_prefix, 1.0);
}

TEST(JaroWinklerTest, PrefixBoostOrdersCandidates) {
  // Same edit distance, different prefix overlap.
  EXPECT_GT(JaroWinklerSimilarity("46360", "46361"),
            JaroWinklerSimilarity("46360", "96360"));
}

TEST(EqualsIgnoreCaseTest, Basics) {
  EXPECT_TRUE(EqualsIgnoreCase("Fort Wayne", "fort wayne"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

}  // namespace
}  // namespace gdr
